#include "apps/trading.h"

#include "common/serialize.h"

namespace scab::apps {

namespace {
Bytes filled_reply(uint64_t qty, uint64_t price) {
  return to_bytes("filled:" + std::to_string(qty) + "@" + std::to_string(price));
}
}  // namespace

Bytes TradingService::execute(host::NodeId client, BytesView op) {
  Reader r(op);
  const uint8_t kind = r.u8();
  const std::string symbol = r.str();

  auto price_ref = [&]() -> uint64_t& {
    auto [it, _] = prices_.emplace(symbol, kInitialPriceCents);
    return it->second;
  };

  switch (kind) {
    case 'B': {
      const uint64_t qty = r.u64();
      if (!r.done() || qty == 0) return to_bytes("err:malformed");
      uint64_t& price = price_ref();
      const uint64_t fill_price = price;  // execute at the pre-impact price
      positions_[{client, symbol}] += static_cast<int64_t>(qty);
      price += qty * kImpactPerShare;  // demand moves the market
      return filled_reply(qty, fill_price);
    }
    case 'S': {
      const uint64_t qty = r.u64();
      if (!r.done() || qty == 0) return to_bytes("err:malformed");
      uint64_t& price = price_ref();
      const uint64_t fill_price = price;
      positions_[{client, symbol}] -= static_cast<int64_t>(qty);
      const uint64_t drop = qty * kImpactPerShare;
      price = price > drop ? price - drop : 1;
      return filled_reply(qty, fill_price);
    }
    case 'Q': {
      if (!r.done()) return to_bytes("err:malformed");
      return to_bytes(std::to_string(price_ref()));
    }
    default:
      return to_bytes("err:unknown-op");
  }
}

Bytes TradingService::buy(std::string_view symbol, uint64_t qty) {
  Writer w;
  w.u8('B');
  w.str(symbol);
  w.u64(qty);
  return std::move(w).take();
}

Bytes TradingService::sell(std::string_view symbol, uint64_t qty) {
  Writer w;
  w.u8('S');
  w.str(symbol);
  w.u64(qty);
  return std::move(w).take();
}

Bytes TradingService::quote(std::string_view symbol) {
  Writer w;
  w.u8('Q');
  w.str(symbol);
  return std::move(w).take();
}

uint64_t TradingService::price_cents(const std::string& symbol) const {
  auto it = prices_.find(symbol);
  return it == prices_.end() ? kInitialPriceCents : it->second;
}

int64_t TradingService::position(host::NodeId client,
                                 const std::string& symbol) const {
  auto it = positions_.find({client, symbol});
  return it == positions_.end() ? 0 : it->second;
}

}  // namespace scab::apps
