#include "apps/kvstore.h"

#include "common/serialize.h"

namespace scab::apps {

Bytes KvStore::execute(host::NodeId /*client*/, BytesView op) {
  Reader r(op);
  const uint8_t kind = r.u8();
  const std::string key = r.str();
  switch (kind) {
    case 'P': {
      Bytes value = r.bytes();
      if (!r.done()) return to_bytes("err:malformed");
      data_[key] = std::move(value);
      return to_bytes("ok");
    }
    case 'G': {
      if (!r.done()) return to_bytes("err:malformed");
      auto it = data_.find(key);
      return it == data_.end() ? Bytes{} : it->second;
    }
    case 'D': {
      if (!r.done()) return to_bytes("err:malformed");
      return data_.erase(key) > 0 ? to_bytes("ok") : to_bytes("absent");
    }
    default:
      return to_bytes("err:unknown-op");
  }
}

Bytes KvStore::put(std::string_view key, BytesView value) {
  Writer w;
  w.u8('P');
  w.str(key);
  w.bytes(value);
  return std::move(w).take();
}

Bytes KvStore::get(std::string_view key) {
  Writer w;
  w.u8('G');
  w.str(key);
  return std::move(w).take();
}

Bytes KvStore::del(std::string_view key) {
  Writer w;
  w.u8('D');
  w.str(key);
  return std::move(w).take();
}

}  // namespace scab::apps
