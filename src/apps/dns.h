// The paper's second §I motivating example: a first-come-first-served name
// registry ("e.g., DNS service").  A faulty replica that sees an
// interesting name in a pending request can register it for a colluding
// client first — unless the request's content is hidden until it is
// scheduled (CP1/CP2/CP3).
//
// Operation wire format:
//   REGISTER: u8 'R', str name          -> "registered" / "taken:<owner>"
//   RESOLVE:  u8 'L', str name          -> "<owner>" / "nxdomain"
#pragma once

#include <map>
#include <string>

#include "causal/service.h"

namespace scab::apps {

class DnsRegistry : public causal::Service {
 public:
  Bytes execute(host::NodeId client, BytesView op) override;

  static Bytes register_name(std::string_view name);
  static Bytes resolve(std::string_view name);

  /// Owner of `name`, or 0 if unregistered.
  host::NodeId owner(const std::string& name) const;
  std::size_t registered_count() const { return owners_.size(); }

 private:
  std::map<std::string, host::NodeId> owners_;
};

}  // namespace scab::apps
