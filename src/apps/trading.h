// The paper's §I motivating example: a replicated trading service where the
// price responds to demand.  If a faulty replica can observe a pending BUY
// and get a derived BUY ordered first, it moves the price against the
// honest client — the front-running attack that secure causal atomic
// broadcast exists to prevent.  examples/trading_frontrun.cc stages the
// attack against plain PBFT and against CP1.
//
// Operation wire format:
//   BUY:  u8 'B', str symbol, u64 qty   -> "filled:<qty>@<price>"
//   SELL: u8 'S', str symbol, u64 qty   -> "filled:<qty>@<price>"
//   QUOTE:u8 'Q', str symbol            -> "<price>"
//
// Price model (deterministic): every filled BUY of q shares raises the
// price by q * kImpactPerShare (in cents); every SELL lowers it likewise,
// floored at 1.
#pragma once

#include <map>
#include <string>

#include "causal/service.h"

namespace scab::apps {

class TradingService : public causal::Service {
 public:
  static constexpr uint64_t kInitialPriceCents = 10'000;  // $100.00
  static constexpr uint64_t kImpactPerShare = 5;          // 5 cents / share

  Bytes execute(host::NodeId client, BytesView op) override;

  static Bytes buy(std::string_view symbol, uint64_t qty);
  static Bytes sell(std::string_view symbol, uint64_t qty);
  static Bytes quote(std::string_view symbol);

  uint64_t price_cents(const std::string& symbol) const;
  /// Net shares held by `client` in `symbol`.
  int64_t position(host::NodeId client, const std::string& symbol) const;

 private:
  std::map<std::string, uint64_t> prices_;
  std::map<std::pair<host::NodeId, std::string>, int64_t> positions_;
};

}  // namespace scab::apps
