#include "apps/dns.h"

#include "common/serialize.h"

namespace scab::apps {

Bytes DnsRegistry::execute(host::NodeId client, BytesView op) {
  Reader r(op);
  const uint8_t kind = r.u8();
  const std::string name = r.str();
  if (!r.done() || name.empty()) return to_bytes("err:malformed");

  switch (kind) {
    case 'R': {
      auto [it, inserted] = owners_.emplace(name, client);
      if (inserted) return to_bytes("registered");
      return to_bytes("taken:" + std::to_string(it->second));
    }
    case 'L': {
      auto it = owners_.find(name);
      if (it == owners_.end()) return to_bytes("nxdomain");
      return to_bytes(std::to_string(it->second));
    }
    default:
      return to_bytes("err:unknown-op");
  }
}

Bytes DnsRegistry::register_name(std::string_view name) {
  Writer w;
  w.u8('R');
  w.str(name);
  return std::move(w).take();
}

Bytes DnsRegistry::resolve(std::string_view name) {
  Writer w;
  w.u8('L');
  w.str(name);
  return std::move(w).take();
}

host::NodeId DnsRegistry::owner(const std::string& name) const {
  auto it = owners_.find(name);
  return it == owners_.end() ? 0 : it->second;
}

}  // namespace scab::apps
