// A replicated key-value store (the generic state-machine workload).
//
// Operation wire format:
//   PUT: u8 'P', str key, bytes value   -> "ok"
//   GET: u8 'G', str key                -> value or "" (absent)
//   DEL: u8 'D', str key                -> "ok" / "absent"
#pragma once

#include <map>
#include <string>

#include "causal/service.h"

namespace scab::apps {

class KvStore : public causal::Service {
 public:
  Bytes execute(host::NodeId client, BytesView op) override;

  /// Deterministic op builders (used by clients, examples, tests).
  static Bytes put(std::string_view key, BytesView value);
  static Bytes get(std::string_view key);
  static Bytes del(std::string_view key);

  std::size_t size() const { return data_.size(); }

 private:
  std::map<std::string, Bytes> data_;
};

}  // namespace scab::apps
