// scab-keygen — the trusted dealer's offline step (paper §V-A): emits a
// cluster.conf + cluster.keys pair from which every scabd / scab-client
// process derives identical key material.
//
//   scab-keygen --f 1 --protocol cp0 --seed 42 --base-port 21000
//               --clients 3 --out /tmp/cluster
//
// Replicas get ports base..base+n-1, clients base+100.. (mirroring the
// node-id layout).  --seed omitted draws one from the OS entropy pool.
// The keys file is written 0600: it IS the cluster's entire secret.
#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>

#include "bft/config.h"
#include "causal/protocol.h"
#include "daemon/config.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --base-port <port> [--f <n>] [--protocol "
      "pbft|cp0|cp1|cp2|cp3]\n"
      "          [--seed <u64>] [--clients <count>] [--host <ip>]\n"
      "          [--checkpoint-interval <n>] [--max-batch <n>]\n"
      "          [--client-inflight <n>] [--client-batch <n>]\n"
      "          [--threads <n>] [--io-threads <n>]\n"
      "          [--durability off|async|fsync] [--data-dir <dir>]\n"
      "          [--group modp_1024|modp_512|generate:<bits>] [--out <dir>]\n",
      argv0);
  return 2;
}

bool parse_u64_arg(const char* s, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == nullptr || *end != '\0' || s[0] == '-') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using scab::daemon::ClusterConfig;
  ClusterConfig cfg;
  cfg.protocol = scab::causal::Protocol::kCp0;
  cfg.bft.f = 1;
  cfg.bft.checkpoint_interval = 8;  // small: catch-up exercised early
  cfg.keys_file = "cluster.keys";
  uint64_t seed = 0;
  bool have_seed = false;
  uint64_t base_port = 0;
  uint64_t clients = 1;
  std::string host = "127.0.0.1";
  std::string out_dir = ".";
  std::string group;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i + 1 >= argc) return usage(argv[0]);
    const char* val = argv[++i];
    uint64_t u = 0;
    if (arg == "--f") {
      if (!parse_u64_arg(val, &u) || u < 1 || u > 100) {
        std::fprintf(stderr, "scab-keygen: invalid --f '%s'\n", val);
        return 2;
      }
      cfg.bft.f = static_cast<uint32_t>(u);
    } else if (arg == "--protocol") {
      const auto p = scab::causal::protocol_from_name(val);
      if (!p) {
        std::fprintf(stderr, "scab-keygen: unknown protocol '%s'\n", val);
        return 2;
      }
      cfg.protocol = *p;
    } else if (arg == "--seed") {
      if (!parse_u64_arg(val, &seed)) {
        std::fprintf(stderr, "scab-keygen: invalid --seed '%s'\n", val);
        return 2;
      }
      have_seed = true;
    } else if (arg == "--base-port") {
      if (!parse_u64_arg(val, &base_port) || base_port < 1 ||
          base_port > 65535) {
        std::fprintf(stderr, "scab-keygen: invalid --base-port '%s'\n", val);
        return 2;
      }
    } else if (arg == "--clients") {
      if (!parse_u64_arg(val, &clients) || clients > 1000) {
        std::fprintf(stderr, "scab-keygen: invalid --clients '%s'\n", val);
        return 2;
      }
    } else if (arg == "--host") {
      host = val;
    } else if (arg == "--out") {
      out_dir = val;
    } else if (arg == "--checkpoint-interval") {
      if (!parse_u64_arg(val, &u) || u < 1) {
        std::fprintf(stderr,
                     "scab-keygen: invalid --checkpoint-interval '%s'\n",
                     val);
        return 2;
      }
      cfg.bft.checkpoint_interval = u;
    } else if (arg == "--max-batch") {
      if (!parse_u64_arg(val, &u) || u < 1 || u > 4096) {
        std::fprintf(stderr, "scab-keygen: invalid --max-batch '%s'\n", val);
        return 2;
      }
      cfg.bft.max_batch = static_cast<uint32_t>(u);
    } else if (arg == "--client-inflight") {
      if (!parse_u64_arg(val, &u) || u < 1 || u > 1024) {
        std::fprintf(stderr, "scab-keygen: invalid --client-inflight '%s'\n",
                     val);
        return 2;
      }
      cfg.client_inflight = static_cast<uint32_t>(u);
    } else if (arg == "--client-batch") {
      if (!parse_u64_arg(val, &u) || u < 1 || u > 4096) {
        std::fprintf(stderr, "scab-keygen: invalid --client-batch '%s'\n",
                     val);
        return 2;
      }
      cfg.client_batch = static_cast<uint32_t>(u);
    } else if (arg == "--threads") {
      if (!parse_u64_arg(val, &u) || u > 256) {
        std::fprintf(stderr, "scab-keygen: invalid --threads '%s'\n", val);
        return 2;
      }
      cfg.threads = static_cast<uint32_t>(u);
    } else if (arg == "--io-threads") {
      if (!parse_u64_arg(val, &u) || u < 1 || u > 64) {
        std::fprintf(stderr, "scab-keygen: invalid --io-threads '%s'\n", val);
        return 2;
      }
      cfg.io_threads = static_cast<uint32_t>(u);
    } else if (arg == "--durability") {
      cfg.durability = val;  // validated by the round-trip parse below
    } else if (arg == "--data-dir") {
      cfg.data_dir = val;
    } else if (arg == "--group") {
      group = val;
    } else {
      return usage(argv[0]);
    }
  }

  if (base_port == 0) {
    std::fprintf(stderr, "scab-keygen: --base-port is required\n");
    return usage(argv[0]);
  }
  const uint32_t n = 3 * cfg.bft.f + 1;
  cfg.bft.n = n;
  if (base_port + n + 99 + clients > 65535) {
    std::fprintf(stderr,
                 "scab-keygen: --base-port %llu leaves no room for %u "
                 "replica + %llu client ports\n",
                 static_cast<unsigned long long>(base_port), n,
                 static_cast<unsigned long long>(clients));
    return 2;
  }
  if (!have_seed) {
    std::random_device rd;
    seed = (static_cast<uint64_t>(rd()) << 32) | rd();
  }
  if (!group.empty()) {
    // Reuse the config parser as the validator: splice the group line into
    // a scratch config and let it pronounce.
    cfg.group = group;  // provisionally; re-parsed below
  }

  for (uint32_t i = 0; i < n; ++i) {
    cfg.replicas[i] = {host, static_cast<uint16_t>(base_port + i)};
  }
  for (uint64_t i = 0; i < clients; ++i) {
    cfg.clients[scab::causal::kClientBase + static_cast<uint32_t>(i)] = {
        host, static_cast<uint16_t>(base_port + 100 + i)};
  }

  // Round-trip the rendered config through the parser: one validator, no
  // drift between what keygen accepts and what scabd loads (this is where
  // a bad --group or --host is rejected).
  const std::string conf_body = scab::daemon::format_cluster_config(cfg);
  std::string err;
  if (!scab::daemon::parse_cluster_config(conf_body, &err)) {
    std::fprintf(stderr, "scab-keygen: generated config invalid: %s\n",
                 err.c_str());
    return 2;
  }

  const std::string conf_path = out_dir + "/cluster.conf";
  const std::string keys_path = out_dir + "/cluster.keys";
  if (!scab::daemon::write_file_atomic(conf_path, conf_body)) {
    std::fprintf(stderr, "scab-keygen: cannot write %s\n", conf_path.c_str());
    return 1;
  }
  if (!scab::daemon::write_file_atomic(
          keys_path, scab::daemon::format_dealer_seed(seed))) {
    std::fprintf(stderr, "scab-keygen: cannot write %s\n", keys_path.c_str());
    return 1;
  }
  ::chmod(keys_path.c_str(), 0600);
  std::fprintf(stderr,
               "scab-keygen: wrote %s (+ %s) — n=%u f=%u protocol=%s "
               "clients=%llu\n",
               conf_path.c_str(), keys_path.c_str(), n, cfg.bft.f,
               scab::causal::protocol_name(cfg.protocol),
               static_cast<unsigned long long>(clients));
  return 0;
}
