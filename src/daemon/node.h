// One deployable node of a scab cluster (DESIGN.md §11).
//
// StackBundle re-runs the trusted dealer from the config's seed — master
// DRBG, KeyRing over every declared node id, protocol key material — so
// each process independently derives the same key universe the in-process
// harness (causal::Cluster) would.  ReplicaDaemon then assembles one
// replica's full stack on top: rt::SocketTransport (peer table from the
// config) -> rt::ThreadHost -> causal replica app -> bft::Replica, all
// through the same causal/stack.h factories the harness uses.
//
// Observability: everything (transport errors, fault-filter drops, the
// replica's bft.* instruments, the request tracer) lands in one
// MetricsRegistry per process; dump_json() renders the whole record and
// dump_to() writes it atomically — this is what scabd emits on SIGUSR1.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "bft/keyring.h"
#include "causal/stack.h"
#include "crypto/drbg.h"
#include "daemon/config.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace scab::bft {
class Replica;
class ReplicaApp;
}  // namespace scab::bft

namespace scab::rt {
class ThreadHost;
class SocketTransport;
}  // namespace scab::rt

namespace scab::daemon {

/// Per-process dealer output: everything derived from the config that is
/// independent of which node this process plays.
class StackBundle {
 public:
  explicit StackBundle(const ClusterConfig& cfg);

  const causal::StackMaterial& material() const { return material_; }
  const bft::KeyRing& keys() const { return keys_; }
  causal::StackContext context() const;

  /// Per-node randomness, forked exactly like the in-process harness:
  /// replicas by id, clients by index (id - kClientBase).
  crypto::Drbg replica_rng(uint32_t replica_id);
  crypto::Drbg client_rng(uint32_t client_id);

 private:
  const ClusterConfig& cfg_;
  crypto::Drbg master_rng_;
  bft::KeyRing keys_;
  causal::StackMaterial material_;
};

/// Renders a daemon dump record (shared with scab-client's summary and the
/// schema test): {"node","protocol","port","executed","metrics","trace"}.
std::string format_dump_record(uint32_t node, causal::Protocol protocol,
                               uint16_t port, uint64_t executed,
                               const obs::MetricsRegistry& metrics,
                               const obs::Tracer& tracer);

class ReplicaDaemon {
 public:
  /// Builds the stack and starts the replica.  Binding can fail (port
  /// taken, sandbox without sockets) — check ok(); a !ok() daemon holds no
  /// threads and is safe to destroy.
  ReplicaDaemon(const ClusterConfig& cfg, uint32_t replica_id);
  ~ReplicaDaemon();

  bool ok() const { return replica_ != nullptr; }
  uint16_t port() const { return port_; }
  uint64_t executed_requests() const;

  std::string dump_json() const;
  /// Atomic write of dump_json() to `path`; false on I/O failure.
  bool dump_to(const std::string& path) const;

  /// Joins every worker thread; idempotent (also run by the destructor).
  void stop();

 private:
  ClusterConfig cfg_;
  uint32_t id_;
  uint16_t port_ = 0;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  StackBundle bundle_;
  std::unique_ptr<rt::ThreadHost> host_;
  std::unique_ptr<bft::ReplicaApp> app_;  // owns the Service
  std::unique_ptr<bft::Replica> replica_;
};

}  // namespace scab::daemon
