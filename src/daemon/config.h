// Cluster configuration for the standalone daemon (scabd / scab-client).
//
// A deployment is described by two small text files, both emitted by
// scab-keygen:
//
//   cluster.conf — topology and protocol parameters.  Line-based
//     `key = value`; `replica <id> = ip:port` and `client <id> = ip:port`
//     lines build the peer tables.  Replica ids must be 0..n-1; client ids
//     must be >= causal::kClientBase (each scab-client invocation owns one
//     provisioned id — replica-side dedup is keyed on (client, seq), so a
//     fresh process must not reuse a previous run's id).
//
//   cluster.keys — the trusted dealer's tape: a single u64 seed
//     (`dealer_seed = N`).  Every process derives the entire key universe
//     (session/signing keys, TDH2 shares, commitment keys) from this seed
//     through causal::seed_label + causal::derive_material, exactly like
//     the in-process harness with ClusterOptions{seed = N}.  Anyone
//     holding this file holds every secret of the cluster; scab-keygen
//     writes it 0600.
//
// Parsing never exits or throws: parse/load return nullopt and a
// "<line>: message" diagnostic, and the CLIs turn that into a clean
// non-zero exit.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "bft/config.h"
#include "causal/protocol.h"

namespace scab::daemon {

struct Endpoint {
  std::string ip;  // dotted quad
  uint16_t port = 0;
};

struct ClusterConfig {
  causal::Protocol protocol = causal::Protocol::kPbft;
  /// n is derived from the replica lines; f, batching, and checkpoint
  /// knobs come from the file (defaults = BftConfig's).
  bft::BftConfig bft;
  /// CP0 threshold group: "modp_1024", "modp_512" (default), or
  /// "generate:<bits>" (deterministically generated from the dealer seed).
  std::string group = "modp_512";
  std::size_t group_bits = 0;  // parsed from "generate:<bits>"
  /// CP0 client pipelining (DESIGN.md §10); 1/1 = strict closed loop.
  uint32_t client_inflight = 1;
  uint32_t client_batch = 1;
  /// Crypto worker-pool threads per replica (DESIGN.md §12); 0 = inline
  /// (single-threaded protocol + crypto, the deterministic default).
  uint32_t threads = 0;
  /// Epoll event-loop threads for the socket transport (>= 1).
  uint32_t io_threads = 1;
  /// Durable replica state (DESIGN.md §13): "off" (no storage, the
  /// historical behavior), "async" (WAL + snapshots without per-record
  /// fsync — survives process crashes, not power loss), or "fsync" (full
  /// fsync discipline — survives power loss).
  std::string durability = "off";
  /// Root of the per-replica storage directories (`<data_dir>/node<id>`).
  /// Required when durability != off; resolved relative to the config
  /// file's directory by load_cluster_config, like `keys`.
  std::string data_dir;
  /// Path of the dealer-seed file, as written in the config (resolved
  /// relative to the config file's directory by load_cluster_config).
  std::string keys_file;
  std::map<uint32_t, Endpoint> replicas;
  std::map<uint32_t, Endpoint> clients;

  /// Populated by load_cluster_config (not by parse_cluster_config).
  uint64_t dealer_seed = 0;

  uint32_t n() const { return static_cast<uint32_t>(replicas.size()); }
};

/// Parses and validates a cluster.conf body.  On failure returns nullopt
/// and sets *err to "line <k>: <message>".
std::optional<ClusterConfig> parse_cluster_config(std::string_view text,
                                                  std::string* err);

/// Parses a cluster.keys body ("dealer_seed = N").
std::optional<uint64_t> parse_dealer_seed(std::string_view text,
                                          std::string* err);

/// Reads and parses `path`, then the dealer-seed file it references
/// (relative paths resolve against `path`'s directory).  Diagnostics are
/// prefixed with the offending file name.
std::optional<ClusterConfig> load_cluster_config(const std::string& path,
                                                 std::string* err);

/// Renders a config (scab-keygen's output format; parse round-trips it).
std::string format_cluster_config(const ClusterConfig& cfg);
std::string format_dealer_seed(uint64_t seed);

/// Writes `content` to `path` atomically (same-directory tmp + rename), so
/// a reader never observes a torn file.  Returns false on I/O failure.
bool write_file_atomic(const std::string& path, std::string_view content);

/// Reads a whole file; nullopt (and *err) on failure.
std::optional<std::string> read_file(const std::string& path,
                                     std::string* err);

}  // namespace scab::daemon
