// scab-metrics-check — validates a scabd/scab-client metrics dump.
//
//   scab-metrics-check <dump.json> --schema bench/metrics_schema.json
//       --section required_daemon
//       [--min <path>=<value>]... [--eq <path>=<value>]...
//
// Checks, in order: the dump parses as JSON; every '/'-separated path in
// the schema section exists; each --min path is a number >= value; each
// --eq path is a number == value.  Exit 0 on success, 1 on any failed
// check, 2 on usage / unreadable input.  run_cluster.sh leans on --min/--eq
// for its no-loss/no-duplication and catch-up assertions.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "daemon/config.h"
#include "obs/json.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <dump.json> [--schema <schema.json> --section "
               "<name>] [--min <path>=<num>]... [--eq <path>=<num>]...\n",
               argv0);
  return 2;
}

struct Bound {
  std::string path;
  double value;
  bool exact;
};

bool parse_bound(const char* spec, bool exact, Bound* out) {
  const char* eq = std::strrchr(spec, '=');
  if (eq == nullptr || eq == spec) return false;
  char* end = nullptr;
  const double v = std::strtod(eq + 1, &end);
  if (end == nullptr || *end != '\0' || end == eq + 1) return false;
  out->path.assign(spec, static_cast<std::size_t>(eq - spec));
  out->value = v;
  out->exact = exact;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dump_path;
  std::string schema_path;
  std::string section;
  std::vector<Bound> bounds;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--schema" && i + 1 < argc) {
      schema_path = argv[++i];
    } else if (arg == "--section" && i + 1 < argc) {
      section = argv[++i];
    } else if ((arg == "--min" || arg == "--eq") && i + 1 < argc) {
      Bound b;
      if (!parse_bound(argv[++i], arg == "--eq", &b)) {
        std::fprintf(stderr, "scab-metrics-check: bad bound '%s'\n",
                     argv[i]);
        return 2;
      }
      bounds.push_back(std::move(b));
    } else if (arg.rfind("--", 0) == 0) {
      return usage(argv[0]);
    } else if (dump_path.empty()) {
      dump_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (dump_path.empty() || (schema_path.empty() != section.empty())) {
    return usage(argv[0]);
  }

  std::string err;
  const auto dump_body = scab::daemon::read_file(dump_path, &err);
  if (!dump_body) {
    std::fprintf(stderr, "scab-metrics-check: %s\n", err.c_str());
    return 2;
  }
  const auto dump = scab::obs::json::parse(*dump_body);
  if (!dump) {
    std::fprintf(stderr, "scab-metrics-check: %s: not valid JSON\n",
                 dump_path.c_str());
    return 1;
  }

  int failures = 0;
  if (!schema_path.empty()) {
    const auto schema_body = scab::daemon::read_file(schema_path, &err);
    if (!schema_body) {
      std::fprintf(stderr, "scab-metrics-check: %s\n", err.c_str());
      return 2;
    }
    const auto schema = scab::obs::json::parse(*schema_body);
    if (!schema) {
      std::fprintf(stderr, "scab-metrics-check: %s: not valid JSON\n",
                   schema_path.c_str());
      return 2;
    }
    const auto* paths = schema->get(section);
    if (paths == nullptr || !paths->is_array()) {
      std::fprintf(stderr,
                   "scab-metrics-check: %s has no array section '%s'\n",
                   schema_path.c_str(), section.c_str());
      return 2;
    }
    for (const auto& p : paths->as_array()) {
      if (!p.is_string()) continue;
      if (scab::obs::json::find_path(*dump, p.as_string()) == nullptr) {
        std::fprintf(stderr, "scab-metrics-check: missing path '%s'\n",
                     p.as_string().c_str());
        ++failures;
      }
    }
  }

  for (const Bound& b : bounds) {
    const auto* v = scab::obs::json::find_path(*dump, b.path);
    if (v == nullptr || !v->is_number()) {
      std::fprintf(stderr,
                   "scab-metrics-check: bound path '%s' missing or not a "
                   "number\n",
                   b.path.c_str());
      ++failures;
      continue;
    }
    const double got = v->as_number();
    const bool pass = b.exact ? got == b.value : got >= b.value;
    if (!pass) {
      std::fprintf(stderr, "scab-metrics-check: %s = %g, want %s %g\n",
                   b.path.c_str(), got, b.exact ? "==" : ">=", b.value);
      ++failures;
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "scab-metrics-check: %s: %d check(s) failed\n",
                 dump_path.c_str(), failures);
    return 1;
  }
  std::printf("scab-metrics-check: %s OK\n", dump_path.c_str());
  return 0;
}
