#include "daemon/node.h"

#include <map>
#include <utility>
#include <vector>

#include "bft/replica.h"
#include "causal/service.h"
#include "host/cost_model.h"
#include "rt/runtime.h"
#include "rt/storage.h"
#include "rt/transport.h"

namespace scab::daemon {

namespace {

std::vector<host::NodeId> all_node_ids(const ClusterConfig& cfg) {
  std::vector<host::NodeId> ids;
  ids.reserve(cfg.replicas.size() + cfg.clients.size());
  for (const auto& [id, ep] : cfg.replicas) ids.push_back(id);
  for (const auto& [id, ep] : cfg.clients) ids.push_back(id);
  return ids;
}

/// Named groups resolve to their constants; "generate" stays empty so
/// derive_material grows one from the dealer seed's "group" fork — every
/// process lands on the same group either way.
std::optional<crypto::ModGroup> preset_group(const ClusterConfig& cfg) {
  if (cfg.protocol != causal::Protocol::kCp0) return std::nullopt;
  if (cfg.group == "modp_1024") return crypto::ModGroup::modp_1024();
  if (cfg.group == "modp_512") return crypto::ModGroup::modp_512();
  return std::nullopt;
}

}  // namespace

StackBundle::StackBundle(const ClusterConfig& cfg)
    : cfg_(cfg),
      master_rng_(causal::seed_label(cfg.dealer_seed, "cluster-master")),
      keys_(causal::seed_label(cfg.dealer_seed, "keyring"),
            all_node_ids(cfg)),
      material_(causal::derive_material(
          cfg.protocol, cfg.bft, master_rng_, preset_group(cfg),
          cfg.group_bits ? cfg.group_bits : 64)) {}

causal::StackContext StackBundle::context() const {
  causal::StackContext ctx;
  ctx.protocol = cfg_.protocol;
  ctx.material = &material_;
  ctx.bft = cfg_.bft;
  // Daemon nodes always run on real threads.
  ctx.per_node_lagrange_cache = true;
  return ctx;
}

crypto::Drbg StackBundle::replica_rng(uint32_t replica_id) {
  return master_rng_.fork(causal::seed_label(replica_id, "replica"));
}

crypto::Drbg StackBundle::client_rng(uint32_t client_id) {
  return master_rng_.fork(
      causal::seed_label(client_id - causal::kClientBase, "client"));
}

std::string format_dump_record(uint32_t node, causal::Protocol protocol,
                               uint16_t port, uint64_t executed,
                               const obs::MetricsRegistry& metrics,
                               const obs::Tracer& tracer) {
  std::string out = "{\"node\":" + std::to_string(node) + ",\"protocol\":\"";
  out += causal::protocol_name(protocol);
  out += "\",\"port\":" + std::to_string(port) +
         ",\"executed\":" + std::to_string(executed) + ",\"metrics\":";
  out += metrics.to_json();
  out += ",\"trace\":";
  out += tracer.to_json();
  out += "}";
  return out;
}

ReplicaDaemon::ReplicaDaemon(const ClusterConfig& cfg, uint32_t replica_id)
    : cfg_(cfg), id_(replica_id), bundle_(cfg_) {
  const Endpoint& self = cfg_.replicas.at(id_);
  std::map<host::NodeId, rt::SocketTransport::Peer> peers;
  for (const auto& [rid, ep] : cfg_.replicas) {
    if (rid != id_) peers[rid] = {ep.ip, ep.port};
  }
  for (const auto& [cid, ep] : cfg_.clients) peers[cid] = {ep.ip, ep.port};
  auto transport = std::make_unique<rt::SocketTransport>(
      self.port, std::move(peers),
      /*jitter_seed=*/cfg_.dealer_seed ^ id_, self.ip,
      /*io_threads=*/cfg_.io_threads);
  if (!transport->ok()) return;  // caller checks ok()
  transport->bind_metrics(&metrics_);  // before ThreadHost starts it
  port_ = transport->port();
  host_ = std::make_unique<rt::ThreadHost>(std::move(transport), &metrics_,
                                           /*pool_threads=*/cfg_.threads);
  // Durable state (DESIGN.md §13): attach before the replica binds — the
  // replica resolves its storage in the constructor.
  if (cfg_.durability != "off") {
    auto storage = std::make_unique<rt::FileStorage>(
        cfg_.data_dir + "/node" + std::to_string(id_),
        rt::FileStorage::Options{/*fsync=*/cfg_.durability == "fsync"});
    if (!storage->ok()) {
      host_->stop();
      host_.reset();
      return;  // caller checks ok()
    }
    host_->attach_storage(id_, std::move(storage));
  }
  app_ = causal::make_replica_app(bundle_.context(),
                                  std::make_unique<causal::EchoService>(0),
                                  id_);
  auto replica = std::make_unique<bft::Replica>(
      *host_, id_, cfg_.bft, bundle_.keys(), host::CostModel::zero(),
      app_.get(), bundle_.replica_rng(id_), &metrics_, &tracer_);
  // Peers may already be up and talking, so recovery — which must complete
  // before any live traffic mutates the rebuilt state — runs as the
  // endpoint's first task, ahead of anything the transport delivers.
  bft::Replica* r = replica.get();
  host_->post(id_, [r] {
    r->recover();
    r->start();
  });
  replica_ = std::move(replica);
}

ReplicaDaemon::~ReplicaDaemon() { stop(); }

void ReplicaDaemon::stop() {
  if (host_) host_->stop();
}

uint64_t ReplicaDaemon::executed_requests() const {
  return replica_ ? replica_->executed_requests() : 0;
}

std::string ReplicaDaemon::dump_json() const {
  return format_dump_record(id_, cfg_.protocol, port_, executed_requests(),
                            metrics_, tracer_);
}

bool ReplicaDaemon::dump_to(const std::string& path) const {
  return write_file_atomic(path, dump_json() + "\n");
}

}  // namespace scab::daemon
