#include "daemon/config.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace scab::daemon {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool parse_u64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t d = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return false;  // overflow
    v = v * 10 + d;
  }
  *out = v;
  return true;
}

bool parse_u32(std::string_view s, uint32_t* out) {
  uint64_t v = 0;
  if (!parse_u64(s, &v) || v > UINT32_MAX) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

/// "ip:port" with port in [1, 65535].  The ip is only shape-checked here
/// (non-empty, no spaces); SocketTransport's inet_pton is the authority.
bool parse_endpoint(std::string_view s, Endpoint* out, std::string* why) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string_view::npos || colon == 0) {
    *why = "expected ip:port";
    return false;
  }
  const std::string_view ip = s.substr(0, colon);
  const std::string_view port = s.substr(colon + 1);
  if (ip.find(' ') != std::string_view::npos) {
    *why = "expected ip:port";
    return false;
  }
  uint32_t p = 0;
  if (!parse_u32(port, &p) || p == 0 || p > 65535) {
    *why = "invalid port '" + std::string(port) + "' (want 1..65535)";
    return false;
  }
  out->ip = std::string(ip);
  out->port = static_cast<uint16_t>(p);
  return true;
}

std::string at_line(std::size_t line, const std::string& msg) {
  return "line " + std::to_string(line) + ": " + msg;
}

}  // namespace

std::optional<ClusterConfig> parse_cluster_config(std::string_view text,
                                                  std::string* err) {
  ClusterConfig cfg;
  bool have_f = false;
  std::istringstream in{std::string(text)};
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      *err = at_line(lineno, "expected 'key = value'");
      return std::nullopt;
    }
    const std::string key{trim(line.substr(0, eq))};
    const std::string value{trim(line.substr(eq + 1))};
    std::string why;

    // Peer-table lines: "replica <id>" / "client <id>".
    const std::size_t sp = key.find(' ');
    const std::string head = sp == std::string::npos ? key : key.substr(0, sp);
    if (head == "replica" || head == "client") {
      uint32_t id = 0;
      if (sp == std::string::npos ||
          !parse_u32(trim(std::string_view(key).substr(sp + 1)), &id)) {
        *err = at_line(lineno, "expected '" + head + " <id> = ip:port'");
        return std::nullopt;
      }
      Endpoint ep;
      if (!parse_endpoint(value, &ep, &why)) {
        *err = at_line(lineno, head + " " + std::to_string(id) + ": " + why);
        return std::nullopt;
      }
      auto& table = head == "replica" ? cfg.replicas : cfg.clients;
      if (head == "client" && id < causal::kClientBase) {
        *err = at_line(lineno,
                       "client id " + std::to_string(id) + " below " +
                           std::to_string(causal::kClientBase) +
                           " (reserved for replicas)");
        return std::nullopt;
      }
      if (head == "replica" && id >= causal::kClientBase) {
        *err = at_line(lineno,
                       "replica id " + std::to_string(id) + " collides with "
                       "the client id space (>= " +
                           std::to_string(causal::kClientBase) + ")");
        return std::nullopt;
      }
      if (!table.emplace(id, std::move(ep)).second) {
        *err = at_line(lineno, "duplicate " + head + " id " +
                                   std::to_string(id));
        return std::nullopt;
      }
      continue;
    }

    if (key == "protocol") {
      const auto p = causal::protocol_from_name(value);
      if (!p) {
        *err = at_line(lineno, "unknown protocol '" + value +
                                   "' (want pbft|cp0|cp1|cp2|cp3)");
        return std::nullopt;
      }
      cfg.protocol = *p;
    } else if (key == "f") {
      if (!parse_u32(value, &cfg.bft.f)) {
        *err = at_line(lineno, "invalid f '" + value + "'");
        return std::nullopt;
      }
      have_f = true;
    } else if (key == "group") {
      if (value == "modp_1024" || value == "modp_512") {
        cfg.group = value;
        cfg.group_bits = 0;
      } else if (value.rfind("generate:", 0) == 0) {
        uint64_t bits = 0;
        if (!parse_u64(value.substr(9), &bits) || bits < 16 || bits > 4096) {
          *err = at_line(lineno, "invalid group '" + value +
                                     "' (want generate:<16..4096>)");
          return std::nullopt;
        }
        cfg.group = "generate";
        cfg.group_bits = static_cast<std::size_t>(bits);
      } else {
        *err = at_line(lineno,
                       "unknown group '" + value +
                           "' (want modp_1024|modp_512|generate:<bits>)");
        return std::nullopt;
      }
    } else if (key == "checkpoint_interval") {
      uint64_t v = 0;
      if (!parse_u64(value, &v) || v == 0) {
        *err = at_line(lineno, "invalid checkpoint_interval '" + value + "'");
        return std::nullopt;
      }
      cfg.bft.checkpoint_interval = v;
    } else if (key == "max_batch") {
      if (!parse_u32(value, &cfg.bft.max_batch) || cfg.bft.max_batch == 0) {
        *err = at_line(lineno, "invalid max_batch '" + value + "'");
        return std::nullopt;
      }
    } else if (key == "max_inflight_batches") {
      if (!parse_u32(value, &cfg.bft.max_inflight_batches) ||
          cfg.bft.max_inflight_batches == 0) {
        *err = at_line(lineno, "invalid max_inflight_batches '" + value + "'");
        return std::nullopt;
      }
    } else if (key == "client_inflight") {
      if (!parse_u32(value, &cfg.client_inflight) ||
          cfg.client_inflight == 0) {
        *err = at_line(lineno, "invalid client_inflight '" + value + "'");
        return std::nullopt;
      }
    } else if (key == "client_batch") {
      if (!parse_u32(value, &cfg.client_batch) || cfg.client_batch == 0) {
        *err = at_line(lineno, "invalid client_batch '" + value + "'");
        return std::nullopt;
      }
    } else if (key == "threads") {
      if (!parse_u32(value, &cfg.threads)) {
        *err = at_line(lineno, "invalid threads '" + value + "'");
        return std::nullopt;
      }
    } else if (key == "io_threads") {
      if (!parse_u32(value, &cfg.io_threads) || cfg.io_threads == 0) {
        *err = at_line(lineno, "invalid io_threads '" + value +
                                   "' (want >= 1)");
        return std::nullopt;
      }
    } else if (key == "keys") {
      cfg.keys_file = value;
    } else if (key == "durability") {
      if (value != "off" && value != "async" && value != "fsync") {
        *err = at_line(lineno, "unknown durability '" + value +
                                   "' (want off|async|fsync)");
        return std::nullopt;
      }
      cfg.durability = value;
    } else if (key == "data_dir") {
      cfg.data_dir = value;
    } else {
      *err = at_line(lineno, "unknown key '" + key + "'");
      return std::nullopt;
    }
  }

  // Whole-file validation.
  if (cfg.replicas.empty()) {
    *err = "no 'replica <id> = ip:port' lines";
    return std::nullopt;
  }
  const uint32_t n = cfg.n();
  for (uint32_t i = 0; i < n; ++i) {
    if (cfg.replicas.count(i) == 0) {
      *err = "replica ids must be contiguous 0.." + std::to_string(n - 1) +
             " (missing " + std::to_string(i) + ")";
      return std::nullopt;
    }
  }
  if (!have_f) {
    *err = "missing 'f = <faults tolerated>'";
    return std::nullopt;
  }
  if (cfg.bft.f < 1 || 3 * cfg.bft.f + 1 > n) {
    *err = "f = " + std::to_string(cfg.bft.f) + " out of range for n = " +
           std::to_string(n) + " replicas (need 1 <= f and n >= 3f+1)";
    return std::nullopt;
  }
  cfg.bft.n = n;
  if (cfg.keys_file.empty()) {
    *err = "missing 'keys = <dealer-seed file>'";
    return std::nullopt;
  }
  if (cfg.durability != "off" && cfg.data_dir.empty()) {
    *err = "durability = " + cfg.durability +
           " requires 'data_dir = <directory>'";
    return std::nullopt;
  }
  if ((cfg.client_inflight > 1 || cfg.client_batch > 1) &&
      cfg.protocol != causal::Protocol::kCp0) {
    *err = "client_inflight/client_batch > 1 requires protocol cp0 (the "
           "only envelope that aggregates)";
    return std::nullopt;
  }
  return cfg;
}

std::optional<uint64_t> parse_dealer_seed(std::string_view text,
                                          std::string* err) {
  std::istringstream in{std::string(text)};
  std::string raw;
  std::size_t lineno = 0;
  std::optional<uint64_t> seed;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    const std::string key{
        trim(eq == std::string_view::npos ? line : line.substr(0, eq))};
    if (eq == std::string_view::npos || key != "dealer_seed") {
      *err = at_line(lineno, "expected 'dealer_seed = <u64>'");
      return std::nullopt;
    }
    uint64_t v = 0;
    if (!parse_u64(trim(line.substr(eq + 1)), &v)) {
      *err = at_line(lineno, "invalid dealer_seed");
      return std::nullopt;
    }
    if (seed) {
      *err = at_line(lineno, "duplicate dealer_seed");
      return std::nullopt;
    }
    seed = v;
  }
  if (!seed) *err = "missing 'dealer_seed = <u64>'";
  return seed;
}

std::optional<std::string> read_file(const std::string& path,
                                     std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *err = path + ": " + std::strerror(errno);
    return std::nullopt;
  }
  std::ostringstream body;
  body << in.rdbuf();
  return std::move(body).str();
}

std::optional<ClusterConfig> load_cluster_config(const std::string& path,
                                                 std::string* err) {
  const auto body = read_file(path, err);
  if (!body) return std::nullopt;
  auto cfg = parse_cluster_config(*body, err);
  if (!cfg) {
    *err = path + ": " + *err;
    return std::nullopt;
  }
  const std::size_t slash = path.rfind('/');
  const std::string base =
      slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
  std::string keys_path = cfg->keys_file;
  if (!keys_path.empty() && keys_path.front() != '/') {
    keys_path = base + keys_path;
  }
  if (!cfg->data_dir.empty() && cfg->data_dir.front() != '/') {
    cfg->data_dir = base + cfg->data_dir;
  }
  const auto keys_body = read_file(keys_path, err);
  if (!keys_body) return std::nullopt;
  const auto seed = parse_dealer_seed(*keys_body, err);
  if (!seed) {
    *err = keys_path + ": " + *err;
    return std::nullopt;
  }
  cfg->dealer_seed = *seed;
  return cfg;
}

std::string format_cluster_config(const ClusterConfig& cfg) {
  std::ostringstream out;
  out << "# scab cluster configuration (generated by scab-keygen)\n"
      << "protocol = " << [&] {
           switch (cfg.protocol) {
             case causal::Protocol::kPbft: return "pbft";
             case causal::Protocol::kCp0: return "cp0";
             case causal::Protocol::kCp1: return "cp1";
             case causal::Protocol::kCp2: return "cp2";
             case causal::Protocol::kCp3: return "cp3";
           }
           return "?";
         }()
      << "\n"
      << "f = " << cfg.bft.f << "\n";
  if (cfg.group == "generate") {
    out << "group = generate:" << cfg.group_bits << "\n";
  } else {
    out << "group = " << cfg.group << "\n";
  }
  out << "checkpoint_interval = " << cfg.bft.checkpoint_interval << "\n"
      << "max_batch = " << cfg.bft.max_batch << "\n"
      << "max_inflight_batches = " << cfg.bft.max_inflight_batches << "\n"
      << "client_inflight = " << cfg.client_inflight << "\n"
      << "client_batch = " << cfg.client_batch << "\n"
      << "threads = " << cfg.threads << "\n"
      << "io_threads = " << cfg.io_threads << "\n"
      << "durability = " << cfg.durability << "\n";
  if (!cfg.data_dir.empty()) out << "data_dir = " << cfg.data_dir << "\n";
  out << "keys = " << cfg.keys_file << "\n";
  for (const auto& [id, ep] : cfg.replicas) {
    out << "replica " << id << " = " << ep.ip << ":" << ep.port << "\n";
  }
  for (const auto& [id, ep] : cfg.clients) {
    out << "client " << id << " = " << ep.ip << ":" << ep.port << "\n";
  }
  return std::move(out).str();
}

std::string format_dealer_seed(uint64_t seed) {
  return "# scab trusted-dealer tape: every key in the cluster derives from "
         "this seed.\n# Guard it like a private key.\n"
         "dealer_seed = " +
         std::to_string(seed) + "\n";
}

bool write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace scab::daemon
