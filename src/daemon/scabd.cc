// scabd — one scab replica as a standalone process.
//
//   scabd --config cluster.conf --replica 2 [--metrics-out path]
//
// Lifecycle is signal-driven (the process has no stdin protocol):
//   SIGUSR1  dump the metrics + trace record as one JSON document to
//            --metrics-out (atomic tmp+rename) or stderr
//   SIGTERM / SIGINT  clean shutdown: join every worker, exit 0
//
// Signals are blocked on every thread (the mask is set before the stack —
// and thus every worker thread — exists) and consumed synchronously by the
// main thread via sigwait, so a dump never interrupts protocol code
// mid-handler; the worst it can do is bounce accept(2) with EINTR, which
// the transport's accept loop survives by design.
//
// Exit codes: 0 clean shutdown, 2 usage, 3 bad config, 4 cannot bind the
// listen socket.  `scabd --probe` binds one ephemeral loopback socket and
// exits 0/77 — scripts use it to detect socketless sandboxes.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "bft/config.h"
#include "daemon/config.h"
#include "daemon/node.h"
#include "rt/transport.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --config <cluster.conf> --replica <id> "
               "[--metrics-out <path>]\n       %s --probe\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string metrics_out;
  long replica_id = -1;
  bool probe = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--probe") {
      probe = true;
    } else if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--replica" && i + 1 < argc) {
      char* end = nullptr;
      replica_id = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || replica_id < 0) {
        std::fprintf(stderr, "scabd: invalid --replica '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  if (probe) {
    scab::rt::SocketTransport t(0);
    return t.ok() ? 0 : 77;
  }
  if (config_path.empty() || replica_id < 0) return usage(argv[0]);

  std::string err;
  const auto cfg = scab::daemon::load_cluster_config(config_path, &err);
  if (!cfg) {
    std::fprintf(stderr, "scabd: %s\n", err.c_str());
    return 3;
  }
  if (cfg->replicas.count(static_cast<uint32_t>(replica_id)) == 0) {
    std::fprintf(stderr, "scabd: replica %ld not in %s (n = %u)\n",
                 replica_id, config_path.c_str(), cfg->n());
    return 3;
  }

  // Block the control signals BEFORE any thread is spawned: every worker
  // inherits the mask, leaving sigwait below as the only consumer.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGUSR1);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  scab::daemon::ReplicaDaemon daemon(*cfg,
                                     static_cast<uint32_t>(replica_id));
  if (!daemon.ok()) {
    const auto& ep = cfg->replicas.at(static_cast<uint32_t>(replica_id));
    std::fprintf(stderr, "scabd: replica %ld cannot bind %s:%u\n",
                 replica_id, ep.ip.c_str(), ep.port);
    return 4;
  }
  std::fprintf(stderr,
               "scabd: replica %ld up (protocol %s, n=%u f=%u) on port %u\n",
               replica_id, scab::causal::protocol_name(cfg->protocol),
               cfg->bft.n, cfg->bft.f, daemon.port());

  for (;;) {
    int sig = 0;
    if (sigwait(&mask, &sig) != 0) continue;
    if (sig == SIGUSR1) {
      if (metrics_out.empty()) {
        const std::string dump = daemon.dump_json();
        std::fprintf(stderr, "%s\n", dump.c_str());
      } else if (!daemon.dump_to(metrics_out)) {
        std::fprintf(stderr, "scabd: cannot write %s\n",
                     metrics_out.c_str());
      }
    } else {  // SIGTERM / SIGINT
      daemon.stop();
      std::fprintf(stderr, "scabd: replica %ld stopped (executed %llu)\n",
                   replica_id,
                   static_cast<unsigned long long>(
                       daemon.executed_requests()));
      return 0;
    }
  }
}
