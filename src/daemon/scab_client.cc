// scab-client — load driver against a running scabd cluster.
//
//   scab-client --config cluster.conf --id 100 --ops 50
//               [--op-size 32] [--timeout-s 60] [--metrics-out path]
//               [--open-loop RATE]
//
// Default is the paper's closed loop (one op in flight per slot, the next
// starts when the previous completes).  --open-loop RATE instead issues
// ops at RATE per second regardless of completions — ticks that find every
// slot busy SHED their op (counted, never queued) — and the summary adds
// the achieved rate plus exact p50/p99 latency.
//
// The client id must be one of the config's provisioned `client` lines —
// it determines the listen port replies arrive on, the keyring identity,
// and the DRBG fork.  Each invocation needs a FRESH id: replica-side
// request dedup is keyed on (client, seq) and a new process restarts its
// sequence numbers at 1, so reusing an id would make the cluster silently
// swallow the run as replays.
//
// Drives bft::Client::run_closed_loop on the client's own executor (the
// controlling thread only polls completed_ops), honouring the config's
// client_inflight/client_batch pipelining knobs for CP0.  On success
// prints a one-line JSON summary to stdout and exits 0; incomplete after
// --timeout-s exits 1.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bft/client.h"
#include "causal/stack.h"
#include "daemon/config.h"
#include "daemon/node.h"
#include "host/cost_model.h"
#include "rt/runtime.h"
#include "rt/transport.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --config <cluster.conf> --id <client-id> "
               "--ops <count> [--op-size <bytes>] [--timeout-s <s>] "
               "[--metrics-out <path>] [--open-loop <ops-per-sec>]\n",
               argv0);
  return 2;
}

bool parse_long(const char* s, long* out) {
  char* end = nullptr;
  *out = std::strtol(s, &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string metrics_out;
  long client_id = -1;
  long ops = -1;
  long op_size = 32;
  long timeout_s = 60;
  long open_rate = 0;  // ops/sec; 0 = closed loop
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long* slot = nullptr;
    if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
      continue;
    }
    if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
      continue;
    }
    if (arg == "--id") slot = &client_id;
    else if (arg == "--ops") slot = &ops;
    else if (arg == "--op-size") slot = &op_size;
    else if (arg == "--timeout-s") slot = &timeout_s;
    else if (arg == "--open-loop") slot = &open_rate;
    if (slot == nullptr || i + 1 >= argc || !parse_long(argv[++i], slot)) {
      return usage(argv[0]);
    }
  }
  if (config_path.empty() || client_id < 0 || ops <= 0 || op_size < 0 ||
      timeout_s <= 0 || open_rate < 0) {
    return usage(argv[0]);
  }

  std::string err;
  const auto cfg = scab::daemon::load_cluster_config(config_path, &err);
  if (!cfg) {
    std::fprintf(stderr, "scab-client: %s\n", err.c_str());
    return 3;
  }
  const uint32_t id = static_cast<uint32_t>(client_id);
  const auto self = cfg->clients.find(id);
  if (self == cfg->clients.end()) {
    std::fprintf(stderr, "scab-client: client %u not provisioned in %s\n",
                 id, config_path.c_str());
    return 3;
  }

  // Same dealer tape as every replica; peers = the replicas (replies come
  // back over their own connections to our listen port).
  scab::daemon::StackBundle bundle(*cfg);
  std::map<scab::host::NodeId, scab::rt::SocketTransport::Peer> peers;
  for (const auto& [rid, ep] : cfg->replicas) peers[rid] = {ep.ip, ep.port};
  auto transport = std::make_unique<scab::rt::SocketTransport>(
      self->second.port, std::move(peers),
      /*jitter_seed=*/cfg->dealer_seed ^ id, self->second.ip,
      /*io_threads=*/cfg->io_threads);
  if (!transport->ok()) {
    std::fprintf(stderr, "scab-client: cannot bind %s:%u\n",
                 self->second.ip.c_str(), self->second.port);
    return 4;
  }
  scab::obs::MetricsRegistry metrics;
  scab::obs::Tracer tracer;
  transport->bind_metrics(&metrics);
  scab::rt::ThreadHost host(std::move(transport), &metrics);

  const scab::causal::StackContext ctx = bundle.context();
  auto protocol = scab::causal::make_client_protocol(ctx);
  scab::bft::Client client(host, id, cfg->bft, bundle.keys(),
                           scab::host::CostModel::zero(), protocol.get(),
                           bundle.client_rng(id), &metrics, &tracer);
  if (cfg->protocol == scab::causal::Protocol::kCp0 &&
      (cfg->client_inflight > 1 || cfg->client_batch > 1)) {
    client.set_pipeline(
        [&bundle] {
          return scab::causal::make_client_protocol(bundle.context(),
                                                    /*batching=*/true);
        },
        cfg->client_inflight, cfg->client_batch);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t want = static_cast<uint64_t>(ops);
  const std::size_t body = static_cast<std::size_t>(op_size);
  auto gen = [body](uint64_t index) {
    scab::Bytes op(body, 0x5c);
    // Stamp the op with its index so every payload is distinct.
    for (std::size_t i = 0; i < sizeof(uint64_t) && i < op.size(); ++i) {
      op[i] = static_cast<uint8_t>(index >> (8 * i));
    }
    return op;
  };
  // Open loop: record per-op latency exactly (the registry histogram is
  // log2-bucketed — good for dashboards, too coarse for a p99 report).
  std::mutex lat_mu;
  std::vector<double> lat_ms;
  if (open_rate > 0) {
    const auto interval =
        static_cast<scab::host::Time>(1e9 / static_cast<double>(open_rate));
    host.post(id, [&client, &lat_mu, &lat_ms, gen, want, interval] {
      client.run_open_loop(
          gen, want, interval,
          [&lat_mu, &lat_ms](uint64_t, scab::host::Time s,
                             scab::host::Time e) {
            std::lock_guard<std::mutex> lk(lat_mu);
            lat_ms.push_back(static_cast<double>(e - s) / 1e6);
          });
    });
  } else {
    host.post(id, [&client, gen, want] { client.run_closed_loop(gen, want); });
  }
  const auto deadline = t0 + std::chrono::seconds(timeout_s);
  while (client.completed_ops() < want &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const uint64_t done = client.completed_ops();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  host.stop();

  const double mean_latency_ms =
      done > 0 ? static_cast<double>(client.total_latency()) / 1e6 /
                     static_cast<double>(done)
               : 0.0;
  if (open_rate > 0) {
    std::sort(lat_ms.begin(), lat_ms.end());
    auto pct = [&lat_ms](double p) {
      if (lat_ms.empty()) return 0.0;
      const std::size_t rank = static_cast<std::size_t>(
          p * static_cast<double>(lat_ms.size() - 1));
      return lat_ms[rank];
    };
    const double achieved =
        elapsed_ms > 0.0 ? static_cast<double>(done) / (elapsed_ms / 1e3)
                         : 0.0;
    std::printf(
        "{\"client\":%u,\"mode\":\"open\",\"target_rate\":%ld,"
        "\"ops\":%llu,\"completed\":%llu,\"shed\":%llu,"
        "\"elapsed_ms\":%.3f,\"achieved_rate\":%.1f,"
        "\"mean_latency_ms\":%.3f,\"p50_ms\":%.3f,\"p99_ms\":%.3f}\n",
        id, open_rate, static_cast<unsigned long long>(want),
        static_cast<unsigned long long>(done),
        static_cast<unsigned long long>(
            metrics.counter_value("client.shed")),
        elapsed_ms, achieved, mean_latency_ms, pct(0.50), pct(0.99));
  } else {
    std::printf(
        "{\"client\":%u,\"ops\":%llu,\"completed\":%llu,"
        "\"elapsed_ms\":%.3f,\"mean_latency_ms\":%.3f}\n",
        id, static_cast<unsigned long long>(want),
        static_cast<unsigned long long>(done), elapsed_ms, mean_latency_ms);
  }
  if (!metrics_out.empty()) {
    scab::daemon::write_file_atomic(
        metrics_out,
        scab::daemon::format_dump_record(id, cfg->protocol, 0, done, metrics,
                                         tracer) +
            "\n");
  }
  if (done < want) {
    std::fprintf(stderr,
                 "scab-client: timed out with %llu/%llu ops completed\n",
                 static_cast<unsigned long long>(done),
                 static_cast<unsigned long long>(want));
    return 1;
  }
  return 0;
}
