// Per-client execution window: replay dedup and reply caching that stay
// correct when a pipelined client keeps several operations in flight.
//
// Classic PBFT assumes one outstanding request per client, so a scalar
// "last executed client_seq" suffices for replay suppression and a single
// cached reply wire serves every retransmission.  A pipelined client
// (bft::Client in pipeline mode, DESIGN.md §10) breaks both assumptions:
// up to `inflight` client_seqs are outstanding at once, and a view-change
// re-proposal (or the async engine's ACS, which executes in proposer
// order) can commit them out of client_seq order.  Against the scalar
// state, executing seq s+1 first makes seq s look like a replay: every
// replica suppresses it, retransmissions are answered with the WRONG
// cached reply (s+1's, which the client's quorum filter rightly ignores),
// and the payload is silently lost while the client retries forever.
//
// ClientExecWindow tracks the executed set exactly: a contiguous low
// watermark plus the sparse executed seqs above it.  For an honest client
// the sparse set never outgrows its inflight window; a Byzantine client
// skipping its own seqs is capped at kMaxSparse by collapsing its lowest
// gap (self-harm only — no other client's state is affected).
// ClientReplyCache keeps the last kMaxCachedReplies reply wires PER SEQ so
// a retransmission of any recently-executed operation finds its own reply,
// not whichever executed last.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "common/bytes.h"
#include "common/serialize.h"

namespace scab::bft {

class ClientExecWindow {
 public:
  /// Far above any honest client's inflight window (client seqs are issued
  /// contiguously from 1, so gaps only ever span in-flight operations).
  static constexpr std::size_t kMaxSparse = 256;

  bool executed(uint64_t seq) const {
    return seq < next_unexecuted_ || sparse_.contains(seq);
  }

  /// Marks `seq` executed.  Returns false iff it already was (a replay —
  /// the caller must not execute the request again).
  bool mark(uint64_t seq) {
    if (executed(seq)) return false;
    sparse_.insert(seq);
    drain();
    if (sparse_.size() > kMaxSparse) {
      // Only a client skipping its own seqs can get here; collapse its
      // lowest gap so the state stays bounded.
      next_unexecuted_ = *sparse_.begin() + 1;
      sparse_.erase(sparse_.begin());
      drain();
    }
    return true;
  }

  /// Snapshot support (DESIGN.md §13): the window is part of the replica's
  /// durable state — losing it across a restart would turn every replayed
  /// client seq into a fresh execution.
  void serialize(Writer& w) const {
    w.u64(next_unexecuted_);
    w.u32(static_cast<uint32_t>(sparse_.size()));
    for (uint64_t s : sparse_) w.u64(s);
  }
  bool restore(Reader& r) {
    next_unexecuted_ = r.u64();
    const uint32_t n = r.u32();
    sparse_.clear();
    for (uint32_t i = 0; i < n && r.ok(); ++i) sparse_.insert(r.u64());
    return r.ok();
  }

 private:
  void drain() {
    while (sparse_.contains(next_unexecuted_)) {
      sparse_.erase(next_unexecuted_);
      ++next_unexecuted_;
    }
  }

  // Every seq below the watermark has executed; seq 0 is a legal value (a
  // Byzantine client may use it), so "none executed yet" is watermark 0
  // with an empty sparse set, NOT a zero low-water seq.
  uint64_t next_unexecuted_ = 0;
  std::set<uint64_t> sparse_;  // executed seqs at/above the watermark
};

class ClientReplyCache {
 public:
  /// Covers any reasonable client pipeline depth; older replies are only
  /// ever re-requested by clients that already completed them.
  static constexpr std::size_t kMaxCachedReplies = 16;

  void put(uint64_t seq, Bytes wire) {
    replies_[seq] = std::move(wire);
    while (replies_.size() > kMaxCachedReplies) {
      replies_.erase(replies_.begin());
    }
  }

  /// The cached reply wire for `seq`, or nullptr if evicted/unknown.
  const Bytes* find(uint64_t seq) const {
    auto it = replies_.find(seq);
    return it == replies_.end() ? nullptr : &it->second;
  }

  /// Snapshot support: cached replies answer post-restart retransmissions
  /// of operations whose execution the snapshot already covers.
  void serialize(Writer& w) const {
    w.u32(static_cast<uint32_t>(replies_.size()));
    for (const auto& [seq, wire] : replies_) {
      w.u64(seq);
      w.bytes(wire);
    }
  }
  bool restore(Reader& r) {
    const uint32_t n = r.u32();
    replies_.clear();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      const uint64_t seq = r.u64();
      replies_[seq] = r.bytes();
    }
    return r.ok();
  }

 private:
  std::map<uint64_t, Bytes> replies_;  // client_seq -> serialized ReplyMsg
};

}  // namespace scab::bft
