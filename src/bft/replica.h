// PBFT replica (Castro–Liskov), the underlying BFT protocol of §VI-A.
//
// Implements the full normal-case three-phase flow with batching, the
// checkpoint/watermark protocol, a catch-up fetch for lagging replicas, and
// the view-change/new-view protocol.  A watchdog doubles as the Aardvark-
// style fairness monitor the paper requires for CP1: any client request a
// backup has seen that the primary fails to get executed within
// `request_timeout` triggers a view change, so a primary cannot starve
// (or selectively delay) clients indefinitely.
//
// The replica is deliberately generic over its application: CP0–CP3 plug in
// through the ReplicaApp interface (see app.h).
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>

#include "bft/app.h"
#include "bft/client_window.h"
#include "bft/config.h"
#include "bft/envelope.h"
#include "host/host.h"

namespace scab::bft {

class Replica : public host::HostBound<ReplicaContext> {
 public:
  /// `metrics` receives this replica's "bft."-prefixed instruments (plus
  /// whatever the app publishes); `tracer` is the cluster-wide request
  /// tracer.  Both optional — null binds to the inert sinks.
  Replica(host::Host& host, NodeId id, BftConfig config, const KeyRing& keys,
          const host::CostModel& costs, ReplicaApp* app, crypto::Drbg rng,
          obs::MetricsRegistry* metrics = nullptr,
          obs::Tracer* tracer = nullptr);

  /// Arms the watchdog; call once after construction.
  void start();

  /// Recovers durable state (DESIGN.md §13): loads the latest snapshot,
  /// then replays the WAL — acceptance records rebuild in-flight slots,
  /// execution records re-run delivery (with broadcasts suppressed), app
  /// records replay causal executions.  Call once, after construction and
  /// BEFORE start(), while the node is still shielded from traffic (the
  /// harness/daemon crash-flag idiom).  No-op without attached storage.
  void recover();

  // --- host::Node ---
  void on_message(NodeId from, BytesView msg) override;

  // --- ReplicaContext ---
  // id()/now()/schedule()/charge() come from the HostBound mixin.
  const BftConfig& config() const override { return config_; }
  uint64_t view() const override { return view_; }
  bool is_primary() const override { return config_.primary_of(view_) == id(); }
  void send_reply(NodeId client, uint64_t client_seq, Bytes result) override;
  void send_causal(NodeId to, Bytes body) override;
  void broadcast_causal(Bytes body) override;
  void submit_local_request(Bytes payload) override;
  void request_view_change(const char* reason) override;
  void wal_append(BytesView record) override;
  void admit_foreign_request(NodeId client, uint64_t client_seq,
                             Bytes payload) override;
  crypto::Drbg& rng() override { return rng_; }
  const KeyRing& keys() const override { return keys_; }
  obs::MetricsRegistry& metrics() override { return metrics_; }
  obs::Tracer& tracer() override { return tracer_; }

  // --- introspection for tests and benches ---
  uint64_t executed_requests() const { return executed_requests_; }
  uint64_t last_executed_seq() const { return next_exec_ - 1; }
  uint64_t low_watermark() const { return low_watermark_; }
  uint64_t view_changes_completed() const { return view_changes_completed_; }
  bool in_view_change() const { return view_change_active_; }
  bool has_storage() const { return storage_ != nullptr; }

 private:
  struct Slot {
    std::optional<PrePrepare> pre_prepare;
    Bytes digest;
    uint64_t view = 0;  // view the pre-prepare was accepted in
    // replica -> (view, digest) voted; counted only when both match the slot
    std::map<NodeId, std::pair<uint64_t, Bytes>> prepares;
    std::map<NodeId, std::pair<uint64_t, Bytes>> commits;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool executed = false;
  };

  struct PendingRequest {
    NodeId client = 0;
    uint64_t client_seq = 0;
    Bytes payload;  // kept so a backup-turned-primary can re-propose
    host::Time first_seen = 0;
  };

  // --- messaging ---
  void send_envelope(NodeId to, Channel channel, BytesView body);
  void broadcast_bft(BftMsgType type, BytesView body);
  void send_bft(NodeId to, BftMsgType type, BytesView body);

  // --- normal case ---
  void handle_client_request(NodeId from, BytesView body);
  void admit_request(NodeId client, ClientRequestMsg msg, bool skip_validate);
  void maybe_send_batch();
  void flush_batch();
  void handle_pre_prepare(NodeId from, BytesView body);
  void accept_pre_prepare(PrePrepare pp);
  void handle_phase_vote(NodeId from, BytesView body);
  void check_prepared(uint64_t seq);
  void check_committed(uint64_t seq);
  void try_execute();
  void execute_batch(uint64_t seq, const PrePrepare& pp);

  // --- checkpoints & catch-up ---
  void handle_checkpoint(NodeId from, BytesView body);
  void try_fetch_execute();
  void maybe_stabilize(uint64_t seq);
  void garbage_collect(uint64_t stable_seq);
  void note_catchup_target(uint64_t seq);
  void maybe_finish_catchup();

  // --- durability (DESIGN.md §13) ---
  /// WAL record tags.  kAccept/kVote protect against post-recovery
  /// equivocation, kExec makes committed executions durable, kView pins
  /// the view, kApp carries opaque app records (causal executions).
  enum class WalTag : uint8_t {
    kExec = 1,
    kAccept = 2,
    kVote = 3,
    kView = 4,
    kApp = 5,
  };
  void wal_append_record(BytesView rec);
  void apply_wal_record(BytesView rec);
  void write_snapshot();
  Bytes serialize_snapshot();
  bool restore_snapshot(BytesView blob);

  // --- view change ---
  void watchdog_tick();
  void start_view_change(uint64_t target_view, const char* reason);
  void handle_view_change(NodeId from, BytesView body);
  void maybe_assemble_new_view(uint64_t target_view);
  void handle_new_view(NodeId from, BytesView body);
  std::vector<PrePrepare> compute_new_view_batches(
      uint64_t target_view, const std::vector<ViewChange>& proofs) const;
  void enter_view(uint64_t target_view, std::vector<PrePrepare> reproposals);

  Slot& slot(uint64_t seq) { return slots_[seq]; }
  bool in_watermarks(uint64_t seq) const {
    return seq > low_watermark_ && seq <= low_watermark_ + config_.watermark_window;
  }

  BftConfig config_;
  const KeyRing& keys_;
  ReplicaApp* app_;
  crypto::Drbg rng_;

  // Durability: borrowed from the host (host owns, survives rebind);
  // nullptr when the replica runs without storage.  replaying_ gates every
  // side effect during recover(): no WAL appends, no broadcasts.
  host::Storage* storage_ = nullptr;
  bool replaying_ = false;
  bool in_execute_batch_ = false;  // defers app-record syncs to batch end
  bool app_wal_dirty_ = false;

  uint64_t view_ = 0;
  uint64_t next_seq_ = 1;   // primary: next sequence number to assign
  uint64_t next_exec_ = 1;  // next sequence number to execute
  uint64_t low_watermark_ = 0;
  std::map<uint64_t, Slot> slots_;

  // Primary batching.
  std::vector<Request> pending_batch_;
  bool batch_timer_armed_ = false;
  uint64_t local_seq_ = 1;  // for submit_local_request

  // Request admission & watchdog (fairness monitor).
  std::unordered_map<std::string, PendingRequest> pending_requests_;  // by digest hex
  // Windowed, not scalar: a pipelined client's seqs can execute out of
  // order across a view change (client_window.h).
  std::unordered_map<NodeId, ClientExecWindow> executed_window_;
  std::unordered_map<NodeId, ClientReplyCache> reply_cache_;

  // Checkpoints.
  Bytes exec_chain_digest_;
  std::map<uint64_t, std::map<NodeId, Bytes>> checkpoint_votes_;  // seq -> replica -> digest
  std::map<uint64_t, Bytes> own_checkpoints_;

  // Executed batch history for catch-up (seq -> serialized PrePrepare).
  std::map<uint64_t, Bytes> history_;

  // Catch-up fetch: seq -> responder -> serialized batch.
  std::map<uint64_t, std::map<NodeId, Bytes>> fetch_votes_;

  // Catch-up episode tracking ("bft.recovery.catchup_ms"): an episode opens
  // when a stable checkpoint proves we are behind (maybe_stabilize's fetch
  // branch — the state a freshly restarted replica rejoins in), extends if
  // later checkpoints push the target further out, and closes when execution
  // passes the target.
  bool catchup_active_ = false;
  host::Time catchup_started_ = 0;
  uint64_t catchup_target_ = 0;

  // View change.  view_change_votes_ holds at most one vote per sender (the
  // one for the highest view that sender has asked for, tracked in
  // latest_vc_view_), so its total size is bounded by n regardless of how
  // many distinct future views a Byzantine replica floods.
  host::Time view_change_started_ = 0;
  bool view_change_active_ = false;
  uint64_t view_change_target_ = 0;
  std::map<uint64_t, std::map<NodeId, ViewChange>> view_change_votes_;
  std::map<NodeId, uint64_t> latest_vc_view_;
  std::set<uint64_t> new_view_sent_;
  uint64_t view_changes_completed_ = 0;

  // Atomic so the controlling thread can poll progress while the threaded
  // host's worker executes; plain increment semantics under the simulator.
  std::atomic<uint64_t> executed_requests_{0};
  bool started_ = false;

  // Observability.  Handles resolved once in the constructor; gauges mirror
  // the sizes of the Byzantine-facing maps so tests can assert bounds.
  obs::MetricsRegistry& metrics_;
  obs::Tracer& tracer_;
  struct {
    obs::Counter* batches_proposed;
    obs::Counter* pre_prepares_accepted;
    obs::Counter* requests_executed;
    obs::Counter* checkpoints_emitted;
    obs::Counter* view_changes_started;
    obs::Counter* view_changes_completed;
    obs::Counter* replays_suppressed;
    obs::Counter* catchups_completed;
    obs::Counter* wal_replayed;
    obs::Counter* snapshot_loaded;
    obs::Counter* snapshots_written;
    obs::Histogram* wal_append_bytes;
    obs::Histogram* catchup_ms;
    obs::Histogram* batch_size;
    obs::Histogram* inflight_batches;
    obs::Gauge* pending_requests;
    obs::Gauge* checkpoint_votes_tracked;
    obs::Gauge* view_change_votes_tracked;
    obs::Gauge* slots_tracked;
    obs::Gauge* checkpoint_lag;
  } m_;
  void insert_view_change_vote(NodeId from, ViewChange vc);
  void update_state_gauges();
};

}  // namespace scab::bft
