#include "bft/client.h"

#include <algorithm>

namespace scab::bft {

using host::Op;

namespace {
// Exponential-backoff cap: retry delays double per retransmission up to
// base << kMaxBackoffShift.
constexpr uint32_t kMaxBackoffShift = 6;
}  // namespace

bool ReplyQuorum::add(NodeId replica, const ReplyMsg& reply) {
  if (fired_ || reply.client_seq != client_seq_) return false;
  votes_[replica] = reply.result;
  uint32_t matching = 0;
  for (const auto& [_, r] : votes_) {
    if (r == reply.result) ++matching;
  }
  if (matching >= need_) {
    fired_ = true;
    return true;
  }
  return false;
}

Client::Client(host::Host& host, NodeId id, BftConfig config,
               const KeyRing& keys, const host::CostModel& costs,
               ClientProtocol* protocol, crypto::Drbg rng,
               obs::MetricsRegistry* metrics, obs::Tracer* tracer)
    : HostBound(host, id, costs),
      config_(config),
      keys_(keys),
      protocol_(protocol),
      rng_(std::move(rng)),
      metrics_(metrics ? *metrics : obs::MetricsRegistry::inert()),
      tracer_(tracer ? *tracer : obs::Tracer::inert()) {
  m_.submitted = &metrics_.counter("client.submitted");
  m_.completed = &metrics_.counter("client.completed");
  m_.retries = &metrics_.counter("client.retries");
  m_.latency_ns = &metrics_.histogram("client.latency_ns");
}

void Client::run_closed_loop(OpGenerator gen, uint64_t max_ops,
                             CompletionHook hook) {
  generator_ = std::move(gen);
  hook_ = std::move(hook);
  // max_ops counts operations from THIS call (the loop may be re-armed).
  max_ops_ = max_ops == 0 ? 0 : issued_ + max_ops;
  if (!in_flight_) begin_next();
}

void Client::submit(Bytes op, CompletionHook hook) {
  hook_ = std::move(hook);
  generator_ = nullptr;
  max_ops_ = 0;
  in_flight_ = true;
  retries_this_op_ = 0;
  inflight_index_ = issued_++;
  inflight_seq_ = next_seq();
  inflight_op_ = std::move(op);
  inflight_start_ = now();
  m_.submitted->inc();
  tracer_.record(id(), inflight_seq_, obs::Phase::kSubmit, now());
  protocol_->start(inflight_seq_, inflight_op_, *this);
  arm_retry();
}

void Client::begin_next() {
  if (generator_ == nullptr) return;
  if (max_ops_ != 0 && issued_ >= max_ops_) return;
  in_flight_ = true;
  retries_this_op_ = 0;
  inflight_index_ = issued_;
  inflight_op_ = generator_(issued_);
  ++issued_;
  inflight_seq_ = next_seq();
  inflight_start_ = now();
  m_.submitted->inc();
  tracer_.record(id(), inflight_seq_, obs::Phase::kSubmit, now());
  protocol_->start(inflight_seq_, inflight_op_, *this);
  arm_retry();
}

void Client::arm_retry() {
  const uint64_t epoch = ++retry_epoch_;
  // Capped exponential backoff: the k-th retransmission of one operation
  // waits base << min(k, cap), plus DRBG jitter of up to a quarter of the
  // delay so retrying clients desynchronize.  The FIRST arm of an operation
  // is exactly `retry_timeout_` with no DRBG draw: on the happy path (no
  // retry ever fires) the client's random stream is untouched, which keeps
  // seeded simulator runs bit-identical to the pre-backoff behavior.
  host::Time delay = retry_timeout_
                     << std::min(retries_this_op_, kMaxBackoffShift);
  if (retries_this_op_ > 0) delay += rng_.uniform(delay / 4 + 1);
  schedule(delay, [this, epoch] {
    if (!in_flight_ || epoch != retry_epoch_) return;
    ++retries_this_op_;
    m_.retries->inc();
    protocol_->on_retransmit(*this);
    arm_retry();
  });
}

void Client::send_request(uint64_t client_seq, Bytes payload) {
  ClientRequestMsg msg;
  msg.client_seq = client_seq;
  msg.payload = std::move(payload);
  const Bytes body = msg.serialize();
  for (NodeId r = 0; r < config_.n; ++r) {
    charge(Op::kMsgOverhead, 0);
    charge(Op::kMac, body.size());
    send_raw(r, seal_envelope(keys_, Channel::kClientRequest, id(), r, body));
  }
}

void Client::send_request_to(NodeId replica, uint64_t client_seq,
                             Bytes payload) {
  ClientRequestMsg msg;
  msg.client_seq = client_seq;
  msg.payload = std::move(payload);
  const Bytes body = msg.serialize();
  charge(Op::kMac, body.size());
  send_raw(replica,
           seal_envelope(keys_, Channel::kClientRequest, id(), replica, body));
}

void Client::send_causal(NodeId replica, Bytes body) {
  charge(Op::kMac, body.size());
  send_raw(replica, seal_envelope(keys_, Channel::kCausal, id(), replica, body));
}

void Client::complete(Bytes result) {
  if (!in_flight_) return;
  in_flight_ = false;
  ++retry_epoch_;  // cancel pending retries
  // Back to the base interval after a successful reply: one slow operation
  // (e.g. one that rode out a view change) must not leave the next
  // operation's first retransmission waiting a maxed-out backoff.
  retries_this_op_ = 0;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    last_result_ = std::move(result);
    total_latency_ += now() - inflight_start_;
  }
  completed_.fetch_add(1, std::memory_order_release);
  m_.completed->inc();
  m_.latency_ns->record(now() - inflight_start_);
  tracer_.record(id(), inflight_seq_, obs::Phase::kCompleted, now());
  if (hook_) hook_(inflight_index_, inflight_start_, now());
  begin_next();
}

void Client::on_message(NodeId /*from*/, BytesView msg) {
  charge(Op::kMsgOverhead, 0);
  charge(Op::kMac, msg.size());
  auto env = open_envelope(keys_, id(), msg);
  if (!env) return;

  switch (env->channel) {
    case Channel::kReply: {
      if (!in_flight_) return;
      auto reply = ReplyMsg::parse(env->body);
      if (!reply || reply->replica != env->sender) return;
      if (env->sender >= config_.n) return;
      protocol_->on_reply(env->sender, *reply, *this);
      break;
    }
    case Channel::kCausal:
      protocol_->on_causal_message(env->sender, env->body, *this);
      break;
    default:
      break;  // clients ignore BFT traffic
  }
}

}  // namespace scab::bft
