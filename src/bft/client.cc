#include "bft/client.h"

#include <algorithm>

#include "bft/batch.h"

namespace scab::bft {

using host::Op;

namespace {
// Exponential-backoff cap: retry delays double per retransmission up to
// base << kMaxBackoffShift.
constexpr uint32_t kMaxBackoffShift = 6;
}  // namespace

bool ReplyQuorum::add(NodeId replica, const ReplyMsg& reply) {
  if (fired_ || reply.client_seq != client_seq_) return false;
  votes_[replica] = reply.result;
  uint32_t matching = 0;
  for (const auto& [_, r] : votes_) {
    if (r == reply.result) ++matching;
  }
  if (matching >= need_) {
    fired_ = true;
    return true;
  }
  return false;
}

Client::Client(host::Host& host, NodeId id, BftConfig config,
               const KeyRing& keys, const host::CostModel& costs,
               ClientProtocol* protocol, crypto::Drbg rng,
               obs::MetricsRegistry* metrics, obs::Tracer* tracer)
    : HostBound(host, id, costs),
      config_(config),
      keys_(keys),
      protocol_(protocol),
      rng_(std::move(rng)),
      metrics_(metrics ? *metrics : obs::MetricsRegistry::inert()),
      tracer_(tracer ? *tracer : obs::Tracer::inert()) {
  m_.submitted = &metrics_.counter("client.submitted");
  m_.completed = &metrics_.counter("client.completed");
  m_.retries = &metrics_.counter("client.retries");
  m_.latency_ns = &metrics_.histogram("client.latency_ns");
}

Client::~Client() = default;

// Per-slot view of the client: every ClientContext capability forwards to
// the shared node (one sequential executor, one rng, one seq counter);
// only complete() is slot-scoped so a finishing protocol frees exactly its
// own slot.
struct Client::SlotContext final : ClientContext {
  SlotContext(Client* client, std::size_t slot) : c(client), s(slot) {}

  NodeId id() const override { return c->id(); }
  const BftConfig& config() const override { return c->config_; }
  host::Time now() const override { return c->now(); }
  void send_request(uint64_t client_seq, Bytes payload) override {
    c->send_request(client_seq, std::move(payload));
  }
  void send_request_to(NodeId replica, uint64_t client_seq,
                       Bytes payload) override {
    c->send_request_to(replica, client_seq, std::move(payload));
  }
  void send_causal(NodeId replica, Bytes body) override {
    c->send_causal(replica, std::move(body));
  }
  uint64_t next_seq() override { return c->next_seq(); }
  void complete(Bytes result) override {
    c->complete_slot(s, std::move(result));
  }
  void charge(host::Op op, std::size_t bytes) override { c->charge(op, bytes); }
  crypto::Drbg& rng() override { return c->rng_; }
  const KeyRing& keys() const override { return c->keys_; }

  Client* c;
  std::size_t s;
};

void Client::set_pipeline(ProtocolFactory factory, uint32_t inflight,
                          uint32_t batch) {
  pipeline_inflight_ = std::max<uint32_t>(1, inflight);
  pipeline_batch_ = std::max<uint32_t>(1, batch);
  slots_.clear();
  if (pipeline_inflight_ == 1 && pipeline_batch_ == 1) return;  // legacy path
  m_.inflight_slots = &metrics_.histogram("client.pipeline_slots");
  for (uint32_t i = 0; i < pipeline_inflight_; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->protocol = factory();
    slot->ctx = std::make_unique<SlotContext>(this, i);
    slots_.push_back(std::move(slot));
  }
}

void Client::run_closed_loop(OpGenerator gen, uint64_t max_ops,
                             CompletionHook hook) {
  generator_ = std::move(gen);
  hook_ = std::move(hook);
  // max_ops counts operations from THIS call (the loop may be re-armed).
  max_ops_ = max_ops == 0 ? 0 : issued_ + max_ops;
  if (pipelined()) {
    fill_slots();
    return;
  }
  if (!in_flight_) begin_next();
}

void Client::run_open_loop(OpGenerator gen, uint64_t max_ops,
                           host::Time interval, CompletionHook hook) {
  generator_ = std::move(gen);
  hook_ = std::move(hook);
  max_ops_ = max_ops == 0 ? 0 : issued_ + max_ops;
  open_loop_ = true;
  open_interval_ = std::max<host::Time>(1, interval);
  if (m_.shed == nullptr) m_.shed = &metrics_.counter("client.shed");
  open_tick();
}

void Client::open_tick() {
  if (!open_loop_ || generator_ == nullptr) return;
  if (max_ops_ != 0 && issued_ >= max_ops_) return;  // done issuing
  issue_one();
  if (max_ops_ != 0 && issued_ >= max_ops_) return;
  // Deterministic pacing: the base interval plus a DRBG draw of up to an
  // eighth, so many open-loop clients sharing a cluster desynchronize while
  // seeded runs stay bit-identical.
  host::Time delay = open_interval_;
  delay += rng_.uniform(open_interval_ / 8 + 1);
  schedule(delay, [this] { open_tick(); });
}

void Client::issue_one() {
  if (pipelined()) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = *slots_[i];
      if (slot.in_flight) continue;
      // One logical op per tick: the open loop paces individual requests,
      // so slot batching stays at one regardless of pipeline_batch_.
      slot.index_base = issued_;
      slot.logical = 1;
      slot.op = generator_(issued_);
      ++issued_;
      slot.seq = next_seq();
      slot.in_flight = true;
      slot.retries = 0;
      slot.start = now();
      m_.submitted->inc();
      tracer_.record(id(), slot.seq, obs::Phase::kSubmit, now());
      slot.protocol->start(slot.seq, slot.op, *slot.ctx);
      arm_slot_retry(i);
      return;
    }
    m_.shed->inc();
    return;
  }
  if (in_flight_) {
    m_.shed->inc();
    return;
  }
  begin_next();
}

void Client::fill_slots() {
  if (generator_ == nullptr) return;
  // Occupancy after refill, recorded on early exits too.
  auto record_occupancy = [this] {
    uint64_t busy = 0;
    for (const auto& s : slots_) busy += s->in_flight ? 1 : 0;
    m_.inflight_slots->record(busy);
  };
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = *slots_[i];
    if (slot.in_flight) continue;
    if (max_ops_ != 0 && issued_ >= max_ops_) {
      record_occupancy();
      return;
    }
    uint32_t k = pipeline_batch_;
    if (max_ops_ != 0) {
      k = static_cast<uint32_t>(
          std::min<uint64_t>(k, max_ops_ - issued_));
    }
    std::vector<Bytes> ops;
    ops.reserve(k);
    for (uint32_t j = 0; j < k; ++j) ops.push_back(generator_(issued_ + j));
    slot.index_base = issued_;
    slot.logical = k;
    issued_ += k;
    // A batch of one is never framed: the wire stays bit-identical to the
    // single-request path.
    slot.op = k == 1 ? std::move(ops[0]) : encode_op_batch(ops);
    slot.seq = next_seq();
    slot.in_flight = true;
    slot.retries = 0;
    slot.start = now();
    for (uint32_t j = 0; j < k; ++j) m_.submitted->inc();
    tracer_.record(id(), slot.seq, obs::Phase::kSubmit, now());
    slot.protocol->start(slot.seq, slot.op, *slot.ctx);
    arm_slot_retry(i);
  }
  record_occupancy();
}

void Client::arm_slot_retry(std::size_t slot_index) {
  Slot& slot = *slots_[slot_index];
  const uint64_t epoch = ++slot.retry_epoch;
  host::Time delay = retry_timeout_ << std::min(slot.retries, kMaxBackoffShift);
  if (slot.retries > 0) delay += rng_.uniform(delay / 4 + 1);
  schedule(delay, [this, slot_index, epoch] {
    Slot& s = *slots_[slot_index];
    if (!s.in_flight || epoch != s.retry_epoch) return;
    ++s.retries;
    m_.retries->inc();
    s.protocol->on_retransmit(*s.ctx);
    arm_slot_retry(slot_index);
  });
}

void Client::complete_slot(std::size_t slot_index, Bytes result) {
  Slot& slot = *slots_[slot_index];
  if (!slot.in_flight) return;
  slot.in_flight = false;
  ++slot.retry_epoch;  // cancel pending retries
  slot.retries = 0;
  const host::Time end = now();
  const host::Time latency = end - slot.start;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    last_result_ = std::move(result);
    // Every logical payload in the operation experienced the slot latency.
    total_latency_ += latency * slot.logical;
  }
  completed_.fetch_add(slot.logical, std::memory_order_release);
  for (uint32_t j = 0; j < slot.logical; ++j) {
    m_.completed->inc();
    m_.latency_ns->record(latency);
  }
  tracer_.record(id(), slot.seq, obs::Phase::kCompleted, end);
  if (hook_) {
    for (uint32_t j = 0; j < slot.logical; ++j) {
      hook_(slot.index_base + j, slot.start, end);
    }
  }
  // Open loop: the timer chain — not completions — decides when the next
  // operation starts; refilling here would collapse back into closed loop.
  if (!open_loop_) fill_slots();
}

void Client::submit(Bytes op, CompletionHook hook) {
  if (pipelined()) return;  // pipelined mode drives ops via run_closed_loop
  hook_ = std::move(hook);
  generator_ = nullptr;
  max_ops_ = 0;
  in_flight_ = true;
  retries_this_op_ = 0;
  inflight_index_ = issued_++;
  inflight_seq_ = next_seq();
  inflight_op_ = std::move(op);
  inflight_start_ = now();
  m_.submitted->inc();
  tracer_.record(id(), inflight_seq_, obs::Phase::kSubmit, now());
  protocol_->start(inflight_seq_, inflight_op_, *this);
  arm_retry();
}

void Client::begin_next() {
  if (generator_ == nullptr) return;
  if (max_ops_ != 0 && issued_ >= max_ops_) return;
  in_flight_ = true;
  retries_this_op_ = 0;
  inflight_index_ = issued_;
  inflight_op_ = generator_(issued_);
  ++issued_;
  inflight_seq_ = next_seq();
  inflight_start_ = now();
  m_.submitted->inc();
  tracer_.record(id(), inflight_seq_, obs::Phase::kSubmit, now());
  protocol_->start(inflight_seq_, inflight_op_, *this);
  arm_retry();
}

void Client::arm_retry() {
  const uint64_t epoch = ++retry_epoch_;
  // Capped exponential backoff: the k-th retransmission of one operation
  // waits base << min(k, cap), plus DRBG jitter of up to a quarter of the
  // delay so retrying clients desynchronize.  The FIRST arm of an operation
  // is exactly `retry_timeout_` with no DRBG draw: on the happy path (no
  // retry ever fires) the client's random stream is untouched, which keeps
  // seeded simulator runs bit-identical to the pre-backoff behavior.
  host::Time delay = retry_timeout_
                     << std::min(retries_this_op_, kMaxBackoffShift);
  if (retries_this_op_ > 0) delay += rng_.uniform(delay / 4 + 1);
  schedule(delay, [this, epoch] {
    if (!in_flight_ || epoch != retry_epoch_) return;
    ++retries_this_op_;
    m_.retries->inc();
    protocol_->on_retransmit(*this);
    arm_retry();
  });
}

void Client::send_request(uint64_t client_seq, Bytes payload) {
  ClientRequestMsg msg;
  msg.client_seq = client_seq;
  msg.payload = std::move(payload);
  const Bytes body = msg.serialize();
  for (NodeId r = 0; r < config_.n; ++r) {
    charge(Op::kMsgOverhead, 0);
    charge(Op::kMac, body.size());
    send_raw(r, seal_envelope(keys_, Channel::kClientRequest, id(), r, body));
  }
}

void Client::send_request_to(NodeId replica, uint64_t client_seq,
                             Bytes payload) {
  ClientRequestMsg msg;
  msg.client_seq = client_seq;
  msg.payload = std::move(payload);
  const Bytes body = msg.serialize();
  charge(Op::kMac, body.size());
  send_raw(replica,
           seal_envelope(keys_, Channel::kClientRequest, id(), replica, body));
}

void Client::send_causal(NodeId replica, Bytes body) {
  charge(Op::kMac, body.size());
  send_raw(replica, seal_envelope(keys_, Channel::kCausal, id(), replica, body));
}

void Client::complete(Bytes result) {
  if (!in_flight_) return;
  in_flight_ = false;
  ++retry_epoch_;  // cancel pending retries
  // Back to the base interval after a successful reply: one slow operation
  // (e.g. one that rode out a view change) must not leave the next
  // operation's first retransmission waiting a maxed-out backoff.
  retries_this_op_ = 0;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    last_result_ = std::move(result);
    total_latency_ += now() - inflight_start_;
  }
  completed_.fetch_add(1, std::memory_order_release);
  m_.completed->inc();
  m_.latency_ns->record(now() - inflight_start_);
  tracer_.record(id(), inflight_seq_, obs::Phase::kCompleted, now());
  if (hook_) hook_(inflight_index_, inflight_start_, now());
  if (!open_loop_) begin_next();
}

void Client::on_message(NodeId /*from*/, BytesView msg) {
  charge(Op::kMsgOverhead, 0);
  charge(Op::kMac, msg.size());
  auto env = open_envelope(keys_, id(), msg);
  if (!env) return;

  switch (env->channel) {
    case Channel::kReply: {
      auto reply = ReplyMsg::parse(env->body);
      if (!reply || reply->replica != env->sender) return;
      if (env->sender >= config_.n) return;
      if (pipelined()) {
        // Fan out to every in-flight slot: each slot's ReplyQuorum filters
        // by its own client_seq, so only the owning slot counts the vote.
        for (auto& slot : slots_) {
          if (slot->in_flight) {
            slot->protocol->on_reply(env->sender, *reply, *slot->ctx);
          }
        }
        return;
      }
      if (!in_flight_) return;
      protocol_->on_reply(env->sender, *reply, *this);
      break;
    }
    case Channel::kCausal:
      if (pipelined()) {
        for (auto& slot : slots_) {
          if (slot->in_flight) {
            slot->protocol->on_causal_message(env->sender, env->body,
                                              *slot->ctx);
          }
        }
        return;
      }
      protocol_->on_causal_message(env->sender, env->body, *this);
      break;
    default:
      break;  // clients ignore BFT traffic
  }
}

}  // namespace scab::bft
