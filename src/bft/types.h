// Wire types for the PBFT substrate (Castro–Liskov message flow).
//
// Every message travels inside an Envelope carrying a channel tag, the
// sender id, and a truncated-HMAC authenticator over (channel, sender,
// receiver, body) under the pairwise session key — the paper's
// "authenticated channels ... realized using message authentication codes"
// (§III).  View-change and new-view bodies additionally carry simulated
// digital signatures (see keyring.h) because they are relayed.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/serialize.h"
#include "host/time.h"

namespace scab::bft {

using host::NodeId;

/// Message channels multiplexed over one simulated socket.
enum class Channel : uint8_t {
  kClientRequest = 0,  // client -> replica
  kBft = 1,            // replica <-> replica: PBFT protocol messages
  kCausal = 2,         // replica <-> replica / client: causal-layer payloads
  kReply = 3,          // replica -> client
};

enum class BftMsgType : uint8_t {
  kPrePrepare = 0,
  kPrepare = 1,
  kCommit = 2,
  kCheckpoint = 3,
  kViewChange = 4,
  kNewView = 5,
  kFetch = 6,      // catch-up: request executed batches [from, to]
  kFetchResp = 7,  // catch-up: one executed batch
};

/// A client request as ordered by the BFT protocol.  `payload` is opaque to
/// the BFT core; the causal layer defines its meaning (ciphertext,
/// commitment, (ID, c) pair, or plain operation).
struct Request {
  NodeId client = 0;
  uint64_t client_seq = 0;
  Bytes payload;

  Bytes digest() const;
  void write(Writer& w) const;
  static std::optional<Request> read(Reader& r);
  bool operator==(const Request&) const = default;

  /// A null request (new-view gap filler); apps skip it.
  static Request null() { return Request{}; }
  bool is_null() const { return client == 0 && payload.empty(); }
};

struct PrePrepare {
  uint64_t view = 0;
  uint64_t seq = 0;
  std::vector<Request> batch;

  Bytes batch_digest() const;
  Bytes serialize() const;
  static std::optional<PrePrepare> parse(BytesView wire);
};

/// PREPARE and COMMIT share a body shape.
struct PhaseVote {
  BftMsgType type = BftMsgType::kPrepare;  // kPrepare or kCommit
  uint64_t view = 0;
  uint64_t seq = 0;
  Bytes digest;
  NodeId replica = 0;

  Bytes serialize() const;
  static std::optional<PhaseVote> parse(BytesView wire);
};

struct Checkpoint {
  uint64_t seq = 0;
  Bytes state_digest;
  NodeId replica = 0;

  Bytes serialize() const;
  static std::optional<Checkpoint> parse(BytesView wire);
};

/// A prepared certificate carried in a VIEW-CHANGE: the batch is inlined so
/// the new primary can re-propose without a fetch protocol.
struct PreparedProof {
  uint64_t seq = 0;
  uint64_t view = 0;
  Bytes batch_wire;  // serialized PrePrepare

  void write(Writer& w) const;
  static std::optional<PreparedProof> read(Reader& r);
};

struct ViewChange {
  uint64_t new_view = 0;
  uint64_t stable_seq = 0;  // last stable checkpoint
  std::vector<PreparedProof> prepared;
  NodeId replica = 0;
  Bytes signature;  // over everything above

  Bytes signed_body() const;
  Bytes serialize() const;
  static std::optional<ViewChange> parse(BytesView wire);
};

struct NewView {
  uint64_t view = 0;
  std::vector<Bytes> view_changes;  // serialized ViewChange messages
  std::vector<Bytes> pre_prepares;  // serialized PrePrepare messages

  Bytes serialize() const;
  static std::optional<NewView> parse(BytesView wire);
};

struct ClientRequestMsg {
  uint64_t client_seq = 0;
  Bytes payload;
  bool forwarded = false;  // true when relayed by a backup to the primary

  Bytes serialize() const;
  static std::optional<ClientRequestMsg> parse(BytesView wire);
};

struct ReplyMsg {
  uint64_t view = 0;
  uint64_t client_seq = 0;
  NodeId replica = 0;
  Bytes result;

  Bytes serialize() const;
  static std::optional<ReplyMsg> parse(BytesView wire);
};

/// Tags a BFT body with its message type.
Bytes tag_bft(BftMsgType type, BytesView body);
std::optional<std::pair<BftMsgType, Bytes>> untag_bft(BytesView wire);

}  // namespace scab::bft
