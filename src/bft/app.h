// The interface between the PBFT core and the layer above it (a plain
// replicated service, or one of the causal engines CP0–CP3).
//
// The BFT core calls on_deliver() for every request in total order; the app
// decides when (and whether) to execute and reply — this is exactly the
// seam where the paper's schedule/reveal split plugs in: plain PBFT replies
// immediately, the causal engines start their reveal phase instead and
// reply only after the plaintext is recovered.
#pragma once

#include <functional>

#include "bft/config.h"
#include "bft/keyring.h"
#include "bft/types.h"
#include "crypto/drbg.h"
#include "host/cost_model.h"
#include "host/worker_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace scab::bft {

/// Capabilities the replica exposes to its app.
class ReplicaContext {
 public:
  virtual ~ReplicaContext() = default;

  virtual NodeId id() const = 0;
  virtual const BftConfig& config() const = 0;
  virtual uint64_t view() const = 0;
  virtual bool is_primary() const = 0;
  virtual host::Time now() const = 0;

  /// Sends a REPLY to the client (normally called from on_deliver or later,
  /// once the causal reveal completed).
  virtual void send_reply(NodeId client, uint64_t client_seq, Bytes result) = 0;

  /// Causal-channel point-to-point message to another node.
  virtual void send_causal(NodeId to, Bytes body) = 0;
  /// Causal-channel broadcast to all other replicas.
  virtual void broadcast_causal(Bytes body) = 0;

  /// Primary-only: injects a request originated by the replica itself into
  /// the batch stream (used for CP1's CLEANUP operations). No-op on backups.
  virtual void submit_local_request(Bytes payload) = 0;

  /// Votes for a view change (fairness violation, cleanup-rule violation).
  virtual void request_view_change(const char* reason) = 0;

  /// Admits a request on behalf of another client, bypassing app validation
  /// (CP1 amplification: the forwarded witness is self-certifying).  The
  /// request joins the normal admission path: the primary batches it,
  /// backups watch it.
  virtual void admit_foreign_request(NodeId client, uint64_t client_seq,
                                     Bytes payload) = 0;

  /// Schedules an app-level timer (amplification delays, cleanup checks).
  virtual void schedule(host::Time delay, std::function<void()> fn) = 0;

  /// Appends an application-level record to the replica's durable WAL
  /// (DESIGN.md §13).  The causal engines log "request X executed" here so
  /// a post-crash replay never runs a revealed operation twice.  Records
  /// are replayed, in append order interleaved with the BFT records, via
  /// ReplicaApp::on_wal_record.  No-op on a replica without storage.
  virtual void wal_append(BytesView record) { (void)record; }

  /// CPU cost charging and utilities.
  virtual void charge(host::Op op, std::size_t bytes) = 0;

  /// Hands a self-contained job to the host's crypto worker pool; the
  /// continuation the job returns runs back on this replica's sequential
  /// executor (host/worker_pool.h contract).  The default runs everything
  /// inline, which is exactly what the deterministic simulator does.
  virtual void offload(host::PoolJob job) {
    if (!job) return;
    if (auto cont = job()) cont();
  }
  virtual crypto::Drbg& rng() = 0;
  virtual const KeyRing& keys() const = 0;

  /// This replica's metrics registry; apps publish "cp0."/"cp1."/... metrics
  /// here.  Defaults to the inert sink so contexts without instrumentation
  /// (and tests that don't care) need no changes.
  virtual obs::MetricsRegistry& metrics() { return obs::MetricsRegistry::inert(); }
  /// Cluster-wide request tracer (shared across replicas so phase events
  /// merge into one span per request).
  virtual obs::Tracer& tracer() { return obs::Tracer::inert(); }
};

class ReplicaApp {
 public:
  virtual ~ReplicaApp() = default;

  /// A request was committed at sequence number `seq` (called in strictly
  /// increasing order, once per request in a batch).
  virtual void on_deliver(uint64_t seq, const Request& req,
                          ReplicaContext& ctx) = 0;

  /// The batch whose requests were just delivered finished (called once per
  /// executed batch, after the last on_deliver).  Apps that defer per-request
  /// work to amortize it across a batch flush here (CP1's reveal executions).
  virtual void on_batch_end(ReplicaContext& ctx) { (void)ctx; }

  /// A causal-channel message arrived (already MAC-authenticated).
  virtual void on_causal_message(NodeId from, BytesView body,
                                 ReplicaContext& ctx) {
    (void)from;
    (void)body;
    (void)ctx;
  }

  /// Pre-admission check for a client request (both at the primary before
  /// batching and at backups before forwarding).  CP0 verifies the
  /// threshold ciphertext here; CP1 checks the commitment header.
  virtual bool validate_request(NodeId client, const ClientRequestMsg& msg,
                                ReplicaContext& ctx) {
    (void)client;
    (void)msg;
    (void)ctx;
    return true;
  }

  /// The replica moved to a new view.
  virtual void on_new_view(uint64_t view, ReplicaContext& ctx) {
    (void)view;
    (void)ctx;
  }

  // --- durability (DESIGN.md §13) ---
  // The replica snapshots itself at every stable checkpoint; the app's
  // contribution rides along as an opaque blob.  serialize_state must be a
  // pure function of the app's current state: no RNG draws, no charges, no
  // sends — a replica with storage must stay bit-identical to one without.

  /// The app's durable state (service contents + causal pending/reveal
  /// state) as of now.  Default: stateless app, empty blob.
  virtual Bytes serialize_state(ReplicaContext& ctx) {
    (void)ctx;
    return {};
  }
  /// Restores a blob produced by serialize_state.  Called once, before WAL
  /// replay, on a freshly constructed app.  Returns false on a malformed
  /// blob (recovery then proceeds from empty app state — the BFT layer
  /// still replays deliveries).  Default accepts only the empty blob.
  virtual bool restore_state(BytesView blob, ReplicaContext& ctx) {
    (void)ctx;
    return blob.empty();
  }
  /// Replays one record the app logged via ReplicaContext::wal_append,
  /// in append order relative to the replayed deliveries.
  virtual void on_wal_record(BytesView record, ReplicaContext& ctx) {
    (void)record;
    (void)ctx;
  }
};

}  // namespace scab::bft
