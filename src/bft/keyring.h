// Key material for the simulated deployment.
//
// * Pairwise session keys give authenticated channels (HMAC, §III).
// * Pairwise AEAD keys give authenticated AND private channels for the
//   secret-share traffic of CP2/CP3 (§V-D).
// * Per-node "signing" keys simulate digital signatures for the relayable
//   view-change messages: sign_i(m) = HMAC(K_i, m), and every node can
//   verify through the shared registry.  In a real deployment these would
//   be Ed25519 signatures; the cost model prices them separately, and no
//   protocol property depends on the stronger primitive because the
//   registry is honest.  (Castro–Liskov's MAC-only view change is a known
//   but much longer construction.)
//
// In production the pairwise keys would come from a PKI handshake; here a
// trusted setup derives everything from one seed, matching the paper's CP0
// dealer assumption and keeping runs reproducible.
#pragma once

#include <memory>
#include <unordered_map>

#include "common/bytes.h"
#include "crypto/drbg.h"

namespace scab::bft {

using NodeId = uint32_t;

class KeyRing {
 public:
  /// Derives all keys for the given node ids from `seed`.
  KeyRing(BytesView seed, const std::vector<NodeId>& nodes);

  /// Symmetric session key for the unordered pair {a, b} (32 bytes).
  const Bytes& session_key(NodeId a, NodeId b) const;

  /// AEAD key (64 bytes) for the private channel between a and b.
  const Bytes& channel_key(NodeId a, NodeId b) const;

  /// Simulated signature: tag = HMAC(signing key of `node`, msg).
  Bytes sign(NodeId node, BytesView msg) const;
  bool verify(NodeId node, BytesView msg, BytesView sig) const;

  bool knows(NodeId node) const { return sign_keys_.contains(node); }

 private:
  static uint64_t pair_key(NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  std::unordered_map<uint64_t, Bytes> session_keys_;
  std::unordered_map<uint64_t, Bytes> channel_keys_;
  std::unordered_map<NodeId, Bytes> sign_keys_;
};

}  // namespace scab::bft
