// BFT client: closed-loop request issuing (the paper's workload model:
// "Clients invoke requests in a closed-loop, where a client does not start
// a new request before receiving a reply for a previous one").
//
// The client core handles sequencing, retransmission, and latency
// accounting; a pluggable ClientProtocol defines what a "request" is on the
// wire — plain PBFT payloads, CP0 threshold ciphertexts, CP1
// commitment-then-opening (two BFT rounds), or CP2/CP3 secret shares over
// private channels.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "bft/config.h"
#include "bft/envelope.h"
#include "host/host.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace scab::bft {

/// Capabilities the client core exposes to its protocol.
class ClientContext {
 public:
  virtual ~ClientContext() = default;

  virtual NodeId id() const = 0;
  virtual const BftConfig& config() const = 0;
  virtual host::Time now() const = 0;

  /// Multicasts a request payload to all replicas (Aardvark-style).
  virtual void send_request(uint64_t client_seq, Bytes payload) = 0;
  /// Sends a request payload to a single replica (partial-failure tests).
  virtual void send_request_to(NodeId replica, uint64_t client_seq,
                               Bytes payload) = 0;
  /// Point-to-point causal-channel message to one replica (secret shares).
  virtual void send_causal(NodeId replica, Bytes body) = 0;

  /// Allocates a fresh client sequence number (CP1's reveal round runs as a
  /// separate BFT request).
  virtual uint64_t next_seq() = 0;

  /// Declares the in-flight operation complete with `result`.
  virtual void complete(Bytes result) = 0;

  virtual void charge(host::Op op, std::size_t bytes) = 0;
  virtual crypto::Drbg& rng() = 0;
  virtual const KeyRing& keys() const = 0;
};

class ClientProtocol {
 public:
  virtual ~ClientProtocol() = default;

  /// Begins one operation. `op` is the application-level request body.
  virtual void start(uint64_t client_seq, BytesView op, ClientContext& ctx) = 0;

  /// A REPLY arrived from `replica` (already authenticated).
  virtual void on_reply(NodeId replica, const ReplyMsg& reply,
                        ClientContext& ctx) = 0;

  /// A causal-channel message arrived.
  virtual void on_causal_message(NodeId from, BytesView body,
                                 ClientContext& ctx) {
    (void)from;
    (void)body;
    (void)ctx;
  }

  /// Retransmission timer fired while the operation is still in flight.
  virtual void on_retransmit(ClientContext& ctx) { (void)ctx; }
};

/// Counts f+1 matching replies for one client_seq.
class ReplyQuorum {
 public:
  void arm(uint64_t client_seq, uint32_t need) {
    client_seq_ = client_seq;
    need_ = need;
    votes_.clear();
    fired_ = false;
  }

  /// Returns true exactly once, when `need` distinct replicas reported the
  /// same result for the armed client_seq.
  bool add(NodeId replica, const ReplyMsg& reply);

  bool fired() const { return fired_; }

 private:
  uint64_t client_seq_ = 0;
  uint32_t need_ = 0;
  bool fired_ = false;
  std::map<NodeId, Bytes> votes_;
};

class Client : public host::HostBound<ClientContext> {
 public:
  /// `metrics` receives "client."-prefixed counters/histograms; `tracer` is
  /// the cluster-wide request tracer (kSubmit/kCompleted endpoints).  Both
  /// optional — null binds to the inert sinks.
  Client(host::Host& host, NodeId id, BftConfig config, const KeyRing& keys,
         const host::CostModel& costs, ClientProtocol* protocol,
         crypto::Drbg rng, obs::MetricsRegistry* metrics = nullptr,
         obs::Tracer* tracer = nullptr);
  // Out-of-line: slots hold unique_ptrs to the forward-declared SlotContext.
  ~Client() override;

  /// Generates the application body of operation #index.
  using OpGenerator = std::function<Bytes(uint64_t index)>;
  /// Called when an operation completes (for workload bookkeeping).
  using CompletionHook = std::function<void(uint64_t index, host::Time start,
                                            host::Time end)>;

  /// Issues `max_ops` operations back-to-back (0 = until the sim stops).
  void run_closed_loop(OpGenerator gen, uint64_t max_ops,
                       CompletionHook hook = nullptr);

  /// Open-loop workload: issues one operation per `interval` nanoseconds
  /// (paced with deterministic DRBG jitter) regardless of completions.  A
  /// tick that finds every slot busy SHEDS its operation — counted in
  /// "client.shed", never queued — so the achieved rate degrades visibly
  /// instead of building an unbounded backlog.  `max_ops` bounds the number
  /// of operations ISSUED (0 = unbounded; shed ticks do not count).
  /// Composes with set_pipeline for more than one in-flight slot (use
  /// batch = 1: open loop paces logical ops individually).
  void run_open_loop(OpGenerator gen, uint64_t max_ops, host::Time interval,
                     CompletionHook hook = nullptr);

  /// Issues a single operation.
  void submit(Bytes op, CompletionHook hook = nullptr);

  /// Builds one ClientProtocol instance (pipelined mode needs one per slot).
  using ProtocolFactory = std::function<std::unique_ptr<ClientProtocol>()>;

  /// Switches run_closed_loop into pipelined mode: up to `inflight`
  /// operations in flight at once (each on its own protocol instance from
  /// `factory`), with `batch` logical payloads aggregated per operation
  /// (framed via bft/batch.h — the protocol must be batch-aware when
  /// batch > 1; a batch of one is submitted unframed, bit-identical to the
  /// closed-loop path).  Replies are fanned out to every in-flight slot;
  /// ReplyQuorum's client_seq filter routes them.  Must be called before
  /// run_closed_loop; inflight = batch = 1 keeps the legacy path.
  void set_pipeline(ProtocolFactory factory, uint32_t inflight, uint32_t batch);

  uint32_t pipeline_inflight() const { return pipeline_inflight_; }
  uint32_t pipeline_batch() const { return pipeline_batch_; }

  // --- host::Node ---
  void on_message(NodeId from, BytesView msg) override;

  // --- ClientContext ---
  // id()/now()/charge() come from the HostBound mixin.
  const BftConfig& config() const override { return config_; }
  void send_request(uint64_t client_seq, Bytes payload) override;
  void send_request_to(NodeId replica, uint64_t client_seq,
                       Bytes payload) override;
  void send_causal(NodeId replica, Bytes body) override;
  uint64_t next_seq() override { return next_seq_++; }
  void complete(Bytes result) override;
  crypto::Drbg& rng() override { return rng_; }
  const KeyRing& keys() const override { return keys_; }

  // --- stats (safe to poll from the controlling thread under kThreads) ---
  uint64_t completed_ops() const {
    return completed_.load(std::memory_order_acquire);
  }
  Bytes last_result() const {
    std::lock_guard<std::mutex> lk(stats_mu_);
    return last_result_;
  }
  /// Total host time spent across completed ops (for mean latency).
  host::Time total_latency() const {
    std::lock_guard<std::mutex> lk(stats_mu_);
    return total_latency_;
  }

  /// Base retransmission interval; retries back off exponentially from here
  /// (doubling per retry, capped at 64x, with DRBG jitter) so a dead primary
  /// costs O(log) retransmissions instead of a fixed-rate storm.
  void set_retry_timeout(host::Time t) { retry_timeout_ = t; }

 private:
  struct SlotContext;
  friend struct SlotContext;

  /// One pipelined operation slot: its own protocol instance, sequence
  /// number, retry timer, and latency clock.
  struct Slot {
    std::unique_ptr<ClientProtocol> protocol;
    std::unique_ptr<SlotContext> ctx;
    bool in_flight = false;
    uint64_t seq = 0;
    uint64_t index_base = 0;  // first logical-op index carried by this slot
    uint32_t logical = 1;     // logical payloads packed into the operation
    Bytes op;
    host::Time start = 0;
    uint64_t retry_epoch = 0;
    uint32_t retries = 0;
  };

  void begin_next();
  void arm_retry();
  bool pipelined() const { return !slots_.empty(); }
  void fill_slots();
  void arm_slot_retry(std::size_t slot_index);
  void complete_slot(std::size_t slot_index, Bytes result);
  void open_tick();
  void issue_one();  // open-loop: one op into a free slot, or shed

  BftConfig config_;
  const KeyRing& keys_;
  ClientProtocol* protocol_;
  crypto::Drbg rng_;

  OpGenerator generator_;
  CompletionHook hook_;
  uint64_t max_ops_ = 0;
  uint64_t issued_ = 0;
  std::atomic<uint64_t> completed_{0};
  uint64_t next_seq_ = 1;

  std::vector<std::unique_ptr<Slot>> slots_;  // empty = legacy single-flight
  uint32_t pipeline_inflight_ = 1;
  uint32_t pipeline_batch_ = 1;

  bool open_loop_ = false;       // completions do NOT trigger the next op
  host::Time open_interval_ = 0;  // ns between open-loop ticks

  bool in_flight_ = false;
  uint64_t inflight_index_ = 0;
  uint64_t inflight_seq_ = 0;
  Bytes inflight_op_;
  host::Time inflight_start_ = 0;
  uint64_t retry_epoch_ = 0;
  uint32_t retries_this_op_ = 0;
  host::Time retry_timeout_ = 500 * host::kMillisecond;

  mutable std::mutex stats_mu_;  // guards last_result_/total_latency_
  Bytes last_result_;
  host::Time total_latency_ = 0;

  obs::MetricsRegistry& metrics_;
  obs::Tracer& tracer_;
  struct {
    obs::Counter* submitted;
    obs::Counter* completed;
    obs::Counter* retries;
    obs::Histogram* latency_ns;
    // Pipelined mode only (bound in set_pipeline): slot occupancy after
    // each refill — how much of the inflight window the workload keeps
    // busy.
    obs::Histogram* inflight_slots = nullptr;
    // Open-loop mode only (bound in run_open_loop): ticks that found no
    // free slot and dropped their operation.
    obs::Counter* shed = nullptr;
  } m_;
};

}  // namespace scab::bft
