#include "bft/replica.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace scab::bft {

using host::Op;

Replica::Replica(host::Host& host, NodeId id, BftConfig config,
                 const KeyRing& keys, const host::CostModel& costs,
                 ReplicaApp* app, crypto::Drbg rng,
                 obs::MetricsRegistry* metrics, obs::Tracer* tracer)
    : HostBound(host, id, costs),
      config_(config),
      keys_(keys),
      app_(app),
      rng_(std::move(rng)),
      exec_chain_digest_(32, 0),
      metrics_(metrics ? *metrics : obs::MetricsRegistry::inert()),
      tracer_(tracer ? *tracer : obs::Tracer::inert()) {
  m_.batches_proposed = &metrics_.counter("bft.batches_proposed");
  m_.pre_prepares_accepted = &metrics_.counter("bft.pre_prepares_accepted");
  m_.requests_executed = &metrics_.counter("bft.requests_executed");
  m_.checkpoints_emitted = &metrics_.counter("bft.checkpoints_emitted");
  m_.view_changes_started = &metrics_.counter("bft.view_changes_started");
  m_.view_changes_completed = &metrics_.counter("bft.view_changes_completed");
  m_.replays_suppressed = &metrics_.counter("bft.replays_suppressed");
  m_.catchups_completed = &metrics_.counter("bft.recovery.catchups_completed");
  m_.wal_replayed = &metrics_.counter("bft.recovery.wal_replayed");
  m_.snapshot_loaded = &metrics_.counter("bft.recovery.snapshot_loaded");
  m_.snapshots_written = &metrics_.counter("bft.recovery.snapshots_written");
  m_.wal_append_bytes = &metrics_.histogram("storage.wal_append_bytes");
  m_.catchup_ms = &metrics_.histogram("bft.recovery.catchup_ms");
  m_.batch_size = &metrics_.histogram("bft.batch_size");
  m_.inflight_batches = &metrics_.histogram("bft.inflight_batches");
  m_.pending_requests = &metrics_.gauge("bft.pending_requests");
  m_.checkpoint_votes_tracked = &metrics_.gauge("bft.checkpoint_votes_tracked");
  m_.view_change_votes_tracked = &metrics_.gauge("bft.view_change_votes_tracked");
  m_.slots_tracked = &metrics_.gauge("bft.slots_tracked");
  m_.checkpoint_lag = &metrics_.gauge("bft.checkpoint_lag");

  storage_ = host.storage(id);
  if (storage_ != nullptr) storage_->bind_metrics(&metrics_);
}

void Replica::update_state_gauges() {
  m_.pending_requests->set(static_cast<int64_t>(pending_requests_.size()));
  m_.slots_tracked->set(static_cast<int64_t>(slots_.size()));
  std::size_t cp_votes = 0;
  for (const auto& [_, votes] : checkpoint_votes_) cp_votes += votes.size();
  m_.checkpoint_votes_tracked->set(static_cast<int64_t>(cp_votes));
  std::size_t vc_votes = 0;
  for (const auto& [_, votes] : view_change_votes_) vc_votes += votes.size();
  m_.view_change_votes_tracked->set(static_cast<int64_t>(vc_votes));
  // How far execution trails the last stable checkpoint's window.
  m_.checkpoint_lag->set(static_cast<int64_t>(next_exec_ - 1) -
                         static_cast<int64_t>(low_watermark_));
}

void Replica::start() {
  if (started_) return;
  started_ = true;
  schedule(config_.watchdog_period, [this] { watchdog_tick(); });
}

// ---------------------------------------------------------------------------
// Durability (DESIGN.md §13)

void Replica::wal_append_record(BytesView rec) {
  storage_->append(rec);
  m_.wal_append_bytes->record(rec.size());
}

void Replica::wal_append(BytesView record) {
  // App-level record (causal execution).  Inside execute_batch the sync is
  // deferred to the batch-end group commit; outside (a reveal completing on
  // share arrival) it is the record's own commit point.
  if (storage_ == nullptr || replaying_) return;
  Bytes rec;
  rec.reserve(1 + record.size());
  rec.push_back(static_cast<uint8_t>(WalTag::kApp));
  scab::append(rec, record);
  wal_append_record(rec);
  if (in_execute_batch_) {
    app_wal_dirty_ = true;
  } else {
    storage_->sync();
  }
}

void Replica::recover() {
  if (storage_ == nullptr) return;
  replaying_ = true;
  if (auto blob = storage_->get("snapshot")) {
    if (restore_snapshot(*blob)) m_.snapshot_loaded->inc();
  }
  const std::size_t replayed =
      storage_->replay([this](BytesView rec) { apply_wal_record(rec); });
  if (replayed > 0) m_.wal_replayed->inc(replayed);
  replaying_ = false;
  // Replayed acceptance records may already hold a commit quorum recorded
  // before the crash (our own vote); anything still short completes through
  // live traffic or the kFetch catch-up once peers answer.
  try_execute();
}

void Replica::apply_wal_record(BytesView rec) {
  Reader r(rec);
  const auto tag = static_cast<WalTag>(r.u8());
  if (!r.ok()) return;
  switch (tag) {
    case WalTag::kExec: {
      const uint64_t seq = r.u64();
      const Bytes wire = r.bytes();
      if (!r.ok() || !r.done()) return;
      if (seq < next_exec_) return;  // subsumed by the snapshot
      if (seq != next_exec_) return;  // gap — cannot safely skip ahead
      auto pp = PrePrepare::parse(wire);
      if (!pp) return;
      Slot& s = slot(seq);
      s.digest = pp->batch_digest();
      s.view = pp->view;
      s.pre_prepare = std::move(*pp);
      s.executed = true;
      execute_batch(seq, *s.pre_prepare);
      next_exec_ = seq + 1;
      next_seq_ = std::max(next_seq_, seq + 1);
      break;
    }
    case WalTag::kAccept: {
      const Bytes wire = r.bytes();
      if (!r.ok() || !r.done()) return;
      auto pp = PrePrepare::parse(wire);
      if (!pp || pp->seq < next_exec_) return;
      // Restore the slot exactly as accept_pre_prepare left it, minus the
      // broadcasts: we already voted PREPARE before the crash, so the vote
      // stands (re-sending it is what peers' retransmission paths cover).
      Slot& s = slot(pp->seq);
      s.digest = pp->batch_digest();
      s.view = pp->view;
      s.pre_prepare = std::move(*pp);
      s.prepares[id()] = {s.view, s.digest};
      s.sent_prepare = true;
      next_seq_ = std::max(next_seq_, s.pre_prepare->seq + 1);
      break;
    }
    case WalTag::kVote: {
      const uint64_t seq = r.u64();
      const uint64_t view = r.u64();
      const Bytes digest = r.bytes();
      if (!r.ok() || !r.done() || seq < next_exec_) return;
      auto it = slots_.find(seq);
      if (it == slots_.end()) return;
      Slot& s = it->second;
      if (!s.pre_prepare || s.view != view || s.digest != digest) return;
      s.commits[id()] = {view, digest};
      s.sent_commit = true;
      break;
    }
    case WalTag::kView: {
      const uint64_t v = r.u64();
      if (!r.ok() || !r.done()) return;
      view_ = std::max(view_, v);
      break;
    }
    case WalTag::kApp: {
      const Bytes payload = r.raw(r.remaining());
      if (r.ok()) app_->on_wal_record(payload, *this);
      break;
    }
  }
}

Bytes Replica::serialize_snapshot() {
  Writer w;
  w.u32(0x53434231);  // "SCB1"
  w.u64(view_);
  w.u64(next_seq_);
  w.u64(next_exec_);
  w.u64(low_watermark_);
  w.u64(local_seq_);
  w.u64(executed_requests_.load());
  w.bytes(exec_chain_digest_);

  // Per-client execution windows + reply caches, in sorted client order so
  // the blob is independent of hash-map iteration order.
  std::vector<NodeId> clients;
  clients.reserve(executed_window_.size());
  for (const auto& [c, _] : executed_window_) clients.push_back(c);
  std::sort(clients.begin(), clients.end());
  w.u32(static_cast<uint32_t>(clients.size()));
  for (NodeId c : clients) {
    w.u32(c);
    executed_window_.at(c).serialize(w);
  }
  clients.clear();
  for (const auto& [c, _] : reply_cache_) clients.push_back(c);
  std::sort(clients.begin(), clients.end());
  w.u32(static_cast<uint32_t>(clients.size()));
  for (NodeId c : clients) {
    w.u32(c);
    reply_cache_.at(c).serialize(w);
  }

  // Batch history so a recovered replica can still answer kFetch.
  w.u32(static_cast<uint32_t>(history_.size()));
  for (const auto& [seq, wire] : history_) {
    w.u64(seq);
    w.bytes(wire);
  }

  w.bytes(app_->serialize_state(*this));
  return std::move(w).take();
}

bool Replica::restore_snapshot(BytesView blob) {
  Reader r(blob);
  if (r.u32() != 0x53434231 || !r.ok()) return false;
  const uint64_t view = r.u64();
  const uint64_t next_seq = r.u64();
  const uint64_t next_exec = r.u64();
  const uint64_t low_watermark = r.u64();
  const uint64_t local_seq = r.u64();
  const uint64_t executed = r.u64();
  Bytes chain = r.bytes();
  if (!r.ok() || chain.size() != 32) return false;

  std::unordered_map<NodeId, ClientExecWindow> windows;
  const uint32_t n_windows = r.u32();
  for (uint32_t i = 0; i < n_windows && r.ok(); ++i) {
    const NodeId c = r.u32();
    if (!windows[c].restore(r)) return false;
  }
  std::unordered_map<NodeId, ClientReplyCache> replies;
  const uint32_t n_replies = r.u32();
  for (uint32_t i = 0; i < n_replies && r.ok(); ++i) {
    const NodeId c = r.u32();
    if (!replies[c].restore(r)) return false;
  }
  std::map<uint64_t, Bytes> history;
  const uint32_t n_history = r.u32();
  for (uint32_t i = 0; i < n_history && r.ok(); ++i) {
    const uint64_t seq = r.u64();
    history[seq] = r.bytes();
  }
  const Bytes app_blob = r.bytes();
  if (!r.ok() || !r.done()) return false;

  view_ = view;
  next_seq_ = next_seq;
  next_exec_ = next_exec;
  low_watermark_ = low_watermark;
  local_seq_ = local_seq;
  executed_requests_.store(executed);
  m_.requests_executed->inc(executed);  // fresh registry: counter catches up
  exec_chain_digest_ = std::move(chain);
  executed_window_ = std::move(windows);
  reply_cache_ = std::move(replies);
  history_ = std::move(history);
  // The BFT state above is intact regardless of the app blob's verdict: a
  // malformed app blob only loses causal pending state, which the
  // reveal-retry protocol rebuilds post-recovery.
  app_->restore_state(app_blob, *this);
  return true;
}

void Replica::write_snapshot() {
  // Called at each stable checkpoint (garbage_collect).  put() installs
  // atomically, so a crash between put and truncate is safe: replay skips
  // every record the new snapshot subsumes (seq < next_exec_).
  storage_->put("snapshot", serialize_snapshot());
  m_.snapshots_written->inc();
  storage_->truncate_log();
  // Re-log the live tail the truncation dropped: the current view and the
  // acceptance/vote state of every still-unexecuted slot.  The window
  // between truncate and this re-append is a documented torn window — a
  // crash inside it loses only votes, never executions, and the view-change
  // protocol recovers those.
  {
    Writer w;
    w.u8(static_cast<uint8_t>(WalTag::kView));
    w.u64(view_);
    wal_append_record(w.data());
  }
  for (const auto& [seq, s] : slots_) {
    if (seq < next_exec_ || !s.pre_prepare || s.executed) continue;
    Writer w;
    w.u8(static_cast<uint8_t>(WalTag::kAccept));
    w.bytes(s.pre_prepare->serialize());
    wal_append_record(w.data());
    if (s.sent_commit) {
      Writer v;
      v.u8(static_cast<uint8_t>(WalTag::kVote));
      v.u64(seq);
      v.u64(s.view);
      v.bytes(s.digest);
      wal_append_record(v.data());
    }
  }
  storage_->sync();
}

// ---------------------------------------------------------------------------
// Messaging

void Replica::send_envelope(NodeId to, Channel channel, BytesView body) {
  charge(Op::kMsgOverhead, 0);
  charge(Op::kMac, body.size());
  send_raw(to, seal_envelope(keys_, channel, id(), to, body));
}

void Replica::send_bft(NodeId to, BftMsgType type, BytesView body) {
  // Scatter/gather seal: the 1-byte type tag and the body are framed
  // directly into the wire, skipping tag_bft's concatenated copy.
  const uint8_t tag = static_cast<uint8_t>(type);
  charge(Op::kMsgOverhead, 0);
  charge(Op::kMac, body.size() + 1);
  send_raw(to, seal_envelope_parts(keys_, Channel::kBft, id(), to,
                                   {BytesView(&tag, 1), body}));
}

void Replica::broadcast_bft(BftMsgType type, BytesView body) {
  const uint8_t tag = static_cast<uint8_t>(type);
  const BytesView tag_view(&tag, 1);
  for (NodeId r = 0; r < config_.n; ++r) {
    if (r == id()) continue;
    charge(Op::kMsgOverhead, 0);
    charge(Op::kMac, body.size() + 1);
    send_raw(r, seal_envelope_parts(keys_, Channel::kBft, id(), r,
                                    {tag_view, body}));
  }
}

void Replica::send_reply(NodeId client, uint64_t client_seq, Bytes result) {
  ReplyMsg reply;
  reply.view = view_;
  reply.client_seq = client_seq;
  reply.replica = id();
  reply.result = std::move(result);
  Bytes wire = reply.serialize();
  reply_cache_[client].put(client_seq, wire);
  send_envelope(client, Channel::kReply, wire);
}

void Replica::send_causal(NodeId to, Bytes body) {
  send_envelope(to, Channel::kCausal, body);
}

void Replica::broadcast_causal(Bytes body) {
  for (NodeId r = 0; r < config_.n; ++r) {
    if (r == id()) continue;
    send_envelope(r, Channel::kCausal, body);
  }
}

void Replica::on_message(NodeId /*from*/, BytesView msg) {
  charge(Op::kMsgOverhead, 0);
  charge(Op::kMac, msg.size());
  auto env = open_envelope(keys_, id(), msg);
  if (!env) return;  // authentication failure: drop silently

  switch (env->channel) {
    case Channel::kClientRequest:
      handle_client_request(env->sender, env->body);
      break;
    case Channel::kBft: {
      auto tagged = untag_bft(env->body);
      if (!tagged) return;
      // Only replicas speak BFT.
      if (env->sender >= config_.n) return;
      auto& [type, body] = *tagged;
      switch (type) {
        case BftMsgType::kPrePrepare:
          handle_pre_prepare(env->sender, body);
          break;
        case BftMsgType::kPrepare:
        case BftMsgType::kCommit:
          handle_phase_vote(env->sender, body);
          break;
        case BftMsgType::kCheckpoint:
          handle_checkpoint(env->sender, body);
          break;
        case BftMsgType::kViewChange:
          handle_view_change(env->sender, body);
          break;
        case BftMsgType::kNewView:
          handle_new_view(env->sender, body);
          break;
        case BftMsgType::kFetch: {
          Reader r(body);
          const uint64_t from_seq = r.u64();
          const uint64_t to_seq = r.u64();
          if (!r.done() || to_seq - from_seq > config_.watermark_window) return;
          for (uint64_t s = from_seq; s <= to_seq; ++s) {
            auto it = history_.find(s);
            if (it == history_.end()) continue;
            Writer w;
            w.u64(s);
            w.bytes(it->second);
            send_bft(env->sender, BftMsgType::kFetchResp, w.data());
          }
          break;
        }
        case BftMsgType::kFetchResp: {
          Reader r(body);
          const uint64_t s = r.u64();
          const Bytes wire = r.bytes();
          if (!r.done()) return;
          if (s < next_exec_ || s > next_exec_ + config_.watermark_window) {
            return;
          }
          if (!PrePrepare::parse(wire)) return;
          fetch_votes_[s][env->sender] = wire;
          try_fetch_execute();
          break;
        }
      }
      break;
    }
    case Channel::kCausal:
      app_->on_causal_message(env->sender, env->body, *this);
      break;
    case Channel::kReply:
      break;  // replicas ignore replies
  }
}

// ---------------------------------------------------------------------------
// Normal case

void Replica::handle_client_request(NodeId from, BytesView body) {
  auto msg = ClientRequestMsg::parse(body);
  if (!msg) return;
  // Forwarded requests carry the original client inside; direct requests
  // come straight from the client (Aardvark-style client multicast).
  admit_request(from, std::move(*msg), /*skip_validate=*/false);
}

void Replica::admit_foreign_request(NodeId client, uint64_t client_seq,
                                    Bytes payload) {
  ClientRequestMsg msg;
  msg.client_seq = client_seq;
  msg.payload = std::move(payload);
  msg.forwarded = true;
  admit_request(client, std::move(msg), /*skip_validate=*/true);
}

void Replica::admit_request(NodeId client, ClientRequestMsg msg,
                            bool skip_validate) {
  // Executed before? Resend THAT seq's cached reply (client
  // retransmission).  The check must be per-seq, not "<= last executed":
  // a pipelined client's outstanding seq s is NOT a replay just because
  // s + 1 already executed out of order — it still needs admission.
  if (auto win = executed_window_.find(client);
      win != executed_window_.end() && win->second.executed(msg.client_seq)) {
    if (auto cached = reply_cache_.find(client);
        cached != reply_cache_.end()) {
      if (const Bytes* wire = cached->second.find(msg.client_seq)) {
        send_envelope(client, Channel::kReply, *wire);
      }
    }
    return;
  }

  if (!skip_validate && !app_->validate_request(client, msg, *this)) return;

  Request req;
  req.client = client;
  req.client_seq = msg.client_seq;
  req.payload = std::move(msg.payload);
  charge(Op::kHash, req.payload.size());
  const std::string key = hex_encode(req.digest());
  if (pending_requests_.contains(key)) return;  // duplicate in flight

  PendingRequest pending;
  pending.client = client;
  pending.client_seq = req.client_seq;
  pending.payload = req.payload;
  pending.first_seen = now();
  pending_requests_.emplace(key, std::move(pending));
  tracer_.record(client, req.client_seq, obs::Phase::kAdmit, now());
  m_.pending_requests->set(static_cast<int64_t>(pending_requests_.size()));

  if (is_primary()) {
    pending_batch_.push_back(std::move(req));
    maybe_send_batch();
  }
  // Backups just watch: the watchdog votes for a view change if the primary
  // never gets this request executed (fairness monitor).
}

void Replica::submit_local_request(Bytes payload) {
  // During WAL replay a self-assigned batch would race the very slots the
  // replay is about to rebuild; the app re-proposes on the next live
  // delivery (CP1 cleanups are retried from maybe_propose_cleanup).
  if (!is_primary() || replaying_) return;
  Request req;
  req.client = id();  // replicas use their own id as the virtual client
  req.client_seq = local_seq_++;
  req.payload = std::move(payload);
  pending_batch_.push_back(std::move(req));
  maybe_send_batch();
}

void Replica::maybe_send_batch() {
  if (!view_change_active_) flush_batch();
  // Anything still queued (in-flight window full / watermark edge / view
  // change in progress) gets a fallback timer so it cannot starve.  The
  // timer is armed even mid-view-change and its callback unconditionally
  // re-enters here: breaking the rearm chain on a transient condition is
  // exactly what would leave a queued request waiting for the next client
  // arrival.
  if (!batch_timer_armed_ && !pending_batch_.empty()) {
    batch_timer_armed_ = true;
    schedule(config_.batch_delay, [this] {
      batch_timer_armed_ = false;
      if (is_primary()) maybe_send_batch();
    });
  }
}

void Replica::flush_batch() {
  while (!pending_batch_.empty() && in_watermarks(next_seq_) &&
         next_seq_ - next_exec_ < config_.max_inflight_batches) {
    PrePrepare pp;
    pp.view = view_;
    pp.seq = next_seq_++;
    const std::size_t take =
        std::min<std::size_t>(config_.max_batch, pending_batch_.size());
    pp.batch.assign(std::make_move_iterator(pending_batch_.begin()),
                    std::make_move_iterator(pending_batch_.begin() + take));
    pending_batch_.erase(pending_batch_.begin(), pending_batch_.begin() + take);
    m_.batches_proposed->inc();
    m_.batch_size->record(take);
    m_.inflight_batches->record(next_seq_ - next_exec_);

    const Bytes wire = pp.serialize();
    charge(Op::kHash, wire.size());
    broadcast_bft(BftMsgType::kPrePrepare, wire);
    accept_pre_prepare(std::move(pp));
  }
}

void Replica::handle_pre_prepare(NodeId from, BytesView body) {
  if (from != config_.primary_of(view_)) return;  // only the primary proposes
  auto pp = PrePrepare::parse(body);
  if (!pp) return;
  charge(Op::kHash, body.size());
  accept_pre_prepare(std::move(*pp));
}

void Replica::accept_pre_prepare(PrePrepare pp) {
  if (view_change_active_) return;
  if (pp.view != view_) return;
  if (!in_watermarks(pp.seq)) return;

  Slot& s = slot(pp.seq);
  const Bytes digest = pp.batch_digest();
  if (s.pre_prepare) {
    if (s.view == pp.view) return;  // already accepted one for this (v, n)
    // A pre-prepare from a newer view supersedes (re-proposal path).
  }
  s.pre_prepare = std::move(pp);
  s.digest = digest;
  s.view = s.pre_prepare->view;
  s.sent_prepare = s.sent_commit = false;
  if (s.pre_prepare->seq < next_exec_) s.executed = true;
  m_.pre_prepares_accepted->inc();
  m_.slots_tracked->set(static_cast<int64_t>(slots_.size()));
  for (const auto& r : s.pre_prepare->batch) {
    if (!r.is_null()) {
      tracer_.record(r.client, r.client_seq, obs::Phase::kPrePrepare, now());
    }
  }

  // WAL the acceptance BEFORE the PREPARE leaves: a recovered replica must
  // never vote for a different batch at the same (view, seq).
  if (storage_ != nullptr && !replaying_) {
    Writer w;
    w.u8(static_cast<uint8_t>(WalTag::kAccept));
    w.bytes(s.pre_prepare->serialize());
    wal_append_record(w.data());
  }

  // Every replica broadcasts PREPARE and counts its own vote (the primary's
  // pre-prepare doubles as its prepare).
  PhaseVote vote;
  vote.type = BftMsgType::kPrepare;
  vote.view = s.view;
  vote.seq = s.pre_prepare->seq;
  vote.digest = s.digest;
  vote.replica = id();
  s.prepares[id()] = {s.view, s.digest};
  s.sent_prepare = true;
  broadcast_bft(BftMsgType::kPrepare, vote.serialize());
  check_prepared(s.pre_prepare->seq);
}

void Replica::handle_phase_vote(NodeId from, BytesView body) {
  auto vote = PhaseVote::parse(body);
  if (!vote || vote->replica != from) return;
  if (!in_watermarks(vote->seq)) return;

  Slot& s = slot(vote->seq);
  if (vote->type == BftMsgType::kPrepare) {
    s.prepares[from] = {vote->view, vote->digest};
    check_prepared(vote->seq);
  } else {
    s.commits[from] = {vote->view, vote->digest};
    check_committed(vote->seq);
  }
}

void Replica::check_prepared(uint64_t seq) {
  Slot& s = slot(seq);
  if (!s.pre_prepare || s.sent_commit || view_change_active_) return;
  if (s.view != view_) return;
  uint32_t matching = 0;
  for (const auto& [_, vd] : s.prepares) {
    if (vd.first == s.view && vd.second == s.digest) ++matching;
  }
  if (matching < config_.quorum()) return;
  for (const auto& r : s.pre_prepare->batch) {
    if (!r.is_null()) {
      tracer_.record(r.client, r.client_seq, obs::Phase::kPrepared, now());
    }
  }

  // WAL our COMMIT vote before it leaves (group-committed by the next
  // execution sync; see DESIGN.md §13 on the fsync discipline).
  if (storage_ != nullptr && !replaying_) {
    Writer w;
    w.u8(static_cast<uint8_t>(WalTag::kVote));
    w.u64(seq);
    w.u64(s.view);
    w.bytes(s.digest);
    wal_append_record(w.data());
  }

  PhaseVote vote;
  vote.type = BftMsgType::kCommit;
  vote.view = s.view;
  vote.seq = seq;
  vote.digest = s.digest;
  vote.replica = id();
  s.commits[id()] = {s.view, s.digest};
  s.sent_commit = true;
  broadcast_bft(BftMsgType::kCommit, vote.serialize());
  check_committed(seq);
}

void Replica::check_committed(uint64_t seq) {
  Slot& s = slot(seq);
  if (!s.pre_prepare || !s.sent_commit || s.executed) return;
  uint32_t matching = 0;
  for (const auto& [_, vd] : s.commits) {
    if (vd.first == s.view && vd.second == s.digest) ++matching;
  }
  if (matching < config_.quorum()) return;
  try_execute();
}

void Replica::try_execute() {
  for (;;) {
    auto it = slots_.find(next_exec_);
    if (it == slots_.end()) return;
    Slot& s = it->second;
    if (s.executed) {
      ++next_exec_;
      maybe_finish_catchup();
      continue;
    }
    if (!s.pre_prepare || !s.sent_commit) return;
    uint32_t matching = 0;
    for (const auto& [_, vd] : s.commits) {
      if (vd.first == s.view && vd.second == s.digest) ++matching;
    }
    if (matching < config_.quorum()) return;
    s.executed = true;
    execute_batch(next_exec_, *s.pre_prepare);
    ++next_exec_;
    maybe_finish_catchup();
    // The in-flight window moved: the primary can propose queued requests
    // (via maybe_send_batch so anything still blocked keeps its fallback
    // timer instead of waiting for the next client arrival).
    if (is_primary() && !pending_batch_.empty()) maybe_send_batch();
  }
}

void Replica::execute_batch(uint64_t seq, const PrePrepare& pp) {
  // Commit point: the execution record is durable BEFORE any app effect
  // (replies, causal shares) escapes this replica.  One fsync per batch.
  if (storage_ != nullptr && !replaying_) {
    Writer w;
    w.u8(static_cast<uint8_t>(WalTag::kExec));
    w.u64(seq);
    w.bytes(pp.serialize());
    wal_append_record(w.data());
    storage_->sync();
  }
  in_execute_batch_ = true;
  for (const auto& req : pp.batch) {
    if (req.is_null()) continue;
    // Replay dedup over the exact executed set (client_window.h): a
    // view-change re-proposal may commit a pipelined client's seqs out of
    // order, so suppressing on "<= last executed" would drop a payload
    // forever; only a seq that truly executed is a replay.
    if (!executed_window_[req.client].mark(req.client_seq)) {
      m_.replays_suppressed->inc();
      continue;  // replayed across views
    }
    tracer_.record(req.client, req.client_seq, obs::Phase::kCommitted, now());
    pending_requests_.erase(hex_encode(req.digest()));
    ++executed_requests_;
    m_.requests_executed->inc();
    app_->on_deliver(seq, req, *this);
    tracer_.record(req.client, req.client_seq, obs::Phase::kExecuted, now());
  }
  app_->on_batch_end(*this);
  in_execute_batch_ = false;
  if (app_wal_dirty_) {
    // Group commit for whatever the app logged during this batch (causal
    // executions that completed inline).
    app_wal_dirty_ = false;
    storage_->sync();
  }
  m_.pending_requests->set(static_cast<int64_t>(pending_requests_.size()));

  // Chain digest for checkpoints, plus batch history for catch-up fetches.
  exec_chain_digest_ =
      crypto::sha256_tuple({exec_chain_digest_, pp.batch_digest()});
  history_[seq] = pp.serialize();
  if (history_.size() > config_.history_limit) history_.erase(history_.begin());

  if (seq % config_.checkpoint_interval == 0) {
    Checkpoint cp;
    cp.seq = seq;
    cp.state_digest = exec_chain_digest_;
    cp.replica = id();
    own_checkpoints_[seq] = cp.state_digest;
    checkpoint_votes_[seq][id()] = cp.state_digest;
    m_.checkpoints_emitted->inc();
    // During WAL replay the vote bookkeeping is rebuilt but nothing is
    // broadcast: stability needs live peer votes, which arrive (for newer
    // checkpoints) once traffic resumes.
    if (!replaying_) {
      broadcast_bft(BftMsgType::kCheckpoint, cp.serialize());
      maybe_stabilize(seq);
    }
  }
  update_state_gauges();
}

void Replica::try_fetch_execute() {
  // Consume buffered fetch responses in execution order.  A batch is
  // accepted with f+1 matching copies: at least one is from a correct
  // replica, and correct replicas only serve executed batches.
  for (;;) {
    auto it = fetch_votes_.find(next_exec_);
    if (it == fetch_votes_.end()) break;
    std::map<std::string, uint32_t> tally;
    for (const auto& [_, w] : it->second) tally[to_string(w)]++;
    const std::string* winner = nullptr;
    for (const auto& [w, count] : tally) {
      if (count >= config_.f + 1) {
        winner = &w;
        break;
      }
    }
    if (winner == nullptr) break;
    auto batch = PrePrepare::parse(to_bytes(*winner));
    if (!batch) break;
    const uint64_t s = next_exec_;
    execute_batch(s, *batch);
    slot(s).executed = true;
    next_exec_ = s + 1;
    maybe_finish_catchup();
    fetch_votes_.erase(s);
  }
  fetch_votes_.erase(fetch_votes_.begin(),
                     fetch_votes_.lower_bound(next_exec_));
  try_execute();
}

// ---------------------------------------------------------------------------
// Checkpoints & catch-up

void Replica::handle_checkpoint(NodeId from, BytesView body) {
  auto cp = Checkpoint::parse(body);
  if (!cp || cp->replica != from) return;
  if (cp->seq <= low_watermark_) return;
  // Bound the vote map: a correct replica can legitimately be ahead of us,
  // but never by more than one full watermark window past our own (it would
  // need a stable checkpoint — 2f+1 votes — beyond that, which includes a
  // correct replica we would have heard from).  Seqs further out are a
  // Byzantine flood; accepting them would grow the map without limit.
  if (cp->seq > low_watermark_ + 2 * config_.watermark_window) return;
  checkpoint_votes_[cp->seq][from] = cp->state_digest;
  update_state_gauges();
  maybe_stabilize(cp->seq);
}

void Replica::maybe_stabilize(uint64_t seq) {
  auto votes = checkpoint_votes_.find(seq);
  if (votes == checkpoint_votes_.end()) return;
  std::map<std::string, uint32_t> tally;
  for (const auto& [_, d] : votes->second) tally[hex_encode(d)]++;
  for (const auto& [digest_hex, count] : tally) {
    if (count < config_.quorum()) continue;
    auto own = own_checkpoints_.find(seq);
    if (own != own_checkpoints_.end() && hex_encode(own->second) == digest_hex) {
      garbage_collect(seq);
    } else if (seq >= next_exec_) {
      // We are behind a stable checkpoint: fetch the missing batches.
      note_catchup_target(seq);
      Writer w;
      w.u64(next_exec_);
      w.u64(seq);
      for (const auto& [replica, d] : votes->second) {
        if (hex_encode(d) == digest_hex) {
          send_bft(replica, BftMsgType::kFetch, w.data());
        }
      }
    }
    return;
  }
}

void Replica::note_catchup_target(uint64_t seq) {
  if (!catchup_active_) {
    catchup_active_ = true;
    catchup_started_ = now();
    catchup_target_ = seq;
  } else if (seq > catchup_target_) {
    catchup_target_ = seq;  // fell further behind mid-episode
  }
}

void Replica::maybe_finish_catchup() {
  if (!catchup_active_ || next_exec_ <= catchup_target_) return;
  catchup_active_ = false;
  m_.catchups_completed->inc();
  m_.catchup_ms->record((now() - catchup_started_) / 1'000'000);
}

void Replica::garbage_collect(uint64_t stable_seq) {
  if (stable_seq <= low_watermark_) return;
  low_watermark_ = stable_seq;
  slots_.erase(slots_.begin(), slots_.lower_bound(stable_seq + 1));
  checkpoint_votes_.erase(checkpoint_votes_.begin(),
                          checkpoint_votes_.upper_bound(stable_seq));
  own_checkpoints_.erase(own_checkpoints_.begin(),
                         own_checkpoints_.upper_bound(stable_seq));
  update_state_gauges();
  // Stable checkpoint = snapshot point: persist the full replica state and
  // truncate the WAL behind it (DESIGN.md §13).
  if (storage_ != nullptr && !replaying_) write_snapshot();
  // Watermark window moved: drain the queue, rearming the fallback timer
  // for whatever the in-flight window still blocks.
  if (is_primary()) maybe_send_batch();
}

// ---------------------------------------------------------------------------
// View change

void Replica::watchdog_tick() {
  if (!view_change_active_) {
    for (const auto& [_, pending] : pending_requests_) {
      if (now() - pending.first_seen > config_.request_timeout) {
        start_view_change(view_ + 1, "request timeout / fairness");
        break;
      }
    }
  } else if (now() - view_change_started_ > config_.request_timeout) {
    // The new primary failed to assemble a new view in time: move further.
    start_view_change(view_change_target_ + 1, "view change stalled");
  }
  schedule(config_.watchdog_period, [this] { watchdog_tick(); });
}

void Replica::request_view_change(const char* /*reason*/) {
  if (!view_change_active_) start_view_change(view_ + 1, "app request");
}

void Replica::start_view_change(uint64_t target_view, const char* /*reason*/) {
  if (target_view <= view_) return;
  if (view_change_active_ && target_view <= view_change_target_) return;
  view_change_active_ = true;
  view_change_target_ = target_view;
  view_change_started_ = now();

  ViewChange vc;
  vc.new_view = target_view;
  vc.stable_seq = low_watermark_;
  for (const auto& [seq, s] : slots_) {
    if (!s.pre_prepare || seq <= low_watermark_) continue;
    uint32_t matching = 0;
    for (const auto& [_, vd] : s.prepares) {
      if (vd.first == s.view && vd.second == s.digest) ++matching;
    }
    // A slot we voted COMMIT on (or executed) necessarily held a 2f+1
    // prepared certificate at the time — even when the peer votes
    // themselves are gone.  That matters after a WAL recovery: only our
    // own votes are replayed (kVote/kExec prove the certificate existed),
    // and dropping these slots would let the new view re-propose a
    // DIFFERENT batch at a seq some replica already executed.
    if (matching < config_.quorum() && !s.sent_commit && !s.executed) {
      continue;
    }
    PreparedProof proof;
    proof.seq = seq;
    proof.view = s.view;
    proof.batch_wire = s.pre_prepare->serialize();
    vc.prepared.push_back(std::move(proof));
  }
  vc.replica = id();
  charge(Op::kMac, 64);
  vc.signature = keys_.sign(id(), vc.signed_body());

  m_.view_changes_started->inc();
  broadcast_bft(BftMsgType::kViewChange, vc.serialize());
  insert_view_change_vote(id(), std::move(vc));
  maybe_assemble_new_view(target_view);
}

void Replica::insert_view_change_vote(NodeId from, ViewChange vc) {
  // One vote per sender — the highest view it has asked for.  A VIEW-CHANGE
  // for a lower view than the sender's latest is stale (a correct replica
  // only moves forward); without this rule one Byzantine replica flooding
  // distinct future view numbers grows the map without limit AND counts
  // once per view toward the f+1 join threshold below.
  auto latest = latest_vc_view_.find(from);
  if (latest != latest_vc_view_.end()) {
    if (vc.new_view <= latest->second) {
      if (vc.new_view == latest->second) {
        view_change_votes_[vc.new_view][from] = std::move(vc);  // refresh
      }
      return;
    }
    auto old = view_change_votes_.find(latest->second);
    if (old != view_change_votes_.end()) {
      old->second.erase(from);
      if (old->second.empty()) view_change_votes_.erase(old);
    }
  }
  latest_vc_view_[from] = vc.new_view;
  view_change_votes_[vc.new_view][from] = std::move(vc);
  update_state_gauges();
}

void Replica::handle_view_change(NodeId from, BytesView body) {
  auto vc = ViewChange::parse(body);
  if (!vc || vc->replica != from) return;
  if (vc->new_view <= view_) return;
  charge(Op::kMac, 64);
  if (!keys_.verify(from, vc->signed_body(), vc->signature)) return;

  insert_view_change_vote(from, *vc);

  // Liveness rule: if f+1 replicas want a view above ours, join the lowest
  // such view even if our own timer has not fired.
  if (!view_change_active_ || vc->new_view > view_change_target_) {
    std::map<uint64_t, uint32_t> wanting;
    for (const auto& [v, votes] : view_change_votes_) {
      if (v > view_) wanting[v] = static_cast<uint32_t>(votes.size());
    }
    uint32_t cumulative = 0;
    // Count replicas wanting >= v, scanning from the highest view down.
    for (auto it = wanting.rbegin(); it != wanting.rend(); ++it) {
      cumulative += it->second;
      if (cumulative >= config_.f + 1 &&
          (!view_change_active_ || it->first > view_change_target_)) {
        start_view_change(it->first, "join");
        break;
      }
    }
  }
  maybe_assemble_new_view(vc->new_view);
}

void Replica::maybe_assemble_new_view(uint64_t target_view) {
  if (config_.primary_of(target_view) != id()) return;
  if (new_view_sent_.contains(target_view) || target_view <= view_) return;
  auto votes = view_change_votes_.find(target_view);
  if (votes == view_change_votes_.end() ||
      votes->second.size() < config_.quorum()) {
    return;
  }
  if (!votes->second.contains(id())) return;  // must include our own

  std::vector<ViewChange> proofs;
  proofs.reserve(votes->second.size());
  for (const auto& [_, vc] : votes->second) proofs.push_back(vc);

  std::vector<PrePrepare> batches =
      compute_new_view_batches(target_view, proofs);

  NewView nv;
  nv.view = target_view;
  for (const auto& vc : proofs) nv.view_changes.push_back(vc.serialize());
  for (const auto& pp : batches) nv.pre_prepares.push_back(pp.serialize());
  new_view_sent_.insert(target_view);
  broadcast_bft(BftMsgType::kNewView, nv.serialize());
  enter_view(target_view, std::move(batches));
}

std::vector<PrePrepare> Replica::compute_new_view_batches(
    uint64_t target_view, const std::vector<ViewChange>& proofs) const {
  uint64_t min_s = 0;
  uint64_t max_s = 0;
  for (const auto& vc : proofs) {
    min_s = std::max(min_s, vc.stable_seq);
    for (const auto& p : vc.prepared) max_s = std::max(max_s, p.seq);
  }

  std::vector<PrePrepare> out;
  for (uint64_t s = min_s + 1; s <= max_s; ++s) {
    const PreparedProof* best = nullptr;
    for (const auto& vc : proofs) {
      for (const auto& p : vc.prepared) {
        if (p.seq != s) continue;
        if (best == nullptr || p.view > best->view) best = &p;
      }
    }
    PrePrepare pp;
    pp.view = target_view;
    pp.seq = s;
    if (best != nullptr) {
      auto orig = PrePrepare::parse(best->batch_wire);
      if (orig) pp.batch = std::move(orig->batch);
    }
    if (pp.batch.empty()) pp.batch.push_back(Request::null());
    out.push_back(std::move(pp));
  }
  return out;
}

void Replica::handle_new_view(NodeId from, BytesView body) {
  auto nv = NewView::parse(body);
  if (!nv) return;
  if (from != config_.primary_of(nv->view)) return;
  if (nv->view <= view_) return;

  // Verify the 2f+1 signed view-change proofs.
  std::vector<ViewChange> proofs;
  std::set<NodeId> voters;
  for (const auto& wire : nv->view_changes) {
    auto vc = ViewChange::parse(wire);
    if (!vc || vc->new_view != nv->view) return;
    charge(Op::kMac, 64);
    if (!keys_.verify(vc->replica, vc->signed_body(), vc->signature)) return;
    if (!voters.insert(vc->replica).second) return;
    proofs.push_back(std::move(*vc));
  }
  if (proofs.size() < config_.quorum()) return;

  // Recompute O and require the primary proposed exactly that.
  std::vector<PrePrepare> expected = compute_new_view_batches(nv->view, proofs);
  if (expected.size() != nv->pre_prepares.size()) return;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    auto got = PrePrepare::parse(nv->pre_prepares[i]);
    if (!got || got->seq != expected[i].seq ||
        got->batch_digest() != expected[i].batch_digest()) {
      return;
    }
  }
  enter_view(nv->view, std::move(expected));
}

void Replica::enter_view(uint64_t target_view, std::vector<PrePrepare> reproposals) {
  // Pin the view before acting in it: a recovered replica must never
  // accept messages under an older view it already left.
  if (storage_ != nullptr && !replaying_) {
    Writer w;
    w.u8(static_cast<uint8_t>(WalTag::kView));
    w.u64(target_view);
    wal_append_record(w.data());
    storage_->sync();
  }
  view_ = target_view;
  view_change_active_ = false;
  ++view_changes_completed_;
  m_.view_changes_completed->inc();
  view_change_votes_.erase(view_change_votes_.begin(),
                           view_change_votes_.upper_bound(target_view));
  update_state_gauges();

  uint64_t max_s = low_watermark_;
  for (auto& pp : reproposals) max_s = std::max(max_s, pp.seq);
  next_seq_ = std::max(next_seq_, max_s + 1);

  // Reset watchdog ages: the new primary gets a fresh grace period.
  for (auto& [_, pending] : pending_requests_) pending.first_seen = now();

  for (auto& pp : reproposals) {
    if (pp.seq <= low_watermark_) continue;
    accept_pre_prepare(std::move(pp));
  }
  app_->on_new_view(view_, *this);

  // A backup-turned-primary re-proposes every request it knows is still
  // outstanding (clients also retransmit, and execution dedupes).
  if (is_primary()) {
    for (const auto& [_, pending] : pending_requests_) {
      Request req;
      req.client = pending.client;
      req.client_seq = pending.client_seq;
      req.payload = pending.payload;
      pending_batch_.push_back(std::move(req));
    }
    if (!pending_batch_.empty()) maybe_send_batch();
  }
}

}  // namespace scab::bft
