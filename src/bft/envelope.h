// Authenticated envelopes: every simulated datagram carries a channel tag,
// the sender id, and a truncated HMAC under the pairwise session key
// binding (channel, sender, receiver, body).
#pragma once

#include <initializer_list>
#include <optional>

#include "bft/keyring.h"
#include "bft/types.h"

namespace scab::bft {

inline constexpr std::size_t kAuthTagSize = 8;

struct Envelope {
  Channel channel = Channel::kBft;
  NodeId sender = 0;
  Bytes body;
};

/// Seals `body` for the (from -> to) authenticated channel.
Bytes seal_envelope(const KeyRing& keys, Channel channel, NodeId from,
                    NodeId to, BytesView body);

/// Scatter/gather variant: seals the logical concatenation of `parts`
/// without materializing the body first — the MAC streams over the spans
/// and the wire is assembled into one buffer.  Bit-identical to
/// seal_envelope(keys, channel, from, to, concat(parts...)), so receivers
/// need no changes (DESIGN.md §10's zero-copy wire path).
Bytes seal_envelope_parts(const KeyRing& keys, Channel channel, NodeId from,
                          NodeId to, std::initializer_list<BytesView> parts);

/// Verifies and opens an envelope addressed to `self`. Returns nullopt on
/// malformed input or MAC failure.
std::optional<Envelope> open_envelope(const KeyRing& keys, NodeId self,
                                      BytesView wire);

}  // namespace scab::bft
