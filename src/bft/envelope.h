// Authenticated envelopes: every simulated datagram carries a channel tag,
// the sender id, and a truncated HMAC under the pairwise session key
// binding (channel, sender, receiver, body).
#pragma once

#include <optional>

#include "bft/keyring.h"
#include "bft/types.h"

namespace scab::bft {

inline constexpr std::size_t kAuthTagSize = 8;

struct Envelope {
  Channel channel = Channel::kBft;
  NodeId sender = 0;
  Bytes body;
};

/// Seals `body` for the (from -> to) authenticated channel.
Bytes seal_envelope(const KeyRing& keys, Channel channel, NodeId from,
                    NodeId to, BytesView body);

/// Verifies and opens an envelope addressed to `self`. Returns nullopt on
/// malformed input or MAC failure.
std::optional<Envelope> open_envelope(const KeyRing& keys, NodeId self,
                                      BytesView wire);

}  // namespace scab::bft
