#include "bft/types.h"

#include "crypto/sha256.h"

namespace scab::bft {

Bytes Request::digest() const {
  Writer w;
  w.u32(client);
  w.u64(client_seq);
  return crypto::sha256_tuple({w.data(), payload});
}

void Request::write(Writer& w) const {
  w.u32(client);
  w.u64(client_seq);
  w.bytes(payload);
}

std::optional<Request> Request::read(Reader& r) {
  Request req;
  req.client = r.u32();
  req.client_seq = r.u64();
  req.payload = r.bytes();
  if (!r.ok()) return std::nullopt;
  return req;
}

Bytes PrePrepare::batch_digest() const {
  crypto::Sha256 h;
  for (const auto& req : batch) h.update(req.digest());
  const auto d = h.digest();
  return Bytes(d.begin(), d.end());
}

Bytes PrePrepare::serialize() const {
  Writer w;
  w.u64(view);
  w.u64(seq);
  w.u32(static_cast<uint32_t>(batch.size()));
  for (const auto& req : batch) req.write(w);
  return std::move(w).take();
}

std::optional<PrePrepare> PrePrepare::parse(BytesView wire) {
  Reader r(wire);
  PrePrepare pp;
  pp.view = r.u64();
  pp.seq = r.u64();
  const uint32_t count = r.u32();
  if (!r.ok() || count > 100000) return std::nullopt;
  pp.batch.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    auto req = Request::read(r);
    if (!req) return std::nullopt;
    pp.batch.push_back(std::move(*req));
  }
  if (!r.done()) return std::nullopt;
  return pp;
}

Bytes PhaseVote::serialize() const {
  Writer w;
  w.u8(static_cast<uint8_t>(type));
  w.u64(view);
  w.u64(seq);
  w.bytes(digest);
  w.u32(replica);
  return std::move(w).take();
}

std::optional<PhaseVote> PhaseVote::parse(BytesView wire) {
  Reader r(wire);
  PhaseVote v;
  const uint8_t t = r.u8();
  if (t != static_cast<uint8_t>(BftMsgType::kPrepare) &&
      t != static_cast<uint8_t>(BftMsgType::kCommit)) {
    return std::nullopt;
  }
  v.type = static_cast<BftMsgType>(t);
  v.view = r.u64();
  v.seq = r.u64();
  v.digest = r.bytes();
  v.replica = r.u32();
  if (!r.done()) return std::nullopt;
  return v;
}

Bytes Checkpoint::serialize() const {
  Writer w;
  w.u64(seq);
  w.bytes(state_digest);
  w.u32(replica);
  return std::move(w).take();
}

std::optional<Checkpoint> Checkpoint::parse(BytesView wire) {
  Reader r(wire);
  Checkpoint c;
  c.seq = r.u64();
  c.state_digest = r.bytes();
  c.replica = r.u32();
  if (!r.done()) return std::nullopt;
  return c;
}

void PreparedProof::write(Writer& w) const {
  w.u64(seq);
  w.u64(view);
  w.bytes(batch_wire);
}

std::optional<PreparedProof> PreparedProof::read(Reader& r) {
  PreparedProof p;
  p.seq = r.u64();
  p.view = r.u64();
  p.batch_wire = r.bytes();
  if (!r.ok()) return std::nullopt;
  return p;
}

Bytes ViewChange::signed_body() const {
  Writer w;
  w.u64(new_view);
  w.u64(stable_seq);
  w.u32(static_cast<uint32_t>(prepared.size()));
  for (const auto& p : prepared) p.write(w);
  w.u32(replica);
  return std::move(w).take();
}

Bytes ViewChange::serialize() const {
  Writer w;
  w.raw(signed_body());
  w.bytes(signature);
  return std::move(w).take();
}

std::optional<ViewChange> ViewChange::parse(BytesView wire) {
  Reader r(wire);
  ViewChange vc;
  vc.new_view = r.u64();
  vc.stable_seq = r.u64();
  const uint32_t count = r.u32();
  if (!r.ok() || count > 100000) return std::nullopt;
  vc.prepared.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    auto p = PreparedProof::read(r);
    if (!p) return std::nullopt;
    vc.prepared.push_back(std::move(*p));
  }
  vc.replica = r.u32();
  vc.signature = r.bytes();
  if (!r.done()) return std::nullopt;
  return vc;
}

Bytes NewView::serialize() const {
  Writer w;
  w.u64(view);
  w.u32(static_cast<uint32_t>(view_changes.size()));
  for (const auto& vc : view_changes) w.bytes(vc);
  w.u32(static_cast<uint32_t>(pre_prepares.size()));
  for (const auto& pp : pre_prepares) w.bytes(pp);
  return std::move(w).take();
}

std::optional<NewView> NewView::parse(BytesView wire) {
  Reader r(wire);
  NewView nv;
  nv.view = r.u64();
  const uint32_t vcs = r.u32();
  if (!r.ok() || vcs > 100000) return std::nullopt;
  for (uint32_t i = 0; i < vcs; ++i) nv.view_changes.push_back(r.bytes());
  const uint32_t pps = r.u32();
  if (!r.ok() || pps > 100000) return std::nullopt;
  for (uint32_t i = 0; i < pps; ++i) nv.pre_prepares.push_back(r.bytes());
  if (!r.done()) return std::nullopt;
  return nv;
}

Bytes ClientRequestMsg::serialize() const {
  Writer w;
  w.u64(client_seq);
  w.bytes(payload);
  w.u8(forwarded ? 1 : 0);
  return std::move(w).take();
}

std::optional<ClientRequestMsg> ClientRequestMsg::parse(BytesView wire) {
  Reader r(wire);
  ClientRequestMsg m;
  m.client_seq = r.u64();
  m.payload = r.bytes();
  m.forwarded = r.u8() != 0;
  if (!r.done()) return std::nullopt;
  return m;
}

Bytes ReplyMsg::serialize() const {
  Writer w;
  w.u64(view);
  w.u64(client_seq);
  w.u32(replica);
  w.bytes(result);
  return std::move(w).take();
}

std::optional<ReplyMsg> ReplyMsg::parse(BytesView wire) {
  Reader r(wire);
  ReplyMsg m;
  m.view = r.u64();
  m.client_seq = r.u64();
  m.replica = r.u32();
  m.result = r.bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

Bytes tag_bft(BftMsgType type, BytesView body) {
  Writer w;
  w.u8(static_cast<uint8_t>(type));
  w.raw(body);
  return std::move(w).take();
}

std::optional<std::pair<BftMsgType, Bytes>> untag_bft(BytesView wire) {
  if (wire.empty()) return std::nullopt;
  const uint8_t t = wire[0];
  if (t > static_cast<uint8_t>(BftMsgType::kFetchResp)) return std::nullopt;
  return std::make_pair(static_cast<BftMsgType>(t),
                        Bytes(wire.begin() + 1, wire.end()));
}

}  // namespace scab::bft
