// Framing for client-side operation batches and their batched replies.
//
// A pipelined client (bft::Client in pipeline mode) aggregates several
// logical application payloads into ONE protocol operation; a batch-aware
// protocol (CP0's batched TDH2 envelope) carries them under a single
// amortized header, and the replica frames the per-payload results back
// with the same helper.  A batch of one is never framed: single operations
// must stay bit-identical to the unbatched path.
//
// Wire:  u32 magic | u32 count | count x bytes(payload)
#pragma once

#include <optional>
#include <vector>

#include "common/serialize.h"

namespace scab::bft {

inline constexpr uint32_t kOpBatchMagic = 0x0b47c902;
inline constexpr uint32_t kMaxOpBatch = 4096;

inline Bytes encode_op_batch(const std::vector<Bytes>& ops) {
  Writer w;
  w.u32(kOpBatchMagic);
  w.u32(static_cast<uint32_t>(ops.size()));
  for (const auto& op : ops) w.bytes(op);
  return std::move(w).take();
}

inline bool is_op_batch(BytesView wire) {
  if (wire.size() < 4) return false;
  uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) magic |= static_cast<uint32_t>(wire[i]) << (8 * i);
  return magic == kOpBatchMagic;
}

inline std::optional<std::vector<Bytes>> decode_op_batch(BytesView wire) {
  Reader r(wire);
  if (r.u32() != kOpBatchMagic) return std::nullopt;
  const uint32_t count = r.u32();
  if (!r.ok() || count == 0 || count > kMaxOpBatch) return std::nullopt;
  std::vector<Bytes> ops;
  ops.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ops.push_back(r.bytes());
    if (!r.ok()) return std::nullopt;
  }
  if (!r.done()) return std::nullopt;
  return ops;
}

}  // namespace scab::bft
