// Deployment parameters for the PBFT substrate.
#pragma once

#include <cstdint>

#include "host/time.h"

namespace scab::bft {

struct BftConfig {
  uint32_t n = 4;  // total replicas, n = 3f + 1
  uint32_t f = 1;  // tolerated Byzantine replicas

  // Batching (paper: "All the protocols implement batching of concurrent
  // requests to reduce cryptographic and communication overheads").
  uint32_t max_batch = 16;
  /// Fallback batch timer; normally a request is proposed immediately when
  /// the in-flight window has room, and batching emerges under contention.
  host::Time batch_delay = 200 * host::kMicrosecond;
  /// Maximum consensus instances between next_seq and next_exec; bounding
  /// this is what makes batching effective under load.
  uint32_t max_inflight_batches = 4;

  // Checkpoint protocol.
  uint64_t checkpoint_interval = 64;
  uint64_t watermark_window = 256;

  // View change: a backup that has seen a client request not executed
  // within this delay votes for a view change (also serves as the fairness
  // watchdog of Aardvark-style protocols: a primary that starves any
  // client's request is demoted).
  host::Time request_timeout = 2 * host::kSecond;
  /// How often the watchdog scans pending requests.
  host::Time watchdog_period = 500 * host::kMillisecond;

  // How many executed batches each replica retains for catch-up fetches.
  std::size_t history_limit = 2048;

  uint32_t quorum() const { return 2 * f + 1; }
  uint32_t primary_of(uint64_t view) const {
    return static_cast<uint32_t>(view % n);
  }

  static BftConfig for_f(uint32_t f_val) {
    BftConfig c;
    c.f = f_val;
    c.n = 3 * f_val + 1;
    return c;
  }
};

}  // namespace scab::bft
