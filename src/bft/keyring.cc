#include "bft/keyring.h"

#include <stdexcept>

#include "common/serialize.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace scab::bft {

KeyRing::KeyRing(BytesView seed, const std::vector<NodeId>& nodes) {
  auto derive = [&](std::string_view label, uint64_t a, uint64_t b,
                    std::size_t len) {
    Writer w;
    w.str(std::string(label));
    w.u64(a);
    w.u64(b);
    Bytes out;
    uint64_t ctr = 0;
    while (out.size() < len) {
      Writer c;
      c.raw(w.data());
      c.u64(ctr++);
      append(out, crypto::hmac_sha256(seed, c.data()));
    }
    out.resize(len);
    return out;
  };

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    sign_keys_[nodes[i]] = derive("sign", nodes[i], 0, 32);
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const uint64_t key = pair_key(nodes[i], nodes[j]);
      session_keys_[key] = derive("session", nodes[i], nodes[j], 32);
      channel_keys_[key] = derive("channel", nodes[i], nodes[j], 64);
    }
  }
}

const Bytes& KeyRing::session_key(NodeId a, NodeId b) const {
  auto it = session_keys_.find(pair_key(a, b));
  if (it == session_keys_.end()) {
    throw std::out_of_range("KeyRing: unknown node pair (session)");
  }
  return it->second;
}

const Bytes& KeyRing::channel_key(NodeId a, NodeId b) const {
  auto it = channel_keys_.find(pair_key(a, b));
  if (it == channel_keys_.end()) {
    throw std::out_of_range("KeyRing: unknown node pair (channel)");
  }
  return it->second;
}

Bytes KeyRing::sign(NodeId node, BytesView msg) const {
  auto it = sign_keys_.find(node);
  if (it == sign_keys_.end()) throw std::out_of_range("KeyRing: unknown signer");
  return crypto::hmac_sha256(it->second, msg);
}

bool KeyRing::verify(NodeId node, BytesView msg, BytesView sig) const {
  auto it = sign_keys_.find(node);
  if (it == sign_keys_.end()) return false;
  return crypto::hmac_verify(it->second, msg, sig);
}

}  // namespace scab::bft
