#include "bft/envelope.h"

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace scab::bft {

namespace {
Bytes mac_input(Channel channel, NodeId from, NodeId to, BytesView body) {
  Writer w;
  w.u8(static_cast<uint8_t>(channel));
  w.u32(from);
  w.u32(to);
  return crypto::sha256_tuple({w.data(), body});
}
}  // namespace

Bytes seal_envelope(const KeyRing& keys, Channel channel, NodeId from,
                    NodeId to, BytesView body) {
  Writer w;
  w.u8(static_cast<uint8_t>(channel));
  w.u32(from);
  w.bytes(body);
  w.raw(crypto::hmac_sha256_trunc(keys.session_key(from, to),
                                  mac_input(channel, from, to, body),
                                  kAuthTagSize));
  return std::move(w).take();
}

std::optional<Envelope> open_envelope(const KeyRing& keys, NodeId self,
                                      BytesView wire) {
  Reader r(wire);
  Envelope env;
  const uint8_t ch = r.u8();
  if (ch > static_cast<uint8_t>(Channel::kReply)) return std::nullopt;
  env.channel = static_cast<Channel>(ch);
  env.sender = r.u32();
  env.body = r.bytes();
  const Bytes tag = r.raw(kAuthTagSize);
  if (!r.done()) return std::nullopt;
  if (!keys.knows(env.sender)) return std::nullopt;
  const Bytes expect = crypto::hmac_sha256_trunc(
      keys.session_key(env.sender, self),
      mac_input(env.channel, env.sender, self, env.body), kAuthTagSize);
  if (!ct_equal(expect, tag)) return std::nullopt;
  return env;
}

}  // namespace scab::bft
