#include "bft/envelope.h"

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace scab::bft {

namespace {
Bytes mac_input(Channel channel, NodeId from, NodeId to, BytesView body) {
  Writer w;
  w.u8(static_cast<uint8_t>(channel));
  w.u32(from);
  w.u32(to);
  return crypto::sha256_tuple({w.data(), body});
}

void update_u64le(crypto::Sha256& h, uint64_t n) {
  uint8_t len[8];
  for (int i = 0; i < 8; ++i) len[i] = static_cast<uint8_t>(n >> (8 * i));
  h.update(BytesView(len, 8));
}
}  // namespace

Bytes seal_envelope(const KeyRing& keys, Channel channel, NodeId from,
                    NodeId to, BytesView body) {
  Writer w;
  w.u8(static_cast<uint8_t>(channel));
  w.u32(from);
  w.bytes(body);
  w.raw(crypto::hmac_sha256_trunc(keys.session_key(from, to),
                                  mac_input(channel, from, to, body),
                                  kAuthTagSize));
  return std::move(w).take();
}

Bytes seal_envelope_parts(const KeyRing& keys, Channel channel, NodeId from,
                          NodeId to, std::initializer_list<BytesView> parts) {
  std::size_t body_len = 0;
  for (const auto& p : parts) body_len += p.size();

  // The MAC input must equal mac_input(channel, from, to, concat(parts))
  // bit for bit: replicate sha256_tuple's u64-LE length framing, streaming
  // the body spans instead of hashing a concatenated copy.
  Writer hdr;
  hdr.u8(static_cast<uint8_t>(channel));
  hdr.u32(from);
  hdr.u32(to);
  crypto::Sha256 h;
  update_u64le(h, hdr.size());
  h.update(hdr.data());
  update_u64le(h, body_len);
  for (const auto& p : parts) h.update(p);
  const auto digest = h.digest();

  Writer w;
  w.u8(static_cast<uint8_t>(channel));
  w.u32(from);
  w.u32(static_cast<uint32_t>(body_len));  // the u32 prefix of w.bytes(body)
  for (const auto& p : parts) w.raw(p);
  w.raw(crypto::hmac_sha256_trunc(keys.session_key(from, to),
                                  BytesView(digest.data(), digest.size()),
                                  kAuthTagSize));
  return std::move(w).take();
}

std::optional<Envelope> open_envelope(const KeyRing& keys, NodeId self,
                                      BytesView wire) {
  Reader r(wire);
  Envelope env;
  const uint8_t ch = r.u8();
  if (ch > static_cast<uint8_t>(Channel::kReply)) return std::nullopt;
  env.channel = static_cast<Channel>(ch);
  env.sender = r.u32();
  env.body = r.bytes();
  const Bytes tag = r.raw(kAuthTagSize);
  if (!r.done()) return std::nullopt;
  if (!keys.knows(env.sender)) return std::nullopt;
  const Bytes expect = crypto::hmac_sha256_trunc(
      keys.session_key(env.sender, self),
      mac_input(env.channel, env.sender, self, env.body), kAuthTagSize);
  if (!ct_equal(expect, tag)) return std::nullopt;
  return env;
}

}  // namespace scab::bft
