// CPU cost charging for hosted nodes.
//
// The paper's evaluation separates protocols almost entirely by (a) message
// rounds and (b) cryptographic CPU cost — CP0's threshold operations cost
// milliseconds while the symmetric protocols' operations cost microseconds.
// A node "pays" for an operation by charging time through its host; the
// simulator host turns the charge into virtual busy-time (the benchmarks
// install a CalibratedCostModel whose per-operation prices were measured
// from the real implementations at startup, DESIGN.md §3), while real-time
// hosts ignore charges entirely — there, the work itself takes however long
// it takes, and time is measured rather than modeled.
#pragma once

#include <array>
#include <cstdint>

#include "host/time.h"

namespace scab::host {

enum class Op : uint8_t {
  kHash,             // SHA-256, per message
  kMac,              // HMAC generate/verify
  kAeadSeal,         // private-channel encryption
  kAeadOpen,         // private-channel decryption
  kCommit,           // hash commitment create
  kCommitOpen,       // hash commitment verify
  kShamirShare,      // per full share vector
  kShamirRec,        // one interpolation pass (ARSS recovery attempt)
  kTdh2Encrypt,      // CP0 client encryption (hybrid)
  kTdh2VerifyCt,     // public ciphertext verification
  kTdh2ShareDec,     // decryption-share generation
  kTdh2VerifyShare,  // decryption-share verification (single)
  // Randomized batch verification of k shares (one random-linear-combination
  // equation, DESIGN.md §4.3).  CONVENTION: charged with bytes = k·1024, so
  // the per_byte slot prices the PER-SHARE amortized cost in ns and `fixed`
  // is the batch's constant part (the two full-width exponentiations of the
  // merged equation).
  kTdh2BatchVerifyShare,
  kTdh2Combine,      // Lagrange-in-exponent combination
  kExecute,          // application execution of one request
  kMsgOverhead,      // per-message OS/network-stack cost (send or receive)
  kCount,
};

inline constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kCount);

/// Per-operation price table: fixed cost plus a per-byte cost, so both the
/// O(1) public-key operations and the O(len) symmetric ones are modeled.
class CostModel {
 public:
  struct Price {
    Time fixed = 0;     // ns
    Time per_byte = 0;  // ns per input byte (scaled by 1/1024 granularity:
                        // cost = fixed + per_byte * bytes / 1024)
  };

  /// All-zero prices (unit tests: pure message-order semantics).
  static CostModel zero() { return CostModel{}; }

  /// Representative prices for a mid-2010s Xeon, in the spirit of the
  /// paper's testbed; used by examples and as a fallback when a benchmark
  /// skips live calibration. Values in ns.
  static CostModel default_symmetric_era();

  void set(Op op, Price price) { prices_[static_cast<std::size_t>(op)] = price; }
  Price get(Op op) const { return prices_[static_cast<std::size_t>(op)]; }

  Time cost(Op op, std::size_t bytes = 0) const {
    const Price& p = prices_[static_cast<std::size_t>(op)];
    return p.fixed + p.per_byte * static_cast<Time>(bytes) / 1024;
  }

 private:
  std::array<Price, kOpCount> prices_{};
};

}  // namespace scab::host
