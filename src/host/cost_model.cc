#include "host/cost_model.h"

namespace scab::host {

CostModel CostModel::default_symmetric_era() {
  CostModel m;
  // Symmetric primitives: sub-microsecond fixed cost, linear in input.
  m.set(Op::kHash, {500, 3'000});
  m.set(Op::kMac, {900, 3'200});
  m.set(Op::kAeadSeal, {1'500, 9'000});
  m.set(Op::kAeadOpen, {1'500, 9'000});
  m.set(Op::kCommit, {900, 3'200});
  m.set(Op::kCommitOpen, {900, 3'200});
  m.set(Op::kShamirShare, {2'000, 20'000});
  m.set(Op::kShamirRec, {3'000, 25'000});
  // Threshold cryptography at a 1024-bit modulus: milliseconds.  Prices
  // reflect the Montgomery-form implementation (crypto/montgomery.h) with
  // fixed-base tables and multi-exponentiation; share-decrypt and combine
  // are the PREVERIFIED entry points CP0's reveal pipeline calls — the
  // ciphertext proof check is charged once, separately, as kTdh2VerifyCt.
  m.set(Op::kTdh2Encrypt, {4'200'000, 9'000});
  m.set(Op::kTdh2VerifyCt, {3'100'000, 0});
  m.set(Op::kTdh2ShareDec, {2'400'000, 0});
  m.set(Op::kTdh2VerifyShare, {2'500'000, 0});
  // Batch verification: bytes = k·1024 by convention (see cost_model.h), so
  // per_byte is the amortized per-share price — roughly a fifth of the
  // single-share path, after the fixed two full-width exponentiations.
  m.set(Op::kTdh2BatchVerifyShare, {2'800'000, 550'000});
  m.set(Op::kTdh2Combine, {1'700'000, 0});
  // Application execution: cheap.
  m.set(Op::kExecute, {1'000, 500});
  // Kernel/network-stack per-message cost (syscall + copies), absent from
  // an in-process measurement but very real on the paper's testbed.
  m.set(Op::kMsgOverhead, {12'000, 0});
  return m;
}

}  // namespace scab::host
