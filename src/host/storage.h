// host::Storage — the durability member of the host seam.
//
// Everything a replica persists flows through this interface: a tiny
// blob store (keyed snapshots, installed atomically) plus one append-only
// log (the PBFT write-ahead log).  Like the rest of the host surface it
// has two implementations with one contract:
//
//   * MemStorage (here) — deterministic in-memory storage kept by
//     sim::SimHost.  No I/O, no clock reads, no RNG: attaching storage to
//     a sim cluster perturbs nothing, so seeded runs stay bit-identical
//     and tests can assert storage contents directly.
//   * rt::FileStorage (src/rt/storage.h) — a per-replica data directory
//     with CRC32-framed length-prefixed WAL records, explicit fsync
//     discipline, atomic-rename snapshot installs, and torn-tail
//     truncation on open.
//
// Durability contract (DESIGN.md §13):
//
//   put(key, value)   Atomically replaces the blob under `key`.  After
//                     put() returns the new value survives a crash — a
//                     reader never sees a torn blob (old or new, never a
//                     mix).
//   append(record)    Appends one record to the log.  Buffered: the
//                     record is durable only after the next sync().
//   sync()            Makes every append so far durable.  A crash after
//                     sync() returns loses nothing appended before it.
//   replay(fn)        Invokes fn on each durable record in append order.
//                     Implementations must deliver a clean PREFIX of the
//                     appended sequence: a torn or corrupt tail is cut,
//                     never surfaced.
//   truncate_log()    Discards the log (after a snapshot subsumed it).
//
// Hosts own their Storage instances and hand out borrowed pointers via
// Host::storage(id); storage deliberately SURVIVES unbind/rebind of the
// node id, which is what makes an in-process crash/restart cycle recover
// "from disk".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"

namespace scab::obs {
class MetricsRegistry;
}  // namespace scab::obs

namespace scab::host {

class Storage {
 public:
  virtual ~Storage() = default;

  // --- blob store (snapshots, metadata) ---
  /// Atomically installs `value` under `key`; durable on return.
  virtual void put(std::string_view key, BytesView value) = 0;
  virtual std::optional<Bytes> get(std::string_view key) const = 0;
  virtual void erase(std::string_view key) = 0;

  // --- append-only log (the WAL) ---
  /// Appends one record; durable after the next sync().
  virtual void append(BytesView record) = 0;
  /// Flushes appended records to stable storage.
  virtual void sync() = 0;
  /// Replays every durable record in append order.  Yields a clean prefix
  /// of the appended sequence — a corrupt or torn tail is truncated, never
  /// delivered.  Returns the number of records yielded.
  virtual std::size_t replay(
      const std::function<void(BytesView)>& fn) const = 0;
  /// Discards the log (typically right after a snapshot subsumed it).
  virtual void truncate_log() = 0;

  /// Number of durable records currently in the log (post-recovery view).
  virtual std::size_t log_records() const = 0;

  /// Optional instrumentation sink ("storage.*" histograms).  Default
  /// no-op: MemStorage is deterministic and records nothing.
  virtual void bind_metrics(obs::MetricsRegistry* metrics) { (void)metrics; }
};

/// Deterministic in-memory Storage: plain containers, no I/O, no clock.
/// sync() is a no-op (memory is "durable" for the simulator's purposes —
/// the host owns it across unbind/rebind, which is the crash boundary the
/// sim models).  std::map keeps key iteration order deterministic for
/// tests that enumerate contents.
class MemStorage final : public Storage {
 public:
  void put(std::string_view key, BytesView value) override {
    blobs_[std::string(key)] = Bytes(value.begin(), value.end());
  }
  std::optional<Bytes> get(std::string_view key) const override {
    auto it = blobs_.find(std::string(key));
    if (it == blobs_.end()) return std::nullopt;
    return it->second;
  }
  void erase(std::string_view key) override { blobs_.erase(std::string(key)); }

  void append(BytesView record) override {
    log_.emplace_back(record.begin(), record.end());
  }
  void sync() override {}
  std::size_t replay(const std::function<void(BytesView)>& fn) const override {
    for (const Bytes& rec : log_) fn(BytesView(rec.data(), rec.size()));
    return log_.size();
  }
  void truncate_log() override { log_.clear(); }
  std::size_t log_records() const override { return log_.size(); }

  /// Test hook: every blob key currently stored, in sorted order.
  std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(blobs_.size());
    for (const auto& [k, v] : blobs_) out.push_back(k);
    return out;
  }

 private:
  std::map<std::string, Bytes, std::less<>> blobs_;
  std::vector<Bytes> log_;
};

}  // namespace scab::host
