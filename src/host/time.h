// Basic host-level types shared by every runtime.
//
// `Time` is nanoseconds: virtual nanoseconds under the simulator host,
// steady-clock nanoseconds since host start under the threaded runtime.
// Protocol code never interprets a Time as wall-clock — it only measures
// differences and passes delays back to Host::schedule, so the same code is
// correct on both hosts.
#pragma once

#include <cstdint>

namespace scab::host {

using Time = uint64_t;    // nanoseconds
using NodeId = uint32_t;  // replica ids are dense from 0; client ids offset

inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

}  // namespace scab::host
