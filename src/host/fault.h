// Runtime-agnostic fault injection (DESIGN.md §9).
//
// A host::FaultInjector is the seam through which tests, the chaos harness
// and the fault benches inject failures without caring which runtime
// carries the cluster:
//
//   * sim::SimHost exposes one that delegates to the simulator's existing
//     sim::FaultPlan — applied on send, bit-identical to driving the plan
//     directly;
//   * rt::ThreadHost implements the same surface as a filter in front of
//     the per-node mailboxes, so a "crashed" node's traffic is dropped at
//     the delivery chokepoint and a "delayed" link defers delivery on the
//     receiver's own timer queue.
//
// crash()/restart() here gate the node's NETWORK presence only; actually
// tearing a node down and bringing it back with empty volatile state is the
// layer above (causal::Cluster::crash_replica / restart_replica), which
// combines the injector with host bind/unbind and object reconstruction.
//
// Drops are attributed to the same "net.drops.{crash,cut,tamper}" counters
// on both runtimes, so fault tests can assert attribution independently of
// the runtime under test.
#pragma once

#include <functional>
#include <optional>

#include "common/bytes.h"
#include "host/time.h"

namespace scab::host {

class FaultInjector {
 public:
  /// Inspect/tamper hook: return std::nullopt to drop the message, or a
  /// (possibly modified) payload to deliver.  Runs after crash/cut checks.
  /// Under rt::ThreadHost the hook may be invoked concurrently from
  /// multiple sender threads and must be thread-safe.
  using Tamper =
      std::function<std::optional<Bytes>(NodeId from, NodeId to, BytesView msg)>;

  virtual ~FaultInjector() = default;

  /// Drops everything to and from `node` until restart(node).
  virtual void crash(NodeId node) = 0;
  /// Clears the crash flag: traffic to/from `node` flows again.
  virtual void restart(NodeId node) = 0;
  virtual bool is_crashed(NodeId node) const = 0;

  /// Drops messages on the directed link from -> to.
  virtual void cut(NodeId from, NodeId to) = 0;
  virtual void heal(NodeId from, NodeId to) = 0;
  /// Clears every cut and every per-link delay (crash flags stay).
  virtual void heal_all() = 0;

  /// Adds `extra` ns of one-way delay on the directed link from -> to
  /// (0 removes it).  Delayed messages are not reordered relative to the
  /// runtime's own delivery rules beyond the added latency.
  virtual void delay(NodeId from, NodeId to, Time extra) = 0;
  virtual void clear_delays() = 0;

  virtual void set_tamper(Tamper t) = 0;
  virtual void clear_tamper() = 0;
};

}  // namespace scab::host
