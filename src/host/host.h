// The host abstraction: everything a protocol node needs from its runtime.
//
// Every protocol object in the stack (bft::Replica, bft::Client, the
// CP0–CP3 engines, abft::AsyncReplica) is written against this seam and
// nothing else, so the same code runs under
//
//   * sim::SimHost — the deterministic discrete-event simulator (virtual
//     time, one global event loop, bit-reproducible runs), and
//   * rt::ThreadHost — a real-time runtime (steady-clock timers, one worker
//     thread per node draining an MPSC mailbox, pluggable transports).
//
// The contract every host provides (DESIGN.md §8):
//
//   Clock      now() — monotonic nanoseconds.  Virtual under the sim.
//   Timers     schedule(node, delay, fn) — fn runs on `node`'s executor
//              after >= delay.
//   Transport  send(from, to, bytes) — unicast, unordered across pairs,
//              FIFO per (from, to) not guaranteed by the interface (the
//              protocols tolerate reordering by design).
//   Executor   post(node, fn) — runs fn on `node`'s executor.  A node's
//              handlers (on_message, timers, posted fns) NEVER run
//              concurrently with each other: each node is a sequential
//              process on every host, which is the invariant that keeps
//              the protocol objects lock-free.
//   charge     cost accounting hook.  The simulator turns charges into
//              virtual busy-time (the paper's modeled CPU costs); real-time
//              hosts ignore them — real work is measured, not modeled.
//   Storage    storage(node) — durable per-node blob store + append log
//              (host/storage.h), or nullptr when the node runs without
//              durability.  Owned by the host; survives unbind/rebind.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "common/bytes.h"
#include "host/cost_model.h"
#include "host/fault.h"
#include "host/storage.h"
#include "host/time.h"
#include "host/worker_pool.h"

namespace scab::host {

/// A protocol endpoint (replica or client).
class Node {
 public:
  virtual ~Node() = default;

  /// Message delivery callback; invoked on this node's sequential executor.
  virtual void on_message(NodeId from, BytesView msg) = 0;
};

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Time now() const = 0;
};

class Timers {
 public:
  virtual ~Timers() = default;
  /// Runs `fn` on `node`'s executor once at least `delay` ns have passed.
  virtual void schedule(NodeId node, Time delay, std::function<void()> fn) = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;
  /// Sends `msg` from `from` to `to`; delivered via Node::on_message on the
  /// receiver's executor.  Delivery is best-effort (faults, crashes).
  virtual void send(NodeId from, NodeId to, Bytes msg) = 0;
};

class Executor {
 public:
  virtual ~Executor() = default;
  /// Runs `fn` on `node`'s sequential executor.  The simulator host runs it
  /// inline (the caller IS the event loop); thread hosts enqueue it on the
  /// node's mailbox.  This is the only safe way to poke a node from outside
  /// its own handlers.
  virtual void post(NodeId node, std::function<void()> fn) = 0;
};

/// A complete runtime: clock + timers + transport + per-node executors +
/// crypto worker pool, plus endpoint registration and the cost-charging
/// hook.  The WorkerPool default (inline submit) is what the deterministic
/// simulator keeps; rt::ThreadHost overrides it with real threads.
class Host : public Clock,
             public Timers,
             public Transport,
             public Executor,
             public WorkerPool {
 public:
  /// Registers `endpoint` as node `id`.  Must complete before any traffic
  /// or timers target the node.
  virtual void bind(NodeId id, Node* endpoint) = 0;
  virtual void unbind(NodeId id) = 0;

  /// Cost-accounting hook: `cost` ns of CPU work attributed to `node`.
  /// Default no-op — real-time hosts measure instead of model.
  virtual void charge(NodeId node, Time cost) {
    (void)node;
    (void)cost;
  }

  /// Quiesces the host: joins worker threads, drops pending timers.  After
  /// stop() returns, no endpoint callback is running or will run — callers
  /// may then destroy the endpoints.  Idempotent; no-op for the simulator
  /// (its event loop is caller-driven).
  virtual void stop() {}

  /// The host's fault-injection surface (crash/cut/delay/tamper), or
  /// nullptr for hosts without one.  Both in-tree hosts implement it.
  virtual FaultInjector* fault_injector() { return nullptr; }

  /// Durable storage attached to `node`, or nullptr when the node runs
  /// without durability.  The host OWNS the storage and keeps it across
  /// unbind/rebind of the id — that survival is the crash boundary an
  /// in-process restart recovers over.  Default: no storage.
  virtual Storage* storage(NodeId node) { return (void)node, nullptr; }
};

/// Mixin deduplicating the per-node host plumbing that every protocol class
/// needs: identity, clock/timer/charge forwarding, and bind/unbind lifetime
/// (bound on construction, unbound on destruction).  `Base` is the context
/// interface the class implements (bft::ReplicaContext, bft::ClientContext);
/// the forwarders implicitly override the matching context virtuals.
template <class Base>
class HostBound : public Base, public Node {
 public:
  HostBound(Host& host, NodeId id, const CostModel& costs)
      : host_(host), id_(id), costs_(costs) {
    host_.bind(id_, this);
  }
  ~HostBound() override { host_.unbind(id_); }

  HostBound(const HostBound&) = delete;
  HostBound& operator=(const HostBound&) = delete;

  NodeId id() const { return id_; }
  Time now() const { return host_.now(); }
  void schedule(Time delay, std::function<void()> fn) {
    host_.schedule(id_, delay, std::move(fn));
  }
  void charge(Op op, std::size_t bytes) {
    host_.charge(id_, costs_.cost(op, bytes));
  }
  /// Hands `job` to the host's worker pool; the continuation it returns is
  /// posted back to this node's executor (host/worker_pool.h contract).
  void offload(PoolJob job) { host_.submit(id_, std::move(job)); }

  Host& host() const { return host_; }

 protected:
  void send_raw(NodeId to, Bytes msg) { host_.send(id_, to, std::move(msg)); }
  const CostModel& costs() const { return costs_; }

 private:
  Host& host_;
  NodeId id_;
  CostModel costs_;  // by value: hosts outlive nodes, option structs may not
};

}  // namespace scab::host
