// The crypto worker-pool seam (DESIGN.md §12): protocol nodes stay
// single-threaded state machines and hand CPU-heavy verification to the
// host's pool via submit(); the pool runs the job on any thread and posts
// the returned continuation back to the owning node's sequential executor.
//
// Contract:
//
//   * A PoolJob must be self-contained: it may not touch the owning node's
//     protocol state (that state is being mutated concurrently on the
//     node's executor).  Everything the job reads is copied in (or shared
//     immutable data); everything it produces travels out through the
//     continuation it returns.
//   * The continuation runs on the owner's executor, so it may freely
//     mutate protocol state — it is just another sequential handler.
//   * If the owner is unbound (node crash) before the job completes, the
//     completion is dropped, exactly like an in-flight message to a crashed
//     node.  Jobs never outlive the host.
//   * submit() is called from the owner's own executor (a node offloading
//     its own work), never cross-node.
//
// The default implementation runs the job and its continuation inline,
// which trivially satisfies the contract and — because the caller IS the
// owner's executor — is bit-identical to not offloading at all.  The
// deterministic simulator keeps this default: a sim run with threads=8
// replays exactly like threads=1.  rt::ThreadHost overrides it with a real
// N-thread pool.
#pragma once

#include <cstddef>
#include <functional>

#include "host/time.h"

namespace scab::host {

/// A unit of offloadable work: runs on a pool thread, returns the
/// continuation to run on the owning node's executor (empty = nothing to
/// post back).
using PoolJob = std::function<std::function<void()>()>;

class WorkerPool {
 public:
  virtual ~WorkerPool() = default;

  /// Runs `job` (on a pool thread, or inline) and posts its continuation to
  /// `owner`'s executor.  See the contract above.
  virtual void submit(NodeId owner, PoolJob job) {
    (void)owner;
    if (!job) return;
    if (auto cont = job()) cont();
  }

  /// Number of real pool threads; 0 = inline execution.
  virtual std::size_t pool_threads() const { return 0; }
};

}  // namespace scab::host
