// Request-lifecycle tracing: one span per client request, one typed event
// per protocol phase, and a per-phase latency breakdown over all completed
// requests.
//
// The phases mirror the paper's structure (§V): a request is submitted by
// the client, admitted by the replicas, ordered by the three PBFT phases
// (pre-prepare / prepared / committed), executed, then — for the causal
// protocols — recovered in the reveal/share phase, and finally delivered
// back to the client.  Each event is recorded at its FIRST occurrence
// across the cluster (the earliest replica to reach the phase), which keeps
// the sequence monotone, so the per-phase deltas telescope: their sum
// equals the client-observed end-to-end latency exactly.
//
// Phases a protocol does not have (plain PBFT has no reveal) are backfilled
// to the previous phase's timestamp and contribute a zero-length segment,
// preserving the telescoping property.
//
// Cost: one hash-map probe + compare per (request, phase, node) event.  The
// tracer is bounded: once `capacity` distinct requests are tracked, events
// for new requests are dropped (existing spans still update).  A capacity
// of zero makes the tracer inert — that is what Tracer::inert() hands to
// components constructed without one.
//
// The tracer is cluster-wide (every node records into it), so under
// rt::ThreadHost it is hit from all worker threads at once; a single mutex
// guards the span map.  That is deliberately coarse — tracing prices one
// map probe per phase event either way, and the registry-of-atomics path in
// metrics.h is the hot-path instrument.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace scab::obs {

/// Lifecycle phases of one request, in protocol order.
enum class Phase : uint8_t {
  kSubmit = 0,   // client: operation issued
  kAdmit,        // replica: request entered the pending set
  kPrePrepare,   // replica: request accepted in a PRE-PREPARE batch
  kPrepared,     // replica: prepared quorum (2f+1 matching PREPAREs)
  kCommitted,    // replica: committed quorum, execution unblocked
  kExecuted,     // replica: request executed (schedule step done)
  kRevealed,     // replica: causal reveal recovered the plaintext
  kCompleted,    // client: f+1 matching replies
  kCount,
};

inline constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

const char* phase_name(Phase p);

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1 << 16) : capacity_(capacity) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Records that request (client, client_seq) reached `phase` at virtual
  /// time `now_ns`; keeps the earliest time per phase.
  void record(uint32_t client, uint64_t client_seq, Phase phase,
              uint64_t now_ns);

  /// Segment between two consecutive recorded phases, averaged over every
  /// completed request.
  struct PhaseStat {
    const char* name = "";   // name of the phase the segment ENDS at
    double mean_ms = 0;      // mean segment duration
    uint64_t observed = 0;   // requests that recorded this phase themselves
  };

  struct Breakdown {
    std::vector<PhaseStat> phases;  // kAdmit..kCompleted, in order
    double end_to_end_ms = 0;       // mean kSubmit -> kCompleted
    uint64_t completed = 0;         // requests with both endpoints recorded
    uint64_t tracked = 0;           // all spans, complete or not
  };

  /// Aggregates every span with both kSubmit and kCompleted.  The per-phase
  /// means telescope: sum(phases[i].mean_ms) == end_to_end_ms.
  Breakdown breakdown() const;

  /// First-occurrence time of `phase` for one request; UINT64_MAX if never
  /// recorded (test introspection).
  uint64_t first_at(uint32_t client, uint64_t client_seq, Phase phase) const;

  std::size_t tracked() const {
    std::lock_guard<std::mutex> lk(mu_);
    return spans_.size();
  }
  std::size_t capacity() const { return capacity_; }

  /// {"completed":N,"end_to_end_ms":X,"phases":[{"name":...,"mean_ms":...,
  ///   "observed":...},...]}
  std::string to_json() const;

  /// Shared zero-capacity tracer for components constructed without one.
  static Tracer& inert();

 private:
  struct Key {
    uint32_t client;
    uint64_t seq;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<uint64_t>{}((static_cast<uint64_t>(k.client) << 32) ^
                                   (k.seq * 0x9e3779b97f4a7c15ULL));
    }
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<Key, std::array<uint64_t, kPhaseCount>, KeyHash> spans_;
};

}  // namespace scab::obs
