// Minimal JSON reader used by bench_smoke to validate emitted metrics
// against a checked-in schema, and by tests that inspect bench output.
// Supports the full JSON grammar except surrogate-pair \u escapes; objects
// preserve insertion order.  This is a reader for our OWN well-formed
// output — not a hardened parser for adversarial input.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace scab::obs::json {

class Value;
using Array = std::vector<Value>;
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double d) : kind_(Kind::kNumber), num_(d) {}
  explicit Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  explicit Value(Array a) : kind_(Kind::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o) : kind_(Kind::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const Array& as_array() const { return *arr_; }
  const Object& as_object() const { return *obj_; }

  /// Object member by key; nullptr if not an object or key absent.
  const Value* get(std::string_view key) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

/// Parses one JSON document (trailing whitespace allowed); nullopt on error.
std::optional<Value> parse(std::string_view text);

/// Walks a '/'-separated path: object keys and numeric array indices, e.g.
/// find_path(v, "points/0/trace/phases").  nullptr if any step is missing.
const Value* find_path(const Value& root, std::string_view path);

}  // namespace scab::obs::json
