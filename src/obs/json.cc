#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace scab::obs::json {

const Value* Value::get(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : *obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run() {
    auto v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Value> parse_value() {
    if (depth_ > 64) return std::nullopt;
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return Value(std::move(*s));
      }
      case 't':
        return literal("true") ? std::optional<Value>(Value(true)) : std::nullopt;
      case 'f':
        return literal("false") ? std::optional<Value>(Value(false)) : std::nullopt;
      case 'n':
        return literal("null") ? std::optional<Value>(Value()) : std::nullopt;
      default:
        return parse_number();
    }
  }

  std::optional<Value> parse_object() {
    ++pos_;  // '{'
    ++depth_;
    Object obj;
    skip_ws();
    if (eat('}')) {
      --depth_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key || !eat(':')) return std::nullopt;
      auto val = parse_value();
      if (!val) return std::nullopt;
      obj.emplace_back(std::move(*key), std::move(*val));
      if (eat(',')) continue;
      if (eat('}')) break;
      return std::nullopt;
    }
    --depth_;
    return Value(std::move(obj));
  }

  std::optional<Value> parse_array() {
    ++pos_;  // '['
    ++depth_;
    Array arr;
    skip_ws();
    if (eat(']')) {
      --depth_;
      return Value(std::move(arr));
    }
    while (true) {
      auto val = parse_value();
      if (!val) return std::nullopt;
      arr.push_back(std::move(*val));
      if (eat(',')) continue;
      if (eat(']')) break;
      return std::nullopt;
    }
    --depth_;
    return Value(std::move(arr));
  }

  std::optional<std::string> parse_string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // ASCII-range escapes only (all our emitter produces).
          if (code > 0x7f) return std::nullopt;
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text) {
  return Parser(text).run();
}

const Value* find_path(const Value& root, std::string_view path) {
  const Value* cur = &root;
  while (!path.empty()) {
    const std::size_t slash = path.find('/');
    const std::string_view step =
        slash == std::string_view::npos ? path : path.substr(0, slash);
    path = slash == std::string_view::npos ? std::string_view{}
                                           : path.substr(slash + 1);
    if (cur->is_array()) {
      std::size_t idx = 0;
      for (char c : step) {
        if (c < '0' || c > '9') return nullptr;
        idx = idx * 10 + static_cast<std::size_t>(c - '0');
      }
      if (step.empty() || idx >= cur->as_array().size()) return nullptr;
      cur = &cur->as_array()[idx];
    } else {
      cur = cur->get(step);
      if (cur == nullptr) return nullptr;
    }
  }
  return cur;
}

}  // namespace scab::obs::json
