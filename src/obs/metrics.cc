#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace scab::obs {

std::size_t Histogram::thread_shard_slot() {
  // Threads are striped across shards round-robin by first touch; a sim run
  // is single-threaded and always lands on one shard.
  static std::atomic<std::size_t> next_thread{0};
  thread_local const std::size_t idx =
      next_thread.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

Histogram::Shard& Histogram::local_shard() {
  return shards_[thread_shard_slot()];
}

void Histogram::record(uint64_t value) {
  Shard& s = local_shard();
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = s.min.load(std::memory_order_relaxed);
  while (value < cur &&
         !s.min.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = s.max.load(std::memory_order_relaxed);
  while (value > cur &&
         !s.max.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  s.buckets[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    out.min = std::min(out.min, s.min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
    for (int i = 0; i < kBuckets; ++i) {
      out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

uint64_t Histogram::quantile(double p) const {
  const Snapshot s = snapshot();
  if (s.count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const uint64_t rank =
      static_cast<uint64_t>(p * static_cast<double>(s.count - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += s.buckets[i];
    if (seen >= rank) {
      // Upper bound of bucket i = 2^i - 1 (bit_width i covers [2^(i-1), 2^i)).
      if (i == 0) return 0;
      if (i >= 64) return UINT64_MAX;
      return (uint64_t{1} << i) - 1;
    }
  }
  return s.max;
}

void Histogram::merge_from(const Histogram& other) {
  const Snapshot o = other.snapshot();
  if (o.count == 0) return;
  // Fold the other histogram's aggregate into our first shard; readers sum
  // across shards, so the destination shard is immaterial.
  Shard& s = shards_[0];
  s.count.fetch_add(o.count, std::memory_order_relaxed);
  s.sum.fetch_add(o.sum, std::memory_order_relaxed);
  uint64_t cur = s.min.load(std::memory_order_relaxed);
  while (o.min < cur &&
         !s.min.compare_exchange_weak(cur, o.min, std::memory_order_relaxed)) {
  }
  cur = s.max.load(std::memory_order_relaxed);
  while (o.max > cur &&
         !s.max.compare_exchange_weak(cur, o.max, std::memory_order_relaxed)) {
  }
  for (int i = 0; i < kBuckets; ++i) {
    if (o.buckets[i]) {
      s.buckets[i].fetch_add(o.buckets[i], std::memory_order_relaxed);
    }
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

int64_t MetricsRegistry::gauge_max(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->max();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::map<std::string, uint64_t> MetricsRegistry::counter_values() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Resolve destination instruments OUTSIDE other's lock and record into
  // them outside our own: counter()/gauge()/histogram() take this->mu_,
  // other's map iteration takes other.mu_, and the two registries are
  // distinct objects in every call site (per-node registry -> fresh merged
  // snapshot), so lock order is always this-then-other or disjoint.
  std::lock_guard<std::mutex> lk(other.mu_);
  for (const auto& [name, c] : other.counters_) counter(name).inc(c->value());
  for (const auto& [name, g] : other.gauges_) {
    Gauge& mine = gauge(name);
    const int64_t merged_value = mine.value() + g->value();
    const int64_t merged_max = std::max({mine.max(), g->max(), merged_value});
    mine.set(merged_max);  // raises the high-water mark
    mine.set(merged_value);
  }
  for (const auto& [name, h] : other.histograms_) histogram(name).merge_from(*h);
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double v) {
  // JSON has no NaN/Infinity literal; "%.6g" would happily print "nan" or
  // "inf" and corrupt the whole dump (a SIGUSR1 metrics dump must ALWAYS
  // be machine-readable, whatever state the instruments are in).
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, name);
    out.push_back(':');
    out += std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, name);
    out += ":{\"value\":" + std::to_string(g->value()) +
           ",\"max\":" + std::to_string(g->max()) + "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, name);
    out += ":{\"count\":" + std::to_string(h->count()) +
           ",\"sum\":" + std::to_string(h->sum()) +
           ",\"min\":" + std::to_string(h->min()) +
           ",\"max\":" + std::to_string(h->max()) + ",\"mean\":";
    append_double(out, h->mean());
    out += ",\"p50\":" + std::to_string(h->quantile(0.50)) +
           ",\"p90\":" + std::to_string(h->quantile(0.90)) +
           ",\"p99\":" + std::to_string(h->quantile(0.99)) + "}";
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::inert() {
  static MetricsRegistry sink;
  return sink;
}

std::map<std::string, uint64_t> changed_counters(
    const std::map<std::string, uint64_t>& before,
    const std::map<std::string, uint64_t>& after) {
  std::map<std::string, uint64_t> out;
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    const uint64_t old = it == before.end() ? 0 : it->second;
    if (value != old) out.emplace(name, value - old);
  }
  return out;
}

}  // namespace scab::obs
