#include "obs/trace.h"

#include <cstdio>

namespace scab::obs {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kSubmit:
      return "submit";
    case Phase::kAdmit:
      return "admit";
    case Phase::kPrePrepare:
      return "propose";
    case Phase::kPrepared:
      return "prepare";
    case Phase::kCommitted:
      return "commit";
    case Phase::kExecuted:
      return "execute";
    case Phase::kRevealed:
      return "reveal";
    case Phase::kCompleted:
      return "deliver";
    case Phase::kCount:
      break;
  }
  return "?";
}

void Tracer::record(uint32_t client, uint64_t client_seq, Phase phase,
                    uint64_t now_ns) {
  if (capacity_ == 0) return;
  const Key key{client, client_seq};
  std::lock_guard<std::mutex> lk(mu_);
  auto it = spans_.find(key);
  if (it == spans_.end()) {
    if (spans_.size() >= capacity_) return;  // bounded: drop new requests
    std::array<uint64_t, kPhaseCount> fresh;
    fresh.fill(UINT64_MAX);
    it = spans_.emplace(key, fresh).first;
  }
  uint64_t& slot = it->second[static_cast<std::size_t>(phase)];
  if (now_ns < slot) slot = now_ns;
}

Tracer::Breakdown Tracer::breakdown() const {
  std::lock_guard<std::mutex> lk(mu_);
  Breakdown out;
  out.tracked = spans_.size();
  out.phases.resize(kPhaseCount - 1);
  for (std::size_t i = 1; i < kPhaseCount; ++i) {
    out.phases[i - 1].name = phase_name(static_cast<Phase>(i));
  }
  std::array<uint64_t, kPhaseCount - 1> segment_sums{};
  uint64_t e2e_sum = 0;
  for (const auto& [key, times] : spans_) {
    const uint64_t submit = times[static_cast<std::size_t>(Phase::kSubmit)];
    const uint64_t done = times[static_cast<std::size_t>(Phase::kCompleted)];
    if (submit == UINT64_MAX || done == UINT64_MAX) continue;
    ++out.completed;
    e2e_sum += done - submit;
    // Walk the phases in order; a phase that is missing or earlier than its
    // predecessor is clamped to the predecessor's time, so it contributes a
    // zero-length segment and the deltas telescope to (done - submit).
    uint64_t prev = submit;
    for (std::size_t i = 1; i < kPhaseCount; ++i) {
      uint64_t t = times[i];
      if (i == kPhaseCount - 1) t = done;  // final segment ends at kCompleted
      if (t == UINT64_MAX || t < prev) t = prev;
      if (t > done) t = done;
      segment_sums[i - 1] += t - prev;
      if (times[i] != UINT64_MAX) ++out.phases[i - 1].observed;
      prev = t;
    }
  }
  if (out.completed > 0) {
    const double n = static_cast<double>(out.completed);
    out.end_to_end_ms = static_cast<double>(e2e_sum) / n / 1e6;
    for (std::size_t i = 0; i + 1 < kPhaseCount; ++i) {
      out.phases[i].mean_ms = static_cast<double>(segment_sums[i]) / n / 1e6;
    }
  }
  return out;
}

uint64_t Tracer::first_at(uint32_t client, uint64_t client_seq,
                          Phase phase) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = spans_.find(Key{client, client_seq});
  if (it == spans_.end()) return UINT64_MAX;
  return it->second[static_cast<std::size_t>(phase)];
}

std::string Tracer::to_json() const {
  const Breakdown b = breakdown();
  char buf[64];
  std::string out = "{\"completed\":" + std::to_string(b.completed) +
                    ",\"tracked\":" + std::to_string(b.tracked) +
                    ",\"end_to_end_ms\":";
  std::snprintf(buf, sizeof(buf), "%.6f", b.end_to_end_ms);
  out += buf;
  out += ",\"phases\":[";
  for (std::size_t i = 0; i < b.phases.size(); ++i) {
    if (i) out.push_back(',');
    std::snprintf(buf, sizeof(buf), "%.6f", b.phases[i].mean_ms);
    out += "{\"name\":\"";
    out += b.phases[i].name;
    out += "\",\"mean_ms\":";
    out += buf;
    out += ",\"observed\":" + std::to_string(b.phases[i].observed) + "}";
  }
  out += "]}";
  return out;
}

Tracer& Tracer::inert() {
  static Tracer sink(0);
  return sink;
}

}  // namespace scab::obs
