// Zero-dependency metrics for the protocol stack, over virtual time.
//
// The paper's evaluation (§VI) is entirely about *where time goes* inside
// CP0–CP3 — per-phase latency, queue depths, per-protocol crypto cost — so
// every layer of the stack (sim::Network, bft::Replica/Client, the causal
// apps) publishes named counters, gauges and log-scale histograms into a
// MetricsRegistry.  Design constraints:
//
//  * Cheap enough to stay on in benchmarks: instruments are resolved ONCE
//    (by name) into stable handles; the hot-path operations are a single
//    relaxed atomic add / compare / bucket increment.  No strings, no
//    locks, no clock reads on the hot path.
//  * Host-safe: under rt::ThreadHost every node records from its own
//    worker thread while the controlling thread polls, so instruments are
//    atomic (counters/gauges) or sharded-then-merged (histograms: each
//    thread writes its own cache-line-aligned shard; readers aggregate
//    across shards).  Name resolution takes a registry mutex — off the hot
//    path by the handle rule above.
//  * Always-on without null checks: a component that was not given a
//    registry binds its handles to MetricsRegistry::inert(), a process-wide
//    sink that behaves normally but that nobody reads.
//  * Deterministic: registries hold no wall-clock state; histogram inputs
//    are virtual-time durations or sizes, so metric values are reproducible
//    across runs with the same seed (see determinism_test).
//
// Naming scheme (see DESIGN.md §7): dotted lowercase paths, one prefix per
// layer — "net.", "bft.", "client.", "cp0."/"cp1."/"cp2."/"cp3.".
// Durations are suffixed "_ns", map/queue sizes are gauges suffixed
// "_tracked" or named after the structure they mirror.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace scab::obs {

/// Monotone event count.
class Counter {
 public:
  void inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (map sizes, queue depths, lags).  Tracks the maximum
/// level ever set, which is what the bounded-state regression tests assert.
class Gauge {
 public:
  void set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    bump_max(v);
  }
  void add(int64_t delta) {
    bump_max(value_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void bump_max(int64_t v) {
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Log2-bucketed histogram: bucket i counts values whose bit width is i,
/// i.e. [2^(i-1), 2^i).  64 buckets cover the full uint64 range, so a
/// record() is bounded-cost regardless of the value distribution; quantiles
/// are bucket-upper-bound estimates (within 2x), which is plenty for
/// latency breakdowns spanning microseconds to minutes.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bit_width in [0, 64]

  void record(uint64_t value);

  uint64_t count() const { return snapshot().count; }
  uint64_t sum() const { return snapshot().sum; }
  uint64_t min() const {
    const Snapshot s = snapshot();
    return s.count == 0 ? 0 : s.min;
  }
  uint64_t max() const { return snapshot().max; }
  double mean() const {
    const Snapshot s = snapshot();
    return s.count == 0
               ? 0.0
               : static_cast<double>(s.sum) / static_cast<double>(s.count);
  }
  /// Upper bound of the bucket holding the p-quantile, p in [0, 1].
  uint64_t quantile(double p) const;

  void merge_from(const Histogram& other);

  /// Shard index the CALLING thread writes to (assigned round-robin by
  /// first touch, stable for the thread's lifetime, shared by every
  /// Histogram instance).  Exposed so tests can assert the contention
  /// structure — concurrent recorders land on distinct cache lines —
  /// without poking at Shard internals.
  static std::size_t thread_shard_slot();

 private:
  // Writers hit a per-thread shard (cache-line aligned, relaxed atomics);
  // readers aggregate across shards.  Aggregation is a sum, so the merged
  // result is independent of which thread recorded which sample — metric
  // values stay deterministic for deterministic workloads.
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
  };
  static constexpr std::size_t kShards = 8;

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = UINT64_MAX;
    uint64_t max = 0;
    std::array<uint64_t, kBuckets> buckets{};
  };
  Snapshot snapshot() const;
  Shard& local_shard();

  std::array<Shard, kShards> shards_;
};

/// Named instrument registry.  Lookup returns a stable reference valid for
/// the registry's lifetime, so components resolve names at construction and
/// keep raw handles.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  // Moves are NOT thread-safe; move only before publication (merged
  // snapshots, test fixtures).
  MetricsRegistry(MetricsRegistry&& other) noexcept
      : counters_(std::move(other.counters_)),
        gauges_(std::move(other.gauges_)),
        histograms_(std::move(other.histograms_)) {}
  MetricsRegistry& operator=(MetricsRegistry&& other) noexcept {
    counters_ = std::move(other.counters_);
    gauges_ = std::move(other.gauges_);
    histograms_ = std::move(other.histograms_);
    return *this;
  }

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // --- introspection (tests, JSON export) ---
  /// Counter value by name; 0 if the counter does not exist.
  uint64_t counter_value(std::string_view name) const;
  /// Gauge value by name; 0 if absent.
  int64_t gauge_value(std::string_view name) const;
  /// Gauge high-water mark by name; 0 if absent.
  int64_t gauge_max(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;
  /// Snapshot of every counter — diff two snapshots to assert "these
  /// counters moved and nothing else did".
  std::map<std::string, uint64_t> counter_values() const;

  /// Sums `other` into this registry: counters add, gauges add values and
  /// take the max of high-water marks, histograms merge bucket-wise.  Used
  /// by the benches to aggregate per-node registries into one report.
  void merge_from(const MetricsRegistry& other);

  /// JSON export: {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// with deterministic (sorted) key order.
  std::string to_json() const;

  /// Process-wide sink for components constructed without a registry; its
  /// instruments work normally but nobody exports them.
  static MetricsRegistry& inert();

 private:
  // std::map keeps export order deterministic; unique_ptr keeps handle
  // addresses stable across rehash-free growth.  mu_ guards the maps (name
  // resolution, iteration) — never the instruments themselves.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Names of counters whose value changed between two counter_values()
/// snapshots (taken from the same registry).  New counters count as changed.
std::map<std::string, uint64_t> changed_counters(
    const std::map<std::string, uint64_t>& before,
    const std::map<std::string, uint64_t>& after);

}  // namespace scab::obs
