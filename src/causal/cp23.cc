#include "causal/cp23.h"

#include <algorithm>

#include "crypto/aead.h"

namespace scab::causal {

using bft::NodeId;
using secretshare::Arss1Share;
using secretshare::ShamirShare;
using host::Op;

// ---------------------------------------------------------------------------
// Private-channel share envelopes

Bytes seal_share(const bft::KeyRing& keys, NodeId from, NodeId to,
                 const RequestId& id, BytesView share_wire, crypto::Drbg& rng) {
  Writer w;
  id.write(w);
  w.bytes(crypto::aead_seal(keys.channel_key(from, to), id.encode(),
                            share_wire, rng));
  return std::move(w).take();
}

std::optional<std::pair<RequestId, Bytes>> open_share(const bft::KeyRing& keys,
                                                      NodeId self, NodeId from,
                                                      BytesView body) {
  Reader r(body);
  const RequestId id = RequestId::read(r);
  const Bytes box = r.bytes();
  if (!r.done()) return std::nullopt;
  auto share = crypto::aead_open(keys.channel_key(from, self), id.encode(), box);
  if (!share) return std::nullopt;
  return std::make_pair(id, std::move(*share));
}

namespace {

Bytes corrupt_wire(Bytes wire) {
  // Garbles the share values (value-dependent, the paper's "randomly
  // corrupt" model) while keeping the wire parseable.
  for (std::size_t i = wire.size() / 2; i < wire.size(); i += 3) {
    wire[i] ^= 0x5c;
  }
  return wire;
}

// Share re-request sentinel: the share-envelope frame with an EMPTY box.  A
// real envelope always carries a non-empty AEAD box (tag included), so the
// sentinel is wire-compatible — old code silently drops it at aead_open.
Bytes encode_share_request(const RequestId& id) {
  Writer w;
  id.write(w);
  w.bytes(Bytes{});
  return std::move(w).take();
}

std::optional<RequestId> parse_share_request(BytesView body) {
  Reader r(body);
  const RequestId id = RequestId::read(r);
  const Bytes box = r.bytes();
  if (!r.done() || !box.empty()) return std::nullopt;
  return id;
}

}  // namespace

// ---------------------------------------------------------------------------
// CP2 replica

bool Cp2ReplicaApp::validate_request(NodeId /*client*/,
                                     const bft::ClientRequestMsg& msg,
                                     bft::ReplicaContext& /*ctx*/) {
  Reader r(msg.payload);
  const Bytes c = r.bytes();
  return r.done() && !c.empty();
}

void Cp2ReplicaApp::bind_metrics(bft::ReplicaContext& ctx) {
  if (m_.reconstructions != nullptr) return;
  obs::MetricsRegistry& reg = ctx.metrics();
  m_.reconstructions = &reg.counter("cp2.reconstructions");
  m_.recovery_attempts = &reg.counter("cp2.recovery_attempts");
  m_.reveal_retries = &reg.counter("cp2.reveal_retries");
  m_.share_rerequests_answered = &reg.counter("cp2.share_rerequests_answered");
  m_.early_stashed = &reg.counter("cp2.early_stashed");
  m_.pending = &reg.gauge("cp2.pending");
  m_.early_shares = &reg.gauge("cp2.early_shares");
  m_.batch_size = &reg.histogram("cp2.batch_size");
  tracer_ = &ctx.tracer();
}

void Cp2ReplicaApp::on_deliver(uint64_t /*seq*/, const bft::Request& req,
                               bft::ReplicaContext& ctx) {
  bind_metrics(ctx);
  const RequestId id{req.client, req.client_seq};
  if (completed_.contains(id) || pending_.contains(id)) return;

  Reader r(req.payload);
  Bytes c = r.bytes();
  if (!r.done()) return;
  Pending& p = pending_[id];
  p.agreed_commitment = std::move(c);
  p.delivered = true;
  p.client = req.client;
  p.client_seq = req.client_seq;
  exec_queue_.push_back(id);
  m_.pending->set(static_cast<int64_t>(pending_.size()));
  adopt_early_shares(id, p, ctx);
  start_reveal(id, p, ctx);
  arm_reveal_retry(id, 0, ctx);
}

void Cp2ReplicaApp::stash_early_share(NodeId from, const RequestId& id,
                                      Bytes wire) {
  auto& stash = early_shares_[from];
  for (const auto& [stashed_id, unused] : stash) {
    if (stashed_id == id) return;
  }
  if (stash.size() >= kCpMaxEarlySharesPerSender) stash.pop_front();
  stash.emplace_back(id, std::move(wire));
  m_.early_stashed->inc();
  m_.early_shares->set(static_cast<int64_t>(early_share_count()));
}

void Cp2ReplicaApp::adopt_early_shares(const RequestId& id, Pending& p,
                                       bft::ReplicaContext& ctx) {
  for (auto& [sender, stash] : early_shares_) {
    for (auto sit = stash.begin(); sit != stash.end();) {
      if (sit->first != id) {
        ++sit;
        continue;
      }
      if (p.seen_senders.insert(sender).second) {
        if (auto share = Arss1Share::parse(sit->second)) {
          if (sender == id.client) {
            if (!p.own_share) p.own_share = std::move(*share);
          } else if (sender < ctx.config().n) {
            p.buffered.push_back(std::move(*share));
          }
        }
      }
      sit = stash.erase(sit);
    }
  }
  m_.early_shares->set(static_cast<int64_t>(early_share_count()));
}

std::size_t Cp2ReplicaApp::early_share_count() const {
  std::size_t count = 0;
  for (const auto& [sender, stash] : early_shares_) count += stash.size();
  return count;
}

void Cp2ReplicaApp::arm_reveal_retry(const RequestId& id, uint32_t attempt,
                                     bft::ReplicaContext& ctx) {
  if (attempt >= kCpMaxRevealRetries) return;
  {
    auto it = pending_.find(id);
    if (it == pending_.end() || !it->second.delivered || it->second.revealed) {
      return;
    }
  }
  ctx.schedule(kCpRevealRetryBase << std::min(attempt, 4u),
               [this, id, attempt, &ctx] {
                 auto it = pending_.find(id);
                 if (it == pending_.end() || !it->second.delivered ||
                     it->second.revealed) {
                   return;
                 }
                 m_.reveal_retries->inc();
                 Pending& p = it->second;
                 // Re-send our share (if the client gave us one) and ask
                 // the other replicas for theirs — either side can have
                 // lost them to a partition or a restart.
                 if (p.own_share) {
                   Bytes wire = p.own_share->serialize();
                   if (corrupt_shares_) wire = corrupt_wire(std::move(wire));
                   for (NodeId to = 0; to < ctx.config().n; ++to) {
                     if (to == ctx.id()) continue;
                     ctx.charge(Op::kAeadSeal, wire.size());
                     ctx.send_causal(to, seal_share(ctx.keys(), ctx.id(), to,
                                                    id, wire, ctx.rng()));
                   }
                 }
                 ctx.broadcast_causal(encode_share_request(id));
                 arm_reveal_retry(id, attempt + 1, ctx);
               });
}

void Cp2ReplicaApp::answer_share_request(const RequestId& id, NodeId from,
                                         bft::ReplicaContext& ctx) {
  if (from >= ctx.config().n) return;  // only replicas re-collect
  const Bytes* wire = nullptr;
  Bytes pending_wire;
  if (auto it = pending_.find(id);
      it != pending_.end() && it->second.own_share) {
    pending_wire = it->second.own_share->serialize();
    wire = &pending_wire;
  } else if (auto cit = completed_own_shares_.find(id);
             cit != completed_own_shares_.end()) {
    wire = &cit->second;
  }
  if (wire == nullptr) return;  // never got a share for it (or evicted)
  m_.share_rerequests_answered->inc();
  Bytes out = corrupt_shares_ ? corrupt_wire(*wire) : *wire;
  ctx.charge(Op::kAeadSeal, out.size());
  ctx.send_causal(from,
                  seal_share(ctx.keys(), ctx.id(), from, id, out, ctx.rng()));
}

void Cp2ReplicaApp::start_reveal(const RequestId& id, Pending& p,
                                 bft::ReplicaContext& ctx) {
  p.reconstructor = std::make_shared<secretshare::Arss1Reconstructor>(
      commitment_, ctx.config().f, p.agreed_commitment);

  // Broadcast our own share to the other replicas over private channels.
  if (p.own_share) {
    Bytes wire = p.own_share->serialize();
    if (corrupt_shares_) wire = corrupt_wire(std::move(wire));
    for (NodeId to = 0; to < ctx.config().n; ++to) {
      if (to == ctx.id()) continue;
      ctx.charge(Op::kAeadSeal, wire.size());
      ctx.send_causal(to, seal_share(ctx.keys(), ctx.id(), to, id, wire,
                                     ctx.rng()));
    }
  }

  // Feed what we have: our own share first, then anything adopted from the
  // early-share stash — one accumulated flush per delivery, whose size is
  // the reveal batching measure (cp2.batch_size).  The whole batch rides a
  // single worker-pool job; the continuation applies the reveal.
  std::vector<secretshare::Arss1Share> batch;
  batch.reserve(p.buffered.size() + 1);
  if (p.own_share) batch.push_back(*p.own_share);
  for (auto& s : p.buffered) batch.push_back(std::move(s));
  p.buffered.clear();
  if (!batch.empty()) m_.batch_size->record(batch.size());
  feed_shares_async(id, p, std::move(batch), ctx);
}

void Cp2ReplicaApp::on_causal_message(NodeId from, BytesView body,
                                      bft::ReplicaContext& ctx) {
  bind_metrics(ctx);
  if (auto req_id = parse_share_request(body)) {
    answer_share_request(*req_id, from, ctx);
    return;
  }
  ctx.charge(Op::kAeadOpen, body.size());
  auto opened = open_share(ctx.keys(), ctx.id(), from, body);
  if (!opened) return;
  auto& [id, wire] = *opened;
  if (completed_.contains(id)) return;
  auto share = Arss1Share::parse(wire);
  if (!share) return;

  auto it = pending_.find(id);
  if (it == pending_.end()) {
    // Not delivered yet.  A correct peer (or the client) can legitimately
    // race ahead of delivery, but a Byzantine sender can also name
    // RequestIds forever — stash the wire in a bounded per-sender FIFO
    // instead of creating reveal state keyed by an unauthenticated id.
    stash_early_share(from, id, std::move(wire));
    return;
  }
  Pending& p = it->second;
  if (!p.seen_senders.insert(from).second) return;

  if (from == id.client) {
    // The client's private distribution of OUR share.
    if (!p.own_share) p.own_share = std::move(*share);
    return;
  }
  if (from >= ctx.config().n) return;  // only replicas relay shares

  m_.batch_size->record(1);  // post-delivery stragglers feed one at a time
  std::vector<Arss1Share> batch;
  batch.push_back(std::move(*share));
  feed_shares_async(id, p, std::move(batch), ctx);
}

void Cp2ReplicaApp::feed_shares_async(const RequestId& id, Pending& p,
                                      std::vector<Arss1Share> batch,
                                      bft::ReplicaContext& ctx) {
  if (p.revealed || batch.empty()) return;
  if (p.reveal_inflight || !p.reconstructor) {
    // A batch is already on the pool (the reconstructor travels with it):
    // queue behind it; the landing continuation feeds the backlog.
    for (auto& s : batch) p.buffered.push_back(std::move(s));
    return;
  }
  p.reveal_inflight = true;
  // The reconstructor is handed to the job; `commitment_` is only read
  // (const) through it, which is safe off-thread — nothing mutates a
  // Commitment after construction.
  auto rec = std::move(p.reconstructor);
  ctx.offload([this, &ctx, id, rec = std::move(rec),
               batch = std::move(batch)]() mutable -> std::function<void()> {
    // Per-share attempt deltas, so the continuation can charge the modeled
    // costs exactly as the synchronous path did.
    std::vector<std::pair<std::size_t, std::size_t>> fed;  // (attempts, len)
    std::optional<Bytes> secret;
    for (const auto& s : batch) {
      const std::size_t before = rec->attempts();
      secret = rec->add(s);
      fed.emplace_back(rec->attempts() - before, s.inner.secret_len);
      if (secret) break;
    }
    return [this, &ctx, id, rec = std::move(rec), fed = std::move(fed),
            secret = std::move(secret)]() mutable {
      auto it = pending_.find(id);
      if (it == pending_.end()) return;  // safety: cannot complete in flight
      Pending& p = it->second;
      p.reveal_inflight = false;
      p.reconstructor = std::move(rec);
      for (const auto& [attempts, len] : fed) {
        recovery_attempts_ += attempts;
        m_.recovery_attempts->inc(attempts);
        for (std::size_t i = 0; i < attempts; ++i) {
          ctx.charge(Op::kShamirRec, len);
          ctx.charge(Op::kCommitOpen, len);
        }
      }
      if (secret) {
        p.revealed = true;
        p.plaintext = std::move(*secret);
        m_.reconstructions->inc();
        tracer_->record(p.client, p.client_seq, obs::Phase::kRevealed,
                        ctx.now());
        drain_execution(ctx);
        return;
      }
      if (!p.buffered.empty()) {
        std::vector<Arss1Share> next = std::move(p.buffered);
        p.buffered.clear();
        feed_shares_async(id, p, std::move(next), ctx);
      }
    };
  });
}

void Cp2ReplicaApp::drain_execution(bft::ReplicaContext& ctx) {
  while (!exec_queue_.empty()) {
    const RequestId id = exec_queue_.front();
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      exec_queue_.pop_front();
      continue;
    }
    Pending& p = it->second;
    if (!p.revealed) return;
    // Durable execution marker (DESIGN.md §13): a replay cannot re-collect
    // the peers' shares, so the recovered plaintext itself is logged before
    // the service runs.  Safe post-reveal — secrecy ends at the reveal.
    {
      Writer w;
      id.write(w);
      w.bytes(p.plaintext);
      const Bytes rec = std::move(w).take();
      ctx.wal_append(rec);
    }
    ctx.charge(Op::kExecute, p.plaintext.size());
    Bytes result = service_->execute(p.client, p.plaintext);
    ctx.send_reply(p.client, p.client_seq, std::move(result));
    completed_.insert(id);
    if (p.own_share) {
      if (completed_own_shares_.size() >= kCpMaxCompletedShareCache) {
        completed_own_shares_.erase(completed_own_shares_order_.front());
        completed_own_shares_order_.pop_front();
      }
      completed_own_shares_order_.push_back(id);
      completed_own_shares_.emplace(id, p.own_share->serialize());
    }
    pending_.erase(it);
    exec_queue_.pop_front();
  }
  m_.pending->set(static_cast<int64_t>(pending_.size()));
}

// ---------------------------------------------------------------------------
// CP2 durability (DESIGN.md §13)

namespace {
constexpr uint32_t kCp23StateVersion = 1;

void write_sorted_ids(Writer& w, const std::unordered_set<RequestId>& set) {
  std::vector<RequestId> ids(set.begin(), set.end());
  std::sort(ids.begin(), ids.end());
  w.u32(static_cast<uint32_t>(ids.size()));
  for (const RequestId& id : ids) id.write(w);
}
}  // namespace

Bytes Cp2ReplicaApp::serialize_state(bft::ReplicaContext& /*ctx*/) {
  Writer w;
  w.u32(kCp23StateVersion);
  w.bytes(service_->serialize());
  write_sorted_ids(w, completed_);
  w.u32(static_cast<uint32_t>(completed_own_shares_order_.size()));
  for (const RequestId& id : completed_own_shares_order_) {
    id.write(w);
    auto it = completed_own_shares_.find(id);
    w.bytes(it != completed_own_shares_.end() ? BytesView(it->second)
                                              : BytesView{});
  }
  w.u32(static_cast<uint32_t>(exec_queue_.size()));
  for (const RequestId& id : exec_queue_) id.write(w);
  // Pending reveals, sorted by id for a deterministic blob.  Transient
  // state (buffered shares, seen-sender set, the reconstructor itself) is
  // dropped: restore rebuilds the reconstructor and the retry protocol
  // re-collects the shares.
  std::vector<RequestId> pend;
  pend.reserve(pending_.size());
  for (const auto& [id, p] : pending_) pend.push_back(id);
  std::sort(pend.begin(), pend.end());
  w.u32(static_cast<uint32_t>(pend.size()));
  for (const RequestId& id : pend) {
    const Pending& p = pending_.at(id);
    id.write(w);
    w.bytes(p.agreed_commitment);
    w.u32(p.client);
    w.u64(p.client_seq);
    w.u8(p.delivered ? 1 : 0);
    w.u8(p.revealed ? 1 : 0);
    w.bytes(p.plaintext);
    w.u8(p.own_share ? 1 : 0);
    if (p.own_share) w.bytes(p.own_share->serialize());
  }
  return std::move(w).take();
}

bool Cp2ReplicaApp::restore_state(BytesView blob, bft::ReplicaContext& ctx) {
  if (blob.empty()) return true;
  bind_metrics(ctx);
  Reader r(blob);
  if (r.u32() != kCp23StateVersion) return false;
  const Bytes service_blob = r.bytes();
  std::unordered_set<RequestId> completed;
  const uint32_t n_completed = r.u32();
  for (uint32_t i = 0; i < n_completed && r.ok(); ++i) {
    completed.insert(RequestId::read(r));
  }
  std::unordered_map<RequestId, Bytes> own_shares;
  std::deque<RequestId> own_order;
  const uint32_t n_shares = r.u32();
  for (uint32_t i = 0; i < n_shares && r.ok(); ++i) {
    const RequestId id = RequestId::read(r);
    Bytes wire = r.bytes();
    own_order.push_back(id);
    own_shares.emplace(id, std::move(wire));
  }
  std::deque<RequestId> exec_queue;
  const uint32_t n_queue = r.u32();
  for (uint32_t i = 0; i < n_queue && r.ok(); ++i) {
    exec_queue.push_back(RequestId::read(r));
  }
  std::unordered_map<RequestId, Pending> pending;
  const uint32_t n_pending = r.u32();
  for (uint32_t i = 0; i < n_pending && r.ok(); ++i) {
    const RequestId id = RequestId::read(r);
    Pending p;
    p.agreed_commitment = r.bytes();
    p.client = r.u32();
    p.client_seq = r.u64();
    p.delivered = r.u8() != 0;
    p.revealed = r.u8() != 0;
    p.plaintext = r.bytes();
    if (r.u8() != 0) {
      auto share = Arss1Share::parse(r.bytes());
      if (!share) return false;
      p.own_share = std::move(*share);
    }
    pending.emplace(id, std::move(p));
  }
  if (!r.ok() || !r.done()) return false;
  if (!service_->restore(service_blob)) return false;
  completed_ = std::move(completed);
  completed_own_shares_ = std::move(own_shares);
  completed_own_shares_order_ = std::move(own_order);
  exec_queue_ = std::move(exec_queue);
  pending_ = std::move(pending);
  // Restart the reveal machinery: a fresh reconstructor, our own share
  // re-fed and re-broadcast, and the retry timer re-requesting the peers'.
  for (auto& [id, p] : pending_) {
    if (!p.delivered || p.revealed) continue;
    start_reveal(id, p, ctx);
    arm_reveal_retry(id, 0, ctx);
  }
  m_.pending->set(static_cast<int64_t>(pending_.size()));
  return true;
}

void Cp2ReplicaApp::on_wal_record(BytesView record, bft::ReplicaContext& ctx) {
  bind_metrics(ctx);
  Reader r(record);
  const RequestId id = RequestId::read(r);
  Bytes plaintext = r.bytes();
  if (!r.ok() || !r.done()) return;
  // Pre-snapshot tails can survive a torn snapshot/truncate window; the
  // completed set (restored from the snapshot) makes them no-ops.
  if (completed_.contains(id)) return;
  ctx.charge(Op::kExecute, plaintext.size());
  Bytes result = service_->execute(id.client, plaintext);
  ctx.send_reply(id.client, id.seq, std::move(result));
  completed_.insert(id);
  if (auto it = pending_.find(id); it != pending_.end()) {
    if (it->second.own_share) {
      if (completed_own_shares_.size() >= kCpMaxCompletedShareCache) {
        completed_own_shares_.erase(completed_own_shares_order_.front());
        completed_own_shares_order_.pop_front();
      }
      completed_own_shares_order_.push_back(id);
      completed_own_shares_.emplace(id, it->second.own_share->serialize());
    }
    pending_.erase(it);
  }
  std::erase(exec_queue_, id);
  m_.pending->set(static_cast<int64_t>(pending_.size()));
}

// ---------------------------------------------------------------------------
// CP2 client

void Cp2ClientProtocol::start(uint64_t client_seq, BytesView op,
                              bft::ClientContext& ctx) {
  seq_ = client_seq;
  id_ = RequestId{ctx.id(), client_seq};
  const auto& cfg = ctx.config();

  ctx.charge(Op::kCommit, op.size());
  ctx.charge(Op::kShamirShare, op.size());  // calibrated for the full n-vector
  auto shares =
      secretshare::arss1_share(op, cfg.f + 1, cfg.n, commitment_, ctx.rng());

  Writer w;
  w.bytes(shares[0].commitment);
  schedule_payload_ = std::move(w).take();

  share_wires_.clear();
  share_wires_.reserve(cfg.n);
  for (const auto& s : shares) share_wires_.push_back(s.serialize());

  quorum_.arm(client_seq, cfg.f + 1);
  send_all(ctx);
}

void Cp2ClientProtocol::send_all(bft::ClientContext& ctx) {
  const auto& cfg = ctx.config();
  for (NodeId r = 0; r < cfg.n; ++r) {
    ctx.charge(Op::kAeadSeal, share_wires_[r].size());
    ctx.send_causal(r, seal_share(ctx.keys(), ctx.id(), r, id_,
                                  share_wires_[r], ctx.rng()));
  }
  ctx.send_request(seq_, schedule_payload_);
}

void Cp2ClientProtocol::on_reply(NodeId replica, const bft::ReplyMsg& reply,
                                 bft::ClientContext& ctx) {
  if (quorum_.add(replica, reply)) ctx.complete(reply.result);
}

void Cp2ClientProtocol::on_retransmit(bft::ClientContext& ctx) {
  send_all(ctx);
}

// ---------------------------------------------------------------------------
// CP3 replica

bool Cp3ReplicaApp::validate_request(NodeId /*client*/,
                                     const bft::ClientRequestMsg& msg,
                                     bft::ReplicaContext& /*ctx*/) {
  return msg.payload.empty();  // CP3 agrees on the ID alone
}

void Cp3ReplicaApp::bind_metrics(bft::ReplicaContext& ctx) {
  if (m_.reconstructions != nullptr) return;
  obs::MetricsRegistry& reg = ctx.metrics();
  m_.reconstructions = &reg.counter("cp3.reconstructions");
  m_.recovery_attempts = &reg.counter("cp3.recovery_attempts");
  m_.reveal_retries = &reg.counter("cp3.reveal_retries");
  m_.share_rerequests_answered = &reg.counter("cp3.share_rerequests_answered");
  m_.early_stashed = &reg.counter("cp3.early_stashed");
  m_.pending = &reg.gauge("cp3.pending");
  m_.early_shares = &reg.gauge("cp3.early_shares");
  m_.batch_size = &reg.histogram("cp3.batch_size");
  tracer_ = &ctx.tracer();
}

void Cp3ReplicaApp::on_deliver(uint64_t /*seq*/, const bft::Request& req,
                               bft::ReplicaContext& ctx) {
  bind_metrics(ctx);
  const RequestId id{req.client, req.client_seq};
  if (completed_.contains(id) || pending_.contains(id)) return;
  Pending& p = pending_[id];
  p.delivered = true;
  p.client = req.client;
  p.client_seq = req.client_seq;
  exec_queue_.push_back(id);
  m_.pending->set(static_cast<int64_t>(pending_.size()));
  adopt_early_shares(id, p, ctx);
  start_reveal(id, p, ctx);
  arm_reveal_retry(id, 0, ctx);
}

void Cp3ReplicaApp::stash_early_share(NodeId from, const RequestId& id,
                                      Bytes wire) {
  auto& stash = early_shares_[from];
  for (const auto& [stashed_id, unused] : stash) {
    if (stashed_id == id) return;
  }
  if (stash.size() >= kCpMaxEarlySharesPerSender) stash.pop_front();
  stash.emplace_back(id, std::move(wire));
  m_.early_stashed->inc();
  m_.early_shares->set(static_cast<int64_t>(early_share_count()));
}

void Cp3ReplicaApp::adopt_early_shares(const RequestId& id, Pending& p,
                                       bft::ReplicaContext& ctx) {
  for (auto& [sender, stash] : early_shares_) {
    for (auto sit = stash.begin(); sit != stash.end();) {
      if (sit->first != id) {
        ++sit;
        continue;
      }
      if (p.seen_senders.insert(sender).second) {
        if (auto share = ShamirShare::parse(sit->second)) {
          if (sender == id.client) {
            if (!p.own_share) p.own_share = std::move(*share);
          } else if (sender < ctx.config().n) {
            p.buffered.push_back(std::move(*share));
          }
        }
      }
      sit = stash.erase(sit);
    }
  }
  m_.early_shares->set(static_cast<int64_t>(early_share_count()));
}

std::size_t Cp3ReplicaApp::early_share_count() const {
  std::size_t count = 0;
  for (const auto& [sender, stash] : early_shares_) count += stash.size();
  return count;
}

void Cp3ReplicaApp::arm_reveal_retry(const RequestId& id, uint32_t attempt,
                                     bft::ReplicaContext& ctx) {
  if (attempt >= kCpMaxRevealRetries) return;
  {
    auto it = pending_.find(id);
    if (it == pending_.end() || !it->second.delivered || it->second.revealed) {
      return;
    }
  }
  ctx.schedule(kCpRevealRetryBase << std::min(attempt, 4u),
               [this, id, attempt, &ctx] {
                 auto it = pending_.find(id);
                 if (it == pending_.end() || !it->second.delivered ||
                     it->second.revealed) {
                   return;
                 }
                 m_.reveal_retries->inc();
                 Pending& p = it->second;
                 if (p.own_share) {
                   Bytes wire = p.own_share->serialize();
                   if (corrupt_shares_) wire = corrupt_wire(std::move(wire));
                   for (NodeId to = 0; to < ctx.config().n; ++to) {
                     if (to == ctx.id()) continue;
                     ctx.charge(Op::kAeadSeal, wire.size());
                     ctx.send_causal(to, seal_share(ctx.keys(), ctx.id(), to,
                                                    id, wire, ctx.rng()));
                   }
                 }
                 ctx.broadcast_causal(encode_share_request(id));
                 arm_reveal_retry(id, attempt + 1, ctx);
               });
}

void Cp3ReplicaApp::answer_share_request(const RequestId& id, NodeId from,
                                         bft::ReplicaContext& ctx) {
  if (from >= ctx.config().n) return;  // only replicas re-collect
  const Bytes* wire = nullptr;
  Bytes pending_wire;
  if (auto it = pending_.find(id);
      it != pending_.end() && it->second.own_share) {
    pending_wire = it->second.own_share->serialize();
    wire = &pending_wire;
  } else if (auto cit = completed_own_shares_.find(id);
             cit != completed_own_shares_.end()) {
    wire = &cit->second;
  }
  if (wire == nullptr) return;  // never got a share for it (or evicted)
  m_.share_rerequests_answered->inc();
  Bytes out = corrupt_shares_ ? corrupt_wire(*wire) : *wire;
  ctx.charge(Op::kAeadSeal, out.size());
  ctx.send_causal(from,
                  seal_share(ctx.keys(), ctx.id(), from, id, out, ctx.rng()));
}

void Cp3ReplicaApp::start_reveal(const RequestId& id, Pending& p,
                                 bft::ReplicaContext& ctx) {
  p.reconstructor = std::make_shared<secretshare::Arss2Reconstructor>(
      ctx.config().f, p.own_share, mode_);

  if (p.own_share) {
    Bytes wire = p.own_share->serialize();
    if (corrupt_shares_) wire = corrupt_wire(std::move(wire));
    for (NodeId to = 0; to < ctx.config().n; ++to) {
      if (to == ctx.id()) continue;
      ctx.charge(Op::kAeadSeal, wire.size());
      ctx.send_causal(to, seal_share(ctx.keys(), ctx.id(), to, id, wire,
                                     ctx.rng()));
    }
  }
  // Feed everything adopted from the early-share stash as one accumulated
  // flush (its size is the reveal batching measure, cp3.batch_size; the own
  // share counts — it entered via the reconstructor's constructor).  The
  // whole batch rides a single worker-pool job.
  std::vector<secretshare::ShamirShare> batch = std::move(p.buffered);
  p.buffered.clear();
  const std::size_t flush = batch.size() + (p.own_share ? 1 : 0);
  if (flush > 0) m_.batch_size->record(flush);
  feed_shares_async(id, p, std::move(batch), ctx);
}

void Cp3ReplicaApp::on_causal_message(NodeId from, BytesView body,
                                      bft::ReplicaContext& ctx) {
  bind_metrics(ctx);
  if (auto req_id = parse_share_request(body)) {
    answer_share_request(*req_id, from, ctx);
    return;
  }
  ctx.charge(Op::kAeadOpen, body.size());
  auto opened = open_share(ctx.keys(), ctx.id(), from, body);
  if (!opened) return;
  auto& [id, wire] = *opened;
  if (completed_.contains(id)) return;
  auto share = ShamirShare::parse(wire);
  if (!share) return;

  auto it = pending_.find(id);
  if (it == pending_.end()) {
    // Not delivered yet: bounded per-sender stash (see Cp2ReplicaApp).
    stash_early_share(from, id, std::move(wire));
    return;
  }
  Pending& p = it->second;
  if (!p.seen_senders.insert(from).second) return;

  if (from == id.client) {
    if (!p.own_share) p.own_share = std::move(*share);
    return;
  }
  if (from >= ctx.config().n) return;

  m_.batch_size->record(1);  // post-delivery stragglers feed one at a time
  std::vector<ShamirShare> batch;
  batch.push_back(std::move(*share));
  feed_shares_async(id, p, std::move(batch), ctx);
}

void Cp3ReplicaApp::feed_shares_async(const RequestId& id, Pending& p,
                                      std::vector<ShamirShare> batch,
                                      bft::ReplicaContext& ctx) {
  if (p.revealed || batch.empty()) return;
  if (p.reveal_inflight || !p.reconstructor) {
    for (auto& s : batch) p.buffered.push_back(std::move(s));
    return;
  }
  p.reveal_inflight = true;
  auto rec = std::move(p.reconstructor);
  ctx.offload([this, &ctx, id, rec = std::move(rec),
               batch = std::move(batch)]() mutable -> std::function<void()> {
    std::vector<std::pair<std::size_t, std::size_t>> fed;  // (attempts, len)
    std::optional<Bytes> secret;
    for (const auto& s : batch) {
      const std::size_t before = rec->attempts();
      secret = rec->add(s);
      fed.emplace_back(rec->attempts() - before, s.secret_len);
      if (secret) break;
    }
    return [this, &ctx, id, rec = std::move(rec), fed = std::move(fed),
            secret = std::move(secret)]() mutable {
      auto it = pending_.find(id);
      if (it == pending_.end()) return;  // safety: cannot complete in flight
      Pending& p = it->second;
      p.reveal_inflight = false;
      p.reconstructor = std::move(rec);
      for (const auto& [attempts, len] : fed) {
        recovery_attempts_ += attempts;
        m_.recovery_attempts->inc(attempts);
        for (std::size_t i = 0; i < attempts; ++i) {
          ctx.charge(Op::kShamirRec, len);
        }
      }
      if (secret) {
        p.revealed = true;
        p.plaintext = std::move(*secret);
        m_.reconstructions->inc();
        tracer_->record(p.client, p.client_seq, obs::Phase::kRevealed,
                        ctx.now());
        drain_execution(ctx);
        return;
      }
      if (!p.buffered.empty()) {
        std::vector<ShamirShare> next = std::move(p.buffered);
        p.buffered.clear();
        feed_shares_async(id, p, std::move(next), ctx);
      }
    };
  });
}

void Cp3ReplicaApp::drain_execution(bft::ReplicaContext& ctx) {
  while (!exec_queue_.empty()) {
    const RequestId id = exec_queue_.front();
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      exec_queue_.pop_front();
      continue;
    }
    Pending& p = it->second;
    if (!p.revealed) return;
    // Durable execution marker (DESIGN.md §13) — see Cp2ReplicaApp.
    {
      Writer w;
      id.write(w);
      w.bytes(p.plaintext);
      const Bytes rec = std::move(w).take();
      ctx.wal_append(rec);
    }
    ctx.charge(Op::kExecute, p.plaintext.size());
    Bytes result = service_->execute(p.client, p.plaintext);
    ctx.send_reply(p.client, p.client_seq, std::move(result));
    completed_.insert(id);
    if (p.own_share) {
      if (completed_own_shares_.size() >= kCpMaxCompletedShareCache) {
        completed_own_shares_.erase(completed_own_shares_order_.front());
        completed_own_shares_order_.pop_front();
      }
      completed_own_shares_order_.push_back(id);
      completed_own_shares_.emplace(id, p.own_share->serialize());
    }
    pending_.erase(it);
    exec_queue_.pop_front();
  }
  m_.pending->set(static_cast<int64_t>(pending_.size()));
}

// ---------------------------------------------------------------------------
// CP3 durability (DESIGN.md §13)

Bytes Cp3ReplicaApp::serialize_state(bft::ReplicaContext& /*ctx*/) {
  Writer w;
  w.u32(kCp23StateVersion);
  w.bytes(service_->serialize());
  write_sorted_ids(w, completed_);
  w.u32(static_cast<uint32_t>(completed_own_shares_order_.size()));
  for (const RequestId& id : completed_own_shares_order_) {
    id.write(w);
    auto it = completed_own_shares_.find(id);
    w.bytes(it != completed_own_shares_.end() ? BytesView(it->second)
                                              : BytesView{});
  }
  w.u32(static_cast<uint32_t>(exec_queue_.size()));
  for (const RequestId& id : exec_queue_) id.write(w);
  std::vector<RequestId> pend;
  pend.reserve(pending_.size());
  for (const auto& [id, p] : pending_) pend.push_back(id);
  std::sort(pend.begin(), pend.end());
  w.u32(static_cast<uint32_t>(pend.size()));
  for (const RequestId& id : pend) {
    const Pending& p = pending_.at(id);
    id.write(w);
    w.u32(p.client);
    w.u64(p.client_seq);
    w.u8(p.delivered ? 1 : 0);
    w.u8(p.revealed ? 1 : 0);
    w.bytes(p.plaintext);
    w.u8(p.own_share ? 1 : 0);
    if (p.own_share) w.bytes(p.own_share->serialize());
  }
  return std::move(w).take();
}

bool Cp3ReplicaApp::restore_state(BytesView blob, bft::ReplicaContext& ctx) {
  if (blob.empty()) return true;
  bind_metrics(ctx);
  Reader r(blob);
  if (r.u32() != kCp23StateVersion) return false;
  const Bytes service_blob = r.bytes();
  std::unordered_set<RequestId> completed;
  const uint32_t n_completed = r.u32();
  for (uint32_t i = 0; i < n_completed && r.ok(); ++i) {
    completed.insert(RequestId::read(r));
  }
  std::unordered_map<RequestId, Bytes> own_shares;
  std::deque<RequestId> own_order;
  const uint32_t n_shares = r.u32();
  for (uint32_t i = 0; i < n_shares && r.ok(); ++i) {
    const RequestId id = RequestId::read(r);
    Bytes wire = r.bytes();
    own_order.push_back(id);
    own_shares.emplace(id, std::move(wire));
  }
  std::deque<RequestId> exec_queue;
  const uint32_t n_queue = r.u32();
  for (uint32_t i = 0; i < n_queue && r.ok(); ++i) {
    exec_queue.push_back(RequestId::read(r));
  }
  std::unordered_map<RequestId, Pending> pending;
  const uint32_t n_pending = r.u32();
  for (uint32_t i = 0; i < n_pending && r.ok(); ++i) {
    const RequestId id = RequestId::read(r);
    Pending p;
    p.client = r.u32();
    p.client_seq = r.u64();
    p.delivered = r.u8() != 0;
    p.revealed = r.u8() != 0;
    p.plaintext = r.bytes();
    if (r.u8() != 0) {
      auto share = ShamirShare::parse(r.bytes());
      if (!share) return false;
      p.own_share = std::move(*share);
    }
    pending.emplace(id, std::move(p));
  }
  if (!r.ok() || !r.done()) return false;
  if (!service_->restore(service_blob)) return false;
  completed_ = std::move(completed);
  completed_own_shares_ = std::move(own_shares);
  completed_own_shares_order_ = std::move(own_order);
  exec_queue_ = std::move(exec_queue);
  pending_ = std::move(pending);
  for (auto& [id, p] : pending_) {
    if (!p.delivered || p.revealed) continue;
    start_reveal(id, p, ctx);
    arm_reveal_retry(id, 0, ctx);
  }
  m_.pending->set(static_cast<int64_t>(pending_.size()));
  return true;
}

void Cp3ReplicaApp::on_wal_record(BytesView record, bft::ReplicaContext& ctx) {
  bind_metrics(ctx);
  Reader r(record);
  const RequestId id = RequestId::read(r);
  Bytes plaintext = r.bytes();
  if (!r.ok() || !r.done()) return;
  if (completed_.contains(id)) return;
  ctx.charge(Op::kExecute, plaintext.size());
  Bytes result = service_->execute(id.client, plaintext);
  ctx.send_reply(id.client, id.seq, std::move(result));
  completed_.insert(id);
  if (auto it = pending_.find(id); it != pending_.end()) {
    if (it->second.own_share) {
      if (completed_own_shares_.size() >= kCpMaxCompletedShareCache) {
        completed_own_shares_.erase(completed_own_shares_order_.front());
        completed_own_shares_order_.pop_front();
      }
      completed_own_shares_order_.push_back(id);
      completed_own_shares_.emplace(id, it->second.own_share->serialize());
    }
    pending_.erase(it);
  }
  std::erase(exec_queue_, id);
  m_.pending->set(static_cast<int64_t>(pending_.size()));
}

// ---------------------------------------------------------------------------
// CP3 client

void Cp3ClientProtocol::start(uint64_t client_seq, BytesView op,
                              bft::ClientContext& ctx) {
  seq_ = client_seq;
  id_ = RequestId{ctx.id(), client_seq};
  const auto& cfg = ctx.config();

  ctx.charge(Op::kShamirShare, op.size());  // calibrated for the full n-vector
  auto shares = secretshare::arss2_share(op, cfg.f, cfg.n, ctx.rng());

  share_wires_.clear();
  share_wires_.reserve(cfg.n);
  for (const auto& s : shares) share_wires_.push_back(s.serialize());

  quorum_.arm(client_seq, cfg.f + 1);
  send_all(ctx);
}

void Cp3ClientProtocol::send_all(bft::ClientContext& ctx) {
  const auto& cfg = ctx.config();
  for (NodeId r = 0; r < cfg.n; ++r) {
    ctx.charge(Op::kAeadSeal, share_wires_[r].size());
    ctx.send_causal(r, seal_share(ctx.keys(), ctx.id(), r, id_,
                                  share_wires_[r], ctx.rng()));
  }
  ctx.send_request(seq_, Bytes{});
}

void Cp3ClientProtocol::on_reply(NodeId replica, const bft::ReplyMsg& reply,
                                 bft::ClientContext& ctx) {
  if (quorum_.add(replica, reply)) ctx.complete(reply.result);
}

void Cp3ClientProtocol::on_retransmit(bft::ClientContext& ctx) {
  send_all(ctx);
}

}  // namespace scab::causal
