// CP1 — secure causal atomic broadcast from fair BFT + NM-CAD (paper §V-C).
//
// Schedule: the client commits to its request under the header
// ID = (client, seq) — (c, d) <- Commit_ck^ID(m) — and the commitment is
// ordered by PBFT; replicas record the tentative request and reply
// "scheduled".  Reveal: on f+1 matching scheduled-replies the client sends
// (ID, reveal, (m, d)) as a SECOND BFT request; replicas verify the opening
// at delivery, execute, and reply.
//
// Two liveness mechanisms from the paper:
//  * Amplification — a replica that verified a witness (m, d) forwards it to
//    the others if the reveal has not been ordered shortly after; the
//    witness is transferable (self-certifying), so the forward needs no
//    client authentication.
//  * Cleanup — tentative (scheduled-but-unopened) requests older than the
//    cleanup cycle are aborted by a primary-initiated CLEANUP operation.
//    Age is measured in delivered requests, so it is identical at all
//    correct replicas; a primary whose CLEANUP violates the cycle rule is
//    demoted by view change.  The rule is sound because the underlying BFT
//    is fair (the watchdog in bft/replica.h): a correct client's reveal
//    cannot be delayed indefinitely relative to other traffic.
#pragma once

#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bft/app.h"
#include "bft/client.h"
#include "causal/cp1_options.h"
#include "causal/id.h"
#include "causal/service.h"
#include "crypto/commitment.h"

namespace scab::causal {

/// Payload tags inside CP1 request payloads.
enum class Cp1Phase : uint8_t {
  kSchedule = 0,  // payload: commitment c
  kReveal = 1,    // payload: ID, m, d
  kCleanup = 2,   // payload: list of expired IDs (primary-injected)
};

class Cp1ReplicaApp : public bft::ReplicaApp {
 public:
  Cp1ReplicaApp(std::unique_ptr<Service> service,
                crypto::NmCadCommitment commitment, Cp1Options options = {})
      : service_(std::move(service)),
        commitment_(std::move(commitment)),
        options_(options) {}

  bool validate_request(bft::NodeId client, const bft::ClientRequestMsg& msg,
                        bft::ReplicaContext& ctx) override;
  void on_deliver(uint64_t seq, const bft::Request& req,
                  bft::ReplicaContext& ctx) override;
  void on_batch_end(bft::ReplicaContext& ctx) override;
  void on_causal_message(bft::NodeId from, BytesView body,
                         bft::ReplicaContext& ctx) override;

  // Durability (DESIGN.md §13).  Unlike CP0, a CP1 reveal carries its
  // plaintext in the ordered payload, so replaying post-snapshot deliveries
  // re-runs executions exactly — no per-execution WAL records needed.  The
  // snapshot carries the tentative/opened/aborted bookkeeping plus any
  // deferred reveal-flush entries (delivered but unexecuted at snapshot
  // time); restore force-resolves and executes those before WAL replay.
  Bytes serialize_state(bft::ReplicaContext& ctx) override;
  bool restore_state(BytesView blob, bft::ReplicaContext& ctx) override;

  Service& service() { return *service_; }
  uint64_t tentative_count() const { return tentative_.size(); }
  uint64_t cleaned_count() const { return cleaned_count_; }

  /// The deterministic reply body acknowledging a schedule step.
  static Bytes scheduled_marker();
  /// The deterministic reply body for a reveal whose request was cleaned.
  static Bytes aborted_marker();

 private:
  struct Tentative {
    Bytes commitment;
    uint64_t scheduled_at_count = 0;  // value of delivered_count_ when scheduled
  };

  /// One reveal whose opening check rides the worker pool and whose
  /// execution is deferred to the batch flush.  Entries enter in delivery
  /// order as kPending and resolve in place (possibly out of order); the
  /// flush executes the resolved prefix, preserving delivery order.
  struct DeferredReveal {
    RequestId id;
    uint64_t ticket = 0;     // matches a pool continuation to ITS entry
    uint64_t reply_seq = 0;  // client_seq of the reveal request (reply key)
    Bytes message;
    enum class State : uint8_t { kPending, kValid, kRejected };
    State state = State::kPending;
    // Opening inputs, retained while kPending so a forced flush can resolve
    // the check inline when the pool job has not landed yet.
    Bytes commitment;
    Bytes opening;
  };

  void deliver_schedule(const bft::Request& req, bft::ReplicaContext& ctx);
  void deliver_reveal(const bft::Request& req, bft::ReplicaContext& ctx);
  void deliver_cleanup(const bft::Request& req, bft::ReplicaContext& ctx);
  /// Applies an opening verdict to a kPending flush entry: the protocol
  /// side effects of a delivered reveal (opened_/tentative_/metrics/trace).
  void resolve_reveal(DeferredReveal& d, bool ok, bft::ReplicaContext& ctx);
  /// Executes and replies to the RESOLVED prefix of the deferred reveals in
  /// delivery order (DESIGN.md §10: consecutive reveals in one BFT batch
  /// flush together).  `force` resolves still-pending entries inline first
  /// — required before any non-reveal delivery executes, so the service
  /// sees exactly the delivery order.
  void flush_reveals(bft::ReplicaContext& ctx, bool force = false);
  void maybe_propose_cleanup(bft::ReplicaContext& ctx);
  void arm_amplification(const RequestId& id, uint64_t reveal_seq,
                         const Bytes& reveal_payload, bft::ReplicaContext& ctx);
  void bind_metrics(bft::ReplicaContext& ctx);

  std::unique_ptr<Service> service_;
  crypto::NmCadCommitment commitment_;
  Cp1Options options_;

  std::map<RequestId, Tentative> tentative_;  // scheduled, unopened
  std::deque<std::pair<RequestId, uint64_t>> schedule_order_;
  std::unordered_set<RequestId> opened_;      // reveal delivered
  std::unordered_set<RequestId> aborted_;     // removed by cleanup
  std::unordered_set<RequestId> amplified_;   // witness forwarded already
  std::unordered_set<RequestId> cleanup_inflight_;
  uint64_t delivered_count_ = 0;              // requests delivered in order
  uint64_t cleaned_count_ = 0;
  std::vector<DeferredReveal> reveal_flush_;  // delivery order; see above
  // Reveal ids with an opening check in flight on the pool: a duplicate
  // reveal for one of these is dropped exactly like an opened_ duplicate.
  std::unordered_set<RequestId> reveal_inflight_;
  // A flush point passed while entries were still pending: the next landing
  // continuation flushes the freshly resolved prefix.
  bool flush_armed_ = false;
  // Ticket source for DeferredReveal: a continuation whose entry was already
  // force-resolved (and possibly replaced by a retry) must not apply its
  // verdict to the newer entry, so matching by id alone is not enough.
  uint64_t reveal_ticket_ = 0;

  struct {
    obs::Counter* scheduled = nullptr;
    obs::Counter* opened = nullptr;
    obs::Counter* cleaned = nullptr;
    obs::Counter* openings_rejected = nullptr;
    obs::Counter* amplifications = nullptr;
    obs::Gauge* tentative = nullptr;
    obs::Histogram* batch_size = nullptr;  // reveals executed per flush
  } m_;
  obs::Tracer* tracer_ = nullptr;
};

class Cp1ClientProtocol : public bft::ClientProtocol {
 public:
  explicit Cp1ClientProtocol(crypto::NmCadCommitment commitment)
      : commitment_(std::move(commitment)) {}

  /// Fig. 7's fault model: the client crashes after the schedule step and
  /// never sends the witness.
  void set_crash_before_reveal(bool crash) { crash_before_reveal_ = crash; }
  /// Fig. 7's continuous-failure model: the client keeps issuing schedule
  /// steps (each "completes" at the schedule acknowledgment) but never
  /// reveals, leaving a growing pile of tentative requests behind.
  void set_schedule_only(bool on) { schedule_only_ = on; }
  /// Partial-witness failure scenario: send the reveal to only the first k
  /// replicas (amplification must recover); 0 = all.
  void set_reveal_fanout(uint32_t k) { reveal_fanout_ = k; }

  void start(uint64_t client_seq, BytesView op, bft::ClientContext& ctx) override;
  void on_reply(bft::NodeId replica, const bft::ReplyMsg& reply,
                bft::ClientContext& ctx) override;
  void on_retransmit(bft::ClientContext& ctx) override;

 private:
  void send_reveal(bft::ClientContext& ctx);

  crypto::NmCadCommitment commitment_;
  bool crash_before_reveal_ = false;
  bool schedule_only_ = false;
  uint32_t reveal_fanout_ = 0;

  enum class Phase { kIdle, kSchedule, kReveal } phase_ = Phase::kIdle;
  uint64_t schedule_seq_ = 0;
  uint64_t reveal_seq_ = 0;
  RequestId id_;
  Bytes op_;
  Bytes commitment_wire_;
  Bytes opening_;
  Bytes schedule_payload_;
  Bytes reveal_payload_;
  bft::ReplyQuorum quorum_;
};

}  // namespace scab::causal
