// The shared replica-stack construction seam (DESIGN.md §11).
//
// Assembling one node of a causal cluster takes three ingredients:
//
//   1. protocol-wide cryptographic material (the §V-A trusted dealer's
//      tape: a TDH2 key set for CP0, commitment keys for CP1/CP2), derived
//      deterministically from one master DRBG;
//   2. a per-replica protocol app (the causal engine wrapped around the
//      replicated Service);
//   3. a per-client ClientProtocol (the client half of the same engine).
//
// Two deployments build exactly this stack: the in-process harness
// (causal::Cluster — simulator or threaded runtime, every node in one
// address space) and the standalone daemon (daemon::ReplicaDaemon — one
// replica per process over rt::SocketTransport).  This header is the one
// place the ingredient recipes live, so the two cannot drift: a cluster
// booted from a config file with dealer seed S runs the same keys, apps,
// and client protocols as `Cluster{seed = S}`.
//
// Determinism contract: derive_material performs its DRBG forks in a fixed
// order with fixed labels (group, tdh2 / nmcad / commit) — the exact
// sequence the pre-seam Cluster constructor performed, which keeps every
// seeded simulation bit-identical across the refactor.
#pragma once

#include <memory>
#include <optional>

#include "bft/config.h"
#include "causal/cp1_options.h"
#include "causal/protocol.h"
#include "causal/service.h"
#include "crypto/drbg.h"
#include "crypto/modgroup.h"
#include "secretshare/arss.h"

namespace scab::bft {
class ClientProtocol;
class ReplicaApp;
}  // namespace scab::bft

namespace scab::threshenc {
struct Tdh2KeyMaterial;
}  // namespace scab::threshenc

namespace scab::causal {

class Cp0Backend;

/// Protocol-wide cryptographic material shared by every node of one
/// cluster.  Only the fields the chosen protocol needs are populated;
/// `tdh2` is always non-null (empty for non-CP0 protocols) so callers can
/// hold it unconditionally.
struct StackMaterial {
  // Out-of-line special members: `tdh2` is a unique_ptr to a type this
  // header only forward-declares.
  StackMaterial();
  ~StackMaterial();
  StackMaterial(StackMaterial&&) noexcept;
  StackMaterial& operator=(StackMaterial&&) noexcept;

  /// The threshold-cryptosystem group actually used (CP0 only): the caller
  /// provided group, or the one generated from the master DRBG.
  std::optional<crypto::ModGroup> group;
  std::unique_ptr<threshenc::Tdh2KeyMaterial> tdh2;  // CP0
  Bytes nmcad_key;                                   // CP1
  Bytes commitment_key;                              // CP2
};

/// The canonical label encoding for every deterministic derivation in a
/// cluster: u64 seed followed by a text label ("cluster-master",
/// "keyring", per-node "replica"/"client" forks).  Both deployments MUST
/// derive through this helper — a one-byte encoding drift would give the
/// daemon a different key universe than the in-process harness.
Bytes seed_label(uint64_t seed, std::string_view label);

/// Runs the trusted dealer: derives `protocol`'s key material from
/// `master_rng` (forking, never draining, so the caller's stream position
/// is unaffected).  If `group` is empty and the protocol needs one, a
/// fresh `group_bits`-bit group is generated from the fork labelled
/// "group" — the same label and order the in-process Cluster always used.
StackMaterial derive_material(Protocol protocol, const bft::BftConfig& cfg,
                              crypto::Drbg& master_rng,
                              std::optional<crypto::ModGroup> group,
                              std::size_t group_bits);

/// Everything make_replica_app / make_client_protocol need, bundled so the
/// two deployments pass one struct.  Borrowed pointers: the material must
/// outlive the stack built from it.
struct StackContext {
  Protocol protocol = Protocol::kPbft;
  const StackMaterial* material = nullptr;
  bft::BftConfig bft;
  Cp1Options cp1;
  secretshare::Arss2Mode arss2_mode = secretshare::Arss2Mode::kFast;
  /// CP0: substitute the calibrated-cost oracle for real TDH2 (throughput
  /// sweeps only; never set by the daemon).
  bool cp0_modeled = false;
  /// CP0: give each backend its own Lagrange-coefficient cache.  Required
  /// whenever different nodes' backends run on different threads (the
  /// threaded runtime, the daemon); the cache is documented
  /// single-threaded.
  bool per_node_lagrange_cache = false;
};

/// CP0 threshold backend for one node; `replica_index` selects the key
/// share (nullopt = a client: public operations only).
std::unique_ptr<Cp0Backend> make_cp0_backend(
    const StackContext& ctx, std::optional<uint32_t> replica_index);

/// The replica-side protocol app for `ctx.protocol`, wrapping `service`.
std::unique_ptr<bft::ReplicaApp> make_replica_app(
    const StackContext& ctx, std::unique_ptr<Service> service,
    uint32_t replica_index);

/// The client-side protocol for `ctx.protocol`.  `batching` enables the
/// amortized-envelope wire format (CP0 only — the only protocol whose
/// envelope aggregates; ignored elsewhere).
std::unique_ptr<bft::ClientProtocol> make_client_protocol(
    const StackContext& ctx, bool batching = false);

}  // namespace scab::causal
