// The replicated application interface.
//
// Every replica owns one deterministic Service instance; the BFT layer
// (plain or causal) feeds it client operations in total order.  Concrete
// services live in src/apps (key-value store, trading service, DNS
// registry); EchoService is the microbenchmark workload (x/y benchmark:
// x kB request in, y kB reply out).
#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "common/bytes.h"
#include "host/time.h"

namespace scab::causal {

class Service {
 public:
  virtual ~Service() = default;

  /// Executes one operation; must be deterministic.
  virtual Bytes execute(host::NodeId client, BytesView op) = 0;

  /// Durable-state hooks (DESIGN.md §13): the replica snapshot embeds the
  /// service's state so a full-cluster restart resumes exactly where the
  /// last stable checkpoint left off.  Defaults fit stateless services.
  virtual Bytes serialize() const { return {}; }
  virtual bool restore(BytesView blob) { return blob.empty(); }
};

/// Returns a fixed-size reply, ignoring the request body (the
/// Castro–Liskov x/y microbenchmark service).
class EchoService : public Service {
 public:
  explicit EchoService(std::size_t reply_size = 0) : reply_size_(reply_size) {}

  Bytes execute(host::NodeId /*client*/, BytesView op) override {
    executed_.fetch_add(1, std::memory_order_relaxed);
    bytes_in_.fetch_add(op.size(), std::memory_order_relaxed);
    return Bytes(reply_size_, 0x5a);
  }

  uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_in() const {
    return bytes_in_.load(std::memory_order_relaxed);
  }

  Bytes serialize() const override {
    Bytes out(16);
    const uint64_t e = executed_.load(std::memory_order_relaxed);
    const uint64_t b = bytes_in_.load(std::memory_order_relaxed);
    for (int i = 0; i < 8; ++i) {
      out[i] = static_cast<uint8_t>(e >> (8 * i));
      out[8 + i] = static_cast<uint8_t>(b >> (8 * i));
    }
    return out;
  }
  bool restore(BytesView blob) override {
    if (blob.size() != 16) return blob.empty();
    uint64_t e = 0;
    uint64_t b = 0;
    for (int i = 0; i < 8; ++i) {
      e |= static_cast<uint64_t>(blob[i]) << (8 * i);
      b |= static_cast<uint64_t>(blob[8 + i]) << (8 * i);
    }
    executed_.store(e, std::memory_order_relaxed);
    bytes_in_.store(b, std::memory_order_relaxed);
    return true;
  }

 private:
  std::size_t reply_size_;
  // Atomic: under rt::ThreadHost each replica executes on its own worker
  // thread while benches poll progress from the controlling thread.
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> bytes_in_{0};
};

/// Builds a fresh Service per replica.
using ServiceFactory = std::function<std::unique_ptr<Service>()>;

}  // namespace scab::causal
