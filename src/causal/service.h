// The replicated application interface.
//
// Every replica owns one deterministic Service instance; the BFT layer
// (plain or causal) feeds it client operations in total order.  Concrete
// services live in src/apps (key-value store, trading service, DNS
// registry); EchoService is the microbenchmark workload (x/y benchmark:
// x kB request in, y kB reply out).
#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "common/bytes.h"
#include "host/time.h"

namespace scab::causal {

class Service {
 public:
  virtual ~Service() = default;

  /// Executes one operation; must be deterministic.
  virtual Bytes execute(host::NodeId client, BytesView op) = 0;
};

/// Returns a fixed-size reply, ignoring the request body (the
/// Castro–Liskov x/y microbenchmark service).
class EchoService : public Service {
 public:
  explicit EchoService(std::size_t reply_size = 0) : reply_size_(reply_size) {}

  Bytes execute(host::NodeId /*client*/, BytesView op) override {
    executed_.fetch_add(1, std::memory_order_relaxed);
    bytes_in_.fetch_add(op.size(), std::memory_order_relaxed);
    return Bytes(reply_size_, 0x5a);
  }

  uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_in() const {
    return bytes_in_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t reply_size_;
  // Atomic: under rt::ThreadHost each replica executes on its own worker
  // thread while benches poll progress from the controlling thread.
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> bytes_in_{0};
};

/// Builds a fresh Service per replica.
using ServiceFactory = std::function<std::unique_ptr<Service>()>;

}  // namespace scab::causal
