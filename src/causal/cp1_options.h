// CP1 tuning knobs, split from cp1.h so that ClusterOptions (harness.h) can
// hold them by value without dragging the whole CP1 implementation — and
// its crypto includes — into every TU that assembles a cluster.
#pragma once

#include <cstdint>

#include "host/time.h"

namespace scab::causal {

struct Cp1Options {
  /// A tentative request is cleaned once `cleanup_cycle` further requests
  /// have been delivered since it was scheduled.  Must exceed the channel
  /// delay + fairness delay (paper §V-C); the bench uses ~10x the number of
  /// requests delivered per average latency.
  uint64_t cleanup_cycle = 64;
  /// Replicas amplify a verified witness if the reveal has not been
  /// delivered this long after they first saw it.
  host::Time amplify_delay = 50 * host::kMillisecond;
};

}  // namespace scab::causal
