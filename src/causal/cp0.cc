#include "causal/cp0.h"

#include <algorithm>
#include <set>

#include "bft/batch.h"
#include "crypto/sha256.h"

namespace scab::causal {

using bft::NodeId;
using host::Op;

// ---------------------------------------------------------------------------
// Cp0Backend

std::vector<uint8_t> Cp0Backend::batch_verify_shares(
    BytesView ct, BytesView label, const std::vector<Bytes>& shares,
    crypto::Drbg& /*rng*/, uint32_t* fallback_splits) {
  if (fallback_splits != nullptr) *fallback_splits = 0;
  std::vector<uint8_t> verdicts(shares.size(), 0);
  for (std::size_t i = 0; i < shares.size(); ++i) {
    verdicts[i] = verify_share(ct, label, shares[i]) ? 1 : 0;
  }
  return verdicts;
}

std::function<Cp0Backend::BatchVerifyResult()>
Cp0Backend::make_batch_share_verifier(BytesView ct, BytesView label,
                                      std::vector<Bytes> shares,
                                      crypto::Drbg& rng) {
  // The fork gives the job an independent deterministic stream: the
  // protocol thread's rng advances exactly one fork draw regardless of how
  // (or when) the job runs.
  return [this, ct = Bytes(ct.begin(), ct.end()),
          label = Bytes(label.begin(), label.end()),
          shares = std::move(shares),
          rng = rng.fork(to_bytes("cp0-batch-verify"))]() mutable {
    BatchVerifyResult out;
    out.verdicts = batch_verify_shares(ct, label, shares, rng,
                                       &out.fallback_splits);
    out.shares = std::move(shares);
    return out;
  };
}

// ---------------------------------------------------------------------------
// RealTdh2Backend

const RealTdh2Backend::ParsedWire* RealTdh2Backend::parsed_ct(BytesView ct) {
  const Bytes digest = crypto::sha256(ct);
  for (std::size_t i = 0; i < ct_cache_.size(); ++i) {
    if (ct_cache_[i].digest == digest) {
      if (i != 0) {
        std::rotate(ct_cache_.begin(), ct_cache_.begin() + i,
                    ct_cache_.begin() + i + 1);
      }
      if (ct_cache_hits_ != nullptr) ct_cache_hits_->inc();
      return &ct_cache_.front().parsed;
    }
  }
  if (ct_cache_misses_ != nullptr) ct_cache_misses_->inc();
  ParsedWire entry;
  if (threshenc::is_hybrid_batch_wire(ct)) {
    auto parsed = threshenc::HybridBatchCiphertext::parse(pk_.group, ct);
    if (!parsed) return nullptr;  // malformed wires are not worth caching
    entry.batch = std::move(*parsed);
  } else {
    auto parsed = threshenc::HybridCiphertext::parse(pk_.group, ct);
    if (!parsed) return nullptr;
    entry.single = std::move(*parsed);
  }
  if (ct_cache_.size() >= kCtCacheEntries) ct_cache_.pop_back();
  ct_cache_.insert(ct_cache_.begin(), CtCacheEntry{digest, std::move(entry)});
  return &ct_cache_.front().parsed;
}

void RealTdh2Backend::bind_metrics(obs::MetricsRegistry& registry) {
  ct_cache_hits_ = &registry.counter("cp0.ct_cache_hits");
  ct_cache_misses_ = &registry.counter("cp0.ct_cache_misses");
  lagrange_hits_ = &registry.gauge("cp0.lagrange_cache_hits");
  lagrange_misses_ = &registry.gauge("cp0.lagrange_cache_misses");
}

Bytes RealTdh2Backend::encrypt(BytesView message, BytesView label,
                               crypto::Drbg& rng) {
  return threshenc::hybrid_encrypt(pk_, message, label, rng).serialize(pk_.group);
}

bool RealTdh2Backend::verify_ciphertext(BytesView ct, BytesView label) {
  const ParsedWire* parsed = parsed_ct(ct);
  if (parsed == nullptr) return false;
  if (parsed->batch) {
    return threshenc::hybrid_batch_verify(pk_, *parsed->batch, label);
  }
  return threshenc::hybrid_verify(pk_, *parsed->single, label);
}

std::optional<Bytes> RealTdh2Backend::decryption_share(uint32_t index,
                                                       BytesView ct,
                                                       BytesView label,
                                                       crypto::Drbg& rng) {
  if (!my_key_ || my_key_->index != index) return std::nullopt;
  const ParsedWire* parsed = parsed_ct(ct);
  if (parsed == nullptr) return std::nullopt;
  auto share = threshenc::tdh2_share_decrypt(pk_, *my_key_, parsed->kem(), label, rng);
  if (!share) return std::nullopt;
  return share->serialize(pk_.group);
}

bool RealTdh2Backend::verify_share(BytesView ct, BytesView label,
                                   BytesView share) {
  const ParsedWire* parsed = parsed_ct(ct);
  auto parsed_share = threshenc::Tdh2DecryptionShare::parse(pk_.group, share);
  if (parsed == nullptr || !parsed_share) return false;
  return threshenc::tdh2_verify_share(pk_, parsed->kem(), label, *parsed_share);
}

std::vector<uint8_t> RealTdh2Backend::batch_verify_shares(
    BytesView ct, BytesView label, const std::vector<Bytes>& shares,
    crypto::Drbg& rng, uint32_t* fallback_splits) {
  if (fallback_splits != nullptr) *fallback_splits = 0;
  std::vector<uint8_t> verdicts(shares.size(), 0);
  const ParsedWire* parsed = parsed_ct(ct);
  if (parsed == nullptr) return verdicts;
  // Shares that fail to parse keep verdict 0; the rest go through one
  // randomized batch equation (with bisection fallback inside).
  std::vector<threshenc::Tdh2DecryptionShare> batch;
  std::vector<std::size_t> positions;
  batch.reserve(shares.size());
  positions.reserve(shares.size());
  for (std::size_t i = 0; i < shares.size(); ++i) {
    auto ps = threshenc::Tdh2DecryptionShare::parse(pk_.group, shares[i]);
    if (!ps) continue;
    batch.push_back(std::move(*ps));
    positions.push_back(i);
  }
  const threshenc::Tdh2BatchVerdict verdict =
      threshenc::tdh2_batch_verify_shares(pk_, parsed->kem(), label, batch, rng);
  for (std::size_t j = 0; j < positions.size(); ++j) {
    verdicts[positions[j]] = verdict.valid[j];
  }
  if (fallback_splits != nullptr) *fallback_splits = verdict.bisection_splits;
  return verdicts;
}

std::function<Cp0Backend::BatchVerifyResult()>
RealTdh2Backend::make_batch_share_verifier(BytesView ct, BytesView label,
                                           std::vector<Bytes> shares,
                                           crypto::Drbg& rng) {
  // Everything stateful happens HERE, on the protocol thread: the
  // parsed-ciphertext LRU lookup (not thread-safe) and the rng fork.  The
  // job closes over a copy of the public key — cheap: the vk fixed-base
  // tables ride a shared_ptr, and share verification never touches the
  // (combine-only) mutable Lagrange cache — plus the KEM ciphertext, so it
  // is free of references into this backend.
  const ParsedWire* parsed = parsed_ct(ct);
  std::optional<threshenc::Tdh2Ciphertext> kem;
  if (parsed != nullptr) kem = parsed->kem();
  return [pk = pk_, kem = std::move(kem),
          label = Bytes(label.begin(), label.end()),
          shares = std::move(shares),
          rng = rng.fork(to_bytes("cp0-batch-verify"))]() mutable {
    BatchVerifyResult out;
    out.verdicts.assign(shares.size(), 0);
    if (kem) {
      std::vector<threshenc::Tdh2DecryptionShare> batch;
      std::vector<std::size_t> positions;
      batch.reserve(shares.size());
      positions.reserve(shares.size());
      for (std::size_t i = 0; i < shares.size(); ++i) {
        auto ps = threshenc::Tdh2DecryptionShare::parse(pk.group, shares[i]);
        if (!ps) continue;
        batch.push_back(std::move(*ps));
        positions.push_back(i);
      }
      const threshenc::Tdh2BatchVerdict verdict =
          threshenc::tdh2_batch_verify_shares(pk, *kem, label, batch, rng);
      for (std::size_t j = 0; j < positions.size(); ++j) {
        out.verdicts[positions[j]] = verdict.valid[j];
      }
      out.fallback_splits = verdict.bisection_splits;
    }
    out.shares = std::move(shares);
    return out;
  };
}

std::optional<Bytes> RealTdh2Backend::combine(BytesView ct, BytesView label,
                                              const std::vector<Bytes>& shares) {
  const ParsedWire* parsed = parsed_ct(ct);
  if (parsed == nullptr || parsed->batch) return std::nullopt;
  std::vector<threshenc::Tdh2DecryptionShare> parsed_shares;
  for (const auto& s : shares) {
    auto ps = threshenc::Tdh2DecryptionShare::parse(pk_.group, s);
    if (ps) parsed_shares.push_back(std::move(*ps));
  }
  auto seed = threshenc::tdh2_combine(pk_, parsed->kem(), label, parsed_shares);
  if (!seed) return std::nullopt;
  return threshenc::hybrid_open(*parsed->single, label, *seed);
}

std::optional<Bytes> RealTdh2Backend::decryption_share_preverified(
    uint32_t index, BytesView ct, BytesView label, crypto::Drbg& rng) {
  (void)label;  // bound into the (already verified) ciphertext
  if (!my_key_ || my_key_->index != index) return std::nullopt;
  const ParsedWire* parsed = parsed_ct(ct);
  if (parsed == nullptr) return std::nullopt;
  return threshenc::tdh2_share_decrypt_preverified(pk_, *my_key_, parsed->kem(),
                                                   rng)
      .serialize(pk_.group);
}

std::optional<Bytes> RealTdh2Backend::combine_preverified(
    BytesView ct, BytesView label, const std::vector<Bytes>& shares) {
  const ParsedWire* parsed = parsed_ct(ct);
  if (parsed == nullptr || parsed->batch) return std::nullopt;
  auto seed = combine_seed_preverified(*parsed, shares);
  if (!seed) return std::nullopt;
  return threshenc::hybrid_open(*parsed->single, label, *seed);
}

std::optional<Bytes> RealTdh2Backend::combine_seed_preverified(
    const ParsedWire& parsed, const std::vector<Bytes>& shares) {
  std::vector<threshenc::Tdh2DecryptionShare> parsed_shares;
  for (const auto& s : shares) {
    auto ps = threshenc::Tdh2DecryptionShare::parse(pk_.group, s);
    if (ps) parsed_shares.push_back(std::move(*ps));
  }
  auto seed = threshenc::tdh2_combine_preverified(pk_, parsed.kem(), parsed_shares);
  if (!seed) return std::nullopt;
  if (pk_.lagrange_cache && lagrange_hits_ != nullptr) {
    lagrange_hits_->set(static_cast<int64_t>(pk_.lagrange_cache->hits));
    lagrange_misses_->set(static_cast<int64_t>(pk_.lagrange_cache->misses));
  }
  return seed;
}

uint32_t RealTdh2Backend::batch_count(BytesView ct) {
  if (!threshenc::is_hybrid_batch_wire(ct)) return 1;
  const ParsedWire* parsed = parsed_ct(ct);
  if (parsed == nullptr || !parsed->batch) return 1;
  return static_cast<uint32_t>(parsed->batch->boxes.size());
}

Bytes RealTdh2Backend::reveal_label(BytesView ct, BytesView prefix) {
  if (threshenc::is_hybrid_batch_wire(ct)) {
    if (const ParsedWire* parsed = parsed_ct(ct);
        parsed != nullptr && parsed->batch) {
      return threshenc::hybrid_batch_label(prefix, parsed->batch->boxes);
    }
  }
  return Bytes(prefix.begin(), prefix.end());
}

Bytes RealTdh2Backend::encrypt_batch(const std::vector<Bytes>& messages,
                                     BytesView prefix, crypto::Drbg& rng) {
  if (messages.size() == 1) return encrypt(messages[0], prefix, rng);
  return threshenc::hybrid_encrypt_batch(pk_, messages, prefix, rng)
      .serialize(pk_.group);
}

std::optional<std::vector<Bytes>> RealTdh2Backend::combine_batch_preverified(
    BytesView ct, BytesView prefix, BytesView full_label,
    const std::vector<Bytes>& shares) {
  const ParsedWire* parsed = parsed_ct(ct);
  if (parsed == nullptr) return std::nullopt;
  auto seed = combine_seed_preverified(*parsed, shares);
  if (!seed) return std::nullopt;
  if (parsed->batch) {
    return threshenc::hybrid_batch_open(*parsed->batch, prefix, full_label,
                                        *seed);
  }
  auto one = threshenc::hybrid_open(*parsed->single, full_label, *seed);
  if (!one) return std::nullopt;
  std::vector<Bytes> out;
  out.push_back(std::move(*one));
  return out;
}

// ---------------------------------------------------------------------------
// ModeledThresholdBackend (simulation-only ideal functionality)

namespace {
Bytes modeled_share_tag(BytesView label, uint32_t index) {
  uint8_t idx[4];
  for (int i = 0; i < 4; ++i) idx[i] = static_cast<uint8_t>(index >> (8 * i));
  Bytes tag = crypto::sha256_tuple(
      {to_bytes("cp0.modeled.share"), label, BytesView(idx, 4)});
  tag.resize(8);
  return tag;
}

// Modeled batch wire: magic | bytes(prefix) | u32 count | count x bytes(m).
// Mirrors the real batch format's shape (self-describing, label derived
// from the payload digest) without any group operations.
constexpr uint32_t kModeledBatchMagic = threshenc::kHybridBatchMagic;

bool is_modeled_batch(BytesView ct) {
  return threshenc::is_hybrid_batch_wire(ct);
}

// Parses a modeled batch wire; empty result on malformed input.
std::optional<std::pair<Bytes, std::vector<Bytes>>> parse_modeled_batch(
    BytesView ct) {
  Reader r(ct);
  if (r.u32() != kModeledBatchMagic) return std::nullopt;
  Bytes prefix = r.bytes();
  const uint32_t count = r.u32();
  if (!r.ok() || count < 2 || count > threshenc::kMaxHybridBatch) {
    return std::nullopt;
  }
  std::vector<Bytes> messages;
  messages.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    messages.push_back(r.bytes());
    if (!r.ok()) return std::nullopt;
  }
  if (!r.done()) return std::nullopt;
  return std::make_pair(std::move(prefix), std::move(messages));
}

Bytes modeled_batch_label(BytesView prefix, const std::vector<Bytes>& messages) {
  crypto::Sha256 h;
  for (const auto& m : messages) {
    uint8_t len[8];
    const uint64_t n = m.size();
    for (int i = 0; i < 8; ++i) len[i] = static_cast<uint8_t>(n >> (8 * i));
    h.update(BytesView(len, 8));
    h.update(m);
  }
  const auto digest = h.digest();
  return concat(prefix, BytesView(digest.data(), digest.size()));
}
}  // namespace

Bytes ModeledThresholdBackend::encrypt(BytesView message, BytesView label,
                                       crypto::Drbg& /*rng*/) {
  Writer w;
  w.bytes(label);
  w.bytes(message);
  return std::move(w).take();
}

bool ModeledThresholdBackend::verify_ciphertext(BytesView ct, BytesView label) {
  if (is_modeled_batch(ct)) {
    auto batch = parse_modeled_batch(ct);
    if (!batch) return false;
    const Bytes expect = modeled_batch_label(batch->first, batch->second);
    return expect.size() == label.size() &&
           std::equal(expect.begin(), expect.end(), label.begin());
  }
  Reader r(ct);
  const Bytes bound_label = r.bytes();
  r.bytes();
  return r.done() && BytesView(bound_label).size() == label.size() &&
         std::equal(bound_label.begin(), bound_label.end(), label.begin());
}

std::optional<Bytes> ModeledThresholdBackend::decryption_share(
    uint32_t index, BytesView ct, BytesView label, crypto::Drbg& /*rng*/) {
  if (!verify_ciphertext(ct, label)) return std::nullopt;
  Writer w;
  w.u32(index);
  w.raw(modeled_share_tag(label, index));
  return std::move(w).take();
}

bool ModeledThresholdBackend::verify_share(BytesView /*ct*/, BytesView label,
                                           BytesView share) {
  Reader r(share);
  const uint32_t index = r.u32();
  const Bytes tag = r.raw(8);
  // 1 <= index <= n: otherwise one sender can fabricate distinct "valid"
  // indices (n+1, n+2, ...) toward the combine threshold.
  if (!r.done() || index == 0 || index > servers_) return false;
  return ct_equal(tag, modeled_share_tag(label, index));
}

std::optional<Bytes> ModeledThresholdBackend::combine(
    BytesView ct, BytesView label, const std::vector<Bytes>& shares) {
  std::set<uint32_t> indices;
  for (const auto& s : shares) {
    if (!verify_share(ct, label, s)) continue;
    Reader r(s);
    indices.insert(r.u32());
  }
  if (indices.size() < threshold_) return std::nullopt;
  Reader r(ct);
  r.bytes();  // label
  Bytes message = r.bytes();
  if (!r.done()) return std::nullopt;
  return message;
}

std::optional<Bytes> ModeledThresholdBackend::decryption_share_preverified(
    uint32_t index, BytesView ct, BytesView label, crypto::Drbg& /*rng*/) {
  // The caller vouched for the ciphertext (CP0 charges the proof check once
  // at admission), so skip the label re-check the checked path pays.
  (void)ct;
  Writer w;
  w.u32(index);
  w.raw(modeled_share_tag(label, index));
  return std::move(w).take();
}

std::optional<Bytes> ModeledThresholdBackend::combine_preverified(
    BytesView ct, BytesView label, const std::vector<Bytes>& shares) {
  (void)label;
  // Shares arrive already verified (CP0's reveal flush runs them through
  // batch_verify_shares), so only structure and index distinctness matter
  // here — re-running the tag check per share would model a cost the real
  // preverified combine no longer pays.
  std::set<uint32_t> indices;
  for (const auto& s : shares) {
    Reader r(s);
    const uint32_t index = r.u32();
    (void)r.raw(8);  // tag: already checked by the batch flush
    if (!r.done() || index == 0 || index > servers_) continue;
    indices.insert(index);
  }
  if (indices.size() < threshold_) return std::nullopt;
  Reader r(ct);
  r.bytes();  // label
  Bytes message = r.bytes();
  if (!r.done()) return std::nullopt;
  return message;
}

uint32_t ModeledThresholdBackend::batch_count(BytesView ct) {
  if (!is_modeled_batch(ct)) return 1;
  auto batch = parse_modeled_batch(ct);
  return batch ? static_cast<uint32_t>(batch->second.size()) : 1;
}

Bytes ModeledThresholdBackend::reveal_label(BytesView ct, BytesView prefix) {
  if (is_modeled_batch(ct)) {
    if (auto batch = parse_modeled_batch(ct)) {
      return modeled_batch_label(batch->first, batch->second);
    }
  }
  return Bytes(prefix.begin(), prefix.end());
}

Bytes ModeledThresholdBackend::encrypt_batch(const std::vector<Bytes>& messages,
                                             BytesView prefix,
                                             crypto::Drbg& rng) {
  if (messages.size() == 1) return encrypt(messages[0], prefix, rng);
  Writer w;
  w.u32(kModeledBatchMagic);
  w.bytes(prefix);
  w.u32(static_cast<uint32_t>(messages.size()));
  for (const auto& m : messages) w.bytes(m);
  return std::move(w).take();
}

std::optional<std::vector<Bytes>>
ModeledThresholdBackend::combine_batch_preverified(
    BytesView ct, BytesView prefix, BytesView full_label,
    const std::vector<Bytes>& shares) {
  if (!is_modeled_batch(ct)) {
    auto one = combine_preverified(ct, full_label, shares);
    if (!one) return std::nullopt;
    std::vector<Bytes> out;
    out.push_back(std::move(*one));
    return out;
  }
  (void)prefix;
  // Structure/distinctness check mirrors combine_preverified.
  std::set<uint32_t> indices;
  for (const auto& s : shares) {
    Reader r(s);
    const uint32_t index = r.u32();
    (void)r.raw(8);
    if (!r.done() || index == 0 || index > servers_) continue;
    indices.insert(index);
  }
  if (indices.size() < threshold_) return std::nullopt;
  auto batch = parse_modeled_batch(ct);
  if (!batch) return std::nullopt;
  return std::move(batch->second);
}

// ---------------------------------------------------------------------------
// Cp0ReplicaApp

namespace {
Bytes encode_share_msg(const RequestId& id, BytesView share) {
  Writer w;
  id.write(w);
  w.bytes(share);
  return std::move(w).take();
}
}  // namespace

void Cp0ReplicaApp::bind_metrics(bft::ReplicaContext& ctx) {
  if (m_.ct_verified != nullptr) return;
  obs::MetricsRegistry& reg = ctx.metrics();
  m_.ct_verified = &reg.counter("cp0.ct_verified");
  m_.ct_rejected = &reg.counter("cp0.ct_rejected");
  m_.shares_verified = &reg.counter("cp0.shares_verified");
  m_.shares_rejected = &reg.counter("cp0.shares_rejected");
  m_.combines = &reg.counter("cp0.combines");
  m_.early_stashed = &reg.counter("cp0.early_stashed");
  m_.batch_fallbacks = &reg.counter("cp0.batch_fallbacks");
  m_.reveal_retries = &reg.counter("cp0.reveal_retries");
  m_.share_rerequests_answered = &reg.counter("cp0.share_rerequests_answered");
  m_.late_shares_dropped = &reg.counter("cp0.late_shares_dropped");
  // Two distinct batch notions: `cp0.batch_size` is the causal-layer one
  // (payloads aggregated under one TDH2 envelope, matching cp1/cp2/cp3);
  // the share-verification flush size keeps its own histogram.
  m_.batch_size = &reg.histogram("cp0.verify_batch_size");
  m_.envelope_payloads = &reg.histogram("cp0.batch_size");
  m_.reveal_ns = &reg.histogram("cp0.reveal_ns");
  m_.inflight_slots = &reg.histogram("pipeline.inflight_slots");
  m_.pending = &reg.gauge("cp0.pending");
  m_.early_shares = &reg.gauge("cp0.early_shares");
  backend_->bind_metrics(reg);
  tracer_ = &ctx.tracer();
}

bool Cp0ReplicaApp::validate_request(NodeId client,
                                     const bft::ClientRequestMsg& msg,
                                     bft::ReplicaContext& ctx) {
  bind_metrics(ctx);
  // "Each replica should verify that the label in the ciphertext indeed
  // contains the identity of the sender" — the label IS (client, seq), so
  // verifying the ciphertext against the label derived from the
  // authenticated sender enforces exactly that.
  const RequestId id{client, msg.client_seq};
  // Batched envelopes carry their payload digest in the label; deriving it
  // is one hash over the wire, charged on top of the single proof check.
  const Bytes label = backend_->reveal_label(msg.payload, id.encode());
  if (backend_->batch_count(msg.payload) > 1) {
    ctx.charge(Op::kHash, msg.payload.size());
  }
  ctx.charge(Op::kTdh2VerifyCt, msg.payload.size());
  if (!backend_->verify_ciphertext(msg.payload, label)) {
    m_.ct_rejected->inc();
    return false;
  }
  m_.ct_verified->inc();
  // Remember the verdict (keyed by payload digest) so the reveal step can
  // use the preverified backend paths when PBFT delivers the same bytes.
  if (validated_.size() >= kMaxValidatedCache) {
    validated_.erase(validated_.begin());
  }
  validated_[id] = crypto::sha256(msg.payload);
  return true;
}

void Cp0ReplicaApp::on_deliver(uint64_t /*seq*/, const bft::Request& req,
                               bft::ReplicaContext& ctx) {
  bind_metrics(ctx);
  const RequestId id{req.client, req.client_seq};
  if (completed_.contains(id)) return;
  PendingReveal& p = pending_[id];
  if (p.delivered) return;
  p.delivered = true;
  p.delivered_at = ctx.now();
  p.ciphertext = req.payload;
  p.client = req.client;
  p.client_seq = req.client_seq;
  exec_queue_.push_back(id);
  m_.pending->set(static_cast<int64_t>(pending_.size()));

  // Adopt any shares that raced ahead of delivery.
  for (auto& [sender, stash] : early_shares_) {
    for (auto sit = stash.begin(); sit != stash.end();) {
      if (sit->first != id) {
        ++sit;
        continue;
      }
      if (!p.valid_from.contains(sender) && !p.unverified.contains(sender)) {
        p.unverified[sender] = std::move(sit->second);
      }
      sit = stash.erase(sit);
    }
  }

  // Reveal step: produce and broadcast our decryption share — ONE per
  // envelope, however many payloads it packs (that is the amortization).
  // The proof check was already paid at validate_request time iff PBFT
  // delivered the exact bytes this replica validated; a backup that
  // admitted the request from a pre-prepare without validating it (or saw
  // different bytes) pays it now.
  p.label = backend_->reveal_label(req.payload, id.encode());
  p.count = backend_->batch_count(req.payload);
  m_.envelope_payloads->record(p.count);
  if (p.count > 1) ctx.charge(Op::kHash, req.payload.size());
  bool ciphertext_ok = false;
  if (auto vit = validated_.find(id); vit != validated_.end()) {
    ctx.charge(Op::kHash, req.payload.size());
    ciphertext_ok = vit->second == crypto::sha256(req.payload);
    validated_.erase(vit);
  }
  if (!ciphertext_ok) {
    ctx.charge(Op::kTdh2VerifyCt, req.payload.size());
    ciphertext_ok = backend_->verify_ciphertext(req.payload, p.label);
  }
  std::optional<Bytes> share;
  if (ciphertext_ok) {
    // Share decryption only touches the KEM header, so a batched envelope
    // pays the single-envelope price (1 KB convention unit), not one
    // proportional to the packed payload bytes.
    ctx.charge(Op::kTdh2ShareDec, p.count > 1 ? 1024 : req.payload.size());
    share = backend_->decryption_share_preverified(ctx.id() + 1, req.payload,
                                                   p.label, ctx.rng());
  }
  if (share) {
    // Our own share is counted immediately (and kept honest even when this
    // replica serves corrupted shares to everyone else).
    p.valid_from.insert(ctx.id());
    p.valid.push_back(*share);
    p.own_share_wire = *share;
    ctx.broadcast_causal(encode_share_msg(id, corrupted_if_faulty(*share)));
  }
  try_reveal(id, ctx);
  arm_reveal_retry(id, 0, ctx);
}

Bytes Cp0ReplicaApp::corrupted_if_faulty(const Bytes& wire) const {
  if (!corrupt_shares_) return wire;
  Bytes outgoing = wire;
  for (std::size_t i = 0; i < outgoing.size(); i += 7) outgoing[i] ^= 0xa5;
  return outgoing;
}

void Cp0ReplicaApp::arm_reveal_retry(const RequestId& id, uint32_t attempt,
                                     bft::ReplicaContext& ctx) {
  if (attempt >= kMaxRevealRetries) return;
  {
    auto it = pending_.find(id);
    if (it == pending_.end() || !it->second.delivered || it->second.revealed) {
      return;
    }
  }
  ctx.schedule(kRevealRetryBase << std::min(attempt, 4u),
               [this, id, attempt, &ctx] {
                 auto it = pending_.find(id);
                 if (it == pending_.end() || !it->second.delivered ||
                     it->second.revealed) {
                   return;
                 }
                 m_.reveal_retries->inc();
                 // Shares can have been lost to a partition or a peer
                 // restart: push ours again and ask for everyone else's
                 // (an empty share wire is the re-request sentinel; it can
                 // never be a real share, which always parses non-empty).
                 if (!it->second.own_share_wire.empty()) {
                   ctx.broadcast_causal(encode_share_msg(
                       id, corrupted_if_faulty(it->second.own_share_wire)));
                 }
                 ctx.broadcast_causal(encode_share_msg(id, Bytes{}));
                 arm_reveal_retry(id, attempt + 1, ctx);
               });
}

void Cp0ReplicaApp::answer_share_request(const RequestId& id, NodeId from,
                                         bft::ReplicaContext& ctx) {
  const Bytes* wire = nullptr;
  if (auto it = pending_.find(id);
      it != pending_.end() && !it->second.own_share_wire.empty()) {
    wire = &it->second.own_share_wire;
  } else if (auto cit = completed_shares_.find(id);
             cit != completed_shares_.end()) {
    wire = &cit->second;
  }
  if (wire == nullptr) return;  // never delivered it (or evicted): silence
  m_.share_rerequests_answered->inc();
  ctx.send_causal(from, encode_share_msg(id, corrupted_if_faulty(*wire)));
}

void Cp0ReplicaApp::on_causal_message(NodeId from, BytesView body,
                                      bft::ReplicaContext& ctx) {
  bind_metrics(ctx);
  Reader r(body);
  const RequestId id = RequestId::read(r);
  const Bytes share = r.bytes();
  if (!r.done()) return;
  if (share.empty()) {
    // Re-request sentinel (see arm_reveal_retry): the sender lost our share
    // — most likely it restarted and is re-collecting for requests we have
    // long finished.  Answer before the completed_ drop below.
    answer_share_request(id, from, ctx);
    return;
  }
  if (completed_.contains(id)) {
    // Late share: the reveal already completed and executed.  Dropped on
    // the floor — never re-queued into pending_, which would resurrect
    // reveal state for a finished request without bound.
    m_.late_shares_dropped->inc();
    return;
  }
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    // Not delivered yet.  A correct peer can legitimately be ahead of us,
    // but a Byzantine one can also name RequestIds forever — so stash the
    // share in a bounded per-sender FIFO instead of creating reveal state
    // keyed by an unauthenticated id.
    auto& stash = early_shares_[from];
    for (const auto& [stashed_id, unused] : stash) {
      if (stashed_id == id) return;
    }
    if (stash.size() >= kMaxEarlySharesPerSender) stash.pop_front();
    stash.emplace_back(id, share);
    m_.early_stashed->inc();
    m_.early_shares->set(static_cast<int64_t>(early_share_count()));
    return;
  }
  PendingReveal& p = it->second;
  if (p.valid_from.contains(from) || p.unverified.contains(from)) return;
  p.unverified[from] = share;
  try_reveal(id, ctx);
}

std::size_t Cp0ReplicaApp::early_share_count() const {
  std::size_t count = 0;
  for (const auto& [sender, stash] : early_shares_) count += stash.size();
  return count;
}

void Cp0ReplicaApp::try_reveal(const RequestId& id, bft::ReplicaContext& ctx) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  PendingReveal& p = it->second;
  // The reveal step only starts after the schedule step committed (we need
  // the agreed ciphertext to verify shares against).
  if (!p.delivered || p.revealed) return;

  const Bytes& label = p.label;
  const uint32_t t = backend_->threshold();
  // Accumulate-then-flush: pending shares stay unverified until they can
  // possibly complete the threshold, then ALL of them go through one
  // randomized batch verification (amortized to one merged equation in the
  // real backend — DESIGN.md §4.3).  Waiting costs nothing: the combine
  // cannot proceed before the threshold is reachable anyway.  The batch
  // runs as a worker-pool job (DESIGN.md §12): the protocol thread charges
  // and submits, the continuation adopts the verdicts back on this
  // replica's executor.  Under the inline pool (simulator, threads=0) the
  // continuation runs before offload() returns — identical sequencing to
  // calling batch_verify_shares here.  While a flush is in flight, new
  // shares keep accumulating in p.unverified for the next flush.
  if (!p.verify_inflight && p.valid.size() < t && !p.unverified.empty() &&
      p.valid.size() + p.unverified.size() >= t) {
    std::vector<NodeId> senders;
    std::vector<Bytes> wires;
    senders.reserve(p.unverified.size());
    wires.reserve(p.unverified.size());
    for (auto& [sender, wire] : p.unverified) {
      senders.push_back(sender);
      wires.push_back(std::move(wire));
    }
    p.unverified.clear();
    // bytes = k·1024 by convention: per_byte prices the per-share cost.
    ctx.charge(Op::kTdh2BatchVerifyShare, wires.size() * 1024);
    p.verify_inflight = true;
    auto job = backend_->make_batch_share_verifier(p.ciphertext, label,
                                                   std::move(wires), ctx.rng());
    ctx.offload([this, &ctx, id, senders = std::move(senders),
                 job = std::move(job)]() mutable -> std::function<void()> {
      // Pool thread: only the self-contained job runs here.
      auto result = job();
      return [this, &ctx, id, senders = std::move(senders),
              result = std::move(result)]() mutable {
        // Back on the protocol thread.  The pending entry can only have
        // disappeared with the whole app (combine is gated on this very
        // flush), but stay defensive.
        auto it = pending_.find(id);
        if (it == pending_.end()) return;
        PendingReveal& p = it->second;
        p.verify_inflight = false;
        if (p.revealed) return;
        bool any_rejected = false;
        for (std::size_t i = 0; i < result.shares.size(); ++i) {
          if (result.verdicts[i]) {
            p.valid_from.insert(senders[i]);
            p.valid.push_back(std::move(result.shares[i]));
            m_.shares_verified->inc();
          } else {
            m_.shares_rejected->inc();
            any_rejected = true;
          }
        }
        m_.batch_size->record(result.shares.size());
        if (any_rejected || result.fallback_splits > 0) {
          m_.batch_fallbacks->inc();
        }
        // Re-enter: combine if the threshold is met, or flush the shares
        // that accumulated while this batch was on the pool.
        try_reveal(id, ctx);
      };
    });
    return;
  }

  if (p.valid.size() < t) return;
  // The Lagrange combination only touches the KEM, so batches pay the
  // single-envelope combine price; opening the per-payload boxes is then
  // charged as plain AEAD work.
  ctx.charge(Op::kTdh2Combine,
             p.count > 1 ? 1024 : p.ciphertext.size());
  if (p.count > 1) ctx.charge(Op::kAeadOpen, p.ciphertext.size());
  // The ciphertext was verified before our own share was produced (see
  // on_deliver), so combination skips the redundant proof check.
  auto plaintexts = backend_->combine_batch_preverified(p.ciphertext,
                                                        id.encode(), label,
                                                        p.valid);
  if (!plaintexts) return;  // need more shares (shouldn't happen: verified)
  p.revealed = true;
  p.plaintexts = std::move(*plaintexts);
  m_.combines->inc();
  m_.reveal_ns->record(ctx.now() - p.delivered_at);
  // Pipelining depth: how many delivered slots are waiting behind this
  // reveal (their share collection ran concurrently with ours).
  m_.inflight_slots->record(exec_queue_.size());
  tracer_->record(p.client, p.client_seq, obs::Phase::kRevealed, ctx.now());
  drain_execution(ctx);
}

void Cp0ReplicaApp::drain_execution(bft::ReplicaContext& ctx) {
  while (!exec_queue_.empty()) {
    const RequestId id = exec_queue_.front();
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      exec_queue_.pop_front();
      continue;
    }
    PendingReveal& p = it->second;
    if (!p.revealed) return;  // total order: block on the oldest reveal
    // Durable execution marker (DESIGN.md §13): logged before the service
    // runs so a post-crash replay applies the operation from the record
    // instead of re-running the reveal.  Plaintext logging is safe here —
    // secrecy only holds until the schedule step commits, and this request
    // was revealed by a correct quorum already.
    {
      Writer w;
      id.write(w);
      w.u32(p.count);
      w.u32(static_cast<uint32_t>(p.plaintexts.size()));
      for (const Bytes& pt : p.plaintexts) w.bytes(pt);
      const Bytes rec = std::move(w).take();
      ctx.wal_append(rec);
    }
    // Every payload in the envelope executes in its batch position; the
    // reply frames the per-payload results for count > 1 and stays the raw
    // result (bit-identical to the unbatched path) for count == 1.
    Bytes result;
    if (p.count <= 1 && p.plaintexts.size() == 1) {
      ctx.charge(Op::kExecute, p.plaintexts[0].size());
      result = service_->execute(p.client, p.plaintexts[0]);
    } else {
      std::vector<Bytes> results;
      results.reserve(p.plaintexts.size());
      for (const Bytes& plaintext : p.plaintexts) {
        ctx.charge(Op::kExecute, plaintext.size());
        results.push_back(service_->execute(p.client, plaintext));
      }
      result = bft::encode_op_batch(results);
    }
    ctx.send_reply(p.client, p.client_seq, std::move(result));
    completed_.insert(id);
    if (!p.own_share_wire.empty()) {
      if (completed_shares_.size() >= kMaxCompletedShareCache) {
        completed_shares_.erase(completed_shares_order_.front());
        completed_shares_order_.pop_front();
      }
      completed_shares_order_.push_back(id);
      completed_shares_.emplace(id, std::move(p.own_share_wire));
    }
    pending_.erase(it);
    exec_queue_.pop_front();
  }
  m_.pending->set(static_cast<int64_t>(pending_.size()));
}

// ---------------------------------------------------------------------------
// Cp0ReplicaApp durability (DESIGN.md §13)

namespace {
constexpr uint32_t kCp0StateVersion = 1;
}  // namespace

Bytes Cp0ReplicaApp::serialize_state(bft::ReplicaContext& /*ctx*/) {
  Writer w;
  w.u32(kCp0StateVersion);
  w.bytes(service_->serialize());
  // Completed set, sorted for a deterministic blob (the map iteration order
  // is not).  Transient reveal state — unverified shares, in-flight verify
  // jobs, cached validate_request verdicts, early stashes — is deliberately
  // dropped: the retry protocol rebuilds all of it.
  std::vector<RequestId> completed(completed_.begin(), completed_.end());
  std::sort(completed.begin(), completed.end());
  w.u32(static_cast<uint32_t>(completed.size()));
  for (const RequestId& id : completed) id.write(w);
  // Completed own-share cache, FIFO order preserved so post-restore
  // eviction continues where it left off.
  w.u32(static_cast<uint32_t>(completed_shares_order_.size()));
  for (const RequestId& id : completed_shares_order_) {
    id.write(w);
    auto it = completed_shares_.find(id);
    w.bytes(it != completed_shares_.end() ? BytesView(it->second)
                                          : BytesView{});
  }
  w.u32(static_cast<uint32_t>(exec_queue_.size()));
  for (const RequestId& id : exec_queue_) id.write(w);
  std::vector<RequestId> pend;
  pend.reserve(pending_.size());
  for (const auto& [id, p] : pending_) pend.push_back(id);
  std::sort(pend.begin(), pend.end());
  w.u32(static_cast<uint32_t>(pend.size()));
  for (const RequestId& id : pend) {
    const PendingReveal& p = pending_.at(id);
    id.write(w);
    w.bytes(p.ciphertext);
    w.bytes(p.label);
    w.u32(p.count);
    w.u32(p.client);
    w.u64(p.client_seq);
    w.u8(p.delivered ? 1 : 0);
    w.u8(p.revealed ? 1 : 0);
    w.u32(static_cast<uint32_t>(p.plaintexts.size()));
    for (const Bytes& pt : p.plaintexts) w.bytes(pt);
    w.bytes(p.own_share_wire);
  }
  return std::move(w).take();
}

bool Cp0ReplicaApp::restore_state(BytesView blob, bft::ReplicaContext& ctx) {
  if (blob.empty()) return true;
  bind_metrics(ctx);
  Reader r(blob);
  if (r.u32() != kCp0StateVersion) return false;
  const Bytes service_blob = r.bytes();
  std::unordered_set<RequestId> completed;
  const uint32_t n_completed = r.u32();
  for (uint32_t i = 0; i < n_completed && r.ok(); ++i) {
    completed.insert(RequestId::read(r));
  }
  std::unordered_map<RequestId, Bytes> completed_shares;
  std::deque<RequestId> completed_order;
  const uint32_t n_shares = r.u32();
  for (uint32_t i = 0; i < n_shares && r.ok(); ++i) {
    const RequestId id = RequestId::read(r);
    Bytes wire = r.bytes();
    completed_order.push_back(id);
    completed_shares.emplace(id, std::move(wire));
  }
  std::deque<RequestId> exec_queue;
  const uint32_t n_queue = r.u32();
  for (uint32_t i = 0; i < n_queue && r.ok(); ++i) {
    exec_queue.push_back(RequestId::read(r));
  }
  std::unordered_map<RequestId, PendingReveal> pending;
  const uint32_t n_pending = r.u32();
  for (uint32_t i = 0; i < n_pending && r.ok(); ++i) {
    const RequestId id = RequestId::read(r);
    PendingReveal p;
    p.ciphertext = r.bytes();
    p.label = r.bytes();
    p.count = r.u32();
    p.client = r.u32();
    p.client_seq = r.u64();
    p.delivered = r.u8() != 0;
    p.revealed = r.u8() != 0;
    const uint32_t n_pt = r.u32();
    for (uint32_t j = 0; j < n_pt && r.ok(); ++j) {
      p.plaintexts.push_back(r.bytes());
    }
    p.own_share_wire = r.bytes();
    p.delivered_at = ctx.now();
    pending.emplace(id, std::move(p));
  }
  if (!r.ok() || !r.done()) return false;
  if (!service_->restore(service_blob)) return false;
  completed_ = std::move(completed);
  completed_shares_ = std::move(completed_shares);
  completed_shares_order_ = std::move(completed_order);
  exec_queue_ = std::move(exec_queue);
  pending_ = std::move(pending);
  // Restart the reveal machinery for everything in flight: our own share
  // counts again immediately; the retry timer re-broadcasts it and
  // re-requests the peers' shares once the node is live.
  for (auto& [id, p] : pending_) {
    if (!p.delivered || p.revealed) continue;
    if (!p.own_share_wire.empty()) {
      p.valid_from.insert(ctx.id());
      p.valid.push_back(p.own_share_wire);
    }
    arm_reveal_retry(id, 0, ctx);
  }
  m_.pending->set(static_cast<int64_t>(pending_.size()));
  return true;
}

void Cp0ReplicaApp::on_wal_record(BytesView record, bft::ReplicaContext& ctx) {
  bind_metrics(ctx);
  Reader r(record);
  const RequestId id = RequestId::read(r);
  const uint32_t count = r.u32();
  const uint32_t n = r.u32();
  std::vector<Bytes> plaintexts;
  for (uint32_t i = 0; i < n && r.ok(); ++i) plaintexts.push_back(r.bytes());
  if (!r.ok() || !r.done() || plaintexts.size() != n) return;
  // Pre-snapshot tails can survive a torn snapshot/truncate window; the
  // completed set (restored from the snapshot) makes them no-ops.
  if (completed_.contains(id)) return;
  Bytes result;
  if (count <= 1 && plaintexts.size() == 1) {
    ctx.charge(Op::kExecute, plaintexts[0].size());
    result = service_->execute(id.client, plaintexts[0]);
  } else {
    std::vector<Bytes> results;
    results.reserve(plaintexts.size());
    for (const Bytes& pt : plaintexts) {
      ctx.charge(Op::kExecute, pt.size());
      results.push_back(service_->execute(id.client, pt));
    }
    result = bft::encode_op_batch(results);
  }
  // The reply goes nowhere while the node is shielded during replay; a
  // client still waiting will retransmit and hit the reply cache.
  ctx.send_reply(id.client, id.seq, std::move(result));
  completed_.insert(id);
  if (auto it = pending_.find(id); it != pending_.end()) {
    if (!it->second.own_share_wire.empty()) {
      if (completed_shares_.size() >= kMaxCompletedShareCache) {
        completed_shares_.erase(completed_shares_order_.front());
        completed_shares_order_.pop_front();
      }
      completed_shares_order_.push_back(id);
      completed_shares_.emplace(id, std::move(it->second.own_share_wire));
    }
    pending_.erase(it);
  }
  std::erase(exec_queue_, id);
  m_.pending->set(static_cast<int64_t>(pending_.size()));
}

// ---------------------------------------------------------------------------
// Cp0ClientProtocol

void Cp0ClientProtocol::start(uint64_t client_seq, BytesView op,
                              bft::ClientContext& ctx) {
  seq_ = client_seq;
  const RequestId id{ctx.id(), client_seq};
  std::optional<std::vector<Bytes>> batch;
  if (batching_ && bft::is_op_batch(op)) batch = bft::decode_op_batch(op);
  if (batch && batch->size() > 1) {
    // One KEM header amortized over the whole batch: the threshold
    // encryption is paid once, each payload adds only an AEAD seal, and
    // the label digest one hash over the packed bytes.
    ctx.charge(Op::kTdh2Encrypt, 1024);
    std::size_t total = 0;
    for (const Bytes& m : *batch) {
      ctx.charge(Op::kAeadSeal, m.size());
      total += m.size();
    }
    ctx.charge(Op::kHash, total);
    ciphertext_ = backend_->encrypt_batch(*batch, id.encode(), ctx.rng());
  } else if (batch && batch->size() == 1) {
    // Degenerate frame: unwrap so the wire stays bit-identical to the
    // unbatched single-request path.
    ctx.charge(Op::kTdh2Encrypt, (*batch)[0].size());
    ciphertext_ = backend_->encrypt((*batch)[0], id.encode(), ctx.rng());
  } else {
    ctx.charge(Op::kTdh2Encrypt, op.size());
    ciphertext_ = backend_->encrypt(op, id.encode(), ctx.rng());
  }
  quorum_.arm(client_seq, ctx.config().f + 1);
  ctx.send_request(client_seq, ciphertext_);
}

void Cp0ClientProtocol::on_reply(NodeId replica, const bft::ReplyMsg& reply,
                                 bft::ClientContext& ctx) {
  if (quorum_.add(replica, reply)) ctx.complete(reply.result);
}

void Cp0ClientProtocol::on_retransmit(bft::ClientContext& ctx) {
  // Resend the SAME ciphertext: a fresh encryption would be a different
  // request to the replicas.
  ctx.send_request(seq_, ciphertext_);
}

}  // namespace scab::causal
