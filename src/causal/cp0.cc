#include "causal/cp0.h"

#include <set>

#include "crypto/sha256.h"

namespace scab::causal {

using bft::NodeId;
using sim::Op;

// ---------------------------------------------------------------------------
// RealTdh2Backend

Bytes RealTdh2Backend::encrypt(BytesView message, BytesView label,
                               crypto::Drbg& rng) {
  return threshenc::hybrid_encrypt(pk_, message, label, rng).serialize(pk_.group);
}

bool RealTdh2Backend::verify_ciphertext(BytesView ct, BytesView label) {
  auto parsed = threshenc::HybridCiphertext::parse(pk_.group, ct);
  if (!parsed) return false;
  return threshenc::hybrid_verify(pk_, *parsed, label);
}

std::optional<Bytes> RealTdh2Backend::decryption_share(uint32_t index,
                                                       BytesView ct,
                                                       BytesView label,
                                                       crypto::Drbg& rng) {
  if (!my_key_ || my_key_->index != index) return std::nullopt;
  auto parsed = threshenc::HybridCiphertext::parse(pk_.group, ct);
  if (!parsed) return std::nullopt;
  auto share = threshenc::tdh2_share_decrypt(pk_, *my_key_, parsed->kem, label, rng);
  if (!share) return std::nullopt;
  return share->serialize(pk_.group);
}

bool RealTdh2Backend::verify_share(BytesView ct, BytesView label,
                                   BytesView share) {
  auto parsed_ct = threshenc::HybridCiphertext::parse(pk_.group, ct);
  auto parsed_share = threshenc::Tdh2DecryptionShare::parse(pk_.group, share);
  if (!parsed_ct || !parsed_share) return false;
  return threshenc::tdh2_verify_share(pk_, parsed_ct->kem, label, *parsed_share);
}

std::optional<Bytes> RealTdh2Backend::combine(BytesView ct, BytesView label,
                                              const std::vector<Bytes>& shares) {
  auto parsed_ct = threshenc::HybridCiphertext::parse(pk_.group, ct);
  if (!parsed_ct) return std::nullopt;
  std::vector<threshenc::Tdh2DecryptionShare> parsed;
  for (const auto& s : shares) {
    auto ps = threshenc::Tdh2DecryptionShare::parse(pk_.group, s);
    if (ps) parsed.push_back(std::move(*ps));
  }
  auto seed = threshenc::tdh2_combine(pk_, parsed_ct->kem, label, parsed);
  if (!seed) return std::nullopt;
  return threshenc::hybrid_open(*parsed_ct, label, *seed);
}

std::optional<Bytes> RealTdh2Backend::decryption_share_preverified(
    uint32_t index, BytesView ct, BytesView label, crypto::Drbg& rng) {
  (void)label;  // bound into the (already verified) ciphertext
  if (!my_key_ || my_key_->index != index) return std::nullopt;
  auto parsed = threshenc::HybridCiphertext::parse(pk_.group, ct);
  if (!parsed) return std::nullopt;
  return threshenc::tdh2_share_decrypt_preverified(pk_, *my_key_, parsed->kem,
                                                   rng)
      .serialize(pk_.group);
}

std::optional<Bytes> RealTdh2Backend::combine_preverified(
    BytesView ct, BytesView label, const std::vector<Bytes>& shares) {
  auto parsed_ct = threshenc::HybridCiphertext::parse(pk_.group, ct);
  if (!parsed_ct) return std::nullopt;
  std::vector<threshenc::Tdh2DecryptionShare> parsed;
  for (const auto& s : shares) {
    auto ps = threshenc::Tdh2DecryptionShare::parse(pk_.group, s);
    if (ps) parsed.push_back(std::move(*ps));
  }
  auto seed = threshenc::tdh2_combine_preverified(pk_, parsed_ct->kem, parsed);
  if (!seed) return std::nullopt;
  return threshenc::hybrid_open(*parsed_ct, label, *seed);
}

// ---------------------------------------------------------------------------
// ModeledThresholdBackend (simulation-only ideal functionality)

namespace {
Bytes modeled_share_tag(BytesView label, uint32_t index) {
  uint8_t idx[4];
  for (int i = 0; i < 4; ++i) idx[i] = static_cast<uint8_t>(index >> (8 * i));
  Bytes tag = crypto::sha256_tuple(
      {to_bytes("cp0.modeled.share"), label, BytesView(idx, 4)});
  tag.resize(8);
  return tag;
}
}  // namespace

Bytes ModeledThresholdBackend::encrypt(BytesView message, BytesView label,
                                       crypto::Drbg& /*rng*/) {
  Writer w;
  w.bytes(label);
  w.bytes(message);
  return std::move(w).take();
}

bool ModeledThresholdBackend::verify_ciphertext(BytesView ct, BytesView label) {
  Reader r(ct);
  const Bytes bound_label = r.bytes();
  r.bytes();
  return r.done() && BytesView(bound_label).size() == label.size() &&
         std::equal(bound_label.begin(), bound_label.end(), label.begin());
}

std::optional<Bytes> ModeledThresholdBackend::decryption_share(
    uint32_t index, BytesView ct, BytesView label, crypto::Drbg& /*rng*/) {
  if (!verify_ciphertext(ct, label)) return std::nullopt;
  Writer w;
  w.u32(index);
  w.raw(modeled_share_tag(label, index));
  return std::move(w).take();
}

bool ModeledThresholdBackend::verify_share(BytesView /*ct*/, BytesView label,
                                           BytesView share) {
  Reader r(share);
  const uint32_t index = r.u32();
  const Bytes tag = r.raw(8);
  // 1 <= index <= n: otherwise one sender can fabricate distinct "valid"
  // indices (n+1, n+2, ...) toward the combine threshold.
  if (!r.done() || index == 0 || index > servers_) return false;
  return ct_equal(tag, modeled_share_tag(label, index));
}

std::optional<Bytes> ModeledThresholdBackend::combine(
    BytesView ct, BytesView label, const std::vector<Bytes>& shares) {
  std::set<uint32_t> indices;
  for (const auto& s : shares) {
    if (!verify_share(ct, label, s)) continue;
    Reader r(s);
    indices.insert(r.u32());
  }
  if (indices.size() < threshold_) return std::nullopt;
  Reader r(ct);
  r.bytes();  // label
  Bytes message = r.bytes();
  if (!r.done()) return std::nullopt;
  return message;
}

// ---------------------------------------------------------------------------
// Cp0ReplicaApp

namespace {
Bytes encode_share_msg(const RequestId& id, BytesView share) {
  Writer w;
  id.write(w);
  w.bytes(share);
  return std::move(w).take();
}
}  // namespace

void Cp0ReplicaApp::bind_metrics(bft::ReplicaContext& ctx) {
  if (m_.ct_verified != nullptr) return;
  obs::MetricsRegistry& reg = ctx.metrics();
  m_.ct_verified = &reg.counter("cp0.ct_verified");
  m_.ct_rejected = &reg.counter("cp0.ct_rejected");
  m_.shares_verified = &reg.counter("cp0.shares_verified");
  m_.shares_rejected = &reg.counter("cp0.shares_rejected");
  m_.combines = &reg.counter("cp0.combines");
  m_.early_stashed = &reg.counter("cp0.early_stashed");
  m_.reveal_ns = &reg.histogram("cp0.reveal_ns");
  m_.pending = &reg.gauge("cp0.pending");
  m_.early_shares = &reg.gauge("cp0.early_shares");
  tracer_ = &ctx.tracer();
}

bool Cp0ReplicaApp::validate_request(NodeId client,
                                     const bft::ClientRequestMsg& msg,
                                     bft::ReplicaContext& ctx) {
  bind_metrics(ctx);
  // "Each replica should verify that the label in the ciphertext indeed
  // contains the identity of the sender" — the label IS (client, seq), so
  // verifying the ciphertext against the label derived from the
  // authenticated sender enforces exactly that.
  const RequestId id{client, msg.client_seq};
  ctx.charge(Op::kTdh2VerifyCt, msg.payload.size());
  if (!backend_->verify_ciphertext(msg.payload, id.encode())) {
    m_.ct_rejected->inc();
    return false;
  }
  m_.ct_verified->inc();
  // Remember the verdict (keyed by payload digest) so the reveal step can
  // use the preverified backend paths when PBFT delivers the same bytes.
  if (validated_.size() >= kMaxValidatedCache) {
    validated_.erase(validated_.begin());
  }
  validated_[id] = crypto::sha256(msg.payload);
  return true;
}

void Cp0ReplicaApp::on_deliver(uint64_t /*seq*/, const bft::Request& req,
                               bft::ReplicaContext& ctx) {
  bind_metrics(ctx);
  const RequestId id{req.client, req.client_seq};
  if (completed_.contains(id)) return;
  PendingReveal& p = pending_[id];
  if (p.delivered) return;
  p.delivered = true;
  p.delivered_at = ctx.now();
  p.ciphertext = req.payload;
  p.client = req.client;
  p.client_seq = req.client_seq;
  exec_queue_.push_back(id);
  m_.pending->set(static_cast<int64_t>(pending_.size()));

  // Adopt any shares that raced ahead of delivery.
  for (auto& [sender, stash] : early_shares_) {
    for (auto sit = stash.begin(); sit != stash.end();) {
      if (sit->first != id) {
        ++sit;
        continue;
      }
      if (!p.valid_from.contains(sender) && !p.unverified.contains(sender)) {
        p.unverified[sender] = std::move(sit->second);
      }
      sit = stash.erase(sit);
    }
  }

  // Reveal step: produce and broadcast our decryption share.  The proof
  // check was already paid at validate_request time iff PBFT delivered the
  // exact bytes this replica validated; a backup that admitted the request
  // from a pre-prepare without validating it (or saw different bytes) pays
  // it now.
  const Bytes label = id.encode();
  bool ciphertext_ok = false;
  if (auto vit = validated_.find(id); vit != validated_.end()) {
    ctx.charge(Op::kHash, req.payload.size());
    ciphertext_ok = vit->second == crypto::sha256(req.payload);
    validated_.erase(vit);
  }
  if (!ciphertext_ok) {
    ctx.charge(Op::kTdh2VerifyCt, req.payload.size());
    ciphertext_ok = backend_->verify_ciphertext(req.payload, label);
  }
  std::optional<Bytes> share;
  if (ciphertext_ok) {
    ctx.charge(Op::kTdh2ShareDec, req.payload.size());
    share = backend_->decryption_share_preverified(ctx.id() + 1, req.payload,
                                                   label, ctx.rng());
  }
  if (share) {
    // Our own share is counted immediately (and kept honest even when this
    // replica serves corrupted shares to everyone else).
    p.valid_from.insert(ctx.id());
    p.valid.push_back(*share);

    Bytes outgoing = *share;
    if (corrupt_shares_) {
      for (std::size_t i = 0; i < outgoing.size(); i += 7) outgoing[i] ^= 0xa5;
    }
    ctx.broadcast_causal(encode_share_msg(id, outgoing));
  }
  try_reveal(id, ctx);
}

void Cp0ReplicaApp::on_causal_message(NodeId from, BytesView body,
                                      bft::ReplicaContext& ctx) {
  bind_metrics(ctx);
  Reader r(body);
  const RequestId id = RequestId::read(r);
  const Bytes share = r.bytes();
  if (!r.done()) return;
  if (completed_.contains(id)) return;
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    // Not delivered yet.  A correct peer can legitimately be ahead of us,
    // but a Byzantine one can also name RequestIds forever — so stash the
    // share in a bounded per-sender FIFO instead of creating reveal state
    // keyed by an unauthenticated id.
    auto& stash = early_shares_[from];
    for (const auto& [stashed_id, unused] : stash) {
      if (stashed_id == id) return;
    }
    if (stash.size() >= kMaxEarlySharesPerSender) stash.pop_front();
    stash.emplace_back(id, share);
    m_.early_stashed->inc();
    m_.early_shares->set(static_cast<int64_t>(early_share_count()));
    return;
  }
  PendingReveal& p = it->second;
  if (p.valid_from.contains(from) || p.unverified.contains(from)) return;
  p.unverified[from] = share;
  try_reveal(id, ctx);
}

std::size_t Cp0ReplicaApp::early_share_count() const {
  std::size_t count = 0;
  for (const auto& [sender, stash] : early_shares_) count += stash.size();
  return count;
}

void Cp0ReplicaApp::try_reveal(const RequestId& id, bft::ReplicaContext& ctx) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  PendingReveal& p = it->second;
  // The reveal step only starts after the schedule step committed (we need
  // the agreed ciphertext to verify shares against).
  if (!p.delivered || p.revealed) return;

  const Bytes label = id.encode();
  for (auto uit = p.unverified.begin(); uit != p.unverified.end();) {
    ctx.charge(Op::kTdh2VerifyShare, uit->second.size());
    if (backend_->verify_share(p.ciphertext, label, uit->second)) {
      p.valid_from.insert(uit->first);
      p.valid.push_back(uit->second);
      m_.shares_verified->inc();
    } else {
      m_.shares_rejected->inc();
    }
    uit = p.unverified.erase(uit);
  }

  if (p.valid.size() < backend_->threshold()) return;
  ctx.charge(Op::kTdh2Combine, p.ciphertext.size());
  // The ciphertext was verified before our own share was produced (see
  // on_deliver), so combination skips the redundant proof check.
  auto plaintext = backend_->combine_preverified(p.ciphertext, label, p.valid);
  if (!plaintext) return;  // need more shares (shouldn't happen: verified)
  p.revealed = true;
  p.plaintext = std::move(*plaintext);
  m_.combines->inc();
  m_.reveal_ns->record(ctx.now() - p.delivered_at);
  tracer_->record(p.client, p.client_seq, obs::Phase::kRevealed, ctx.now());
  drain_execution(ctx);
}

void Cp0ReplicaApp::drain_execution(bft::ReplicaContext& ctx) {
  while (!exec_queue_.empty()) {
    const RequestId id = exec_queue_.front();
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      exec_queue_.pop_front();
      continue;
    }
    PendingReveal& p = it->second;
    if (!p.revealed) return;  // total order: block on the oldest reveal
    ctx.charge(Op::kExecute, p.plaintext.size());
    Bytes result = service_->execute(p.client, p.plaintext);
    ctx.send_reply(p.client, p.client_seq, std::move(result));
    completed_.insert(id);
    pending_.erase(it);
    exec_queue_.pop_front();
  }
  m_.pending->set(static_cast<int64_t>(pending_.size()));
}

// ---------------------------------------------------------------------------
// Cp0ClientProtocol

void Cp0ClientProtocol::start(uint64_t client_seq, BytesView op,
                              bft::ClientContext& ctx) {
  seq_ = client_seq;
  const RequestId id{ctx.id(), client_seq};
  ctx.charge(Op::kTdh2Encrypt, op.size());
  ciphertext_ = backend_->encrypt(op, id.encode(), ctx.rng());
  quorum_.arm(client_seq, ctx.config().f + 1);
  ctx.send_request(client_seq, ciphertext_);
}

void Cp0ClientProtocol::on_reply(NodeId replica, const bft::ReplyMsg& reply,
                                 bft::ClientContext& ctx) {
  if (quorum_.add(replica, reply)) ctx.complete(reply.result);
}

void Cp0ClientProtocol::on_retransmit(bft::ClientContext& ctx) {
  // Resend the SAME ciphertext: a fresh encryption would be a different
  // request to the replicas.
  ctx.send_request(seq_, ciphertext_);
}

}  // namespace scab::causal
