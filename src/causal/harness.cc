#include "causal/harness.h"

#include <chrono>
#include <thread>

#include "abft/coin.h"
#include "abft/replica.h"
#include "bft/client.h"
#include "bft/keyring.h"
#include "bft/replica.h"
#include "causal/cp0.h"
#include "causal/cp23.h"
#include "causal/plain.h"
#include "causal/stack.h"
#include "host/storage.h"
#include "rt/runtime.h"
#include "rt/storage.h"
#include "sim/sim_host.h"
#include "threshenc/tdh2.h"

namespace scab::causal {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kPbft:
      return "PBFT";
    case Protocol::kCp0:
      return "CP0";
    case Protocol::kCp1:
      return "CP1";
    case Protocol::kCp2:
      return "CP2";
    case Protocol::kCp3:
      return "CP3";
  }
  return "?";
}

namespace {
// The shared derivation encoding (causal/stack.h): keeps this file's forks
// bit-identical to the daemon's.
Bytes seed_bytes(uint64_t seed, std::string_view label) {
  return seed_label(seed, label);
}
}  // namespace

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)),
      tracer_(options_.trace_capacity),
      master_rng_(seed_bytes(options_.seed, "cluster-master")) {
  const auto& cfg = options_.bft;
  if (!options_.service_factory) {
    options_.service_factory = [] { return std::make_unique<EchoService>(0); };
  }

  net_ = std::make_unique<sim::Network>(sim_, options_.profile, options_.seed,
                                        &net_metrics_);
  if (options_.runtime == RuntimeKind::kSim) {
    host_ = std::make_unique<sim::SimHost>(*net_);
  } else {
    // In-process loopback; fault-filter drop counters land in net_metrics_
    // so "net.drops.*" reads the same on either runtime.
    host_ = std::make_unique<rt::ThreadHost>(nullptr, &net_metrics_,
                                             options_.worker_threads);
  }

  std::vector<host::NodeId> node_ids;
  for (uint32_t i = 0; i < cfg.n; ++i) node_ids.push_back(i);
  for (uint32_t i = 0; i < options_.num_clients; ++i) {
    node_ids.push_back(client_id(i));
  }
  keys_ = std::make_unique<bft::KeyRing>(seed_bytes(options_.seed, "keyring"),
                                         node_ids);

  // Protocol-wide cryptographic setup (the "trusted dealer" of §V-A for
  // CP0; plain Cgen for the commitment-based protocols) — the construction
  // seam shared with the standalone daemon (causal/stack.h).
  material_ = derive_material(options_.protocol, cfg, master_rng_,
                              std::move(options_.group), options_.group_bits);
  options_.group = material_.group;

  if (options_.engine == Engine::kAsyncEngine) {
    if (!options_.coin_group) {
      crypto::Drbg grng = master_rng_.fork(to_bytes("coin-group"));
      options_.coin_group =
          crypto::ModGroup::generate(options_.coin_group_bits, grng);
    }
    crypto::Drbg crng = master_rng_.fork(to_bytes("coin"));
    coin_ = std::make_unique<abft::CoinKeyMaterial>(
        abft::coin_keygen(*options_.coin_group, cfg.f + 1, cfg.n, crng));
  }

  // Durable storage must be attached before each replica binds: the replica
  // resolves its host::Storage (and binds the storage metrics) in its
  // constructor.  The host owns the storage, so it survives
  // crash_replica/restart_replica — the disk outliving the process.
  if (options_.durability != ClusterOptions::Durability::kNone) {
    for (uint32_t i = 0; i < cfg.n; ++i) {
      std::unique_ptr<host::Storage> storage;
      if (options_.durability == ClusterOptions::Durability::kFile &&
          options_.runtime == RuntimeKind::kThreads) {
        storage = std::make_unique<rt::FileStorage>(
            options_.data_dir + "/node" + std::to_string(i),
            rt::FileStorage::Options{options_.storage_fsync});
      } else {
        storage = std::make_unique<host::MemStorage>();
      }
      if (options_.runtime == RuntimeKind::kSim) {
        static_cast<sim::SimHost*>(host_.get())
            ->attach_storage(i, std::move(storage));
      } else {
        static_cast<rt::ThreadHost*>(host_.get())
            ->attach_storage(i, std::move(storage));
      }
    }
  }

  // Replicas.
  replica_generation_.assign(cfg.n, 0);
  for (uint32_t i = 0; i < cfg.n; ++i) {
    replica_apps_.push_back(make_replica_app(i));
    replica_metrics_.push_back(std::make_unique<obs::MetricsRegistry>());
    if (options_.engine == Engine::kPbftEngine) {
      auto replica = std::make_unique<bft::Replica>(
          *host_, i, cfg, *keys_, options_.costs, replica_apps_.back().get(),
          master_rng_.fork(seed_bytes(i, "replica")),
          replica_metrics_.back().get(), &tracer_);
      if (replica->has_storage() &&
          options_.runtime == RuntimeKind::kThreads) {
        // Recovery mutates protocol state, so it must run on the replica's
        // own executor: an already-started peer could land traffic on this
        // endpoint mid-replay.  The posted task runs before any message
        // handling queued behind it.
        bft::Replica* r = replica.get();
        host_->post(i, [r] {
          r->recover();
          r->start();
        });
      } else {
        // kSim: nothing runs until the simulator is stepped, so recovering
        // inline is race-free and keeps event counts identical to a direct
        // start when the store is empty.
        if (replica->has_storage()) replica->recover();
        replica->start();
      }
      replicas_.push_back(std::move(replica));
    } else {
      auto replica = std::make_unique<abft::AsyncReplica>(
          *host_, i, cfg, *keys_, options_.costs, coin_->pk,
          coin_->shares.at(i), replica_apps_.back().get(),
          master_rng_.fork(seed_bytes(i, "replica")));
      async_replicas_.push_back(std::move(replica));
    }
  }

  // Clients.
  for (uint32_t i = 0; i < options_.num_clients; ++i) {
    client_protocols_.push_back(make_client_protocol(stack_context()));

    client_metrics_.push_back(std::make_unique<obs::MetricsRegistry>());
    auto client = std::make_unique<bft::Client>(
        *host_, client_id(i), cfg, *keys_, options_.costs,
        client_protocols_.back().get(),
        master_rng_.fork(seed_bytes(i, "client")),
        client_metrics_.back().get(), &tracer_);
    // Pipelined/batched mode (CP0 only: its envelope amortizes a batch
    // under one KEM header; the other protocols stay strictly closed-loop).
    if (options_.protocol == Protocol::kCp0 &&
        (options_.client_inflight > 1 || options_.client_batch > 1)) {
      client->set_pipeline(
          [this] {
            return make_client_protocol(stack_context(), /*batching=*/true);
          },
          options_.client_inflight, options_.client_batch);
    }
    clients_.push_back(std::move(client));
  }
}

Cluster::~Cluster() { shutdown(); }

void Cluster::shutdown() {
  // Joins every worker under rt::ThreadHost, so no endpoint callback can
  // run concurrently with (or after) member destruction.  No-op for kSim.
  if (host_) host_->stop();
}

const bft::KeyRing& Cluster::keys() const { return *keys_; }

bft::Replica& Cluster::replica(uint32_t i) { return *replicas_.at(i); }

abft::AsyncReplica& Cluster::async_replica(uint32_t i) {
  return *async_replicas_.at(i);
}

uint64_t Cluster::replica_executed(uint32_t i) const {
  return options_.engine == Engine::kPbftEngine
             ? replicas_.at(i)->executed_requests()
             : async_replicas_.at(i)->executed_requests();
}

bft::Client& Cluster::client(uint32_t i) { return *clients_.at(i); }

bft::ReplicaApp& Cluster::replica_app(uint32_t i) {
  return *replica_apps_.at(i);
}

bft::ClientProtocol& Cluster::client_protocol(uint32_t i) {
  return *client_protocols_.at(i);
}

obs::MetricsRegistry Cluster::merged_metrics() const {
  obs::MetricsRegistry merged;
  merged.merge_from(net_metrics_);
  for (const auto& r : replica_metrics_) merged.merge_from(*r);
  for (const auto& c : client_metrics_) merged.merge_from(*c);
  return merged;
}

StackContext Cluster::stack_context() const {
  StackContext ctx;
  ctx.protocol = options_.protocol;
  ctx.material = &material_;
  ctx.bft = options_.bft;
  ctx.cp1 = options_.cp1;
  ctx.arss2_mode = options_.arss2_mode;
  ctx.cp0_modeled = options_.cp0_modeled;
  ctx.per_node_lagrange_cache = options_.runtime == RuntimeKind::kThreads;
  return ctx;
}

std::unique_ptr<bft::ReplicaApp> Cluster::make_replica_app(uint32_t i) {
  auto service = options_.service_factory();
  Service* raw = service.get();
  auto app = causal::make_replica_app(stack_context(), std::move(service), i);

  if (i < services_.size()) {
    services_[i] = raw;  // restart path: replace the dead replica's slot
  } else {
    services_.push_back(raw);
  }
  return app;
}

void Cluster::crash_replica(uint32_t i) {
  // Order matters: the crash flag shields the endpoint while its executor is
  // quiesced (unbind joins the worker thread under kThreads), and only then
  // does the replica object — all volatile protocol state — die.
  faults().crash(i);
  host_->unbind(i);
  replicas_.at(i).reset();
  replica_apps_.at(i).reset();
  services_.at(i) = nullptr;
}

void Cluster::restart_replica(uint32_t i) {
  const uint32_t gen = ++replica_generation_.at(i);
  replica_apps_.at(i) = make_replica_app(i);
  auto replica = std::make_unique<bft::Replica>(
      *host_, i, options_.bft, *keys_, options_.costs,
      replica_apps_.at(i).get(),
      // Generation-tagged fork: the reborn replica must not replay its old
      // incarnation's randomness stream.
      master_rng_.fork(
          seed_bytes((static_cast<uint64_t>(gen) << 32) | i, "replica")),
      replica_metrics_.at(i).get(), &tracer_);
  // Recover from the attached storage (a no-op without one) while the crash
  // flag still shields the endpoint: WAL replay re-drives the app, and any
  // sends it attempts must go nowhere.  Only then readmit traffic — the
  // crash flag kept messages away from the half-built endpoint.
  replica->recover();
  replica->start();
  replicas_.at(i) = std::move(replica);
  faults().restart(i);
}

void Cluster::corrupt_replica_shares(uint32_t i) {
  bft::ReplicaApp* app = replica_apps_.at(i).get();
  if (auto* cp0 = dynamic_cast<Cp0ReplicaApp*>(app)) {
    cp0->set_corrupt_shares(true);
  } else if (auto* cp2 = dynamic_cast<Cp2ReplicaApp*>(app)) {
    cp2->set_corrupt_shares(true);
  } else if (auto* cp3 = dynamic_cast<Cp3ReplicaApp*>(app)) {
    cp3->set_corrupt_shares(true);
  }
}

std::optional<Bytes> Cluster::run_one(uint32_t ci, Bytes op,
                                      host::Time deadline) {
  bft::Client& c = client(ci);
  const uint64_t before = c.completed_ops();
  if (options_.runtime == RuntimeKind::kSim) {
    // Direct call + run_while, exactly the pre-host-refactor sequence:
    // keeps event counts (and so every seeded signature) bit-identical.
    c.submit(std::move(op));
    const host::Time stop_at = sim_.now() + deadline;
    sim_.run_while([&] {
      return c.completed_ops() > before || sim_.now() >= stop_at;
    });
  } else {
    // The controlling thread may not touch the client directly: hand the
    // submit to the client's own executor, then poll its progress.
    host_->post(c.id(), [&c, op = std::move(op)]() mutable {
      c.submit(std::move(op));
    });
    const auto stop_at = std::chrono::steady_clock::now() +
                         std::chrono::nanoseconds(deadline);
    while (c.completed_ops() == before &&
           std::chrono::steady_clock::now() < stop_at) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  if (c.completed_ops() > before) return c.last_result();
  return std::nullopt;
}

}  // namespace scab::causal
