#include "causal/stack.h"

#include "common/serialize.h"

#include "causal/cp0.h"
#include "causal/cp1.h"
#include "causal/cp23.h"
#include "causal/plain.h"
#include "threshenc/tdh2.h"

namespace scab::causal {

Bytes seed_label(uint64_t seed, std::string_view label) {
  Writer w;
  w.u64(seed);
  w.str(std::string(label));
  return std::move(w).take();
}

StackMaterial::StackMaterial() = default;
StackMaterial::~StackMaterial() = default;
StackMaterial::StackMaterial(StackMaterial&&) noexcept = default;
StackMaterial& StackMaterial::operator=(StackMaterial&&) noexcept = default;

std::optional<Protocol> protocol_from_name(std::string_view name) {
  if (name == "pbft") return Protocol::kPbft;
  if (name == "cp0") return Protocol::kCp0;
  if (name == "cp1") return Protocol::kCp1;
  if (name == "cp2") return Protocol::kCp2;
  if (name == "cp3") return Protocol::kCp3;
  return std::nullopt;
}

StackMaterial derive_material(Protocol protocol, const bft::BftConfig& cfg,
                              crypto::Drbg& master_rng,
                              std::optional<crypto::ModGroup> group,
                              std::size_t group_bits) {
  StackMaterial out;
  out.group = std::move(group);
  switch (protocol) {
    case Protocol::kCp0: {
      if (!out.group) {
        crypto::Drbg grng = master_rng.fork(to_bytes("group"));
        out.group = crypto::ModGroup::generate(group_bits, grng);
      }
      crypto::Drbg krng = master_rng.fork(to_bytes("tdh2"));
      out.tdh2 = std::make_unique<threshenc::Tdh2KeyMaterial>(
          threshenc::tdh2_keygen(*out.group, cfg.f + 1, cfg.n, krng));
      break;
    }
    case Protocol::kCp1: {
      crypto::Drbg crng = master_rng.fork(to_bytes("nmcad"));
      out.nmcad_key = crypto::NmCadCommitment::cgen(crng);
      break;
    }
    case Protocol::kCp2: {
      crypto::Drbg crng = master_rng.fork(to_bytes("commit"));
      out.commitment_key = crypto::Commitment::cgen(crng);
      break;
    }
    default:
      break;
  }
  if (!out.tdh2) out.tdh2 = std::make_unique<threshenc::Tdh2KeyMaterial>();
  return out;
}

std::unique_ptr<Cp0Backend> make_cp0_backend(
    const StackContext& ctx, std::optional<uint32_t> replica_index) {
  if (ctx.cp0_modeled) {
    return std::make_unique<ModeledThresholdBackend>(ctx.bft.f + 1, ctx.bft.n);
  }
  const threshenc::Tdh2KeyMaterial& tdh2 = *ctx.material->tdh2;
  std::optional<threshenc::Tdh2KeyShare> key;
  if (replica_index) key = tdh2.shares.at(*replica_index);
  threshenc::Tdh2PublicKey pk = tdh2.pk;
  if (ctx.per_node_lagrange_cache && pk.lagrange_cache) {
    // The Lagrange-coefficient cache is mutable and documented
    // single-threaded; when nodes run on separate threads each backend
    // gets its own instance instead of sharing one.
    pk.lagrange_cache = std::make_shared<threshenc::Tdh2LagrangeCache>();
  }
  return std::make_unique<RealTdh2Backend>(std::move(pk), std::move(key));
}

std::unique_ptr<bft::ReplicaApp> make_replica_app(
    const StackContext& ctx, std::unique_ptr<Service> service,
    uint32_t replica_index) {
  switch (ctx.protocol) {
    case Protocol::kPbft:
      return std::make_unique<PlainReplicaApp>(std::move(service));
    case Protocol::kCp0:
      return std::make_unique<Cp0ReplicaApp>(
          std::move(service), make_cp0_backend(ctx, replica_index));
    case Protocol::kCp1:
      return std::make_unique<Cp1ReplicaApp>(
          std::move(service),
          crypto::NmCadCommitment(ctx.material->nmcad_key), ctx.cp1);
    case Protocol::kCp2:
      return std::make_unique<Cp2ReplicaApp>(
          std::move(service), crypto::Commitment(ctx.material->commitment_key));
    case Protocol::kCp3:
      return std::make_unique<Cp3ReplicaApp>(std::move(service),
                                             ctx.arss2_mode);
  }
  return nullptr;
}

std::unique_ptr<bft::ClientProtocol> make_client_protocol(
    const StackContext& ctx, bool batching) {
  switch (ctx.protocol) {
    case Protocol::kPbft:
      return std::make_unique<PlainClientProtocol>();
    case Protocol::kCp0: {
      auto p = std::make_unique<Cp0ClientProtocol>(
          make_cp0_backend(ctx, std::nullopt));
      if (batching) p->set_batching(true);
      return p;
    }
    case Protocol::kCp1:
      return std::make_unique<Cp1ClientProtocol>(
          crypto::NmCadCommitment(ctx.material->nmcad_key));
    case Protocol::kCp2:
      return std::make_unique<Cp2ClientProtocol>(
          crypto::Commitment(ctx.material->commitment_key));
    case Protocol::kCp3:
      return std::make_unique<Cp3ClientProtocol>();
  }
  return nullptr;
}

}  // namespace scab::causal
