// One-stop cluster assembly: simulator + network + keys + replicas +
// clients for any of the five measured protocols (PBFT baseline, CP0–CP3).
//
// Used by the integration tests, every benchmark, and the examples; it is
// the public "deployment" API of the library.
#pragma once

#include <memory>
#include <vector>

#include "abft/replica.h"
#include "bft/client.h"
#include "bft/replica.h"
#include "causal/cp0.h"
#include "causal/cp1.h"
#include "causal/cp23.h"
#include "causal/plain.h"
#include "causal/service.h"
#include "crypto/modgroup.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "threshenc/tdh2.h"

namespace scab::causal {

enum class Protocol { kPbft, kCp0, kCp1, kCp2, kCp3 };

/// The underlying atomic-broadcast engine: sequencer-based PBFT or the
/// asynchronous consensus-based engine (RBC + common-coin ABA + ACS).
/// Every causal protocol runs on either — the paper's generality claim.
enum class Engine { kPbftEngine, kAsyncEngine };

const char* protocol_name(Protocol p);

/// Replica ids are 0..n-1; client ids start here.
inline constexpr bft::NodeId kClientBase = 100;

struct ClusterOptions {
  Protocol protocol = Protocol::kPbft;
  Engine engine = Engine::kPbftEngine;
  bft::BftConfig bft = bft::BftConfig::for_f(1);
  sim::NetworkProfile profile = sim::NetworkProfile::ideal();
  sim::CostModel costs = sim::CostModel::zero();
  uint32_t num_clients = 1;
  uint64_t seed = 1;

  /// Per-replica service; default EchoService with 0-byte replies.
  ServiceFactory service_factory;

  /// CP0: threshold-cryptosystem group. Tests default to a small generated
  /// group; benches install ModGroup::modp_1024().
  std::optional<crypto::ModGroup> group;
  std::size_t group_bits = 64;
  /// CP0: use the calibrated-cost oracle instead of real TDH2 (throughput
  /// sweeps only; see DESIGN.md §3).
  bool cp0_modeled = false;

  Cp1Options cp1;
  secretshare::Arss2Mode arss2_mode = secretshare::Arss2Mode::kFast;

  /// Async engine: the common-coin group (defaults to a small generated
  /// group in tests; benches install modp_512 to price the coin honestly).
  std::optional<crypto::ModGroup> coin_group;
  std::size_t coin_group_bits = 64;

  /// Request-tracer capacity (distinct requests tracked); 0 disables
  /// tracing.  The default covers every bench and test workload.
  std::size_t trace_capacity = 1 << 16;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();

  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return *net_; }
  const bft::KeyRing& keys() const { return *keys_; }
  const ClusterOptions& options() const { return options_; }

  uint32_t n() const { return options_.bft.n; }
  uint32_t f() const { return options_.bft.f; }
  uint32_t num_clients() const { return static_cast<uint32_t>(clients_.size()); }
  static bft::NodeId client_id(uint32_t index) { return kClientBase + index; }

  /// PBFT engine only.
  bft::Replica& replica(uint32_t i) { return *replicas_.at(i); }
  /// Async engine only.
  abft::AsyncReplica& async_replica(uint32_t i) { return *async_replicas_.at(i); }
  /// Engine-agnostic: requests executed by replica i.
  uint64_t replica_executed(uint32_t i) const {
    return options_.engine == Engine::kPbftEngine
               ? replicas_.at(i)->executed_requests()
               : async_replicas_.at(i)->executed_requests();
  }
  bft::Client& client(uint32_t i) { return *clients_.at(i); }
  bft::ReplicaApp& replica_app(uint32_t i) { return *replica_apps_.at(i); }
  bft::ClientProtocol& client_protocol(uint32_t i) {
    return *client_protocols_.at(i);
  }
  Service& service(uint32_t i) { return *services_.at(i); }

  /// Marks replica i as a share-corrupting Byzantine replica (Table IV).
  /// Only meaningful for CP0/CP2/CP3.
  void corrupt_replica_shares(uint32_t i);

  /// Convenience: submit one op from client `ci` and run the simulation
  /// until it completes or `deadline` of virtual time passes.  Returns the
  /// result on success.
  std::optional<Bytes> run_one(uint32_t ci, Bytes op,
                               sim::SimTime deadline = 30 * sim::kSecond);

  /// CP0 key material (empty unless protocol == kCp0).
  const threshenc::Tdh2KeyMaterial& tdh2_keys() const { return tdh2_; }

  // --- observability ---
  /// Network-layer metrics ("net.*": drops by fault, egress wait, bytes).
  obs::MetricsRegistry& net_metrics() { return net_metrics_; }
  /// Replica i's metrics ("bft.*" plus the protocol's "cpX.*").
  obs::MetricsRegistry& replica_metrics(uint32_t i) {
    return *replica_metrics_.at(i);
  }
  /// Client i's metrics ("client.*").
  obs::MetricsRegistry& client_metrics(uint32_t i) {
    return *client_metrics_.at(i);
  }
  /// Cluster-wide request tracer (one span per request across all nodes).
  obs::Tracer& tracer() { return tracer_; }
  /// Everything summed into one registry (benches' JSON export).
  obs::MetricsRegistry merged_metrics() const;

 private:
  std::unique_ptr<Cp0Backend> make_cp0_backend(
      std::optional<uint32_t> replica_index) const;

  ClusterOptions options_;
  sim::Simulator sim_;
  obs::MetricsRegistry net_metrics_;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> replica_metrics_;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> client_metrics_;
  obs::Tracer tracer_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<bft::KeyRing> keys_;
  crypto::Drbg master_rng_;

  // Shared crypto material.
  threshenc::Tdh2KeyMaterial tdh2_;     // CP0
  Bytes nmcad_key_;                     // CP1
  Bytes commitment_key_;                // CP2

  abft::CoinKeyMaterial coin_;          // async engine

  std::vector<Service*> services_;  // borrowed from the apps
  std::vector<std::unique_ptr<bft::ReplicaApp>> replica_apps_;
  std::vector<std::unique_ptr<bft::Replica>> replicas_;
  std::vector<std::unique_ptr<abft::AsyncReplica>> async_replicas_;
  std::vector<std::unique_ptr<bft::ClientProtocol>> client_protocols_;
  std::vector<std::unique_ptr<bft::Client>> clients_;
};

}  // namespace scab::causal
