// One-stop cluster assembly: host runtime + network + keys + replicas +
// clients for any of the five measured protocols (PBFT baseline, CP0–CP3).
//
// Used by the integration tests, every benchmark, and the examples; it is
// the public "deployment" API of the library.  The same cluster assembles
// on either host runtime (RuntimeKind): the deterministic discrete-event
// simulator, or the real-time threaded runtime with an in-process loopback
// transport.
//
// Include hygiene: this header deliberately forward-declares the protocol
// stack (replicas, clients, apps, TDH2 key material) and keeps only the
// by-value option types; the heavy crypto headers are confined to
// harness.cc.  TUs that poke protocol internals include the specific
// header they need (bft/replica.h, causal/cp0.h, ...) themselves.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bft/config.h"
#include "causal/cp1_options.h"
#include "causal/protocol.h"
#include "causal/service.h"
#include "causal/stack.h"
#include "crypto/drbg.h"
#include "crypto/modgroup.h"
#include "host/host.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "secretshare/arss.h"
#include "sim/network.h"

namespace scab::bft {
class Client;
class ClientProtocol;
class KeyRing;
class Replica;
class ReplicaApp;
}  // namespace scab::bft

namespace scab::abft {
class AsyncReplica;
struct CoinKeyMaterial;
}  // namespace scab::abft

namespace scab::threshenc {
struct Tdh2KeyMaterial;
}  // namespace scab::threshenc

namespace scab::causal {

class Cp0Backend;

// Protocol, Engine, RuntimeKind, protocol_name, kClientBase live in
// causal/protocol.h (included above); the replica-stack factories shared
// with the daemon live in causal/stack.h.

struct ClusterOptions {
  Protocol protocol = Protocol::kPbft;
  Engine engine = Engine::kPbftEngine;
  RuntimeKind runtime = RuntimeKind::kSim;
  bft::BftConfig bft = bft::BftConfig::for_f(1);
  sim::NetworkProfile profile = sim::NetworkProfile::ideal();  // kSim only
  host::CostModel costs = host::CostModel::zero();             // kSim only
  uint32_t num_clients = 1;
  uint64_t seed = 1;

  /// Per-replica service; default EchoService with 0-byte replies.
  ServiceFactory service_factory;

  /// CP0: threshold-cryptosystem group. Tests default to a small generated
  /// group; benches install ModGroup::modp_1024().
  std::optional<crypto::ModGroup> group;
  std::size_t group_bits = 64;
  /// CP0: use the calibrated-cost oracle instead of real TDH2 (throughput
  /// sweeps only; see DESIGN.md §3).
  bool cp0_modeled = false;

  /// CP0 client pipelining: up to `client_inflight` operations in flight
  /// per client, each aggregating `client_batch` logical payloads under one
  /// amortized TDH2 envelope (DESIGN.md §10).  1/1 = the paper's strict
  /// closed loop, wire-identical to the pre-batching path.
  uint32_t client_inflight = 1;
  uint32_t client_batch = 1;

  Cp1Options cp1;
  secretshare::Arss2Mode arss2_mode = secretshare::Arss2Mode::kFast;

  /// Crypto worker-pool threads per host (DESIGN.md §12).  0 = inline
  /// completion on the submitting node's executor — the default, and the
  /// only behavior under kSim (SimHost always completes inline, so a sim
  /// run is bit-identical for every value of this knob).  Under kThreads
  /// the pool is shared by all nodes on the host; verify-side crypto
  /// (CP0 share verification, CP1 opens, CP2/CP3 reconstruction) runs on
  /// pool threads with results marshalled back to each node's executor.
  uint32_t worker_threads = 0;

  /// Async engine: the common-coin group (defaults to a small generated
  /// group in tests; benches install modp_512 to price the coin honestly).
  std::optional<crypto::ModGroup> coin_group;
  std::size_t coin_group_bits = 64;

  /// Request-tracer capacity (distinct requests tracked); 0 disables
  /// tracing.  The default covers every bench and test workload.
  std::size_t trace_capacity = 1 << 16;

  /// Durable replica state (DESIGN.md §13).  kNone attaches no storage —
  /// the historical behavior, bit-identical event schedules under kSim.
  /// kMem attaches a deterministic in-memory host::MemStorage per replica;
  /// the host owns it, so it survives crash_replica/restart_replica pairs
  /// (the harness model of a machine whose disk outlives its process) but
  /// not Cluster destruction.  kFile attaches rt::FileStorage under
  /// `data_dir/node<i>` — kThreads only; under kSim it degrades to kMem so
  /// one test body can sweep both runtimes.
  enum class Durability { kNone, kMem, kFile };
  Durability durability = Durability::kNone;
  std::string data_dir;       // kFile: per-replica dirs created beneath
  bool storage_fsync = true;  // kFile: false = group-commit-only "async"
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();

  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return *net_; }
  host::Host& host() { return *host_; }
  const bft::KeyRing& keys() const;
  const ClusterOptions& options() const { return options_; }

  uint32_t n() const { return options_.bft.n; }
  uint32_t f() const { return options_.bft.f; }
  uint32_t num_clients() const { return static_cast<uint32_t>(clients_.size()); }
  static host::NodeId client_id(uint32_t index) { return kClientBase + index; }

  /// PBFT engine only.
  bft::Replica& replica(uint32_t i);
  /// Async engine only.
  abft::AsyncReplica& async_replica(uint32_t i);
  /// Engine-agnostic: requests executed by replica i.
  uint64_t replica_executed(uint32_t i) const;
  bft::Client& client(uint32_t i);
  bft::ReplicaApp& replica_app(uint32_t i);
  bft::ClientProtocol& client_protocol(uint32_t i);
  Service& service(uint32_t i) { return *services_.at(i); }

  /// Marks replica i as a share-corrupting Byzantine replica (Table IV).
  /// Only meaningful for CP0/CP2/CP3.
  void corrupt_replica_shares(uint32_t i);

  /// Runtime-agnostic fault injection (crash / link cut / delay / tamper)
  /// for whichever host carries this cluster (DESIGN.md §9).
  host::FaultInjector& faults() { return *host_->fault_injector(); }

  /// Tears replica i down for real (PBFT engine only): marks it crashed at
  /// the network, unbinds its endpoint (joining its worker thread under
  /// kThreads, killing its timers under kSim), and destroys the replica and
  /// its app — ALL volatile protocol state is gone.
  void crash_replica(uint32_t i);
  /// Brings replica i back with empty volatile state (PBFT engine only):
  /// fresh service/app/replica under the same id, re-bound and started, then
  /// readmitted to the network.  It rejoins via the checkpoint catch-up
  /// fetch; the metrics registry is reused so "bft.recovery.*" instruments
  /// span the restart.
  void restart_replica(uint32_t i);

  /// Convenience: submit one op from client `ci` and run until it completes
  /// or `deadline` passes (virtual time under kSim, wall time under
  /// kThreads).  Returns the result on success.
  std::optional<Bytes> run_one(uint32_t ci, Bytes op,
                               host::Time deadline = 30 * host::kSecond);

  /// Quiesces the runtime: joins all worker threads under kThreads (no-op
  /// under kSim).  Endpoint state is safe to inspect afterwards; the
  /// destructor calls this automatically.
  void shutdown();

  /// CP0 key material (empty unless protocol == kCp0).
  const threshenc::Tdh2KeyMaterial& tdh2_keys() const {
    return *material_.tdh2;
  }

  // --- observability ---
  /// Network-layer metrics ("net.*": drops by fault, egress wait, bytes).
  obs::MetricsRegistry& net_metrics() { return net_metrics_; }
  /// Replica i's metrics ("bft.*" plus the protocol's "cpX.*").
  obs::MetricsRegistry& replica_metrics(uint32_t i) {
    return *replica_metrics_.at(i);
  }
  /// Client i's metrics ("client.*").
  obs::MetricsRegistry& client_metrics(uint32_t i) {
    return *client_metrics_.at(i);
  }
  /// Cluster-wide request tracer (one span per request across all nodes).
  obs::Tracer& tracer() { return tracer_; }
  /// Everything summed into one registry (benches' JSON export).
  obs::MetricsRegistry merged_metrics() const;

 private:
  /// The StackContext view of this cluster's options + material, handed to
  /// the causal/stack.h factories (the construction code shared with the
  /// daemon).
  StackContext stack_context() const;
  /// Builds replica i's service + protocol app (registers the service in
  /// services_); shared by the constructor and restart_replica.
  std::unique_ptr<bft::ReplicaApp> make_replica_app(uint32_t i);

  ClusterOptions options_;
  sim::Simulator sim_;
  obs::MetricsRegistry net_metrics_;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> replica_metrics_;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> client_metrics_;
  obs::Tracer tracer_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<host::Host> host_;  // outlives every bound endpoint below
  std::unique_ptr<bft::KeyRing> keys_;
  crypto::Drbg master_rng_;

  /// Shared crypto material (the dealer's tape; causal/stack.h).
  StackMaterial material_;

  std::unique_ptr<abft::CoinKeyMaterial> coin_;  // async engine

  std::vector<Service*> services_;  // borrowed from the apps
  std::vector<uint32_t> replica_generation_;  // bumped on each restart
  std::vector<std::unique_ptr<bft::ReplicaApp>> replica_apps_;
  std::vector<std::unique_ptr<bft::Replica>> replicas_;
  std::vector<std::unique_ptr<abft::AsyncReplica>> async_replicas_;
  std::vector<std::unique_ptr<bft::ClientProtocol>> client_protocols_;
  std::vector<std::unique_ptr<bft::Client>> clients_;
};

}  // namespace scab::causal
