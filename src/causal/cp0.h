// CP0 — secure causal atomic broadcast from a labeled threshold
// cryptosystem (Reiter–Birman / CKPS, reviewed in paper §V-A).
//
// Schedule: the client encrypts its request under the system threshold
// public key with label ID = (client, seq) and the ciphertext is ordered by
// PBFT.  Reveal: after a batch commits, every replica broadcasts its
// decryption share for each ciphertext in the batch; a replica that has
// collected f+1 valid shares combines, executes, and replies.  Execution of
// slot s blocks until every request in it is recovered, preserving total
// order and the CKPS rule that a correct replica never runs two schedule or
// two reveal steps back-to-back for a request.
//
// The threshold cryptosystem itself sits behind Cp0Backend so that the
// throughput benchmarks can swap the real TDH2 implementation for a
// calibrated-cost oracle (DESIGN.md §3) without touching protocol logic.
// Latency benchmarks and tests use the real backend.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "bft/app.h"
#include "bft/client.h"
#include "causal/id.h"
#include "causal/service.h"
#include "threshenc/hybrid.h"

namespace scab::causal {

/// Abstracts the (t, n) labeled threshold cryptosystem used by CP0.
/// All byte-level objects are opaque wires produced and consumed by the
/// same backend type.  Costs are charged by the caller via ctx.charge, so a
/// modeled backend has the same virtual-time behaviour as the real one.
class Cp0Backend {
 public:
  virtual ~Cp0Backend() = default;

  /// Client: encrypt `message` bound to `label`.
  virtual Bytes encrypt(BytesView message, BytesView label,
                        crypto::Drbg& rng) = 0;
  /// Anyone: publicly verify a ciphertext (including label binding).
  virtual bool verify_ciphertext(BytesView ct, BytesView label) = 0;
  /// Replica `index` (1-based): produce its decryption share.
  virtual std::optional<Bytes> decryption_share(uint32_t index, BytesView ct,
                                                BytesView label,
                                                crypto::Drbg& rng) = 0;
  /// Anyone: verify one decryption share.
  virtual bool verify_share(BytesView ct, BytesView label, BytesView share) = 0;
  /// Verify a batch of decryption shares for ONE ciphertext; returns one
  /// verdict per share (1 = valid), in order.  If `fallback_splits` is
  /// non-null it receives how many bisection splits the batch needed
  /// (0 = the whole batch passed a single merged equation).  The default
  /// loops verify_share — semantically identical, no amortization; the real
  /// backend overrides it with randomized batch verification.
  virtual std::vector<uint8_t> batch_verify_shares(
      BytesView ct, BytesView label, const std::vector<Bytes>& shares,
      crypto::Drbg& rng, uint32_t* fallback_splits = nullptr);
  /// Combine >= threshold valid shares into the plaintext.
  virtual std::optional<Bytes> combine(BytesView ct, BytesView label,
                                       const std::vector<Bytes>& shares) = 0;
  virtual uint32_t threshold() const = 0;

  /// Result of an offloaded batch-share verification: the input wires
  /// travel through the job (moved, not copied) so the caller can adopt
  /// the valid ones without touching the backend again.
  struct BatchVerifyResult {
    std::vector<Bytes> shares;
    std::vector<uint8_t> verdicts;  // one per share, 1 = valid
    uint32_t fallback_splits = 0;
  };
  /// Packages batch_verify_shares as a self-contained callable safe to run
  /// on a worker-pool thread (host/worker_pool.h): inputs are copied in,
  /// `rng` is forked, and the returned job touches no backend mutable
  /// state.  The base version closes over `this` and is pool-safe only for
  /// stateless backends (the modeled one qualifies); RealTdh2Backend
  /// overrides it to resolve its parsed-ciphertext LRU up front on the
  /// protocol thread.
  virtual std::function<BatchVerifyResult()> make_batch_share_verifier(
      BytesView ct, BytesView label, std::vector<Bytes> shares,
      crypto::Drbg& rng);

  /// Reveal-pipeline variants for a ciphertext the caller has ALREADY
  /// verified (CP0 verifies once at request admission, so the reveal step
  /// must not pay the proof check again — and again at combine).  Defaults
  /// delegate to the checked versions; the real backend overrides them.
  virtual std::optional<Bytes> decryption_share_preverified(uint32_t index,
                                                            BytesView ct,
                                                            BytesView label,
                                                            crypto::Drbg& rng) {
    return decryption_share(index, ct, label, rng);
  }
  virtual std::optional<Bytes> combine_preverified(
      BytesView ct, BytesView label, const std::vector<Bytes>& shares) {
    return combine(ct, label, shares);
  }

  /// Lets the backend register its own instruments (cache hit rates etc.)
  /// next to the protocol's cp0.* metrics.  Default: none.
  virtual void bind_metrics(obs::MetricsRegistry& /*registry*/) {}

  // --- batched envelopes (DESIGN.md §10) -----------------------------------
  // A batched wire packs N payloads under ONE KEM header; every reveal-path
  // entry point above then runs once per BATCH instead of once per payload,
  // using the full reveal label below.  The defaults treat every wire as a
  // single-payload envelope, so backends without a batch format keep their
  // exact pre-batching behaviour.

  /// Number of payloads inside `ct` (1 for single/unrecognized wires).
  virtual uint32_t batch_count(BytesView /*ct*/) { return 1; }
  /// The label the reveal path must use: `prefix` (= RequestId::encode())
  /// for single wires, prefix || batch digest for batched wires.
  virtual Bytes reveal_label(BytesView /*ct*/, BytesView prefix) {
    return Bytes(prefix.begin(), prefix.end());
  }
  /// Client: encrypt `messages` under one amortized header bound to
  /// `prefix`.  A batch of one MUST be bit-identical to encrypt().  The
  /// default handles only that degenerate case (no batch wire format).
  virtual Bytes encrypt_batch(const std::vector<Bytes>& messages,
                              BytesView prefix, crypto::Drbg& rng) {
    return messages.size() == 1 ? encrypt(messages[0], prefix, rng) : Bytes{};
  }
  /// Combine >= threshold preverified shares and open EVERY payload (all or
  /// nothing); single wires return a one-element vector.  `full_label` is
  /// the reveal_label() result; `prefix` the RequestId part of it.
  virtual std::optional<std::vector<Bytes>> combine_batch_preverified(
      BytesView ct, BytesView prefix, BytesView full_label,
      const std::vector<Bytes>& shares) {
    (void)prefix;
    auto one = combine_preverified(ct, full_label, shares);
    if (!one) return std::nullopt;
    std::vector<Bytes> out;
    out.push_back(std::move(*one));
    return out;
  }
};

/// The real thing: hybrid TDH2 (see threshenc/).
class RealTdh2Backend : public Cp0Backend {
 public:
  explicit RealTdh2Backend(threshenc::Tdh2PublicKey pk,
                           std::optional<threshenc::Tdh2KeyShare> my_key = std::nullopt)
      : pk_(std::move(pk)), my_key_(std::move(my_key)) {}

  Bytes encrypt(BytesView message, BytesView label, crypto::Drbg& rng) override;
  bool verify_ciphertext(BytesView ct, BytesView label) override;
  std::optional<Bytes> decryption_share(uint32_t index, BytesView ct,
                                        BytesView label,
                                        crypto::Drbg& rng) override;
  bool verify_share(BytesView ct, BytesView label, BytesView share) override;
  std::vector<uint8_t> batch_verify_shares(
      BytesView ct, BytesView label, const std::vector<Bytes>& shares,
      crypto::Drbg& rng, uint32_t* fallback_splits = nullptr) override;
  std::function<BatchVerifyResult()> make_batch_share_verifier(
      BytesView ct, BytesView label, std::vector<Bytes> shares,
      crypto::Drbg& rng) override;
  std::optional<Bytes> combine(BytesView ct, BytesView label,
                               const std::vector<Bytes>& shares) override;
  std::optional<Bytes> decryption_share_preverified(uint32_t index,
                                                    BytesView ct,
                                                    BytesView label,
                                                    crypto::Drbg& rng) override;
  std::optional<Bytes> combine_preverified(
      BytesView ct, BytesView label, const std::vector<Bytes>& shares) override;
  uint32_t threshold() const override { return pk_.threshold; }
  void bind_metrics(obs::MetricsRegistry& registry) override;
  uint32_t batch_count(BytesView ct) override;
  Bytes reveal_label(BytesView ct, BytesView prefix) override;
  Bytes encrypt_batch(const std::vector<Bytes>& messages, BytesView prefix,
                      crypto::Drbg& rng) override;
  std::optional<std::vector<Bytes>> combine_batch_preverified(
      BytesView ct, BytesView prefix, BytesView full_label,
      const std::vector<Bytes>& shares) override;

  /// Parsed-ciphertext LRU capacity.  CP0 parses the SAME wire ciphertext
  /// in verify_ciphertext, share_decrypt, every share verification, and
  /// combine; a handful of in-flight requests per replica makes a small
  /// cache effectively always hit after admission.
  static constexpr std::size_t kCtCacheEntries = 16;

 private:
  /// A parsed wire: exactly one of `single`/`batch` is set.  `kem()` is the
  /// TDH2 ciphertext every share-path operation works on.
  struct ParsedWire {
    std::optional<threshenc::HybridCiphertext> single;
    std::optional<threshenc::HybridBatchCiphertext> batch;
    const threshenc::Tdh2Ciphertext& kem() const {
      return batch ? batch->kem : single->kem;
    }
  };

  /// Digest-keyed LRU lookup of the parsed hybrid ciphertext (single or
  /// batched, discriminated by the wire magic); parses (and caches) on
  /// miss, returns nullptr for malformed wires (not cached).
  const ParsedWire* parsed_ct(BytesView ct);
  /// Shared tail of the preverified combines: shares -> KEM seed.
  std::optional<Bytes> combine_seed_preverified(const ParsedWire& parsed,
                                                const std::vector<Bytes>& shares);

  threshenc::Tdh2PublicKey pk_;
  std::optional<threshenc::Tdh2KeyShare> my_key_;

  struct CtCacheEntry {
    Bytes digest;  // sha256 of the wire
    ParsedWire parsed;
  };
  std::vector<CtCacheEntry> ct_cache_;  // front = most recently used
  obs::Counter* ct_cache_hits_ = nullptr;
  obs::Counter* ct_cache_misses_ = nullptr;
  obs::Gauge* lagrange_hits_ = nullptr;
  obs::Gauge* lagrange_misses_ = nullptr;
};

/// Calibrated-cost oracle: structurally faithful (labels checked, share
/// counting and distinctness enforced, corrupt shares rejected) but without
/// the modular exponentiations.  SIMULATION ONLY — the "ciphertext" is the
/// label-bound plaintext.  Used by throughput sweeps where executing
/// thousands of 1024-bit operations per point would make the benchmark
/// binary take hours; the per-op costs are still charged by the protocol
/// from the live-calibrated table.
class ModeledThresholdBackend : public Cp0Backend {
 public:
  ModeledThresholdBackend(uint32_t threshold, uint32_t servers)
      : threshold_(threshold), servers_(servers) {}

  Bytes encrypt(BytesView message, BytesView label, crypto::Drbg& rng) override;
  bool verify_ciphertext(BytesView ct, BytesView label) override;
  std::optional<Bytes> decryption_share(uint32_t index, BytesView ct,
                                        BytesView label,
                                        crypto::Drbg& rng) override;
  bool verify_share(BytesView ct, BytesView label, BytesView share) override;
  std::optional<Bytes> combine(BytesView ct, BytesView label,
                               const std::vector<Bytes>& shares) override;
  std::optional<Bytes> decryption_share_preverified(uint32_t index,
                                                    BytesView ct,
                                                    BytesView label,
                                                    crypto::Drbg& rng) override;
  std::optional<Bytes> combine_preverified(
      BytesView ct, BytesView label, const std::vector<Bytes>& shares) override;
  uint32_t threshold() const override { return threshold_; }
  uint32_t batch_count(BytesView ct) override;
  Bytes reveal_label(BytesView ct, BytesView prefix) override;
  Bytes encrypt_batch(const std::vector<Bytes>& messages, BytesView prefix,
                      crypto::Drbg& rng) override;
  std::optional<std::vector<Bytes>> combine_batch_preverified(
      BytesView ct, BytesView prefix, BytesView full_label,
      const std::vector<Bytes>& shares) override;

 private:
  uint32_t threshold_;
  uint32_t servers_;
};

// ---------------------------------------------------------------------------

class Cp0ReplicaApp : public bft::ReplicaApp {
 public:
  Cp0ReplicaApp(std::unique_ptr<Service> service,
                std::unique_ptr<Cp0Backend> backend)
      : service_(std::move(service)), backend_(std::move(backend)) {}

  /// Table IV's fault model: this replica contributes garbage decryption
  /// shares (it stays otherwise protocol-compliant).
  void set_corrupt_shares(bool corrupt) { corrupt_shares_ = corrupt; }

  bool validate_request(bft::NodeId client, const bft::ClientRequestMsg& msg,
                        bft::ReplicaContext& ctx) override;
  void on_deliver(uint64_t seq, const bft::Request& req,
                  bft::ReplicaContext& ctx) override;
  void on_causal_message(bft::NodeId from, BytesView body,
                         bft::ReplicaContext& ctx) override;

  // Durability (DESIGN.md §13): the snapshot blob carries the service state
  // plus the reveal-layer state (completed set, pending reveals with their
  // plaintexts/own shares); every execution also logs a WAL record so a
  // post-crash replay re-applies the operation without re-running the
  // reveal (the peers' shares are gone by then).
  Bytes serialize_state(bft::ReplicaContext& ctx) override;
  bool restore_state(BytesView blob, bft::ReplicaContext& ctx) override;
  void on_wal_record(BytesView record, bft::ReplicaContext& ctx) override;

  Service& service() { return *service_; }

  /// Diagnostics/tests: number of reveal entries in flight (all correspond
  /// to delivered requests) and of stashed pre-delivery shares.
  std::size_t pending_count() const { return pending_.size(); }
  std::size_t early_share_count() const;

  /// Per-sender cap on shares stashed before their request is delivered; a
  /// Byzantine replica naming made-up RequestIds can occupy at most this
  /// much state per sender.
  static constexpr std::size_t kMaxEarlySharesPerSender = 32;
  /// Cap on remembered validate_request verdicts awaiting delivery.
  static constexpr std::size_t kMaxValidatedCache = 1024;
  /// Cap on own-share wires kept after execution so a restarted peer
  /// re-collecting shares for old requests can still be answered.
  static constexpr std::size_t kMaxCompletedShareCache = 1024;
  /// Reveal-retry schedule: if a delivered request is still unrevealed
  /// after base << min(attempt, 4), rebroadcast our share and re-request
  /// everyone else's.  The base sits above the WAN reveal round-trip so the
  /// happy path never retries.
  static constexpr host::Time kRevealRetryBase = 500'000'000;  // 500 ms
  static constexpr uint32_t kMaxRevealRetries = 8;

 private:
  struct PendingReveal {
    Bytes ciphertext;  // empty until the schedule step committed
    Bytes label;       // full reveal label (id prefix || batch digest)
    uint32_t count = 1;  // payloads inside the envelope
    bft::NodeId client = 0;
    uint64_t client_seq = 0;
    std::map<bft::NodeId, Bytes> unverified;  // sender -> share wire
    std::set<bft::NodeId> valid_from;
    std::vector<Bytes> valid;
    bool delivered = false;
    bool revealed = false;
    // A batch-share verification job is in flight on the worker pool; new
    // shares keep accumulating in `unverified` and flush when it lands.
    bool verify_inflight = false;
    host::Time delivered_at = 0;  // reveal-round duration measurement
    std::vector<Bytes> plaintexts;  // one per payload, execution order
    Bytes own_share_wire;  // uncorrupted; serves re-requests
  };

  void try_reveal(const RequestId& id, bft::ReplicaContext& ctx);
  void drain_execution(bft::ReplicaContext& ctx);
  void answer_share_request(const RequestId& id, bft::NodeId from,
                            bft::ReplicaContext& ctx);
  void arm_reveal_retry(const RequestId& id, uint32_t attempt,
                        bft::ReplicaContext& ctx);
  Bytes corrupted_if_faulty(const Bytes& wire) const;
  // Resolves "cp0." instrument handles from the context's registry on first
  // use (the app does not know its replica at construction time).
  void bind_metrics(bft::ReplicaContext& ctx);

  std::unique_ptr<Service> service_;
  std::unique_ptr<Cp0Backend> backend_;
  bool corrupt_shares_ = false;

  std::unordered_map<RequestId, PendingReveal> pending_;
  std::unordered_set<RequestId> completed_;
  // Execution queue: requests execute in delivery order, each blocking on
  // its reveal (the CKPS schedule/reveal alternation).
  std::deque<RequestId> exec_queue_;
  // RequestIds this replica verified at validate_request time (payload
  // digest), letting on_deliver take the preverified reveal path when PBFT
  // delivers the same bytes.  Bounded FIFO-ish: entries are erased at
  // delivery; overflow evicts arbitrarily (worst case: one extra verify).
  std::unordered_map<RequestId, Bytes> validated_;
  // Shares that arrived before their request was delivered, bounded per
  // sender (kMaxEarlySharesPerSender) so Byzantine peers cannot grow
  // protocol state with shares for requests that never existed.
  std::map<bft::NodeId, std::deque<std::pair<RequestId, Bytes>>> early_shares_;
  // Own-share wires of executed requests (bounded FIFO): a replica that
  // crashed and restarted re-delivers old requests with empty reveal state
  // and re-requests shares its peers already consumed; answering from this
  // cache is what lets it catch up past them.
  std::unordered_map<RequestId, Bytes> completed_shares_;
  std::deque<RequestId> completed_shares_order_;

  struct {
    obs::Counter* ct_verified = nullptr;
    obs::Counter* ct_rejected = nullptr;
    obs::Counter* shares_verified = nullptr;
    obs::Counter* shares_rejected = nullptr;
    obs::Counter* combines = nullptr;
    obs::Counter* early_stashed = nullptr;
    // Batches that needed the fallback (a bisection split or a rejected
    // share): a Byzantine share inside a batch always surfaces here.
    obs::Counter* batch_fallbacks = nullptr;
    obs::Counter* reveal_retries = nullptr;
    obs::Counter* share_rerequests_answered = nullptr;
    // Shares arriving after their request already executed: dropped on the
    // floor (bounded), never re-queued into pending_.
    obs::Counter* late_shares_dropped = nullptr;
    obs::Histogram* batch_size = nullptr;  // shares per batch flush
    obs::Histogram* envelope_payloads = nullptr;  // payloads per envelope
    obs::Histogram* reveal_ns = nullptr;  // delivery -> plaintext recovered
    // Reveal-pipelining depth: delivered-but-unexecuted slots observed each
    // time a reveal completes (collection for slot s+1 overlapping s).
    obs::Histogram* inflight_slots = nullptr;
    obs::Gauge* pending = nullptr;
    obs::Gauge* early_shares = nullptr;
  } m_;
  obs::Tracer* tracer_ = nullptr;
};

class Cp0ClientProtocol : public bft::ClientProtocol {
 public:
  explicit Cp0ClientProtocol(std::unique_ptr<Cp0Backend> backend)
      : backend_(std::move(backend)) {}

  /// Opt in to op-batch framing (bft/batch.h): a framed `op` is unpacked
  /// and its payloads ride one amortized envelope.  Off by default so an
  /// application payload can never be misread as a frame.
  void set_batching(bool on) { batching_ = on; }

  void start(uint64_t client_seq, BytesView op, bft::ClientContext& ctx) override;
  void on_reply(bft::NodeId replica, const bft::ReplyMsg& reply,
                bft::ClientContext& ctx) override;
  void on_retransmit(bft::ClientContext& ctx) override;

 private:
  std::unique_ptr<Cp0Backend> backend_;
  bool batching_ = false;
  uint64_t seq_ = 0;
  Bytes ciphertext_;
  bft::ReplyQuorum quorum_;
};

}  // namespace scab::causal
