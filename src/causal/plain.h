// Plain PBFT (no causality preservation) — the paper's baseline.
//
// This is deliberately the degenerate "causal engine": requests travel in
// cleartext, execution happens at delivery, and — as the front-running test
// demonstrates — a Byzantine replica can read a pending request and get a
// derived request ordered first.  CP0–CP3 exist to close exactly that gap.
#pragma once

#include "bft/app.h"
#include "bft/client.h"
#include "causal/service.h"

namespace scab::causal {

class PlainReplicaApp : public bft::ReplicaApp {
 public:
  explicit PlainReplicaApp(std::unique_ptr<Service> service)
      : service_(std::move(service)) {}

  void on_deliver(uint64_t /*seq*/, const bft::Request& req,
                  bft::ReplicaContext& ctx) override {
    ctx.charge(host::Op::kExecute, req.payload.size());
    Bytes result = service_->execute(req.client, req.payload);
    ctx.send_reply(req.client, req.client_seq, std::move(result));
  }

  // Durability: the service blob IS the app state — plain PBFT executes at
  // delivery, so replaying the WAL's post-snapshot deliveries rebuilds
  // everything else exactly once.
  Bytes serialize_state(bft::ReplicaContext& /*ctx*/) override {
    return service_->serialize();
  }
  bool restore_state(BytesView blob, bft::ReplicaContext& /*ctx*/) override {
    return service_->restore(blob);
  }

  Service& service() { return *service_; }

 private:
  std::unique_ptr<Service> service_;
};

class PlainClientProtocol : public bft::ClientProtocol {
 public:
  void start(uint64_t client_seq, BytesView op,
             bft::ClientContext& ctx) override {
    seq_ = client_seq;
    op_.assign(op.begin(), op.end());
    quorum_.arm(client_seq, ctx.config().f + 1);
    ctx.send_request(client_seq, op_);
  }

  void on_reply(bft::NodeId replica, const bft::ReplyMsg& reply,
                bft::ClientContext& ctx) override {
    if (quorum_.add(replica, reply)) ctx.complete(reply.result);
  }

  void on_retransmit(bft::ClientContext& ctx) override {
    ctx.send_request(seq_, op_);
  }

 private:
  uint64_t seq_ = 0;
  Bytes op_;
  bft::ReplyQuorum quorum_;
};

}  // namespace scab::causal
