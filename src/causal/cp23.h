// CP2 and CP3 — secure causal atomic broadcast from ARSS (paper §V-D).
//
// Generic flow (both protocols): the client Shamir-shares its request and
// sends replica i the share S[i] over an authenticated AND private channel
// (AEAD); the BFT protocol orders only the public part (ID plus, for CP2,
// the commitment c).  When a replica delivers the identifier it starts the
// reveal: it broadcasts its share to the other replicas (again over private
// channels), feeds arriving shares to the incremental ARSS reconstructor,
// and executes + replies once the secret is recovered.  Execution is
// blocked in delivery order, exactly like CP0's reveal.
//
//   CP2 = ARSS1: shares carry a commitment tag; the commitment is *agreed*
//         in the schedule step, so foreign/forged share sets are rejected
//         immediately and recovery needs f+1 shares.
//   CP3 = ARSS2: plain Shamir shares, information-theoretic, recovery needs
//         f+2 consistent shares (and more under faults).
//
// Clients here may only crash (the paper's §V-D assumption); a crashing
// client can block the service but can never break causality.
#pragma once

#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bft/app.h"
#include "bft/client.h"
#include "causal/id.h"
#include "causal/service.h"
#include "secretshare/arss.h"

namespace scab::causal {

/// Reveal-retry / share-re-request tuning shared by CP2 and CP3 (CP0 keeps
/// mirrored constants): a delivered-but-unrevealed request rebroadcasts its
/// share and re-requests the peers' after base << min(attempt, 4), capped at
/// kCpMaxRevealRetries attempts.  The base sits above the WAN reveal
/// round-trip so the happy path never retries.
inline constexpr host::Time kCpRevealRetryBase = 500'000'000;  // 500 ms
inline constexpr uint32_t kCpMaxRevealRetries = 8;
/// Bounded cache of own-share wires for executed requests, kept to answer a
/// restarted peer re-collecting shares for requests we already finished.
inline constexpr std::size_t kCpMaxCompletedShareCache = 1024;
/// Per-sender cap on shares stashed before their request is delivered
/// (mirrors CP0's kMaxEarlySharesPerSender): reveal state is created only at
/// BFT delivery, so a Byzantine peer naming made-up RequestIds can occupy at
/// most this much memory per sender instead of growing `pending_` forever.
inline constexpr std::size_t kCpMaxEarlySharesPerSender = 32;

// ---------------------------------------------------------------------------
// CP2

class Cp2ReplicaApp : public bft::ReplicaApp {
 public:
  Cp2ReplicaApp(std::unique_ptr<Service> service, crypto::Commitment commitment)
      : service_(std::move(service)), commitment_(std::move(commitment)) {}

  /// Table IV fault model: broadcast corrupted shares to the other replicas.
  void set_corrupt_shares(bool corrupt) { corrupt_shares_ = corrupt; }

  bool validate_request(bft::NodeId client, const bft::ClientRequestMsg& msg,
                        bft::ReplicaContext& ctx) override;
  void on_deliver(uint64_t seq, const bft::Request& req,
                  bft::ReplicaContext& ctx) override;
  void on_causal_message(bft::NodeId from, BytesView body,
                         bft::ReplicaContext& ctx) override;

  // Durability (DESIGN.md §13): reveal plaintexts come from the peers'
  // shares, which a replay cannot re-collect — every execution logs a WAL
  // record (id + plaintext), and the snapshot carries the reveal state.
  Bytes serialize_state(bft::ReplicaContext& ctx) override;
  bool restore_state(BytesView blob, bft::ReplicaContext& ctx) override;
  void on_wal_record(BytesView record, bft::ReplicaContext& ctx) override;

  Service& service() { return *service_; }
  /// Total combination-search attempts across recoveries (bench metric).
  uint64_t recovery_attempts() const { return recovery_attempts_; }
  /// Diagnostics/tests: reveal entries in flight (all correspond to
  /// delivered requests) and pre-delivery stashed shares.
  std::size_t pending_count() const { return pending_.size(); }
  std::size_t early_share_count() const;

 private:
  struct Pending {
    Bytes agreed_commitment;
    bft::NodeId client = 0;
    uint64_t client_seq = 0;
    bool delivered = false;
    bool revealed = false;
    // A feed batch is running on the worker pool; the reconstructor travels
    // with the job (reconstructor == nullptr while set), and newly arriving
    // shares queue into `buffered` until the continuation re-attaches it.
    bool reveal_inflight = false;
    Bytes plaintext;
    std::optional<secretshare::Arss1Share> own_share;
    // Shares awaiting a feed: pre-delivery arrivals and anything received
    // while a feed batch was in flight.
    std::vector<secretshare::Arss1Share> buffered;
    std::unordered_set<bft::NodeId> seen_senders;
    // shared_ptr (not unique_ptr): the pool job closure must stay copyable
    // for std::function while owning the reconstructor for the batch.
    std::shared_ptr<secretshare::Arss1Reconstructor> reconstructor;
  };

  /// Feeds a batch of shares to the reconstructor ON THE WORKER POOL; the
  /// continuation charges per-attempt costs and applies the reveal.
  void feed_shares_async(const RequestId& id, Pending& p,
                         std::vector<secretshare::Arss1Share> batch,
                         bft::ReplicaContext& ctx);
  void start_reveal(const RequestId& id, Pending& p, bft::ReplicaContext& ctx);
  void drain_execution(bft::ReplicaContext& ctx);
  void answer_share_request(const RequestId& id, bft::NodeId from,
                            bft::ReplicaContext& ctx);
  void arm_reveal_retry(const RequestId& id, uint32_t attempt,
                        bft::ReplicaContext& ctx);
  void stash_early_share(bft::NodeId from, const RequestId& id, Bytes wire);
  void adopt_early_shares(const RequestId& id, Pending& p,
                          bft::ReplicaContext& ctx);
  void bind_metrics(bft::ReplicaContext& ctx);

  std::unique_ptr<Service> service_;
  crypto::Commitment commitment_;
  bool corrupt_shares_ = false;

  // Reveal state, created only when the BFT layer delivers the request.
  std::unordered_map<RequestId, Pending> pending_;
  // Shares that arrived before their request was delivered, bounded per
  // sender (kCpMaxEarlySharesPerSender): never keyed protocol state by an
  // unauthenticated RequestId.
  std::map<bft::NodeId, std::deque<std::pair<RequestId, Bytes>>> early_shares_;
  std::unordered_set<RequestId> completed_;
  std::deque<RequestId> exec_queue_;
  // Own-share wires of executed requests (bounded FIFO; see
  // kCpMaxCompletedShareCache): serves re-requests from restarted peers.
  std::unordered_map<RequestId, Bytes> completed_own_shares_;
  std::deque<RequestId> completed_own_shares_order_;
  uint64_t recovery_attempts_ = 0;

  struct {
    obs::Counter* reconstructions = nullptr;
    obs::Counter* recovery_attempts = nullptr;
    obs::Counter* reveal_retries = nullptr;
    obs::Counter* share_rerequests_answered = nullptr;
    obs::Counter* early_stashed = nullptr;
    obs::Gauge* pending = nullptr;
    obs::Gauge* early_shares = nullptr;
    obs::Histogram* batch_size = nullptr;  // shares fed per flush
  } m_;
  obs::Tracer* tracer_ = nullptr;
};

class Cp2ClientProtocol : public bft::ClientProtocol {
 public:
  explicit Cp2ClientProtocol(crypto::Commitment commitment)
      : commitment_(std::move(commitment)) {}

  void start(uint64_t client_seq, BytesView op, bft::ClientContext& ctx) override;
  void on_reply(bft::NodeId replica, const bft::ReplyMsg& reply,
                bft::ClientContext& ctx) override;
  void on_retransmit(bft::ClientContext& ctx) override;

 private:
  void send_all(bft::ClientContext& ctx);

  crypto::Commitment commitment_;
  uint64_t seq_ = 0;
  RequestId id_;
  Bytes schedule_payload_;
  std::vector<Bytes> share_wires_;  // per replica
  bft::ReplyQuorum quorum_;
};

// ---------------------------------------------------------------------------
// CP3

class Cp3ReplicaApp : public bft::ReplicaApp {
 public:
  Cp3ReplicaApp(std::unique_ptr<Service> service,
                secretshare::Arss2Mode mode = secretshare::Arss2Mode::kFast)
      : service_(std::move(service)), mode_(mode) {}

  void set_corrupt_shares(bool corrupt) { corrupt_shares_ = corrupt; }

  bool validate_request(bft::NodeId client, const bft::ClientRequestMsg& msg,
                        bft::ReplicaContext& ctx) override;
  void on_deliver(uint64_t seq, const bft::Request& req,
                  bft::ReplicaContext& ctx) override;
  void on_causal_message(bft::NodeId from, BytesView body,
                         bft::ReplicaContext& ctx) override;

  // Durability (DESIGN.md §13): same model as CP2 — execution records in
  // the WAL, reveal state in the snapshot.
  Bytes serialize_state(bft::ReplicaContext& ctx) override;
  bool restore_state(BytesView blob, bft::ReplicaContext& ctx) override;
  void on_wal_record(BytesView record, bft::ReplicaContext& ctx) override;

  Service& service() { return *service_; }
  uint64_t recovery_attempts() const { return recovery_attempts_; }
  /// Diagnostics/tests: reveal entries in flight (all correspond to
  /// delivered requests) and pre-delivery stashed shares.
  std::size_t pending_count() const { return pending_.size(); }
  std::size_t early_share_count() const;

 private:
  struct Pending {
    bft::NodeId client = 0;
    uint64_t client_seq = 0;
    bool delivered = false;
    bool revealed = false;
    // See Cp2ReplicaApp::Pending — reconstructor travels with the pool job.
    bool reveal_inflight = false;
    Bytes plaintext;
    std::optional<secretshare::ShamirShare> own_share;
    std::vector<secretshare::ShamirShare> buffered;
    std::unordered_set<bft::NodeId> seen_senders;
    std::shared_ptr<secretshare::Arss2Reconstructor> reconstructor;
  };

  /// Feeds a batch of shares to the reconstructor ON THE WORKER POOL; the
  /// continuation charges per-attempt costs and applies the reveal.
  void feed_shares_async(const RequestId& id, Pending& p,
                         std::vector<secretshare::ShamirShare> batch,
                         bft::ReplicaContext& ctx);
  void start_reveal(const RequestId& id, Pending& p, bft::ReplicaContext& ctx);
  void drain_execution(bft::ReplicaContext& ctx);
  void answer_share_request(const RequestId& id, bft::NodeId from,
                            bft::ReplicaContext& ctx);
  void arm_reveal_retry(const RequestId& id, uint32_t attempt,
                        bft::ReplicaContext& ctx);
  void stash_early_share(bft::NodeId from, const RequestId& id, Bytes wire);
  void adopt_early_shares(const RequestId& id, Pending& p,
                          bft::ReplicaContext& ctx);
  void bind_metrics(bft::ReplicaContext& ctx);

  std::unique_ptr<Service> service_;
  secretshare::Arss2Mode mode_;
  bool corrupt_shares_ = false;

  // Reveal state, created only when the BFT layer delivers the request.
  std::unordered_map<RequestId, Pending> pending_;
  // Shares that arrived before their request was delivered, bounded per
  // sender (kCpMaxEarlySharesPerSender): never keyed protocol state by an
  // unauthenticated RequestId.
  std::map<bft::NodeId, std::deque<std::pair<RequestId, Bytes>>> early_shares_;
  std::unordered_set<RequestId> completed_;
  std::deque<RequestId> exec_queue_;
  // Own-share wires of executed requests (bounded FIFO; see
  // kCpMaxCompletedShareCache): serves re-requests from restarted peers.
  std::unordered_map<RequestId, Bytes> completed_own_shares_;
  std::deque<RequestId> completed_own_shares_order_;
  uint64_t recovery_attempts_ = 0;

  struct {
    obs::Counter* reconstructions = nullptr;
    obs::Counter* recovery_attempts = nullptr;
    obs::Counter* reveal_retries = nullptr;
    obs::Counter* share_rerequests_answered = nullptr;
    obs::Counter* early_stashed = nullptr;
    obs::Gauge* pending = nullptr;
    obs::Gauge* early_shares = nullptr;
    obs::Histogram* batch_size = nullptr;  // shares fed per flush
  } m_;
  obs::Tracer* tracer_ = nullptr;
};

class Cp3ClientProtocol : public bft::ClientProtocol {
 public:
  void start(uint64_t client_seq, BytesView op, bft::ClientContext& ctx) override;
  void on_reply(bft::NodeId replica, const bft::ReplyMsg& reply,
                bft::ClientContext& ctx) override;
  void on_retransmit(bft::ClientContext& ctx) override;

 private:
  void send_all(bft::ClientContext& ctx);

  uint64_t seq_ = 0;
  RequestId id_;
  std::vector<Bytes> share_wires_;
  bft::ReplyQuorum quorum_;
};

// --- shared helpers (also used by tests) ---

/// Seals a share wire for the private channel a -> b, bound to the ID.
Bytes seal_share(const bft::KeyRing& keys, bft::NodeId from, bft::NodeId to,
                 const RequestId& id, BytesView share_wire, crypto::Drbg& rng);

/// Opens a sealed share envelope (returns ID and share wire).
std::optional<std::pair<RequestId, Bytes>> open_share(const bft::KeyRing& keys,
                                                      bft::NodeId self,
                                                      bft::NodeId from,
                                                      BytesView body);

}  // namespace scab::causal
