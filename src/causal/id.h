// Request identifiers for the causal layer.
//
// Every causal protocol binds its cryptographic object (ciphertext label,
// commitment header, share tag) to the unique pair ID = (client identity,
// client sequence number) — "the label should contain a unique identifier
// ID (including the client identity and the message identifier)" (§V-A).
// Replicas always check that the ID's client field matches the
// authenticated sender, which is what defeats header-replay front-running.
#pragma once

#include <functional>
#include <optional>

#include "common/bytes.h"
#include "common/serialize.h"
#include "host/time.h"

namespace scab::causal {

struct RequestId {
  host::NodeId client = 0;
  uint64_t seq = 0;

  Bytes encode() const {
    Writer w;
    w.u32(client);
    w.u64(seq);
    return std::move(w).take();
  }

  static std::optional<RequestId> decode(BytesView wire) {
    Reader r(wire);
    RequestId id;
    id.client = r.u32();
    id.seq = r.u64();
    if (!r.done()) return std::nullopt;
    return id;
  }

  static RequestId read(Reader& r) {
    RequestId id;
    id.client = r.u32();
    id.seq = r.u64();
    return id;
  }

  void write(Writer& w) const {
    w.u32(client);
    w.u64(seq);
  }

  bool operator==(const RequestId&) const = default;
  auto operator<=>(const RequestId&) const = default;
};

}  // namespace scab::causal

template <>
struct std::hash<scab::causal::RequestId> {
  std::size_t operator()(const scab::causal::RequestId& id) const noexcept {
    return std::hash<uint64_t>{}((static_cast<uint64_t>(id.client) << 32) ^
                                 (id.seq * 0x9e3779b97f4a7c15ULL));
  }
};
