// Protocol/runtime selectors shared by every deployment surface: the
// in-process harness (causal/harness.h), the construction seam
// (causal/stack.h), and the standalone daemon (daemon/).  Split out so the
// daemon can name a protocol without dragging the whole cluster-assembly
// header in.
#pragma once

#include <optional>
#include <string_view>

#include "host/time.h"

namespace scab::causal {

enum class Protocol { kPbft, kCp0, kCp1, kCp2, kCp3 };

/// The underlying atomic-broadcast engine: sequencer-based PBFT or the
/// asynchronous consensus-based engine (RBC + common-coin ABA + ACS).
/// Every causal protocol runs on either — the paper's generality claim.
enum class Engine { kPbftEngine, kAsyncEngine };

/// Which host::Host implementation carries the cluster (DESIGN.md §8):
/// kSim — deterministic virtual-time simulator (bit-reproducible); kThreads
/// — rt::ThreadHost, one worker thread per node over an in-process loopback
/// transport, real steady-clock time.
enum class RuntimeKind { kSim, kThreads };

const char* protocol_name(Protocol p);

/// Parses a lowercase protocol name ("pbft", "cp0".."cp3"); nullopt on
/// anything else.  The daemon config parser and tools share this one
/// mapping so config files and diagnostics cannot disagree.
std::optional<Protocol> protocol_from_name(std::string_view name);

/// Replica ids are 0..n-1; client ids start here.
inline constexpr host::NodeId kClientBase = 100;

}  // namespace scab::causal
