#include "causal/cp1.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace scab::causal {

using bft::NodeId;
using host::Op;

namespace {

Bytes encode_schedule(BytesView commitment) {
  Writer w;
  w.u8(static_cast<uint8_t>(Cp1Phase::kSchedule));
  w.bytes(commitment);
  return std::move(w).take();
}

Bytes encode_reveal(const RequestId& id, BytesView message, BytesView opening) {
  Writer w;
  w.u8(static_cast<uint8_t>(Cp1Phase::kReveal));
  id.write(w);
  w.bytes(message);
  w.bytes(opening);
  return std::move(w).take();
}

struct RevealBody {
  RequestId id;
  Bytes message;
  Bytes opening;
};

std::optional<RevealBody> parse_reveal(BytesView payload) {
  Reader r(payload);
  if (r.u8() != static_cast<uint8_t>(Cp1Phase::kReveal)) return std::nullopt;
  RevealBody b;
  b.id = RequestId::read(r);
  b.message = r.bytes();
  b.opening = r.bytes();
  if (!r.done()) return std::nullopt;
  return b;
}

// Witness forwarded during amplification: the reveal request verbatim plus
// the client_seq it was submitted under.
Bytes encode_witness(uint64_t reveal_seq, BytesView reveal_payload) {
  Writer w;
  w.u64(reveal_seq);
  w.bytes(reveal_payload);
  return std::move(w).take();
}

}  // namespace

Bytes Cp1ReplicaApp::scheduled_marker() { return to_bytes("cp1:scheduled"); }
Bytes Cp1ReplicaApp::aborted_marker() { return to_bytes("cp1:aborted"); }

void Cp1ReplicaApp::bind_metrics(bft::ReplicaContext& ctx) {
  if (m_.scheduled != nullptr) return;
  obs::MetricsRegistry& reg = ctx.metrics();
  m_.scheduled = &reg.counter("cp1.scheduled");
  m_.opened = &reg.counter("cp1.opened");
  m_.cleaned = &reg.counter("cp1.cleaned");
  m_.openings_rejected = &reg.counter("cp1.openings_rejected");
  m_.amplifications = &reg.counter("cp1.amplifications");
  m_.tentative = &reg.gauge("cp1.tentative");
  m_.batch_size = &reg.histogram("cp1.batch_size");
  tracer_ = &ctx.tracer();
}

bool Cp1ReplicaApp::validate_request(NodeId client,
                                     const bft::ClientRequestMsg& msg,
                                     bft::ReplicaContext& ctx) {
  bind_metrics(ctx);
  if (msg.payload.empty()) return false;
  const auto phase = static_cast<Cp1Phase>(msg.payload[0]);
  switch (phase) {
    case Cp1Phase::kSchedule: {
      Reader r(msg.payload);
      r.u8();
      const Bytes c = r.bytes();
      return r.done() && !c.empty();
    }
    case Cp1Phase::kReveal: {
      auto body = parse_reveal(msg.payload);
      if (!body) return false;
      // The header must match the authenticated sender — this check is what
      // makes copying a commitment under a different identity useless.
      if (body->id.client != client) return false;
      if (aborted_.contains(body->id)) return false;
      auto tent = tentative_.find(body->id);
      if (tent != tentative_.end()) {
        ctx.charge(Op::kCommitOpen, body->message.size());
        if (!commitment_.open(body->id.encode(), tent->second.commitment,
                              body->message, body->opening)) {
          return false;
        }
        // Verified witness in hand: arm amplification in case the client
        // fails to reach the other replicas.
        arm_amplification(body->id, msg.client_seq, msg.payload, ctx);
      }
      return true;
    }
    case Cp1Phase::kCleanup:
      // Only replicas (the primary, via submit_local_request) originate
      // cleanups; reject them on the client-request path from clients.
      return client < ctx.config().n;
  }
  return false;
}

void Cp1ReplicaApp::on_deliver(uint64_t /*seq*/, const bft::Request& req,
                               bft::ReplicaContext& ctx) {
  bind_metrics(ctx);
  ++delivered_count_;
  if (req.payload.empty()) return;
  const auto phase = static_cast<Cp1Phase>(req.payload[0]);
  // A non-reveal delivery ends the current run of consecutive reveals:
  // execute the deferred run before processing it so service-visible
  // ordering matches delivery order exactly.  Forced: opening checks still
  // on the worker pool are resolved inline here — a cleanup (or schedule)
  // must observe every earlier reveal's opened_/tentative_ transition.
  if (phase != Cp1Phase::kReveal) flush_reveals(ctx, /*force=*/true);
  switch (phase) {
    case Cp1Phase::kSchedule:
      deliver_schedule(req, ctx);
      break;
    case Cp1Phase::kReveal:
      deliver_reveal(req, ctx);
      break;
    case Cp1Phase::kCleanup:
      deliver_cleanup(req, ctx);
      break;
  }
  maybe_propose_cleanup(ctx);
}

void Cp1ReplicaApp::on_batch_end(bft::ReplicaContext& ctx) {
  bind_metrics(ctx);
  flush_reveals(ctx);
}

void Cp1ReplicaApp::resolve_reveal(DeferredReveal& d, bool ok,
                                   bft::ReplicaContext& ctx) {
  reveal_inflight_.erase(d.id);
  if (!ok) {
    d.state = DeferredReveal::State::kRejected;  // forged opening
    m_.openings_rejected->inc();
    return;
  }
  d.state = DeferredReveal::State::kValid;
  opened_.insert(d.id);
  tentative_.erase(d.id);
  m_.opened->inc();
  m_.tentative->set(static_cast<int64_t>(tentative_.size()));
  // The span key is the SCHEDULE round's (client, seq) — d.id — which is
  // what the client's submit/complete endpoints recorded under.
  tracer_->record(d.id.client, d.id.seq, obs::Phase::kRevealed, ctx.now());
  // The opening inputs are done; only the message (execution) remains.
  d.commitment.clear();
  d.opening.clear();
}

void Cp1ReplicaApp::flush_reveals(bft::ReplicaContext& ctx, bool force) {
  if (reveal_flush_.empty()) return;
  if (force) {
    // Resolve stragglers inline (their pool job, if any, lands later and
    // no-ops on the state check).  The kCommitOpen charge was taken at
    // delivery time.
    for (auto& d : reveal_flush_) {
      if (d.state != DeferredReveal::State::kPending) continue;
      resolve_reveal(d,
                     commitment_.open(d.id.encode(), d.commitment, d.message,
                                      d.opening),
                     ctx);
    }
  }
  // Execute the resolved prefix in delivery order; stop at the first entry
  // whose opening is still in flight.
  std::size_t resolved = 0;
  while (resolved < reveal_flush_.size() &&
         reveal_flush_[resolved].state != DeferredReveal::State::kPending) {
    ++resolved;
  }
  uint64_t executed = 0;
  for (std::size_t i = 0; i < resolved; ++i) {
    if (reveal_flush_[i].state == DeferredReveal::State::kValid) ++executed;
  }
  if (executed > 0) m_.batch_size->record(executed);
  for (std::size_t i = 0; i < resolved; ++i) {
    DeferredReveal& d = reveal_flush_[i];
    if (d.state != DeferredReveal::State::kValid) continue;  // forged: drop
    ctx.charge(Op::kExecute, d.message.size());
    Bytes result = service_->execute(d.id.client, d.message);
    // The reply goes to whoever submitted the reveal request (normally the
    // original client; after amplification the client_seq still matches the
    // client's reveal round, so its quorum counts these replies).
    ctx.send_reply(d.id.client, d.reply_seq, std::move(result));
  }
  reveal_flush_.erase(reveal_flush_.begin(),
                      reveal_flush_.begin() + static_cast<std::ptrdiff_t>(resolved));
  // A pending tail means this flush point could not complete: the landing
  // continuation finishes the job.
  flush_armed_ = !reveal_flush_.empty();
}

void Cp1ReplicaApp::deliver_schedule(const bft::Request& req,
                                     bft::ReplicaContext& ctx) {
  Reader r(req.payload);
  r.u8();
  Bytes c = r.bytes();
  if (!r.done()) return;

  const RequestId id{req.client, req.client_seq};
  if (opened_.contains(id) || aborted_.contains(id) || tentative_.contains(id)) {
    ctx.send_reply(req.client, req.client_seq, scheduled_marker());
    return;
  }
  Tentative t;
  t.commitment = std::move(c);
  t.scheduled_at_count = delivered_count_;
  tentative_.emplace(id, std::move(t));
  schedule_order_.emplace_back(id, delivered_count_);
  m_.scheduled->inc();
  m_.tentative->set(static_cast<int64_t>(tentative_.size()));
  ctx.send_reply(req.client, req.client_seq, scheduled_marker());
}

void Cp1ReplicaApp::deliver_reveal(const bft::Request& req,
                                   bft::ReplicaContext& ctx) {
  auto body = parse_reveal(req.payload);
  if (!body) return;
  if (opened_.contains(body->id)) return;        // duplicate reveal
  if (reveal_inflight_.contains(body->id)) return;  // open already in flight
  if (aborted_.contains(body->id)) {
    ctx.send_reply(req.client, req.client_seq, aborted_marker());
    return;
  }
  auto tent = tentative_.find(body->id);
  if (tent == tentative_.end()) return;  // never scheduled: ignore

  ctx.charge(Op::kCommitOpen, body->message.size());
  // The opening check rides the worker pool; the flush entry holds the
  // delivery-order slot (and the opening inputs, so a forced flush can
  // resolve it inline if the job has not landed).  Protocol state
  // (opened_/tentative_) changes only at resolution — on this thread.
  const RequestId id = body->id;
  const uint64_t ticket = ++reveal_ticket_;
  DeferredReveal d;
  d.id = id;
  d.ticket = ticket;
  d.reply_seq = req.client_seq;
  d.message = body->message;  // copied: the job needs its own below
  d.commitment = tent->second.commitment;
  d.opening = body->opening;
  reveal_flush_.push_back(std::move(d));
  reveal_inflight_.insert(id);
  ctx.offload([this, &ctx, ticket, ck = commitment_, header = id.encode(),
               commitment = tent->second.commitment,
               message = std::move(body->message),
               opening = std::move(body->opening)]() -> std::function<void()> {
    const bool ok = ck.open(header, commitment, message, opening);
    return [this, &ctx, ticket, ok] {
      for (auto& d : reveal_flush_) {
        if (d.ticket != ticket) continue;
        // A forced flush may have resolved the entry inline already.
        if (d.state == DeferredReveal::State::kPending) resolve_reveal(d, ok, ctx);
        break;
      }
      // If a flush point already passed while this check was in flight,
      // finish it now that the prefix may have resolved.
      if (flush_armed_) flush_reveals(ctx);
    };
  });
}

void Cp1ReplicaApp::deliver_cleanup(const bft::Request& req,
                                    bft::ReplicaContext& ctx) {
  if (req.client >= ctx.config().n) return;  // only replicas originate these
  Reader r(req.payload);
  r.u8();
  const uint32_t count = r.u32();
  if (!r.ok() || count > 100000) return;
  std::vector<RequestId> ids;
  ids.reserve(count);
  for (uint32_t i = 0; i < count; ++i) ids.push_back(RequestId::read(r));
  if (!r.done()) return;

  // The cycle rule: every cleaned request must be old enough.  A premature
  // cleanup is a fairness violation by the primary -> demote it.
  for (const auto& id : ids) {
    auto tent = tentative_.find(id);
    if (tent == tentative_.end()) continue;  // already opened: no-op
    if (delivered_count_ - tent->second.scheduled_at_count <
        options_.cleanup_cycle) {
      ctx.request_view_change("cp1: premature cleanup");
      return;
    }
  }
  for (const auto& id : ids) {
    auto tent = tentative_.find(id);
    if (tent == tentative_.end()) continue;
    tentative_.erase(tent);
    aborted_.insert(id);
    ++cleaned_count_;
    m_.cleaned->inc();
  }
  m_.tentative->set(static_cast<int64_t>(tentative_.size()));
}

void Cp1ReplicaApp::maybe_propose_cleanup(bft::ReplicaContext& ctx) {
  if (!ctx.is_primary()) return;
  // Pop entries whose tentative is gone (opened or aborted).
  while (!schedule_order_.empty() &&
         !tentative_.contains(schedule_order_.front().first)) {
    schedule_order_.pop_front();
  }
  if (schedule_order_.empty()) return;
  if (delivered_count_ - schedule_order_.front().second < options_.cleanup_cycle) {
    return;
  }

  Writer w;
  w.u8(static_cast<uint8_t>(Cp1Phase::kCleanup));
  std::vector<RequestId> expired;
  for (const auto& [id, scheduled_at] : schedule_order_) {
    if (delivered_count_ - scheduled_at < options_.cleanup_cycle) break;
    if (!tentative_.contains(id) || cleanup_inflight_.contains(id)) continue;
    expired.push_back(id);
  }
  if (expired.empty()) return;
  w.u32(static_cast<uint32_t>(expired.size()));
  for (const auto& id : expired) {
    id.write(w);
    cleanup_inflight_.insert(id);
  }
  ctx.submit_local_request(std::move(w).take());
}

void Cp1ReplicaApp::arm_amplification(const RequestId& id, uint64_t reveal_seq,
                                      const Bytes& reveal_payload,
                                      bft::ReplicaContext& ctx) {
  if (amplified_.contains(id)) return;
  amplified_.insert(id);
  const Bytes witness = encode_witness(reveal_seq, reveal_payload);
  ctx.schedule(options_.amplify_delay, [this, id, witness, &ctx] {
    if (opened_.contains(id) || aborted_.contains(id)) return;
    // The reveal has not been ordered yet: forward the witness.  It needs
    // no client authentication — the opening is the proof.
    m_.amplifications->inc();
    ctx.broadcast_causal(witness);
  });
}

void Cp1ReplicaApp::on_causal_message(NodeId from, BytesView body,
                                      bft::ReplicaContext& ctx) {
  (void)from;
  bind_metrics(ctx);
  Reader r(body);
  const uint64_t reveal_seq = r.u64();
  const Bytes payload = r.bytes();
  if (!r.done()) return;
  auto reveal = parse_reveal(payload);
  if (!reveal) return;
  if (opened_.contains(reveal->id) || aborted_.contains(reveal->id)) return;
  auto tent = tentative_.find(reveal->id);
  if (tent == tentative_.end()) return;
  ctx.charge(Op::kCommitOpen, reveal->message.size());
  if (!commitment_.open(reveal->id.encode(), tent->second.commitment,
                        reveal->message, reveal->opening)) {
    return;
  }
  // Adopt the witness as a pending request on behalf of the client; the
  // primary will batch it, backups will watch it.
  ctx.admit_foreign_request(reveal->id.client, reveal_seq, payload);
}

// ---------------------------------------------------------------------------
// Durability (DESIGN.md §13)

namespace {
constexpr uint32_t kCp1StateVersion = 1;

void write_id_set(Writer& w, const std::unordered_set<RequestId>& set) {
  std::vector<RequestId> ids(set.begin(), set.end());
  std::sort(ids.begin(), ids.end());
  w.u32(static_cast<uint32_t>(ids.size()));
  for (const RequestId& id : ids) id.write(w);
}

bool read_id_set(Reader& r, std::unordered_set<RequestId>& set) {
  const uint32_t n = r.u32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) set.insert(RequestId::read(r));
  return r.ok();
}
}  // namespace

Bytes Cp1ReplicaApp::serialize_state(bft::ReplicaContext& /*ctx*/) {
  Writer w;
  w.u32(kCp1StateVersion);
  w.bytes(service_->serialize());
  w.u32(static_cast<uint32_t>(tentative_.size()));
  for (const auto& [id, t] : tentative_) {  // std::map: deterministic order
    id.write(w);
    w.bytes(t.commitment);
    w.u64(t.scheduled_at_count);
  }
  w.u32(static_cast<uint32_t>(schedule_order_.size()));
  for (const auto& [id, at] : schedule_order_) {
    id.write(w);
    w.u64(at);
  }
  write_id_set(w, opened_);
  write_id_set(w, aborted_);
  // amplified_ is deliberately NOT persisted: its timers die with the
  // process, and keeping the guard would silently disable amplification for
  // those ids when the client retransmits its reveal.
  w.u64(delivered_count_);
  w.u64(cleaned_count_);
  // Deferred flush entries: delivered but unexecuted as of this snapshot.
  // Pending entries keep their opening inputs so restore can resolve them
  // inline (the pool job they were waiting on dies with the process).
  w.u32(static_cast<uint32_t>(reveal_flush_.size()));
  for (const DeferredReveal& d : reveal_flush_) {
    d.id.write(w);
    w.u64(d.reply_seq);
    w.bytes(d.message);
    w.u8(static_cast<uint8_t>(d.state));
    w.bytes(d.commitment);
    w.bytes(d.opening);
  }
  return std::move(w).take();
}

bool Cp1ReplicaApp::restore_state(BytesView blob, bft::ReplicaContext& ctx) {
  if (blob.empty()) return true;
  bind_metrics(ctx);
  Reader r(blob);
  if (r.u32() != kCp1StateVersion) return false;
  const Bytes service_blob = r.bytes();
  std::map<RequestId, Tentative> tentative;
  const uint32_t n_tent = r.u32();
  for (uint32_t i = 0; i < n_tent && r.ok(); ++i) {
    const RequestId id = RequestId::read(r);
    Tentative t;
    t.commitment = r.bytes();
    t.scheduled_at_count = r.u64();
    tentative.emplace(id, std::move(t));
  }
  std::deque<std::pair<RequestId, uint64_t>> order;
  const uint32_t n_order = r.u32();
  for (uint32_t i = 0; i < n_order && r.ok(); ++i) {
    const RequestId id = RequestId::read(r);
    order.emplace_back(id, r.u64());
  }
  std::unordered_set<RequestId> opened;
  std::unordered_set<RequestId> aborted;
  if (!read_id_set(r, opened) || !read_id_set(r, aborted)) return false;
  const uint64_t delivered = r.u64();
  const uint64_t cleaned = r.u64();
  std::vector<DeferredReveal> flush;
  const uint32_t n_flush = r.u32();
  for (uint32_t i = 0; i < n_flush && r.ok(); ++i) {
    DeferredReveal d;
    d.id = RequestId::read(r);
    d.reply_seq = r.u64();
    d.message = r.bytes();
    const uint8_t state = r.u8();
    if (state > static_cast<uint8_t>(DeferredReveal::State::kRejected)) {
      return false;
    }
    d.state = static_cast<DeferredReveal::State>(state);
    d.commitment = r.bytes();
    d.opening = r.bytes();
    flush.push_back(std::move(d));
  }
  if (!r.ok() || !r.done()) return false;
  if (!service_->restore(service_blob)) return false;
  tentative_ = std::move(tentative);
  schedule_order_ = std::move(order);
  opened_ = std::move(opened);
  aborted_ = std::move(aborted);
  delivered_count_ = delivered;
  cleaned_count_ = cleaned;
  reveal_flush_ = std::move(flush);
  for (DeferredReveal& d : reveal_flush_) {
    d.ticket = ++reveal_ticket_;
    if (d.state == DeferredReveal::State::kPending) {
      reveal_inflight_.insert(d.id);
    }
  }
  m_.tentative->set(static_cast<int64_t>(tentative_.size()));
  // Execute the deferred run now, before the WAL replays any later
  // delivery: the service must see exactly the pre-crash delivery order.
  // Replies land in the reply cache; the wire sends are shielded.
  flush_reveals(ctx, /*force=*/true);
  return true;
}

// ---------------------------------------------------------------------------
// Client

void Cp1ClientProtocol::start(uint64_t client_seq, BytesView op,
                              bft::ClientContext& ctx) {
  phase_ = Phase::kSchedule;
  schedule_seq_ = client_seq;
  id_ = RequestId{ctx.id(), client_seq};
  op_.assign(op.begin(), op.end());

  ctx.charge(Op::kCommit, op.size());
  const crypto::Committed c = commitment_.commit(id_.encode(), op_, ctx.rng());
  commitment_wire_ = c.commitment;
  opening_ = c.decommitment;
  schedule_payload_ = encode_schedule(commitment_wire_);

  quorum_.arm(schedule_seq_, ctx.config().f + 1);
  ctx.send_request(schedule_seq_, schedule_payload_);
}

void Cp1ClientProtocol::send_reveal(bft::ClientContext& ctx) {
  phase_ = Phase::kReveal;
  reveal_seq_ = ctx.next_seq();
  reveal_payload_ = encode_reveal(id_, op_, opening_);
  quorum_.arm(reveal_seq_, ctx.config().f + 1);
  if (reveal_fanout_ == 0) {
    ctx.send_request(reveal_seq_, reveal_payload_);
  } else {
    // Partial-failure scenario: the witness reaches only the LAST k
    // replicas (backups), so only amplification can get it ordered.
    const uint32_t n = ctx.config().n;
    for (uint32_t i = 0; i < reveal_fanout_ && i < n; ++i) {
      ctx.send_request_to(n - 1 - i, reveal_seq_, reveal_payload_);
    }
  }
}

void Cp1ClientProtocol::on_reply(NodeId replica, const bft::ReplyMsg& reply,
                                 bft::ClientContext& ctx) {
  switch (phase_) {
    case Phase::kIdle:
      break;
    case Phase::kSchedule:
      if (quorum_.add(replica, reply)) {
        if (crash_before_reveal_) {
          phase_ = Phase::kIdle;  // the client silently dies here (Fig. 7)
          return;
        }
        if (schedule_only_) {
          // Faulty continuous client: abandon the reveal, move on.
          phase_ = Phase::kIdle;
          ctx.complete(reply.result);
          return;
        }
        send_reveal(ctx);
      }
      break;
    case Phase::kReveal:
      if (quorum_.add(replica, reply)) {
        phase_ = Phase::kIdle;
        ctx.complete(reply.result);
      }
      break;
  }
}

void Cp1ClientProtocol::on_retransmit(bft::ClientContext& ctx) {
  switch (phase_) {
    case Phase::kIdle:
      break;
    case Phase::kSchedule:
      ctx.send_request(schedule_seq_, schedule_payload_);
      break;
    case Phase::kReveal:
      ctx.send_request(reveal_seq_, reveal_payload_);
      break;
  }
}

}  // namespace scab::causal
