// Seeded chaos harness (DESIGN.md §9).
//
// A chaos run is (seed, options) -> schedule -> verdict:
//
//  * generate_schedule derives a deterministic fault schedule from an
//    HMAC-DRBG seeded with the chaos seed: crash/restart pairs (at most one
//    replica down at a time), directed link cuts and heals, extra one-way
//    link delays, and link tampering, all inside a fault horizon.  Every
//    schedule is self-healing: crashed replicas are restarted and a
//    terminal heal-all event closes the horizon, so a correct protocol must
//    eventually deliver everything submitted.
//  * run_chaos assembles a causal::Cluster for the requested protocol and
//    runtime (the SAME schedule drives either), runs a closed-loop client
//    workload of high-entropy marker operations through the fault window
//    via host::FaultInjector, and checks
//      - safety:   per-replica execution logs are pairwise prefix-consistent
//                  (total order; a restarted replica that has not finished
//                  catching up simply has a shorter prefix),
//      - secrecy:  for CP0/CP2/CP3 no marker plaintext ever appears on the
//                  wire (inspected from the injector's tamper hook),
//      - liveness: every submitted operation completes within the deadline
//                  after the terminal heal.
//
// Under RuntimeKind::kSim event times are virtual nanoseconds and a run is
// bit-reproducible; under kThreads the same offsets are applied on the
// steady clock by the controlling thread.
#pragma once

#include <string>
#include <vector>

#include "causal/harness.h"

namespace scab::chaos {

enum class FaultKind : uint8_t {
  kCrash,       // full teardown of replica `a` (Cluster::crash_replica)
  kRestart,     // rebuild replica `a` with empty volatile state
  kCut,         // drop the directed link a -> b
  kHeal,        // restore the directed link a -> b
  kDelay,       // add `extra` ns of one-way delay on a -> b
  kTamper,      // corrupt every message on a -> b (dropped by authentication)
  kCrashAll,    // power loss: tear down EVERY replica at once
  kRestartAll,  // power restored: every replica recovers from its storage
  kHealAll,     // terminal: heal cuts, clear delays, stop tampering
};

const char* fault_kind_name(FaultKind k);

struct ChaosEvent {
  host::Time at = 0;  // offset from workload start (virtual or wall ns)
  FaultKind kind = FaultKind::kHealAll;
  host::NodeId a = 0;
  host::NodeId b = 0;
  host::Time extra = 0;  // kDelay only

  bool operator==(const ChaosEvent&) const = default;
};

struct ChaosOptions {
  causal::Protocol protocol = causal::Protocol::kPbft;
  causal::RuntimeKind runtime = causal::RuntimeKind::kSim;
  uint32_t f = 1;
  uint32_t num_clients = 2;
  uint32_t ops_per_client = 6;
  uint32_t num_faults = 6;
  /// Generate crash/restart events (off for pure partition/delay drills).
  bool allow_crash = true;
  /// Fault window: every generated fault fires inside it and the terminal
  /// heal-all lands exactly on it.
  host::Time horizon = 2 * host::kSecond;
  /// Workload completion budget measured from the start of the run.
  host::Time deadline = 60 * host::kSecond;

  /// Full-cluster power loss (DESIGN.md §13): a crash-all event kills every
  /// replica mid-horizon and a restart-all brings them all back, each
  /// recovering from its attached storage.  Requires durability != kNone —
  /// with no storage every replica would lose its whole history at once and
  /// nothing could be recovered.  Single-replica crash events are disabled
  /// for these schedules (they would overlap the outage).
  bool full_restart = false;
  /// Storage attached to each replica (causal::ClusterOptions semantics).
  causal::ClusterOptions::Durability durability =
      causal::ClusterOptions::Durability::kNone;
  std::string data_dir;  // Durability::kFile only

  // Recovery-friendly protocol tuning (chaos runs want restarts to
  // exercise the checkpoint catch-up quickly, not after 64 requests).
  uint64_t checkpoint_interval = 8;
  host::Time request_timeout = 400 * host::kMillisecond;
  host::Time watchdog_period = 100 * host::kMillisecond;
  host::Time client_retry = 250 * host::kMillisecond;
};

/// Deterministic: the same (seed, options) always yields the same schedule.
std::vector<ChaosEvent> generate_schedule(uint64_t seed,
                                          const ChaosOptions& opt);

/// One line per event, for logs and golden tests.
std::string format_schedule(const std::vector<ChaosEvent>& schedule);

struct ChaosReport {
  bool safety_ok = false;
  bool secrecy_ok = false;
  bool liveness_ok = false;
  bool ok() const { return safety_ok && secrecy_ok && liveness_ok; }

  uint64_t faults_injected = 0;
  uint64_t completed_ops = 0;
  uint64_t expected_ops = 0;
  /// ns from the terminal heal to the first op completion after it (0 when
  /// the workload already finished inside the fault window).
  host::Time first_delivery_after_heal = 0;
  /// Human-readable description of the first violated invariant.
  std::string violation;

  /// Per-replica executed plaintexts (the final incarnation's log), in
  /// execution order — what the safety check compared.  Also the
  /// determinism witness: two sim runs with one seed produce equal logs.
  std::vector<std::vector<Bytes>> logs;

  /// Cluster-wide merged metrics registry as JSON (chaos.faults_injected.*,
  /// net.drops.*, bft.recovery.*, ...), for bench/CI schema validation.
  std::string metrics_json;
};

/// Generates the schedule for (seed, opt) and runs it to a verdict.
ChaosReport run_chaos(uint64_t seed, const ChaosOptions& opt);

}  // namespace scab::chaos
