#include "chaos/chaos.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>

#include "bft/client.h"
#include "common/serialize.h"
#include "crypto/drbg.h"

namespace scab::chaos {

namespace {

Bytes seed_label(uint64_t seed, std::string_view label) {
  Writer w;
  w.u64(seed);
  w.str(std::string(label));
  return std::move(w).take();
}

uint64_t link_key(host::NodeId a, host::NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

/// Logs every executed plaintext in execution order.  The mutex is for the
/// threaded runtime, where the controlling thread reads the log only after
/// Cluster::shutdown() has joined the worker — it guards against future
/// callers polling mid-run.
class RecordingService final : public causal::Service {
 public:
  Bytes execute(host::NodeId /*client*/, BytesView op) override {
    std::lock_guard<std::mutex> lk(mu_);
    log_.emplace_back(op.begin(), op.end());
    return {};
  }

  std::vector<Bytes> log() const {
    std::lock_guard<std::mutex> lk(mu_);
    return log_;
  }

  // Durable-state hooks: the log IS the service state, so a replica
  // recovering from a snapshot resumes with the pre-crash prefix intact —
  // which is exactly what the safety and at-most-once checks compare.
  Bytes serialize() const override {
    std::lock_guard<std::mutex> lk(mu_);
    Writer w;
    w.u32(static_cast<uint32_t>(log_.size()));
    for (const Bytes& op : log_) w.bytes(op);
    return std::move(w).take();
  }
  bool restore(BytesView blob) override {
    if (blob.empty()) return true;
    Reader r(blob);
    const uint32_t count = r.u32();
    std::vector<Bytes> log;
    for (uint32_t i = 0; i < count && r.ok(); ++i) log.push_back(r.bytes());
    if (!r.ok() || !r.done()) return false;
    std::lock_guard<std::mutex> lk(mu_);
    log_ = std::move(log);
    return true;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Bytes> log_;
};

/// State shared with the injector's tamper hook: the secrecy scan plus the
/// set of links the schedule currently tampers with.
struct HookState {
  std::vector<Bytes> markers;  // immutable once the hook is installed
  bool secrecy_scan = false;
  std::atomic<bool> secrecy_violated{false};

  std::mutex mu;
  std::unordered_set<uint64_t> tampered;  // guarded by mu
};

bool contains_marker(BytesView msg, const Bytes& marker) {
  return !marker.empty() &&
         std::search(msg.begin(), msg.end(), marker.begin(), marker.end()) !=
             msg.end();
}

/// Paces one client's workload across the fault horizon: each operation is
/// submitted a DRBG-chosen think time after the previous one completed, so
/// requests are genuinely in flight while faults fire (a back-to-back
/// closed loop would finish the whole workload before the first fault on a
/// fast network).  Scheduling runs on the client's own executor, so the
/// pacing is identical — and, under the simulator, deterministic — on both
/// runtimes.
struct PacedWorkload {
  causal::Cluster* cluster = nullptr;
  bft::Client* client = nullptr;
  std::vector<Bytes> ops;
  std::vector<host::Time> gaps;  // think time before op k
};

void issue_op(const std::shared_ptr<PacedWorkload>& w, uint32_t k) {
  if (k >= w->ops.size()) return;
  w->client->submit(w->ops[k],
                    [w, k](uint64_t, host::Time, host::Time) {
                      if (k + 1 >= w->ops.size()) return;
                      w->cluster->host().schedule(
                          w->client->id(), w->gaps[k + 1],
                          [w, k] { issue_op(w, k + 1); });
                    });
}

uint64_t completed_total(causal::Cluster& cluster) {
  uint64_t total = 0;
  for (uint32_t i = 0; i < cluster.num_clients(); ++i) {
    total += cluster.client(i).completed_ops();
  }
  return total;
}

void apply_event(causal::Cluster& cluster, HookState& hook,
                 const ChaosEvent& ev) {
  obs::MetricsRegistry& m = cluster.net_metrics();
  m.counter("chaos.faults_injected").inc();
  m.counter(std::string("chaos.faults_injected.") + fault_kind_name(ev.kind))
      .inc();
  switch (ev.kind) {
    case FaultKind::kCrash:
      cluster.crash_replica(ev.a);
      break;
    case FaultKind::kRestart:
      cluster.restart_replica(ev.a);
      break;
    case FaultKind::kCrashAll:
      for (uint32_t i = 0; i < cluster.n(); ++i) cluster.crash_replica(i);
      break;
    case FaultKind::kRestartAll:
      // Each replica recovers from its attached storage before traffic is
      // readmitted (Cluster::restart_replica).
      for (uint32_t i = 0; i < cluster.n(); ++i) cluster.restart_replica(i);
      break;
    case FaultKind::kCut:
      cluster.faults().cut(ev.a, ev.b);
      break;
    case FaultKind::kHeal:
      cluster.faults().heal(ev.a, ev.b);
      break;
    case FaultKind::kDelay:
      cluster.faults().delay(ev.a, ev.b, ev.extra);
      break;
    case FaultKind::kTamper: {
      std::lock_guard<std::mutex> lk(hook.mu);
      hook.tampered.insert(link_key(ev.a, ev.b));
      break;
    }
    case FaultKind::kHealAll: {
      cluster.faults().heal_all();
      cluster.faults().clear_delays();
      std::lock_guard<std::mutex> lk(hook.mu);
      hook.tampered.clear();
      break;
    }
  }
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRestart:
      return "restart";
    case FaultKind::kCut:
      return "cut";
    case FaultKind::kHeal:
      return "heal";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kTamper:
      return "tamper";
    case FaultKind::kCrashAll:
      return "crash_all";
    case FaultKind::kRestartAll:
      return "restart_all";
    case FaultKind::kHealAll:
      return "heal_all";
  }
  return "?";
}

std::vector<ChaosEvent> generate_schedule(uint64_t seed,
                                          const ChaosOptions& opt) {
  crypto::Drbg rng(seed_label(seed, "chaos-schedule"));
  const uint32_t n = 3 * opt.f + 1;
  std::vector<ChaosEvent> out;

  // Faults fire inside [10%, 80%] of the horizon; a forced restart of any
  // still-crashed replica lands at 90% and the terminal heal-all exactly on
  // the horizon, so every schedule is self-healing.
  const host::Time lo = opt.horizon / 10;
  const host::Time hi = opt.horizon - opt.horizon / 5;
  std::vector<host::Time> times;
  times.reserve(opt.num_faults);
  for (uint32_t i = 0; i < opt.num_faults; ++i) {
    times.push_back(lo + static_cast<host::Time>(rng.uniform(hi - lo)));
  }
  std::sort(times.begin(), times.end());

  bool crashed = false;  // at most one replica down at a time
  host::NodeId crashed_id = 0;
  host::Time restart_at = 0;
  std::vector<uint64_t> cuts;  // insertion-ordered for deterministic picks

  auto rand_replica = [&] {
    return static_cast<host::NodeId>(rng.uniform(n));
  };
  auto rand_link = [&](host::NodeId* a, host::NodeId* b) {
    *a = rand_replica();
    *b = static_cast<host::NodeId>((*a + 1 + rng.uniform(n - 1)) % n);
  };

  for (const host::Time t : times) {
    if (crashed && t >= restart_at) {
      out.push_back({restart_at, FaultKind::kRestart, crashed_id, 0, 0});
      crashed = false;
    }

    enum Pick : uint8_t { kPickCrash, kPickCut, kPickHeal, kPickDelay, kPickTamper };
    std::vector<std::pair<Pick, uint32_t>> table;
    if (opt.allow_crash && !opt.full_restart && !crashed) {
      table.push_back({kPickCrash, 3});
    }
    table.push_back({kPickCut, 3});
    if (!cuts.empty()) table.push_back({kPickHeal, 2});
    table.push_back({kPickDelay, 2});
    table.push_back({kPickTamper, 2});
    uint32_t total = 0;
    for (const auto& [kind, weight] : table) total += weight;
    uint64_t roll = rng.uniform(total);
    Pick pick = table.back().first;
    for (const auto& [kind, weight] : table) {
      if (roll < weight) {
        pick = kind;
        break;
      }
      roll -= weight;
    }

    switch (pick) {
      case kPickCrash: {
        const host::NodeId a = rand_replica();
        out.push_back({t, FaultKind::kCrash, a, 0, 0});
        crashed = true;
        crashed_id = a;
        restart_at = t + opt.horizon / 6 +
                     static_cast<host::Time>(rng.uniform(opt.horizon / 4));
        break;
      }
      case kPickCut: {
        host::NodeId a, b;
        rand_link(&a, &b);
        out.push_back({t, FaultKind::kCut, a, b, 0});
        cuts.push_back(link_key(a, b));
        break;
      }
      case kPickHeal: {
        const std::size_t idx =
            static_cast<std::size_t>(rng.uniform(cuts.size()));
        const uint64_t k = cuts[idx];
        cuts.erase(cuts.begin() + static_cast<std::ptrdiff_t>(idx));
        out.push_back({t, FaultKind::kHeal,
                       static_cast<host::NodeId>(k >> 32),
                       static_cast<host::NodeId>(k & 0xffffffff), 0});
        break;
      }
      case kPickDelay: {
        host::NodeId a, b;
        rand_link(&a, &b);
        const host::Time extra =
            opt.horizon / 100 * (1 + static_cast<host::Time>(rng.uniform(20)));
        out.push_back({t, FaultKind::kDelay, a, b, extra});
        break;
      }
      case kPickTamper: {
        host::NodeId a, b;
        rand_link(&a, &b);
        out.push_back({t, FaultKind::kTamper, a, b, 0});
        break;
      }
    }
  }

  if (crashed) {
    out.push_back({opt.horizon - opt.horizon / 10, FaultKind::kRestart,
                   crashed_id, 0, 0});
  }
  if (opt.full_restart) {
    // Full-cluster power loss at 50% of the horizon, power restored at 70%:
    // every replica recovers from durable storage well before the terminal
    // heal, so the liveness check still binds.
    out.push_back({opt.horizon / 2, FaultKind::kCrashAll, 0, 0, 0});
    out.push_back({opt.horizon / 2 + opt.horizon / 5, FaultKind::kRestartAll,
                   0, 0, 0});
    std::stable_sort(out.begin(), out.end(),
                     [](const ChaosEvent& x, const ChaosEvent& y) {
                       return x.at < y.at;
                     });
  }
  out.push_back({opt.horizon, FaultKind::kHealAll, 0, 0, 0});
  return out;
}

std::string format_schedule(const std::vector<ChaosEvent>& schedule) {
  std::string out;
  char line[128];
  for (const ChaosEvent& ev : schedule) {
    std::snprintf(line, sizeof(line),
                  "%8llu us  %-8s a=%u b=%u extra=%llu us\n",
                  static_cast<unsigned long long>(ev.at / 1000),
                  fault_kind_name(ev.kind), ev.a, ev.b,
                  static_cast<unsigned long long>(ev.extra / 1000));
    out += line;
  }
  return out;
}

ChaosReport run_chaos(uint64_t seed, const ChaosOptions& opt) {
  const std::vector<ChaosEvent> schedule = generate_schedule(seed, opt);

  causal::ClusterOptions co;
  co.protocol = opt.protocol;
  co.runtime = opt.runtime;
  co.bft = bft::BftConfig::for_f(opt.f);
  co.bft.checkpoint_interval = opt.checkpoint_interval;
  co.bft.request_timeout = opt.request_timeout;
  co.bft.watchdog_period = opt.watchdog_period;
  co.num_clients = opt.num_clients;
  co.seed = seed;
  co.durability = opt.durability;
  co.data_dir = opt.data_dir;
  co.service_factory = [] { return std::make_unique<RecordingService>(); };
  causal::Cluster cluster(co);

  // High-entropy marker operations: unique per (client, index), so the
  // execution logs identify requests and the secrecy scan has 32 bytes that
  // cannot occur on the wire by chance.
  crypto::Drbg mrng(seed_label(seed, "chaos-markers"));
  std::vector<std::vector<Bytes>> ops(opt.num_clients);
  auto hook = std::make_shared<HookState>();
  for (uint32_t ci = 0; ci < opt.num_clients; ++ci) {
    for (uint32_t k = 0; k < opt.ops_per_client; ++k) {
      ops[ci].push_back(mrng.generate(32));
      hook->markers.push_back(ops[ci].back());
    }
  }
  hook->secrecy_scan = opt.protocol == causal::Protocol::kCp0 ||
                       opt.protocol == causal::Protocol::kCp2 ||
                       opt.protocol == causal::Protocol::kCp3;

  // One tamper hook serves double duty for the whole run: it scans every
  // wire message for marker plaintext (secrecy invariant) and corrupts
  // traffic on the links the schedule currently tampers with.  Corruption
  // is content-deterministic, so a seeded sim run stays bit-reproducible.
  cluster.faults().set_tamper(
      [hook](host::NodeId from, host::NodeId to,
             BytesView msg) -> std::optional<Bytes> {
        if (hook->secrecy_scan) {
          for (const Bytes& marker : hook->markers) {
            if (contains_marker(msg, marker)) {
              hook->secrecy_violated.store(true, std::memory_order_relaxed);
            }
          }
        }
        bool tampered;
        {
          std::lock_guard<std::mutex> lk(hook->mu);
          tampered = hook->tampered.contains(link_key(from, to));
        }
        Bytes out(msg.begin(), msg.end());
        if (tampered && !out.empty()) out[out.size() / 2] ^= 0x55;
        return out;
      });

  for (uint32_t ci = 0; ci < opt.num_clients; ++ci) {
    cluster.client(ci).set_retry_timeout(opt.client_retry);
  }

  const uint64_t expected =
      static_cast<uint64_t>(opt.num_clients) * opt.ops_per_client;
  host::Time first_after_heal = 0;

  // Kick off every client's paced workload; think gaps average the horizon
  // divided by the op count, so submissions straddle the whole fault window.
  crypto::Drbg trng(seed_label(seed, "chaos-think"));
  const uint64_t gap_bound =
      std::max<uint64_t>(1, 2 * opt.horizon / std::max(1u, opt.ops_per_client));
  for (uint32_t ci = 0; ci < opt.num_clients; ++ci) {
    auto w = std::make_shared<PacedWorkload>();
    w->cluster = &cluster;
    w->client = &cluster.client(ci);
    w->ops = ops[ci];
    for (uint32_t k = 0; k < opt.ops_per_client; ++k) {
      w->gaps.push_back(static_cast<host::Time>(trng.uniform(gap_bound)));
    }
    cluster.host().schedule(w->client->id(), w->gaps[0],
                            [w] { issue_op(w, 0); });
  }

  if (opt.runtime == causal::RuntimeKind::kSim) {
    sim::Simulator& sim = cluster.sim();
    const host::Time base = sim.now();
    for (const ChaosEvent& ev : schedule) {
      sim.run_until(base + ev.at);
      apply_event(cluster, *hook, ev);
    }
    const host::Time heal_time = sim.now();
    const uint64_t at_heal = completed_total(cluster);
    sim.run_while([&] {
      const uint64_t done = completed_total(cluster);
      if (first_after_heal == 0 && done > at_heal) {
        first_after_heal = sim.now() - heal_time;
      }
      return done >= expected || sim.now() >= base + opt.deadline;
    });
  } else {
    const auto start = std::chrono::steady_clock::now();
    for (const ChaosEvent& ev : schedule) {
      std::this_thread::sleep_until(start + std::chrono::nanoseconds(ev.at));
      apply_event(cluster, *hook, ev);
    }
    const auto heal_tp = std::chrono::steady_clock::now();
    const uint64_t at_heal = completed_total(cluster);
    const auto stop_at = start + std::chrono::nanoseconds(opt.deadline);
    for (;;) {
      const uint64_t done = completed_total(cluster);
      if (first_after_heal == 0 && done > at_heal) {
        first_after_heal = static_cast<host::Time>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - heal_tp)
                .count());
      }
      if (done >= expected || std::chrono::steady_clock::now() >= stop_at) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  if (first_after_heal > 0) {
    cluster.net_metrics()
        .histogram("chaos.first_delivery_after_heal_ms")
        .record(first_after_heal / host::kMillisecond);
  }

  cluster.shutdown();

  ChaosReport report;
  report.expected_ops = expected;
  report.completed_ops = completed_total(cluster);
  report.faults_injected = schedule.size();
  report.first_delivery_after_heal = first_after_heal;
  report.metrics_json = cluster.merged_metrics().to_json();

  for (uint32_t i = 0; i < cluster.n(); ++i) {
    auto* svc = dynamic_cast<RecordingService*>(&cluster.service(i));
    report.logs.push_back(svc ? svc->log() : std::vector<Bytes>{});
  }

  // Safety: pairwise prefix consistency.  A replica that restarted and has
  // not finished catching up simply has a shorter log; any order or content
  // divergence inside the common prefix is a total-order violation.
  report.safety_ok = true;
  for (uint32_t i = 0; i < report.logs.size() && report.safety_ok; ++i) {
    for (uint32_t j = i + 1; j < report.logs.size(); ++j) {
      const auto& a = report.logs[i];
      const auto& b = report.logs[j];
      const std::size_t common = std::min(a.size(), b.size());
      for (std::size_t k = 0; k < common; ++k) {
        if (a[k] != b[k]) {
          report.safety_ok = false;
          char buf[96];
          std::snprintf(buf, sizeof(buf),
                        "execution logs of replicas %u and %u diverge at %zu",
                        i, j, k);
          report.violation = buf;
          break;
        }
      }
      if (!report.safety_ok) break;
    }
  }

  // Full-restart runs additionally assert at-most-once execution: recovery
  // from snapshot + WAL must never re-execute an operation the durable
  // service state already contains.
  if (opt.full_restart && report.safety_ok) {
    for (uint32_t i = 0; i < report.logs.size() && report.safety_ok; ++i) {
      std::unordered_set<std::string> seen;
      for (const Bytes& op : report.logs[i]) {
        if (!seen.insert(to_string(op)).second) {
          report.safety_ok = false;
          char buf[96];
          std::snprintf(buf, sizeof(buf),
                        "replica %u re-executed an operation after recovery",
                        i);
          report.violation = buf;
          break;
        }
      }
    }
  }

  report.secrecy_ok = !hook->secrecy_violated.load(std::memory_order_relaxed);
  if (!report.secrecy_ok && report.violation.empty()) {
    report.violation = "marker plaintext observed on the wire";
  }

  report.liveness_ok = report.completed_ops >= report.expected_ops;
  if (!report.liveness_ok && report.violation.empty()) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "only %llu of %llu ops completed after heal",
                  static_cast<unsigned long long>(report.completed_ops),
                  static_cast<unsigned long long>(report.expected_ops));
    report.violation = buf;
  }
  return report;
}

}  // namespace scab::chaos
