#include "rt/storage.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>

#include "obs/metrics.h"

namespace scab::rt {

namespace {

constexpr char kWalName[] = "wal.log";
constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc
// A length field beyond this is treated as corruption outright — no real
// record approaches it, and it keeps a torn length from driving a huge
// read before the CRC check rejects it anyway.
constexpr uint32_t kMaxRecord = 64u << 20;

uint32_t le32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

void put_le32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

bool write_all(int fd, const uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_file(const std::string& path, Bytes* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  out->clear();
  std::array<uint8_t, 64 * 1024> buf;
  for (;;) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->insert(out->end(), buf.data(), buf.data() + n);
  }
  ::close(fd);
  return true;
}

const std::array<uint32_t, 256>& crc_table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t crc32(BytesView data) {
  const auto& t = crc_table();
  uint32_t c = 0xFFFFFFFFu;
  for (uint8_t b : data) c = t[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

FileStorage::FileStorage(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    error_ = "create_directories(" + dir_ + "): " + ec.message();
    return;
  }
  const std::string wal = dir_ + "/" + kWalName;
  wal_fd_ = ::open(wal.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (wal_fd_ < 0) {
    error_ = "open(" + wal + "): " + std::strerror(errno);
    return;
  }
  recover_wal();
  ok_ = error_.empty();
}

FileStorage::~FileStorage() {
  if (wal_fd_ >= 0) ::close(wal_fd_);
}

void FileStorage::bind_metrics(obs::MetricsRegistry* metrics) {
  if (metrics != nullptr) fsync_ms_ = &metrics->histogram("storage.fsync_ms");
}

void FileStorage::timed_fsync(int fd) {
  if (!options_.fsync) return;
  const auto start = std::chrono::steady_clock::now();
  while (::fdatasync(fd) < 0 && errno == EINTR) {
  }
  if (fsync_ms_ != nullptr) {
    const auto elapsed = std::chrono::steady_clock::now() - start;
    fsync_ms_->record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
            .count()));
  }
}

void FileStorage::recover_wal() {
  // Read the whole file once and validate frame by frame.  The first frame
  // that fails any check marks the end of the durable prefix: everything
  // from there on is a torn or corrupt tail and is cut off.
  Bytes contents;
  const std::string wal = dir_ + "/" + kWalName;
  if (!read_file(wal, &contents)) {
    error_ = "read(" + wal + "): " + std::strerror(errno);
    return;
  }
  std::size_t offset = 0;
  std::size_t records = 0;
  while (contents.size() - offset >= kFrameHeader) {
    const uint32_t len = le32(contents.data() + offset);
    if (len > kMaxRecord || contents.size() - offset - kFrameHeader < len) {
      break;
    }
    const uint32_t crc = le32(contents.data() + offset + 4);
    const BytesView payload(contents.data() + offset + kFrameHeader, len);
    if (crc32(payload) != crc) break;
    offset += kFrameHeader + len;
    ++records;
  }
  if (offset != contents.size()) {
    if (::ftruncate(wal_fd_, static_cast<off_t>(offset)) < 0) {
      error_ = "ftruncate(" + wal + "): " + std::strerror(errno);
      return;
    }
    timed_fsync(wal_fd_);
  }
  if (::lseek(wal_fd_, static_cast<off_t>(offset), SEEK_SET) < 0) {
    error_ = "lseek(" + wal + "): " + std::strerror(errno);
    return;
  }
  log_records_ = records;
}

void FileStorage::append(BytesView record) {
  if (!ok_) return;
  Bytes frame(kFrameHeader + record.size());
  put_le32(frame.data(), static_cast<uint32_t>(record.size()));
  put_le32(frame.data() + 4, crc32(record));
  std::memcpy(frame.data() + kFrameHeader, record.data(), record.size());
  if (!write_all(wal_fd_, frame.data(), frame.size())) {
    ok_ = false;
    error_ = std::string("wal append: ") + std::strerror(errno);
    return;
  }
  ++log_records_;
}

void FileStorage::sync() {
  if (!ok_) return;
  timed_fsync(wal_fd_);
}

std::size_t FileStorage::replay(
    const std::function<void(BytesView)>& fn) const {
  if (!ok_) return 0;
  Bytes contents;
  if (!read_file(dir_ + "/" + kWalName, &contents)) return 0;
  std::size_t offset = 0;
  std::size_t records = 0;
  while (contents.size() - offset >= kFrameHeader) {
    const uint32_t len = le32(contents.data() + offset);
    if (len > kMaxRecord || contents.size() - offset - kFrameHeader < len) {
      break;
    }
    const uint32_t crc = le32(contents.data() + offset + 4);
    const BytesView payload(contents.data() + offset + kFrameHeader, len);
    if (crc32(payload) != crc) break;
    fn(payload);
    offset += kFrameHeader + len;
    ++records;
  }
  return records;
}

void FileStorage::truncate_log() {
  if (!ok_) return;
  if (::ftruncate(wal_fd_, 0) < 0) {
    ok_ = false;
    error_ = std::string("wal truncate: ") + std::strerror(errno);
    return;
  }
  if (::lseek(wal_fd_, 0, SEEK_SET) < 0) {
    ok_ = false;
    error_ = std::string("wal seek: ") + std::strerror(errno);
    return;
  }
  timed_fsync(wal_fd_);
  log_records_ = 0;
}

std::string FileStorage::blob_path(std::string_view key) const {
  // Keys are short identifiers ("snapshot"); anything outside the safe
  // filename alphabet is mapped to '_' so a key can never escape the dir.
  std::string name;
  name.reserve(key.size());
  for (char c : key) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
    name.push_back(safe ? c : '_');
  }
  return dir_ + "/" + name + ".blob";
}

void FileStorage::put(std::string_view key, BytesView value) {
  if (!ok_) return;
  const std::string path = blob_path(key);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    ok_ = false;
    error_ = "open(" + tmp + "): " + std::strerror(errno);
    return;
  }
  if (!write_all(fd, value.data(), value.size())) {
    ok_ = false;
    error_ = "write(" + tmp + "): " + std::strerror(errno);
    ::close(fd);
    return;
  }
  timed_fsync(fd);
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) < 0) {
    ok_ = false;
    error_ = "rename(" + tmp + "): " + std::strerror(errno);
    return;
  }
  // fsync the directory so the rename itself survives power loss.
  if (options_.fsync) {
    const int dfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
      timed_fsync(dfd);
      ::close(dfd);
    }
  }
}

std::optional<Bytes> FileStorage::get(std::string_view key) const {
  if (!ok_) return std::nullopt;
  Bytes out;
  if (!read_file(blob_path(key), &out)) return std::nullopt;
  return out;
}

void FileStorage::erase(std::string_view key) {
  if (!ok_) return;
  ::unlink(blob_path(key).c_str());
}

}  // namespace scab::rt
