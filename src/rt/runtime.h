// rt::ThreadHost — the real-time host: one worker thread per bound node.
//
// Where sim::SimHost multiplexes every node onto one virtual-time event
// loop, ThreadHost gives each node a real thread that drains an MPSC
// mailbox (tasks from other nodes' sends, posts from the controlling
// thread) interleaved with a steady-clock timer queue.  The host-interface
// invariant is preserved exactly: a node's handlers never run concurrently
// with each other, so protocol objects stay lock-free; all cross-node
// communication funnels through the mailbox.
//
//   now()      steady-clock nanoseconds since host construction
//   schedule   per-node timer heap, fired by the node's own worker
//   send       delegated to an rt::Transport (in-process ChannelTransport
//              by default; SocketTransport for multi-process runs)
//   post       enqueue onto the node's mailbox
//   submit     shared crypto worker pool (DESIGN.md §12): jobs fan out over
//              `pool_threads` real threads; each completion is posted back
//              to the owning node's mailbox.  0 threads = inline (the
//              WorkerPool default, same sequencing as the simulator).
//   charge     NO-OP: real time is measured, not modeled (DESIGN.md §8)
//   stop       joins every worker; pending timers and tasks are dropped
//
// Fault injection (DESIGN.md §9): the host::FaultInjector surface is a
// filter at the single delivery chokepoint in front of the mailboxes —
// crashed nodes and cut links drop (attributed to the same
// "net.drops.{crash,cut,tamper}" counters the simulator uses), delayed
// links defer delivery onto the receiver's own timer queue, and the tamper
// hook may rewrite or drop payloads.  Live unbind/rebind is supported: a
// node can be torn down mid-run (its worker joins, queued work dies with
// it) and a replacement endpoint bound under the same id — this is what
// Cluster::restart_replica rides on.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "host/host.h"
#include "obs/metrics.h"
#include "rt/transport.h"

namespace scab::rt {

class ThreadHost final : public host::Host {
 public:
  /// `transport` defaults to an in-process ChannelTransport.  `metrics`
  /// (optional) receives the fault filter's "net.drops.*" counters.
  /// `pool_threads` sizes the shared crypto worker pool (0 = run submit()
  /// jobs inline on the caller).
  explicit ThreadHost(std::unique_ptr<rt::Transport> transport = nullptr,
                      obs::MetricsRegistry* metrics = nullptr,
                      std::size_t pool_threads = 0);
  ~ThreadHost() override;

  host::Time now() const override;

  void bind(host::NodeId id, host::Node* endpoint) override;
  void unbind(host::NodeId id) override;
  void schedule(host::NodeId node, host::Time delay,
                std::function<void()> fn) override;
  void post(host::NodeId node, std::function<void()> fn) override;
  void send(host::NodeId from, host::NodeId to, Bytes msg) override;
  void submit(host::NodeId owner, host::PoolJob job) override;
  std::size_t pool_threads() const override { return pool_workers_.size(); }
  void charge(host::NodeId node, host::Time cost) override {
    (void)node;
    (void)cost;  // real hosts measure; they do not model
  }
  void stop() override;

  host::FaultInjector* fault_injector() override { return &faults_; }

  /// Attaches (or replaces) durable storage for `id`.  Host-owned and kept
  /// across unbind/rebind — a restarted endpoint under the same id recovers
  /// from what its predecessor persisted.  Storage implementations are
  /// internally synchronized only to the extent the host contract needs:
  /// a node touches its own storage exclusively from its own executor.
  void attach_storage(host::NodeId id, std::unique_ptr<host::Storage> storage);
  host::Storage* storage(host::NodeId node) override;

  rt::Transport& transport() { return *transport_; }

 private:
  using SteadyClock = std::chrono::steady_clock;

  /// One node's sequential executor: a thread draining tasks + due timers.
  struct Worker {
    explicit Worker(host::Node* ep) : endpoint(ep) {}

    host::Node* endpoint;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> tasks;
    // multimap: earliest deadline first, FIFO among equal deadlines.
    std::multimap<SteadyClock::time_point, std::function<void()>> timers;
    bool stopping = false;
    std::thread thread;

    void loop();
    void push_task(std::function<void()> fn);
    void push_timer(SteadyClock::time_point at, std::function<void()> fn);
    void stop_and_join();
  };

  /// Mutex-guarded fault state, consulted by deliver() on every message.
  class Faults final : public host::FaultInjector {
   public:
    void crash(host::NodeId node) override;
    void restart(host::NodeId node) override;
    bool is_crashed(host::NodeId node) const override;
    void cut(host::NodeId from, host::NodeId to) override;
    void heal(host::NodeId from, host::NodeId to) override;
    void heal_all() override;
    void delay(host::NodeId from, host::NodeId to, host::Time extra) override;
    void clear_delays() override;
    void set_tamper(Tamper t) override;
    void clear_tamper() override;

    enum class Verdict : uint8_t { kDeliver, kDropCrash, kDropCut, kDropTamper };
    /// Applies the current plan to one message; may rewrite `msg` (tamper)
    /// and sets `extra` to the link's added delay.  The tamper hook runs
    /// outside the lock (it may be slow or reentrant).
    Verdict filter(host::NodeId from, host::NodeId to, Bytes* msg,
                   host::Time* extra) const;

   private:
    static uint64_t key(host::NodeId a, host::NodeId b) {
      return (static_cast<uint64_t>(a) << 32) | b;
    }
    mutable std::mutex mu_;
    std::unordered_set<host::NodeId> crashed_;
    std::unordered_set<uint64_t> cut_;
    std::unordered_map<uint64_t, host::Time> delays_;
    Tamper tamper_;
  };

  std::shared_ptr<Worker> worker(host::NodeId id) const;
  void deliver(host::NodeId from, host::NodeId to, Bytes msg);
  void pool_loop();

  const SteadyClock::time_point epoch_;
  std::unique_ptr<rt::Transport> transport_;
  Faults faults_;
  // shared_ptr: deliver()/post()/schedule() hold a reference across the
  // enqueue, so a concurrent live unbind (node restart) cannot free the
  // worker out from under them; push_* on a stopping worker is a no-op.
  mutable std::mutex mu_;  // guards workers_ (bind/unbind vs lookups)
  std::unordered_map<host::NodeId, std::shared_ptr<Worker>> workers_;
  bool stopped_ = false;
  // Bind generation per node id, bumped on bind AND unbind (under mu_): a
  // pool completion for an earlier incarnation of the id is stale and must
  // be dropped, exactly like a message to a crashed node.
  std::unordered_map<host::NodeId, uint64_t> generations_;
  // Owned durable storage per node (under mu_ for the map itself; the
  // pointed-to Storage is used only from the owning node's executor).
  // Deliberately NOT cleared on unbind: survival across rebind is the
  // in-process crash boundary.
  std::unordered_map<host::NodeId, std::unique_ptr<host::Storage>> storage_;

  /// A queued pool job with the owner snapshot taken at submit time.
  struct PoolTask {
    host::NodeId owner;
    uint64_t generation;
    host::PoolJob job;
  };
  std::mutex pool_mu_;  // guards pool_tasks_/pool_stopping_ only
  std::condition_variable pool_cv_;
  std::deque<PoolTask> pool_tasks_;
  bool pool_stopping_ = false;
  std::vector<std::thread> pool_workers_;

  obs::MetricsRegistry& metrics_;
  struct {
    obs::Counter* drops_crash;
    obs::Counter* drops_cut;
    obs::Counter* drops_tamper;
  } m_;
};

}  // namespace scab::rt
