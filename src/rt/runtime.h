// rt::ThreadHost — the real-time host: one worker thread per bound node.
//
// Where sim::SimHost multiplexes every node onto one virtual-time event
// loop, ThreadHost gives each node a real thread that drains an MPSC
// mailbox (tasks from other nodes' sends, posts from the controlling
// thread) interleaved with a steady-clock timer queue.  The host-interface
// invariant is preserved exactly: a node's handlers never run concurrently
// with each other, so protocol objects stay lock-free; all cross-node
// communication funnels through the mailbox.
//
//   now()      steady-clock nanoseconds since host construction
//   schedule   per-node timer heap, fired by the node's own worker
//   send       delegated to an rt::Transport (in-process ChannelTransport
//              by default; SocketTransport for multi-process runs)
//   post       enqueue onto the node's mailbox
//   charge     NO-OP: real time is measured, not modeled (DESIGN.md §8)
//   stop       joins every worker; pending timers and tasks are dropped
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "host/host.h"
#include "rt/transport.h"

namespace scab::rt {

class ThreadHost final : public host::Host {
 public:
  /// `transport` defaults to an in-process ChannelTransport.
  explicit ThreadHost(std::unique_ptr<rt::Transport> transport = nullptr);
  ~ThreadHost() override;

  host::Time now() const override;

  void bind(host::NodeId id, host::Node* endpoint) override;
  void unbind(host::NodeId id) override;
  void schedule(host::NodeId node, host::Time delay,
                std::function<void()> fn) override;
  void post(host::NodeId node, std::function<void()> fn) override;
  void send(host::NodeId from, host::NodeId to, Bytes msg) override;
  void charge(host::NodeId node, host::Time cost) override {
    (void)node;
    (void)cost;  // real hosts measure; they do not model
  }
  void stop() override;

  rt::Transport& transport() { return *transport_; }

 private:
  using SteadyClock = std::chrono::steady_clock;

  /// One node's sequential executor: a thread draining tasks + due timers.
  struct Worker {
    explicit Worker(host::Node* ep) : endpoint(ep) {}

    host::Node* endpoint;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> tasks;
    // multimap: earliest deadline first, FIFO among equal deadlines.
    std::multimap<SteadyClock::time_point, std::function<void()>> timers;
    bool stopping = false;
    std::thread thread;

    void loop();
    void push_task(std::function<void()> fn);
    void push_timer(SteadyClock::time_point at, std::function<void()> fn);
    void stop_and_join();
  };

  Worker* worker(host::NodeId id) const;
  void deliver(host::NodeId from, host::NodeId to, Bytes msg);

  const SteadyClock::time_point epoch_;
  std::unique_ptr<rt::Transport> transport_;
  mutable std::mutex mu_;  // guards workers_ (bind/unbind vs lookups)
  std::unordered_map<host::NodeId, std::unique_ptr<Worker>> workers_;
  bool stopped_ = false;
};

}  // namespace scab::rt
