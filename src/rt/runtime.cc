#include "rt/runtime.h"

namespace scab::rt {

// ---------------------------------------------------------------------------
// Worker

void ThreadHost::Worker::loop() {
  std::unique_lock<std::mutex> lk(mu);
  for (;;) {
    if (stopping) return;
    if (!tasks.empty()) {
      auto fn = std::move(tasks.front());
      tasks.pop_front();
      lk.unlock();
      fn();
      lk.lock();
      continue;
    }
    const auto now = SteadyClock::now();
    if (!timers.empty() && timers.begin()->first <= now) {
      auto node = timers.extract(timers.begin());
      auto fn = std::move(node.mapped());
      lk.unlock();
      fn();
      lk.lock();
      continue;
    }
    if (timers.empty()) {
      cv.wait(lk);
    } else {
      cv.wait_until(lk, timers.begin()->first);
    }
  }
}

void ThreadHost::Worker::push_task(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu);
    if (stopping) return;
    tasks.push_back(std::move(fn));
  }
  cv.notify_one();
}

void ThreadHost::Worker::push_timer(SteadyClock::time_point at,
                                    std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu);
    if (stopping) return;
    timers.emplace(at, std::move(fn));
  }
  cv.notify_one();
}

void ThreadHost::Worker::stop_and_join() {
  {
    std::lock_guard<std::mutex> lk(mu);
    stopping = true;
  }
  cv.notify_one();
  if (thread.joinable()) thread.join();
}

// ---------------------------------------------------------------------------
// ThreadHost

ThreadHost::ThreadHost(std::unique_ptr<rt::Transport> transport)
    : epoch_(SteadyClock::now()),
      transport_(transport ? std::move(transport)
                           : std::make_unique<ChannelTransport>()) {
  transport_->set_deliver([this](host::NodeId from, host::NodeId to,
                                 Bytes msg) { deliver(from, to, std::move(msg)); });
  transport_->start();
}

ThreadHost::~ThreadHost() { stop(); }

host::Time ThreadHost::now() const {
  return static_cast<host::Time>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() -
                                                           epoch_)
          .count());
}

void ThreadHost::bind(host::NodeId id, host::Node* endpoint) {
  std::lock_guard<std::mutex> lk(mu_);
  auto w = std::make_unique<Worker>(endpoint);
  Worker* raw = w.get();
  raw->thread = std::thread([raw] { raw->loop(); });
  workers_[id] = std::move(w);
}

void ThreadHost::unbind(host::NodeId id) {
  std::unique_ptr<Worker> w;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = workers_.find(id);
    if (it == workers_.end()) return;
    w = std::move(it->second);
    workers_.erase(it);
  }
  w->stop_and_join();
}

ThreadHost::Worker* ThreadHost::worker(host::NodeId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = workers_.find(id);
  return it == workers_.end() ? nullptr : it->second.get();
}

void ThreadHost::schedule(host::NodeId node, host::Time delay,
                          std::function<void()> fn) {
  Worker* w = worker(node);
  if (!w) return;
  w->push_timer(SteadyClock::now() + std::chrono::nanoseconds(delay),
                std::move(fn));
}

void ThreadHost::post(host::NodeId node, std::function<void()> fn) {
  Worker* w = worker(node);
  if (!w) return;
  w->push_task(std::move(fn));
}

void ThreadHost::send(host::NodeId from, host::NodeId to, Bytes msg) {
  transport_->send(from, to, std::move(msg));
}

void ThreadHost::deliver(host::NodeId from, host::NodeId to, Bytes msg) {
  Worker* w = worker(to);
  if (!w) return;  // unknown destination: drop (mirrors the sim's Network)
  host::Node* ep = w->endpoint;
  w->push_task([ep, from, m = std::move(msg)] { ep->on_message(from, m); });
}

void ThreadHost::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  transport_->stop();  // no new inbound deliveries
  std::vector<Worker*> ws;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ws.reserve(workers_.size());
    for (auto& [id, w] : workers_) ws.push_back(w.get());
  }
  for (Worker* w : ws) w->stop_and_join();
}

}  // namespace scab::rt
