#include "rt/runtime.h"

namespace scab::rt {

// ---------------------------------------------------------------------------
// Worker

void ThreadHost::Worker::loop() {
  std::unique_lock<std::mutex> lk(mu);
  for (;;) {
    if (stopping) return;
    if (!tasks.empty()) {
      auto fn = std::move(tasks.front());
      tasks.pop_front();
      lk.unlock();
      fn();
      lk.lock();
      continue;
    }
    const auto now = SteadyClock::now();
    if (!timers.empty() && timers.begin()->first <= now) {
      auto node = timers.extract(timers.begin());
      auto fn = std::move(node.mapped());
      lk.unlock();
      fn();
      lk.lock();
      continue;
    }
    if (timers.empty()) {
      cv.wait(lk);
    } else {
      cv.wait_until(lk, timers.begin()->first);
    }
  }
}

void ThreadHost::Worker::push_task(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu);
    if (stopping) return;
    tasks.push_back(std::move(fn));
  }
  cv.notify_one();
}

void ThreadHost::Worker::push_timer(SteadyClock::time_point at,
                                    std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu);
    if (stopping) return;
    timers.emplace(at, std::move(fn));
  }
  cv.notify_one();
}

void ThreadHost::Worker::stop_and_join() {
  {
    std::lock_guard<std::mutex> lk(mu);
    stopping = true;
  }
  cv.notify_one();
  if (thread.joinable()) thread.join();
}

// ---------------------------------------------------------------------------
// Faults

void ThreadHost::Faults::crash(host::NodeId node) {
  std::lock_guard<std::mutex> lk(mu_);
  crashed_.insert(node);
}

void ThreadHost::Faults::restart(host::NodeId node) {
  std::lock_guard<std::mutex> lk(mu_);
  crashed_.erase(node);
}

bool ThreadHost::Faults::is_crashed(host::NodeId node) const {
  std::lock_guard<std::mutex> lk(mu_);
  return crashed_.contains(node);
}

void ThreadHost::Faults::cut(host::NodeId from, host::NodeId to) {
  std::lock_guard<std::mutex> lk(mu_);
  cut_.insert(key(from, to));
}

void ThreadHost::Faults::heal(host::NodeId from, host::NodeId to) {
  std::lock_guard<std::mutex> lk(mu_);
  cut_.erase(key(from, to));
}

void ThreadHost::Faults::heal_all() {
  std::lock_guard<std::mutex> lk(mu_);
  cut_.clear();
  delays_.clear();
}

void ThreadHost::Faults::delay(host::NodeId from, host::NodeId to,
                               host::Time extra) {
  std::lock_guard<std::mutex> lk(mu_);
  if (extra == 0) {
    delays_.erase(key(from, to));
  } else {
    delays_[key(from, to)] = extra;
  }
}

void ThreadHost::Faults::clear_delays() {
  std::lock_guard<std::mutex> lk(mu_);
  delays_.clear();
}

void ThreadHost::Faults::set_tamper(Tamper t) {
  std::lock_guard<std::mutex> lk(mu_);
  tamper_ = std::move(t);
}

void ThreadHost::Faults::clear_tamper() {
  std::lock_guard<std::mutex> lk(mu_);
  tamper_ = nullptr;
}

ThreadHost::Faults::Verdict ThreadHost::Faults::filter(host::NodeId from,
                                                       host::NodeId to,
                                                       Bytes* msg,
                                                       host::Time* extra) const {
  *extra = 0;
  Tamper tamper_copy;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (crashed_.contains(from) || crashed_.contains(to)) return Verdict::kDropCrash;
    if (cut_.contains(key(from, to))) return Verdict::kDropCut;
    if (auto it = delays_.find(key(from, to)); it != delays_.end()) {
      *extra = it->second;
    }
    tamper_copy = tamper_;
  }
  if (tamper_copy) {
    auto out = tamper_copy(from, to, *msg);
    if (!out) return Verdict::kDropTamper;
    *msg = std::move(*out);
  }
  return Verdict::kDeliver;
}

// ---------------------------------------------------------------------------
// ThreadHost

ThreadHost::ThreadHost(std::unique_ptr<rt::Transport> transport,
                       obs::MetricsRegistry* metrics, std::size_t pool_threads)
    : epoch_(SteadyClock::now()),
      transport_(transport ? std::move(transport)
                           : std::make_unique<ChannelTransport>()),
      metrics_(metrics ? *metrics : obs::MetricsRegistry::inert()) {
  m_.drops_crash = &metrics_.counter("net.drops.crash");
  m_.drops_cut = &metrics_.counter("net.drops.cut");
  m_.drops_tamper = &metrics_.counter("net.drops.tamper");
  pool_workers_.reserve(pool_threads);
  for (std::size_t i = 0; i < pool_threads; ++i) {
    pool_workers_.emplace_back([this] { pool_loop(); });
  }
  transport_->set_deliver([this](host::NodeId from, host::NodeId to,
                                 Bytes msg) { deliver(from, to, std::move(msg)); });
  transport_->start();
}

ThreadHost::~ThreadHost() { stop(); }

host::Time ThreadHost::now() const {
  return static_cast<host::Time>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() -
                                                           epoch_)
          .count());
}

void ThreadHost::bind(host::NodeId id, host::Node* endpoint) {
  // Rebind under a live id (restart): retire the old worker first.  Its
  // queued tasks/timers die with it; in-flight lookups still hold a
  // shared_ptr and their push_* calls no-op once stopping is set.  The join
  // happens OUTSIDE mu_ — the dying worker may be mid-send, and deliver()
  // takes mu_ to look up the destination.
  std::shared_ptr<Worker> old;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return;  // a rebind after stop() would leak a live thread
    if (auto it = workers_.find(id); it != workers_.end()) {
      old = std::move(it->second);
      workers_.erase(it);
    }
  }
  if (old) old->stop_and_join();

  std::lock_guard<std::mutex> lk(mu_);
  if (stopped_) return;
  ++generations_[id];  // pool completions for the old incarnation are stale
  auto w = std::make_shared<Worker>(endpoint);
  Worker* raw = w.get();
  raw->thread = std::thread([raw] { raw->loop(); });
  workers_[id] = std::move(w);
}

void ThreadHost::unbind(host::NodeId id) {
  std::shared_ptr<Worker> w;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = workers_.find(id);
    if (it == workers_.end()) return;
    ++generations_[id];  // in-flight pool jobs for this node must not land
    w = std::move(it->second);
    workers_.erase(it);
  }
  w->stop_and_join();
}

void ThreadHost::attach_storage(host::NodeId id,
                                std::unique_ptr<host::Storage> storage) {
  std::lock_guard<std::mutex> lk(mu_);
  storage_[id] = std::move(storage);
}

host::Storage* ThreadHost::storage(host::NodeId node) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = storage_.find(node);
  return it == storage_.end() ? nullptr : it->second.get();
}

std::shared_ptr<ThreadHost::Worker> ThreadHost::worker(host::NodeId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = workers_.find(id);
  return it == workers_.end() ? nullptr : it->second;
}

void ThreadHost::schedule(host::NodeId node, host::Time delay,
                          std::function<void()> fn) {
  auto w = worker(node);
  if (!w) return;
  w->push_timer(SteadyClock::now() + std::chrono::nanoseconds(delay),
                std::move(fn));
}

void ThreadHost::post(host::NodeId node, std::function<void()> fn) {
  auto w = worker(node);
  if (!w) return;
  w->push_task(std::move(fn));
}

void ThreadHost::send(host::NodeId from, host::NodeId to, Bytes msg) {
  transport_->send(from, to, std::move(msg));
}

void ThreadHost::submit(host::NodeId owner, host::PoolJob job) {
  if (!job) return;
  if (pool_workers_.empty()) {
    // No pool: the WorkerPool contract degenerates to inline execution on
    // the caller (which IS the owner's executor — see host/worker_pool.h).
    if (auto cont = job()) cont();
    return;
  }
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return;
    generation = generations_[owner];
  }
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (pool_stopping_) return;
    pool_tasks_.push_back(PoolTask{owner, generation, std::move(job)});
  }
  pool_cv_.notify_one();
}

void ThreadHost::pool_loop() {
  for (;;) {
    PoolTask task;
    {
      std::unique_lock<std::mutex> lk(pool_mu_);
      pool_cv_.wait(lk, [this] { return pool_stopping_ || !pool_tasks_.empty(); });
      if (pool_stopping_) return;  // remaining jobs are dropped by stop()
      task = std::move(pool_tasks_.front());
      pool_tasks_.pop_front();
    }
    // Stale check BEFORE running: if the owner was unbound (crash/restart)
    // since submit, the work is for a dead incarnation — skip it entirely.
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopped_ || generations_[task.owner] != task.generation) continue;
    }
    auto cont = task.job();
    if (!cont) continue;
    // Post the continuation back to the owner's mailbox, re-checking the
    // generation under mu_ so a completion cannot land on a node that
    // crashed (or was replaced) while the job ran.  push_task on a stopping
    // worker no-ops, closing the remaining race.
    std::shared_ptr<Worker> w;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopped_ || generations_[task.owner] != task.generation) continue;
      auto it = workers_.find(task.owner);
      if (it == workers_.end()) continue;
      w = it->second;
    }
    w->push_task(std::move(cont));
  }
}

void ThreadHost::deliver(host::NodeId from, host::NodeId to, Bytes msg) {
  // The one chokepoint every inbound message funnels through, regardless of
  // transport (channel, socket loopback, socket peer) — so the fault filter
  // here gives the same coverage FaultPlan gives the simulator.
  host::Time extra = 0;
  switch (faults_.filter(from, to, &msg, &extra)) {
    case Faults::Verdict::kDropCrash:
      m_.drops_crash->inc();
      return;
    case Faults::Verdict::kDropCut:
      m_.drops_cut->inc();
      return;
    case Faults::Verdict::kDropTamper:
      m_.drops_tamper->inc();
      return;
    case Faults::Verdict::kDeliver:
      break;
  }
  auto w = worker(to);
  if (!w) return;  // unknown destination: drop (mirrors the sim's Network)
  host::Node* ep = w->endpoint;
  auto task = [ep, from, m = std::move(msg)] { ep->on_message(from, m); };
  if (extra > 0) {
    // Delayed link: defer onto the receiver's own timer queue so ordering
    // against undelayed traffic matches the sim (late messages arrive late).
    w->push_timer(SteadyClock::now() + std::chrono::nanoseconds(extra),
                  std::move(task));
  } else {
    w->push_task(std::move(task));
  }
}

void ThreadHost::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  transport_->stop();  // no new inbound deliveries
  // Pool next: queued jobs are dropped, running jobs finish (their
  // completions no-op against stopped_), threads join before the per-node
  // workers so no pool thread can touch a dead Worker.
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_stopping_ = true;
    pool_tasks_.clear();
  }
  pool_cv_.notify_all();
  for (auto& t : pool_workers_) {
    if (t.joinable()) t.join();
  }
  std::vector<std::shared_ptr<Worker>> ws;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ws.reserve(workers_.size());
    for (auto& [id, w] : workers_) ws.push_back(w);
  }
  for (auto& w : ws) w->stop_and_join();
}

}  // namespace scab::rt
