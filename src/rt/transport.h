// Real-time transports for rt::ThreadHost.
//
//  * ChannelTransport — in-process loopback: send() invokes the delivery
//    callback synchronously on the sender's thread; the host then enqueues
//    onto the receiver's mailbox.  Zero-copy handoff, no sockets.
//  * SocketTransport — length-prefixed TCP for multi-process runs.  One
//    listening socket per transport serves all of the process's local
//    nodes; remote node ids are routed by a peer table.  Frame format
//    (little-endian): u32 payload_len | u32 from | u32 to | payload.
//
//    Internally an EPOLL EVENT LOOP, not thread-per-connection: each of the
//    `io_threads` loops multiplexes its share of the connections through one
//    epoll fd with nonblocking accept/read/write, so thousands of inbound
//    connections cost one thread, not one thread each.  Cross-thread sends
//    are handed to the owning loop via a task queue + eventfd wakeup;
//    per-connection write queues toggle EPOLLOUT interest for backpressure.
//
// Transports are dumb pipes: no retries, no ordering guarantees beyond TCP
// per-connection FIFO, no authentication (the protocol layer MACs every
// message; see bft/envelope.h).  Failures are never silent, though: every
// dropped send is counted in "net.rt.send_errors" (see bind_metrics), broken
// fds are closed and forgotten, and reconnects back off exponentially with
// deterministic jitter so a dead peer cannot make every send() eat a
// connect() timeout.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "host/time.h"
#include "obs/metrics.h"

namespace scab::rt {

using host::NodeId;

class Transport {
 public:
  /// Called for every arriving message; may run on any transport thread.
  using DeliverFn = std::function<void(NodeId from, NodeId to, Bytes msg)>;

  virtual ~Transport() = default;

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  virtual void send(NodeId from, NodeId to, Bytes msg) = 0;
  /// Starts background machinery (accept loops); no-op by default.
  virtual void start() {}
  /// Stops background machinery and joins its threads; idempotent.
  virtual void stop() {}

 protected:
  DeliverFn deliver_;
};

/// In-process loopback: every node lives in this process.
class ChannelTransport final : public Transport {
 public:
  void send(NodeId from, NodeId to, Bytes msg) override {
    if (deliver_) deliver_(from, to, std::move(msg));
  }
};

/// Length-prefixed TCP transport for multi-process deployments.
///
/// Destinations found in the peer table go over TCP (connections are opened
/// lazily and cached); everything else is assumed local and short-circuits
/// to the delivery callback, so a process can host several nodes.
class SocketTransport final : public Transport {
 public:
  struct Peer {
    std::string ip;  // dotted quad
    uint16_t port = 0;
  };

  /// Binds and listens on `bind_ip`:`listen_port` (0 = ephemeral; see
  /// port()).  Check ok() before use — binding can fail in sandboxed
  /// environments.  `jitter_seed` feeds the deterministic
  /// reconnect-backoff jitter.  The default bind address stays loopback
  /// (tests, single-host clusters); the daemon passes "0.0.0.0" for real
  /// deployments.  `io_threads` is the number of epoll event loops
  /// (clamped to >= 1); connections are spread across them.
  explicit SocketTransport(uint16_t listen_port,
                           std::map<NodeId, Peer> peers = {},
                           uint64_t jitter_seed = 0,
                           const std::string& bind_ip = "127.0.0.1",
                           std::size_t io_threads = 1);
  ~SocketTransport() override;

  /// How accept(2) errors are handled (classification is a pure function
  /// so the retry policy is unit-testable): transient conditions retry —
  /// a signal mid-accept (EINTR) or a peer that reset before we picked the
  /// connection up (ECONNABORTED, EPROTO) immediately; resource
  /// exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) after a short sleep so the
  /// process can shed load.  Everything else also sleeps briefly and
  /// retries — the accept loop only exits when stop() closes the listen
  /// socket.  Exiting on a transient error (the old behaviour) killed the
  /// accept thread forever and silently partitioned the node.
  enum class AcceptAction : uint8_t { kRetry, kRetrySleep };
  static AcceptAction classify_accept_error(int err);

  bool ok() const { return listen_fd_ >= 0; }
  uint16_t port() const { return port_; }
  std::size_t io_threads() const { return loops_.size(); }

  /// Adds/replaces a remote route (before start(); not thread-safe after).
  void add_peer(NodeId id, Peer peer) { peers_[id] = std::move(peer); }

  /// Publishes "net.rt.send_errors" and "net.rt.accept_errors" into `m`
  /// (before start(); not thread-safe after).  Without this, errors still
  /// count locally.
  void bind_metrics(obs::MetricsRegistry* m) {
    if (m) {
      send_errors_counter_ = &m->counter("net.rt.send_errors");
      accept_errors_counter_ = &m->counter("net.rt.accept_errors");
    }
  }
  /// Sends dropped on this transport: connect failures, mid-frame write
  /// failures, and sends suppressed while a peer's backoff gate is closed.
  uint64_t send_errors() const {
    return send_errors_.load(std::memory_order_relaxed);
  }
  /// accept(2) failures survived by the accept loop (EINTR, aborted
  /// handshakes, fd exhaustion, ...); each was retried, never fatal.
  uint64_t accept_errors() const {
    return accept_errors_.load(std::memory_order_relaxed);
  }

  void start() override;
  void stop() override;
  void send(NodeId from, NodeId to, Bytes msg) override;

 private:
  /// One connection's state, owned exclusively by the event loop it is
  /// registered with — no lock needed on any per-connection field.
  struct Conn {
    int fd = -1;
    bool outbound = false;    // we opened it (has a dest); else accepted
    bool connecting = false;  // nonblocking connect awaiting EPOLLOUT
    bool want_write = false;  // EPOLLOUT currently armed
    NodeId dest = 0;          // valid when outbound
    // Inbound ring: bytes appended on read, frames consumed from in_off
    // (compacted periodically instead of erasing per frame).
    Bytes inbuf;
    std::size_t in_off = 0;
    // Outbound queue of fully framed messages; out_off is the write cursor
    // into the front frame.  Bounded by kMaxOutqBytes (backpressure: excess
    // sends are dropped and counted, never buffered unboundedly).
    std::deque<Bytes> outq;
    std::size_t out_off = 0;
    std::size_t outq_bytes = 0;
  };

  /// Outbound reconnect gate for one peer (loop-thread-only state).
  /// fd < 0 means disconnected; after a failure, reconnect attempts are
  /// gated by next_attempt with capped exponential backoff (plus jitter)
  /// keyed on consecutive failures.
  struct OutState {
    int fd = -1;
    uint32_t failures = 0;
    std::chrono::steady_clock::time_point next_attempt{};
  };

  /// One epoll event loop.  Everything except `mu`/`tasks`/`wake_armed`
  /// (the cross-thread handoff) is touched only by the loop's own thread.
  struct Loop {
    std::size_t idx = 0;
    int epfd = -1;
    int wake_fd = -1;  // eventfd: cross-thread task handoff
    std::thread thread;
    std::mutex mu;  // guards tasks + wake_armed only
    std::deque<std::function<void()>> tasks;
    bool wake_armed = false;
    std::unordered_map<int, std::unique_ptr<Conn>> conns;  // by fd
    std::unordered_map<NodeId, OutState> outs;             // by dest
    uint64_t jitter_state = 0;
  };

  Loop& loop_for(NodeId to) { return *loops_[to % loops_.size()]; }
  void loop_run(Loop& loop);
  void loop_post(Loop& loop, std::function<void()> task);
  void loop_send(Loop& loop, NodeId to, Bytes frame);
  void adopt_inbound(Loop& loop, int fd);
  void handle_accept(Loop& loop);
  void handle_wake(Loop& loop);
  /// Returns false if the connection was killed.
  bool handle_read(Loop& loop, int fd);
  bool flush_writes(Loop& loop, int fd);
  void kill_conn(Loop& loop, int fd);
  void set_write_interest(Loop& loop, Conn& c, bool on);
  void note_send_error(uint64_t n = 1);
  void note_accept_error();
  void arm_backoff(Loop& loop, OutState& out);

  std::map<NodeId, Peer> peers_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::size_t accept_rr_ = 0;  // round-robin for accepted fds; loop 0 only
  std::mutex lifecycle_mu_;    // guards started_/stop_done_ transitions
  bool started_ = false;
  bool stop_done_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> send_errors_{0};
  std::atomic<uint64_t> accept_errors_{0};
  obs::Counter* send_errors_counter_ = nullptr;
  obs::Counter* accept_errors_counter_ = nullptr;
};

}  // namespace scab::rt
