// Real-time transports for rt::ThreadHost.
//
//  * ChannelTransport — in-process loopback: send() invokes the delivery
//    callback synchronously on the sender's thread; the host then enqueues
//    onto the receiver's mailbox.  Zero-copy handoff, no sockets.
//  * SocketTransport — length-prefixed TCP for multi-process runs.  One
//    listening socket per transport serves all of the process's local
//    nodes; remote node ids are routed by a peer table.  Frame format
//    (little-endian): u32 payload_len | u32 from | u32 to | payload.
//
// Transports are dumb pipes: no retries, no ordering guarantees beyond TCP
// per-connection FIFO, no authentication (the protocol layer MACs every
// message; see bft/envelope.h).  Failures are never silent, though: every
// dropped send is counted in "net.rt.send_errors" (see bind_metrics), broken
// fds are closed and forgotten, and reconnects back off exponentially with
// deterministic jitter so a dead peer cannot make every send() eat a
// connect() timeout.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "host/time.h"
#include "obs/metrics.h"

namespace scab::rt {

using host::NodeId;

class Transport {
 public:
  /// Called for every arriving message; may run on any transport thread.
  using DeliverFn = std::function<void(NodeId from, NodeId to, Bytes msg)>;

  virtual ~Transport() = default;

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  virtual void send(NodeId from, NodeId to, Bytes msg) = 0;
  /// Starts background machinery (accept loops); no-op by default.
  virtual void start() {}
  /// Stops background machinery and joins its threads; idempotent.
  virtual void stop() {}

 protected:
  DeliverFn deliver_;
};

/// In-process loopback: every node lives in this process.
class ChannelTransport final : public Transport {
 public:
  void send(NodeId from, NodeId to, Bytes msg) override {
    if (deliver_) deliver_(from, to, std::move(msg));
  }
};

/// Length-prefixed TCP transport for multi-process deployments.
///
/// Destinations found in the peer table go over TCP (connections are opened
/// lazily and cached); everything else is assumed local and short-circuits
/// to the delivery callback, so a process can host several nodes.
class SocketTransport final : public Transport {
 public:
  struct Peer {
    std::string ip;  // dotted quad
    uint16_t port = 0;
  };

  /// Binds and listens on `bind_ip`:`listen_port` (0 = ephemeral; see
  /// port()).  Check ok() before use — binding can fail in sandboxed
  /// environments.  `jitter_seed` feeds the deterministic
  /// reconnect-backoff jitter.  The default bind address stays loopback
  /// (tests, single-host clusters); the daemon passes "0.0.0.0" for real
  /// deployments.
  explicit SocketTransport(uint16_t listen_port,
                           std::map<NodeId, Peer> peers = {},
                           uint64_t jitter_seed = 0,
                           const std::string& bind_ip = "127.0.0.1");
  ~SocketTransport() override;

  /// How accept(2) errors are handled (classification is a pure function
  /// so the retry policy is unit-testable): transient conditions retry —
  /// a signal mid-accept (EINTR) or a peer that reset before we picked the
  /// connection up (ECONNABORTED, EPROTO) immediately; resource
  /// exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) after a short sleep so the
  /// process can shed load.  Everything else also sleeps briefly and
  /// retries — the accept loop only exits when stop() closes the listen
  /// socket.  Exiting on a transient error (the old behaviour) killed the
  /// accept thread forever and silently partitioned the node.
  enum class AcceptAction : uint8_t { kRetry, kRetrySleep };
  static AcceptAction classify_accept_error(int err);

  bool ok() const { return listen_fd_ >= 0; }
  uint16_t port() const { return port_; }

  /// Adds/replaces a remote route (before start(); not thread-safe after).
  void add_peer(NodeId id, Peer peer) { peers_[id] = std::move(peer); }

  /// Publishes "net.rt.send_errors" and "net.rt.accept_errors" into `m`
  /// (before start(); not thread-safe after).  Without this, errors still
  /// count locally.
  void bind_metrics(obs::MetricsRegistry* m) {
    if (m) {
      send_errors_counter_ = &m->counter("net.rt.send_errors");
      accept_errors_counter_ = &m->counter("net.rt.accept_errors");
    }
  }
  /// Sends dropped on this transport: connect failures, mid-frame write
  /// failures, and sends suppressed while a peer's backoff gate is closed.
  uint64_t send_errors() const {
    return send_errors_.load(std::memory_order_relaxed);
  }
  /// accept(2) failures survived by the accept loop (EINTR, aborted
  /// handshakes, fd exhaustion, ...); each was retried, never fatal.
  uint64_t accept_errors() const {
    return accept_errors_.load(std::memory_order_relaxed);
  }

  void start() override;
  void stop() override;
  void send(NodeId from, NodeId to, Bytes msg) override;

 private:
  /// Outbound connection state for one peer.  fd < 0 means disconnected;
  /// after a failure, reconnect attempts are gated by next_attempt with
  /// capped exponential backoff (plus jitter) keyed on consecutive failures.
  struct OutState {
    int fd = -1;
    uint32_t failures = 0;
    std::chrono::steady_clock::time_point next_attempt{};
  };

  int connect_to(const Peer& peer);
  void accept_loop();
  void read_loop(int fd);
  void note_send_error();
  void note_accept_error();
  void arm_backoff(OutState& out);  // call with mu_ held

  std::map<NodeId, Peer> peers_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex mu_;  // guards conns_, reader_threads_, inbound_fds_,
                   // stopping_, jitter_state_
  std::unordered_map<NodeId, OutState> conns_;  // outbound, keyed by dest
  std::vector<std::thread> reader_threads_;
  // Accepted connections currently owned by a read_loop.  stop() must
  // shutdown(2) these: a reader blocked in recv on a connection whose far
  // end is still alive (a remote process that outlives us) would otherwise
  // never unblock and stop() would hang on the join.  Each read_loop
  // erases its fd before closing it, so a recycled fd number can never be
  // shut down by mistake.
  std::unordered_set<int> inbound_fds_;
  bool started_ = false;
  bool stopping_ = false;
  uint64_t jitter_state_;
  std::atomic<uint64_t> send_errors_{0};
  std::atomic<uint64_t> accept_errors_{0};
  obs::Counter* send_errors_counter_ = nullptr;
  obs::Counter* accept_errors_counter_ = nullptr;
};

}  // namespace scab::rt
