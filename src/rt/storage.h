// rt::FileStorage — the file-backed host::Storage (DESIGN.md §13).
//
// One directory per replica:
//
//   <dir>/wal.log       append-only log, CRC32-framed records
//   <dir>/<key>.blob    one file per blob key, installed by atomic rename
//
// WAL framing: each record is [u32 len][u32 crc32(payload)][payload], all
// little-endian.  On open the file is scanned front to back and truncated
// at the first frame that fails validation (short header, absurd length,
// short payload, CRC mismatch) — so whatever a crash tore off the tail,
// recovery sees a clean PREFIX of the appended sequence and never a
// corrupt record.  A bad length field is caught the same way: the CRC of
// whatever bytes it points at will not match.
//
// Durability discipline:
//
//   append()       write() into the OS page cache (no fsync)
//   sync()         fdatasync(wal) — the commit point; timed into the
//                  "storage.fsync_ms" histogram when metrics are bound
//   put()          write <key>.tmp, fsync it, rename over <key>.blob,
//                  fsync the directory — readers see old or new, never torn
//   truncate_log() ftruncate(wal, 0) + fdatasync
//
// Options.fsync=false ("durability=async" in cluster.conf) keeps all the
// writes but skips every fsync: contents survive process crashes (the page
// cache persists) but not power loss.  The framing and recovery path are
// identical.
#pragma once

#include <string>

#include "host/storage.h"

namespace scab::obs {
class Histogram;
}  // namespace scab::obs

namespace scab::rt {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`.
/// Exposed for the storage tests, which corrupt frames surgically.
uint32_t crc32(BytesView data);

class FileStorage final : public host::Storage {
 public:
  struct Options {
    bool fsync = true;  // false = "async": write() without fdatasync
  };

  /// Creates `dir` (and parents) if needed, opens (or creates) the WAL and
  /// truncates any torn tail.  Check ok() before use: a FileStorage that
  /// failed to open refuses every operation.
  explicit FileStorage(std::string dir) : FileStorage(std::move(dir), Options{}) {}
  FileStorage(std::string dir, Options options);
  ~FileStorage() override;

  FileStorage(const FileStorage&) = delete;
  FileStorage& operator=(const FileStorage&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  const std::string& dir() const { return dir_; }

  // --- host::Storage ---
  void put(std::string_view key, BytesView value) override;
  std::optional<Bytes> get(std::string_view key) const override;
  void erase(std::string_view key) override;

  void append(BytesView record) override;
  void sync() override;
  std::size_t replay(const std::function<void(BytesView)>& fn) const override;
  void truncate_log() override;
  std::size_t log_records() const override { return log_records_; }

  void bind_metrics(obs::MetricsRegistry* metrics) override;

 private:
  std::string blob_path(std::string_view key) const;
  void timed_fsync(int fd);
  /// Scans the WAL, truncates the first invalid frame and everything after
  /// it, and leaves the write offset at the end of the valid prefix.
  void recover_wal();

  std::string dir_;
  Options options_;
  bool ok_ = false;
  std::string error_;
  int wal_fd_ = -1;
  std::size_t log_records_ = 0;  // valid records (recovered + appended)
  obs::Histogram* fsync_ms_ = nullptr;
};

}  // namespace scab::rt
