#include "rt/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

namespace scab::rt {

namespace {

// Reconnect backoff: base << min(failures, kMaxBackoffShift), plus jitter.
constexpr auto kReconnectBase = std::chrono::milliseconds(10);
constexpr uint32_t kMaxBackoffShift = 6;  // caps at 640 ms

// Hard ceiling on a frame's payload; anything bigger is a protocol error
// (or an attack) and kills the connection.
constexpr uint32_t kMaxFrame = 64u << 20;

// Per-connection write-queue byte cap: a dest that stops draining cannot
// buffer the sender to death — overflowing sends are dropped and counted.
constexpr std::size_t kMaxOutqBytes = std::size_t{1} << 28;  // 256 MB

// Compact the inbound ring once the consumed prefix crosses this.
constexpr std::size_t kInbufCompactAt = std::size_t{1} << 20;  // 1 MB

void put_u32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t get_u32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

// One framed message: u32 payload_len | u32 from | u32 to | payload.
Bytes make_frame(NodeId from, NodeId to, BytesView payload) {
  Bytes frame(12 + payload.size());
  put_u32(frame.data(), static_cast<uint32_t>(payload.size()));
  put_u32(frame.data() + 4, from);
  put_u32(frame.data() + 8, to);
  std::memcpy(frame.data() + 12, payload.data(), payload.size());
  return frame;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / lifecycle

SocketTransport::SocketTransport(uint16_t listen_port,
                                 std::map<NodeId, Peer> peers,
                                 uint64_t jitter_seed,
                                 const std::string& bind_ip,
                                 std::size_t io_threads)
    : peers_(std::move(peers)) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listen_port);
  if (::inet_pton(AF_INET, bind_ip.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    ::close(fd);
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return;
  }
  port_ = ntohs(bound.sin_port);

  const std::size_t nloops = std::max<std::size_t>(1, io_threads);
  for (std::size_t i = 0; i < nloops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->idx = i;
    loop->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    // Distinct deterministic jitter stream per loop.
    loop->jitter_state =
        (jitter_seed ^ (0x9e3779b97f4a7c15ULL * (i + 1))) | 1;
    if (loop->epfd < 0 || loop->wake_fd < 0) {
      if (loop->epfd >= 0) ::close(loop->epfd);
      if (loop->wake_fd >= 0) ::close(loop->wake_fd);
      for (auto& l : loops_) {
        ::close(l->epfd);
        ::close(l->wake_fd);
      }
      loops_.clear();
      ::close(fd);
      return;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake_fd;
    ::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    loops_.push_back(std::move(loop));
  }
  // Loop 0 owns the listening socket.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  ::epoll_ctl(loops_[0]->epfd, EPOLL_CTL_ADD, fd, &ev);
  listen_fd_ = fd;
}

SocketTransport::~SocketTransport() { stop(); }

void SocketTransport::start() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (started_ || stop_done_ || listen_fd_ < 0) return;
  started_ = true;
  for (auto& loop : loops_) {
    Loop* l = loop.get();
    l->thread = std::thread([this, l] { loop_run(*l); });
  }
}

void SocketTransport::stop() {
  {
    std::lock_guard<std::mutex> lk(lifecycle_mu_);
    if (stop_done_) return;
    stop_done_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  for (auto& loop : loops_) loop_post(*loop, [] {});  // wake every loop
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Threads are gone: tear down every fd without races.
  for (auto& loop : loops_) {
    for (auto& [fd, conn] : loop->conns) ::close(fd);
    loop->conns.clear();
    loop->outs.clear();
    if (loop->epfd >= 0) ::close(loop->epfd);
    if (loop->wake_fd >= 0) ::close(loop->wake_fd);
    loop->epfd = loop->wake_fd = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Error accounting / policy

SocketTransport::AcceptAction SocketTransport::classify_accept_error(int err) {
  switch (err) {
    case EINTR:
    case ECONNABORTED:
#ifdef EPROTO
    case EPROTO:
#endif
      return AcceptAction::kRetry;
    default:
      // EMFILE/ENFILE/ENOBUFS/ENOMEM and anything unexpected: shed load
      // briefly, then keep accepting — only stop() ends the loop.
      return AcceptAction::kRetrySleep;
  }
}

void SocketTransport::note_send_error(uint64_t n) {
  send_errors_.fetch_add(n, std::memory_order_relaxed);
  if (send_errors_counter_ != nullptr) send_errors_counter_->inc(n);
}

void SocketTransport::note_accept_error() {
  accept_errors_.fetch_add(1, std::memory_order_relaxed);
  if (accept_errors_counter_ != nullptr) accept_errors_counter_->inc();
}

void SocketTransport::arm_backoff(Loop& loop, OutState& out) {
  out.failures++;
  const auto backoff = kReconnectBase * (int64_t{1} << std::min(
                                            out.failures - 1, kMaxBackoffShift));
  // xorshift64: deterministic per-loop jitter in [0, backoff/2).
  uint64_t x = loop.jitter_state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  loop.jitter_state = x;
  const auto jitter = backoff.count() > 1
                          ? std::chrono::milliseconds(
                                x % static_cast<uint64_t>(backoff.count() / 2))
                          : std::chrono::milliseconds(0);
  out.next_attempt = std::chrono::steady_clock::now() + backoff + jitter;
}

// ---------------------------------------------------------------------------
// Event loop

void SocketTransport::loop_run(Loop& loop) {
  std::vector<epoll_event> events(256);
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(loop.epfd, events.data(),
                     static_cast<int>(events.size()), /*timeout_ms=*/500);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epfd broken: only stop() does this
    }
    for (int i = 0; i < n; ++i) {
      if (stopping_.load(std::memory_order_acquire)) return;
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == loop.wake_fd) {
        handle_wake(loop);
        continue;
      }
      if (loop.idx == 0 && fd == listen_fd_) {
        handle_accept(loop);
        continue;
      }
      auto it = loop.conns.find(fd);
      if (it == loop.conns.end()) continue;  // killed earlier this batch
      Conn& c = *it->second;
      if (c.connecting && (ev & (EPOLLOUT | EPOLLERR | EPOLLHUP)) != 0) {
        int err = 0;
        socklen_t errlen = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen);
        if (err != 0) {
          kill_conn(loop, fd);
          continue;
        }
        c.connecting = false;
        loop.outs[c.dest].failures = 0;
        if (!flush_writes(loop, fd)) continue;
        if ((ev & EPOLLIN) != 0 && !handle_read(loop, fd)) continue;
        continue;
      }
      if ((ev & EPOLLIN) != 0 && !handle_read(loop, fd)) continue;
      if ((ev & EPOLLOUT) != 0 && !flush_writes(loop, fd)) continue;
      if ((ev & (EPOLLERR | EPOLLHUP)) != 0) kill_conn(loop, fd);
    }
  }
}

void SocketTransport::loop_post(Loop& loop, std::function<void()> task) {
  bool need_wake = false;
  {
    std::lock_guard<std::mutex> lk(loop.mu);
    loop.tasks.push_back(std::move(task));
    if (!loop.wake_armed) {
      loop.wake_armed = true;
      need_wake = true;
    }
  }
  if (need_wake && loop.wake_fd >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t rc =
        ::write(loop.wake_fd, &one, sizeof(one));
  }
}

void SocketTransport::handle_wake(Loop& loop) {
  uint64_t drain = 0;
  [[maybe_unused]] const ssize_t rc =
      ::read(loop.wake_fd, &drain, sizeof(drain));
  std::deque<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lk(loop.mu);
    tasks.swap(loop.tasks);
    loop.wake_armed = false;
  }
  for (auto& t : tasks) t();
}

void SocketTransport::handle_accept(Loop& loop) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) {
      set_nodelay(fd);
      Loop& target = *loops_[accept_rr_++ % loops_.size()];
      if (&target == &loop) {
        adopt_inbound(loop, fd);
      } else {
        loop_post(target, [this, &target, fd] { adopt_inbound(target, fd); });
      }
      continue;
    }
    const int err = errno;
    // Drained the backlog: the normal exit for nonblocking accept, NOT an
    // error (counting it would swamp accept_errors with noise).
    if (err == EAGAIN || err == EWOULDBLOCK) return;
    if (stopping_.load(std::memory_order_acquire)) return;
    note_accept_error();
    if (classify_accept_error(err) == AcceptAction::kRetry) continue;
    // Resource exhaustion (EMFILE & co.): shed load briefly.  The socket is
    // level-triggered, so pending connections re-arm the event.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return;
  }
}

void SocketTransport::adopt_inbound(Loop& loop, int fd) {
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  loop.conns.emplace(fd, std::move(conn));
}

void SocketTransport::set_write_interest(Loop& loop, Conn& c, bool on) {
  if (c.want_write == on) return;
  c.want_write = on;
  epoll_event ev{};
  ev.events = EPOLLIN | (on ? EPOLLOUT : 0u);
  ev.data.fd = c.fd;
  ::epoll_ctl(loop.epfd, EPOLL_CTL_MOD, c.fd, &ev);
}

void SocketTransport::kill_conn(Loop& loop, int fd) {
  auto it = loop.conns.find(fd);
  if (it == loop.conns.end()) return;
  Conn& c = *it->second;
  if (c.outbound) {
    // Every queued frame is one send() that will never reach the wire.
    if (!c.outq.empty()) note_send_error(c.outq.size());
    auto oit = loop.outs.find(c.dest);
    if (oit != loop.outs.end()) {
      oit->second.fd = -1;
      arm_backoff(loop, oit->second);
    }
  }
  ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  loop.conns.erase(it);
}

bool SocketTransport::flush_writes(Loop& loop, int fd) {
  auto it = loop.conns.find(fd);
  if (it == loop.conns.end()) return false;
  Conn& c = *it->second;
  if (c.connecting) return true;  // wait for the connect to resolve
  while (!c.outq.empty()) {
    const Bytes& front = c.outq.front();
    const ssize_t n = ::send(c.fd, front.data() + c.out_off,
                             front.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      if (c.out_off == front.size()) {
        c.outq_bytes -= front.size();
        c.outq.pop_front();
        c.out_off = 0;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      set_write_interest(loop, c, true);  // kernel buffer full: backpressure
      return true;
    }
    kill_conn(loop, fd);
    return false;
  }
  set_write_interest(loop, c, false);
  return true;
}

bool SocketTransport::handle_read(Loop& loop, int fd) {
  auto it = loop.conns.find(fd);
  if (it == loop.conns.end()) return false;
  Conn& c = *it->second;
  uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c.inbuf.insert(c.inbuf.end(), buf, buf + static_cast<std::size_t>(n));
      // Parse every complete frame in the buffer.
      while (c.inbuf.size() - c.in_off >= 12) {
        const uint8_t* p = c.inbuf.data() + c.in_off;
        const uint32_t len = get_u32(p);
        if (len > kMaxFrame) {  // corrupt or hostile: drop the connection
          kill_conn(loop, fd);
          return false;
        }
        if (c.inbuf.size() - c.in_off < 12 + static_cast<std::size_t>(len)) {
          break;
        }
        const NodeId from = get_u32(p + 4);
        const NodeId to = get_u32(p + 8);
        if (deliver_) {
          deliver_(from, to, Bytes(p + 12, p + 12 + len));
        }
        c.in_off += 12 + static_cast<std::size_t>(len);
      }
      if (c.in_off == c.inbuf.size()) {
        c.inbuf.clear();
        c.in_off = 0;
      } else if (c.in_off >= kInbufCompactAt) {
        c.inbuf.erase(c.inbuf.begin(),
                      c.inbuf.begin() + static_cast<std::ptrdiff_t>(c.in_off));
        c.in_off = 0;
      }
      if (static_cast<std::size_t>(n) < sizeof(buf)) return true;
      continue;  // might be more: keep draining (level-triggered is safe
                 // either way, but this saves an epoll_wait round)
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    kill_conn(loop, fd);  // EOF or hard error
    return false;
  }
}

// ---------------------------------------------------------------------------
// Send path

void SocketTransport::send(NodeId from, NodeId to, Bytes msg) {
  auto pit = peers_.find(to);
  if (pit == peers_.end()) {
    // Local destination: short-circuit to delivery on the caller's thread.
    if (deliver_) deliver_(from, to, std::move(msg));
    return;
  }
  if (msg.size() > kMaxFrame) {
    note_send_error();
    return;
  }
  if (stopping_.load(std::memory_order_acquire) || loops_.empty()) {
    note_send_error();
    return;
  }
  // Frame on the caller's thread (one copy), then hand to the owning loop.
  Bytes frame = make_frame(from, to, msg);
  Loop& loop = loop_for(to);
  loop_post(loop, [this, &loop, to, frame = std::move(frame)]() mutable {
    loop_send(loop, to, std::move(frame));
  });
}

void SocketTransport::loop_send(Loop& loop, NodeId to, Bytes frame) {
  OutState& out = loop.outs[to];
  if (out.fd >= 0) {
    auto it = loop.conns.find(out.fd);
    if (it != loop.conns.end()) {
      Conn& c = *it->second;
      if (c.outq_bytes + frame.size() > kMaxOutqBytes) {
        note_send_error();  // dest not draining: drop, do not buffer forever
        return;
      }
      c.outq_bytes += frame.size();
      c.outq.push_back(std::move(frame));
      if (!c.connecting) flush_writes(loop, out.fd);
      return;
    }
    out.fd = -1;  // stale (connection died); fall through to reconnect
  }
  if (std::chrono::steady_clock::now() < out.next_attempt) {
    note_send_error();  // backoff gate closed: drop instead of connect-spam
    return;
  }
  const Peer& peer = peers_.find(to)->second;
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    note_send_error();
    arm_backoff(loop, out);
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.ip.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    note_send_error();
    arm_backoff(loop, out);
    return;
  }
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    note_send_error();
    arm_backoff(loop, out);
    return;
  }
  set_nodelay(fd);
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->outbound = true;
  conn->dest = to;
  conn->connecting = (rc != 0);  // EINPROGRESS: resolved by EPOLLOUT
  conn->outq_bytes = frame.size();
  conn->outq.push_back(std::move(frame));
  conn->want_write = conn->connecting;
  epoll_event ev{};
  ev.events = EPOLLIN | (conn->connecting ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  if (::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    note_send_error();
    arm_backoff(loop, out);
    return;
  }
  const bool connected = !conn->connecting;
  out.fd = fd;
  loop.conns.emplace(fd, std::move(conn));
  if (connected) {
    out.failures = 0;
    flush_writes(loop, fd);
  }
}

}  // namespace scab::rt
