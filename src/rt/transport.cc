#include "rt/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

namespace scab::rt {

namespace {

// Reads exactly `len` bytes; false on EOF/error.  EINTR (a signal landing
// mid-recv) and short reads both retry — either would previously tear down
// the connection and silently strand a frame.
bool read_full(int fd, uint8_t* buf, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

// Gathered write of header + payload in (ideally) one syscall.  Short
// writes and EINTR advance through the iovec instead of tearing down the
// connection, delivering every byte or failing.
bool writev_full(int fd, const uint8_t* hdr, std::size_t hdr_len,
                 const uint8_t* payload, std::size_t payload_len) {
  iovec iov[2];
  iov[0].iov_base = const_cast<uint8_t*>(hdr);
  iov[0].iov_len = hdr_len;
  iov[1].iov_base = const_cast<uint8_t*>(payload);
  iov[1].iov_len = payload_len;
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = 2;
  std::size_t remaining = hdr_len + payload_len;
  while (remaining > 0) {
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    std::size_t done = static_cast<std::size_t>(n);
    remaining -= done;
    // Advance the iovec past the bytes the kernel took.
    while (done > 0 && msg.msg_iovlen > 0) {
      iovec& v = msg.msg_iov[0];
      if (done < v.iov_len) {
        v.iov_base = static_cast<uint8_t*>(v.iov_base) + done;
        v.iov_len -= done;
        done = 0;
      } else {
        done -= v.iov_len;
        ++msg.msg_iov;
        --msg.msg_iovlen;
      }
    }
  }
  return true;
}

// Reconnect backoff: base 10 ms, doubling per consecutive failure, capped
// at 10 ms << 6 = 640 ms.  Jitter desynchronizes a cluster reconnecting to
// the same recovered peer.
constexpr auto kReconnectBase = std::chrono::milliseconds(10);
constexpr uint32_t kMaxBackoffShift = 6;

void put_u32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
uint32_t get_u32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

// Sanity cap so a corrupt length prefix cannot trigger a huge allocation.
constexpr uint32_t kMaxFrame = 64u << 20;

}  // namespace

SocketTransport::SocketTransport(uint16_t listen_port,
                                 std::map<NodeId, Peer> peers,
                                 uint64_t jitter_seed,
                                 const std::string& bind_ip)
    : peers_(std::move(peers)),
      jitter_state_((jitter_seed * 0x9e3779b97f4a7c15ULL +
                     0x2545f4914f6cdd1dULL) |
                    1) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, bind_ip.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  addr.sin_port = htons(listen_port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
}

SocketTransport::~SocketTransport() { stop(); }

void SocketTransport::start() {
  if (!ok() || started_) return;
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SocketTransport::stop() {
  int listen_fd = -1;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return;
    stopping_ = true;
    listen_fd = listen_fd_;
    for (auto& [id, out] : conns_) {
      if (out.fd >= 0) {
        ::shutdown(out.fd, SHUT_RDWR);
        ::close(out.fd);
      }
    }
    conns_.clear();
    // Unblock readers parked in recv on connections whose far end is still
    // alive (remote peers that outlive this process).  shutdown only — the
    // owning read_loop erases the fd from this set and closes it.
    for (int fd : inbound_fds_) ::shutdown(fd, SHUT_RDWR);
    readers.swap(reader_threads_);
  }
  // shutdown(2) unblocks accept(2); the close (and the listen_fd_ reset)
  // waits until the accept thread has joined so the fd number cannot be
  // recycled under a still-blocked accept.
  if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
  if (listen_fd >= 0) {
    ::close(listen_fd);
    std::lock_guard<std::mutex> lk(mu_);
    listen_fd_ = -1;
  }
}

SocketTransport::AcceptAction SocketTransport::classify_accept_error(int err) {
  switch (err) {
    case EINTR:         // signal landed mid-accept (SIGUSR1 metrics dumps!)
    case ECONNABORTED:  // peer reset while queued in the backlog
#ifdef EPROTO
    case EPROTO:        // ditto, reported as a protocol error on some stacks
#endif
      return AcceptAction::kRetry;
    // Resource exhaustion and anything unexpected: sleep first, so a
    // persistent condition (fd limit under a connection storm) throttles
    // to a slow retry loop instead of spinning a core.
    default:
      return AcceptAction::kRetrySleep;
  }
}

void SocketTransport::accept_loop() {
  // listen_fd_ is stable for this thread's whole lifetime: stop() only
  // shuts the socket down (unblocking accept) and defers close/reset until
  // after this thread joins.  Snapshot once to keep the reads race-free.
  int listen_fd;
  {
    std::lock_guard<std::mutex> lk(mu_);
    listen_fd = listen_fd_;
  }
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;
      {
        // stop() closed the listen socket — the ONLY way out of this loop.
        // Any other failure (EINTR, ECONNABORTED, EMFILE, ...) is survived:
        // returning here used to kill the accept thread forever, leaving
        // the node unable to receive new connections for the rest of its
        // life.
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_) return;
      }
      note_accept_error();
      if (classify_accept_error(err) == AcceptAction::kRetrySleep) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      continue;
    }
    // Nagle stalls the small length-prefixed protocol frames (~40 ms
    // latency steps); disable it on accepted sockets just as connect_to
    // does on outbound ones.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    inbound_fds_.insert(fd);
    reader_threads_.emplace_back([this, fd] { read_loop(fd); });
  }
}

void SocketTransport::read_loop(int fd) {
  for (;;) {
    uint8_t header[12];
    if (!read_full(fd, header, sizeof(header))) break;
    const uint32_t len = get_u32(header);
    const NodeId from = get_u32(header + 4);
    const NodeId to = get_u32(header + 8);
    if (len > kMaxFrame) break;
    Bytes payload(len);
    if (len > 0 && !read_full(fd, payload.data(), len)) break;
    DeliverFn deliver;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) break;
      deliver = deliver_;
    }
    if (deliver) deliver(from, to, std::move(payload));
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    inbound_fds_.erase(fd);
  }
  ::close(fd);
}

int SocketTransport::connect_to(const Peer& peer) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.ip.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void SocketTransport::note_send_error() {
  send_errors_.fetch_add(1, std::memory_order_relaxed);
  if (send_errors_counter_) send_errors_counter_->inc();
}

void SocketTransport::note_accept_error() {
  accept_errors_.fetch_add(1, std::memory_order_relaxed);
  if (accept_errors_counter_) accept_errors_counter_->inc();
}

void SocketTransport::arm_backoff(OutState& out) {
  const uint32_t shift = std::min(out.failures, kMaxBackoffShift);
  auto delay = kReconnectBase * (uint64_t{1} << shift);
  jitter_state_ ^= jitter_state_ << 13;
  jitter_state_ ^= jitter_state_ >> 7;
  jitter_state_ ^= jitter_state_ << 17;
  delay += std::chrono::milliseconds(
      jitter_state_ % static_cast<uint64_t>(delay.count() / 4 + 1));
  out.next_attempt = std::chrono::steady_clock::now() + delay;
  ++out.failures;
}

void SocketTransport::send(NodeId from, NodeId to, Bytes msg) {
  const auto peer = peers_.find(to);
  if (peer == peers_.end()) {
    // Not in the peer table: a node co-located in this process.
    if (deliver_) deliver_(from, to, std::move(msg));
    return;
  }
  // Serialize per-destination writes under the connection lock: frames must
  // not interleave on the wire.
  std::lock_guard<std::mutex> lk(mu_);
  if (stopping_) return;
  OutState& out = conns_[to];
  if (out.fd < 0) {
    if (out.failures > 0 &&
        std::chrono::steady_clock::now() < out.next_attempt) {
      // Backoff gate closed: drop instead of eating a connect() timeout on
      // every send to a dead peer.  The protocol layer retransmits.
      note_send_error();
      return;
    }
    out.fd = connect_to(peer->second);
    if (out.fd < 0) {
      note_send_error();
      arm_backoff(out);
      return;
    }
    out.failures = 0;
  }
  uint8_t header[12];
  put_u32(header, static_cast<uint32_t>(msg.size()));
  put_u32(header + 4, from);
  put_u32(header + 8, to);
  if (!writev_full(out.fd, header, sizeof(header), msg.data(), msg.size())) {
    ::close(out.fd);
    out.fd = -1;
    note_send_error();
    arm_backoff(out);
  }
}

}  // namespace scab::rt
