#include "sim/network.h"

namespace scab::sim {

NetworkProfile NetworkProfile::lan() {
  // "100 MB bandwidth and 0.1 ms latency".  The 0.1 ms is split as the
  // one-way propagation delay of the testbed switch fabric.
  NetworkProfile p;
  p.link.latency = 100 * kMicrosecond / 2;  // 0.05 ms one-way
  p.link.bandwidth_bps = 100ull * 1000 * 1000;
  p.link.jitter = 2 * kMicrosecond;
  return p;
}

NetworkProfile NetworkProfile::wan() {
  // "1 MB bandwidth and 120 ms latency" (one-way ~60 ms).
  NetworkProfile p;
  p.link.latency = 120 * kMillisecond / 2;
  p.link.bandwidth_bps = 1ull * 1000 * 1000;
  p.link.jitter = 500 * kMicrosecond;
  return p;
}

NetworkProfile NetworkProfile::ideal() {
  // A 1 us floor keeps virtual time advancing: with a literal zero-latency
  // network a closed-loop client could complete infinitely many operations
  // at one instant and the simulation would never progress.
  NetworkProfile p;
  p.link.latency = kMicrosecond;
  return p;
}

std::optional<Bytes> FaultPlan::apply(NodeId from, NodeId to, BytesView msg,
                                      DropReason* reason) const {
  if (reason) *reason = DropReason::kNone;
  if (crashed_.contains(from) || crashed_.contains(to)) {
    if (reason) *reason = DropReason::kCrash;
    return std::nullopt;
  }
  if (cut_.contains(key(from, to))) {
    if (reason) *reason = DropReason::kCut;
    return std::nullopt;
  }
  if (tamper_) {
    auto out = tamper_(from, to, msg);
    if (!out && reason) *reason = DropReason::kTamper;
    return out;
  }
  return Bytes(msg.begin(), msg.end());
}

Network::Network(Simulator& sim, NetworkProfile profile, uint64_t jitter_seed,
                 obs::MetricsRegistry* metrics)
    : sim_(sim),
      profile_(profile),
      jitter_state_((jitter_seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL) | 1),
      metrics_(metrics ? *metrics : obs::MetricsRegistry::inert()) {
  m_.sent = &metrics_.counter("net.messages_sent");
  m_.bytes = &metrics_.counter("net.bytes_sent");
  m_.delivered = &metrics_.counter("net.messages_delivered");
  m_.drops_crash = &metrics_.counter("net.drops.crash");
  m_.drops_cut = &metrics_.counter("net.drops.cut");
  m_.drops_tamper = &metrics_.counter("net.drops.tamper");
  m_.egress_wait_ns = &metrics_.histogram("net.egress.wait_ns");
}

obs::Counter& Network::egress_bytes_counter(NodeId from) {
  auto it = egress_bytes_.find(from);
  if (it == egress_bytes_.end()) {
    it = egress_bytes_
             .emplace(from, &metrics_.counter("net.egress.bytes." +
                                              std::to_string(from)))
             .first;
  }
  return *it->second;
}

void Network::attach(Node* node) { nodes_[node->id()] = node; }

void Network::detach(NodeId id) { nodes_.erase(id); }

void Network::send(NodeId from, NodeId to, Bytes msg) {
  ++messages_sent_;
  bytes_sent_ += msg.size();
  m_.sent->inc();
  m_.bytes->inc(msg.size());
  egress_bytes_counter(from).inc(msg.size());

  if (!nodes_.contains(to)) return;

  DropReason reason = DropReason::kNone;
  auto shaped = faults_.apply(from, to, msg, &reason);
  if (!shaped) {
    switch (reason) {
      case DropReason::kCrash:
        m_.drops_crash->inc();
        break;
      case DropReason::kCut:
        m_.drops_cut->inc();
        break;
      case DropReason::kTamper:
        m_.drops_tamper->inc();
        break;
      case DropReason::kNone:
        break;
    }
    return;
  }

  // Departure: after the sender finishes the CPU work charged so far.
  SimTime depart = sim_.now();
  if (auto src = nodes_.find(from); src != nodes_.end()) {
    depart = src->second->ready_at();
  }

  // NIC serialization (bandwidth): every destination shares the sender's
  // single egress pipe, as on the paper's one-NIC testbed machines — this
  // is what caps a primary that must send n-1 copies of each batch.
  SimTime tx = 0;
  if (profile_.link.bandwidth_bps > 0) {
    tx = static_cast<SimTime>(msg.size()) * kSecond / profile_.link.bandwidth_bps;
  }
  SimTime& free_at = egress_free_at_[from];
  const SimTime start_tx = std::max(depart, free_at);
  m_.egress_wait_ns->record(start_tx - depart);
  free_at = start_tx + tx;

  // Deterministic jitter (xorshift; independent of protocol randomness).
  SimTime jitter = 0;
  if (profile_.link.jitter > 0) {
    jitter_state_ ^= jitter_state_ << 13;
    jitter_state_ ^= jitter_state_ >> 7;
    jitter_state_ ^= jitter_state_ << 17;
    jitter = jitter_state_ % profile_.link.jitter;
  }

  const SimTime arrival =
      free_at + profile_.link.latency + jitter + faults_.extra_delay(from, to);
  deliver(from, to, std::move(*shaped), arrival);
}

void Network::broadcast(NodeId from, const Bytes& msg,
                        const std::function<bool(NodeId)>& to_filter) {
  // Deterministic order: ascending id.
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, _] : nodes_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (NodeId id : ids) {
    if (id == from) continue;
    if (to_filter && !to_filter(id)) continue;
    send(from, id, msg);
  }
}

void Network::deliver(NodeId from, NodeId to, Bytes msg, SimTime arrival) {
  sim_.schedule_at(arrival, [this, from, to, msg = std::move(msg)]() mutable {
    auto it = nodes_.find(to);
    if (it == nodes_.end()) return;  // detached/restarted while in flight
    Node* dst = it->second;
    if (faults_.is_crashed(to)) {  // crashed while in flight
      m_.drops_crash->inc();
      return;
    }
    // The receiver is a sequential processor: if it is still busy with
    // earlier work, requeue this delivery for when it frees up.  busy_until
    // only ever advances, so this converges.
    const SimTime start = dst->ready_at();
    if (start > sim_.now()) {
      deliver(from, to, std::move(msg), start);
      return;
    }
    ++messages_delivered_;
    m_.delivered->inc();
    dst->on_message(from, msg);
  });
}

}  // namespace scab::sim
