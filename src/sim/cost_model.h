// Compatibility shim: the cost model moved to src/host/cost_model.h when
// the host abstraction was extracted (it is runtime policy, not simulator
// mechanics).  Simulator-layer code keeps spelling sim::Op / sim::CostModel;
// both names alias the host types.
#pragma once

#include "host/cost_model.h"

namespace scab::sim {

using host::CostModel;
using host::kOpCount;
using host::Op;

}  // namespace scab::sim
