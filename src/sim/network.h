// Simulated message-passing network with latency + bandwidth queueing,
// sequential per-node CPU, and declarative fault injection.
//
// Model:
//  * Every link has a propagation latency; each NODE has one egress pipe
//    (single NIC, as on the paper's testbed) whose bandwidth serializes all
//    of its outgoing messages — this is what makes the WAN profile (1 MB/s)
//    throttle throughput exactly as in the paper's Fig. 5, and what caps a
//    primary that must send n-1 copies of every batch.
//  * Every node is a sequential processor: a handler starts at
//    max(arrival, busy_until) and charges CPU cost through charge(); sends
//    issued inside a handler depart when the charged work completes.
//  * Faults are injected at the network boundary: crashed nodes, dropped
//    links, and an arbitrary filter/tamper hook used by the Byzantine
//    tests ("corrupt the decryption share of replica 2").
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/bytes.h"
#include "obs/metrics.h"
#include "sim/cost_model.h"
#include "sim/simulator.h"

namespace scab::sim {

using NodeId = uint32_t;

class Network;

/// Base class for simulated processes (replicas, clients).
class Node {
 public:
  Node(Simulator& sim, NodeId id) : sim_(sim), id_(id) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }

  /// Message delivery callback; invoked when this node's sequential
  /// processor picks the message up.
  virtual void on_message(NodeId from, BytesView msg) = 0;

  /// Charges CPU time for work done inside the current handler. The node's
  /// processor stays busy accordingly and subsequent sends depart later.
  void charge(SimTime cost) { busy_until_ = std::max(busy_until_, sim_.now()) + cost; }
  void charge(const CostModel& m, Op op, std::size_t bytes = 0) {
    charge(m.cost(op, bytes));
  }

  /// The virtual time at which work charged so far completes.
  SimTime ready_at() const { return std::max(busy_until_, sim_.now()); }

  Simulator& sim() const { return sim_; }

 private:
  friend class Network;
  Simulator& sim_;
  NodeId id_;
  SimTime busy_until_ = 0;
};

/// Per-link shaping parameters.
struct LinkProfile {
  SimTime latency = 0;           // one-way propagation delay, ns
  uint64_t bandwidth_bps = 0;    // bytes per second; 0 = infinite
  SimTime jitter = 0;            // uniform extra delay in [0, jitter)
};

/// The two settings of the paper's §VI-B plus an ideal profile for tests.
struct NetworkProfile {
  LinkProfile link;

  /// "a LAN setting with 100 MB bandwidth and 0.1 ms latency"
  static NetworkProfile lan();
  /// "a WAN setting with 1 MB bandwidth and 120 ms latency"
  static NetworkProfile wan();
  /// Near-zero latency (1 us floor), infinite bandwidth: unit tests where
  /// only ordering matters.  A literal zero-latency profile would let
  /// closed loops complete unboundedly much work at a single instant.
  static NetworkProfile ideal();
};

/// Why FaultPlan::apply dropped a message — attributed to metrics so tests
/// can assert "the partition dropped exactly these, nothing else did".
enum class DropReason : uint8_t {
  kNone = 0,   // delivered (possibly tampered in place)
  kCrash,      // sender or receiver crashed
  kCut,        // directed link cut
  kTamper,     // tamper hook returned nullopt
};

/// Declarative fault injection, applied on send.
class FaultPlan {
 public:
  /// Drops everything to and from `node` from this virtual time on.
  void crash(NodeId node) { crashed_.insert(node); }
  bool is_crashed(NodeId node) const { return crashed_.contains(node); }
  void recover(NodeId node) { crashed_.erase(node); }

  /// Drops messages on the directed link a -> b.
  void cut(NodeId from, NodeId to) { cut_.insert(key(from, to)); }
  void heal(NodeId from, NodeId to) { cut_.erase(key(from, to)); }
  /// Clears every cut and every per-link delay (crash flags stay).
  void heal_all() {
    cut_.clear();
    delays_.clear();
  }

  /// Adds `extra` ns of one-way delay on the directed link a -> b; 0
  /// removes the entry.  Applied by Network::send on top of the profile's
  /// latency, so delayed messages still obey per-link FIFO-ish shaping.
  void delay(NodeId from, NodeId to, SimTime extra) {
    if (extra == 0) {
      delays_.erase(key(from, to));
    } else {
      delays_[key(from, to)] = extra;
    }
  }
  void clear_delays() { delays_.clear(); }
  SimTime extra_delay(NodeId from, NodeId to) const {
    auto it = delays_.find(key(from, to));
    return it == delays_.end() ? 0 : it->second;
  }

  /// Arbitrary inspect/tamper hook: return std::nullopt to drop the
  /// message, or a (possibly modified) payload to deliver.  Runs after the
  /// crash/cut checks.
  using Tamper =
      std::function<std::optional<Bytes>(NodeId from, NodeId to, BytesView msg)>;
  void set_tamper(Tamper t) { tamper_ = std::move(t); }
  void clear_tamper() { tamper_ = nullptr; }

  /// Applies the plan; nullopt means "drop".  When `reason` is non-null it
  /// receives what dropped the message (kNone on delivery).
  std::optional<Bytes> apply(NodeId from, NodeId to, BytesView msg,
                             DropReason* reason = nullptr) const;

 private:
  static uint64_t key(NodeId a, NodeId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }
  std::unordered_set<NodeId> crashed_;
  std::unordered_set<uint64_t> cut_;
  std::unordered_map<uint64_t, SimTime> delays_;
  Tamper tamper_;
};

class Network {
 public:
  /// `metrics` (optional) receives "net.*" counters and the egress-wait
  /// histogram; pass the cluster-wide registry to see drop attribution.
  Network(Simulator& sim, NetworkProfile profile, uint64_t jitter_seed = 0,
          obs::MetricsRegistry* metrics = nullptr);

  void attach(Node* node);
  void detach(NodeId id);

  /// Sends `msg` from `from` to `to`.  Departure waits for the sender's
  /// charged CPU work; the link applies serialization + latency + jitter;
  /// the receiver's sequential processor then schedules on_message.
  void send(NodeId from, NodeId to, Bytes msg);

  /// Sends to every attached node except the sender (the broadcast used by
  /// reveal phases).  Self-delivery is the caller's job if wanted.
  void broadcast(NodeId from, const Bytes& msg,
                 const std::function<bool(NodeId)>& to_filter = nullptr);

  FaultPlan& faults() { return faults_; }
  const FaultPlan& faults() const { return faults_; }

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }

  Simulator& sim() const { return sim_; }

 private:
  // Keyed by NodeId (not Node*): the destination is re-resolved when the
  // delivery event fires, so a node detached (or replaced by a restart)
  // while messages are in flight just drops them instead of dangling.
  void deliver(NodeId from, NodeId to, Bytes msg, SimTime arrival);
  obs::Counter& egress_bytes_counter(NodeId from);

  Simulator& sim_;
  NetworkProfile profile_;
  FaultPlan faults_;
  std::unordered_map<NodeId, Node*> nodes_;
  std::unordered_map<NodeId, SimTime> egress_free_at_;
  uint64_t jitter_state_;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t messages_delivered_ = 0;

  obs::MetricsRegistry& metrics_;
  struct {
    obs::Counter* sent;
    obs::Counter* bytes;
    obs::Counter* delivered;
    obs::Counter* drops_crash;
    obs::Counter* drops_cut;
    obs::Counter* drops_tamper;
    obs::Histogram* egress_wait_ns;  // start_tx - depart: NIC queueing delay
  } m_;
  // Per-sender egress byte counters ("net.egress.bytes.<id>"), resolved
  // lazily on first send so only attached-and-active nodes appear.
  std::unordered_map<NodeId, obs::Counter*> egress_bytes_;
};

}  // namespace scab::sim
