#include "sim/cost_model.h"

namespace scab::sim {

CostModel CostModel::default_symmetric_era() {
  CostModel m;
  // Symmetric primitives: sub-microsecond fixed cost, linear in input.
  m.set(Op::kHash, {500, 3'000});
  m.set(Op::kMac, {900, 3'200});
  m.set(Op::kAeadSeal, {1'500, 9'000});
  m.set(Op::kAeadOpen, {1'500, 9'000});
  m.set(Op::kCommit, {900, 3'200});
  m.set(Op::kCommitOpen, {900, 3'200});
  m.set(Op::kShamirShare, {2'000, 20'000});
  m.set(Op::kShamirRec, {3'000, 25'000});
  // Threshold cryptography at a 1024-bit modulus: milliseconds.
  m.set(Op::kTdh2Encrypt, {8'000'000, 9'000});
  m.set(Op::kTdh2VerifyCt, {6'500'000, 0});
  m.set(Op::kTdh2ShareDec, {11'000'000, 0});
  m.set(Op::kTdh2VerifyShare, {6'500'000, 0});
  m.set(Op::kTdh2Combine, {3'500'000, 0});
  // Application execution: cheap.
  m.set(Op::kExecute, {1'000, 500});
  // Kernel/network-stack per-message cost (syscall + copies), absent from
  // an in-process measurement but very real on the paper's testbed.
  m.set(Op::kMsgOverhead, {12'000, 0});
  return m;
}

}  // namespace scab::sim
