// Deterministic discrete-event simulator.
//
// This replaces the paper's 15-machine DeterLab testbed (DESIGN.md §3).
// Events are ordered by (virtual time, insertion sequence), so every run
// with the same seed is bit-reproducible; there is no wall-clock anywhere
// in the simulation.  Virtual time is in nanoseconds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace scab::sim {

using SimTime = uint64_t;  // nanoseconds of virtual time

inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

class Simulator {
 public:
  /// Schedules `fn` at absolute virtual time `t` (>= now()).
  void schedule_at(SimTime t, std::function<void()> fn);
  /// Schedules `fn` `delay` nanoseconds from now.
  void schedule_after(SimTime delay, std::function<void()> fn);

  SimTime now() const { return now_; }

  /// Runs until the event queue drains. Returns the number of events
  /// processed by this call.
  uint64_t run();

  /// Runs events with time <= deadline; leaves later events queued and
  /// advances now() to the deadline.  Returns events processed.
  uint64_t run_until(SimTime deadline);

  /// Runs until `stop()` returns true (checked after each event) or the
  /// queue drains.  Returns true iff the predicate fired.
  bool run_while(const std::function<bool()>& stop);

  bool idle() const { return queue_.empty(); }
  uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& rhs) const {
      return std::tie(time, seq) > std::tie(rhs.time, rhs.seq);
    }
  };

  void pop_and_run();

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
};

}  // namespace scab::sim
