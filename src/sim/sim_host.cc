#include "sim/sim_host.h"

namespace scab::sim {

void SimHost::bind(host::NodeId id, host::Node* endpoint) {
  auto adapter = std::make_unique<Adapter>(net_.sim(), id, endpoint);
  net_.attach(adapter.get());
  adapters_[id] = std::move(adapter);
  ++bind_epochs_[id];
}

void SimHost::unbind(host::NodeId id) {
  auto it = adapters_.find(id);
  if (it == adapters_.end()) return;
  net_.detach(id);
  adapters_.erase(it);
  ++bind_epochs_[id];  // kill timers armed by the departing endpoint
}

void SimHost::charge(host::NodeId node, host::Time cost) {
  auto it = adapters_.find(node);
  if (it != adapters_.end()) it->second->charge(cost);
}

}  // namespace scab::sim
