// SimHost: the discrete-event simulator as a host::Host implementation.
//
// Determinism contract: SimHost adds NO events, randomness, or reordering
// of its own — every call is a direct delegation to the pre-existing
// simulator primitives, in the same order the protocol code issues it:
//
//   now()       -> Simulator::now()              (virtual time)
//   schedule()  -> Simulator::schedule_after()   (same (time, seq) order)
//   send()      -> Network::send()               (same latency/bandwidth/
//                                                 fault pipeline)
//   post()      -> runs fn INLINE                (the caller already is the
//                                                 single event loop)
//   charge()    -> sim::Node::charge()           (virtual busy-time on the
//                                                 node's sequential CPU)
//
// so a protocol stack running on SimHost is bit-for-bit identical to the
// pre-refactor code that subclassed sim::Node directly.  Each bound
// endpoint gets an internal Adapter node attached to the Network; the
// adapter owns the busy_until_ bookkeeping that shapes message departure
// and delivery times.
//
// Node restart support: every bind bumps the node's epoch, and a scheduled
// timer only fires if its node's epoch is unchanged — so timers armed by a
// torn-down endpoint (watchdogs, reveal retries) die silently instead of
// running against freed state.  The guard adds no events and no RNG draws:
// event times, counts and ordering are untouched.
//
// fault_injector() delegates to the Network's FaultPlan — the runtime-
// agnostic host::FaultInjector surface is bit-identical to driving
// net().faults() directly.
#pragma once

#include <memory>
#include <unordered_map>

#include "host/host.h"
#include "sim/network.h"

namespace scab::sim {

class SimHost final : public host::Host {
 public:
  explicit SimHost(Network& net) : net_(net), faults_(net) {}

  host::Time now() const override { return net_.sim().now(); }

  void schedule(host::NodeId node, host::Time delay,
                std::function<void()> fn) override {
    // One global event loop: node affinity is automatic.  The epoch check
    // keeps a timer from outliving its endpoint across unbind/rebind.
    const uint64_t epoch = epoch_of(node);
    net_.sim().schedule_after(
        delay, [this, node, epoch, fn = std::move(fn)] {
          if (epoch_of(node) == epoch) fn();
        });
  }

  void post(host::NodeId node, std::function<void()> fn) override {
    (void)node;
    fn();  // the caller is the event loop; inline = the pre-refactor call
  }

  void send(host::NodeId from, host::NodeId to, Bytes msg) override {
    net_.send(from, to, std::move(msg));
  }

  void bind(host::NodeId id, host::Node* endpoint) override;
  void unbind(host::NodeId id) override;
  void charge(host::NodeId node, host::Time cost) override;

  host::FaultInjector* fault_injector() override { return &faults_; }

  /// Attaches (or replaces) durable storage for `id`.  The host owns it;
  /// it survives unbind/rebind, so a torn-down endpoint's replacement
  /// recovers from exactly what its predecessor persisted.  Pure data
  /// handoff: no events, no RNG — seeded runs stay bit-identical whether
  /// or not storage is attached (see determinism_test).
  void attach_storage(host::NodeId id,
                      std::unique_ptr<host::Storage> storage) {
    storage_[id] = std::move(storage);
  }
  host::Storage* storage(host::NodeId node) override {
    auto it = storage_.find(node);
    return it == storage_.end() ? nullptr : it->second.get();
  }

  Network& net() { return net_; }

 private:
  /// The sim::Node the Network sees for one bound endpoint: relays
  /// deliveries and carries the sequential-CPU busy time.
  class Adapter : public Node {
   public:
    Adapter(Simulator& sim, NodeId id, host::Node* endpoint)
        : Node(sim, id), endpoint_(endpoint) {}
    void on_message(NodeId from, BytesView msg) override {
      endpoint_->on_message(from, msg);
    }

   private:
    host::Node* endpoint_;
  };

  /// host::FaultInjector as a thin veneer over the Network's FaultPlan.
  class Faults final : public host::FaultInjector {
   public:
    explicit Faults(Network& net) : net_(net) {}
    void crash(host::NodeId node) override { net_.faults().crash(node); }
    void restart(host::NodeId node) override { net_.faults().recover(node); }
    bool is_crashed(host::NodeId node) const override {
      return net_.faults().is_crashed(node);
    }
    void cut(host::NodeId from, host::NodeId to) override {
      net_.faults().cut(from, to);
    }
    void heal(host::NodeId from, host::NodeId to) override {
      net_.faults().heal(from, to);
    }
    void heal_all() override { net_.faults().heal_all(); }
    void delay(host::NodeId from, host::NodeId to, host::Time extra) override {
      net_.faults().delay(from, to, extra);
    }
    void clear_delays() override { net_.faults().clear_delays(); }
    void set_tamper(Tamper t) override { net_.faults().set_tamper(std::move(t)); }
    void clear_tamper() override { net_.faults().clear_tamper(); }

   private:
    Network& net_;
  };

  uint64_t epoch_of(host::NodeId node) const {
    auto it = bind_epochs_.find(node);
    return it == bind_epochs_.end() ? 0 : it->second;
  }

  Network& net_;
  Faults faults_;
  std::unordered_map<host::NodeId, std::unique_ptr<Adapter>> adapters_;
  // Owned durable storage per node; deliberately NOT cleared on unbind.
  std::unordered_map<host::NodeId, std::unique_ptr<host::Storage>> storage_;
  // Bumped on every bind AND unbind, so timers from any earlier lifetime of
  // the id can never fire into a newer (or absent) endpoint.
  std::unordered_map<host::NodeId, uint64_t> bind_epochs_;
};

}  // namespace scab::sim
