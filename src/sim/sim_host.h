// SimHost: the discrete-event simulator as a host::Host implementation.
//
// Determinism contract: SimHost adds NO events, randomness, or reordering
// of its own — every call is a direct delegation to the pre-existing
// simulator primitives, in the same order the protocol code issues it:
//
//   now()       -> Simulator::now()              (virtual time)
//   schedule()  -> Simulator::schedule_after()   (same (time, seq) order)
//   send()      -> Network::send()               (same latency/bandwidth/
//                                                 fault pipeline)
//   post()      -> runs fn INLINE                (the caller already is the
//                                                 single event loop)
//   charge()    -> sim::Node::charge()           (virtual busy-time on the
//                                                 node's sequential CPU)
//
// so a protocol stack running on SimHost is bit-for-bit identical to the
// pre-refactor code that subclassed sim::Node directly.  Each bound
// endpoint gets an internal Adapter node attached to the Network; the
// adapter owns the busy_until_ bookkeeping that shapes message departure
// and delivery times.
#pragma once

#include <memory>
#include <unordered_map>

#include "host/host.h"
#include "sim/network.h"

namespace scab::sim {

class SimHost final : public host::Host {
 public:
  explicit SimHost(Network& net) : net_(net) {}

  host::Time now() const override { return net_.sim().now(); }

  void schedule(host::NodeId node, host::Time delay,
                std::function<void()> fn) override {
    (void)node;  // one global event loop: node affinity is automatic
    net_.sim().schedule_after(delay, std::move(fn));
  }

  void post(host::NodeId node, std::function<void()> fn) override {
    (void)node;
    fn();  // the caller is the event loop; inline = the pre-refactor call
  }

  void send(host::NodeId from, host::NodeId to, Bytes msg) override {
    net_.send(from, to, std::move(msg));
  }

  void bind(host::NodeId id, host::Node* endpoint) override;
  void unbind(host::NodeId id) override;
  void charge(host::NodeId node, host::Time cost) override;

  Network& net() { return net_; }

 private:
  /// The sim::Node the Network sees for one bound endpoint: relays
  /// deliveries and carries the sequential-CPU busy time.
  class Adapter : public Node {
   public:
    Adapter(Simulator& sim, NodeId id, host::Node* endpoint)
        : Node(sim, id), endpoint_(endpoint) {}
    void on_message(NodeId from, BytesView msg) override {
      endpoint_->on_message(from, msg);
    }

   private:
    host::Node* endpoint_;
  };

  Network& net_;
  std::unordered_map<host::NodeId, std::unique_ptr<Adapter>> adapters_;
};

}  // namespace scab::sim
