#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

namespace scab::sim {

void Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;  // never schedule into the past
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::schedule_after(SimTime delay, std::function<void()> fn) {
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::pop_and_run() {
  // Moving out of a priority_queue top requires a const_cast; the element
  // is popped immediately after, so the heap invariant is never observed
  // broken.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++processed_;
  ev.fn();
}

uint64_t Simulator::run() {
  const uint64_t start = processed_;
  while (!queue_.empty()) pop_and_run();
  return processed_ - start;
}

uint64_t Simulator::run_until(SimTime deadline) {
  const uint64_t start = processed_;
  while (!queue_.empty() && queue_.top().time <= deadline) pop_and_run();
  if (now_ < deadline) now_ = deadline;
  return processed_ - start;
}

bool Simulator::run_while(const std::function<bool()>& stop) {
  if (stop()) return true;
  while (!queue_.empty()) {
    pop_and_run();
    if (stop()) return true;
  }
  return false;
}

}  // namespace scab::sim
