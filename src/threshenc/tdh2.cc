#include "threshenc/tdh2.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "common/serialize.h"
#include "crypto/sha256.h"

namespace scab::threshenc {

using crypto::Bignum;
using crypto::Drbg;
using crypto::ModGroup;

namespace {

// H1: group element -> kTdh2MessageSize-byte pad.
Bytes hash_pad(const ModGroup& group, const Bignum& elem) {
  return crypto::sha256_tuple(
      {to_bytes("tdh2.h1"), elem.to_bytes_be(group.element_bytes())});
}

// Truncates a 32-byte transcript hash to the 128-bit challenge (header:
// kTdh2ChallengeBytes).  NOT reduced mod q: prover and verifier use the
// same integer, and all bases have order q, so reduction is implicit in
// the group.
Bignum truncate_challenge(const Bytes& digest) {
  return Bignum::from_bytes_be(BytesView(digest.data(), kTdh2ChallengeBytes));
}

// H2: Fiat–Shamir challenge binding ciphertext body AND label.
Bignum hash_challenge(const ModGroup& group, BytesView c, BytesView label,
                      const Bignum& u, const Bignum& w, const Bignum& ubar,
                      const Bignum& wbar) {
  const std::size_t eb = group.element_bytes();
  return truncate_challenge(crypto::sha256_tuple(
      {to_bytes("tdh2.h2"), c, label, u.to_bytes_be(eb), w.to_bytes_be(eb),
       ubar.to_bytes_be(eb), wbar.to_bytes_be(eb)}));
}

// H4: challenge for the share-decryption equality-of-dlog proof.
Bignum hash_share_challenge(const ModGroup& group, uint32_t index,
                            const Bignum& u, const Bignum& u_i,
                            const Bignum& u_hat, const Bignum& h_hat) {
  const std::size_t eb = group.element_bytes();
  uint8_t idx[4];
  for (int i = 0; i < 4; ++i) idx[i] = static_cast<uint8_t>(index >> (8 * i));
  return truncate_challenge(crypto::sha256_tuple(
      {to_bytes("tdh2.h4"), BytesView(idx, 4), u.to_bytes_be(eb),
       u_i.to_bytes_be(eb), u_hat.to_bytes_be(eb), h_hat.to_bytes_be(eb)}));
}

// A fresh 128-bit nonzero coefficient for the small-exponent batch test.
// Drawn from the VERIFIER's DRBG: the prover never sees (or influences)
// the z's, which is what the Bellare–Garay–Rabin soundness argument needs.
Bignum batch_coeff(Drbg& rng) {
  for (;;) {
    Bignum z = Bignum::from_bytes_be(rng.generate(kTdh2ChallengeBytes));
    if (!z.is_zero()) return z;
  }
}

// Lagrange coefficients lambda_j at 0 for every j in `indices`, mod q.
// Numerators and denominators are products of small index differences
// (sign tracked separately so the operands stay one limb), and all
// denominators share ONE modular inversion via Montgomery's batch-inversion
// trick — per-coefficient Fermat inversions used to dominate combination.
std::vector<Bignum> lagrange_at_zero_all(const ModGroup& group,
                                         std::span<const uint32_t> indices) {
  const Bignum& q = group.q();
  const std::size_t t = indices.size();
  std::vector<Bignum> num(t), den(t);
  std::vector<bool> negative(t, false);
  for (std::size_t i = 0; i < t; ++i) {
    const uint32_t j = indices[i];
    num[i] = Bignum(1);
    den[i] = Bignum(1);
    for (uint32_t k : indices) {
      if (k == j) continue;
      num[i] = crypto::mod_mul(num[i], Bignum(k), q);
      const uint32_t diff = k > j ? k - j : j - k;
      den[i] = crypto::mod_mul(den[i], Bignum(diff), q);
      if (k < j) negative[i] = !negative[i];
    }
  }
  // prefix[i] = den[0]·...·den[i-1]; invert only the full product.
  std::vector<Bignum> prefix(t + 1);
  prefix[0] = Bignum(1);
  for (std::size_t i = 0; i < t; ++i) {
    prefix[i + 1] = crypto::mod_mul(prefix[i], den[i], q);
  }
  Bignum inv_suffix = group.inv_mod_q(prefix[t]);
  std::vector<Bignum> out(t);
  for (std::size_t i = t; i-- > 0;) {
    const Bignum inv_i = crypto::mod_mul(inv_suffix, prefix[i], q);
    inv_suffix = crypto::mod_mul(inv_suffix, den[i], q);
    Bignum lambda = crypto::mod_mul(num[i], inv_i, q);
    if (negative[i] && !lambda.is_zero()) lambda = q - lambda;
    out[i] = std::move(lambda);
  }
  return out;
}

}  // namespace

Bytes Tdh2Ciphertext::serialize(const ModGroup& group) const {
  Writer wr;
  wr.bytes(c);
  const std::size_t eb = group.element_bytes();
  wr.raw(u.to_bytes_be(eb));
  wr.raw(ubar.to_bytes_be(eb));
  wr.raw(w.to_bytes_be(eb));
  wr.raw(wbar.to_bytes_be(eb));
  wr.raw(f.to_bytes_be(group.exponent_bytes()));
  return std::move(wr).take();
}

std::optional<Tdh2Ciphertext> Tdh2Ciphertext::parse(const ModGroup& group,
                                                    BytesView wire) {
  Reader r(wire);
  Tdh2Ciphertext ct;
  ct.c = r.bytes();
  const std::size_t eb = group.element_bytes();
  ct.u = Bignum::from_bytes_be(r.raw(eb));
  ct.ubar = Bignum::from_bytes_be(r.raw(eb));
  ct.w = Bignum::from_bytes_be(r.raw(eb));
  ct.wbar = Bignum::from_bytes_be(r.raw(eb));
  ct.f = Bignum::from_bytes_be(r.raw(group.exponent_bytes()));
  if (!r.done()) return std::nullopt;
  // Parse-time bounds: a truncated or out-of-range wire must never reach
  // the group operations (the proof check would reject it anyway, but only
  // after paying several exponentiations).
  if (ct.c.size() != kTdh2MessageSize) return std::nullopt;
  if (ct.u.is_zero() || ct.u >= group.p()) return std::nullopt;
  if (ct.ubar.is_zero() || ct.ubar >= group.p()) return std::nullopt;
  if (ct.w.is_zero() || ct.w >= group.p()) return std::nullopt;
  if (ct.wbar.is_zero() || ct.wbar >= group.p()) return std::nullopt;
  if (ct.f >= group.q()) return std::nullopt;
  return ct;
}

Bytes Tdh2DecryptionShare::serialize(const ModGroup& group) const {
  Writer w;
  w.u32(index);
  const std::size_t eb = group.element_bytes();
  w.raw(u_i.to_bytes_be(eb));
  w.raw(u_hat.to_bytes_be(eb));
  w.raw(h_hat.to_bytes_be(eb));
  w.raw(f_i.to_bytes_be(group.exponent_bytes()));
  return std::move(w).take();
}

std::optional<Tdh2DecryptionShare> Tdh2DecryptionShare::parse(
    const ModGroup& group, BytesView wire) {
  Reader r(wire);
  Tdh2DecryptionShare s;
  s.index = r.u32();
  const std::size_t eb = group.element_bytes();
  s.u_i = Bignum::from_bytes_be(r.raw(eb));
  s.u_hat = Bignum::from_bytes_be(r.raw(eb));
  s.h_hat = Bignum::from_bytes_be(r.raw(eb));
  s.f_i = Bignum::from_bytes_be(r.raw(group.exponent_bytes()));
  if (!r.done()) return std::nullopt;
  // Same parse-time bounds as Tdh2Ciphertext::parse.
  if (s.index == 0) return std::nullopt;
  if (s.u_i.is_zero() || s.u_i >= group.p()) return std::nullopt;
  if (s.u_hat.is_zero() || s.u_hat >= group.p()) return std::nullopt;
  if (s.h_hat.is_zero() || s.h_hat >= group.p()) return std::nullopt;
  if (s.f_i >= group.q()) return std::nullopt;
  return s;
}

Tdh2KeyMaterial tdh2_keygen(const ModGroup& group, uint32_t threshold,
                            uint32_t servers, Drbg& rng) {
  if (threshold == 0 || threshold > servers) {
    throw std::invalid_argument("tdh2_keygen: need 1 <= t <= n");
  }
  // Random degree-(t-1) polynomial F over Z_q with F(0) = x.
  std::vector<Bignum> coeffs(threshold);
  for (auto& c : coeffs) c = group.random_exponent(rng);
  const Bignum& x = coeffs[0];

  auto eval = [&](uint32_t at) {
    const Bignum point(at);
    Bignum acc;
    // Horner, from the top coefficient down.
    for (std::size_t i = coeffs.size(); i-- > 0;) {
      acc = crypto::mod_add(crypto::mod_mul(acc, point, group.q()), coeffs[i],
                            group.q());
    }
    return acc;
  };

  Tdh2KeyMaterial out;
  out.pk.group = group;
  out.pk.h = group.exp(group.g(), x);
  // h is the third hot base (every encryption computes h^r): give it a
  // cached fixed-base table alongside g and gbar.
  out.pk.group.cache_fixed_base(out.pk.h);
  out.pk.threshold = threshold;
  out.pk.servers = servers;
  out.pk.verification_keys.reserve(servers);
  out.shares.reserve(servers);
  const crypto::Montgomery& mont = group.mont();
  auto vk_tables = std::make_shared<std::vector<crypto::Montgomery::Table>>();
  vk_tables->reserve(servers);
  for (uint32_t i = 1; i <= servers; ++i) {
    Bignum x_i = eval(i);
    Bignum vk_i = group.exp(group.g(), x_i);
    vk_tables->push_back(mont.make_table(mont.to_mont(vk_i)));
    out.pk.verification_keys.push_back(std::move(vk_i));
    out.shares.push_back(Tdh2KeyShare{i, std::move(x_i)});
  }
  out.pk.vk_tables = std::move(vk_tables);
  out.pk.lagrange_cache = std::make_shared<Tdh2LagrangeCache>();
  return out;
}

Tdh2Ciphertext tdh2_encrypt(const Tdh2PublicKey& pk, BytesView message,
                            BytesView label, Drbg& rng) {
  if (message.size() != kTdh2MessageSize) {
    throw std::invalid_argument("tdh2_encrypt: message must be 32 bytes");
  }
  const ModGroup& grp = pk.group;
  const Bignum r = grp.random_exponent(rng);
  const Bignum s = grp.random_exponent(rng);

  Tdh2Ciphertext ct;
  ct.c = hash_pad(grp, grp.exp(pk.h, r));
  xor_inplace(ct.c, message);
  ct.u = grp.exp(grp.g(), r);
  ct.w = grp.exp(grp.g(), s);
  ct.ubar = grp.exp(grp.gbar(), r);
  ct.wbar = grp.exp(grp.gbar(), s);
  const Bignum e = hash_challenge(grp, ct.c, label, ct.u, ct.w, ct.ubar, ct.wbar);
  ct.f = crypto::mod_add(s, crypto::mod_mul(r, e, grp.q()), grp.q());
  return ct;
}

bool tdh2_verify_ciphertext(const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct,
                            BytesView label) {
  const ModGroup& grp = pk.group;
  if (ct.c.size() != kTdh2MessageSize) return false;
  if (!grp.is_element(ct.u) || !grp.is_element(ct.ubar) ||
      !grp.is_element(ct.w) || !grp.is_element(ct.wbar)) {
    return false;
  }
  if (ct.f >= grp.q()) return false;
  const Bignum e =
      hash_challenge(grp, ct.c, label, ct.u, ct.w, ct.ubar, ct.wbar);
  // g^f ?= w·u^e and ḡ^f ?= w̄·ū^e.  The full-width exponent f lands on the
  // cached g/ḡ tables; the e side is only 128 bits.
  if (grp.exp(grp.g(), ct.f) != grp.mul(ct.w, grp.exp(ct.u, e))) return false;
  return grp.exp(grp.gbar(), ct.f) == grp.mul(ct.wbar, grp.exp(ct.ubar, e));
}

std::optional<Tdh2DecryptionShare> tdh2_share_decrypt(
    const Tdh2PublicKey& pk, const Tdh2KeyShare& key, const Tdh2Ciphertext& ct,
    BytesView label, Drbg& rng) {
  if (!tdh2_verify_ciphertext(pk, ct, label)) return std::nullopt;
  return tdh2_share_decrypt_preverified(pk, key, ct, rng);
}

Tdh2DecryptionShare tdh2_share_decrypt_preverified(const Tdh2PublicKey& pk,
                                                   const Tdh2KeyShare& key,
                                                   const Tdh2Ciphertext& ct,
                                                   Drbg& rng) {
  const ModGroup& grp = pk.group;
  const crypto::Montgomery& mont = grp.mont();

  Tdh2DecryptionShare share;
  share.index = key.index;
  // Both u^{x_i} and the proof commitment u^{s_i} share one window table
  // for the (per-ciphertext) base u.
  const crypto::Montgomery::Table u_table = mont.make_table(mont.to_mont(ct.u));
  share.u_i = mont.from_mont(mont.exp(u_table, key.x));
  // NIZK proof of log_u(u_i) == log_g(h_i):
  const Bignum s_i = grp.random_exponent(rng);
  share.u_hat = mont.from_mont(mont.exp(u_table, s_i));
  share.h_hat = grp.exp(grp.g(), s_i);
  const Bignum e_i = hash_share_challenge(grp, key.index, ct.u, share.u_i,
                                          share.u_hat, share.h_hat);
  share.f_i = crypto::mod_add(s_i, crypto::mod_mul(key.x, e_i, grp.q()),
                              grp.q());
  return share;
}

bool tdh2_verify_share(const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct,
                       BytesView label, const Tdh2DecryptionShare& share) {
  (void)label;  // label validity is part of ciphertext verification
  const ModGroup& grp = pk.group;
  if (share.index == 0 || share.index > pk.servers) return false;
  if (!grp.is_element(share.u_i) || !grp.is_element(share.u_hat) ||
      !grp.is_element(share.h_hat)) {
    return false;
  }
  if (share.f_i >= grp.q()) return false;
  const Bignum e_i = hash_share_challenge(grp, share.index, ct.u, share.u_i,
                                          share.u_hat, share.h_hat);
  // Challenges are 128-bit integers; reduce once so the q-e subtraction in
  // exp_ratio is well-defined even in tiny test groups.
  const Bignum e_red = e_i % grp.q();
  // u^{f_i} ?= û·u_i^{e_i} — the per-ciphertext base u has no cached table,
  // so the joint-window ratio form is cheapest.
  if (grp.exp_ratio(ct.u, share.f_i, share.u_i, e_red) != share.u_hat) {
    return false;
  }
  // g^{f_i} ?= ĥ·h_i^{e_i} — g is table-cached and the verification key has
  // a keygen-built table (pk.vk_tables), so the direct form wins here.
  const crypto::Montgomery& mont = grp.mont();
  Bignum vk_pow;
  if (pk.vk_tables && share.index <= pk.vk_tables->size()) {
    vk_pow = mont.from_mont(mont.exp((*pk.vk_tables)[share.index - 1], e_red));
  } else {
    vk_pow = grp.exp(pk.vk(share.index), e_red);
  }
  return grp.exp(grp.g(), share.f_i) == grp.mul(share.h_hat, vk_pow);
}

Tdh2BatchVerdict tdh2_batch_verify_shares(
    const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct, BytesView label,
    std::span<const Tdh2DecryptionShare> shares, Drbg& rng) {
  Tdh2BatchVerdict out;
  out.valid.assign(shares.size(), 0);
  if (shares.empty()) return out;
  if (shares.size() == 1) {
    // A batch of one IS the single-share path — bit-for-bit, no DRBG draw.
    out.valid[0] = tdh2_verify_share(pk, ct, label, shares[0]) ? 1 : 0;
    return out;
  }
  const ModGroup& grp = pk.group;
  const Bignum& q = grp.q();

  // Structural prechecks mirror tdh2_verify_share exactly; failures are
  // excluded from the algebra with verdict 0 (the verdict the single path
  // gives them).  The subgroup membership checks (Jacobi — no modexp) are a
  // SOUNDNESS requirement of the linear combination, not hygiene: a forged
  // component of order 2 survives a random combination with probability
  // 1/2 per equation, so only order-q elements may enter the batch.
  std::vector<Bignum> e(shares.size());
  std::vector<std::size_t> live;
  live.reserve(shares.size());
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const Tdh2DecryptionShare& s = shares[i];
    if (s.index == 0 || s.index > pk.servers) continue;
    if (!grp.is_element(s.u_i) || !grp.is_element(s.u_hat) ||
        !grp.is_element(s.h_hat)) {
      continue;
    }
    if (s.f_i >= q) continue;
    e[i] = hash_share_challenge(grp, s.index, ct.u, s.u_i, s.u_hat, s.h_hat);
    live.push_back(i);
  }

  // The z-weighted product of the 2k per-share equations
  //   u^{f_i} = û_i·u_i^{e_i}   and   g^{f_i} = ĥ_i·h_i^{e_i}
  // with fresh 128-bit z_i, z'_i per evaluation:
  //   u^{Σ f_i·z_i} · g^{Σ f_i·z'_i}
  //     == Π u_i^{e_i·z_i} · û_i^{z_i} · h_i^{e_i·z'_i} · ĥ_i^{z'_i}.
  // The left side is two full-width fixed-cost exponentiations; every term
  // on the right has a ≤256-bit exponent, and the whole product is one
  // Straus/Pippenger multi-exponentiation — this is where the amortization
  // lives.
  auto equation_holds = [&](std::span<const std::size_t> idxs) {
    Bignum a_exp, b_exp;
    std::vector<Bignum> bases, exps;
    bases.reserve(4 * idxs.size());
    exps.reserve(4 * idxs.size());
    for (std::size_t i : idxs) {
      const Tdh2DecryptionShare& s = shares[i];
      const Bignum z = batch_coeff(rng);
      const Bignum zp = batch_coeff(rng);
      a_exp = crypto::mod_add(a_exp, crypto::mod_mul(s.f_i, z, q), q);
      b_exp = crypto::mod_add(b_exp, crypto::mod_mul(s.f_i, zp, q), q);
      bases.push_back(s.u_i);
      exps.push_back(crypto::mod_mul(e[i], z, q));
      bases.push_back(s.u_hat);
      exps.push_back(z % q);
      bases.push_back(pk.vk(s.index));
      exps.push_back(crypto::mod_mul(e[i], zp, q));
      bases.push_back(s.h_hat);
      exps.push_back(zp % q);
    }
    const Bignum lhs =
        grp.mul(grp.exp(ct.u, a_exp), grp.exp(grp.g(), b_exp));
    return lhs == grp.multi_exp(bases, exps);
  };

  // Whole batch first; on failure bisect with fresh coefficients, so every
  // Byzantine share is pinned to a leaf where plain tdh2_verify_share runs.
  std::function<void(std::span<const std::size_t>)> check =
      [&](std::span<const std::size_t> idxs) {
        if (idxs.empty()) return;
        if (idxs.size() == 1) {
          out.valid[idxs[0]] =
              tdh2_verify_share(pk, ct, label, shares[idxs[0]]) ? 1 : 0;
          return;
        }
        if (equation_holds(idxs)) {
          for (std::size_t i : idxs) out.valid[i] = 1;
          return;
        }
        ++out.bisection_splits;
        const std::size_t mid = idxs.size() / 2;
        check(idxs.subspan(0, mid));
        check(idxs.subspan(mid));
      };
  check(live);
  return out;
}

Tdh2BatchVerdict tdh2_batch_verify_ciphertexts(
    const Tdh2PublicKey& pk, std::span<const Tdh2Ciphertext> cts,
    std::span<const Bytes> labels, Drbg& rng) {
  if (cts.size() != labels.size()) {
    throw std::invalid_argument(
        "tdh2_batch_verify_ciphertexts: cts/labels size mismatch");
  }
  Tdh2BatchVerdict out;
  out.valid.assign(cts.size(), 0);
  if (cts.empty()) return out;
  if (cts.size() == 1) {
    out.valid[0] = tdh2_verify_ciphertext(pk, cts[0], labels[0]) ? 1 : 0;
    return out;
  }
  const ModGroup& grp = pk.group;
  const Bignum& q = grp.q();

  std::vector<Bignum> e(cts.size());
  std::vector<std::size_t> live;
  live.reserve(cts.size());
  for (std::size_t j = 0; j < cts.size(); ++j) {
    const Tdh2Ciphertext& ct = cts[j];
    if (ct.c.size() != kTdh2MessageSize) continue;
    if (!grp.is_element(ct.u) || !grp.is_element(ct.ubar) ||
        !grp.is_element(ct.w) || !grp.is_element(ct.wbar)) {
      continue;
    }
    if (ct.f >= q) continue;
    e[j] = hash_challenge(grp, ct.c, labels[j], ct.u, ct.w, ct.ubar, ct.wbar);
    live.push_back(j);
  }

  // z-weighted product of the 2k ciphertext equations
  //   g^{f_j} = w_j·u_j^{e_j}   and   ḡ^{f_j} = w̄_j·ū_j^{e_j}:
  //   g^{Σ f_j·z_j} · ḡ^{Σ f_j·z'_j}
  //     == Π u_j^{e_j·z_j} · w_j^{z_j} · ū_j^{e_j·z'_j} · w̄_j^{z'_j}.
  auto equation_holds = [&](std::span<const std::size_t> idxs) {
    Bignum a_exp, b_exp;
    std::vector<Bignum> bases, exps;
    bases.reserve(4 * idxs.size());
    exps.reserve(4 * idxs.size());
    for (std::size_t j : idxs) {
      const Tdh2Ciphertext& ct = cts[j];
      const Bignum z = batch_coeff(rng);
      const Bignum zp = batch_coeff(rng);
      a_exp = crypto::mod_add(a_exp, crypto::mod_mul(ct.f, z, q), q);
      b_exp = crypto::mod_add(b_exp, crypto::mod_mul(ct.f, zp, q), q);
      bases.push_back(ct.u);
      exps.push_back(crypto::mod_mul(e[j], z, q));
      bases.push_back(ct.w);
      exps.push_back(z % q);
      bases.push_back(ct.ubar);
      exps.push_back(crypto::mod_mul(e[j], zp, q));
      bases.push_back(ct.wbar);
      exps.push_back(zp % q);
    }
    const Bignum lhs =
        grp.mul(grp.exp(grp.g(), a_exp), grp.exp(grp.gbar(), b_exp));
    return lhs == grp.multi_exp(bases, exps);
  };

  std::function<void(std::span<const std::size_t>)> check =
      [&](std::span<const std::size_t> idxs) {
        if (idxs.empty()) return;
        if (idxs.size() == 1) {
          out.valid[idxs[0]] =
              tdh2_verify_ciphertext(pk, cts[idxs[0]], labels[idxs[0]]) ? 1
                                                                        : 0;
          return;
        }
        if (equation_holds(idxs)) {
          for (std::size_t j : idxs) out.valid[j] = 1;
          return;
        }
        ++out.bisection_splits;
        const std::size_t mid = idxs.size() / 2;
        check(idxs.subspan(0, mid));
        check(idxs.subspan(mid));
      };
  check(live);
  return out;
}

std::optional<Bytes> tdh2_combine(const Tdh2PublicKey& pk,
                                  const Tdh2Ciphertext& ct, BytesView label,
                                  std::span<const Tdh2DecryptionShare> shares) {
  if (!tdh2_verify_ciphertext(pk, ct, label)) return std::nullopt;
  return tdh2_combine_preverified(pk, ct, shares);
}

std::optional<Bytes> tdh2_combine_preverified(
    const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct,
    std::span<const Tdh2DecryptionShare> shares) {
  const ModGroup& grp = pk.group;

  // Pick the first `threshold` shares with distinct indices.
  std::vector<const Tdh2DecryptionShare*> chosen;
  std::vector<uint32_t> indices;
  for (const auto& s : shares) {
    if (std::find(indices.begin(), indices.end(), s.index) != indices.end()) {
      continue;
    }
    chosen.push_back(&s);
    indices.push_back(s.index);
    if (chosen.size() == pk.threshold) break;
  }
  if (chosen.size() < pk.threshold) return std::nullopt;

  // Lagrange coefficients depend only on the index SET, which repeats
  // heavily across requests (own share + the first t-1 arrivals), so look
  // them up by sorted index set before recomputing.
  std::vector<uint32_t> sorted = indices;
  std::sort(sorted.begin(), sorted.end());
  Tdh2LagrangeCache* cache = pk.lagrange_cache.get();
  const std::vector<Bignum>* lambdas = nullptr;
  std::vector<Bignum> computed;
  if (cache) {
    for (const auto& entry : cache->entries) {
      if (entry.indices == sorted) {
        lambdas = &entry.lambdas;
        break;
      }
    }
    if (lambdas) {
      ++cache->hits;
    } else {
      ++cache->misses;
    }
  }
  if (!lambdas) {
    computed = lagrange_at_zero_all(grp, sorted);
    if (cache) {
      if (cache->entries.size() >= Tdh2LagrangeCache::kMaxEntries) {
        cache->entries.erase(cache->entries.begin());
      }
      cache->entries.push_back({sorted, std::move(computed)});
      lambdas = &cache->entries.back().lambdas;
    } else {
      lambdas = &computed;
    }
  }
  // Map the sorted-order coefficients back to the chosen shares' order.
  std::vector<const Bignum*> lambda(chosen.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t pos = static_cast<std::size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), indices[i]) -
        sorted.begin());
    lambda[i] = &(*lambdas)[pos];
  }

  // h^r = prod u_j^{lambda_j}, pairing shares up so each pair costs one
  // joint-window multi-exponentiation instead of two exponentiations.
  Bignum hr(1);
  std::size_t i = 0;
  for (; i + 1 < chosen.size(); i += 2) {
    hr = grp.mul(hr, grp.multi_exp(chosen[i]->u_i, *lambda[i],
                                   chosen[i + 1]->u_i, *lambda[i + 1]));
  }
  if (i < chosen.size()) {
    hr = grp.mul(hr, grp.exp(chosen[i]->u_i, *lambda[i]));
  }
  Bytes m = hash_pad(grp, hr);
  xor_inplace(m, ct.c);
  return m;
}

}  // namespace scab::threshenc
