#include "threshenc/tdh2.h"

#include <algorithm>
#include <stdexcept>

#include "common/serialize.h"
#include "crypto/sha256.h"

namespace scab::threshenc {

using crypto::Bignum;
using crypto::Drbg;
using crypto::ModGroup;

namespace {

// H1: group element -> kTdh2MessageSize-byte pad.
Bytes hash_pad(const ModGroup& group, const Bignum& elem) {
  return crypto::sha256_tuple(
      {to_bytes("tdh2.h1"), elem.to_bytes_be(group.element_bytes())});
}

// H2: Fiat–Shamir challenge binding ciphertext body AND label.
Bignum hash_challenge(const ModGroup& group, BytesView c, BytesView label,
                      const Bignum& u, const Bignum& w, const Bignum& ubar,
                      const Bignum& wbar) {
  const std::size_t eb = group.element_bytes();
  const Bytes data = crypto::sha256_tuple(
      {to_bytes("tdh2.h2"), c, label, u.to_bytes_be(eb), w.to_bytes_be(eb),
       ubar.to_bytes_be(eb), wbar.to_bytes_be(eb)});
  return group.hash_to_exponent(data);
}

// H4: challenge for the share-decryption equality-of-dlog proof.
Bignum hash_share_challenge(const ModGroup& group, uint32_t index,
                            const Bignum& u, const Bignum& u_i,
                            const Bignum& u_hat, const Bignum& h_hat) {
  const std::size_t eb = group.element_bytes();
  uint8_t idx[4];
  for (int i = 0; i < 4; ++i) idx[i] = static_cast<uint8_t>(index >> (8 * i));
  const Bytes data = crypto::sha256_tuple(
      {to_bytes("tdh2.h4"), BytesView(idx, 4), u.to_bytes_be(eb),
       u_i.to_bytes_be(eb), u_hat.to_bytes_be(eb), h_hat.to_bytes_be(eb)});
  return group.hash_to_exponent(data);
}

// Lagrange coefficients lambda_j at 0 for every j in `indices`, mod q.
// Numerators and denominators are products of small index differences
// (sign tracked separately so the operands stay one limb), and all
// denominators share ONE modular inversion via Montgomery's batch-inversion
// trick — per-coefficient Fermat inversions used to dominate combination.
std::vector<Bignum> lagrange_at_zero_all(const ModGroup& group,
                                         std::span<const uint32_t> indices) {
  const Bignum& q = group.q();
  const std::size_t t = indices.size();
  std::vector<Bignum> num(t), den(t);
  std::vector<bool> negative(t, false);
  for (std::size_t i = 0; i < t; ++i) {
    const uint32_t j = indices[i];
    num[i] = Bignum(1);
    den[i] = Bignum(1);
    for (uint32_t k : indices) {
      if (k == j) continue;
      num[i] = crypto::mod_mul(num[i], Bignum(k), q);
      const uint32_t diff = k > j ? k - j : j - k;
      den[i] = crypto::mod_mul(den[i], Bignum(diff), q);
      if (k < j) negative[i] = !negative[i];
    }
  }
  // prefix[i] = den[0]·...·den[i-1]; invert only the full product.
  std::vector<Bignum> prefix(t + 1);
  prefix[0] = Bignum(1);
  for (std::size_t i = 0; i < t; ++i) {
    prefix[i + 1] = crypto::mod_mul(prefix[i], den[i], q);
  }
  Bignum inv_suffix = group.inv_mod_q(prefix[t]);
  std::vector<Bignum> out(t);
  for (std::size_t i = t; i-- > 0;) {
    const Bignum inv_i = crypto::mod_mul(inv_suffix, prefix[i], q);
    inv_suffix = crypto::mod_mul(inv_suffix, den[i], q);
    Bignum lambda = crypto::mod_mul(num[i], inv_i, q);
    if (negative[i] && !lambda.is_zero()) lambda = q - lambda;
    out[i] = std::move(lambda);
  }
  return out;
}

}  // namespace

Bytes Tdh2Ciphertext::serialize(const ModGroup& group) const {
  Writer w;
  w.bytes(c);
  const std::size_t eb = group.element_bytes();
  const std::size_t xb = group.exponent_bytes();
  w.raw(u.to_bytes_be(eb));
  w.raw(ubar.to_bytes_be(eb));
  w.raw(e.to_bytes_be(xb));
  w.raw(f.to_bytes_be(xb));
  return std::move(w).take();
}

std::optional<Tdh2Ciphertext> Tdh2Ciphertext::parse(const ModGroup& group,
                                                    BytesView wire) {
  Reader r(wire);
  Tdh2Ciphertext ct;
  ct.c = r.bytes();
  const std::size_t eb = group.element_bytes();
  const std::size_t xb = group.exponent_bytes();
  ct.u = Bignum::from_bytes_be(r.raw(eb));
  ct.ubar = Bignum::from_bytes_be(r.raw(eb));
  ct.e = Bignum::from_bytes_be(r.raw(xb));
  ct.f = Bignum::from_bytes_be(r.raw(xb));
  if (!r.done()) return std::nullopt;
  // Parse-time bounds: a truncated or out-of-range wire must never reach
  // the group operations (the proof check would reject it anyway, but only
  // after paying several exponentiations).
  if (ct.c.size() != kTdh2MessageSize) return std::nullopt;
  if (ct.u.is_zero() || ct.u >= group.p()) return std::nullopt;
  if (ct.ubar.is_zero() || ct.ubar >= group.p()) return std::nullopt;
  if (ct.e >= group.q() || ct.f >= group.q()) return std::nullopt;
  return ct;
}

Bytes Tdh2DecryptionShare::serialize(const ModGroup& group) const {
  Writer w;
  w.u32(index);
  w.raw(u_i.to_bytes_be(group.element_bytes()));
  w.raw(e_i.to_bytes_be(group.exponent_bytes()));
  w.raw(f_i.to_bytes_be(group.exponent_bytes()));
  return std::move(w).take();
}

std::optional<Tdh2DecryptionShare> Tdh2DecryptionShare::parse(
    const ModGroup& group, BytesView wire) {
  Reader r(wire);
  Tdh2DecryptionShare s;
  s.index = r.u32();
  s.u_i = Bignum::from_bytes_be(r.raw(group.element_bytes()));
  s.e_i = Bignum::from_bytes_be(r.raw(group.exponent_bytes()));
  s.f_i = Bignum::from_bytes_be(r.raw(group.exponent_bytes()));
  if (!r.done()) return std::nullopt;
  // Same parse-time bounds as Tdh2Ciphertext::parse.
  if (s.index == 0) return std::nullopt;
  if (s.u_i.is_zero() || s.u_i >= group.p()) return std::nullopt;
  if (s.e_i >= group.q() || s.f_i >= group.q()) return std::nullopt;
  return s;
}

Tdh2KeyMaterial tdh2_keygen(const ModGroup& group, uint32_t threshold,
                            uint32_t servers, Drbg& rng) {
  if (threshold == 0 || threshold > servers) {
    throw std::invalid_argument("tdh2_keygen: need 1 <= t <= n");
  }
  // Random degree-(t-1) polynomial F over Z_q with F(0) = x.
  std::vector<Bignum> coeffs(threshold);
  for (auto& c : coeffs) c = group.random_exponent(rng);
  const Bignum& x = coeffs[0];

  auto eval = [&](uint32_t at) {
    const Bignum point(at);
    Bignum acc;
    // Horner, from the top coefficient down.
    for (std::size_t i = coeffs.size(); i-- > 0;) {
      acc = crypto::mod_add(crypto::mod_mul(acc, point, group.q()), coeffs[i],
                            group.q());
    }
    return acc;
  };

  Tdh2KeyMaterial out;
  out.pk.group = group;
  out.pk.h = group.exp(group.g(), x);
  // h is the third hot base (every encryption computes h^r): give it a
  // cached fixed-base table alongside g and gbar.
  out.pk.group.cache_fixed_base(out.pk.h);
  out.pk.threshold = threshold;
  out.pk.servers = servers;
  out.pk.verification_keys.reserve(servers);
  out.shares.reserve(servers);
  for (uint32_t i = 1; i <= servers; ++i) {
    Bignum x_i = eval(i);
    out.pk.verification_keys.push_back(group.exp(group.g(), x_i));
    out.shares.push_back(Tdh2KeyShare{i, std::move(x_i)});
  }
  return out;
}

Tdh2Ciphertext tdh2_encrypt(const Tdh2PublicKey& pk, BytesView message,
                            BytesView label, Drbg& rng) {
  if (message.size() != kTdh2MessageSize) {
    throw std::invalid_argument("tdh2_encrypt: message must be 32 bytes");
  }
  const ModGroup& grp = pk.group;
  const Bignum r = grp.random_exponent(rng);
  const Bignum s = grp.random_exponent(rng);

  Tdh2Ciphertext ct;
  ct.c = hash_pad(grp, grp.exp(pk.h, r));
  xor_inplace(ct.c, message);
  ct.u = grp.exp(grp.g(), r);
  const Bignum w = grp.exp(grp.g(), s);
  ct.ubar = grp.exp(grp.gbar(), r);
  const Bignum wbar = grp.exp(grp.gbar(), s);
  ct.e = hash_challenge(grp, ct.c, label, ct.u, w, ct.ubar, wbar);
  ct.f = crypto::mod_add(s, crypto::mod_mul(r, ct.e, grp.q()), grp.q());
  return ct;
}

bool tdh2_verify_ciphertext(const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct,
                            BytesView label) {
  const ModGroup& grp = pk.group;
  if (ct.c.size() != kTdh2MessageSize) return false;
  if (!grp.is_element(ct.u) || !grp.is_element(ct.ubar)) return false;
  if (ct.e >= grp.q() || ct.f >= grp.q()) return false;
  // w = g^f / u^e ; wbar = gbar^f / ubar^e — each a single joint-window
  // multi-exponentiation (u, ubar are order-q elements, checked above).
  const Bignum w = grp.exp_ratio(grp.g(), ct.f, ct.u, ct.e);
  const Bignum wbar = grp.exp_ratio(grp.gbar(), ct.f, ct.ubar, ct.e);
  return hash_challenge(grp, ct.c, label, ct.u, w, ct.ubar, wbar) == ct.e;
}

std::optional<Tdh2DecryptionShare> tdh2_share_decrypt(
    const Tdh2PublicKey& pk, const Tdh2KeyShare& key, const Tdh2Ciphertext& ct,
    BytesView label, Drbg& rng) {
  if (!tdh2_verify_ciphertext(pk, ct, label)) return std::nullopt;
  return tdh2_share_decrypt_preverified(pk, key, ct, rng);
}

Tdh2DecryptionShare tdh2_share_decrypt_preverified(const Tdh2PublicKey& pk,
                                                   const Tdh2KeyShare& key,
                                                   const Tdh2Ciphertext& ct,
                                                   Drbg& rng) {
  const ModGroup& grp = pk.group;
  const crypto::Montgomery& mont = grp.mont();

  Tdh2DecryptionShare share;
  share.index = key.index;
  // Both u^{x_i} and the proof commitment u^{s_i} share one window table
  // for the (per-ciphertext) base u.
  const crypto::Montgomery::Table u_table = mont.make_table(mont.to_mont(ct.u));
  share.u_i = mont.from_mont(mont.exp(u_table, key.x));
  // NIZK proof of log_u(u_i) == log_g(h_i):
  const Bignum s_i = grp.random_exponent(rng);
  const Bignum u_hat = mont.from_mont(mont.exp(u_table, s_i));
  const Bignum h_hat = grp.exp(grp.g(), s_i);
  share.e_i = hash_share_challenge(grp, key.index, ct.u, share.u_i, u_hat, h_hat);
  share.f_i = crypto::mod_add(s_i, crypto::mod_mul(key.x, share.e_i, grp.q()),
                              grp.q());
  return share;
}

bool tdh2_verify_share(const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct,
                       BytesView label, const Tdh2DecryptionShare& share) {
  (void)label;  // label validity is part of ciphertext verification
  const ModGroup& grp = pk.group;
  if (share.index == 0 || share.index > pk.servers) return false;
  if (!grp.is_element(share.u_i)) return false;
  if (share.e_i >= grp.q() || share.f_i >= grp.q()) return false;
  // u_hat = u^{f_i} / u_i^{e_i} ; h_hat = g^{f_i} / h_i^{e_i} — joint-window
  // multi-exponentiations (u_i is checked above; vk_i comes from keygen).
  const Bignum u_hat = grp.exp_ratio(ct.u, share.f_i, share.u_i, share.e_i);
  const Bignum h_hat =
      grp.exp_ratio(grp.g(), share.f_i, pk.vk(share.index), share.e_i);
  return hash_share_challenge(grp, share.index, ct.u, share.u_i, u_hat,
                              h_hat) == share.e_i;
}

std::optional<Bytes> tdh2_combine(const Tdh2PublicKey& pk,
                                  const Tdh2Ciphertext& ct, BytesView label,
                                  std::span<const Tdh2DecryptionShare> shares) {
  if (!tdh2_verify_ciphertext(pk, ct, label)) return std::nullopt;
  return tdh2_combine_preverified(pk, ct, shares);
}

std::optional<Bytes> tdh2_combine_preverified(
    const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct,
    std::span<const Tdh2DecryptionShare> shares) {
  const ModGroup& grp = pk.group;

  // Pick the first `threshold` shares with distinct indices.
  std::vector<const Tdh2DecryptionShare*> chosen;
  std::vector<uint32_t> indices;
  for (const auto& s : shares) {
    if (std::find(indices.begin(), indices.end(), s.index) != indices.end()) {
      continue;
    }
    chosen.push_back(&s);
    indices.push_back(s.index);
    if (chosen.size() == pk.threshold) break;
  }
  if (chosen.size() < pk.threshold) return std::nullopt;

  // h^r = prod u_j^{lambda_j}, pairing shares up so each pair costs one
  // joint-window multi-exponentiation instead of two exponentiations.
  const std::vector<Bignum> lambda = lagrange_at_zero_all(grp, indices);
  Bignum hr(1);
  std::size_t i = 0;
  for (; i + 1 < chosen.size(); i += 2) {
    hr = grp.mul(hr, grp.multi_exp(chosen[i]->u_i, lambda[i],
                                   chosen[i + 1]->u_i, lambda[i + 1]));
  }
  if (i < chosen.size()) {
    hr = grp.mul(hr, grp.exp(chosen[i]->u_i, lambda[i]));
  }
  Bytes m = hash_pad(grp, hr);
  xor_inplace(m, ct.c);
  return m;
}

}  // namespace scab::threshenc
