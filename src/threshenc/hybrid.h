// Hybrid threshold encryption: threshold-KEM + AEAD.
//
// TDH2 encrypts a fixed 32-byte value, so long client requests are handled
// exactly as the paper's implementation does ("The implementation uses
// hybrid encryption to encrypt long messages", §VI-A): TEnc encapsulates a
// fresh 64-byte AEAD key (as two 32-byte halves would double the KEM; we
// instead derive the AEAD key from one 32-byte seed), and the request body
// travels under authenticated encryption bound to the same label.
#pragma once

#include <optional>
#include <vector>

#include "threshenc/tdh2.h"

namespace scab::threshenc {

struct HybridCiphertext {
  Tdh2Ciphertext kem;  // encapsulates a 32-byte key seed
  Bytes box;           // AEAD(seed-derived key, ad = label, message)

  Bytes serialize(const crypto::ModGroup& group) const;
  static std::optional<HybridCiphertext> parse(const crypto::ModGroup& group,
                                               BytesView wire);
};

/// Encrypts an arbitrary-length message under the threshold public key,
/// bound to `label`.
HybridCiphertext hybrid_encrypt(const Tdh2PublicKey& pk, BytesView message,
                                BytesView label, crypto::Drbg& rng);

/// Validity check a replica performs before scheduling: KEM proof plus
/// structural checks. (The AEAD tag can only be checked after combining.)
bool hybrid_verify(const Tdh2PublicKey& pk, const HybridCiphertext& ct,
                   BytesView label);

/// Opens the AEAD box given the KEM plaintext (the 32-byte seed recovered
/// by tdh2_combine). Returns nullopt on tag failure.
std::optional<Bytes> hybrid_open(const HybridCiphertext& ct, BytesView label,
                                 BytesView kem_plaintext);

// ---------------------------------------------------------------------------
// Batched hybrid envelope (DESIGN.md §10): many payloads amortize ONE KEM.
//
// Wire:  u32 magic | u32 count | bytes(kem) | count x bytes(box)
// The magic can never open a legacy wire, whose first u32 is the (small)
// KEM length prefix.  The KEM is bound to the FULL label
//
//   label = prefix || SHA-256(count, box_0, ..., box_{count-1})
//
// so any box tamper (or reorder, or count change) shifts the label and the
// TDH2 proof check fails before any share is produced.  Each payload sits
// in its own AEAD box under a per-index key derived from the shared seed;
// the associated data additionally binds (prefix, index) so boxes cannot be
// transplanted between positions even under a leaked seed.
//
// A batch of one is NOT emitted in this format: callers fall back to
// hybrid_encrypt so single requests stay bit-identical to the legacy path.

inline constexpr uint32_t kHybridBatchMagic = 0xb47c4b17;
inline constexpr uint32_t kMaxHybridBatch = 4096;

struct HybridBatchCiphertext {
  Tdh2Ciphertext kem;        // encapsulates the shared 32-byte key seed
  std::vector<Bytes> boxes;  // one AEAD box per payload

  Bytes serialize(const crypto::ModGroup& group) const;
  static std::optional<HybridBatchCiphertext> parse(
      const crypto::ModGroup& group, BytesView wire);
};

/// True iff `wire` starts with the batch magic (cheap wire discriminator).
bool is_hybrid_batch_wire(BytesView wire);

/// The full KEM label for a batch: prefix || SHA-256(count, boxes...).
Bytes hybrid_batch_label(BytesView prefix, const std::vector<Bytes>& boxes);

/// Encrypts `messages` (>= 2) under one KEM header bound to `prefix`.
HybridBatchCiphertext hybrid_encrypt_batch(const Tdh2PublicKey& pk,
                                           const std::vector<Bytes>& messages,
                                           BytesView prefix, crypto::Drbg& rng);

/// Admission check: KEM proof against the caller-derived full label plus
/// structural box bounds.  (Box tags can only be checked after combining.)
bool hybrid_batch_verify(const Tdh2PublicKey& pk,
                         const HybridBatchCiphertext& ct, BytesView full_label);

/// Opens every box given the recovered seed; nullopt if ANY tag fails
/// (a correct client never produces a partially-valid batch, and replicas
/// must not execute a prefix of one).
std::optional<std::vector<Bytes>> hybrid_batch_open(
    const HybridBatchCiphertext& ct, BytesView prefix, BytesView full_label,
    BytesView kem_plaintext);

}  // namespace scab::threshenc
