// Hybrid threshold encryption: threshold-KEM + AEAD.
//
// TDH2 encrypts a fixed 32-byte value, so long client requests are handled
// exactly as the paper's implementation does ("The implementation uses
// hybrid encryption to encrypt long messages", §VI-A): TEnc encapsulates a
// fresh 64-byte AEAD key (as two 32-byte halves would double the KEM; we
// instead derive the AEAD key from one 32-byte seed), and the request body
// travels under authenticated encryption bound to the same label.
#pragma once

#include <optional>

#include "threshenc/tdh2.h"

namespace scab::threshenc {

struct HybridCiphertext {
  Tdh2Ciphertext kem;  // encapsulates a 32-byte key seed
  Bytes box;           // AEAD(seed-derived key, ad = label, message)

  Bytes serialize(const crypto::ModGroup& group) const;
  static std::optional<HybridCiphertext> parse(const crypto::ModGroup& group,
                                               BytesView wire);
};

/// Encrypts an arbitrary-length message under the threshold public key,
/// bound to `label`.
HybridCiphertext hybrid_encrypt(const Tdh2PublicKey& pk, BytesView message,
                                BytesView label, crypto::Drbg& rng);

/// Validity check a replica performs before scheduling: KEM proof plus
/// structural checks. (The AEAD tag can only be checked after combining.)
bool hybrid_verify(const Tdh2PublicKey& pk, const HybridCiphertext& ct,
                   BytesView label);

/// Opens the AEAD box given the KEM plaintext (the 32-byte seed recovered
/// by tdh2_combine). Returns nullopt on tag failure.
std::optional<Bytes> hybrid_open(const HybridCiphertext& ct, BytesView label,
                                 BytesView kem_plaintext);

}  // namespace scab::threshenc
