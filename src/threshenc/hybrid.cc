#include "threshenc/hybrid.h"

#include "common/serialize.h"
#include "crypto/aead.h"
#include "crypto/sha256.h"

namespace scab::threshenc {

namespace {
Bytes derive_aead_key(BytesView seed) {
  return concat(crypto::sha256_tuple({to_bytes("hybrid.enc"), seed}),
                crypto::sha256_tuple({to_bytes("hybrid.mac"), seed}));
}
}  // namespace

Bytes HybridCiphertext::serialize(const crypto::ModGroup& group) const {
  Writer w;
  w.bytes(kem.serialize(group));
  w.bytes(box);
  return std::move(w).take();
}

std::optional<HybridCiphertext> HybridCiphertext::parse(
    const crypto::ModGroup& group, BytesView wire) {
  Reader r(wire);
  const Bytes kem_wire = r.bytes();
  HybridCiphertext out;
  out.box = r.bytes();
  if (!r.done()) return std::nullopt;
  // Parse-time bound: a box shorter than the AEAD tag+nonce can never open;
  // reject before the KEM fields reach any group operation.
  if (out.box.size() < crypto::kAeadOverhead) return std::nullopt;
  auto kem = Tdh2Ciphertext::parse(group, kem_wire);
  if (!kem) return std::nullopt;
  out.kem = std::move(*kem);
  return out;
}

HybridCiphertext hybrid_encrypt(const Tdh2PublicKey& pk, BytesView message,
                                BytesView label, crypto::Drbg& rng) {
  const Bytes seed = rng.generate(kTdh2MessageSize);
  HybridCiphertext out;
  out.kem = tdh2_encrypt(pk, seed, label, rng);
  out.box = crypto::aead_seal(derive_aead_key(seed), label, message, rng);
  return out;
}

bool hybrid_verify(const Tdh2PublicKey& pk, const HybridCiphertext& ct,
                   BytesView label) {
  if (ct.box.size() < crypto::kAeadOverhead) return false;
  return tdh2_verify_ciphertext(pk, ct.kem, label);
}

std::optional<Bytes> hybrid_open(const HybridCiphertext& ct, BytesView label,
                                 BytesView kem_plaintext) {
  if (kem_plaintext.size() != kTdh2MessageSize) return std::nullopt;
  return crypto::aead_open(derive_aead_key(kem_plaintext), label, ct.box);
}

}  // namespace scab::threshenc
