#include "threshenc/hybrid.h"

#include "common/serialize.h"
#include "crypto/aead.h"
#include "crypto/sha256.h"

namespace scab::threshenc {

namespace {
Bytes derive_aead_key(BytesView seed) {
  return concat(crypto::sha256_tuple({to_bytes("hybrid.enc"), seed}),
                crypto::sha256_tuple({to_bytes("hybrid.mac"), seed}));
}

Bytes u32_le(uint32_t v) {
  Bytes b(4);
  for (int i = 0; i < 4; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
  return b;
}

// Per-index AEAD key under the shared batch seed: box i never opens under
// box j's key even though one KEM carried both.
Bytes derive_batch_key(BytesView seed, uint32_t index) {
  const Bytes idx = u32_le(index);
  return concat(crypto::sha256_tuple({to_bytes("hybrid.batch.enc"), seed, idx}),
                crypto::sha256_tuple({to_bytes("hybrid.batch.mac"), seed, idx}));
}

// Associated data binding a box to its (prefix, index) slot.
Bytes batch_box_ad(BytesView prefix, uint32_t index) {
  return crypto::sha256_tuple(
      {to_bytes("hybrid.batch.box"), prefix, u32_le(index)});
}
}  // namespace

Bytes HybridCiphertext::serialize(const crypto::ModGroup& group) const {
  Writer w;
  w.bytes(kem.serialize(group));
  w.bytes(box);
  return std::move(w).take();
}

std::optional<HybridCiphertext> HybridCiphertext::parse(
    const crypto::ModGroup& group, BytesView wire) {
  Reader r(wire);
  const Bytes kem_wire = r.bytes();
  HybridCiphertext out;
  out.box = r.bytes();
  if (!r.done()) return std::nullopt;
  // Parse-time bound: a box shorter than the AEAD tag+nonce can never open;
  // reject before the KEM fields reach any group operation.
  if (out.box.size() < crypto::kAeadOverhead) return std::nullopt;
  auto kem = Tdh2Ciphertext::parse(group, kem_wire);
  if (!kem) return std::nullopt;
  out.kem = std::move(*kem);
  return out;
}

HybridCiphertext hybrid_encrypt(const Tdh2PublicKey& pk, BytesView message,
                                BytesView label, crypto::Drbg& rng) {
  const Bytes seed = rng.generate(kTdh2MessageSize);
  HybridCiphertext out;
  out.kem = tdh2_encrypt(pk, seed, label, rng);
  out.box = crypto::aead_seal(derive_aead_key(seed), label, message, rng);
  return out;
}

bool hybrid_verify(const Tdh2PublicKey& pk, const HybridCiphertext& ct,
                   BytesView label) {
  if (ct.box.size() < crypto::kAeadOverhead) return false;
  return tdh2_verify_ciphertext(pk, ct.kem, label);
}

std::optional<Bytes> hybrid_open(const HybridCiphertext& ct, BytesView label,
                                 BytesView kem_plaintext) {
  if (kem_plaintext.size() != kTdh2MessageSize) return std::nullopt;
  return crypto::aead_open(derive_aead_key(kem_plaintext), label, ct.box);
}

// ---------------------------------------------------------------------------
// Batched envelope

Bytes HybridBatchCiphertext::serialize(const crypto::ModGroup& group) const {
  Writer w;
  w.u32(kHybridBatchMagic);
  w.u32(static_cast<uint32_t>(boxes.size()));
  w.bytes(kem.serialize(group));
  for (const auto& box : boxes) w.bytes(box);
  return std::move(w).take();
}

std::optional<HybridBatchCiphertext> HybridBatchCiphertext::parse(
    const crypto::ModGroup& group, BytesView wire) {
  Reader r(wire);
  if (r.u32() != kHybridBatchMagic) return std::nullopt;
  const uint32_t count = r.u32();
  if (!r.ok() || count < 2 || count > kMaxHybridBatch) return std::nullopt;
  const Bytes kem_wire = r.bytes();
  HybridBatchCiphertext out;
  out.boxes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Bytes box = r.bytes();
    if (!r.ok() || box.size() < crypto::kAeadOverhead) return std::nullopt;
    out.boxes.push_back(std::move(box));
  }
  if (!r.done()) return std::nullopt;
  auto kem = Tdh2Ciphertext::parse(group, kem_wire);
  if (!kem) return std::nullopt;
  out.kem = std::move(*kem);
  return out;
}

bool is_hybrid_batch_wire(BytesView wire) {
  if (wire.size() < 4) return false;
  uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) magic |= static_cast<uint32_t>(wire[i]) << (8 * i);
  // Writer::u32 is little-endian, so the raw prefix IS the magic.
  return magic == kHybridBatchMagic;
}

Bytes hybrid_batch_label(BytesView prefix, const std::vector<Bytes>& boxes) {
  crypto::Sha256 h;
  const Bytes count = u32_le(static_cast<uint32_t>(boxes.size()));
  h.update(count);
  for (const auto& box : boxes) {
    h.update(u32_le(static_cast<uint32_t>(box.size())));
    h.update(box);
  }
  const auto digest = h.digest();
  return concat(prefix, BytesView(digest.data(), digest.size()));
}

HybridBatchCiphertext hybrid_encrypt_batch(const Tdh2PublicKey& pk,
                                           const std::vector<Bytes>& messages,
                                           BytesView prefix, crypto::Drbg& rng) {
  const Bytes seed = rng.generate(kTdh2MessageSize);
  HybridBatchCiphertext out;
  out.boxes.reserve(messages.size());
  for (uint32_t i = 0; i < messages.size(); ++i) {
    out.boxes.push_back(crypto::aead_seal(derive_batch_key(seed, i),
                                          batch_box_ad(prefix, i), messages[i],
                                          rng));
  }
  const Bytes label = hybrid_batch_label(prefix, out.boxes);
  out.kem = tdh2_encrypt(pk, seed, label, rng);
  return out;
}

bool hybrid_batch_verify(const Tdh2PublicKey& pk,
                         const HybridBatchCiphertext& ct,
                         BytesView full_label) {
  if (ct.boxes.size() < 2 || ct.boxes.size() > kMaxHybridBatch) return false;
  for (const auto& box : ct.boxes) {
    if (box.size() < crypto::kAeadOverhead) return false;
  }
  return tdh2_verify_ciphertext(pk, ct.kem, full_label);
}

std::optional<std::vector<Bytes>> hybrid_batch_open(
    const HybridBatchCiphertext& ct, BytesView prefix, BytesView /*full_label*/,
    BytesView kem_plaintext) {
  if (kem_plaintext.size() != kTdh2MessageSize) return std::nullopt;
  std::vector<Bytes> out;
  out.reserve(ct.boxes.size());
  for (uint32_t i = 0; i < ct.boxes.size(); ++i) {
    auto opened = crypto::aead_open(derive_batch_key(kem_plaintext, i),
                                    batch_box_ad(prefix, i), ct.boxes[i]);
    if (!opened) return std::nullopt;
    out.push_back(std::move(*opened));
  }
  return out;
}

}  // namespace scab::threshenc
