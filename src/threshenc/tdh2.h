// TDH2: a CCA-secure *labeled* threshold cryptosystem (Shoup–Gennaro,
// EUROCRYPT '98 — the paper's reference [64]).
//
// This instantiates the abstract ThreshEnc = (TGen, TEnc, ShareDec, Vrf,
// Comb) interface of paper §IV-A that CP0 is built on.  The paper's own
// implementation extended the Baek–Zheng GDH scheme with labels; we use
// TDH2 instead because it needs no pairings, is the canonical labeled
// scheme from the very reference the paper cites for the primitive, and has
// the same cost profile (a handful of modular exponentiations per
// operation) — see DESIGN.md §3 for the substitution note.
//
// The scheme works over a Schnorr group (p = 2q+1, generators g, ḡ):
//
//   TEnc(m, L):   r, s ← Z_q
//                 c  = H1(h^r) ⊕ m
//                 u  = g^r   w  = g^s   ū = ḡ^r   w̄ = ḡ^s
//                 e  = H2(c, L, u, w, ū, w̄)        f = s + r·e
//                 ciphertext = (c, L, u, ū, e, f)
//
//   The (e, f) pair is a Fiat–Shamir proof that log_g(u) = log_ḡ(ū); its
//   *public* verifiability is what yields CCA security and lets any replica
//   reject malformed ciphertexts before agreement ("verify ciphertext" in
//   the paper's Fig. 3).
//
//   ShareDec_i:   u_i = u^{x_i} plus a discrete-log-equality proof
//                 (e_i, f_i) that log_u(u_i) = log_g(h_i).
//
//   Comb:         h^r = ∏ u_j^{λ_j}  (Lagrange in the exponent on t valid
//                 shares), m = c ⊕ H1(h^r).
//
// TEnc encrypts exactly kTdh2MessageSize bytes; arbitrary-length requests
// use the hybrid wrapper in hybrid.h (threshold-KEM + AEAD), mirroring the
// paper's "hybrid encryption to encrypt long messages".
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "crypto/bignum.h"
#include "crypto/drbg.h"
#include "crypto/modgroup.h"

namespace scab::threshenc {

inline constexpr std::size_t kTdh2MessageSize = 32;

/// Public key: the group, h = g^x, and per-server verification keys
/// h_i = g^{x_i} (the "vk" of the abstract syntax).
struct Tdh2PublicKey {
  crypto::ModGroup group;
  crypto::Bignum h;
  std::vector<crypto::Bignum> verification_keys;  // [0] is server 1
  uint32_t threshold = 0;                         // t: shares needed
  uint32_t servers = 0;                           // n

  /// Verification key of server `index` (1-based).
  const crypto::Bignum& vk(uint32_t index) const {
    return verification_keys.at(index - 1);
  }
};

/// One server's private key share x_i = F(i).
struct Tdh2KeyShare {
  uint32_t index = 0;  // 1-based
  crypto::Bignum x;
};

struct Tdh2KeyMaterial {
  Tdh2PublicKey pk;
  std::vector<Tdh2KeyShare> shares;
};

struct Tdh2Ciphertext {
  Bytes c;  // kTdh2MessageSize bytes, pad-XOR of the message
  crypto::Bignum u, ubar, e, f;

  Bytes serialize(const crypto::ModGroup& group) const;
  static std::optional<Tdh2Ciphertext> parse(const crypto::ModGroup& group,
                                             BytesView wire);
};

struct Tdh2DecryptionShare {
  uint32_t index = 0;  // 1-based server index
  crypto::Bignum u_i, e_i, f_i;

  Bytes serialize(const crypto::ModGroup& group) const;
  static std::optional<Tdh2DecryptionShare> parse(const crypto::ModGroup& group,
                                                  BytesView wire);
};

/// TGen: dealer-based key generation (the paper's CP0 likewise assumes a
/// trusted dealer or an expensive interactive setup, §V-A).
Tdh2KeyMaterial tdh2_keygen(const crypto::ModGroup& group, uint32_t threshold,
                            uint32_t servers, crypto::Drbg& rng);

/// TEnc. `message` must be exactly kTdh2MessageSize bytes.
Tdh2Ciphertext tdh2_encrypt(const Tdh2PublicKey& pk, BytesView message,
                            BytesView label, crypto::Drbg& rng);

/// Public ciphertext validity check (no key material needed).
bool tdh2_verify_ciphertext(const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct,
                            BytesView label);

/// ShareDec. Returns nullopt if the ciphertext is invalid.
std::optional<Tdh2DecryptionShare> tdh2_share_decrypt(
    const Tdh2PublicKey& pk, const Tdh2KeyShare& key, const Tdh2Ciphertext& ct,
    BytesView label, crypto::Drbg& rng);

/// ShareDec for a ciphertext the caller ALREADY verified with
/// tdh2_verify_ciphertext.  CP0 verifies every ciphertext once at request
/// admission, so its reveal step uses this entry point instead of paying the
/// Fiat–Shamir proof check a second (and, at combine, third) time.  Calling
/// it on an unverified ciphertext produces a well-formed share for garbage —
/// never call it with untrusted input.
Tdh2DecryptionShare tdh2_share_decrypt_preverified(const Tdh2PublicKey& pk,
                                                   const Tdh2KeyShare& key,
                                                   const Tdh2Ciphertext& ct,
                                                   crypto::Drbg& rng);

/// Vrf: checks one decryption share against the ciphertext.
bool tdh2_verify_share(const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct,
                       BytesView label, const Tdh2DecryptionShare& share);

/// Comb: combines >= t shares with DISTINCT indices into the plaintext.
/// Shares must already have been verified with tdh2_verify_share (matching
/// the abstract syntax, where Comb consumes valid shares); returns nullopt
/// if fewer than t distinct-index shares are supplied or the ciphertext is
/// invalid.
std::optional<Bytes> tdh2_combine(const Tdh2PublicKey& pk,
                                  const Tdh2Ciphertext& ct, BytesView label,
                                  std::span<const Tdh2DecryptionShare> shares);

/// Comb for a ciphertext the caller ALREADY verified (see
/// tdh2_share_decrypt_preverified); still returns nullopt when fewer than
/// `threshold` distinct-index shares are supplied.
std::optional<Bytes> tdh2_combine_preverified(
    const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct,
    std::span<const Tdh2DecryptionShare> shares);

}  // namespace scab::threshenc
