// TDH2: a CCA-secure *labeled* threshold cryptosystem (Shoup–Gennaro,
// EUROCRYPT '98 — the paper's reference [64]).
//
// This instantiates the abstract ThreshEnc = (TGen, TEnc, ShareDec, Vrf,
// Comb) interface of paper §IV-A that CP0 is built on.  The paper's own
// implementation extended the Baek–Zheng GDH scheme with labels; we use
// TDH2 instead because it needs no pairings, is the canonical labeled
// scheme from the very reference the paper cites for the primitive, and has
// the same cost profile (a handful of modular exponentiations per
// operation) — see DESIGN.md §3 for the substitution note.
//
// The scheme works over a Schnorr group (p = 2q+1, generators g, ḡ):
//
//   TEnc(m, L):   r, s ← Z_q
//                 c  = H1(h^r) ⊕ m
//                 u  = g^r   w  = g^s   ū = ḡ^r   w̄ = ḡ^s
//                 e  = H2(c, L, u, w, ū, w̄)        f = s + r·e
//                 ciphertext = (c, L, u, ū, w, w̄, f)
//
//   The proof is a Fiat–Shamir argument that log_g(u) = log_ḡ(ū); its
//   *public* verifiability is what yields CCA security and lets any replica
//   reject malformed ciphertexts before agreement ("verify ciphertext" in
//   the paper's Fig. 3).  The wire carries the COMMITMENTS (w, w̄) rather
//   than the challenge e (which verifiers recompute by hashing): with the
//   challenge format, verification must reconstruct w = g^f·u^{-e}
//   individually per proof before it can re-hash, which makes proofs
//   inherently unbatchable.  With commitments on the wire, the check is the
//   pair of group equations g^f = w·u^e and ḡ^f = w̄·ū^e — a shape that k
//   proofs can share via one random linear combination (see
//   tdh2_batch_verify_shares below and DESIGN.md §4.3).  Challenges are
//   truncated to kTdh2ChallengeBytes (128 bits), the standard short-
//   challenge optimization: soundness error 2^-128, and the batch exponents
//   e_i·z_i stay ≤ 256 bits, which is where the batch speedup comes from.
//
//   ShareDec_i:   u_i = u^{x_i} plus a discrete-log-equality proof
//                 (û = u^{s_i}, ĥ = g^{s_i}, f_i) that
//                 log_u(u_i) = log_g(h_i), commitment format as above.
//
//   Comb:         h^r = ∏ u_j^{λ_j}  (Lagrange in the exponent on t valid
//                 shares), m = c ⊕ H1(h^r).
//
// TEnc encrypts exactly kTdh2MessageSize bytes; arbitrary-length requests
// use the hybrid wrapper in hybrid.h (threshold-KEM + AEAD), mirroring the
// paper's "hybrid encryption to encrypt long messages".
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "crypto/bignum.h"
#include "crypto/drbg.h"
#include "crypto/modgroup.h"

namespace scab::threshenc {

inline constexpr std::size_t kTdh2MessageSize = 32;

/// Fiat–Shamir challenges are the first 16 bytes of a SHA-256 over the
/// proof transcript: 128-bit soundness, and short enough that randomized
/// batch verification's merged exponents stay ≤ 256 bits.
inline constexpr std::size_t kTdh2ChallengeBytes = 16;

/// Bounded cache of Lagrange-at-zero coefficient vectors, keyed on the
/// sorted share-index set.  CP0 replicas combine the same t-of-n subsets
/// over and over (own share + the first t-1 peers to arrive), so the hit
/// rate is high in steady state.  Held by shared_ptr so value copies of
/// Tdh2PublicKey share one cache; single-threaded like the rest of the
/// stack.
struct Tdh2LagrangeCache {
  struct Entry {
    std::vector<uint32_t> indices;        // sorted: the key
    std::vector<crypto::Bignum> lambdas;  // aligned with `indices`
  };
  static constexpr std::size_t kMaxEntries = 64;
  std::vector<Entry> entries;  // FIFO-bounded
  uint64_t hits = 0;
  uint64_t misses = 0;
};

/// Public key: the group, h = g^x, and per-server verification keys
/// h_i = g^{x_i} (the "vk" of the abstract syntax).
struct Tdh2PublicKey {
  crypto::ModGroup group;
  crypto::Bignum h;
  std::vector<crypto::Bignum> verification_keys;  // [0] is server 1
  uint32_t threshold = 0;                         // t: shares needed
  uint32_t servers = 0;                           // n

  /// Fixed-base window tables for every verification key, built once at
  /// keygen and shared by all verifications (single-share, and the
  /// bisection leaves of the batch path).  Aligned with verification_keys;
  /// null for hand-assembled keys, in which case verification falls back
  /// to per-call tables.
  std::shared_ptr<const std::vector<crypto::Montgomery::Table>> vk_tables;

  /// See Tdh2LagrangeCache; null for hand-assembled keys (combine then
  /// recomputes coefficients every time).
  std::shared_ptr<Tdh2LagrangeCache> lagrange_cache;

  /// Verification key of server `index` (1-based).
  const crypto::Bignum& vk(uint32_t index) const {
    return verification_keys.at(index - 1);
  }
};

/// One server's private key share x_i = F(i).
struct Tdh2KeyShare {
  uint32_t index = 0;  // 1-based
  crypto::Bignum x;
};

struct Tdh2KeyMaterial {
  Tdh2PublicKey pk;
  std::vector<Tdh2KeyShare> shares;
};

struct Tdh2Ciphertext {
  Bytes c;  // kTdh2MessageSize bytes, pad-XOR of the message
  crypto::Bignum u, ubar;
  crypto::Bignum w, wbar;  // proof commitments g^s, ḡ^s
  crypto::Bignum f;        // proof response s + r·e mod q

  Bytes serialize(const crypto::ModGroup& group) const;
  static std::optional<Tdh2Ciphertext> parse(const crypto::ModGroup& group,
                                             BytesView wire);
};

struct Tdh2DecryptionShare {
  uint32_t index = 0;  // 1-based server index
  crypto::Bignum u_i;
  crypto::Bignum u_hat, h_hat;  // proof commitments u^{s_i}, g^{s_i}
  crypto::Bignum f_i;           // proof response s_i + x_i·e_i mod q

  Bytes serialize(const crypto::ModGroup& group) const;
  static std::optional<Tdh2DecryptionShare> parse(const crypto::ModGroup& group,
                                                  BytesView wire);
};

/// TGen: dealer-based key generation (the paper's CP0 likewise assumes a
/// trusted dealer or an expensive interactive setup, §V-A).
Tdh2KeyMaterial tdh2_keygen(const crypto::ModGroup& group, uint32_t threshold,
                            uint32_t servers, crypto::Drbg& rng);

/// TEnc. `message` must be exactly kTdh2MessageSize bytes.
Tdh2Ciphertext tdh2_encrypt(const Tdh2PublicKey& pk, BytesView message,
                            BytesView label, crypto::Drbg& rng);

/// Public ciphertext validity check (no key material needed).
bool tdh2_verify_ciphertext(const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct,
                            BytesView label);

/// ShareDec. Returns nullopt if the ciphertext is invalid.
std::optional<Tdh2DecryptionShare> tdh2_share_decrypt(
    const Tdh2PublicKey& pk, const Tdh2KeyShare& key, const Tdh2Ciphertext& ct,
    BytesView label, crypto::Drbg& rng);

/// ShareDec for a ciphertext the caller ALREADY verified with
/// tdh2_verify_ciphertext.  CP0 verifies every ciphertext once at request
/// admission, so its reveal step uses this entry point instead of paying the
/// Fiat–Shamir proof check a second (and, at combine, third) time.  Calling
/// it on an unverified ciphertext produces a well-formed share for garbage —
/// never call it with untrusted input.
Tdh2DecryptionShare tdh2_share_decrypt_preverified(const Tdh2PublicKey& pk,
                                                   const Tdh2KeyShare& key,
                                                   const Tdh2Ciphertext& ct,
                                                   crypto::Drbg& rng);

/// Vrf: checks one decryption share against the ciphertext.
bool tdh2_verify_share(const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct,
                       BytesView label, const Tdh2DecryptionShare& share);

/// Per-item verdicts of a batch verification, plus how much of the
/// bisection fallback tree had to run (0 = the whole batch passed its one
/// merged equation).
struct Tdh2BatchVerdict {
  std::vector<uint8_t> valid;  // 1 = share/ciphertext i verified
  uint32_t bisection_splits = 0;

  bool all_valid() const {
    for (uint8_t v : valid) {
      if (!v) return false;
    }
    return true;
  }
};

/// Batch Vrf: verifies k decryption shares for ONE ciphertext with a single
/// random-linear-combination equation (Bellare–Garay–Rabin small-exponent
/// test): fresh 128-bit coefficients z_i, z'_i from the VERIFIER's DRBG
/// merge all 2k proof equations into one multi-exponentiation, with
/// soundness error ≤ 2^-128 per draw.  On failure the batch is bisected
/// recursively (fresh coefficients per sub-batch), so every Byzantine share
/// is individually identified; leaves delegate to tdh2_verify_share, and a
/// batch of one IS tdh2_verify_share — the verdict vector always matches
/// what per-share verification would return.  Structurally invalid shares
/// (bad index, out-of-range field, non-subgroup element) are rejected
/// upfront without joining the algebra; the subgroup membership checks are
/// required for batch soundness, not just hygiene (an order-2 component
/// survives a random linear combination with probability 1/2).
Tdh2BatchVerdict tdh2_batch_verify_shares(
    const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct, BytesView label,
    std::span<const Tdh2DecryptionShare> shares, crypto::Drbg& rng);

/// Batch ciphertext validity: same construction over k independent
/// ciphertext proofs (labels[j] pairs with cts[j]).
Tdh2BatchVerdict tdh2_batch_verify_ciphertexts(
    const Tdh2PublicKey& pk, std::span<const Tdh2Ciphertext> cts,
    std::span<const Bytes> labels, crypto::Drbg& rng);

/// Comb: combines >= t shares with DISTINCT indices into the plaintext.
/// Shares must already have been verified with tdh2_verify_share (matching
/// the abstract syntax, where Comb consumes valid shares); returns nullopt
/// if fewer than t distinct-index shares are supplied or the ciphertext is
/// invalid.
std::optional<Bytes> tdh2_combine(const Tdh2PublicKey& pk,
                                  const Tdh2Ciphertext& ct, BytesView label,
                                  std::span<const Tdh2DecryptionShare> shares);

/// Comb for a ciphertext the caller ALREADY verified (see
/// tdh2_share_decrypt_preverified); still returns nullopt when fewer than
/// `threshold` distinct-index shares are supplied.
std::optional<Bytes> tdh2_combine_preverified(
    const Tdh2PublicKey& pk, const Tdh2Ciphertext& ct,
    std::span<const Tdh2DecryptionShare> shares);

}  // namespace scab::threshenc
