#include "crypto/modgroup.h"

#include <stdexcept>

#include "crypto/sha256.h"

namespace scab::crypto {

namespace {
// RFC 2409, section 6.2: 1024-bit MODP group ("Oakley Group 2").
// p = 2^1024 - 2^960 - 1 + 2^64 * floor(2^894 * pi + 129093), a safe prime.
constexpr const char* kModp1024Hex =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF";
// Generated with random_safe_prime(512) from the fixed seed
// "scab-512-safe-prime-search-v1"; both p and (p-1)/2 revalidated by
// tests/modgroup_test.cc.
constexpr const char* kModp512Hex =
    "d913181945b49c2e8d4725e4b422863c39fd01d935b85ab232f8f154a41ce59f"
    "b2c7a43244e93dc007682dc753322e5e8584717d08f07ae4390732da5fc68d2f";
}  // namespace

ModGroup::ModGroup(Bignum p, Bignum q, Bignum g)
    : p_(std::move(p)), q_(std::move(q)), g_(std::move(g)) {
  if ((q_ << 1) + Bignum(1) != p_) {
    throw std::invalid_argument("ModGroup: p must equal 2q + 1");
  }
  gbar_ = hash_to_element(to_bytes("scab.modgroup.gbar.v1"));
}

ModGroup ModGroup::modp_1024() {
  Bignum p = Bignum::from_hex(kModp1024Hex);
  Bignum q = (p - Bignum(1)) >> 1;
  // p = 7 mod 8, so 2 is a quadratic residue and generates the order-q
  // subgroup (q prime means every non-identity QR is a generator).
  return ModGroup(std::move(p), std::move(q), Bignum(2));
}

ModGroup ModGroup::modp_512() {
  Bignum p = Bignum::from_hex(kModp512Hex);
  Bignum q = (p - Bignum(1)) >> 1;
  // p = 7 mod 8 (low byte 0x2f), so 2 generates the order-q QR subgroup.
  return ModGroup(std::move(p), std::move(q), Bignum(2));
}

ModGroup ModGroup::generate(std::size_t bits, Drbg& rng) {
  Bignum p = random_safe_prime(bits, rng);
  Bignum q = (p - Bignum(1)) >> 1;
  // Find a generator of the QR subgroup: square a random element; retry on
  // the identity.
  Bignum g;
  do {
    const Bignum h = random_nonzero_below(p, rng);
    g = mod_mul(h, h, p);
  } while (g == Bignum(1));
  return ModGroup(std::move(p), std::move(q), std::move(g));
}

Bignum ModGroup::exp(const Bignum& base, const Bignum& e) const {
  return mod_exp(base, e, p_);
}

Bignum ModGroup::mul(const Bignum& a, const Bignum& b) const {
  return mod_mul(a, b, p_);
}

Bignum ModGroup::inv(const Bignum& a) const { return mod_inv_prime(a, p_); }

bool ModGroup::is_element(const Bignum& x) const {
  if (x.is_zero() || x >= p_) return false;
  return exp(x, q_) == Bignum(1);
}

Bignum ModGroup::hash_to_element(BytesView seed) const {
  // Expand the seed with a counter until we land on a non-identity element
  // after squaring (squaring maps Z_p^* into the QR subgroup).
  for (uint64_t ctr = 0;; ++ctr) {
    Bytes material;
    const std::size_t want = element_bytes() + 16;
    while (material.size() < want) {
      uint8_t ctr_bytes[16];
      for (int i = 0; i < 8; ++i) {
        ctr_bytes[i] = static_cast<uint8_t>(ctr >> (8 * i));
        ctr_bytes[8 + i] = static_cast<uint8_t>(material.size() >> (8 * i));
      }
      append(material,
             sha256_tuple({to_bytes("scab.h2e"), seed, BytesView(ctr_bytes, 16)}));
    }
    const Bignum x = Bignum::from_bytes_be(material) % p_;
    if (x.is_zero()) continue;
    const Bignum e = mod_mul(x, x, p_);
    if (e != Bignum(1)) return e;
  }
}

Bignum ModGroup::hash_to_exponent(BytesView data) const {
  // Derive ~ q-size + 128 extra bits and reduce; the statistical distance
  // from uniform is negligible.
  Bytes material;
  const std::size_t want = exponent_bytes() + 16;
  uint64_t ctr = 0;
  while (material.size() < want) {
    uint8_t ctr_bytes[8];
    for (int i = 0; i < 8; ++i) ctr_bytes[i] = static_cast<uint8_t>(ctr >> (8 * i));
    append(material,
           sha256_tuple({to_bytes("scab.h2x"), data, BytesView(ctr_bytes, 8)}));
    ++ctr;
  }
  return Bignum::from_bytes_be(material) % q_;
}

Bignum ModGroup::random_exponent(Drbg& rng) const {
  return random_below(q_, rng);
}

}  // namespace scab::crypto
