#include "crypto/modgroup.h"

#include <stdexcept>

#include "crypto/sha256.h"

namespace scab::crypto {

namespace {
// RFC 2409, section 6.2: 1024-bit MODP group ("Oakley Group 2").
// p = 2^1024 - 2^960 - 1 + 2^64 * floor(2^894 * pi + 129093), a safe prime.
constexpr const char* kModp1024Hex =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF";
// Generated with random_safe_prime(512) from the fixed seed
// "scab-512-safe-prime-search-v1"; both p and (p-1)/2 revalidated by
// tests/modgroup_test.cc.
constexpr const char* kModp512Hex =
    "d913181945b49c2e8d4725e4b422863c39fd01d935b85ab232f8f154a41ce59f"
    "b2c7a43244e93dc007682dc753322e5e8584717d08f07ae4390732da5fc68d2f";

constexpr std::size_t kMaxCachedBases = 8;
}  // namespace

ModGroup::ModGroup(Bignum p, Bignum q, Bignum g)
    : p_(std::move(p)), q_(std::move(q)), g_(std::move(g)) {
  if ((q_ << 1) + Bignum(1) != p_) {
    throw std::invalid_argument("ModGroup: p must equal 2q + 1");
  }
  mont_ = std::make_shared<Montgomery>(p_);
  if (q_.is_odd() && q_ > Bignum(1)) {
    mont_q_ = std::make_shared<Montgomery>(q_);
  }
  gbar_ = hash_to_element(to_bytes("scab.modgroup.gbar.v1"));
  g_table_ = std::make_shared<const Montgomery::Table>(
      mont_->make_table(mont_->to_mont(g_)));
  gbar_table_ = std::make_shared<const Montgomery::Table>(
      mont_->make_table(mont_->to_mont(gbar_)));
  extra_tables_ = std::make_shared<std::vector<FixedBase>>();
}

ModGroup ModGroup::modp_1024() {
  Bignum p = Bignum::from_hex(kModp1024Hex);
  Bignum q = (p - Bignum(1)) >> 1;
  // p = 7 mod 8, so 2 is a quadratic residue and generates the order-q
  // subgroup (q prime means every non-identity QR is a generator).
  return ModGroup(std::move(p), std::move(q), Bignum(2));
}

ModGroup ModGroup::modp_512() {
  Bignum p = Bignum::from_hex(kModp512Hex);
  Bignum q = (p - Bignum(1)) >> 1;
  // p = 7 mod 8 (low byte 0x2f), so 2 generates the order-q QR subgroup.
  return ModGroup(std::move(p), std::move(q), Bignum(2));
}

ModGroup ModGroup::generate(std::size_t bits, Drbg& rng) {
  Bignum p = random_safe_prime(bits, rng);
  Bignum q = (p - Bignum(1)) >> 1;
  // Find a generator of the QR subgroup: square a random element; retry on
  // the identity.
  Bignum g;
  do {
    const Bignum h = random_nonzero_below(p, rng);
    g = mod_mul(h, h, p);
  } while (g == Bignum(1));
  return ModGroup(std::move(p), std::move(q), std::move(g));
}

const Montgomery& ModGroup::require_mont() const {
  if (!mont_) throw std::domain_error("ModGroup: empty group");
  return *mont_;
}

const Montgomery& ModGroup::mont() const { return require_mont(); }

const Montgomery::Table* ModGroup::find_table(const Bignum& base) const {
  if (base == g_) return g_table_.get();
  if (base == gbar_) return gbar_table_.get();
  if (extra_tables_) {
    for (const auto& fb : *extra_tables_) {
      if (fb.base == base) return fb.table.get();
    }
  }
  return nullptr;
}

void ModGroup::cache_fixed_base(const Bignum& base) {
  const Montgomery& m = require_mont();
  if (find_table(base) != nullptr) return;
  auto& cache = *extra_tables_;
  if (cache.size() >= kMaxCachedBases) cache.erase(cache.begin());
  cache.push_back(FixedBase{
      base, std::make_shared<const Montgomery::Table>(
                m.make_table(m.to_mont(base)))});
}

Bignum ModGroup::exp(const Bignum& base, const Bignum& e) const {
  const Montgomery& m = require_mont();
  if (const Montgomery::Table* t = find_table(base)) {
    return m.from_mont(m.exp(*t, e));
  }
  return m.from_mont(m.exp(m.to_mont(base), e));
}

Bignum ModGroup::mul(const Bignum& a, const Bignum& b) const {
  const Montgomery& m = require_mont();
  return m.from_mont(m.mul(m.to_mont(a), m.to_mont(b)));
}

Bignum ModGroup::inv(const Bignum& a) const {
  const Montgomery& m = require_mont();
  const Bignum r = a % p_;
  if (r.is_zero()) throw std::domain_error("ModGroup::inv: zero");
  // Fermat: a^(p-2) mod p.
  return m.from_mont(m.exp(m.to_mont(r), p_ - Bignum(2)));
}

Bignum ModGroup::multi_exp(const Bignum& a, const Bignum& x, const Bignum& b,
                           const Bignum& y) const {
  const Montgomery& m = require_mont();
  return m.from_mont(m.multi_exp(m.to_mont(a), x, m.to_mont(b), y));
}

Bignum ModGroup::multi_exp(std::span<const Bignum> bases,
                           std::span<const Bignum> exps) const {
  const Montgomery& m = require_mont();
  std::vector<Montgomery::Limbs> mb;
  mb.reserve(bases.size());
  for (const Bignum& b : bases) mb.push_back(m.to_mont(b));
  return m.from_mont(m.multi_exp(mb, exps));
}

Bignum ModGroup::exp_ratio(const Bignum& a, const Bignum& x, const Bignum& b,
                           const Bignum& y) const {
  // b has order q, so b^{-y} = b^{q-y}; no Fermat inversion needed.
  return multi_exp(a, x, b, y.is_zero() ? Bignum(0) : q_ - y);
}

bool ModGroup::is_element(const Bignum& x) const {
  if (x.is_zero() || x >= p_) return false;
  if (!mont_) throw std::domain_error("ModGroup: empty group");
  // p is a safe prime and q = (p-1)/2, so Euler's criterion gives
  // x^q mod p == (x/p): the QR subgroup test is exactly Jacobi == 1.
  return jacobi(x, p_) == 1;
}

Bignum ModGroup::hash_to_element(BytesView seed) const {
  // Expand the seed with a counter until we land on a non-identity element
  // after squaring (squaring maps Z_p^* into the QR subgroup).
  for (uint64_t ctr = 0;; ++ctr) {
    Bytes material;
    const std::size_t want = element_bytes() + 16;
    while (material.size() < want) {
      uint8_t ctr_bytes[16];
      for (int i = 0; i < 8; ++i) {
        ctr_bytes[i] = static_cast<uint8_t>(ctr >> (8 * i));
        ctr_bytes[8 + i] = static_cast<uint8_t>(material.size() >> (8 * i));
      }
      append(material,
             sha256_tuple({to_bytes("scab.h2e"), seed, BytesView(ctr_bytes, 16)}));
    }
    const Bignum x = Bignum::from_bytes_be(material) % p_;
    if (x.is_zero()) continue;
    const Bignum e = mod_mul(x, x, p_);
    if (e != Bignum(1)) return e;
  }
}

Bignum ModGroup::hash_to_exponent(BytesView data) const {
  // Derive ~ q-size + 128 extra bits and reduce; the statistical distance
  // from uniform is negligible.
  Bytes material;
  const std::size_t want = exponent_bytes() + 16;
  uint64_t ctr = 0;
  while (material.size() < want) {
    uint8_t ctr_bytes[8];
    for (int i = 0; i < 8; ++i) ctr_bytes[i] = static_cast<uint8_t>(ctr >> (8 * i));
    append(material,
           sha256_tuple({to_bytes("scab.h2x"), data, BytesView(ctr_bytes, 8)}));
    ++ctr;
  }
  return Bignum::from_bytes_be(material) % q_;
}

Bignum ModGroup::random_exponent(Drbg& rng) const {
  return random_below(q_, rng);
}

Bignum ModGroup::inv_mod_q(const Bignum& a) const {
  const Bignum r = a % q_;
  if (r.is_zero()) throw std::domain_error("ModGroup::inv_mod_q: zero");
  if (!mont_q_) return mod_inv_prime(r, q_);  // tiny test groups with even q
  return mont_q_->from_mont(mont_q_->exp(mont_q_->to_mont(r), q_ - Bignum(2)));
}

}  // namespace scab::crypto
