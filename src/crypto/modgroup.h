// Schnorr groups: the prime-order subgroup of quadratic residues modulo a
// safe prime p = 2q + 1.
//
// This is the algebraic setting of the TDH2 labeled threshold cryptosystem
// (see src/threshenc).  The benchmark configuration uses the well-known
// 1024-bit MODP group (RFC 2409 Oakley Group 2) — deliberately matching the
// paper's "very conservative (insecure) security parameter (less than 80
// bits of security)" for CP0's evaluation — while tests use small
// freshly-generated safe-prime groups so the whole pipeline stays fast.
//
// All arithmetic runs in Montgomery form (crypto/montgomery.h).  The group
// caches fixed-base window tables for its generators g and ḡ, plus any
// bases registered with cache_fixed_base (TDH2 caches the public value h),
// so the hot exponentiations skip both the per-call table build and every
// trial division of the old schoolbook path.  The Montgomery context and
// tables are shared_ptr-held: copying a ModGroup (it travels by value inside
// Tdh2PublicKey) shares the precomputation instead of redoing it.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/bignum.h"
#include "crypto/drbg.h"
#include "crypto/montgomery.h"

namespace scab::crypto {

class ModGroup {
 public:
  /// RFC 2409 Oakley Group 2 (1024-bit safe prime, generator 2).
  static ModGroup modp_1024();

  /// A fixed 512-bit safe-prime group (generated once with this library's
  /// own random_safe_prime and revalidated by the test suite).  Used by the
  /// group-size ablation bench: roughly the paper's "less than 80 bits of
  /// security" setting.
  static ModGroup modp_512();

  /// Generates a fresh safe-prime group of exactly `bits` bits.  Intended
  /// for tests (small bits) and the group-size ablation bench.
  static ModGroup generate(std::size_t bits, Drbg& rng);

  ModGroup(Bignum p, Bignum q, Bignum g);

  /// Empty (invalid) group; exists only so aggregates holding a ModGroup can
  /// be default-constructed before assignment.  Using an empty group throws.
  ModGroup() = default;

  const Bignum& p() const { return p_; }
  /// Subgroup order q = (p - 1) / 2.
  const Bignum& q() const { return q_; }
  /// Generator of the order-q subgroup.
  const Bignum& g() const { return g_; }
  /// Independent second generator ḡ (derived by hashing into the subgroup).
  const Bignum& gbar() const { return gbar_; }

  /// Number of bytes of a serialized group element (fixed width).
  std::size_t element_bytes() const { return (p_.bit_length() + 7) / 8; }
  /// Number of bytes of a serialized exponent (fixed width).
  std::size_t exponent_bytes() const { return (q_.bit_length() + 7) / 8; }

  Bignum exp(const Bignum& base, const Bignum& e) const;
  Bignum mul(const Bignum& a, const Bignum& b) const;
  Bignum inv(const Bignum& a) const;

  /// a^x · b^y in one shared squaring chain (Shamir's trick) — roughly the
  /// cost of 1.25 exponentiations instead of 2 plus a multiply.
  Bignum multi_exp(const Bignum& a, const Bignum& x, const Bignum& b,
                   const Bignum& y) const;

  /// Π bases[i]^{exps[i]} for many terms (Straus/Pippenger, see
  /// Montgomery::multi_exp).  The one-equation form of randomized batch
  /// verification: k proofs collapse into a single multi-exponentiation.
  Bignum multi_exp(std::span<const Bignum> bases,
                   std::span<const Bignum> exps) const;

  /// a^x · b^{-y} for a base b of the ORDER-q SUBGROUP (b^{-y} = b^{q-y}),
  /// the shape of every Fiat–Shamir verification equation in TDH2.  Replaces
  /// two exponentiations plus a Fermat inversion (itself a third
  /// exponentiation) with one multi_exp.
  Bignum exp_ratio(const Bignum& a, const Bignum& x, const Bignum& b,
                   const Bignum& y) const;

  /// Registers a fixed-base window table for `base` so later exp() calls
  /// with it are table-driven; TDH2 keygen registers the public value h.
  /// The cache is small and FIFO-bounded; copies of this group share it.
  void cache_fixed_base(const Bignum& base);

  /// True iff x is a valid element of the order-q subgroup (1 <= x < p and
  /// x^q = 1 mod p).  Used to validate all untrusted wire inputs.  By
  /// Euler's criterion x^q mod p equals the Jacobi symbol (x/p), so this is
  /// a GCD-speed bit-twiddling test, not an exponentiation — which is what
  /// makes per-item membership prechecks affordable in batch verification.
  bool is_element(const Bignum& x) const;

  /// Deterministically maps arbitrary bytes into the subgroup (hash then
  /// square), for deriving ḡ and other verifiably-random elements.
  Bignum hash_to_element(BytesView seed) const;

  /// Deterministically maps arbitrary bytes to an exponent in [0, q)
  /// (random-oracle H2/H4 of TDH2, Fiat–Shamir challenges).
  Bignum hash_to_exponent(BytesView data) const;

  /// Uniform exponent in [0, q).
  Bignum random_exponent(Drbg& rng) const;

  /// a^(-1) mod q (Fermat over the exponent field; q is prime).  Used by
  /// Lagrange coefficients in threshold combination.
  Bignum inv_mod_q(const Bignum& a) const;

  /// The underlying Montgomery context (throws on an empty group).
  const Montgomery& mont() const;

  bool operator==(const ModGroup& rhs) const {
    return p_ == rhs.p_ && q_ == rhs.q_ && g_ == rhs.g_;
  }

 private:
  struct FixedBase {
    Bignum base;
    std::shared_ptr<const Montgomery::Table> table;
  };

  const Montgomery& require_mont() const;
  /// Table for `base` if one is cached (g, ḡ, or registered), else nullptr.
  const Montgomery::Table* find_table(const Bignum& base) const;

  Bignum p_, q_, g_, gbar_;
  std::shared_ptr<const Montgomery> mont_;
  std::shared_ptr<const Montgomery> mont_q_;  // exponent field (null if q even)
  std::shared_ptr<const Montgomery::Table> g_table_, gbar_table_;
  // Extra fixed bases (FIFO, kMaxCachedBases) registered after construction;
  // shared_ptr so value copies of the group see the same tables.
  std::shared_ptr<std::vector<FixedBase>> extra_tables_;
};

}  // namespace scab::crypto
