// Authenticated encryption with associated data, composed as
// CTR(AES-256) then HMAC-SHA256 (encrypt-then-MAC), exactly the composition
// the paper names in §VI-A for building authenticated *and private*
// channels (Rogaway's generic AEAD composition [58]).
//
// Wire layout of a sealed box:  nonce(16) || ciphertext || tag(16)
// The tag covers  associated_data || nonce || ciphertext.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "crypto/drbg.h"

namespace scab::crypto {

inline constexpr std::size_t kAeadKeySize = 64;  // 32 enc + 32 mac
inline constexpr std::size_t kAeadNonceSize = 16;
inline constexpr std::size_t kAeadTagSize = 16;
inline constexpr std::size_t kAeadOverhead = kAeadNonceSize + kAeadTagSize;

/// Seals `plaintext` under `key` (64 bytes: enc key || mac key), binding
/// `associated_data`. The nonce is drawn from `rng`.
Bytes aead_seal(BytesView key, BytesView associated_data, BytesView plaintext,
                Drbg& rng);

/// Opens a sealed box. Returns std::nullopt on any authenticity failure.
std::optional<Bytes> aead_open(BytesView key, BytesView associated_data,
                               BytesView box);

}  // namespace scab::crypto
