// Arbitrary-precision unsigned integers and modular arithmetic, from scratch.
//
// This is the numeric substrate for the TDH2 labeled threshold cryptosystem
// (CP0).  Scope is deliberately exactly what threshold crypto needs:
// non-negative integers, schoolbook multiplication, Knuth Algorithm-D
// division, 4-bit-window modular exponentiation, Fermat inversion modulo a
// prime, Miller–Rabin, and uniform sampling.  No signed values, no
// allocation tricks — limbs live in a std::vector<uint64_t>, little-endian,
// always normalized (no leading zero limbs; zero is the empty vector).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/drbg.h"

namespace scab::crypto {

struct DivMod;

class Bignum {
 public:
  Bignum() = default;
  Bignum(uint64_t v);  // NOLINT: implicit on purpose — literals read naturally

  static Bignum from_bytes_be(BytesView big_endian);
  static Bignum from_hex(std::string_view hex);

  /// Minimal-width big-endian encoding ("0" encodes to one zero byte... no:
  /// zero encodes to an empty buffer; use the width overload for fixed-size
  /// wire fields).
  Bytes to_bytes_be() const;
  /// Fixed-width big-endian encoding, left-padded with zeros.  Throws if the
  /// value does not fit.
  Bytes to_bytes_be(std::size_t width) const;
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  /// Number of significant bits; 0 for zero.
  std::size_t bit_length() const;
  /// Value of bit `i` (0 = least significant).
  bool bit(std::size_t i) const;
  /// Low 64 bits.
  uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  std::strong_ordering operator<=>(const Bignum& rhs) const;
  bool operator==(const Bignum& rhs) const = default;

  Bignum operator+(const Bignum& rhs) const;
  /// Requires *this >= rhs; throws std::underflow_error otherwise.
  Bignum operator-(const Bignum& rhs) const;
  Bignum operator*(const Bignum& rhs) const;
  Bignum operator/(const Bignum& rhs) const;
  Bignum operator%(const Bignum& rhs) const;
  Bignum operator<<(std::size_t bits) const;
  Bignum operator>>(std::size_t bits) const;

  const std::vector<uint64_t>& limbs() const { return limbs_; }

  friend struct DivMod;
  friend DivMod divmod(const Bignum& dividend, const Bignum& divisor);

 private:
  void normalize();

  std::vector<uint64_t> limbs_;
};

/// Quotient and remainder in one pass; divisor must be nonzero.
struct DivMod {
  Bignum quotient;
  Bignum remainder;
};
DivMod divmod(const Bignum& dividend, const Bignum& divisor);

/// Times Algorithm D's rare add-back correction has fired since process
/// start.  Test instrumentation: crafted divisor patterns must be able to
/// prove they actually exercise the branch.
uint64_t divmod_addback_count();

/// (a + b) mod m; inputs must already be reduced mod m.
Bignum mod_add(const Bignum& a, const Bignum& b, const Bignum& m);
/// (a - b) mod m; inputs must already be reduced mod m.
Bignum mod_sub(const Bignum& a, const Bignum& b, const Bignum& m);
Bignum mod_mul(const Bignum& a, const Bignum& b, const Bignum& m);
/// base^exp mod m via 4-bit fixed windows; m must be > 1.
Bignum mod_exp(const Bignum& base, const Bignum& exp, const Bignum& m);
/// a^(-1) mod p for PRIME p (Fermat). a must be nonzero mod p.
Bignum mod_inv_prime(const Bignum& a, const Bignum& p);

/// Jacobi symbol (a/n) in {-1, 0, 1}; n must be odd and > 0.  Binary
/// algorithm: O(bits^2) word operations, no division beyond the initial
/// reduction — far cheaper than an exponentiation.  For prime n this is the
/// Legendre symbol, i.e. Euler's criterion a^{(n-1)/2} mod n, which is what
/// lets ModGroup test quadratic residuosity without a modexp.
int jacobi(const Bignum& a, const Bignum& n);

/// Uniform value in [0, bound) via rejection sampling; bound must be > 0.
Bignum random_below(const Bignum& bound, Drbg& rng);
/// Uniform value in [1, bound); bound must be > 1.
Bignum random_nonzero_below(const Bignum& bound, Drbg& rng);

/// Miller–Rabin with `rounds` random bases (error probability <= 4^-rounds).
bool is_probably_prime(const Bignum& n, Drbg& rng, int rounds = 32);

/// Generates a random prime with exactly `bits` bits.
Bignum random_prime(std::size_t bits, Drbg& rng);
/// Generates a safe prime p = 2q + 1 (both prime) with exactly `bits` bits.
/// Intended for small test groups; benches use the fixed MODP groups.
Bignum random_safe_prime(std::size_t bits, Drbg& rng);

}  // namespace scab::crypto
