#include "crypto/bignum.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace scab::crypto {

namespace {
using u128 = unsigned __int128;
constexpr uint64_t kLimbMax = ~uint64_t{0};
}  // namespace

Bignum::Bignum(uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void Bignum::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Bignum Bignum::from_bytes_be(BytesView big_endian) {
  Bignum out;
  const std::size_t n = big_endian.size();
  out.limbs_.resize((n + 7) / 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // byte i (from the most-significant end) goes to bit position 8*(n-1-i)
    const std::size_t bitpos = 8 * (n - 1 - i);
    out.limbs_[bitpos / 64] |= static_cast<uint64_t>(big_endian[i])
                               << (bitpos % 64);
  }
  out.normalize();
  return out;
}

Bignum Bignum::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  return from_bytes_be(hex_decode(padded));
}

Bytes Bignum::to_bytes_be() const {
  if (limbs_.empty()) return {};
  const std::size_t nbytes = (bit_length() + 7) / 8;
  return to_bytes_be(nbytes);
}

Bytes Bignum::to_bytes_be(std::size_t width) const {
  if (bit_length() > width * 8) {
    throw std::length_error("Bignum::to_bytes_be: value wider than field");
  }
  Bytes out(width, 0);
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t bitpos = 8 * (width - 1 - i);
    const std::size_t limb = bitpos / 64;
    if (limb < limbs_.size()) {
      out[i] = static_cast<uint8_t>(limbs_[limb] >> (bitpos % 64));
    }
  }
  return out;
}

std::string Bignum::to_hex() const {
  if (limbs_.empty()) return "0";
  std::string s = hex_encode(to_bytes_be());
  const std::size_t nz = s.find_first_not_of('0');
  return s.substr(nz == std::string::npos ? s.size() - 1 : nz);
}

std::size_t Bignum::bit_length() const {
  if (limbs_.empty()) return 0;
  return 64 * (limbs_.size() - 1) +
         (64 - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool Bignum::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

std::strong_ordering Bignum::operator<=>(const Bignum& rhs) const {
  if (limbs_.size() != rhs.limbs_.size()) {
    return limbs_.size() <=> rhs.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != rhs.limbs_[i]) return limbs_[i] <=> rhs.limbs_[i];
  }
  return std::strong_ordering::equal;
}

Bignum Bignum::operator+(const Bignum& rhs) const {
  Bignum out;
  const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const uint64_t a = i < limbs_.size() ? limbs_[i] : 0;
    const uint64_t b = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    const u128 sum = static_cast<u128>(a) + b + carry;
    out.limbs_[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.normalize();
  return out;
}

Bignum Bignum::operator-(const Bignum& rhs) const {
  if (*this < rhs) throw std::underflow_error("Bignum: negative difference");
  Bignum out;
  out.limbs_.resize(limbs_.size(), 0);
  uint64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const uint64_t b = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    const uint64_t a = limbs_[i];
    const uint64_t sub = b + borrow;
    // borrow propagates iff b+borrow overflows or a < sub
    const uint64_t new_borrow = (sub < b) || (a < sub) ? 1 : 0;
    out.limbs_[i] = a - sub;
    borrow = new_borrow;
  }
  out.normalize();
  return out;
}

Bignum Bignum::operator*(const Bignum& rhs) const {
  if (limbs_.empty() || rhs.limbs_.empty()) return {};
  Bignum out;
  out.limbs_.assign(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(a) * rhs.limbs_[j] +
                       out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out.limbs_[i + rhs.limbs_.size()] = carry;
  }
  out.normalize();
  return out;
}

Bignum Bignum::operator<<(std::size_t bits) const {
  if (limbs_.empty() || bits == 0) {
    Bignum out = *this;
    return out;
  }
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  Bignum out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.normalize();
  return out;
}

Bignum Bignum::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) return {};
  const std::size_t bit_shift = bits % 64;
  Bignum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.normalize();
  return out;
}

namespace {
uint64_t g_divmod_addback_count = 0;
}  // namespace

uint64_t divmod_addback_count() { return g_divmod_addback_count; }

DivMod divmod(const Bignum& dividend, const Bignum& divisor) {
  if (divisor.is_zero()) throw std::domain_error("Bignum: division by zero");
  if (dividend < divisor) return {Bignum{}, dividend};

  // Single-limb divisor: simple 128/64 division loop.
  if (divisor.limbs_.size() == 1) {
    const uint64_t d = divisor.limbs_[0];
    Bignum q;
    q.limbs_.assign(dividend.limbs_.size(), 0);
    u128 rem = 0;
    for (std::size_t i = dividend.limbs_.size(); i-- > 0;) {
      const u128 cur = (rem << 64) | dividend.limbs_[i];
      q.limbs_[i] = static_cast<uint64_t>(cur / d);
      rem = cur % d;
    }
    q.normalize();
    return {std::move(q), Bignum(static_cast<uint64_t>(rem))};
  }

  // Knuth TAOCP vol.2 Algorithm D.
  const int shift = std::countl_zero(divisor.limbs_.back());
  const Bignum vn = divisor << static_cast<std::size_t>(shift);
  Bignum un = dividend << static_cast<std::size_t>(shift);
  const std::size_t n = vn.limbs_.size();
  un.limbs_.resize(std::max(un.limbs_.size(), dividend.limbs_.size() + 1), 0);
  // Ensure un has (m + n + 1) limbs where m = #quotient limbs - 1.
  const std::size_t m = un.limbs_.size() >= n ? un.limbs_.size() - n : 0;
  un.limbs_.resize(m + n + 1, 0);

  Bignum q;
  q.limbs_.assign(m + 1, 0);

  const uint64_t v_hi = vn.limbs_[n - 1];
  const uint64_t v_lo = vn.limbs_[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    const u128 numerator =
        (static_cast<u128>(un.limbs_[j + n]) << 64) | un.limbs_[j + n - 1];
    u128 qhat = numerator / v_hi;
    u128 rhat = numerator % v_hi;

    while (qhat > kLimbMax ||
           qhat * v_lo > ((rhat << 64) | un.limbs_[j + n - 2])) {
      --qhat;
      rhat += v_hi;
      if (rhat > kLimbMax) break;
    }

    // Multiply-and-subtract qhat * vn from un[j .. j+n].
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u128 prod = qhat * vn.limbs_[i] + carry;
      carry = prod >> 64;
      const uint64_t sub = static_cast<uint64_t>(prod);
      const u128 diff = static_cast<u128>(un.limbs_[i + j]) - sub - borrow;
      un.limbs_[i + j] = static_cast<uint64_t>(diff);
      borrow = (diff >> 64) ? 1 : 0;
    }
    const u128 diff = static_cast<u128>(un.limbs_[j + n]) -
                      static_cast<uint64_t>(carry) - borrow;
    un.limbs_[j + n] = static_cast<uint64_t>(diff);

    if (diff >> 64) {
      // qhat was one too large: add vn back.
      ++g_divmod_addback_count;
      --qhat;
      u128 c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const u128 sum = static_cast<u128>(un.limbs_[i + j]) + vn.limbs_[i] + c;
        un.limbs_[i + j] = static_cast<uint64_t>(sum);
        c = sum >> 64;
      }
      un.limbs_[j + n] += static_cast<uint64_t>(c);
    }
    q.limbs_[j] = static_cast<uint64_t>(qhat);
  }

  q.normalize();
  un.limbs_.resize(n);
  un.normalize();
  return {std::move(q), un >> static_cast<std::size_t>(shift)};
}

Bignum Bignum::operator/(const Bignum& rhs) const {
  return divmod(*this, rhs).quotient;
}

Bignum Bignum::operator%(const Bignum& rhs) const {
  return divmod(*this, rhs).remainder;
}

Bignum mod_add(const Bignum& a, const Bignum& b, const Bignum& m) {
  Bignum s = a + b;
  if (s >= m) s = s - m;
  return s;
}

Bignum mod_sub(const Bignum& a, const Bignum& b, const Bignum& m) {
  if (a >= b) return a - b;
  return (a + m) - b;
}

Bignum mod_mul(const Bignum& a, const Bignum& b, const Bignum& m) {
  return (a * b) % m;
}

Bignum mod_exp(const Bignum& base, const Bignum& exp, const Bignum& m) {
  if (m <= Bignum(1)) throw std::domain_error("mod_exp: modulus must be > 1");
  if (exp.is_zero()) return Bignum(1);

  // 4-bit fixed window: precompute base^0..base^15 mod m.
  std::vector<Bignum> table(16);
  table[0] = Bignum(1);
  table[1] = base % m;
  for (int i = 2; i < 16; ++i) table[i] = mod_mul(table[i - 1], table[1], m);

  const std::size_t bits = exp.bit_length();
  const std::size_t windows = (bits + 3) / 4;
  Bignum acc(1);
  for (std::size_t w = windows; w-- > 0;) {
    for (int i = 0; i < 4; ++i) acc = mod_mul(acc, acc, m);
    unsigned digit = 0;
    for (int i = 3; i >= 0; --i) {
      digit = (digit << 1) | (exp.bit(4 * w + static_cast<std::size_t>(i)) ? 1u : 0u);
    }
    if (digit != 0) acc = mod_mul(acc, table[digit], m);
  }
  return acc;
}

Bignum mod_inv_prime(const Bignum& a, const Bignum& p) {
  const Bignum r = a % p;
  if (r.is_zero()) throw std::domain_error("mod_inv_prime: zero has no inverse");
  return mod_exp(r, p - Bignum(2), p);
}

int jacobi(const Bignum& a_in, const Bignum& n_in) {
  if (!n_in.is_odd()) throw std::domain_error("jacobi: n must be odd");
  Bignum a = a_in % n_in;
  Bignum n = n_in;
  int result = 1;
  while (!a.is_zero()) {
    // Strip factors of two: (2/n) = -1 iff n = +-3 mod 8.
    std::size_t twos = 0;
    while (!a.bit(twos)) ++twos;
    if (twos > 0) {
      a = a >> twos;
      const uint64_t n8 = n.low_u64() & 7;
      if ((twos & 1) && (n8 == 3 || n8 == 5)) result = -result;
    }
    // Quadratic reciprocity: flip sign iff both a and n are 3 mod 4.
    if ((a.low_u64() & 3) == 3 && (n.low_u64() & 3) == 3) result = -result;
    std::swap(a, n);
    a = a % n;
  }
  return n == Bignum(1) ? result : 0;
}

Bignum random_below(const Bignum& bound, Drbg& rng) {
  if (bound.is_zero()) throw std::domain_error("random_below: empty range");
  const std::size_t bits = bound.bit_length();
  const std::size_t nbytes = (bits + 7) / 8;
  const unsigned top_mask =
      bits % 8 == 0 ? 0xffu : ((1u << (bits % 8)) - 1u);
  for (;;) {
    Bytes raw = rng.generate(nbytes);
    raw[0] &= static_cast<uint8_t>(top_mask);
    Bignum candidate = Bignum::from_bytes_be(raw);
    if (candidate < bound) return candidate;
  }
}

Bignum random_nonzero_below(const Bignum& bound, Drbg& rng) {
  for (;;) {
    Bignum candidate = random_below(bound, rng);
    if (!candidate.is_zero()) return candidate;
  }
}

bool is_probably_prime(const Bignum& n, Drbg& rng, int rounds) {
  if (n < Bignum(2)) return false;
  for (uint64_t small : {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}) {
    const Bignum sp(small);
    if (n == sp) return true;
    if ((n % sp).is_zero()) return false;
  }
  // Write n - 1 = d * 2^r with d odd.
  const Bignum n_minus_1 = n - Bignum(1);
  std::size_t r = 0;
  Bignum d = n_minus_1;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }
  const Bignum n_minus_3 = n - Bignum(3);
  for (int round = 0; round < rounds; ++round) {
    const Bignum a = random_below(n_minus_3, rng) + Bignum(2);  // [2, n-2]
    Bignum x = mod_exp(a, d, n);
    if (x == Bignum(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 1; i < r; ++i) {
      x = mod_mul(x, x, n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

Bignum random_prime(std::size_t bits, Drbg& rng) {
  if (bits < 2) throw std::domain_error("random_prime: need >= 2 bits");
  for (;;) {
    const std::size_t nbytes = (bits + 7) / 8;
    Bytes raw = rng.generate(nbytes);
    // Force exact bit length and oddness.
    const std::size_t top_bit = (bits - 1) % 8;
    raw[0] &= static_cast<uint8_t>((1u << (top_bit + 1)) - 1u);
    raw[0] |= static_cast<uint8_t>(1u << top_bit);
    raw[nbytes - 1] |= 1;
    Bignum candidate = Bignum::from_bytes_be(raw);
    if (is_probably_prime(candidate, rng)) return candidate;
  }
}

Bignum random_safe_prime(std::size_t bits, Drbg& rng) {
  if (bits < 3) throw std::domain_error("random_safe_prime: need >= 3 bits");
  for (;;) {
    const Bignum q = random_prime(bits - 1, rng);
    const Bignum p = (q << 1) + Bignum(1);
    if (p.bit_length() == bits && is_probably_prime(p, rng)) return p;
  }
}

}  // namespace scab::crypto
