#include "crypto/commitment.h"

#include "crypto/sha256.h"

namespace scab::crypto {

namespace {
const Bytes kConvTag = to_bytes("scab.commit.v1");
const Bytes kNmCadTag = to_bytes("scab.nmcad.v1");
}  // namespace

Bytes Commitment::cgen(Drbg& rng) { return rng.generate(32); }

Committed Commitment::commit(BytesView message, Drbg& rng) const {
  Committed out;
  out.decommitment = rng.generate(kCommitCoinSize);
  out.commitment = sha256_tuple({kConvTag, ck_, message, out.decommitment});
  return out;
}

bool Commitment::open(BytesView commitment, BytesView message,
                      BytesView decommitment) const {
  if (decommitment.size() != kCommitCoinSize) return false;
  const Bytes expect = sha256_tuple({kConvTag, ck_, message, decommitment});
  return ct_equal(expect, commitment);
}

Bytes NmCadCommitment::cgen(Drbg& rng) { return rng.generate(32); }

Committed NmCadCommitment::commit(BytesView header, BytesView message,
                                  Drbg& rng) const {
  Committed out;
  out.decommitment = rng.generate(kCommitCoinSize);
  out.commitment =
      sha256_tuple({kNmCadTag, ck_, header, message, out.decommitment});
  return out;
}

bool NmCadCommitment::open(BytesView header, BytesView commitment,
                           BytesView message, BytesView decommitment) const {
  if (decommitment.size() != kCommitCoinSize) return false;
  const Bytes expect =
      sha256_tuple({kNmCadTag, ck_, header, message, decommitment});
  return ct_equal(expect, commitment);
}

}  // namespace scab::crypto
