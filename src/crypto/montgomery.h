// Montgomery-form modular arithmetic for a fixed odd modulus.
//
// This is the fast substrate under ModGroup: every Bignum mod_mul costs a
// schoolbook multiply plus a full Knuth division, while a Montgomery CIOS
// multiply is one fused k×k limb pass with no division at all.  A context
// precomputes n' = -n^{-1} mod 2^64 and R^2 mod n once per modulus (R =
// 2^{64k}); after converting operands into Montgomery form, multiplication,
// windowed exponentiation, fixed-base table exponentiation and simultaneous
// double exponentiation (Shamir's trick) all stay inside the form, paying
// only the cheap CIOS reduction per step.
//
// Values in Montgomery form are fixed-width little-endian limb vectors of
// exactly width() limbs (x·R mod n).  The context is immutable after
// construction and safe to share between threads.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/bignum.h"

namespace scab::crypto {

class Montgomery {
 public:
  /// A value in Montgomery form: exactly width() limbs, little-endian,
  /// already reduced below the modulus.
  using Limbs = std::vector<uint64_t>;

  /// Fixed-base window table: pow[i] = base^i (Montgomery form), i in 0..15.
  struct Table {
    std::array<Limbs, 16> pow;
  };

  /// Modulus must be odd and > 1 (any Schnorr-group prime qualifies).
  explicit Montgomery(const Bignum& modulus);

  const Bignum& modulus() const { return n_; }
  /// Limb width k of every Montgomery-form value (R = 2^{64k}).
  std::size_t width() const { return k_; }

  /// x·R mod n.  x need not be reduced.
  Limbs to_mont(const Bignum& x) const;
  /// a·R^{-1} mod n, back to a plain Bignum.
  Bignum from_mont(const Limbs& a) const;
  /// The multiplicative identity 1·R mod n.
  const Limbs& one() const { return r1_; }

  /// a·b·R^{-1} mod n (CIOS).
  Limbs mul(const Limbs& a, const Limbs& b) const;
  /// base^e mod n (4-bit window); returns one() for e = 0.
  Limbs exp(const Limbs& base, const Bignum& e) const;

  /// Precomputes base^0..base^15 so repeated exponentiations of the same
  /// base skip the per-call table build.
  Table make_table(const Limbs& base) const;
  Limbs exp(const Table& base, const Bignum& e) const;

  /// a^x · b^y mod n via a shared 2-bit joint window (Shamir's trick):
  /// one squaring chain for both exponents instead of two.
  Limbs multi_exp(const Limbs& a, const Bignum& x, const Limbs& b,
                  const Bignum& y) const;

  /// Π bases[i]^{exps[i]} mod n for many terms — the batch-verification
  /// workhorse.  One shared squaring chain for every term; per window the
  /// terms are either looked up in per-base 4-bit tables (Straus, small
  /// batches) or accumulated into 2^c shared buckets and folded with the
  /// suffix-product trick (Pippenger, large batches).  The crossover is
  /// chosen from an explicit multiply-count model of both plans, so short
  /// exponents (the 128/256-bit scalars of randomized batch verification)
  /// automatically get narrow windows.  Returns one() for an empty input.
  Limbs multi_exp(std::span<const Limbs> bases,
                  std::span<const Bignum> exps) const;

 private:
  // out = a·b·R^{-1} mod n; a, b, out are k_-limb buffers (out may not
  // alias a or b).
  void mont_mul(const uint64_t* a, const uint64_t* b, uint64_t* out) const;
  void mont_sqr_inplace(Limbs& a) const;

  Bignum n_;
  std::vector<uint64_t> n_limbs_;  // modulus, padded to k_ limbs
  std::size_t k_ = 0;
  uint64_t n0_ = 0;  // -n^{-1} mod 2^64
  Limbs r1_;         // R mod n   (Montgomery form of 1)
  Limbs r2_;         // R^2 mod n (to_mont multiplier)
};

}  // namespace scab::crypto
