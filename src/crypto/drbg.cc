#include "crypto/drbg.h"

#include <random>

#include "crypto/hmac.h"

namespace scab::crypto {

Drbg::Drbg(BytesView seed) : key_(32, 0x00), v_(32, 0x01) {
  update(seed);
}

Drbg Drbg::from_os_entropy() {
  std::random_device rd;
  Bytes seed(48);
  for (auto& b : seed) b = static_cast<uint8_t>(rd());
  return Drbg(seed);
}

void Drbg::update(BytesView provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  Bytes msg = concat(v_, Bytes{0x00}, provided);
  key_ = hmac_sha256(key_, msg);
  v_ = hmac_sha256(key_, v_);
  if (!provided.empty()) {
    msg = concat(v_, Bytes{0x01}, provided);
    key_ = hmac_sha256(key_, msg);
    v_ = hmac_sha256(key_, v_);
  }
}

Bytes Drbg::generate(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    v_ = hmac_sha256(key_, v_);
    const std::size_t take = std::min<std::size_t>(v_.size(), n - out.size());
    out.insert(out.end(), v_.begin(), v_.begin() + take);
  }
  update({});
  return out;
}

uint64_t Drbg::uniform(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling over the smallest power-of-two mask covering bound.
  uint64_t mask = bound - 1;
  mask |= mask >> 1;
  mask |= mask >> 2;
  mask |= mask >> 4;
  mask |= mask >> 8;
  mask |= mask >> 16;
  mask |= mask >> 32;
  for (;;) {
    const Bytes raw = generate(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(raw[i]) << (8 * i);
    v &= mask;
    if (v < bound) return v;
  }
}

void Drbg::reseed(BytesView material) { update(material); }

Drbg Drbg::fork(BytesView label) {
  const Bytes seed = concat(generate(32), label);
  return Drbg(seed);
}

}  // namespace scab::crypto
