#include "crypto/aead.h"

#include <stdexcept>

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace scab::crypto {

namespace {
struct KeyPair {
  BytesView enc;
  BytesView mac;
};

KeyPair split_key(BytesView key) {
  if (key.size() != kAeadKeySize) {
    throw std::invalid_argument("aead: key must be 64 bytes");
  }
  return {key.subspan(0, 32), key.subspan(32, 32)};
}
}  // namespace

Bytes aead_seal(BytesView key, BytesView associated_data, BytesView plaintext,
                Drbg& rng) {
  const KeyPair k = split_key(key);
  const Bytes nonce = rng.generate(kAeadNonceSize);
  const Bytes ct = aes256_ctr(k.enc, nonce, plaintext);
  const Bytes tag = hmac_sha256_trunc(
      k.mac, sha256_tuple({associated_data, nonce, ct}), kAeadTagSize);
  return concat(nonce, ct, tag);
}

std::optional<Bytes> aead_open(BytesView key, BytesView associated_data,
                               BytesView box) {
  const KeyPair k = split_key(key);
  if (box.size() < kAeadOverhead) return std::nullopt;
  const BytesView nonce = box.subspan(0, kAeadNonceSize);
  const BytesView ct = box.subspan(kAeadNonceSize, box.size() - kAeadOverhead);
  const BytesView tag = box.subspan(box.size() - kAeadTagSize);
  const Bytes expect = hmac_sha256_trunc(
      k.mac, sha256_tuple({associated_data, nonce, ct}), kAeadTagSize);
  if (!ct_equal(expect, tag)) return std::nullopt;
  return aes256_ctr(k.enc, nonce, ct);
}

}  // namespace scab::crypto
