// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used throughout the library: request digests, hash commitments (the NM-CAD
// instantiation of the paper's §IV-B is c = H_k(h, m, r) with H = SHA-256),
// HMAC, and the random-oracle hashes of the TDH2 threshold cryptosystem.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace scab::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  Sha256& update(BytesView data);
  /// Finalizes and returns the 32-byte digest. The hasher must not be
  /// updated afterwards (reset() first).
  std::array<uint8_t, kSha256DigestSize> digest();
  void reset();

 private:
  void process_block(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

/// One-shot convenience: SHA-256 of `data` as a Bytes.
Bytes sha256(BytesView data);

/// SHA-256 over the concatenation of several byte views, with each view
/// length-prefixed (u64) so distinct splits hash differently.  This is the
/// canonical "hash a tuple" helper used by commitments and NIZK challenges.
Bytes sha256_tuple(std::initializer_list<BytesView> views);

}  // namespace scab::crypto
