#include "crypto/aes.h"

#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) || defined(__i386__)
#include <wmmintrin.h>
#define SCAB_X86 1
#endif

namespace scab::crypto {

namespace {

// The S-box and the round T-tables are generated at startup from their
// algebraic definitions (multiplicative inverse in GF(2^8) plus the affine
// map) rather than transcribed — a table typo would be silent, the algebra
// cannot be.  The T-tables fold SubBytes + ShiftRows + MixColumns into four
// lookups per output column (classic software AES).
struct AesTables {
  uint8_t sbox[256];
  uint32_t te0[256], te1[256], te2[256], te3[256];

  static uint8_t gf_mul(uint8_t a, uint8_t b) {
    uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
      if (b & 1) p ^= a;
      const bool hi = a & 0x80;
      a <<= 1;
      if (hi) a ^= 0x1b;  // x^8 + x^4 + x^3 + x + 1
      b >>= 1;
    }
    return p;
  }

  AesTables() {
    auto inv = [](uint8_t a) -> uint8_t {
      if (a == 0) return 0;
      uint8_t result = 1, base = a;
      int e = 254;
      while (e) {
        if (e & 1) result = gf_mul(result, base);
        base = gf_mul(base, base);
        e >>= 1;
      }
      return result;
    };
    for (int x = 0; x < 256; ++x) {
      const uint8_t i = inv(static_cast<uint8_t>(x));
      uint8_t s = 0;
      for (int bit = 0; bit < 8; ++bit) {
        const int b = ((i >> bit) & 1) ^ ((i >> ((bit + 4) % 8)) & 1) ^
                      ((i >> ((bit + 5) % 8)) & 1) ^ ((i >> ((bit + 6) % 8)) & 1) ^
                      ((i >> ((bit + 7) % 8)) & 1) ^ ((0x63 >> bit) & 1);
        s |= static_cast<uint8_t>(b << bit);
      }
      sbox[x] = s;
      const uint8_t s2 = gf_mul(s, 2);
      const uint8_t s3 = gf_mul(s, 3);
      // Column layout (big-endian word): [2s, s, s, 3s] for te0.
      te0[x] = static_cast<uint32_t>(s2) << 24 | static_cast<uint32_t>(s) << 16 |
               static_cast<uint32_t>(s) << 8 | s3;
      te1[x] = static_cast<uint32_t>(s3) << 24 | static_cast<uint32_t>(s2) << 16 |
               static_cast<uint32_t>(s) << 8 | s;
      te2[x] = static_cast<uint32_t>(s) << 24 | static_cast<uint32_t>(s3) << 16 |
               static_cast<uint32_t>(s2) << 8 | s;
      te3[x] = static_cast<uint32_t>(s) << 24 | static_cast<uint32_t>(s) << 16 |
               static_cast<uint32_t>(s3) << 8 | s2;
    }
  }
};

const AesTables kT;

inline uint32_t sub_word(uint32_t w) {
  return static_cast<uint32_t>(kT.sbox[(w >> 24) & 0xff]) << 24 |
         static_cast<uint32_t>(kT.sbox[(w >> 16) & 0xff]) << 16 |
         static_cast<uint32_t>(kT.sbox[(w >> 8) & 0xff]) << 8 |
         static_cast<uint32_t>(kT.sbox[w & 0xff]);
}

inline uint32_t rot_word(uint32_t w) { return (w << 8) | (w >> 24); }

inline uint8_t xtime(uint8_t a) {
  return static_cast<uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00));
}

inline uint32_t load_be32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) << 24 | static_cast<uint32_t>(p[1]) << 16 |
         static_cast<uint32_t>(p[2]) << 8 | p[3];
}

inline void store_be32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

}  // namespace

Aes256::Aes256(BytesView key) {
  if (key.size() != kAes256KeySize) {
    throw std::invalid_argument("Aes256: key must be 32 bytes");
  }
  constexpr int kNk = 8;   // key words
  constexpr int kNr = 14;  // rounds
  for (int i = 0; i < kNk; ++i) round_keys_[i] = load_be32(key.data() + 4 * i);
  uint32_t rcon = 0x01000000;
  for (int i = kNk; i < 4 * (kNr + 1); ++i) {
    uint32_t temp = round_keys_[i - 1];
    if (i % kNk == 0) {
      temp = sub_word(rot_word(temp)) ^ rcon;
      rcon = static_cast<uint32_t>(xtime(static_cast<uint8_t>(rcon >> 24))) << 24;
    } else if (i % kNk == 4) {
      temp = sub_word(temp);
    }
    round_keys_[i] = round_keys_[i - kNk] ^ temp;
  }
  for (int i = 0; i < 60; ++i) {
    store_be32(round_key_bytes_.data() + 4 * i, round_keys_[i]);
  }
}

bool Aes256::has_aesni() {
#ifdef SCAB_X86
  static const bool supported = __builtin_cpu_supports("aes");
  return supported;
#else
  return false;
#endif
}

#ifdef SCAB_X86
__attribute__((target("aes,sse2"))) void Aes256::encrypt_block_ni(
    uint8_t block[kAesBlockSize]) const {
  const auto* rk = round_key_bytes_.data();
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block));
  b = _mm_xor_si128(b, _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk)));
  for (int r = 1; r < 14; ++r) {
    b = _mm_aesenc_si128(
        b, _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + 16 * r)));
  }
  b = _mm_aesenclast_si128(
      b, _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + 16 * 14)));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(block), b);
}
#else
void Aes256::encrypt_block_ni(uint8_t block[kAesBlockSize]) const {
  encrypt_block_soft(block);
}
#endif

void Aes256::encrypt_block(uint8_t block[kAesBlockSize]) const {
  if (has_aesni()) {
    encrypt_block_ni(block);
  } else {
    encrypt_block_soft(block);
  }
}

void Aes256::encrypt_block_soft(uint8_t block[kAesBlockSize]) const {
  constexpr int kNr = 14;
  uint32_t s0 = load_be32(block) ^ round_keys_[0];
  uint32_t s1 = load_be32(block + 4) ^ round_keys_[1];
  uint32_t s2 = load_be32(block + 8) ^ round_keys_[2];
  uint32_t s3 = load_be32(block + 12) ^ round_keys_[3];

  for (int round = 1; round < kNr; ++round) {
    const uint32_t* rk = &round_keys_[4 * round];
    const uint32_t t0 = kT.te0[(s0 >> 24) & 0xff] ^ kT.te1[(s1 >> 16) & 0xff] ^
                        kT.te2[(s2 >> 8) & 0xff] ^ kT.te3[s3 & 0xff] ^ rk[0];
    const uint32_t t1 = kT.te0[(s1 >> 24) & 0xff] ^ kT.te1[(s2 >> 16) & 0xff] ^
                        kT.te2[(s3 >> 8) & 0xff] ^ kT.te3[s0 & 0xff] ^ rk[1];
    const uint32_t t2 = kT.te0[(s2 >> 24) & 0xff] ^ kT.te1[(s3 >> 16) & 0xff] ^
                        kT.te2[(s0 >> 8) & 0xff] ^ kT.te3[s1 & 0xff] ^ rk[2];
    const uint32_t t3 = kT.te0[(s3 >> 24) & 0xff] ^ kT.te1[(s0 >> 16) & 0xff] ^
                        kT.te2[(s1 >> 8) & 0xff] ^ kT.te3[s2 & 0xff] ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
  const uint32_t* rk = &round_keys_[4 * kNr];
  const uint32_t o0 =
      (static_cast<uint32_t>(kT.sbox[(s0 >> 24) & 0xff]) << 24 |
       static_cast<uint32_t>(kT.sbox[(s1 >> 16) & 0xff]) << 16 |
       static_cast<uint32_t>(kT.sbox[(s2 >> 8) & 0xff]) << 8 |
       kT.sbox[s3 & 0xff]) ^
      rk[0];
  const uint32_t o1 =
      (static_cast<uint32_t>(kT.sbox[(s1 >> 24) & 0xff]) << 24 |
       static_cast<uint32_t>(kT.sbox[(s2 >> 16) & 0xff]) << 16 |
       static_cast<uint32_t>(kT.sbox[(s3 >> 8) & 0xff]) << 8 |
       kT.sbox[s0 & 0xff]) ^
      rk[1];
  const uint32_t o2 =
      (static_cast<uint32_t>(kT.sbox[(s2 >> 24) & 0xff]) << 24 |
       static_cast<uint32_t>(kT.sbox[(s3 >> 16) & 0xff]) << 16 |
       static_cast<uint32_t>(kT.sbox[(s0 >> 8) & 0xff]) << 8 |
       kT.sbox[s1 & 0xff]) ^
      rk[2];
  const uint32_t o3 =
      (static_cast<uint32_t>(kT.sbox[(s3 >> 24) & 0xff]) << 24 |
       static_cast<uint32_t>(kT.sbox[(s0 >> 16) & 0xff]) << 16 |
       static_cast<uint32_t>(kT.sbox[(s1 >> 8) & 0xff]) << 8 |
       kT.sbox[s2 & 0xff]) ^
      rk[3];

  store_be32(block, o0);
  store_be32(block + 4, o1);
  store_be32(block + 8, o2);
  store_be32(block + 12, o3);
}

Bytes aes256_ctr(BytesView key, BytesView nonce, BytesView data) {
  if (nonce.size() != kAesBlockSize) {
    throw std::invalid_argument("aes256_ctr: nonce must be 16 bytes");
  }
  const Aes256 cipher(key);
  Bytes out(data.begin(), data.end());
  uint8_t counter[kAesBlockSize];
  std::memcpy(counter, nonce.data(), kAesBlockSize);

  std::size_t off = 0;
  while (off < out.size()) {
    uint8_t keystream[kAesBlockSize];
    std::memcpy(keystream, counter, kAesBlockSize);
    cipher.encrypt_block(keystream);
    const std::size_t n = std::min<std::size_t>(kAesBlockSize, out.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
    off += n;
    // Big-endian increment of the trailing 8 counter bytes.
    for (int i = 15; i >= 8; --i) {
      if (++counter[i] != 0) break;
    }
  }
  return out;
}

}  // namespace scab::crypto
