// Commitment schemes (paper §IV-B).
//
// Two schemes are provided, both instantiated in the random-oracle model
// with SHA-256, exactly as the paper's efficient instantiation:
//
//  * Commitment          — the conventional scheme used inside ARSS1 / CP2:
//                          c = H_k(m, r),        d = r
//  * NmCadCommitment     — non-malleable commitment with associated-data
//                          (NM-CAD), the primitive CP1 is built on:
//                          c = H_k(h, m, r),     d = r
//
// `k` is a public commitment key chosen by Cgen; it domain-separates
// independent deployments.  The coin r is 32 bytes, which makes the scheme
// computationally hiding, binding, and concurrently non-malleable w.r.t.
// opening and associated-data (NM-OAD) in the ROM.
#pragma once

#include "common/bytes.h"
#include "crypto/drbg.h"

namespace scab::crypto {

inline constexpr std::size_t kCommitCoinSize = 32;

struct Committed {
  Bytes commitment;    // c
  Bytes decommitment;  // d (the coin r)
};

/// Conventional commitment scheme CS = (Cgen, Commit, Open).
class Commitment {
 public:
  /// Cgen: draws a fresh commitment key.
  static Bytes cgen(Drbg& rng);

  explicit Commitment(Bytes commitment_key) : ck_(std::move(commitment_key)) {}

  Committed commit(BytesView message, Drbg& rng) const;
  bool open(BytesView commitment, BytesView message, BytesView decommitment) const;

  const Bytes& key() const { return ck_; }

 private:
  Bytes ck_;
};

/// Non-malleable commitment with associated-data (NM-CAD),
/// Π = (Cgen, Commit, Open) with Commit_ck^h(m) -> (c, d).
class NmCadCommitment {
 public:
  static Bytes cgen(Drbg& rng);

  explicit NmCadCommitment(Bytes commitment_key) : ck_(std::move(commitment_key)) {}

  /// Commit_ck^header(message).
  Committed commit(BytesView header, BytesView message, Drbg& rng) const;
  /// Open_ck^header(c, m, d).
  bool open(BytesView header, BytesView commitment, BytesView message,
            BytesView decommitment) const;

  const Bytes& key() const { return ck_; }

 private:
  Bytes ck_;
};

}  // namespace scab::crypto
