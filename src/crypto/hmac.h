// HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//
// The paper (§VI-A) builds authenticated channels from HMAC; PBFT message
// authenticators and the encrypt-then-MAC AEAD both sit on this.
#pragma once

#include "common/bytes.h"

namespace scab::crypto {

/// HMAC-SHA256 of `data` under `key`. Returns the full 32-byte tag.
Bytes hmac_sha256(BytesView key, BytesView data);

/// Truncated HMAC, as used in PBFT authenticator vectors (first `n` bytes).
Bytes hmac_sha256_trunc(BytesView key, BytesView data, std::size_t n);

/// Verifies a (possibly truncated) tag in constant time.
bool hmac_verify(BytesView key, BytesView data, BytesView tag);

}  // namespace scab::crypto
