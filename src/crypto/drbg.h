// HMAC-DRBG (NIST SP 800-90A, HMAC-SHA256 variant).
//
// All randomness in the library flows through this generator so that every
// protocol run, test, and benchmark is reproducible from a seed.  In
// production deployments the seed would come from the OS entropy pool;
// `Drbg::from_os_entropy` does exactly that.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace scab::crypto {

class Drbg {
 public:
  /// Deterministic instantiation from seed material (any length).
  explicit Drbg(BytesView seed);

  /// Instantiation seeded from std::random_device.
  static Drbg from_os_entropy();

  /// Generates `n` pseudorandom bytes.
  Bytes generate(std::size_t n);

  /// Uniform integer in [0, bound) via rejection sampling; bound must be >0.
  uint64_t uniform(uint64_t bound);

  /// Mixes additional entropy/context into the state.
  void reseed(BytesView material);

  /// Derives an independent child generator (domain-separated by `label`);
  /// handy for giving each simulated node its own stream.
  Drbg fork(BytesView label);

 private:
  void update(BytesView provided);

  Bytes key_;  // K, 32 bytes
  Bytes v_;    // V, 32 bytes
};

}  // namespace scab::crypto
