#include "crypto/hmac.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace scab::crypto {

Bytes hmac_sha256(BytesView key, BytesView data) {
  constexpr std::size_t kBlock = 64;
  Bytes k(kBlock, 0);
  if (key.size() > kBlock) {
    const Bytes kh = sha256(key);
    std::copy(kh.begin(), kh.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad).update(data);
  const auto inner_digest = inner.digest();

  Sha256 outer;
  outer.update(opad).update(BytesView(inner_digest.data(), inner_digest.size()));
  const auto d = outer.digest();
  return Bytes(d.begin(), d.end());
}

Bytes hmac_sha256_trunc(BytesView key, BytesView data, std::size_t n) {
  Bytes tag = hmac_sha256(key, data);
  tag.resize(std::min(n, tag.size()));
  return tag;
}

bool hmac_verify(BytesView key, BytesView data, BytesView tag) {
  if (tag.empty() || tag.size() > kSha256DigestSize) return false;
  const Bytes full = hmac_sha256(key, data);
  return ct_equal(BytesView(full.data(), tag.size()), tag);
}

}  // namespace scab::crypto
