// AES-256 block cipher (FIPS 197) and CTR-mode keystream, from scratch.
//
// The paper's private channels use CTR(AES-256) + HMAC (encrypt-then-MAC,
// §VI-A); CTR is also the workhorse behind the hybrid threshold encryption
// of CP0 and the HMAC-DRBG fallback expansions.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace scab::crypto {

inline constexpr std::size_t kAesBlockSize = 16;
inline constexpr std::size_t kAes256KeySize = 32;

/// AES-256 with a precomputed key schedule. Encrypt-only: CTR mode never
/// needs the inverse cipher.  Uses AES-NI when the CPU has it (runtime
/// detection) and a T-table software path otherwise.
class Aes256 {
 public:
  /// `key` must be exactly 32 bytes; throws std::invalid_argument otherwise.
  explicit Aes256(BytesView key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(uint8_t block[kAesBlockSize]) const;

  /// True when the hardware path is in use (exposed for tests/benches).
  static bool has_aesni();

 private:
  void encrypt_block_soft(uint8_t block[kAesBlockSize]) const;
  void encrypt_block_ni(uint8_t block[kAesBlockSize]) const;

  // 15 round keys of 16 bytes each (14 rounds + initial whitening), both as
  // big-endian words (software path) and as raw bytes (AES-NI loads).
  std::array<uint32_t, 60> round_keys_;
  std::array<uint8_t, 240> round_key_bytes_;
};

/// CTR-mode en/decryption (the operation is its own inverse).  `nonce` must
/// be 16 bytes and is used as the initial counter block; the counter
/// occupies the last 8 bytes (big-endian increment).
Bytes aes256_ctr(BytesView key, BytesView nonce, BytesView data);

}  // namespace scab::crypto
