#include "crypto/montgomery.h"

#include <algorithm>
#include <stdexcept>

namespace scab::crypto {

namespace {
using u128 = unsigned __int128;

// -n^{-1} mod 2^64 by Newton iteration: for odd n, x = n is an inverse mod
// 2^3, and each step doubles the number of correct low bits (3 -> 6 -> 12 ->
// 24 -> 48 -> 96 >= 64).
uint64_t neg_inv64(uint64_t n) {
  uint64_t inv = n;
  for (int i = 0; i < 5; ++i) inv *= 2 - n * inv;
  return ~inv + 1;
}
}  // namespace

Montgomery::Montgomery(const Bignum& modulus) : n_(modulus) {
  if (!n_.is_odd() || n_ <= Bignum(1)) {
    throw std::invalid_argument("Montgomery: modulus must be odd and > 1");
  }
  n_limbs_ = n_.limbs();
  k_ = n_limbs_.size();
  n0_ = neg_inv64(n_limbs_[0]);

  // R = 2^{64k}; both residues reduced with the existing (slow, setup-only)
  // Bignum division.
  const Bignum r_mod = (Bignum(1) << (64 * k_)) % n_;
  const Bignum r2_mod = (Bignum(1) << (128 * k_)) % n_;
  r1_ = r_mod.limbs();
  r1_.resize(k_, 0);
  r2_ = r2_mod.limbs();
  r2_.resize(k_, 0);
}

void Montgomery::mont_mul(const uint64_t* a, const uint64_t* b,
                          uint64_t* out) const {
  // CIOS (coarsely integrated operand scanning), Koc–Acar–Kaliski.
  constexpr std::size_t kStackLimbs = 34;  // up to 2176-bit moduli, no heap
  uint64_t stack[kStackLimbs + 2];
  std::vector<uint64_t> heap;
  uint64_t* t = stack;
  if (k_ > kStackLimbs) {
    heap.resize(k_ + 2);
    t = heap.data();
  }
  std::fill(t, t + k_ + 2, 0);

  for (std::size_t i = 0; i < k_; ++i) {
    const uint64_t bi = b[i];
    u128 carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 cs = static_cast<u128>(t[j]) + static_cast<u128>(a[j]) * bi +
                      carry;
      t[j] = static_cast<uint64_t>(cs);
      carry = cs >> 64;
    }
    u128 cs = static_cast<u128>(t[k_]) + carry;
    t[k_] = static_cast<uint64_t>(cs);
    t[k_ + 1] = static_cast<uint64_t>(cs >> 64);

    const uint64_t m = t[0] * n0_;
    cs = static_cast<u128>(t[0]) + static_cast<u128>(m) * n_limbs_[0];
    carry = cs >> 64;  // low word is zero by construction of m
    for (std::size_t j = 1; j < k_; ++j) {
      cs = static_cast<u128>(t[j]) + static_cast<u128>(m) * n_limbs_[j] + carry;
      t[j - 1] = static_cast<uint64_t>(cs);
      carry = cs >> 64;
    }
    cs = static_cast<u128>(t[k_]) + carry;
    t[k_ - 1] = static_cast<uint64_t>(cs);
    t[k_] = t[k_ + 1] + static_cast<uint64_t>(cs >> 64);
  }

  // Result is t[0..k] < 2n; one conditional subtraction normalizes.
  bool ge = t[k_] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k_; i-- > 0;) {
      if (t[i] != n_limbs_[i]) {
        ge = t[i] > n_limbs_[i];
        break;
      }
    }
  }
  if (ge) {
    u128 borrow = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      const u128 diff = static_cast<u128>(t[i]) - n_limbs_[i] - borrow;
      out[i] = static_cast<uint64_t>(diff);
      borrow = (diff >> 64) ? 1 : 0;
    }
  } else {
    std::copy(t, t + k_, out);
  }
}

void Montgomery::mont_sqr_inplace(Limbs& a) const {
  Limbs tmp(k_);
  mont_mul(a.data(), a.data(), tmp.data());
  a.swap(tmp);
}

Montgomery::Limbs Montgomery::to_mont(const Bignum& x) const {
  Limbs in = (x % n_).limbs();
  in.resize(k_, 0);
  Limbs out(k_);
  mont_mul(in.data(), r2_.data(), out.data());
  return out;
}

Bignum Montgomery::from_mont(const Limbs& a) const {
  Limbs one(k_, 0);
  one[0] = 1;
  Limbs out(k_);
  mont_mul(a.data(), one.data(), out.data());
  // Rebuild a normalized Bignum from the fixed-width limbs.
  Bytes be(out.size() * 8);
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      be[be.size() - 1 - 8 * i - static_cast<std::size_t>(b)] =
          static_cast<uint8_t>(out[i] >> (8 * b));
    }
  }
  return Bignum::from_bytes_be(be);
}

Montgomery::Limbs Montgomery::mul(const Limbs& a, const Limbs& b) const {
  Limbs out(k_);
  mont_mul(a.data(), b.data(), out.data());
  return out;
}

Montgomery::Table Montgomery::make_table(const Limbs& base) const {
  Table t;
  t.pow[0] = r1_;
  t.pow[1] = base;
  for (std::size_t i = 2; i < 16; ++i) t.pow[i] = mul(t.pow[i - 1], base);
  return t;
}

Montgomery::Limbs Montgomery::exp(const Limbs& base, const Bignum& e) const {
  if (e.is_zero()) return r1_;
  return exp(make_table(base), e);
}

Montgomery::Limbs Montgomery::exp(const Table& base, const Bignum& e) const {
  if (e.is_zero()) return r1_;
  const std::size_t windows = (e.bit_length() + 3) / 4;
  auto digit_at = [&e](std::size_t w) {
    unsigned d = 0;
    for (int i = 3; i >= 0; --i) {
      d = (d << 1) | (e.bit(4 * w + static_cast<std::size_t>(i)) ? 1u : 0u);
    }
    return d;
  };

  Limbs acc = base.pow[digit_at(windows - 1)];
  Limbs tmp(k_);
  for (std::size_t w = windows - 1; w-- > 0;) {
    for (int i = 0; i < 4; ++i) {
      mont_mul(acc.data(), acc.data(), tmp.data());
      acc.swap(tmp);
    }
    const unsigned d = digit_at(w);
    if (d != 0) {
      mont_mul(acc.data(), base.pow[d].data(), tmp.data());
      acc.swap(tmp);
    }
  }
  return acc;
}

Montgomery::Limbs Montgomery::multi_exp(std::span<const Limbs> bases,
                                        std::span<const Bignum> exps) const {
  if (bases.size() != exps.size()) {
    throw std::invalid_argument("Montgomery::multi_exp: size mismatch");
  }
  const std::size_t n = bases.size();
  if (n == 0) return r1_;
  if (n == 1) return exp(bases[0], exps[0]);

  std::size_t bits = 0;
  for (const Bignum& e : exps) bits = std::max(bits, e.bit_length());
  if (bits == 0) return r1_;

  // c-bit digit of e at window w (bits [w*c, (w+1)*c)).
  auto digit_at = [](const Bignum& e, std::size_t w, unsigned c) {
    unsigned d = 0;
    for (unsigned i = c; i-- > 0;) d = (d << 1) | (e.bit(w * c + i) ? 1u : 0u);
    return d;
  };

  // Both plans share `bits` squarings; compare the remaining multiplies.
  // Straus: 14 table-build muls per base plus one table lookup-mul per
  // 4-bit window.  Pippenger with c-bit windows: per window one bucket mul
  // per term plus ~2^{c+1} fold muls.
  const std::size_t straus_cost = n * (14 + (bits + 3) / 4);
  unsigned pip_c = 0;
  std::size_t best_cost = straus_cost;
  for (unsigned c = 2; c <= 14; ++c) {
    const std::size_t cost =
        ((bits + c - 1) / c) * (n + (std::size_t{2} << c));
    if (cost < best_cost) {
      best_cost = cost;
      pip_c = c;
    }
  }

  Limbs acc = r1_;
  Limbs tmp(k_);
  auto mul_into_acc = [&](const Limbs& v) {
    mont_mul(acc.data(), v.data(), tmp.data());
    acc.swap(tmp);
  };

  if (pip_c == 0) {
    // Straus: per-base 4-bit tables, one shared squaring chain.
    std::vector<Table> tables;
    tables.reserve(n);
    for (const Limbs& b : bases) tables.push_back(make_table(b));
    const std::size_t windows = (bits + 3) / 4;
    for (std::size_t w = windows; w-- > 0;) {
      if (w != windows - 1) {
        for (int i = 0; i < 4; ++i) mont_sqr_inplace(acc);
      }
      for (std::size_t t = 0; t < n; ++t) {
        const unsigned d = digit_at(exps[t], w, 4);
        if (d != 0) mul_into_acc(tables[t].pow[d]);
      }
    }
    return acc;
  }

  // Pippenger: per window scatter every term into bucket[digit], then fold
  // buckets with the suffix-product identity
  //   Π_d bucket[d]^d = Π_{d = max..1} (running suffix product).
  const unsigned c = pip_c;
  const std::size_t windows = (bits + c - 1) / c;
  const std::size_t nbuckets = std::size_t{1} << c;
  std::vector<Limbs> bucket(nbuckets);
  std::vector<char> used(nbuckets, 0);
  for (std::size_t w = windows; w-- > 0;) {
    if (w != windows - 1) {
      for (unsigned i = 0; i < c; ++i) mont_sqr_inplace(acc);
    }
    std::fill(used.begin(), used.end(), 0);
    for (std::size_t t = 0; t < n; ++t) {
      const unsigned d = digit_at(exps[t], w, c);
      if (d == 0) continue;
      if (!used[d]) {
        bucket[d] = bases[t];
        used[d] = 1;
      } else {
        mont_mul(bucket[d].data(), bases[t].data(), tmp.data());
        bucket[d].swap(tmp);
      }
    }
    Limbs running;
    bool have_running = false;
    for (std::size_t d = nbuckets; d-- > 1;) {
      if (used[d]) {
        if (!have_running) {
          running = bucket[d];
          have_running = true;
        } else {
          mont_mul(running.data(), bucket[d].data(), tmp.data());
          running.swap(tmp);
        }
      }
      if (have_running) mul_into_acc(running);
    }
  }
  return acc;
}

Montgomery::Limbs Montgomery::multi_exp(const Limbs& a, const Bignum& x,
                                        const Limbs& b, const Bignum& y) const {
  const std::size_t bits = std::max(x.bit_length(), y.bit_length());
  if (bits == 0) return r1_;

  // joint[4i + j] = a^i * b^j for i, j in 0..3: one shared squaring chain
  // over 2-bit digit pairs instead of two independent chains.
  std::array<Limbs, 16> joint;
  joint[0] = r1_;
  joint[1] = b;
  joint[2] = mul(b, b);
  joint[3] = mul(joint[2], b);
  joint[4] = a;
  joint[8] = mul(a, a);
  joint[12] = mul(joint[8], a);
  for (std::size_t i = 4; i < 16; i += 4) {
    for (std::size_t j = 1; j < 4; ++j) joint[i + j] = mul(joint[i], joint[j]);
  }

  auto digit_at = [](const Bignum& e, std::size_t w) {
    return (e.bit(2 * w + 1) ? 2u : 0u) | (e.bit(2 * w) ? 1u : 0u);
  };
  const std::size_t windows = (bits + 1) / 2;
  Limbs acc = joint[4 * digit_at(x, windows - 1) + digit_at(y, windows - 1)];
  Limbs tmp(k_);
  for (std::size_t w = windows - 1; w-- > 0;) {
    mont_mul(acc.data(), acc.data(), tmp.data());
    acc.swap(tmp);
    mont_mul(acc.data(), acc.data(), tmp.data());
    acc.swap(tmp);
    const unsigned d = 4 * digit_at(x, w) + digit_at(y, w);
    if (d != 0) {
      mont_mul(acc.data(), joint[d].data(), tmp.data());
      acc.swap(tmp);
    }
  }
  return acc;
}

}  // namespace scab::crypto
