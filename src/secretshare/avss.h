// AVSS — asynchronous verifiable secret sharing (Cachin–Kursawe–
// Lysyanskaya–Strobl, CCS '02 style), the paper's reference [20] and the
// baseline for its claim that ARSS is "several orders of magnitude faster
// than the most efficient AVSS for any reasonably large (practical) n"
// (§IV-C).  `bench_ablation_avss` reproduces that comparison.
//
// AVSS tolerates a MALICIOUS dealer (ARSS assumes a correct one); the price
// is public verifiability: the dealer commits to every coefficient of a
// random bivariate polynomial
//
//     f(x, y) = sum_{j,k < t} f_jk x^j y^k,      f_00 = secret
//
// with the commitment matrix C[j][k] = g^{f_jk} over a Schnorr group, and
// server i receives the two univariate slices a_i(y) = f(i, y) and
// b_i(x) = f(x, i).  Everything is checkable in the exponent:
//
//   * a share slice:       g^{a_i coefficients} against C   (~t^2 exps)
//   * cross-consistency:   a_i(j) = b_j(i) for any pair of correct servers
//   * a revealed point:    g^{f(i,0)} against column 0 of C (~t exps)
//
// so reconstruction accepts only verified points and never needs
// combination search — but every verification is a stack of modular
// exponentiations, which is exactly the gap the paper's ARSS removes.
//
// The echo/ready agreement rounds of the full CKLS protocol are network
// logic orthogonal to this cost comparison; the bench accounts for them as
// message counts.
#pragma once

#include <optional>
#include <vector>

#include "crypto/modgroup.h"

namespace scab::secretshare {

struct AvssCommitment {
  // C[j][k] = g^{f_jk}; t rows and t columns.
  std::vector<std::vector<crypto::Bignum>> c;

  uint32_t t() const { return static_cast<uint32_t>(c.size()); }
};

/// Server i's slice of the bivariate polynomial.
struct AvssShare {
  uint32_t index = 0;                    // 1-based server index
  std::vector<crypto::Bignum> a_coeffs;  // a_i(y) = f(i, y), t coefficients
  std::vector<crypto::Bignum> b_coeffs;  // b_i(x) = f(x, i), t coefficients
};

/// A revealed reconstruction point s_i = f(i, 0) = a_i(0).
struct AvssPoint {
  uint32_t index = 0;
  crypto::Bignum value;
};

struct AvssDeal {
  AvssCommitment commitment;
  std::vector<AvssShare> shares;  // one per server, 1..n
};

/// Dealer: shares `secret` (an element of Z_q) with threshold t among n
/// servers.  Costs t^2 group exponentiations for the commitment matrix.
AvssDeal avss_deal(const crypto::ModGroup& group, const crypto::Bignum& secret,
                   uint32_t t, uint32_t n, crypto::Drbg& rng);

/// Server-side acceptance check of a received slice against the agreed
/// commitment matrix (~2 t^2 exponentiations).  This is what lets AVSS
/// tolerate a malicious dealer.
bool avss_verify_share(const crypto::ModGroup& group,
                       const AvssCommitment& com, const AvssShare& share);

/// Cross-consistency between two servers' slices: a_i(j) must equal
/// b_j(i).  Used by the echo phase of the full protocol; exposed for tests.
bool avss_cross_check(const crypto::ModGroup& group, const AvssShare& share_i,
                      const AvssShare& share_j);

/// The point server `share.index` contributes during reconstruction.
AvssPoint avss_reveal_point(const crypto::ModGroup& group,
                            const AvssShare& share);

/// Public verification of a contributed point (~t exponentiations).
bool avss_verify_point(const crypto::ModGroup& group,
                       const AvssCommitment& com, const AvssPoint& point);

/// Reconstructs the secret from contributed points: verifies each, keeps
/// the first t valid ones with distinct indices, interpolates at 0.
/// Returns nullopt if fewer than t valid points were supplied.
std::optional<crypto::Bignum> avss_reconstruct(const crypto::ModGroup& group,
                                               const AvssCommitment& com,
                                               std::span<const AvssPoint> points);

}  // namespace scab::secretshare
