#include "secretshare/shamir.h"

#include <stdexcept>

#include "common/serialize.h"

namespace scab::secretshare {

Bytes ShamirShare::serialize() const {
  Writer w;
  w.u32(index);
  w.u64(secret_len);
  w.u32(static_cast<uint32_t>(values.size()));
  for (const Fe& v : values) w.u64(v.value());
  return std::move(w).take();
}

std::optional<ShamirShare> ShamirShare::parse(BytesView wire) {
  Reader r(wire);
  ShamirShare s;
  s.index = r.u32();
  s.secret_len = r.u64();
  const uint32_t count = r.u32();
  // Structural sanity: chunk count must match the claimed length.
  if (!r.ok() ||
      count != (s.secret_len + kChunkBytes - 1) / kChunkBytes) {
    return std::nullopt;
  }
  s.values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t v = r.u64();
    if (v >= kFieldPrime) return std::nullopt;
    s.values.push_back(Fe(v));
  }
  if (!r.done() || s.index == 0) return std::nullopt;
  return s;
}

std::vector<ShamirShare> shamir_share(BytesView secret, uint32_t t, uint32_t n,
                                      crypto::Drbg& rng) {
  if (t == 0 || t > n) throw std::invalid_argument("shamir_share: 1 <= t <= n");
  const std::vector<Fe> chunks = bytes_to_field(secret);

  std::vector<ShamirShare> shares(n);
  for (uint32_t i = 0; i < n; ++i) {
    shares[i].index = i + 1;
    shares[i].secret_len = secret.size();
    shares[i].values.resize(chunks.size());
  }

  FeSampler sampler(rng);
  std::vector<Fe> coeffs(t);
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    coeffs[0] = chunks[c];
    for (uint32_t j = 1; j < t; ++j) coeffs[j] = sampler.next();
    for (uint32_t i = 0; i < n; ++i) {
      shares[i].values[c] = poly_eval(coeffs, Fe(i + 1));
    }
  }
  return shares;
}

std::optional<Bytes> shamir_reconstruct(std::span<const ShamirShare> shares) {
  if (shares.empty()) return std::nullopt;
  const uint64_t len = shares[0].secret_len;
  const std::size_t chunks = shares[0].values.size();

  std::vector<Fe> xs;
  xs.reserve(shares.size());
  for (const auto& s : shares) {
    if (s.index == 0 || s.secret_len != len || s.values.size() != chunks) {
      return std::nullopt;
    }
    const Fe x(s.index);
    for (const Fe& seen : xs) {
      if (seen == x) return std::nullopt;  // duplicated evaluation point
    }
    xs.push_back(x);
  }

  // One set of Lagrange coefficients serves every chunk (same xs).
  const std::vector<Fe> coeffs = lagrange_coeffs(xs, Fe(0));
  std::vector<Fe> secret(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    Fe acc;
    for (std::size_t i = 0; i < shares.size(); ++i) {
      acc = acc + shares[i].values[c] * coeffs[i];
    }
    secret[c] = acc;
  }
  return field_to_bytes(secret, len);
}

bool shamir_consistent(std::span<const ShamirShare* const> shares,
                       uint32_t deg) {
  if (shares.empty()) return false;
  const uint64_t len = shares[0]->secret_len;
  const std::size_t chunks = shares[0]->values.size();
  for (const auto* s : shares) {
    if (s->index == 0 || s->secret_len != len || s->values.size() != chunks) {
      return false;
    }
  }
  const std::size_t base = std::min<std::size_t>(deg + 1, shares.size());

  std::vector<Fe> xs(base);
  for (std::size_t i = 0; i < base; ++i) xs[i] = Fe(shares[i]->index);
  // Coefficient sets are per check point but shared across all chunks.
  std::vector<std::vector<Fe>> coeff_sets;
  coeff_sets.reserve(shares.size() - base);
  for (std::size_t i = base; i < shares.size(); ++i) {
    coeff_sets.push_back(lagrange_coeffs(xs, Fe(shares[i]->index)));
  }
  for (std::size_t c = 0; c < chunks; ++c) {
    for (std::size_t i = base; i < shares.size(); ++i) {
      const auto& coeffs = coeff_sets[i - base];
      Fe predicted;
      for (std::size_t j = 0; j < base; ++j) {
        predicted = predicted + shares[j]->values[c] * coeffs[j];
      }
      if (!(predicted == shares[i]->values[c])) return false;
    }
  }
  return true;
}

}  // namespace scab::secretshare
