// Shamir (t, n) secret sharing of byte strings over GF(2^61 - 1).
//
// The secret is packed into 7-byte field chunks; every chunk gets its own
// independent random degree-(t-1) polynomial, so privacy holds per chunk
// with information-theoretic security (paper §IV-C, building block of both
// ARSS constructions).  Share i carries the evaluations at x = i (1-based).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "crypto/drbg.h"
#include "secretshare/field.h"

namespace scab::secretshare {

struct ShamirShare {
  uint32_t index = 0;  // evaluation point x = index, 1-based, 0 = invalid
  uint64_t secret_len = 0;
  std::vector<Fe> values;  // one per 7-byte chunk

  Bytes serialize() const;
  static std::optional<ShamirShare> parse(BytesView wire);

  bool operator==(const ShamirShare&) const = default;
};

/// Splits `secret` into n shares, any t of which reconstruct.
/// Requires 1 <= t <= n and n < field size (trivially true).
std::vector<ShamirShare> shamir_share(BytesView secret, uint32_t t, uint32_t n,
                                      crypto::Drbg& rng);

/// Reconstructs from exactly the given shares (all are used; caller picks
/// the subset).  Returns nullopt if shares are structurally inconsistent
/// (mismatched lengths/duplicated indices) — NOT if they are maliciously
/// wrong-but-well-formed; that detection is ARSS's job.
std::optional<Bytes> shamir_reconstruct(std::span<const ShamirShare> shares);

/// ARSS2's consistency predicate (Harn–Lin): true iff all given shares lie
/// on one degree <= deg polynomial per chunk.  Interpolates each chunk from
/// the first deg+1 shares and checks the remaining points.  Requires
/// shares.size() >= deg + 2 to be meaningful (with fewer points the answer
/// is vacuously true).
bool shamir_consistent(std::span<const ShamirShare* const> shares,
                       uint32_t deg);

}  // namespace scab::secretshare
