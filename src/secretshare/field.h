// The prime field GF(p) with p = 2^61 - 1 (a Mersenne prime).
//
// This is the arithmetic substrate for Shamir secret sharing and the two
// ARSS constructions (paper §IV-C).  A Mersenne modulus gives branch-free
// reduction after 128-bit products, and 61 bits comfortably carries 56-bit
// (7-byte) chunks of a byte-string secret.  The field size also bounds the
// per-chunk failure probability of ARSS2's statistical consistency check at
// ~2^-61.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "crypto/drbg.h"

namespace scab::secretshare {

/// Field modulus p = 2^61 - 1.
inline constexpr uint64_t kFieldPrime = (uint64_t{1} << 61) - 1;

/// A field element; invariant: value in [0, p).
class Fe {
 public:
  constexpr Fe() = default;
  /// Reduces v mod p.
  constexpr explicit Fe(uint64_t v) : v_(reduce_once(v % (kFieldPrime))) {}

  constexpr uint64_t value() const { return v_; }
  constexpr bool is_zero() const { return v_ == 0; }

  friend constexpr Fe operator+(Fe a, Fe b) {
    uint64_t s = a.v_ + b.v_;  // < 2^62, no overflow
    if (s >= kFieldPrime) s -= kFieldPrime;
    return from_reduced(s);
  }
  friend constexpr Fe operator-(Fe a, Fe b) {
    uint64_t d = a.v_ + kFieldPrime - b.v_;
    if (d >= kFieldPrime) d -= kFieldPrime;
    return from_reduced(d);
  }
  friend constexpr Fe operator*(Fe a, Fe b) {
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(a.v_) * b.v_;
    // Mersenne reduction: split at bit 61, fold the high part down.
    uint64_t lo = static_cast<uint64_t>(prod) & kFieldPrime;
    uint64_t hi = static_cast<uint64_t>(prod >> 61);
    uint64_t s = lo + (hi & kFieldPrime) + static_cast<uint64_t>(prod >> 122);
    s = (s & kFieldPrime) + (s >> 61);
    if (s >= kFieldPrime) s -= kFieldPrime;
    return from_reduced(s);
  }
  friend constexpr bool operator==(Fe a, Fe b) { return a.v_ == b.v_; }

  /// Multiplicative inverse (Fermat); *this must be nonzero.
  Fe inv() const;
  Fe pow(uint64_t e) const;

  /// Uniform random field element.
  static Fe random(crypto::Drbg& rng);


 private:
  static constexpr uint64_t reduce_once(uint64_t v) {
    return v >= kFieldPrime ? v - kFieldPrime : v;
  }
  static constexpr Fe from_reduced(uint64_t v) {
    Fe f;
    f.v_ = v;
    return f;
  }

  uint64_t v_ = 0;
};

/// Draws uniform field elements from an AES-CTR keystream seeded once from
/// the caller's DRBG; orders of magnitude cheaper than calling Fe::random
/// per element when sharing a multi-kilobyte secret.
class FeSampler {
 public:
  explicit FeSampler(crypto::Drbg& rng)
      : key_(rng.generate(32)), nonce_base_(rng.generate(8)) {}
  Fe next();

 private:
  void refill();

  Bytes key_;
  Bytes nonce_base_;  // first 8 nonce bytes; refill counter + CTR use the rest
  uint64_t refill_count_ = 0;
  Bytes buf_;
  std::size_t pos_ = 0;
};

/// Number of payload bytes packed per field element.
inline constexpr std::size_t kChunkBytes = 7;

/// Packs a byte string into field elements, 7 bytes per element, final
/// chunk zero-padded.  An empty input yields an empty vector.
std::vector<Fe> bytes_to_field(BytesView data);

/// Inverse of bytes_to_field; `length` is the original byte count and must
/// satisfy ceil(length / 7) == elems.size().
Bytes field_to_bytes(std::span<const Fe> elems, std::size_t length);

/// Evaluates the polynomial with coefficients `coeffs` (constant term
/// first) at x, by Horner's rule.
Fe poly_eval(std::span<const Fe> coeffs, Fe x);

/// Lagrange interpolation: returns the value at `at` of the unique
/// degree-<(points.size()) polynomial through (xs[i], ys[i]).  The xs must
/// be distinct.
Fe interpolate_at(std::span<const Fe> xs, std::span<const Fe> ys, Fe at);

/// Precomputed Lagrange coefficients L_j(at) for fixed evaluation points:
/// the interpolated value is then sum_j ys[j] * coeffs[j].  Sharing the
/// coefficients across the per-chunk interpolations of a multi-kilobyte
/// secret is a ~20x speedup over calling interpolate_at per chunk.
std::vector<Fe> lagrange_coeffs(std::span<const Fe> xs, Fe at);

}  // namespace scab::secretshare
