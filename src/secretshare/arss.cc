#include "secretshare/arss.h"

#include <algorithm>

#include "common/serialize.h"

namespace scab::secretshare {

bool for_each_combination(
    std::size_t m, std::size_t k,
    const std::function<bool(std::span<const std::size_t>)>& fn) {
  if (k > m) return false;
  std::vector<std::size_t> idx(k);
  if (k == 0) return fn(idx);  // the single empty combination
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  for (;;) {
    if (fn(idx)) return true;
    // Advance to the next combination in lexicographic order.
    std::size_t i = k;
    while (i-- > 0) {
      if (idx[i] != i + m - k) break;
      if (i == 0) return false;
    }
    if (idx[i] == i + m - k) return false;
    ++idx[i];
    for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

// ---------------------------------------------------------------------------
// ARSS1

namespace {

Bytes encode_pair(BytesView secret, BytesView opening) {
  Writer w;
  w.bytes(secret);
  w.bytes(opening);
  return std::move(w).take();
}

bool decode_pair(BytesView encoded, Bytes& secret, Bytes& opening) {
  Reader r(encoded);
  secret = r.bytes();
  opening = r.bytes();
  return r.done();
}

}  // namespace

Bytes Arss1Share::serialize() const {
  Writer w;
  w.bytes(commitment);
  w.bytes(inner.serialize());
  return std::move(w).take();
}

std::optional<Arss1Share> Arss1Share::parse(BytesView wire) {
  Reader r(wire);
  Arss1Share s;
  s.commitment = r.bytes();
  const Bytes inner_wire = r.bytes();
  if (!r.done()) return std::nullopt;
  auto inner = ShamirShare::parse(inner_wire);
  if (!inner) return std::nullopt;
  s.inner = std::move(*inner);
  return s;
}

std::vector<Arss1Share> arss1_share(BytesView secret, uint32_t t, uint32_t n,
                                    const crypto::Commitment& cs,
                                    crypto::Drbg& rng) {
  const crypto::Committed c = cs.commit(secret, rng);
  const Bytes pair = encode_pair(secret, c.decommitment);
  std::vector<ShamirShare> inner = shamir_share(pair, t, n, rng);

  std::vector<Arss1Share> out(n);
  for (uint32_t i = 0; i < n; ++i) {
    out[i].commitment = c.commitment;
    out[i].inner = std::move(inner[i]);
  }
  return out;
}

Arss1Reconstructor::Arss1Reconstructor(const crypto::Commitment& cs, uint32_t f,
                                       std::optional<Bytes> expected_commitment)
    : cs_(cs), f_(f), expected_(std::move(expected_commitment)) {}

std::optional<Bytes> Arss1Reconstructor::add(const Arss1Share& share) {
  if (done_) return std::nullopt;
  if (share.inner.index == 0) return std::nullopt;
  if (expected_ && share.commitment != *expected_) return std::nullopt;

  // Locate (or create) the share set tagged by this commitment.
  std::vector<Arss1Share>* set = nullptr;
  for (auto& [c, shares] : sets_) {
    if (c == share.commitment) {
      set = &shares;
      break;
    }
  }
  if (set == nullptr) {
    // Once any set reached t = f+1 shares, competing sets are dropped and
    // no new ones accepted (the paper's "drops other sets" rule).
    for (const auto& [c, shares] : sets_) {
      if (shares.size() >= f_ + 1) return std::nullopt;
    }
    sets_.emplace_back(share.commitment, std::vector<Arss1Share>{});
    set = &sets_.back().second;
  }

  // Stop accepting new shares into a set at 2f+1 (enough to guarantee f+1
  // correct ones); ignore duplicate indices.
  if (set->size() >= 2 * f_ + 1) return std::nullopt;
  for (const auto& s : *set) {
    if (s.inner.index == share.inner.index) return std::nullopt;
  }
  set->push_back(share);
  ++received_;

  if (set->size() >= f_ + 1) {
    auto secret = try_recover(*set, share.commitment);
    if (secret) {
      done_ = true;
      return secret;
    }
  }
  return std::nullopt;
}

std::optional<Bytes> Arss1Reconstructor::try_recover(
    std::vector<Arss1Share>& set, const Bytes& commitment) {
  const std::size_t t = f_ + 1;
  std::optional<Bytes> result;
  for_each_combination(set.size(), t, [&](std::span<const std::size_t> pick) {
    ++attempts_;
    std::vector<ShamirShare> subset;
    subset.reserve(t);
    for (std::size_t i : pick) subset.push_back(set[i].inner);
    const auto pair = shamir_reconstruct(subset);
    if (!pair) return false;
    Bytes secret, opening;
    if (!decode_pair(*pair, secret, opening)) return false;
    if (!cs_.open(commitment, secret, opening)) return false;
    result = std::move(secret);
    return true;
  });
  return result;
}

// ---------------------------------------------------------------------------
// ARSS2

std::vector<ShamirShare> arss2_share(BytesView secret, uint32_t f, uint32_t n,
                                     crypto::Drbg& rng) {
  return shamir_share(secret, f + 1, n, rng);
}

Arss2Reconstructor::Arss2Reconstructor(uint32_t f,
                                       std::optional<ShamirShare> own_share,
                                       Arss2Mode mode)
    : f_(f), mode_(mode) {
  if (own_share) {
    has_own_ = true;
    shares_.push_back(std::move(*own_share));
  }
}

std::size_t Arss2Reconstructor::pool_cap() const {
  // kFast: 2f+2 shares guarantee f+2 correct ones (the paper's bound).
  // kRobust: the 2f+1-agreement quorum may need every honest share, and up
  // to f corrupt ones can crowd the pool first.
  return mode_ == Arss2Mode::kFast ? 2 * f_ + 2 : 3 * f_ + 1;
}

std::optional<Bytes> Arss2Reconstructor::add(const ShamirShare& share) {
  if (done_) return std::nullopt;
  if (share.index == 0) return std::nullopt;
  for (const auto& s : shares_) {
    if (s.index == share.index) return std::nullopt;
  }
  if (shares_.size() >= pool_cap()) return std::nullopt;
  shares_.push_back(share);

  if (shares_.size() >= f_ + 2) {
    auto secret = try_recover();
    if (secret) {
      done_ = true;
      return secret;
    }
  }
  return std::nullopt;
}

std::optional<Bytes> Arss2Reconstructor::try_recover() {
  const std::size_t want = f_ + 2;  // consistent subset size
  std::optional<Bytes> result;

  // When we hold our own (trusted) share it anchors every subset: choose
  // the remaining f+1 from the others.  Otherwise choose all f+2 freely.
  const std::size_t fixed = has_own_ ? 1 : 0;
  const std::size_t choose = want - fixed;
  const std::size_t pool = shares_.size() - fixed;
  if (shares_.size() < want) return std::nullopt;

  for_each_combination(pool, choose, [&](std::span<const std::size_t> pick) {
    ++attempts_;
    std::vector<const ShamirShare*> subset;
    subset.reserve(want);
    if (has_own_) subset.push_back(&shares_[0]);
    for (std::size_t i : pick) subset.push_back(&shares_[fixed + i]);
    if (!shamir_consistent(subset, f_)) return false;
    if (mode_ == Arss2Mode::kRobust && !candidate_has_quorum(subset)) {
      return false;
    }

    // Reconstruct from the first f+1 shares of the consistent subset.
    std::vector<ShamirShare> points;
    points.reserve(f_ + 1);
    for (std::size_t i = 0; i < f_ + 1; ++i) points.push_back(*subset[i]);
    auto secret = shamir_reconstruct(points);
    if (!secret) return false;
    result = std::move(secret);
    return true;
  });
  return result;
}

bool Arss2Reconstructor::candidate_has_quorum(
    std::span<const ShamirShare* const> base) const {
  // Counts received shares lying on the candidate polynomial (defined by
  // the first f+1 base points) and requires >= 2f+1 of them.
  std::vector<Fe> xs(f_ + 1), ys(f_ + 1);
  std::size_t agree = 0;
  for (const auto& s : shares_) {
    bool on_curve = true;
    for (std::size_t c = 0; c < s.values.size() && on_curve; ++c) {
      for (std::size_t i = 0; i <= f_; ++i) {
        xs[i] = Fe(base[i]->index);
        ys[i] = base[i]->values[c];
      }
      on_curve = interpolate_at(xs, ys, Fe(s.index)) == s.values[c];
    }
    if (on_curve && !s.values.empty()) ++agree;
    if (s.values.empty()) ++agree;  // empty secret: every share agrees
  }
  return agree >= 2 * f_ + 1;
}

}  // namespace scab::secretshare
