#include "secretshare/avss.h"

#include <algorithm>
#include <stdexcept>

namespace scab::secretshare {

using crypto::Bignum;
using crypto::ModGroup;

namespace {

// Evaluates the polynomial with coefficients `coeffs` (constant first) at
// `x`, all arithmetic mod q.
Bignum poly_eval_q(const ModGroup& group, std::span<const Bignum> coeffs,
                   const Bignum& x) {
  const Bignum& q = group.q();
  Bignum acc;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = crypto::mod_add(crypto::mod_mul(acc, x, q), coeffs[i], q);
  }
  return acc;
}

// In-exponent evaluation: returns prod_j base[j]^{x^j} = g^{p(x)} where
// base[j] = g^{p_j}.
Bignum exp_poly_eval(const ModGroup& group, std::span<const Bignum> bases,
                     const Bignum& x) {
  const Bignum& q = group.q();
  Bignum acc(1);
  Bignum power(1);  // x^j mod q
  for (const Bignum& base : bases) {
    acc = group.mul(acc, group.exp(base, power));
    power = crypto::mod_mul(power, x, q);
  }
  return acc;
}

Bignum lagrange_at_zero_q(const ModGroup& group, uint32_t j,
                          std::span<const uint32_t> indices) {
  const Bignum& q = group.q();
  Bignum num(1), den(1);
  const Bignum bj(j);
  for (uint32_t k : indices) {
    if (k == j) continue;
    const Bignum bk(k);
    num = crypto::mod_mul(num, bk, q);
    den = crypto::mod_mul(den, crypto::mod_sub(bk, bj, q), q);
  }
  return crypto::mod_mul(num, crypto::mod_inv_prime(den, q), q);
}

}  // namespace

AvssDeal avss_deal(const ModGroup& group, const Bignum& secret, uint32_t t,
                   uint32_t n, crypto::Drbg& rng) {
  if (t == 0 || t > n) throw std::invalid_argument("avss_deal: 1 <= t <= n");
  if (secret >= group.q()) {
    throw std::invalid_argument("avss_deal: secret must be in Z_q");
  }
  const Bignum& q = group.q();

  // Random bivariate polynomial with f_00 = secret.
  std::vector<std::vector<Bignum>> f(t, std::vector<Bignum>(t));
  for (uint32_t j = 0; j < t; ++j) {
    for (uint32_t k = 0; k < t; ++k) f[j][k] = crypto::random_below(q, rng);
  }
  f[0][0] = secret;

  AvssDeal out;
  out.commitment.c.assign(t, std::vector<Bignum>(t));
  for (uint32_t j = 0; j < t; ++j) {
    for (uint32_t k = 0; k < t; ++k) {
      out.commitment.c[j][k] = group.exp(group.g(), f[j][k]);
    }
  }

  out.shares.resize(n);
  for (uint32_t i = 1; i <= n; ++i) {
    AvssShare& share = out.shares[i - 1];
    share.index = i;
    share.a_coeffs.resize(t);
    share.b_coeffs.resize(t);
    const Bignum xi(i);
    // a_i(y) = f(i, y): coefficient of y^k is sum_j f_jk i^j.
    for (uint32_t k = 0; k < t; ++k) {
      Bignum acc;
      Bignum power(1);
      for (uint32_t j = 0; j < t; ++j) {
        acc = crypto::mod_add(acc, crypto::mod_mul(f[j][k], power, q), q);
        power = crypto::mod_mul(power, xi, q);
      }
      share.a_coeffs[k] = std::move(acc);
    }
    // b_i(x) = f(x, i): coefficient of x^j is sum_k f_jk i^k.
    for (uint32_t j = 0; j < t; ++j) {
      Bignum acc;
      Bignum power(1);
      for (uint32_t k = 0; k < t; ++k) {
        acc = crypto::mod_add(acc, crypto::mod_mul(f[j][k], power, q), q);
        power = crypto::mod_mul(power, xi, q);
      }
      share.b_coeffs[j] = std::move(acc);
    }
  }
  return out;
}

bool avss_verify_share(const ModGroup& group, const AvssCommitment& com,
                       const AvssShare& share) {
  const uint32_t t = com.t();
  if (t == 0 || share.index == 0) return false;
  if (share.a_coeffs.size() != t || share.b_coeffs.size() != t) return false;
  for (const auto& row : com.c) {
    if (row.size() != t) return false;
  }
  const Bignum xi(share.index);

  // g^{a_i coefficient k} must equal prod_j C[j][k]^{i^j}.
  for (uint32_t k = 0; k < t; ++k) {
    if (share.a_coeffs[k] >= group.q()) return false;
    std::vector<Bignum> column(t);
    for (uint32_t j = 0; j < t; ++j) column[j] = com.c[j][k];
    if (group.exp(group.g(), share.a_coeffs[k]) !=
        exp_poly_eval(group, column, xi)) {
      return false;
    }
  }
  // g^{b_i coefficient j} must equal prod_k C[j][k]^{i^k}.
  for (uint32_t j = 0; j < t; ++j) {
    if (share.b_coeffs[j] >= group.q()) return false;
    if (group.exp(group.g(), share.b_coeffs[j]) !=
        exp_poly_eval(group, com.c[j], xi)) {
      return false;
    }
  }
  return true;
}

bool avss_cross_check(const ModGroup& group, const AvssShare& share_i,
                      const AvssShare& share_j) {
  // a_i(j) = f(i, j) = b_j(i)
  return poly_eval_q(group, share_i.a_coeffs, Bignum(share_j.index)) ==
         poly_eval_q(group, share_j.b_coeffs, Bignum(share_i.index));
}

AvssPoint avss_reveal_point(const ModGroup& /*group*/, const AvssShare& share) {
  AvssPoint p;
  p.index = share.index;
  // a_i(0) = f(i, 0) is the constant coefficient.
  p.value = share.a_coeffs.empty() ? Bignum() : share.a_coeffs[0];
  return p;
}

bool avss_verify_point(const ModGroup& group, const AvssCommitment& com,
                       const AvssPoint& point) {
  if (point.index == 0 || com.t() == 0 || point.value >= group.q()) {
    return false;
  }
  // g^{f(i,0)} = prod_j C[j][0]^{i^j}
  std::vector<Bignum> column(com.t());
  for (uint32_t j = 0; j < com.t(); ++j) column[j] = com.c[j][0];
  return group.exp(group.g(), point.value) ==
         exp_poly_eval(group, column, Bignum(point.index));
}

std::optional<Bignum> avss_reconstruct(const ModGroup& group,
                                       const AvssCommitment& com,
                                       std::span<const AvssPoint> points) {
  const uint32_t t = com.t();
  std::vector<const AvssPoint*> valid;
  std::vector<uint32_t> indices;
  for (const auto& p : points) {
    if (valid.size() == t) break;
    if (std::find(indices.begin(), indices.end(), p.index) != indices.end()) {
      continue;
    }
    if (!avss_verify_point(group, com, p)) continue;
    valid.push_back(&p);
    indices.push_back(p.index);
  }
  if (valid.size() < t) return std::nullopt;

  const Bignum& q = group.q();
  Bignum secret;
  for (const auto* p : valid) {
    const Bignum lambda = lagrange_at_zero_q(group, p->index, indices);
    secret = crypto::mod_add(secret, crypto::mod_mul(p->value, lambda, q), q);
  }
  return secret;
}

}  // namespace scab::secretshare
