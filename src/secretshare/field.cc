#include "secretshare/field.h"

#include <stdexcept>

#include "crypto/aes.h"

namespace scab::secretshare {

Fe Fe::pow(uint64_t e) const {
  Fe result(1);
  Fe base = *this;
  while (e != 0) {
    if (e & 1) result = result * base;
    base = base * base;
    e >>= 1;
  }
  return result;
}

Fe Fe::inv() const {
  if (is_zero()) throw std::domain_error("Fe::inv: zero has no inverse");
  return pow(kFieldPrime - 2);
}

Fe Fe::random(crypto::Drbg& rng) {
  // Rejection-sample 61 bits.
  for (;;) {
    const Bytes raw = rng.generate(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(raw[i]) << (8 * i);
    v &= (uint64_t{1} << 61) - 1;
    if (v < kFieldPrime) return Fe(v);
  }
}

void FeSampler::refill() {
  // Nonce: 8 base bytes || 4-byte refill counter || 4 zero bytes left for
  // the in-call CTR (4096 bytes = 256 blocks, far below 2^32).
  Bytes nonce(16, 0);
  std::copy(nonce_base_.begin(), nonce_base_.end(), nonce.begin());
  for (int i = 0; i < 4; ++i) {
    nonce[8 + i] = static_cast<uint8_t>(refill_count_ >> (8 * i));
  }
  ++refill_count_;
  buf_ = crypto::aes256_ctr(key_, nonce, Bytes(4096, 0));
  pos_ = 0;
}

Fe FeSampler::next() {
  for (;;) {
    if (pos_ + 8 > buf_.size()) refill();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += 8;
    v &= (uint64_t{1} << 61) - 1;
    if (v < kFieldPrime) return Fe(v);
  }
}

std::vector<Fe> bytes_to_field(BytesView data) {
  std::vector<Fe> out;
  out.reserve((data.size() + kChunkBytes - 1) / kChunkBytes);
  for (std::size_t off = 0; off < data.size(); off += kChunkBytes) {
    uint64_t v = 0;
    const std::size_t n = std::min(kChunkBytes, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<uint64_t>(data[off + i]) << (8 * i);
    }
    out.push_back(Fe(v));
  }
  return out;
}

Bytes field_to_bytes(std::span<const Fe> elems, std::size_t length) {
  if ((length + kChunkBytes - 1) / kChunkBytes != elems.size()) {
    throw std::invalid_argument("field_to_bytes: length/element mismatch");
  }
  Bytes out;
  out.reserve(length);
  for (std::size_t e = 0; e < elems.size(); ++e) {
    const uint64_t v = elems[e].value();
    const std::size_t n = std::min(kChunkBytes, length - e * kChunkBytes);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  return out;
}

Fe poly_eval(std::span<const Fe> coeffs, Fe x) {
  Fe acc;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = acc * x + coeffs[i];
  }
  return acc;
}

Fe interpolate_at(std::span<const Fe> xs, std::span<const Fe> ys, Fe at) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument("interpolate_at: bad point set");
  }
  const std::vector<Fe> coeffs = lagrange_coeffs(xs, at);
  Fe result;
  for (std::size_t j = 0; j < xs.size(); ++j) {
    result = result + ys[j] * coeffs[j];
  }
  return result;
}

std::vector<Fe> lagrange_coeffs(std::span<const Fe> xs, Fe at) {
  if (xs.empty()) throw std::invalid_argument("lagrange_coeffs: no points");
  std::vector<Fe> out(xs.size());
  for (std::size_t j = 0; j < xs.size(); ++j) {
    Fe num(1), den(1);
    for (std::size_t k = 0; k < xs.size(); ++k) {
      if (k == j) continue;
      num = num * (at - xs[k]);
      den = den * (xs[j] - xs[k]);
    }
    out[j] = num * den.inv();
  }
  return out;
}

}  // namespace scab::secretshare
