// Asynchronous robust secret sharing (ARSS), paper §IV-C.
//
// ARSS strengthens Bellare–Rogaway robust secret sharing to asynchronous
// networks: the reconstructor cannot mark missing shares, it just keeps
// receiving shares one at a time (some possibly Byzantine) and must decide
// when recovery is possible.  The dealer is correct; up to f = t-1 servers
// are Byzantine; n >= 3f + 1.
//
// Two constructions, as in the paper:
//
//  * ARSS1 (computational) — generic over any secret-sharing scheme and any
//    commitment scheme: Share(s) commits (c, d) <- Commit(s), Shamir-shares
//    the *pair* (s, d), and tags every share with c.  Recovery tries
//    (f+1)-subsets until one opens against c.  Worst case C(2f+1, f+1)
//    combinations; each attempt costs one interpolation + one hash.
//
//  * ARSS2 (information-theoretic) — Harn–Lin style, specific to Shamir:
//    plain Shamir shares; recovery waits for f+2 shares and searches for a
//    subset of size f+2 on which interpolation yields a polynomial of
//    degree <= f (checked per 7-byte chunk).  Worst case C(2f+2, f+2)
//    combinations.  Soundness is statistical (~2^-61 per chunk), and — as
//    DESIGN.md notes — every candidate subset must contain the
//    reconstructor's own share when the reconstructor is a share holder,
//    which is the deployment CP3 uses.
//
// Both reconstructors are *incremental*: feed shares as they arrive (the
// asynchronous model), get the secret back as soon as it is recoverable.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "crypto/commitment.h"
#include "secretshare/shamir.h"

namespace scab::secretshare {

/// Enumerates all k-subsets of [0..m), invoking fn(indices); stops early if
/// fn returns true.  Returns true iff some fn invocation returned true.
bool for_each_combination(std::size_t m, std::size_t k,
                          const std::function<bool(std::span<const std::size_t>)>& fn);

// ---------------------------------------------------------------------------
// ARSS1

struct Arss1Share {
  Bytes commitment;   // c — tags the share set
  ShamirShare inner;  // Shamir share of the encoded pair (s, d)

  Bytes serialize() const;
  static std::optional<Arss1Share> parse(BytesView wire);
};

/// Share: (c, d) <- Commit(s); S' <- Shamir(s || d, t, n); S[i] = (c, S'[i]).
std::vector<Arss1Share> arss1_share(BytesView secret, uint32_t t, uint32_t n,
                                    const crypto::Commitment& cs,
                                    crypto::Drbg& rng);

/// Incremental ARSS1 reconstructor for a (f+1, n) sharing.
///
/// In the generic (client-side) deployment it maintains share sets keyed by
/// commitment, drops competing sets once one reaches t shares, and stops
/// accepting after 2f+1 shares, exactly as the paper describes.  In the
/// CP2 deployment the commitment has already been agreed via BFT, so pass
/// it as `expected_commitment`: shares tagged otherwise are rejected
/// immediately and no set bookkeeping is needed.
class Arss1Reconstructor {
 public:
  Arss1Reconstructor(const crypto::Commitment& cs, uint32_t f,
                     std::optional<Bytes> expected_commitment = std::nullopt);

  /// Feeds one share. Returns the secret once recoverable; afterwards the
  /// reconstructor is done() and further shares are ignored.
  std::optional<Bytes> add(const Arss1Share& share);

  bool done() const { return done_; }
  /// Number of reconstruction attempts performed so far (bench metric).
  std::size_t attempts() const { return attempts_; }
  std::size_t shares_received() const { return received_; }

 private:
  std::optional<Bytes> try_recover(std::vector<Arss1Share>& set,
                                   const Bytes& commitment);

  const crypto::Commitment& cs_;
  uint32_t f_;
  std::optional<Bytes> expected_;
  // Share sets keyed by commitment (linear scan: the honest set plus at
  // most f adversarial ones).
  std::vector<std::pair<Bytes, std::vector<Arss1Share>>> sets_;
  std::size_t attempts_ = 0;
  std::size_t received_ = 0;
  bool done_ = false;
};

// ---------------------------------------------------------------------------
// ARSS2

/// Share: identical to plain Shamir with t = f + 1.
std::vector<ShamirShare> arss2_share(BytesView secret, uint32_t f, uint32_t n,
                                     crypto::Drbg& rng);

/// Acceptance rule for ARSS2 reconstruction.
///
/// kFast is the paper's rule verbatim: accept the first (f+2)-subset whose
/// points lie on one degree-<=f polynomial.  Reproduction note (see
/// DESIGN.md): against *colluding* cheaters this rule is unsound for f >= 2.
/// A coalition that shifts its shares by delta_i = Delta(x_i), where Delta
/// is a degree-<=f polynomial with roots at the reconstructor's index and at
/// f-1 chosen honest indices (all indices are public!), makes the subset
/// {own, cheaters..., chosen-honest} consistent yet reconstruct P + Delta.
/// The paper's evaluation only exercises *randomly* corrupted shares, for
/// which a wrong-but-consistent subset occurs with probability ~2^-61 per
/// chunk, so kFast reproduces the paper's behaviour.
///
/// kRobust closes the gap: a candidate polynomial is accepted only once it
/// agrees with >= 2f+1 distinct received shares.  At most f of those can be
/// corrupt, so >= f+1 honest points pin the candidate to the dealt
/// polynomial.  Costs f-1 extra shares of latency in the worst case (pool
/// may need to grow to 3f+1, which n = 3f+1 guarantees eventually).
enum class Arss2Mode { kFast, kRobust };

/// Incremental ARSS2 reconstructor for a (f+1, n) sharing.
///
/// If `own_share` is provided (the CP3 deployment: reconstructors are share
/// holders), it is trusted correct and included in every candidate subset —
/// see the soundness note at the top of this header.
class Arss2Reconstructor {
 public:
  explicit Arss2Reconstructor(uint32_t f,
                              std::optional<ShamirShare> own_share = std::nullopt,
                              Arss2Mode mode = Arss2Mode::kFast);

  /// Feeds one share (shares from distinct servers; duplicates by index are
  /// ignored). Returns the secret once a consistent subset exists.
  std::optional<Bytes> add(const ShamirShare& share);

  bool done() const { return done_; }
  std::size_t attempts() const { return attempts_; }
  std::size_t shares_received() const { return shares_.size(); }

 private:
  std::optional<Bytes> try_recover();
  std::size_t pool_cap() const;
  bool candidate_has_quorum(std::span<const ShamirShare* const> base) const;

  uint32_t f_;
  Arss2Mode mode_;
  bool has_own_ = false;
  std::vector<ShamirShare> shares_;  // own share (if any) always at [0]
  std::size_t attempts_ = 0;
  bool done_ = false;
};

}  // namespace scab::secretshare
