// Threshold common coin (Cachin–Kursawe–Shoup style, via a DDH-based
// distributed VRF): the randomness source for asynchronous binary
// agreement.  For a coin name Q, server i contributes
//
//     sigma_i = H2E(Q)^{x_i}
//
// with a Chaum–Pedersen NIZK that log_{H2E(Q)}(sigma_i) = log_g(vk_i);
// any f+1 valid shares combine (Lagrange in the exponent) to
// H2E(Q)^x, whose hash is the coin value — unpredictable until f+1
// servers have spoken, and identical at every combiner.
//
// This is exactly the kind of "other expensive operation" the paper says
// makes asynchronous consensus-based BFT protocols slow relative to
// PBFT-style ones (§VI-A): every agreement round costs the group
// exponentiations below.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "crypto/modgroup.h"

namespace scab::abft {

struct CoinPublicKey {
  crypto::ModGroup group;
  std::vector<crypto::Bignum> verification_keys;  // vk_i = g^{x_i}, [0] = server 1
  uint32_t threshold = 0;                         // shares needed (f + 1)
  uint32_t servers = 0;

  const crypto::Bignum& vk(uint32_t index) const {
    return verification_keys.at(index - 1);
  }
};

struct CoinKeyShare {
  uint32_t index = 0;  // 1-based
  crypto::Bignum x;
};

struct CoinKeyMaterial {
  CoinPublicKey pk;
  std::vector<CoinKeyShare> shares;
};

struct CoinShare {
  uint32_t index = 0;
  crypto::Bignum sigma;  // H2E(Q)^{x_i}
  crypto::Bignum e, z;   // Chaum–Pedersen proof

  Bytes serialize(const crypto::ModGroup& group) const;
  static std::optional<CoinShare> parse(const crypto::ModGroup& group,
                                        BytesView wire);
};

/// Dealer setup (same trust assumption as CP0's threshold cryptosystem).
CoinKeyMaterial coin_keygen(const crypto::ModGroup& group, uint32_t threshold,
                            uint32_t servers, crypto::Drbg& rng);

/// Server i's share of the coin named `name`.
CoinShare coin_share(const CoinPublicKey& pk, const CoinKeyShare& key,
                     BytesView name, crypto::Drbg& rng);

/// Public share verification.
bool coin_verify_share(const CoinPublicKey& pk, BytesView name,
                       const CoinShare& share);

/// Combines >= threshold valid shares with distinct indices into the coin
/// bit.  Shares must have been verified; returns nullopt on too few.
std::optional<bool> coin_combine(const CoinPublicKey& pk, BytesView name,
                                 std::span<const CoinShare> shares);

}  // namespace scab::abft
