// Asynchronous consensus-based atomic broadcast (the CKPS/SINTRA lineage
// the paper contrasts with PBFT in §II and §VI-A), HoneyBadger-style:
//
//   epoch e:  every replica RBC-broadcasts its batch (Bracha reliable
//             broadcast), one binary agreement per proposer decides which
//             batches make the cut (input 1 on RBC delivery; once n-f
//             agreements decide 1, the rest are input 0), and the union of
//             accepted batches executes in deterministic proposer order.
//
// The binary agreement is Mostéfaoui–Moumen–Raynal style with a THRESHOLD
// COMMON COIN (abft/coin.h) — group exponentiations every round, which is
// precisely why the paper notes that for such protocols "the performance
// difference [between the causal protocols and CP0] is less visible"
// compared to PBFT (§VI-A): the base protocol already pays for public-key
// cryptography.  `bench_ablation_async` measures exactly that.
//
// AsyncReplica implements the same ReplicaApp-facing surface as
// bft::Replica, so the causal engines CP0–CP3 run on it UNCHANGED — the
// generality claim of the paper ("can be built from any types of BFT
// protocols", §II) made executable.  Simplifications vs production
// HoneyBadger: no erasure-coded RBC (full-payload echoes) and no threshold
// decryption of batches (the causal layer provides its own confidentiality
// mechanism — that is the whole point of the paper).
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <optional>
#include <set>

#include "abft/coin.h"
#include "bft/app.h"
#include "bft/client_window.h"
#include "bft/envelope.h"
#include "host/host.h"

namespace scab::abft {

using bft::NodeId;

class AsyncReplica : public host::HostBound<bft::ReplicaContext> {
 public:
  AsyncReplica(host::Host& host, NodeId id, bft::BftConfig config,
               const bft::KeyRing& keys, const host::CostModel& costs,
               const CoinPublicKey& coin_pk, CoinKeyShare coin_share,
               bft::ReplicaApp* app, crypto::Drbg rng);

  // --- host::Node ---
  void on_message(NodeId from, BytesView msg) override;

  // --- bft::ReplicaContext ---
  // id()/now()/schedule()/charge() come from the HostBound mixin.
  const bft::BftConfig& config() const override { return config_; }
  /// Epochs play the role of views for the app layer.
  uint64_t view() const override { return current_epoch_; }
  /// Rotating "coordinator" role; only used by apps that want a single
  /// proposer for housekeeping ops (CP1's cleanup).
  bool is_primary() const override {
    return current_epoch_ % config_.n == id();
  }
  void send_reply(NodeId client, uint64_t client_seq, Bytes result) override;
  void send_causal(NodeId to, Bytes body) override;
  void broadcast_causal(Bytes body) override;
  void submit_local_request(Bytes payload) override;
  void request_view_change(const char* /*reason*/) override {}  // leaderless
  void admit_foreign_request(NodeId client, uint64_t client_seq,
                             Bytes payload) override;
  crypto::Drbg& rng() override { return rng_; }
  const bft::KeyRing& keys() const override { return keys_; }

  // --- introspection ---
  uint64_t executed_requests() const { return executed_requests_; }
  uint64_t epochs_completed() const { return current_epoch_; }
  uint64_t aba_rounds_run() const { return aba_rounds_run_; }

 private:
  enum class MsgType : uint8_t {
    kRbcInit = 0,
    kRbcEcho = 1,
    kRbcReady = 2,
    kBval = 3,
    kAux = 4,
    kCoinShare = 5,
    kDecided = 6,
  };

  struct RbcState {
    std::optional<Bytes> init_payload;
    bool echo_sent = false;
    bool ready_sent = false;
    bool delivered = false;
    std::map<NodeId, std::string> echoes;   // sender -> digest hex
    std::map<NodeId, std::string> readies;  // sender -> digest hex
    std::map<std::string, Bytes> payloads;  // digest hex -> payload
  };

  struct AbaRound {
    std::set<NodeId> bval_senders[2];
    bool bval_sent[2] = {false, false};
    bool bin_values[2] = {false, false};
    std::map<NodeId, bool> aux;
    bool aux_sent = false;
    std::map<NodeId, CoinShare> coin_shares;
    bool coin_share_sent = false;
    std::optional<bool> coin;
  };

  struct AbaState {
    bool started = false;
    bool est = false;
    uint32_t round = 0;
    std::map<uint32_t, AbaRound> rounds;
    std::optional<bool> decided;
    bool decided_broadcast = false;
    std::set<NodeId> decided_votes[2];
  };

  struct Epoch {
    bool proposed = false;
    std::map<uint32_t, RbcState> rbc;  // per proposer
    std::map<uint32_t, AbaState> aba;
    std::map<uint32_t, Bytes> accepted_batches;  // delivered RBC payloads
    uint32_t ones = 0;   // ABAs decided 1
    uint32_t decided = 0;  // ABAs decided (either way)
    bool zero_filled = false;
    bool output_done = false;
  };

  // --- messaging ---
  void send_abft(NodeId to, BytesView body);
  void broadcast_abft(BytesView body);
  Bytes header(MsgType type, uint64_t epoch, uint32_t proposer) const;

  // --- client admission & proposing ---
  void handle_client_request(NodeId from, BytesView body, bool skip_validate);
  void maybe_propose(uint64_t epoch);

  // --- RBC ---
  void rbc_start(uint64_t epoch, Bytes payload);
  void rbc_on_init(uint64_t epoch, uint32_t proposer, Bytes payload);
  void rbc_on_echo(uint64_t epoch, uint32_t proposer, NodeId from, Bytes payload);
  void rbc_on_ready(uint64_t epoch, uint32_t proposer, NodeId from, Bytes payload);
  void rbc_deliver(uint64_t epoch, uint32_t proposer, Bytes payload);

  // --- ABA ---
  void aba_start(uint64_t epoch, uint32_t proposer, bool input);
  void aba_send_bval(uint64_t epoch, uint32_t proposer, uint32_t round, bool b);
  void aba_on_bval(uint64_t epoch, uint32_t proposer, uint32_t round,
                   NodeId from, bool b);
  void aba_on_aux(uint64_t epoch, uint32_t proposer, uint32_t round,
                  NodeId from, bool b);
  void aba_on_coin_share(uint64_t epoch, uint32_t proposer, uint32_t round,
                         NodeId from, const CoinShare& share);
  void aba_on_decided(uint64_t epoch, uint32_t proposer, NodeId from, bool b);
  void aba_progress(uint64_t epoch, uint32_t proposer);
  void aba_decide(uint64_t epoch, uint32_t proposer, bool b);

  // --- ACS / output ---
  void maybe_zero_fill(uint64_t epoch);
  void try_output(uint64_t epoch);

  Bytes coin_name(uint64_t epoch, uint32_t proposer, uint32_t round) const;
  Epoch& epoch_state(uint64_t e) { return epochs_[e]; }

  bft::BftConfig config_;
  const bft::KeyRing& keys_;
  CoinPublicKey coin_pk_;
  CoinKeyShare coin_key_;
  bft::ReplicaApp* app_;
  crypto::Drbg rng_;

  std::deque<bft::Request> pending_;
  std::set<std::string> pending_digests_;
  std::map<uint64_t, Epoch> epochs_;
  uint64_t current_epoch_ = 0;
  uint64_t exec_seq_ = 0;
  uint64_t local_seq_ = 1;

  // Windowed, not scalar: ACS executes in proposer order, so a pipelined
  // client's seqs routinely commit out of order (client_window.h).
  std::map<NodeId, bft::ClientExecWindow> executed_window_;
  std::map<NodeId, bft::ClientReplyCache> reply_cache_;

  std::atomic<uint64_t> executed_requests_{0};
  uint64_t aba_rounds_run_ = 0;
};

}  // namespace scab::abft
