#include "abft/replica.h"

#include "crypto/sha256.h"

namespace scab::abft {

using host::Op;

AsyncReplica::AsyncReplica(host::Host& host, NodeId id, bft::BftConfig config,
                           const bft::KeyRing& keys,
                           const host::CostModel& costs,
                           const CoinPublicKey& coin_pk, CoinKeyShare coin_share,
                           bft::ReplicaApp* app, crypto::Drbg rng)
    : HostBound(host, id, costs),
      config_(config),
      keys_(keys),
      coin_pk_(coin_pk),
      coin_key_(std::move(coin_share)),
      app_(app),
      rng_(std::move(rng)) {}

// ---------------------------------------------------------------------------
// Messaging

void AsyncReplica::send_abft(NodeId to, BytesView body) {
  charge(Op::kMsgOverhead, 0);
  charge(Op::kMac, body.size());
  send_raw(to, bft::seal_envelope(keys_, bft::Channel::kBft, id(), to, body));
}

void AsyncReplica::broadcast_abft(BytesView body) {
  for (NodeId r = 0; r < config_.n; ++r) {
    if (r == id()) continue;
    send_abft(r, body);
  }
}

Bytes AsyncReplica::header(MsgType type, uint64_t epoch,
                           uint32_t proposer) const {
  Writer w;
  w.u8(static_cast<uint8_t>(type));
  w.u64(epoch);
  w.u32(proposer);
  return std::move(w).take();
}

void AsyncReplica::send_reply(NodeId client, uint64_t client_seq, Bytes result) {
  bft::ReplyMsg reply;
  reply.view = current_epoch_;
  reply.client_seq = client_seq;
  reply.replica = id();
  reply.result = std::move(result);
  Bytes wire = reply.serialize();
  reply_cache_[client].put(client_seq, wire);
  charge(Op::kMsgOverhead, 0);
  charge(Op::kMac, wire.size());
  send_raw(client,
           bft::seal_envelope(keys_, bft::Channel::kReply, id(), client, wire));
}

void AsyncReplica::send_causal(NodeId to, Bytes body) {
  charge(Op::kMsgOverhead, 0);
  charge(Op::kMac, body.size());
  send_raw(to,
           bft::seal_envelope(keys_, bft::Channel::kCausal, id(), to, body));
}

void AsyncReplica::broadcast_causal(Bytes body) {
  for (NodeId r = 0; r < config_.n; ++r) {
    if (r == id()) continue;
    send_causal(r, body);
  }
}

// ---------------------------------------------------------------------------
// Client admission & proposing

void AsyncReplica::on_message(NodeId /*from*/, BytesView msg) {
  charge(Op::kMsgOverhead, 0);
  charge(Op::kMac, msg.size());
  auto env = bft::open_envelope(keys_, id(), msg);
  if (!env) return;

  switch (env->channel) {
    case bft::Channel::kClientRequest:
      handle_client_request(env->sender, env->body, false);
      return;
    case bft::Channel::kCausal:
      app_->on_causal_message(env->sender, env->body, *this);
      return;
    case bft::Channel::kReply:
      return;
    case bft::Channel::kBft:
      break;
  }
  if (env->sender >= config_.n) return;

  Reader r(env->body);
  const auto type = static_cast<MsgType>(r.u8());
  const uint64_t epoch = r.u64();
  const uint32_t proposer = r.u32();
  if (!r.ok() || proposer >= config_.n) return;
  if (epoch < current_epoch_) return;  // stale
  if (epoch > current_epoch_ + 64) return;  // runaway-epoch bound

  switch (type) {
    case MsgType::kRbcInit: {
      if (env->sender != proposer) return;  // only the proposer INITs
      Bytes payload = r.bytes();
      if (!r.done()) return;
      rbc_on_init(epoch, proposer, std::move(payload));
      break;
    }
    case MsgType::kRbcEcho: {
      Bytes payload = r.bytes();
      if (!r.done()) return;
      rbc_on_echo(epoch, proposer, env->sender, std::move(payload));
      break;
    }
    case MsgType::kRbcReady: {
      Bytes payload = r.bytes();
      if (!r.done()) return;
      rbc_on_ready(epoch, proposer, env->sender, std::move(payload));
      break;
    }
    case MsgType::kBval: {
      const uint32_t round = r.u32();
      const bool b = r.u8() != 0;
      if (!r.done()) return;
      aba_on_bval(epoch, proposer, round, env->sender, b);
      break;
    }
    case MsgType::kAux: {
      const uint32_t round = r.u32();
      const bool b = r.u8() != 0;
      if (!r.done()) return;
      aba_on_aux(epoch, proposer, round, env->sender, b);
      break;
    }
    case MsgType::kCoinShare: {
      const uint32_t round = r.u32();
      const Bytes wire = r.bytes();
      if (!r.done()) return;
      auto share = CoinShare::parse(coin_pk_.group, wire);
      if (!share || share->index != env->sender + 1) return;
      aba_on_coin_share(epoch, proposer, round, env->sender, *share);
      break;
    }
    case MsgType::kDecided: {
      const bool b = r.u8() != 0;
      if (!r.done()) return;
      aba_on_decided(epoch, proposer, env->sender, b);
      break;
    }
  }
  // Any traffic for the current epoch means someone has work: join in with
  // our own (possibly empty) proposal so the common subset can fill.
  if (epoch == current_epoch_) maybe_propose(epoch);
}

void AsyncReplica::handle_client_request(NodeId from, BytesView body,
                                         bool skip_validate) {
  auto msg = bft::ClientRequestMsg::parse(body);
  if (!msg) return;

  // Per-seq executed check (client_window.h): ACS order is proposer
  // order, so a pipelined client's seq s may still be outstanding after
  // s + 1 executed — it must be admitted, not treated as a replay.
  if (auto win = executed_window_.find(from);
      win != executed_window_.end() && win->second.executed(msg->client_seq)) {
    if (auto cached = reply_cache_.find(from); cached != reply_cache_.end()) {
      if (const Bytes* wire = cached->second.find(msg->client_seq)) {
        charge(Op::kMac, wire->size());
        send_raw(from, bft::seal_envelope(keys_, bft::Channel::kReply, id(),
                                          from, *wire));
      }
    }
    return;
  }
  if (!skip_validate && !app_->validate_request(from, *msg, *this)) return;

  bft::Request req;
  req.client = from;
  req.client_seq = msg->client_seq;
  req.payload = std::move(msg->payload);
  charge(Op::kHash, req.payload.size());
  const std::string key = hex_encode(req.digest());
  if (!pending_digests_.insert(key).second) return;
  pending_.push_back(std::move(req));
  maybe_propose(current_epoch_);
}

void AsyncReplica::admit_foreign_request(NodeId client, uint64_t client_seq,
                                         Bytes payload) {
  bft::ClientRequestMsg msg;
  msg.client_seq = client_seq;
  msg.payload = std::move(payload);
  msg.forwarded = true;
  handle_client_request(client, msg.serialize(), /*skip_validate=*/true);
}

void AsyncReplica::submit_local_request(Bytes payload) {
  bft::Request req;
  req.client = id();
  req.client_seq = local_seq_++;
  req.payload = std::move(payload);
  pending_digests_.insert(hex_encode(req.digest()));
  pending_.push_back(std::move(req));
  maybe_propose(current_epoch_);
}

void AsyncReplica::maybe_propose(uint64_t epoch) {
  if (epoch != current_epoch_) return;
  Epoch& e = epoch_state(epoch);
  if (e.proposed) return;
  // Propose when we have work, or when others started the epoch (empty
  // proposals keep the common-subset quorum alive).
  const bool others_active = !e.rbc.empty() || !e.aba.empty();
  if (pending_.empty() && !others_active) return;
  e.proposed = true;

  Writer w;
  const uint32_t take =
      static_cast<uint32_t>(std::min<std::size_t>(config_.max_batch, pending_.size()));
  w.u32(take);
  for (uint32_t i = 0; i < take; ++i) pending_[i].write(w);
  // Requests stay in pending_ until executed (they may ride a later epoch
  // if this proposal loses the cut).
  rbc_start(epoch, std::move(w).take());
}

// ---------------------------------------------------------------------------
// RBC (Bracha)

void AsyncReplica::rbc_start(uint64_t epoch, Bytes payload) {
  Writer w;
  w.raw(header(MsgType::kRbcInit, epoch, id()));
  w.bytes(payload);
  broadcast_abft(w.data());
  rbc_on_init(epoch, id(), std::move(payload));
}

void AsyncReplica::rbc_on_init(uint64_t epoch, uint32_t proposer,
                               Bytes payload) {
  RbcState& st = epoch_state(epoch).rbc[proposer];
  if (st.init_payload || st.echo_sent) return;
  st.init_payload = payload;
  st.echo_sent = true;
  Writer w;
  w.raw(header(MsgType::kRbcEcho, epoch, proposer));
  w.bytes(payload);
  broadcast_abft(w.data());
  rbc_on_echo(epoch, proposer, id(), std::move(payload));
}

void AsyncReplica::rbc_on_echo(uint64_t epoch, uint32_t proposer, NodeId from,
                               Bytes payload) {
  RbcState& st = epoch_state(epoch).rbc[proposer];
  if (st.delivered || st.echoes.contains(from)) return;
  charge(Op::kHash, payload.size());
  const std::string digest = hex_encode(crypto::sha256(payload));
  st.echoes[from] = digest;
  st.payloads.emplace(digest, std::move(payload));

  uint32_t matching = 0;
  for (const auto& [_, d] : st.echoes) {
    if (d == digest) ++matching;
  }
  if (matching >= config_.quorum() && !st.ready_sent) {
    st.ready_sent = true;
    Writer w;
    w.raw(header(MsgType::kRbcReady, epoch, proposer));
    w.bytes(st.payloads[digest]);
    broadcast_abft(w.data());
    rbc_on_ready(epoch, proposer, id(), st.payloads[digest]);
  }
}

void AsyncReplica::rbc_on_ready(uint64_t epoch, uint32_t proposer, NodeId from,
                                Bytes payload) {
  RbcState& st = epoch_state(epoch).rbc[proposer];
  if (st.delivered || st.readies.contains(from)) return;
  charge(Op::kHash, payload.size());
  const std::string digest = hex_encode(crypto::sha256(payload));
  st.readies[from] = digest;
  st.payloads.emplace(digest, std::move(payload));

  uint32_t matching = 0;
  for (const auto& [_, d] : st.readies) {
    if (d == digest) ++matching;
  }
  // f+1 readies: amplify.
  if (matching >= config_.f + 1 && !st.ready_sent) {
    st.ready_sent = true;
    Writer w;
    w.raw(header(MsgType::kRbcReady, epoch, proposer));
    w.bytes(st.payloads[digest]);
    broadcast_abft(w.data());
    rbc_on_ready(epoch, proposer, id(), st.payloads[digest]);
    return;  // recursion re-enters with our own ready counted
  }
  // 2f+1 readies: deliver.
  if (matching >= config_.quorum()) {
    st.delivered = true;
    rbc_deliver(epoch, proposer, st.payloads[digest]);
  }
}

void AsyncReplica::rbc_deliver(uint64_t epoch, uint32_t proposer, Bytes payload) {
  Epoch& e = epoch_state(epoch);
  e.accepted_batches[proposer] = std::move(payload);
  AbaState& aba = e.aba[proposer];
  if (!aba.started) aba_start(epoch, proposer, true);
  try_output(epoch);
}

// ---------------------------------------------------------------------------
// ABA (MMR with threshold common coin)

void AsyncReplica::aba_start(uint64_t epoch, uint32_t proposer, bool input) {
  AbaState& st = epoch_state(epoch).aba[proposer];
  if (st.started) return;
  st.started = true;
  st.est = input;
  st.round = 0;
  aba_send_bval(epoch, proposer, 0, input);
}

void AsyncReplica::aba_send_bval(uint64_t epoch, uint32_t proposer,
                                 uint32_t round, bool b) {
  AbaState& st = epoch_state(epoch).aba[proposer];
  AbaRound& rd = st.rounds[round];
  if (rd.bval_sent[b]) return;
  rd.bval_sent[b] = true;
  ++aba_rounds_run_;
  Writer w;
  w.raw(header(MsgType::kBval, epoch, proposer));
  w.u32(round);
  w.u8(b ? 1 : 0);
  broadcast_abft(w.data());
  aba_on_bval(epoch, proposer, round, id(), b);
}

void AsyncReplica::aba_on_bval(uint64_t epoch, uint32_t proposer,
                               uint32_t round, NodeId from, bool b) {
  AbaState& st = epoch_state(epoch).aba[proposer];
  AbaRound& rd = st.rounds[round];
  if (!rd.bval_senders[b].insert(from).second) return;
  const uint32_t count = static_cast<uint32_t>(rd.bval_senders[b].size());
  if (count >= config_.f + 1 && !rd.bval_sent[b]) {
    aba_send_bval(epoch, proposer, round, b);
  }
  if (count >= config_.quorum() && !rd.bin_values[b]) {
    rd.bin_values[b] = true;
    aba_progress(epoch, proposer);
  }
}

void AsyncReplica::aba_on_aux(uint64_t epoch, uint32_t proposer, uint32_t round,
                              NodeId from, bool b) {
  AbaRound& rd = epoch_state(epoch).aba[proposer].rounds[round];
  if (rd.aux.contains(from)) return;
  rd.aux[from] = b;
  aba_progress(epoch, proposer);
}

void AsyncReplica::aba_on_coin_share(uint64_t epoch, uint32_t proposer,
                                     uint32_t round, NodeId from,
                                     const CoinShare& share) {
  AbaRound& rd = epoch_state(epoch).aba[proposer].rounds[round];
  if (rd.coin.has_value() || rd.coin_shares.contains(from)) return;
  charge(Op::kTdh2VerifyShare, 0);  // same cost class: a CP verification
  if (!coin_verify_share(coin_pk_, coin_name(epoch, proposer, round), share)) {
    return;
  }
  rd.coin_shares[from] = share;
  if (rd.coin_shares.size() >= config_.f + 1) {
    std::vector<CoinShare> shares;
    shares.reserve(rd.coin_shares.size());
    for (const auto& [_, s] : rd.coin_shares) shares.push_back(s);
    charge(Op::kTdh2Combine, 0);
    rd.coin = coin_combine(coin_pk_, coin_name(epoch, proposer, round), shares);
  }
  aba_progress(epoch, proposer);
}

Bytes AsyncReplica::coin_name(uint64_t epoch, uint32_t proposer,
                              uint32_t round) const {
  Writer w;
  w.u64(epoch);
  w.u32(proposer);
  w.u32(round);
  return std::move(w).take();
}

void AsyncReplica::aba_progress(uint64_t epoch, uint32_t proposer) {
  AbaState& st = epoch_state(epoch).aba[proposer];
  if (!st.started || st.decided.has_value()) return;
  const uint32_t r = st.round;
  AbaRound& rd = st.rounds[r];

  // Broadcast AUX once some value entered bin_values.
  if (!rd.aux_sent && (rd.bin_values[0] || rd.bin_values[1])) {
    rd.aux_sent = true;
    const bool w_val = rd.bin_values[st.est] ? st.est : rd.bin_values[1];
    Writer w;
    w.raw(header(MsgType::kAux, epoch, proposer));
    w.u32(r);
    w.u8(w_val ? 1 : 0);
    broadcast_abft(w.data());
    rd.aux[id()] = w_val;
  }

  // Count AUX votes whose value is in bin_values.
  uint32_t valid_aux = 0;
  bool seen[2] = {false, false};
  for (const auto& [_, b] : rd.aux) {
    if (rd.bin_values[b]) {
      ++valid_aux;
      seen[b] = true;
    }
  }
  if (valid_aux < config_.n - config_.f) return;

  // Release our coin share (only now: earlier release lets the adversary
  // bias the round).
  if (!rd.coin_share_sent) {
    rd.coin_share_sent = true;
    charge(Op::kTdh2ShareDec, 0);  // same cost class: one CP share
    const CoinShare share =
        coin_share(coin_pk_, coin_key_, coin_name(epoch, proposer, r), rng_);
    Writer w;
    w.raw(header(MsgType::kCoinShare, epoch, proposer));
    w.u32(r);
    w.bytes(share.serialize(coin_pk_.group));
    broadcast_abft(w.data());
    aba_on_coin_share(epoch, proposer, r, id(), share);
    return;  // re-entered when the coin resolves
  }
  if (!rd.coin.has_value()) return;
  const bool c = *rd.coin;

  if (seen[0] != seen[1]) {
    const bool b = seen[1];
    st.est = b;
    if (b == c) {
      aba_decide(epoch, proposer, b);
      return;
    }
  } else {
    st.est = c;
  }
  st.round = r + 1;
  aba_send_bval(epoch, proposer, st.round, st.est);
  // Messages for the new round may already be buffered.
  aba_progress(epoch, proposer);
}

void AsyncReplica::aba_on_decided(uint64_t epoch, uint32_t proposer,
                                  NodeId from, bool b) {
  AbaState& st = epoch_state(epoch).aba[proposer];
  if (!st.decided_votes[b].insert(from).second) return;
  if (st.decided.has_value()) return;
  if (st.decided_votes[b].size() >= config_.f + 1) {
    aba_decide(epoch, proposer, b);
  }
}

void AsyncReplica::aba_decide(uint64_t epoch, uint32_t proposer, bool b) {
  AbaState& st = epoch_state(epoch).aba[proposer];
  if (st.decided.has_value()) return;
  st.decided = b;
  if (!st.decided_broadcast) {
    st.decided_broadcast = true;
    Writer w;
    w.raw(header(MsgType::kDecided, epoch, proposer));
    w.u8(b ? 1 : 0);
    broadcast_abft(w.data());
  }
  Epoch& e = epoch_state(epoch);
  ++e.decided;
  if (b) ++e.ones;
  maybe_zero_fill(epoch);
  try_output(epoch);
}

// ---------------------------------------------------------------------------
// ACS output

void AsyncReplica::maybe_zero_fill(uint64_t epoch) {
  Epoch& e = epoch_state(epoch);
  if (e.zero_filled || e.ones < config_.n - config_.f) return;
  e.zero_filled = true;
  for (uint32_t p = 0; p < config_.n; ++p) {
    AbaState& st = e.aba[p];
    if (!st.started) aba_start(epoch, p, false);
  }
}

void AsyncReplica::try_output(uint64_t epoch) {
  if (epoch != current_epoch_) return;
  Epoch& e = epoch_state(epoch);
  if (e.output_done) return;
  if (e.decided < config_.n) return;
  // Every accepted proposer's batch must have been RBC-delivered.
  for (uint32_t p = 0; p < config_.n; ++p) {
    if (e.aba[p].decided == std::optional<bool>(true) &&
        !e.accepted_batches.contains(p)) {
      return;  // RBC will deliver eventually (some correct node has it)
    }
  }
  e.output_done = true;

  // Execute accepted batches in proposer order.
  for (uint32_t p = 0; p < config_.n; ++p) {
    if (e.aba[p].decided != std::optional<bool>(true)) continue;
    Reader r(e.accepted_batches[p]);
    const uint32_t count = r.u32();
    if (!r.ok() || count > config_.max_batch) continue;
    for (uint32_t i = 0; i < count; ++i) {
      auto req = bft::Request::read(r);
      if (!req) break;
      if (!executed_window_[req->client].mark(req->client_seq)) continue;
      pending_digests_.erase(hex_encode(req->digest()));
      ++executed_requests_;
      app_->on_deliver(++exec_seq_, *req, *this);
    }
  }
  // The epoch's combined batch finished delivering: let the app flush any
  // work it deferred to amortize across the batch (CP1's reveal executions).
  app_->on_batch_end(*this);

  // Drop pending requests that were executed via another proposer's batch.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (!pending_digests_.contains(hex_encode(it->digest()))) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }

  epochs_.erase(epoch);
  ++current_epoch_;
  maybe_propose(current_epoch_);
}

}  // namespace scab::abft
