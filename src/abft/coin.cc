#include "abft/coin.h"

#include <algorithm>
#include <stdexcept>

#include "common/serialize.h"
#include "crypto/sha256.h"

namespace scab::abft {

using crypto::Bignum;
using crypto::ModGroup;

namespace {

Bignum name_base(const ModGroup& group, BytesView name) {
  return group.hash_to_element(
      crypto::sha256_tuple({to_bytes("coin.base"), name}));
}

Bignum proof_challenge(const ModGroup& group, uint32_t index, const Bignum& u,
                       const Bignum& sigma, const Bignum& a, const Bignum& b) {
  const std::size_t eb = group.element_bytes();
  uint8_t idx[4];
  for (int i = 0; i < 4; ++i) idx[i] = static_cast<uint8_t>(index >> (8 * i));
  return group.hash_to_exponent(crypto::sha256_tuple(
      {to_bytes("coin.cp"), BytesView(idx, 4), u.to_bytes_be(eb),
       sigma.to_bytes_be(eb), a.to_bytes_be(eb), b.to_bytes_be(eb)}));
}

Bignum lagrange_at_zero(const ModGroup& group, uint32_t j,
                        std::span<const uint32_t> indices) {
  const Bignum& q = group.q();
  Bignum num(1), den(1);
  const Bignum bj(j);
  for (uint32_t k : indices) {
    if (k == j) continue;
    const Bignum bk(k);
    num = crypto::mod_mul(num, bk, q);
    den = crypto::mod_mul(den, crypto::mod_sub(bk, bj, q), q);
  }
  return crypto::mod_mul(num, crypto::mod_inv_prime(den, q), q);
}

}  // namespace

Bytes CoinShare::serialize(const ModGroup& group) const {
  Writer w;
  w.u32(index);
  w.raw(sigma.to_bytes_be(group.element_bytes()));
  w.raw(e.to_bytes_be(group.exponent_bytes()));
  w.raw(z.to_bytes_be(group.exponent_bytes()));
  return std::move(w).take();
}

std::optional<CoinShare> CoinShare::parse(const ModGroup& group,
                                          BytesView wire) {
  Reader r(wire);
  CoinShare s;
  s.index = r.u32();
  s.sigma = Bignum::from_bytes_be(r.raw(group.element_bytes()));
  s.e = Bignum::from_bytes_be(r.raw(group.exponent_bytes()));
  s.z = Bignum::from_bytes_be(r.raw(group.exponent_bytes()));
  if (!r.done()) return std::nullopt;
  return s;
}

CoinKeyMaterial coin_keygen(const ModGroup& group, uint32_t threshold,
                            uint32_t servers, crypto::Drbg& rng) {
  if (threshold == 0 || threshold > servers) {
    throw std::invalid_argument("coin_keygen: need 1 <= t <= n");
  }
  std::vector<Bignum> coeffs(threshold);
  for (auto& c : coeffs) c = group.random_exponent(rng);

  auto eval = [&](uint32_t at) {
    const Bignum point(at);
    Bignum acc;
    for (std::size_t i = coeffs.size(); i-- > 0;) {
      acc = crypto::mod_add(crypto::mod_mul(acc, point, group.q()), coeffs[i],
                            group.q());
    }
    return acc;
  };

  CoinKeyMaterial out;
  out.pk.group = group;
  out.pk.threshold = threshold;
  out.pk.servers = servers;
  for (uint32_t i = 1; i <= servers; ++i) {
    Bignum x_i = eval(i);
    out.pk.verification_keys.push_back(group.exp(group.g(), x_i));
    out.shares.push_back(CoinKeyShare{i, std::move(x_i)});
  }
  return out;
}

CoinShare coin_share(const CoinPublicKey& pk, const CoinKeyShare& key,
                     BytesView name, crypto::Drbg& rng) {
  const ModGroup& grp = pk.group;
  const Bignum u = name_base(grp, name);

  CoinShare share;
  share.index = key.index;
  share.sigma = grp.exp(u, key.x);
  // Chaum–Pedersen: prove log_u(sigma) == log_g(vk_i).
  const Bignum r = grp.random_exponent(rng);
  const Bignum a = grp.exp(u, r);
  const Bignum b = grp.exp(grp.g(), r);
  share.e = proof_challenge(grp, key.index, u, share.sigma, a, b);
  share.z = crypto::mod_add(r, crypto::mod_mul(key.x, share.e, grp.q()),
                            grp.q());
  return share;
}

bool coin_verify_share(const CoinPublicKey& pk, BytesView name,
                       const CoinShare& share) {
  const ModGroup& grp = pk.group;
  if (share.index == 0 || share.index > pk.servers) return false;
  if (!grp.is_element(share.sigma)) return false;
  if (share.e >= grp.q() || share.z >= grp.q()) return false;
  const Bignum u = name_base(grp, name);
  // a = u^z / sigma^e ; b = g^z / vk^e
  const Bignum a =
      grp.mul(grp.exp(u, share.z), grp.inv(grp.exp(share.sigma, share.e)));
  const Bignum b = grp.mul(grp.exp(grp.g(), share.z),
                           grp.inv(grp.exp(pk.vk(share.index), share.e)));
  return proof_challenge(grp, share.index, u, share.sigma, a, b) == share.e;
}

std::optional<bool> coin_combine(const CoinPublicKey& pk, BytesView name,
                                 std::span<const CoinShare> shares) {
  const ModGroup& grp = pk.group;
  std::vector<const CoinShare*> chosen;
  std::vector<uint32_t> indices;
  for (const auto& s : shares) {
    if (std::find(indices.begin(), indices.end(), s.index) != indices.end()) {
      continue;
    }
    chosen.push_back(&s);
    indices.push_back(s.index);
    if (chosen.size() == pk.threshold) break;
  }
  if (chosen.size() < pk.threshold) return std::nullopt;

  Bignum value(1);
  for (const auto* s : chosen) {
    const Bignum lambda = lagrange_at_zero(grp, s->index, indices);
    value = grp.mul(value, grp.exp(s->sigma, lambda));
  }
  const Bytes digest = crypto::sha256_tuple(
      {to_bytes("coin.out"), name,
       value.to_bytes_be(grp.element_bytes())});
  return (digest[0] & 1) != 0;
}

}  // namespace scab::abft
