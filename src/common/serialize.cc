#include "common/serialize.h"

namespace scab {

void Writer::u16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void Writer::u32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::u64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::bytes(BytesView b) {
  u32(static_cast<uint32_t>(b.size()));
  append(buf_, b);
}

void Writer::str(std::string_view s) {
  u32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

bool Reader::take(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t Reader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

uint16_t Reader::u16() {
  if (!take(2)) return 0;
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

uint32_t Reader::u32() {
  if (!take(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

uint64_t Reader::u64() {
  if (!take(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Bytes Reader::bytes() {
  const uint32_t n = u32();
  return raw(n);
}

std::string Reader::str() {
  const uint32_t n = u32();
  if (!take(n)) return {};
  std::string s(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return s;
}

Bytes Reader::raw(std::size_t n) {
  if (!take(n)) return {};
  Bytes b(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return b;
}

}  // namespace scab
