// Minimal, explicit wire serialization.
//
// All multi-byte integers are little-endian.  Variable-length fields are
// length-prefixed with a u32.  Readers are *strict*: any truncation or
// overlong length yields an error state that the caller must check via ok()
// (subsequent reads on a failed reader return zero values and keep ok()
// false), so malformed network input can never fault the process.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace scab {

class Writer {
 public:
  Writer() = default;

  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  /// Length-prefixed byte string (u32 length).
  void bytes(BytesView b);
  /// Length-prefixed UTF-8/raw string (u32 length).
  void str(std::string_view s);
  /// Raw bytes with NO length prefix; reader must know the size.
  void raw(BytesView b) { append(buf_, b); }

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  uint8_t u8();
  uint16_t u16();
  uint32_t u32();
  uint64_t u64();
  Bytes bytes();
  std::string str();
  /// Reads exactly `n` raw bytes (no length prefix).
  Bytes raw(std::size_t n);

  bool ok() const { return ok_; }
  /// True when every byte has been consumed and no error occurred.
  bool done() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

 private:
  bool take(std::size_t n);

  BytesView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace scab
