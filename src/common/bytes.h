// Byte-string utilities shared by every module.
//
// The whole library speaks `Bytes` (a std::vector<uint8_t>) on its public
// boundaries: wire messages, hashes, keys, shares, ciphertexts.  The helpers
// here keep conversions explicit and allocation-aware.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace scab {

using Bytes = std::vector<uint8_t>;
using BytesView = std::span<const uint8_t>;

/// Builds a Bytes from the raw characters of `s` (no encoding applied).
Bytes to_bytes(std::string_view s);

/// Interprets `b` as raw characters (no encoding applied).
std::string to_string(BytesView b);

/// Lower-case hex encoding, two characters per byte.
std::string hex_encode(BytesView b);

/// Inverse of hex_encode. Throws std::invalid_argument on malformed input
/// (odd length or non-hex characters).
Bytes hex_decode(std::string_view hex);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Concatenates any number of byte views into a fresh buffer.
template <typename... Views>
Bytes concat(const Views&... views) {
  Bytes out;
  std::size_t total = 0;
  ((total += BytesView(views).size()), ...);
  out.reserve(total);
  (append(out, BytesView(views)), ...);
  return out;
}

/// Constant-time equality check; safe for comparing MACs and other secrets.
/// Returns false for length mismatches (length is not considered secret).
bool ct_equal(BytesView a, BytesView b);

/// XORs `b` into `a` in place; the spans must be the same length.
void xor_inplace(std::span<uint8_t> a, BytesView b);

}  // namespace scab
