#include "common/bytes.h"

#include <stdexcept>

namespace scab {

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_string(BytesView b) { return std::string(b.begin(), b.end()); }

std::string hex_encode(BytesView b) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t byte : b) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0x0f]);
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Bytes hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("hex_decode: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("hex_decode: non-hex character");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

void xor_inplace(std::span<uint8_t> a, BytesView b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("xor_inplace: length mismatch");
  }
  for (std::size_t i = 0; i < a.size(); ++i) a[i] ^= b[i];
}

}  // namespace scab
