// Failure drill: a guided tour of the fault-tolerance machinery — primary
// crash and view change, a Byzantine replica sending corrupted shares, a
// client that crashes mid-protocol and has its tentative request cleaned.
#include <cstdio>

#include "bft/client.h"
#include "bft/replica.h"
#include "causal/cp0.h"
#include "causal/cp1.h"
#include "causal/harness.h"

int main() {
  using namespace scab;
  using sim::kMillisecond;
  using sim::kSecond;

  causal::ClusterOptions opts;
  opts.protocol = causal::Protocol::kCp1;
  opts.bft = bft::BftConfig::for_f(1);
  opts.bft.request_timeout = 1 * kSecond;
  opts.bft.watchdog_period = 200 * kMillisecond;
  opts.profile = sim::NetworkProfile::lan();
  opts.num_clients = 2;
  opts.cp1.cleanup_cycle = 25;
  causal::Cluster cluster(opts);

  std::printf("--- drill 1: primary crash ---\n");
  cluster.net().faults().crash(0);
  auto r = cluster.run_one(0, to_bytes("survives the primary"), 60 * kSecond);
  std::printf("request completed after view change: %s (view is now %lu)\n",
              r ? "yes" : "NO",
              static_cast<unsigned long>(cluster.replica(1).view()));
  cluster.net().faults().recover(0);

  std::printf("\n--- drill 2: crashed client leaves a tentative request ---\n");
  auto& crasher =
      dynamic_cast<causal::Cp1ClientProtocol&>(cluster.client_protocol(0));
  crasher.set_crash_before_reveal(true);
  cluster.client(0).submit(to_bytes("i will never be revealed"));
  // Background traffic ages the tentative request past the cleanup cycle.
  cluster.client(1).run_closed_loop([](uint64_t) { return Bytes(64, 7); }, 60);
  cluster.sim().run_while([&] {
    auto& app = dynamic_cast<causal::Cp1ReplicaApp&>(cluster.replica_app(1));
    return app.cleaned_count() >= 1 || cluster.sim().now() > 120 * kSecond;
  });
  cluster.sim().run_until(cluster.sim().now() + 100 * kMillisecond);
  auto& app = dynamic_cast<causal::Cp1ReplicaApp&>(cluster.replica_app(1));
  std::printf("tentative requests cleaned by the primary's CLEANUP op: %lu\n",
              static_cast<unsigned long>(app.cleaned_count()));
  std::printf("tentative requests still pending: %lu\n",
              static_cast<unsigned long>(app.tentative_count()));
  std::printf("view changes so far: %lu (cleanup respected the cycle rule)\n",
              static_cast<unsigned long>(cluster.replica(1).view_changes_completed()));

  std::printf("\n--- drill 3: service keeps running ---\n");
  auto final = cluster.run_one(1, to_bytes("business as usual"));
  std::printf("post-drill request: %s\n", final ? "completed" : "FAILED");

  std::printf("\n--- what the observability layer saw ---\n");
  std::printf("crash-attributed drops: %llu   (drill 1's dead primary)\n",
              static_cast<unsigned long long>(
                  cluster.net_metrics().counter_value("net.drops.crash")));
  std::printf("view changes started on replica 1: %llu\n",
              static_cast<unsigned long long>(
                  cluster.replica_metrics(1).counter_value(
                      "bft.view_changes_started")));
  std::printf("cp1 requests cleaned (cluster-wide): %llu\n",
              static_cast<unsigned long long>(
                  cluster.merged_metrics().counter_value("cp1.cleaned")));
  const auto breakdown = cluster.tracer().breakdown();
  std::printf("traced requests: %llu completed, %.3f ms mean end-to-end\n",
              static_cast<unsigned long long>(breakdown.completed),
              breakdown.end_to_end_ms);
  for (const auto& ph : breakdown.phases) {
    if (ph.mean_ms > 0) {
      std::printf("  %-8s %.3f ms\n", ph.name, ph.mean_ms);
    }
  }
  return final ? 0 : 1;
}
