// Failure drill: a guided tour of the fault-tolerance machinery — primary
// crash and view change, a client that crashes mid-protocol and has its
// tentative request cleaned, and a seeded chaos run driven through the
// runtime-agnostic host::FaultInjector.
//
//   failure_drill                             # sim chaos run, default seed
//   failure_drill --chaos-seed=9              # pick a different schedule
//   failure_drill --runtime=threads --chaos-seed=9   # real threads + sockets
//
// The chaos schedule for a given seed is identical on both runtimes; under
// --runtime=sim the whole run is bit-reproducible.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bft/client.h"
#include "bft/replica.h"
#include "causal/cp0.h"
#include "causal/cp1.h"
#include "causal/harness.h"
#include "chaos/chaos.h"

namespace {

// Classic drills: deterministic sim walkthrough of a primary crash and a
// crashed CP1 client, driving the cuts through host::FaultInjector (the same
// interface the threaded runtime implements).
int classic_drills() {
  using namespace scab;
  using host::kMillisecond;
  using host::kSecond;

  causal::ClusterOptions opts;
  opts.protocol = causal::Protocol::kCp1;
  opts.bft = bft::BftConfig::for_f(1);
  opts.bft.request_timeout = 1 * kSecond;
  opts.bft.watchdog_period = 200 * kMillisecond;
  opts.profile = sim::NetworkProfile::lan();
  opts.num_clients = 2;
  opts.cp1.cleanup_cycle = 25;
  causal::Cluster cluster(opts);

  std::printf("--- drill 1: primary crash ---\n");
  host::FaultInjector& faults = cluster.faults();
  faults.crash(0);
  auto r = cluster.run_one(0, to_bytes("survives the primary"), 60 * kSecond);
  std::printf("request completed after view change: %s (view is now %lu)\n",
              r ? "yes" : "NO",
              static_cast<unsigned long>(cluster.replica(1).view()));
  faults.restart(0);

  std::printf("\n--- drill 2: crashed client leaves a tentative request ---\n");
  auto& crasher =
      dynamic_cast<causal::Cp1ClientProtocol&>(cluster.client_protocol(0));
  crasher.set_crash_before_reveal(true);
  cluster.client(0).submit(to_bytes("i will never be revealed"));
  // Background traffic ages the tentative request past the cleanup cycle.
  cluster.client(1).run_closed_loop([](uint64_t) { return Bytes(64, 7); }, 60);
  cluster.sim().run_while([&] {
    auto& app = dynamic_cast<causal::Cp1ReplicaApp&>(cluster.replica_app(1));
    return app.cleaned_count() >= 1 || cluster.sim().now() > 120 * kSecond;
  });
  cluster.sim().run_until(cluster.sim().now() + 100 * kMillisecond);
  auto& app = dynamic_cast<causal::Cp1ReplicaApp&>(cluster.replica_app(1));
  std::printf("tentative requests cleaned by the primary's CLEANUP op: %lu\n",
              static_cast<unsigned long>(app.cleaned_count()));
  std::printf("tentative requests still pending: %lu\n",
              static_cast<unsigned long>(app.tentative_count()));
  std::printf("view changes so far: %lu (cleanup respected the cycle rule)\n",
              static_cast<unsigned long>(
                  cluster.replica(1).view_changes_completed()));

  std::printf("\n--- drill 3: service keeps running ---\n");
  auto final = cluster.run_one(1, to_bytes("business as usual"));
  std::printf("post-drill request: %s\n", final ? "completed" : "FAILED");

  std::printf("\n--- what the observability layer saw ---\n");
  std::printf("crash-attributed drops: %llu   (drill 1's dead primary)\n",
              static_cast<unsigned long long>(
                  cluster.net_metrics().counter_value("net.drops.crash")));
  std::printf("view changes started on replica 1: %llu\n",
              static_cast<unsigned long long>(
                  cluster.replica_metrics(1).counter_value(
                      "bft.view_changes_started")));
  std::printf("cp1 requests cleaned (cluster-wide): %llu\n",
              static_cast<unsigned long long>(
                  cluster.merged_metrics().counter_value("cp1.cleaned")));
  const auto breakdown = cluster.tracer().breakdown();
  std::printf("traced requests: %llu completed, %.3f ms mean end-to-end\n",
              static_cast<unsigned long long>(breakdown.completed),
              breakdown.end_to_end_ms);
  for (const auto& ph : breakdown.phases) {
    if (ph.mean_ms > 0) {
      std::printf("  %-8s %.3f ms\n", ph.name, ph.mean_ms);
    }
  }
  return final ? 0 : 1;
}

// Chaos drill: one seeded schedule of crash/restart/cut/heal/delay/tamper
// against CP2, on the runtime picked by --runtime.
int chaos_drill(scab::causal::RuntimeKind runtime, uint64_t seed) {
  using namespace scab;

  chaos::ChaosOptions opt;
  opt.protocol = causal::Protocol::kCp2;
  opt.runtime = runtime;
  if (runtime == causal::RuntimeKind::kThreads) {
    // Wall-clock run: keep the fault window short.
    opt.horizon = 500 * host::kMillisecond;
    opt.deadline = 30 * host::kSecond;
    opt.ops_per_client = 4;
  }

  const bool threads = runtime == causal::RuntimeKind::kThreads;
  std::printf("\n--- drill 4: seeded chaos (%s runtime, seed %llu) ---\n",
              threads ? "threaded" : "sim",
              static_cast<unsigned long long>(seed));
  const auto schedule = chaos::generate_schedule(seed, opt);
  std::printf("%s", chaos::format_schedule(schedule).c_str());

  const chaos::ChaosReport report = chaos::run_chaos(seed, opt);
  std::printf("faults injected: %llu\n",
              static_cast<unsigned long long>(report.faults_injected));
  std::printf("operations completed: %llu / %llu\n",
              static_cast<unsigned long long>(report.completed_ops),
              static_cast<unsigned long long>(report.expected_ops));
  if (report.first_delivery_after_heal > 0) {
    std::printf("first delivery after terminal heal: %.3f ms\n",
                static_cast<double>(report.first_delivery_after_heal) / 1e6);
  }
  std::printf("safety:   %s\n", report.safety_ok ? "ok" : "VIOLATED");
  std::printf("secrecy:  %s\n", report.secrecy_ok ? "ok" : "VIOLATED");
  std::printf("liveness: %s\n", report.liveness_ok ? "ok" : "VIOLATED");
  if (!report.ok()) {
    std::printf("violation: %s\n", report.violation.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scab;

  causal::RuntimeKind runtime = causal::RuntimeKind::kSim;
  uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--runtime=threads") == 0) {
      runtime = causal::RuntimeKind::kThreads;
    } else if (std::strcmp(arg, "--runtime=sim") == 0) {
      runtime = causal::RuntimeKind::kSim;
    } else if (std::strncmp(arg, "--chaos-seed=", 13) == 0) {
      seed = std::strtoull(arg + 13, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--runtime=sim|threads] [--chaos-seed=N]\n",
                   argv[0]);
      return 2;
    }
  }

  // The guided walkthrough is a deterministic sim story; the chaos drill
  // honors --runtime and exercises the same injector on real threads.
  int rc = classic_drills();
  rc |= chaos_drill(runtime, seed);
  return rc;
}
