// Quickstart: bring up a CP1 secure-causal cluster, replicate a key-value
// store, and issue a few requests.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart                    # discrete-event simulator
//   ./build/examples/quickstart --runtime=threads  # real threads + loopback
//
// The same five lines of setup work for every protocol: change
// `opts.protocol` to kPbft / kCp0 / kCp2 / kCp3 to swap the engine.  The
// runtime flag swaps the host (DESIGN.md §8): kSim runs the whole cluster
// on one deterministic virtual-time event loop; kThreads gives every node a
// real worker thread over an in-process loopback transport.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "apps/kvstore.h"
#include "bft/client.h"
#include "bft/replica.h"
#include "causal/harness.h"

int main(int argc, char** argv) {
  using namespace scab;

  causal::RuntimeKind runtime = causal::RuntimeKind::kSim;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--runtime=threads") == 0) {
      runtime = causal::RuntimeKind::kThreads;
    } else if (std::strcmp(argv[i], "--runtime=sim") == 0) {
      runtime = causal::RuntimeKind::kSim;
    } else {
      std::fprintf(stderr, "usage: %s [--runtime=sim|--runtime=threads]\n",
                   argv[0]);
      return 2;
    }
  }
  const bool threaded = runtime == causal::RuntimeKind::kThreads;

  // 1. Describe the deployment: protocol, fault threshold, runtime.
  causal::ClusterOptions opts;
  opts.protocol = causal::Protocol::kCp1;       // fair BFT + NM-CAD commitments
  opts.runtime = runtime;
  opts.bft = bft::BftConfig::for_f(1);          // n = 3f + 1 = 4 replicas
  opts.profile = sim::NetworkProfile::lan();    // kSim only: 100 MB/s, 0.1 ms
  opts.num_clients = 1;
  opts.service_factory = [] { return std::make_unique<apps::KvStore>(); };

  // 2. Build the cluster: host runtime, network, keys, replicas, clients.
  causal::Cluster cluster(opts);
  std::printf("cluster up: %s, n=%u replicas, f=%u, runtime=%s\n",
              causal::protocol_name(opts.protocol), cluster.n(), cluster.f(),
              threaded ? "threads" : "sim");

  // 3. Issue requests.  Each one travels as a commitment first (schedule),
  //    then as an opening (reveal) — no replica sees the operation before
  //    its position in the total order is fixed.
  auto put = cluster.run_one(0, apps::KvStore::put("greeting", to_bytes("hello, causal world")));
  std::printf("put -> %s\n", put ? to_string(*put).c_str() : "(timeout)");

  auto get = cluster.run_one(0, apps::KvStore::get("greeting"));
  std::printf("get -> %s\n", get ? to_string(*get).c_str() : "(timeout)");

  // 4. Inspect the replicated state.  The client completes on an f+1
  //    quorum, so under kThreads the slowest replica may still be applying
  //    the tail — give it a moment to converge, then shutdown() joins the
  //    workers (no-op under kSim) so the reads below are stable.
  if (threaded) {
    auto converged = [&] {
      const uint64_t e0 = cluster.replica_executed(0);
      if (e0 == 0) return false;
      for (uint32_t r = 1; r < cluster.n(); ++r) {
        if (cluster.replica_executed(r) != e0) return false;
      }
      return true;
    };
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (!converged() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  cluster.shutdown();
  for (uint32_t i = 0; i < cluster.n(); ++i) {
    std::printf("replica %u executed %lu requests, view %lu\n", i,
                static_cast<unsigned long>(cluster.replica(i).executed_requests()),
                static_cast<unsigned long>(cluster.replica(i).view()));
  }

  if (threaded) {
    std::printf("wall time elapsed: %.2f ms\n",
                static_cast<double>(cluster.host().now()) / host::kMillisecond);
  } else {
    std::printf("virtual time elapsed: %.2f ms\n",
                static_cast<double>(cluster.sim().now()) / sim::kMillisecond);
  }
  return 0;
}
