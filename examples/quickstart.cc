// Quickstart: bring up a CP1 secure-causal cluster on the simulator,
// replicate a key-value store, and issue a few requests.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The same five lines of setup work for every protocol: change
// `opts.protocol` to kPbft / kCp0 / kCp2 / kCp3 to swap the engine.
#include <cstdio>

#include "apps/kvstore.h"
#include "causal/harness.h"

int main() {
  using namespace scab;

  // 1. Describe the deployment: protocol, fault threshold, network.
  causal::ClusterOptions opts;
  opts.protocol = causal::Protocol::kCp1;       // fair BFT + NM-CAD commitments
  opts.bft = bft::BftConfig::for_f(1);          // n = 3f + 1 = 4 replicas
  opts.profile = sim::NetworkProfile::lan();    // 100 MB/s, 0.1 ms
  opts.num_clients = 1;
  opts.service_factory = [] { return std::make_unique<apps::KvStore>(); };

  // 2. Build the cluster: simulator, network, keys, replicas, clients.
  causal::Cluster cluster(opts);
  std::printf("cluster up: %s, n=%u replicas, f=%u\n",
              causal::protocol_name(opts.protocol), cluster.n(), cluster.f());

  // 3. Issue requests.  Each one travels as a commitment first (schedule),
  //    then as an opening (reveal) — no replica sees the operation before
  //    its position in the total order is fixed.
  auto put = cluster.run_one(0, apps::KvStore::put("greeting", to_bytes("hello, causal world")));
  std::printf("put -> %s\n", put ? to_string(*put).c_str() : "(timeout)");

  auto get = cluster.run_one(0, apps::KvStore::get("greeting"));
  std::printf("get -> %s\n", get ? to_string(*get).c_str() : "(timeout)");

  // 4. Inspect the replicated state: every replica executed both ops.
  for (uint32_t i = 0; i < cluster.n(); ++i) {
    std::printf("replica %u executed %lu requests, view %lu\n", i,
                static_cast<unsigned long>(cluster.replica(i).executed_requests()),
                static_cast<unsigned long>(cluster.replica(i).view()));
  }

  std::printf("virtual time elapsed: %.2f ms\n",
              static_cast<double>(cluster.sim().now()) / sim::kMillisecond);
  return 0;
}
