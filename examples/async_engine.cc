// Generality demo (paper §II: "our constructions are all general and can
// be built from any types of BFT protocols"): the SAME causal protocol,
// application, and client code running first on sequencer-based PBFT and
// then on the asynchronous consensus-based engine (reliable broadcast +
// common-coin binary agreement + common subset) — one enum changes.
#include <cstdio>

#include "apps/kvstore.h"
#include "abft/replica.h"
#include "bft/client.h"
#include "causal/harness.h"

namespace {

using namespace scab;

double run_once(causal::Engine engine) {
  causal::ClusterOptions opts;
  opts.protocol = causal::Protocol::kCp2;  // secret-shared causal requests
  opts.engine = engine;
  opts.bft = bft::BftConfig::for_f(1);
  opts.profile = sim::NetworkProfile::lan();
  opts.coin_group = crypto::ModGroup::modp_512();  // honest coin pricing
  opts.costs = sim::CostModel::default_symmetric_era();
  opts.service_factory = [] { return std::make_unique<apps::KvStore>(); };
  causal::Cluster cluster(opts);

  const char* name =
      engine == causal::Engine::kPbftEngine ? "PBFT (sequencer)" : "async (ACS)";
  std::printf("--- CP2 on %s ---\n", name);

  auto& client = cluster.client(0);
  client.run_closed_loop(
      [](uint64_t i) {
        return apps::KvStore::put("key-" + std::to_string(i), to_bytes("v"));
      },
      5);
  cluster.sim().run_while([&] {
    return client.completed_ops() >= 5 ||
           cluster.sim().now() > 600 * sim::kSecond;
  });

  const double mean_ms = static_cast<double>(client.total_latency()) /
                         std::max<uint64_t>(1, client.completed_ops()) /
                         sim::kMillisecond;
  std::printf("completed %lu/5 requests, mean latency %.2f ms\n",
              static_cast<unsigned long>(client.completed_ops()), mean_ms);
  for (uint32_t i = 0; i < cluster.n(); ++i) {
    std::printf("  replica %u executed %lu requests\n", i,
                static_cast<unsigned long>(cluster.replica_executed(i)));
  }
  return mean_ms;
}

}  // namespace

int main() {
  const double pbft_ms = run_once(causal::Engine::kPbftEngine);
  std::printf("\n");
  const double async_ms = run_once(causal::Engine::kAsyncEngine);
  std::printf(
      "\nsame protocol, same app, same clients; the async engine pays\n"
      "threshold-coin exponentiations every agreement round (%.0fx slower\n"
      "here) — which is why the paper evaluates on PBFT, where the causal\n"
      "layers' own costs are visible.\n",
      async_ms / pbft_ms);
  return 0;
}
