// The paper's §I motivating scenario, staged end-to-end: a trading service
// where a Byzantine replica colludes with a client to front-run an honest
// client's order.
//
// Run 1 — plain PBFT: the request payload is cleartext, so the corrupt
//   replica reads the pending BUY and its colluding client buys first; the
//   price moves and the honest client pays more.
// Run 2 — CP1 (secure causal): the payload is a non-malleable commitment;
//   the adversary learns nothing it can act on and the honest client fills
//   at the unmanipulated price.
#include <cstdio>

#include "apps/trading.h"
#include "bft/client.h"
#include "bft/replica.h"
#include "causal/harness.h"

namespace {

using namespace scab;
using causal::Cluster;
using causal::ClusterOptions;
using causal::Protocol;

// Stage the race: the honest client's path to the primary is slow (its link
// is cut for a moment — in a real attack the Byzantine replica delays it),
// the colluding client reacts to what the corrupt replica observed.
uint64_t stage_attack(Protocol protocol) {
  ClusterOptions opts;
  opts.protocol = protocol;
  opts.bft = bft::BftConfig::for_f(1);
  opts.profile = sim::NetworkProfile::lan();
  opts.num_clients = 2;
  opts.service_factory = [] { return std::make_unique<apps::TradingService>(); };
  Cluster cluster(opts);

  const auto honest_order = apps::TradingService::buy("ACME", 100);

  // What can the corrupt replica see in the honest client's request?
  std::string observed;
  cluster.net().faults().set_tamper(
      [&](sim::NodeId from, sim::NodeId to, BytesView msg) -> std::optional<Bytes> {
        if (from == Cluster::client_id(0) && to == 3 && observed.empty()) {
          observed.assign(msg.begin(), msg.end());
        }
        return Bytes(msg.begin(), msg.end());
      });

  cluster.net().faults().cut(Cluster::client_id(0), 0);  // slow path to primary
  cluster.client(0).submit(honest_order);
  cluster.sim().run_until(cluster.sim().now() + 5 * sim::kMillisecond);

  // Does the observed wire data contain the order?  (Plain PBFT: yes.)
  const std::string needle = "ACME";
  const bool readable = observed.find(needle) != std::string::npos;
  std::printf("  corrupt replica can read the pending order: %s\n",
              readable ? "YES" : "no (commitment only)");

  if (readable) {
    // The colluding client front-runs with a copy of the order.
    auto fill = cluster.run_one(1, apps::TradingService::buy("ACME", 100));
    std::printf("  colluding client filled first: %s\n",
                fill ? to_string(*fill).c_str() : "(timeout)");
  }

  // The honest client's (delayed) order finally executes.
  cluster.net().faults().heal(Cluster::client_id(0), 0);
  cluster.sim().run_while(
      [&] { return cluster.client(0).completed_ops() >= 1; });
  std::printf("  honest client filled:          %s\n",
              to_string(cluster.client(0).last_result()).c_str());

  // Parse the honest fill price from "filled:100@<price>".
  const std::string result = to_string(cluster.client(0).last_result());
  return std::stoull(result.substr(result.find('@') + 1));
}

}  // namespace

int main() {
  using apps::TradingService;
  std::printf("initial ACME price: %lu cents\n\n",
              static_cast<unsigned long>(TradingService::kInitialPriceCents));

  std::printf("--- plain PBFT (no causality preservation) ---\n");
  const uint64_t pbft_price = stage_attack(Protocol::kPbft);

  std::printf("\n--- CP1 (secure causal atomic broadcast) ---\n");
  const uint64_t cp1_price = stage_attack(Protocol::kCp1);

  std::printf("\nhonest client paid %lu cents under PBFT, %lu under CP1\n",
              static_cast<unsigned long>(pbft_price),
              static_cast<unsigned long>(cp1_price));
  if (pbft_price > cp1_price) {
    std::printf("front-running succeeded against PBFT and failed against CP1.\n");
  }
  return pbft_price > cp1_price ? 0 : 1;
}
