// First-come-first-served name registration (the paper's second §I
// example) on CP2: requests are secret-shared, so no replica learns a name
// before its registration order is fixed — and the run demonstrates
// liveness under a Byzantine replica that serves corrupted shares.
#include <cstdio>

#include "apps/dns.h"
#include "bft/client.h"
#include "bft/replica.h"
#include "causal/harness.h"

int main() {
  using namespace scab;

  causal::ClusterOptions opts;
  opts.protocol = causal::Protocol::kCp2;  // ARSS1: commitment + secret shares
  opts.bft = bft::BftConfig::for_f(1);
  opts.profile = sim::NetworkProfile::lan();
  opts.num_clients = 3;
  opts.service_factory = [] { return std::make_unique<apps::DnsRegistry>(); };
  causal::Cluster cluster(opts);

  // One replica is Byzantine and contributes garbage shares during every
  // reveal; ARSS1's combination search routes around it.
  cluster.corrupt_replica_shares(2);
  std::printf("CP2 cluster up, replica 2 serves corrupted shares\n\n");

  const char* names[] = {"gold.example", "silver.example", "bronze.example"};
  for (uint32_t c = 0; c < 3; ++c) {
    auto r = cluster.run_one(c, apps::DnsRegistry::register_name(names[c]));
    std::printf("client %u registers %-16s -> %s\n", causal::Cluster::client_id(c) - 100,
                names[c], r ? to_string(*r).c_str() : "(timeout)");
  }

  // Second registration of a taken name fails deterministically.
  auto taken = cluster.run_one(1, apps::DnsRegistry::register_name("gold.example"));
  std::printf("client 1 re-registers gold.example -> %s\n",
              taken ? to_string(*taken).c_str() : "(timeout)");

  // Resolution works from any client and is consistent on every replica.
  auto who = cluster.run_one(2, apps::DnsRegistry::resolve("gold.example"));
  std::printf("resolve gold.example -> owner node %s\n",
              who ? to_string(*who).c_str() : "(timeout)");

  for (uint32_t i = 0; i < cluster.n(); ++i) {
    auto& dns = dynamic_cast<apps::DnsRegistry&>(cluster.service(i));
    std::printf("replica %u registry size: %zu\n", i, dns.registered_count());
  }
  return 0;
}
