// Scaling benchmark for the multicore crypto plane (DESIGN.md §12),
// CI-facing.
//
// The PR's claim is that the shared worker pool in rt::ThreadHost lets one
// replica spread TDH2 batch verification over real cores while the protocol
// state machine stays single-threaded.  This bench measures exactly that
// seam: M independent "envelopes" (each a tdh2_batch_verify_shares over k
// shares) are pushed through Host::submit() with pool sizes T in
// {1, 2, 4, 8}, and the wall-clock per sweep point yields a speedup curve
// against the T=1 baseline (same handoff path, no parallelism).
//
// Emits one JSON object on stdout (scripts/ci.sh redirects it to
// BENCH_parallel.json):
//
//   {
//     "figure": "parallel_crypto",
//     "group_bits": 1024, "n": 16, "t": 6,
//     "envelopes": 32, "shares_per_envelope": 16,
//     "hardware_concurrency": ...,
//     "runs": [ {"threads":1,"total_ms":...,"envelopes_per_sec":...,
//                "speedup":1.00}, ... {"threads":8,...} ],
//     "gate": {"enforced":true,"required_speedup":3.0,"measured_speedup":...},
//     "pass": true
//   }
//
// With an optional schema argument the binary validates its own record
// against the schema's "required_parallel" paths before exiting, so the CI
// artifact is known-good at the point of production.
//
// Gate: speedup(T=8) >= 3x over T=1, enforced ONLY when the machine
// actually has >= 8 hardware threads.  On smaller boxes the bench still
// runs (the pool must stay correct at any size) but exits 77 — the
// conventional "skipped" code scripts/ci.sh already understands.
// Usage: bench_parallel_crypto [path/to/metrics_schema.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "crypto/modgroup.h"
#include "host/host.h"
#include "obs/json.h"
#include "rt/runtime.h"
#include "threshenc/tdh2.h"

namespace {

using namespace scab;

constexpr std::size_t kEnvelopes = 32;
constexpr uint32_t kN = 16;  // shares per envelope = all n replicas' shares
constexpr uint32_t kT = 6;
constexpr double kRequiredSpeedup = 3.0;
constexpr host::NodeId kOwner = 1;

/// The fixed verification workload every sweep point replays.
struct Workload {
  crypto::ModGroup group = crypto::ModGroup::modp_1024();
  threshenc::Tdh2KeyMaterial keys;
  Bytes label;
  threshenc::Tdh2Ciphertext ct;
  std::vector<threshenc::Tdh2DecryptionShare> shares;

  Workload() {
    crypto::Drbg rng(to_bytes("parallel-crypto"));
    keys = threshenc::tdh2_keygen(group, kT, kN, rng);
    label = to_bytes("parallel-label");
    const Bytes msg = rng.generate(threshenc::kTdh2MessageSize);
    ct = threshenc::tdh2_encrypt(keys.pk, msg, label, rng);
    for (uint32_t i = 0; i < kN; ++i) {
      shares.push_back(*threshenc::tdh2_share_decrypt(keys.pk, keys.shares[i],
                                                      ct, label, rng));
    }
  }
};

/// Protocol-free owner endpoint: the pool contract only needs a bound node
/// whose executor receives the continuations.
struct Sink final : host::Node {
  void on_message(host::NodeId, BytesView) override {}
};

/// Wall-clock ms to drain kEnvelopes batch-verifications through a
/// `threads`-wide pool.  Returns a negative value on verification failure
/// or timeout (both are correctness bugs, not perf regressions).
double run_sweep_point(const Workload& w, std::size_t threads) {
  rt::ThreadHost host(nullptr, nullptr, threads);
  Sink sink;
  host.bind(kOwner, &sink);
  // shared_ptr state: PoolJob is a std::function, so everything the job
  // closes over must be copyable.
  auto done = std::make_shared<std::atomic<std::size_t>>(0);
  auto valid = std::make_shared<std::atomic<std::size_t>>(0);

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t e = 0; e < kEnvelopes; ++e) {
    host.submit(kOwner, [&w, e, done, valid]() -> std::function<void()> {
      crypto::Drbg rng(to_bytes("parallel-verify-" + std::to_string(e)));
      const auto verdict = threshenc::tdh2_batch_verify_shares(
          w.keys.pk, w.ct, w.label, w.shares, rng);
      const bool ok = verdict.all_valid();
      return [done, valid, ok] {
        if (ok) valid->fetch_add(1, std::memory_order_relaxed);
        done->fetch_add(1, std::memory_order_relaxed);
      };
    });
  }
  const auto deadline = start + std::chrono::seconds(120);
  while (done->load(std::memory_order_relaxed) < kEnvelopes) {
    if (std::chrono::steady_clock::now() > deadline) {
      host.stop();
      return -1.0;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  host.stop();
  return valid->load() == kEnvelopes ? ms : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Workload w;
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t sweep[] = {1, 2, 4, 8};

  // Best-of-2 per point: the pool is real threads on a shared machine, so
  // one scheduling hiccup should not fail the gate.
  double total_ms[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < 4; ++i) {
    for (int rep = 0; rep < 2; ++rep) {
      const double ms = run_sweep_point(w, sweep[i]);
      if (ms < 0) {
        std::fprintf(stderr,
                     "FAIL: sweep point threads=%zu failed verification or "
                     "timed out\n",
                     sweep[i]);
        return 1;
      }
      total_ms[i] = rep == 0 ? ms : std::min(total_ms[i], ms);
    }
  }

  const double base = total_ms[0];
  const double speedup8 = base / total_ms[3];
  const bool enforce = hw >= 8;
  const bool gate_ok = !enforce || speedup8 >= kRequiredSpeedup;

  std::string out;
  {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\n  \"figure\": \"parallel_crypto\",\n"
                  "  \"group_bits\": 1024, \"n\": %u, \"t\": %u,\n"
                  "  \"envelopes\": %zu, \"shares_per_envelope\": %u,\n"
                  "  \"hardware_concurrency\": %u,\n  \"runs\": [\n",
                  kN, kT, kEnvelopes, kN, hw);
    out += buf;
    for (std::size_t i = 0; i < 4; ++i) {
      std::snprintf(buf, sizeof(buf),
                    "    {\"threads\": %zu, \"total_ms\": %.3f, "
                    "\"envelopes_per_sec\": %.1f, \"speedup\": %.2f}%s\n",
                    sweep[i], total_ms[i],
                    static_cast<double>(kEnvelopes) / (total_ms[i] / 1e3),
                    base / total_ms[i], i + 1 < 4 ? "," : "");
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "  ],\n  \"gate\": {\"enforced\": %s, "
                  "\"required_speedup\": %.1f, \"measured_speedup\": %.2f},\n"
                  "  \"pass\": %s\n}\n",
                  enforce ? "true" : "false", kRequiredSpeedup, speedup8,
                  gate_ok ? "true" : "false");
    out += buf;
  }
  std::printf("%s", out.c_str());

  // Self-validate the record shape against the schema's required_parallel
  // paths, same contract bench_smoke applies to the other CI artifacts.
  if (argc >= 2) {
    std::ifstream schema_file(argv[1]);
    std::stringstream ss;
    ss << schema_file.rdbuf();
    const auto schema = obs::json::parse(ss.str());
    const auto doc = obs::json::parse(out);
    const auto* req = schema ? schema->get("required_parallel") : nullptr;
    if (!schema_file || !doc || !req || !req->is_array()) {
      std::fprintf(stderr,
                   "FAIL: schema %s missing/unparseable or record invalid\n",
                   argv[1]);
      return 1;
    }
    int missing = 0;
    for (const auto& p : req->as_array()) {
      if (!p.is_string()) continue;
      if (!obs::json::find_path(*doc, p.as_string())) {
        std::fprintf(stderr, "FAIL: record missing required path: %s\n",
                     p.as_string().c_str());
        ++missing;
      }
    }
    if (missing > 0) return 1;
  }

  if (!gate_ok) {
    std::fprintf(stderr,
                 "FAIL: speedup at 8 threads %.2fx < %.1fx (hw=%u)\n",
                 speedup8, kRequiredSpeedup, hw);
    return 1;
  }
  if (!enforce) {
    std::fprintf(stderr,
                 "SKIP: only %u hardware threads (<8); scaling gate not "
                 "enforced\n",
                 hw);
    return 77;
  }
  return 0;
}
