// Ablation — ARSS vs AVSS, reproducing the paper's §IV-C claim that the
// ARSS constructions are "as efficient as a regular secret sharing scheme,
// and several orders of magnitude faster than the most efficient AVSS for
// any reasonably large (practical) n".
//
// Compared per (f, n = 3f+1), sharing a 32-byte secret (AVSS shares a key;
// long payloads ride hybrid encryption either way):
//   * dealer cost (Share)
//   * per-server share acceptance cost (free for ARSS — the dealer is
//     trusted; ~2t^2 exponentiations for AVSS)
//   * reconstruction cost from t contributions
#include <chrono>

#include "bench/bench_util.h"
#include "secretshare/arss.h"
#include "secretshare/avss.h"

namespace {

using namespace scab;
using namespace scab::bench;
using namespace scab::secretshare;

template <typename Fn>
double us_of(int reps, Fn&& fn) {
  fn();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
             .count() /
         reps;
}

}  // namespace

int main() {
  crypto::Drbg rng(to_bytes("avss-ablation"));
  const crypto::ModGroup group = crypto::ModGroup::modp_512();
  const crypto::Commitment cs(crypto::Commitment::cgen(rng));
  const Bytes secret = rng.generate(32);

  print_header("Ablation — ARSS vs AVSS cost (us), 32-byte secret",
               "AVSS over the 512-bit group (CKLS-style bivariate "
               "commitments); verify = one server's share acceptance");
  print_row({"f", "n", "arss1-share", "arss1-rec", "arss2-share", "arss2-rec",
             "avss-deal", "avss-verify", "avss-rec"});

  for (uint32_t f = 1; f <= 4; ++f) {
    const uint32_t t = f + 1, n = 3 * f + 1;

    const double a1_share =
        us_of(20, [&] { arss1_share(secret, t, n, cs, rng); });
    auto a1 = arss1_share(secret, t, n, cs, rng);
    const double a1_rec = us_of(20, [&] {
      Arss1Reconstructor rec(cs, f, a1[0].commitment);
      for (const auto& s : a1) {
        if (rec.add(s)) break;
      }
    });

    const double a2_share = us_of(20, [&] { arss2_share(secret, f, n, rng); });
    auto a2 = arss2_share(secret, f, n, rng);
    const double a2_rec = us_of(20, [&] {
      Arss2Reconstructor rec(f, a2[0]);
      for (uint32_t i = 1; i < n; ++i) {
        if (rec.add(a2[i])) break;
      }
    });

    const crypto::Bignum avss_secret = crypto::random_below(group.q(), rng);
    const int reps = f <= 2 ? 5 : 2;
    const double deal =
        us_of(reps, [&] { avss_deal(group, avss_secret, t, n, rng); });
    auto d = avss_deal(group, avss_secret, t, n, rng);
    const double verify = us_of(
        reps, [&] { (void)avss_verify_share(group, d.commitment, d.shares[0]); });
    std::vector<AvssPoint> points;
    for (uint32_t i = 0; i < t; ++i) {
      points.push_back(avss_reveal_point(group, d.shares[i]));
    }
    const double rec = us_of(
        reps, [&] { (void)avss_reconstruct(group, d.commitment, points); });

    print_row({std::to_string(f), std::to_string(n), fmt_tput(a1_share),
               fmt_tput(a1_rec), fmt_tput(a2_share), fmt_tput(a2_rec),
               fmt_tput(deal), fmt_tput(verify), fmt_tput(rec)});
  }
  std::printf(
      "\nmessage complexity per sharing: ARSS needs n sends (trusted dealer);"
      "\nfull AVSS additionally runs an O(n^2) echo/ready agreement.\n");
  return 0;
}
