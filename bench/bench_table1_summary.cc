// Table I — qualitative comparison of the frameworks and instantiations.
// This is the paper's static comparison table; the properties are facts of
// the constructions in src/causal (cross-referenced in comments), printed
// here so the bench suite regenerates every table of the paper.
#include "bench/bench_util.h"

int main() {
  using scab::bench::print_header;
  using scab::bench::print_row;

  print_header("Table I — frameworks and instantiations",
               "ty: pk = public-key, sk = symmetric, its = information-"
               "theoretic; byz-clients / setup / batch as in the paper");
  print_row({"framework", "inst", "ty", "byz-clients", "setup", "batch",
             "generality"}, 14);
  // CP0: threshold cryptosystem; trusted dealer (Cluster's tdh2_keygen);
  // hybrid ciphertexts are per-request, batching amortizes nothing of the
  // threshold work.
  print_row({"BFT+ThreshEnc", "CP0", "pk", "yes", "dealer", "no",
             "number-theoretic assumptions only"}, 14);
  // CP1: NM-CAD is a salted hash (ROM), no setup beyond a public key;
  // openings ride the ordinary batch pipeline.
  print_row({"FairBFT+NMC", "CP1", "sk", "yes", "-", "yes",
             "any (adaptive) one-way function"}, 14);
  // CP2: commitment + any secret sharing; clients assumed crash-only.
  print_row({"BFT+ARSS1", "CP2", "sk", "no", "-", "yes",
             "any commitment + any SS"}, 14);
  // CP3: Shamir-specific, information-theoretically secure.
  print_row({"BFT+ARSS2", "CP3", "its", "no", "-", "yes",
             "Shamir SS only"}, 14);
  return 0;
}
