// Fig. 6 — peak throughput for f = 1, 2, 3 (LAN): sweep the client count
// per protocol and report the maximum observed.
//
// `--json` also writes the sweep to BENCH_fig6_peak_throughput.json;
// `--quick` restricts to the f=1 column and two client counts (the CI
// configuration — full sweeps are for experiment runs).
#include "bench/throughput_common.h"

int main(int argc, char** argv) {
  using namespace scab;
  using namespace scab::bench;
  using causal::Protocol;

  const bool json = parse_json_flag(argc, argv);
  const bool quick = parse_flag(argc, argv, "--quick");
  open_json_artifact(json, "fig6_peak_throughput");
  const uint32_t f_max = quick ? 1 : 3;
  const std::vector<uint32_t> client_counts =
      quick ? std::vector<uint32_t>{10, 40}
            : std::vector<uint32_t>{10, 40, 80, 120};
  if (!json) {
    print_header("Fig 6 — peak throughput (requests/s), LAN",
                 "max over client counts {10, 40, 80, 120}");
    std::vector<std::string> head{"protocol"};
    for (uint32_t f = 1; f <= f_max; ++f) head.push_back("f=" + std::to_string(f));
    print_row(head);
  }

  for (auto p : {Protocol::kPbft, Protocol::kCp0, Protocol::kCp1,
                 Protocol::kCp2, Protocol::kCp3}) {
    std::vector<std::string> row{causal::protocol_name(p)};
    for (uint32_t f = 1; f <= f_max; ++f) {
      const sim::CostModel costs =
          calibrate_costs(crypto::ModGroup::modp_1024(), f);
      double peak = 0;
      for (uint32_t clients : client_counts) {
        if (json) {
          // JSON mode emits every sweep point (the peak is derivable).
          std::string obs;
          const ThroughputResult r = sweep_point(
              p, f, sim::NetworkProfile::lan(), costs, clients, &obs);
          print_sweep_point_json("fig6_peak_throughput", p, f, clients, r, obs);
        } else {
          peak = std::max(
              peak,
              sweep_point(p, f, sim::NetworkProfile::lan(), costs, clients)
                  .ops_per_sec);
        }
      }
      row.push_back(fmt_tput(peak));
    }
    if (!json) print_row(row);
  }
  return 0;
}
