// Shared driver for the latency tables (II, III, IV): one row per protocol,
// one column per f, 4/0 microbenchmark under no contention.
#pragma once

#include <cstdio>

#include "bench/bench_util.h"

namespace scab::bench {

inline causal::ClusterOptions latency_options(causal::Protocol protocol,
                                              uint32_t f,
                                              sim::NetworkProfile profile,
                                              const sim::CostModel& costs) {
  causal::ClusterOptions o;
  o.protocol = protocol;
  o.bft = bft::BftConfig::for_f(f);
  o.profile = profile;
  o.costs = costs;
  o.seed = 42;
  // WAN latencies plus request queueing can exceed the default 2 s
  // fairness timeout and trigger spurious view changes; deployments tune
  // this to the environment (Castro-Liskov do the same).
  o.bft.request_timeout = 60 * sim::kSecond;
  o.bft.watchdog_period = 5 * sim::kSecond;
  if (protocol == causal::Protocol::kCp0) {
    o.group = crypto::ModGroup::modp_1024();  // the paper's conservative setting
  }
  return o;
}

/// Table IV's fault model: f randomly-chosen replicas contribute corrupted
/// decryption/secret shares on every request.  Note this is a *Byzantine
/// signer* fault — shares are authenticated end to end, so it cannot be
/// expressed by a network-level injector (a wire tamper is rejected by the
/// envelope MAC and becomes a drop); the corruption has to happen at the
/// share producer, which is what Cluster::corrupt_replica_shares does.
/// Returns the mean request latency in ms, or a negative value on timeout.
inline double run_corrupt_latency_ms(causal::ClusterOptions opts, uint32_t f,
                                     uint64_t requests,
                                     std::string* obs_fields = nullptr) {
  // The corrupted set is drawn by seed (the paper corrupts "randomly").
  opts.num_clients = 1;
  causal::Cluster cluster(opts);
  crypto::Drbg pick(to_bytes("table4-pick"));
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < cluster.n(); ++i) ids.push_back(i);
  for (uint32_t k = 0; k < f; ++k) {
    const uint32_t j = k + static_cast<uint32_t>(pick.uniform(ids.size() - k));
    std::swap(ids[k], ids[j]);
    cluster.corrupt_replica_shares(ids[k]);
  }
  auto& client = cluster.client(0);
  client.set_retry_timeout(60 * sim::kSecond);
  client.run_closed_loop(
      [](uint64_t i) { return Bytes(4096, static_cast<uint8_t>(i)); },
      requests);
  cluster.sim().run_while([&] {
    return client.completed_ops() >= requests ||
           cluster.sim().now() > 600 * sim::kSecond;
  });
  const double ms = client.completed_ops() >= requests
                        ? static_cast<double>(client.total_latency()) /
                              requests / sim::kMillisecond
                        : -1.0;
  if (obs_fields) *obs_fields = obs_json_fields(cluster);
  return ms;
}

/// Runs the full latency table and prints it.  `corrupt_f_replicas` enables
/// Table IV's fault model (f randomly-chosen replicas send bad shares).
inline void run_latency_table(const char* title, sim::NetworkProfile profile,
                              const std::vector<causal::Protocol>& protocols,
                              bool corrupt_f_replicas) {
  print_header(title,
               "4/0 microbenchmark, single closed-loop client, mean over the "
               "run; CP0 = real TDH2 over the 1024-bit MODP group");
  print_row({"protocol", "f=1", "f=2", "f=3"});

  for (auto protocol : protocols) {
    std::vector<std::string> row{causal::protocol_name(protocol)};
    for (uint32_t f = 1; f <= 3; ++f) {
      const sim::CostModel costs =
          calibrate_costs(crypto::ModGroup::modp_1024(), f);
      auto opts = latency_options(protocol, f, profile, costs);
      const uint64_t requests = protocol == causal::Protocol::kCp0 ? 8 : 30;

      const double ms = corrupt_f_replicas
                            ? run_corrupt_latency_ms(opts, f, requests)
                            : run_latency_ms(opts, 4096, requests);
      row.push_back(fmt_ms(ms));
    }
    print_row(row);
  }
}

}  // namespace scab::bench
