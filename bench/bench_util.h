// Shared infrastructure for the paper-reproduction benchmarks.
//
// Every benchmark binary follows the same recipe (DESIGN.md §3):
//   1. CALIBRATE — measure the real cryptographic implementations on this
//      machine (wall clock) and build a sim::CostModel from the results.
//   2. SIMULATE — run the full protocol stack on the deterministic
//      simulator with those costs charged into virtual time, under the
//      paper's LAN/WAN network profiles and workloads.
//   3. PRINT — emit the same rows/series the paper's table or figure shows.
#pragma once

#include <string>
#include <vector>

#include "bft/client.h"
#include "bft/replica.h"
#include "causal/harness.h"
#include "threshenc/tdh2.h"

namespace scab::bench {

/// Measures the real crypto implementations and prices the cost model.
/// `group` is the threshold-cryptosystem group (pass modp_1024() for the
/// paper configuration); TDH2 prices depend on f (combine interpolates f+1
/// shares).  Symmetric prices are measured once and cached across calls.
sim::CostModel calibrate_costs(const crypto::ModGroup& group, uint32_t f);

/// Per-operation TDH2 measurements in milliseconds (Fig. 3's series).
/// share_decrypt and combine are measured through the *preverified* entry
/// points: CP0 verifies every ciphertext once at admission and charges
/// kTdh2VerifyCt for it there, so pricing the reveal-pipeline ops with a
/// second (and third) proof check would double-bill the virtual clock.
struct ThreshEncProfile {
  double encrypt_ms = 0;
  double verify_ciphertext_ms = 0;
  double share_decrypt_ms = 0;
  double verify_share_ms = 0;
  // Randomized batch verification (DESIGN.md §4.3) at two batch sizes;
  // calibrate_costs fits kTdh2BatchVerifyShare's (fixed, per-share) price
  // from the k=4 and k=16 points.
  double batch_verify4_ms = 0;
  double batch_verify16_ms = 0;
  double combine_ms = 0;
};
ThreshEncProfile profile_threshenc(const crypto::ModGroup& group, uint32_t f,
                                   int reps = 5);

/// Runs a single-client closed loop of `requests` operations of
/// `request_bytes` each and returns the mean latency in milliseconds
/// (the paper's "latency under no contention").  Returns a negative value
/// if the run did not finish within the virtual deadline.
///
/// If `obs_fields` is non-null it receives the run's observability export:
/// two already-serialised JSON members, `"trace":{...},"metrics":{...}`
/// (no surrounding braces), ready to splice into a caller-assembled
/// object.  The trace member is the tracer's per-phase breakdown, whose
/// segment means telescope to the end-to-end mean (obs/trace.h); the
/// metrics member is the cluster-wide merged registry.
double run_latency_ms(causal::ClusterOptions opts, std::size_t request_bytes,
                      uint64_t requests,
                      sim::SimTime deadline = 600 * sim::kSecond,
                      std::string* obs_fields = nullptr);

struct ThroughputResult {
  double ops_per_sec = 0;
  double mean_latency_ms = 0;
  /// Exact median over the per-operation latencies completed inside the
  /// measurement window (not a histogram-bucket estimate) — the batching
  /// acceptance bound "peak throughput at equal median latency" needs the
  /// real order statistic.
  double median_latency_ms = 0;
  uint64_t measured_ops = 0;
};

/// Runs `clients` closed-loop clients under contention and measures
/// steady-state throughput: a warmup of `warmup_ops` completions, then
/// `measure_ops` completions (both totals across clients).
/// `obs_fields`: as in run_latency_ms.
ThroughputResult run_throughput(causal::ClusterOptions opts, uint32_t clients,
                                std::size_t request_bytes, uint64_t warmup_ops,
                                uint64_t measure_ops,
                                sim::SimTime deadline = 3600 * sim::kSecond,
                                std::string* obs_fields = nullptr);

/// The observability members for a finished cluster (used by the helpers
/// above and directly by benches that drive their own run loop).
std::string obs_json_fields(causal::Cluster& cluster);

/// --json artifact tee.  When `enabled`, every subsequent emit_json_line()
/// is mirrored to `BENCH_<name>.json` in the working directory (the repo
/// root under scripts/ci.sh), so JSON runs leave an archivable trajectory
/// artifact in addition to the stdout stream.  Opening a new artifact
/// closes the previous one; disabled mode closes without opening.
void open_json_artifact(bool enabled, const std::string& name);

/// Prints one complete JSON record (no trailing newline in `line`) to
/// stdout and, when an artifact is open, appends it there too.
void emit_json_line(const std::string& line);

/// Fixed-width table printing.
void print_header(const std::string& title, const std::string& note);
void print_row(const std::vector<std::string>& cells, int width = 12);
std::string fmt_ms(double ms);
std::string fmt_tput(double ops);

}  // namespace scab::bench
