// Table III — latency in ms, WAN setting (1 MB/s, 120 ms), f = 1..3.
#include "bench/latency_common.h"

int main() {
  using namespace scab;
  bench::run_latency_table(
      "Table III — latency in ms (WAN)", sim::NetworkProfile::wan(),
      {causal::Protocol::kPbft, causal::Protocol::kCp0, causal::Protocol::kCp1,
       causal::Protocol::kCp2, causal::Protocol::kCp3},
      /*corrupt_f_replicas=*/false);
  return 0;
}
