// Fig. 3 — latency of each threshold-encryption operation as the number of
// replicas varies (f = 1, 2, 3; n = 3f + 1), real TDH2 over the 1024-bit
// MODP group.  Implemented with google-benchmark: each operation is a
// microbenchmark parameterized by f.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "threshenc/hybrid.h"

namespace {

using namespace scab;
using namespace scab::threshenc;

struct Fixture {
  crypto::Drbg rng{to_bytes("fig3")};
  crypto::ModGroup group = crypto::ModGroup::modp_1024();
  Tdh2KeyMaterial keys;
  Bytes msg;
  Bytes label = to_bytes("fig3-label");
  Tdh2Ciphertext ct;
  std::vector<Tdh2DecryptionShare> shares;

  explicit Fixture(uint32_t f) {
    keys = tdh2_keygen(group, f + 1, 3 * f + 1, rng);
    msg = rng.generate(kTdh2MessageSize);
    ct = tdh2_encrypt(keys.pk, msg, label, rng);
    for (uint32_t i = 0; i <= f; ++i) {
      shares.push_back(
          *tdh2_share_decrypt(keys.pk, keys.shares[i], ct, label, rng));
    }
  }
};

Fixture& fixture_for(uint32_t f) {
  static Fixture f1(1), f2(2), f3(3);
  switch (f) {
    case 1:
      return f1;
    case 2:
      return f2;
    default:
      return f3;
  }
}

void BM_Encrypt(benchmark::State& state) {
  Fixture& fx = fixture_for(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tdh2_encrypt(fx.keys.pk, fx.msg, fx.label, fx.rng));
  }
}

void BM_VerifyCiphertext(benchmark::State& state) {
  Fixture& fx = fixture_for(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tdh2_verify_ciphertext(fx.keys.pk, fx.ct, fx.label));
  }
}

// Share-decrypt and combine run through the preverified entry points: that
// is what the CP0 reveal pipeline pays per operation (the ciphertext proof
// check is its own series, BM_VerifyCiphertext, paid once at admission).
// The *Checked variants keep the old all-in-one costs visible.
void BM_ShareDecrypt(benchmark::State& state) {
  Fixture& fx = fixture_for(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tdh2_share_decrypt_preverified(
        fx.keys.pk, fx.keys.shares[0], fx.ct, fx.rng));
  }
}

void BM_ShareDecryptChecked(benchmark::State& state) {
  Fixture& fx = fixture_for(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tdh2_share_decrypt(fx.keys.pk, fx.keys.shares[0],
                                                fx.ct, fx.label, fx.rng));
  }
}

void BM_VerifyShare(benchmark::State& state) {
  Fixture& fx = fixture_for(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tdh2_verify_share(fx.keys.pk, fx.ct, fx.label, fx.shares[0]));
  }
}

// Randomized batch verification of 16 shares (shares cycled when n < 16):
// one merged equation whose per-share cost is ~the total / 16.  Compare
// against BM_VerifyShare to read off the amortization factor.
void BM_BatchVerifyShare16(benchmark::State& state) {
  Fixture& fx = fixture_for(static_cast<uint32_t>(state.range(0)));
  std::vector<Tdh2DecryptionShare> batch;
  for (std::size_t i = 0; i < 16; ++i)
    batch.push_back(fx.shares[i % fx.shares.size()]);
  crypto::Drbg rng(to_bytes("fig3-batch"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tdh2_batch_verify_shares(fx.keys.pk, fx.ct, fx.label, batch, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 16);
}

void BM_Combine(benchmark::State& state) {
  Fixture& fx = fixture_for(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tdh2_combine_preverified(fx.keys.pk, fx.ct, fx.shares));
  }
}

void BM_CombineChecked(benchmark::State& state) {
  Fixture& fx = fixture_for(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tdh2_combine(fx.keys.pk, fx.ct, fx.label, fx.shares));
  }
}

#define FIG3_ARGS \
  ->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond)->MinTime(0.2)

BENCHMARK(BM_Encrypt) FIG3_ARGS;
BENCHMARK(BM_VerifyCiphertext) FIG3_ARGS;
BENCHMARK(BM_ShareDecrypt) FIG3_ARGS;
BENCHMARK(BM_ShareDecryptChecked) FIG3_ARGS;
BENCHMARK(BM_VerifyShare) FIG3_ARGS;
BENCHMARK(BM_BatchVerifyShare16) FIG3_ARGS;
BENCHMARK(BM_Combine) FIG3_ARGS;
BENCHMARK(BM_CombineChecked) FIG3_ARGS;

}  // namespace

int main(int argc, char** argv) {
  scab::bench::print_header(
      "Fig 3 — threshold-encryption per-operation latency (ms) vs f",
      "arg = f (n = 3f+1); real TDH2 over the 1024-bit MODP group");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
