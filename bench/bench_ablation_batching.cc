// Ablation — batching (a design choice the paper calls out: "All the
// protocols implement batching of concurrent requests to reduce
// cryptographic and communication overheads").  Throughput of PBFT and CP2
// at 40 clients as the maximum batch size varies.
#include "bench/throughput_common.h"

int main() {
  using namespace scab;
  using namespace scab::bench;

  const sim::CostModel costs = calibrate_costs(crypto::ModGroup::modp_1024(), 1);
  print_header("Ablation — throughput vs max batch size (LAN, f=1, 40 clients)",
               "requests/s");
  print_row({"max_batch", "PBFT", "CP2"});

  for (uint32_t batch : {1u, 4u, 16u, 64u}) {
    std::vector<std::string> row{std::to_string(batch)};
    for (auto p : {causal::Protocol::kPbft, causal::Protocol::kCp2}) {
      auto opts = throughput_options(p, 1, sim::NetworkProfile::lan(), costs);
      opts.bft.max_batch = batch;
      row.push_back(fmt_tput(run_throughput(opts, 40, 4096, 200, 800).ops_per_sec));
    }
    print_row(row);
  }
  return 0;
}
