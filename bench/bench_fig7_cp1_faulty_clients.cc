// Fig. 7 — CP1 throughput over time when clients turn faulty (LAN).
//
// Timeline (per the paper's experiment): clients run normally; at t_fail
// they stop sending witnesses (they keep scheduling — tentative requests
// pile up and execution throughput drops to zero); the primary's CLEANUP
// aborts the expired tentatives once the cleanup cycle elapses; the clients
// then recover and throughput resumes.  The run is reported as a time
// series of executed requests per second, for 5 and for 10 clients; the
// cleanup cycle scales with the client count, so the dead period is longer
// with 10 clients, exactly as in the paper.
#include <cstdio>

#include "bench/bench_util.h"

#include "bft/client.h"
#include "causal/cp1.h"

namespace {

using namespace scab;
using namespace scab::bench;
using sim::kMillisecond;
using sim::kSecond;

void run_timeline(uint32_t clients, bool json) {
  const sim::CostModel costs = calibrate_costs(crypto::ModGroup::modp_1024(), 1);
  causal::ClusterOptions opts;
  opts.protocol = causal::Protocol::kCp1;
  opts.bft = bft::BftConfig::for_f(1);
  opts.profile = sim::NetworkProfile::lan();
  opts.costs = costs;
  opts.seed = 42;
  opts.num_clients = clients;
  // ~10x the per-latency delivery count, as in the paper's conservative
  // setting ("10 times average latency", measured in scheduled requests).
  opts.cp1.cleanup_cycle = 30ull * clients;

  causal::Cluster cluster(opts);
  for (uint32_t c = 0; c < clients; ++c) {
    cluster.client(c).set_retry_timeout(60 * kSecond);
    cluster.client(c).run_closed_loop(
        [](uint64_t i) { return Bytes(4096, static_cast<uint8_t>(i)); }, 0);
  }

  auto executed = [&] {
    return dynamic_cast<causal::EchoService&>(cluster.service(0)).executed();
  };
  auto set_faulty = [&](bool on) {
    for (uint32_t c = 0; c < clients; ++c) {
      dynamic_cast<causal::Cp1ClientProtocol&>(cluster.client_protocol(c))
          .set_schedule_only(on);
    }
  };

  const sim::SimTime bucket = 50 * kMillisecond;
  const sim::SimTime t_fail = 300 * kMillisecond;
  const sim::SimTime t_recover = 800 * kMillisecond;  // transient failure
  const sim::SimTime t_end = 1500 * kMillisecond;

  if (!json) {
    print_header(("Fig 7 — CP1 throughput timeline, " +
                  std::to_string(clients) + " clients (LAN, f=1)")
                     .c_str(),
                 "clients turn faulty (schedule without reveal) at t=300 ms; "
                 "recovery when the cleanup completes");
    print_row({"t_ms", "executed/s", "tentative", "cleaned"});
  }

  std::string timeline;  // JSON array members, built as the run progresses
  bool failed = false;
  bool recovered = false;
  uint64_t prev_exec = 0;
  for (sim::SimTime t = bucket; t <= t_end; t += bucket) {
    if (!failed && t > t_fail) {
      set_faulty(true);
      failed = true;
    }
    auto& app = dynamic_cast<causal::Cp1ReplicaApp&>(cluster.replica_app(0));
    if (failed && !recovered && t > t_recover) {
      set_faulty(false);  // the transient failure ends
      recovered = true;
    }
    cluster.sim().run_until(t);
    const uint64_t now_exec = executed();
    const double tput = static_cast<double>(now_exec - prev_exec) * kSecond /
                        static_cast<double>(bucket);
    prev_exec = now_exec;
    if (json) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"t_ms\":%llu,\"executed_per_s\":%.1f,"
                    "\"tentative\":%llu,\"cleaned\":%llu}",
                    timeline.empty() ? "" : ",",
                    static_cast<unsigned long long>(t / kMillisecond), tput,
                    static_cast<unsigned long long>(app.tentative_count()),
                    static_cast<unsigned long long>(app.cleaned_count()));
      timeline += buf;
    } else {
      print_row({std::to_string(t / kMillisecond), fmt_tput(tput),
                 std::to_string(app.tentative_count()),
                 std::to_string(app.cleaned_count())});
    }
  }
  if (json) {
    std::printf(
        "{\"figure\":\"fig7_cp1_faulty_clients\",\"clients\":%u,"
        "\"timeline\":[%s],%s}\n",
        clients, timeline.c_str(), obs_json_fields(cluster).c_str());
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") json = true;
  }
  run_timeline(5, json);
  run_timeline(10, json);
  return 0;
}
