// Microbenchmark for the TDH2 batch-verification hot path, CI-facing.
//
// Emits one JSON object on stdout (scripts/ci.sh redirects it to
// BENCH_crypto.json and bench_smoke validates the shape):
//
//   {
//     "group_bits": 1024, "n": 16, "t": 6,
//     "single_verify_share_ns": ...,
//     "batch": [ {"k":4,"total_ns":...,"per_share_ns":...,"speedup":...},
//                {"k":16,...}, {"k":64,...} ],
//     "byzantine_detection": {"k":32,"bad_index":...,"detected":true,
//                             "attributed":true,"bisection_splits":...},
//     "pass": true
//   }
//
// The binary exits non-zero if the amortized per-share cost at k=16 is not
// at least 4x cheaper than the single-share path (the PR's acceptance
// floor), so CI catches a regression in the batch path, not just a crash.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "crypto/modgroup.h"
#include "threshenc/tdh2.h"

namespace {

using namespace scab;

/// Minimum wall-clock ns of fn() over `batches` batches of `reps` runs.
template <typename Fn>
double measure_ns(int reps, Fn&& fn, int batches = 3) {
  fn();  // untimed warmup
  double best = 1e18;
  for (int b = 0; b < batches; ++b) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) fn();
    const auto end = std::chrono::steady_clock::now();
    best = std::min(
        best,
        std::chrono::duration<double, std::nano>(end - start).count() / reps);
  }
  return best;
}

}  // namespace

int main() {
  const crypto::ModGroup group = crypto::ModGroup::modp_1024();
  crypto::Drbg rng(to_bytes("micro-crypto"));
  const uint32_t n = 16, t = 6;
  const auto keys = threshenc::tdh2_keygen(group, t, n, rng);
  const Bytes label = to_bytes("micro-label");
  const Bytes msg = rng.generate(threshenc::kTdh2MessageSize);
  const auto ct = threshenc::tdh2_encrypt(keys.pk, msg, label, rng);

  std::vector<threshenc::Tdh2DecryptionShare> shares;
  for (uint32_t i = 0; i < n; ++i) {
    shares.push_back(
        *threshenc::tdh2_share_decrypt(keys.pk, keys.shares[i], ct, label, rng));
  }

  const double single_ns = measure_ns(20, [&] {
    (void)threshenc::tdh2_verify_share(keys.pk, ct, label, shares[0]);
  });

  auto batch_of = [&](std::size_t k) {
    std::vector<threshenc::Tdh2DecryptionShare> b;
    for (std::size_t i = 0; i < k; ++i) b.push_back(shares[i % n]);
    return b;
  };

  std::printf("{\n  \"group_bits\": 1024, \"n\": %u, \"t\": %u,\n", n, t);
  std::printf("  \"single_verify_share_ns\": %.0f,\n", single_ns);
  std::printf("  \"batch\": [\n");
  double per_share16 = single_ns;
  const std::size_t ks[] = {4, 16, 64};
  for (std::size_t i = 0; i < 3; ++i) {
    const std::size_t k = ks[i];
    const auto batch = batch_of(k);
    crypto::Drbg brng(to_bytes("micro-batch"));
    const double total_ns = measure_ns(k >= 64 ? 5 : 10, [&] {
      (void)threshenc::tdh2_batch_verify_shares(keys.pk, ct, label, batch,
                                                brng);
    });
    const double per_share = total_ns / static_cast<double>(k);
    if (k == 16) per_share16 = per_share;
    std::printf(
        "    {\"k\": %zu, \"total_ns\": %.0f, \"per_share_ns\": %.0f, "
        "\"speedup\": %.2f}%s\n",
        k, total_ns, per_share, single_ns / per_share, i + 1 < 3 ? "," : "");
  }
  std::printf("  ],\n");

  // Byzantine detection: one corrupted share hidden in a batch of 32 must be
  // rejected, attributed to exactly its slot, and reached via bisection.
  auto bad_batch = batch_of(32);
  const std::size_t bad_index = 13;
  bad_batch[bad_index].f_i =
      (bad_batch[bad_index].f_i + crypto::Bignum(1)) % group.q();
  crypto::Drbg drng(to_bytes("micro-detect"));
  const auto verdict = threshenc::tdh2_batch_verify_shares(keys.pk, ct, label,
                                                           bad_batch, drng);
  bool attributed = !verdict.valid[bad_index];
  for (std::size_t i = 0; i < verdict.valid.size(); ++i) {
    if (i != bad_index && !verdict.valid[i]) attributed = false;
  }
  const bool detected = !verdict.all_valid();
  std::printf(
      "  \"byzantine_detection\": {\"k\": 32, \"bad_index\": %zu, "
      "\"detected\": %s, \"attributed\": %s, \"bisection_splits\": %u},\n",
      bad_index, detected ? "true" : "false", attributed ? "true" : "false",
      verdict.bisection_splits);

  const bool pass = per_share16 * 4.0 <= single_ns && detected && attributed;
  std::printf("  \"pass\": %s\n}\n", pass ? "true" : "false");
  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: per_share(k=16)=%.0fns single=%.0fns (need >=4x), "
                 "detected=%d attributed=%d\n",
                 per_share16, single_ns, detected, attributed);
    return 1;
  }
  return 0;
}
