// Shared driver for the throughput figures (4, 5, 6): closed-loop clients
// under contention, 4/0 microbenchmark, calibrated costs.  CP0 runs under
// the calibrated-cost oracle (DESIGN.md §3) so that sweeping to 100 clients
// does not require executing hundreds of thousands of real 1024-bit
// exponentiations.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string_view>

#include "bench/bench_util.h"

namespace scab::bench {

inline causal::ClusterOptions throughput_options(causal::Protocol protocol,
                                                 uint32_t f,
                                                 sim::NetworkProfile profile,
                                                 const sim::CostModel& costs) {
  causal::ClusterOptions o;
  o.protocol = protocol;
  o.bft = bft::BftConfig::for_f(f);
  o.profile = profile;
  o.costs = costs;
  o.seed = 42;
  // WAN latencies plus request queueing can exceed the default 2 s
  // fairness timeout and trigger spurious view changes; deployments tune
  // this to the environment (Castro-Liskov do the same).
  o.bft.request_timeout = 60 * sim::kSecond;
  o.bft.watchdog_period = 5 * sim::kSecond;
  o.cp0_modeled = true;  // calibrated-cost oracle (costs still charged)
  return o;
}

inline ThroughputResult sweep_point(causal::Protocol protocol, uint32_t f,
                                    sim::NetworkProfile profile,
                                    const sim::CostModel& costs,
                                    uint32_t clients,
                                    std::string* obs_fields = nullptr) {
  auto opts = throughput_options(protocol, f, profile, costs);
  // Scale the sample with the client count, bounded to keep the suite fast.
  const uint64_t warmup = std::min<uint64_t>(10ull * clients, 200);
  uint64_t measure = std::min<uint64_t>(40ull * clients, 1000);
  if (protocol == causal::Protocol::kCp0) {
    measure = std::min<uint64_t>(measure, 400);  // CP0 is ~100x slower
  }
  return run_throughput(opts, clients, 4096, warmup, measure,
                        3600 * sim::kSecond, obs_fields);
}

/// One sweep point as a JSON-lines record: headline numbers plus the
/// observability export ("trace" per-phase breakdown + merged "metrics").
/// Routed through emit_json_line, so records also land in the BENCH_*.json
/// artifact when one is open (open_json_artifact).
inline void print_sweep_point_json(const char* figure, causal::Protocol p,
                                   uint32_t f, uint32_t clients,
                                   const ThroughputResult& r,
                                   const std::string& obs_fields) {
  char head[320];
  std::snprintf(
      head, sizeof(head),
      "{\"figure\":\"%s\",\"protocol\":\"%s\",\"f\":%u,\"clients\":%u,"
      "\"ops_per_sec\":%.3f,\"mean_latency_ms\":%.4f,"
      "\"median_latency_ms\":%.4f,\"measured_ops\":%llu,",
      figure, causal::protocol_name(p), f, clients, r.ops_per_sec,
      r.mean_latency_ms, r.median_latency_ms,
      static_cast<unsigned long long>(r.measured_ops));
  emit_json_line(std::string(head) + obs_fields + "}");
}

inline void run_throughput_figure(const char* title, const char* figure_id,
                                  sim::NetworkProfile profile, uint32_t f,
                                  const std::vector<uint32_t>& client_counts,
                                  bool json = false) {
  if (!json) {
    print_header(title,
                 "4/0 microbenchmark, closed-loop clients, requests/s; CP0 "
                 "uses the calibrated-cost threshold oracle");
    std::vector<std::string> head{"clients"};
    for (auto p : {causal::Protocol::kPbft, causal::Protocol::kCp0,
                   causal::Protocol::kCp1, causal::Protocol::kCp2,
                   causal::Protocol::kCp3}) {
      head.push_back(causal::protocol_name(p));
    }
    print_row(head);
  }

  const sim::CostModel costs =
      calibrate_costs(crypto::ModGroup::modp_1024(), f);
  for (uint32_t clients : client_counts) {
    std::vector<std::string> row{std::to_string(clients)};
    for (auto p : {causal::Protocol::kPbft, causal::Protocol::kCp0,
                   causal::Protocol::kCp1, causal::Protocol::kCp2,
                   causal::Protocol::kCp3}) {
      if (json) {
        std::string obs;
        const ThroughputResult r =
            sweep_point(p, f, profile, costs, clients, &obs);
        print_sweep_point_json(figure_id, p, f, clients, r, obs);
      } else {
        row.push_back(
            fmt_tput(sweep_point(p, f, profile, costs, clients).ops_per_sec));
      }
    }
    if (!json) print_row(row);
  }
}

/// True when `flag` appears among the arguments.
inline bool parse_flag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == flag) return true;
  }
  return false;
}

/// Shared `--json` flag handling for the figure benches.
inline bool parse_json_flag(int argc, char** argv) {
  return parse_flag(argc, argv, "--json");
}

}  // namespace scab::bench
