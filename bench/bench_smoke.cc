// CI smoke check for the observability pipeline: run a tiny LAN
// throughput configuration, emit one bench JSON record, then validate it
// with the in-tree JSON reader:
//   1. every path listed in bench/metrics_schema.json "required" exists;
//   2. the tracer's per-phase means sum to the end-to-end mean within 5%
//      (the figure benches' acceptance bound; the tracer guarantees exact
//      telescoping, so a violation means a serialisation regression);
//   3. the run made progress (completed spans, measured operations);
//   4. a seeded chaos run (sim, CP2, a schedule that contains a
//      crash/restart pair) passes its safety/secrecy/liveness verdict and
//      emits a record whose recovery/chaos metrics satisfy the schema's
//      "required_chaos" paths;
//   5. (optional second argument) a BENCH_crypto.json produced by
//      bench_micro_crypto parses and carries the expected keys, so the CI
//      artifact is known-good before it is archived.
// Usage: bench_smoke <path/to/metrics_schema.json> [BENCH_crypto.json]
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench/throughput_common.h"
#include "chaos/chaos.h"
#include "obs/json.h"

int main(int argc, char** argv) {
  using namespace scab;
  using namespace scab::bench;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <metrics_schema.json>\n", argv[0]);
    return 2;
  }

  causal::ClusterOptions opts;
  opts.protocol = causal::Protocol::kCp0;
  opts.cp0_modeled = true;  // oracle backend: no real exponentiations
  opts.bft = bft::BftConfig::for_f(1);
  opts.profile = sim::NetworkProfile::lan();
  opts.costs = sim::CostModel::zero();  // virtual time from the network only
  opts.seed = 7;

  std::string obs;
  const ThroughputResult r =
      run_throughput(opts, /*clients=*/2, /*request_bytes=*/256,
                     /*warmup_ops=*/20, /*measure_ops=*/60, 60 * sim::kSecond,
                     &obs);
  char head[256];
  std::snprintf(head, sizeof(head),
                "{\"figure\":\"bench_smoke\",\"protocol\":\"CP0\","
                "\"clients\":2,\"ops_per_sec\":%.3f,\"mean_latency_ms\":%.4f,"
                "\"measured_ops\":%llu,",
                r.ops_per_sec, r.mean_latency_ms,
                static_cast<unsigned long long>(r.measured_ops));
  const std::string line = std::string(head) + obs + "}";
  std::printf("%s\n", line.c_str());

  int failures = 0;
  auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "bench_smoke: FAIL: %s\n", what.c_str());
    ++failures;
  };

  const auto doc = obs::json::parse(line);
  if (!doc) {
    fail("emitted JSON does not parse");
    return 1;
  }

  std::ifstream schema_file(argv[1]);
  if (!schema_file) {
    fail(std::string("cannot open schema ") + argv[1]);
    return 1;
  }
  std::stringstream ss;
  ss << schema_file.rdbuf();
  const auto schema = obs::json::parse(ss.str());
  if (!schema || !schema->get("required") ||
      !schema->get("required")->is_array()) {
    fail("schema does not parse or has no \"required\" array");
    return 1;
  }
  for (const auto& p : schema->get("required")->as_array()) {
    if (!p.is_string()) continue;
    if (!obs::json::find_path(*doc, p.as_string())) {
      fail("missing required path: " + p.as_string());
    }
  }

  // Phase means must telescope to the end-to-end mean (5% bound).
  const auto* e2e = obs::json::find_path(*doc, "trace/end_to_end_ms");
  const auto* phases = obs::json::find_path(*doc, "trace/phases");
  const auto* completed = obs::json::find_path(*doc, "trace/completed");
  if (!e2e || !phases || !phases->is_array() || !completed) {
    fail("trace breakdown missing");
  } else {
    double sum = 0;
    for (const auto& ph : phases->as_array()) {
      const auto* mean = ph.get("mean_ms");
      if (mean) sum += mean->as_number();
    }
    const double ref = e2e->as_number();
    if (ref <= 0 || completed->as_number() <= 0) {
      fail("no completed spans traced");
    } else if (std::fabs(sum - ref) > 0.05 * ref) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "phase means sum %.4f ms vs end-to-end %.4f ms (>5%%)",
                    sum, ref);
      fail(buf);
    }
  }

  if (r.measured_ops == 0) fail("no operations measured");

  // Pipeline smoke: the same tiny CP0 configuration with client-side
  // batching (4 payloads per amortized TDH2 envelope) and 2 in-flight
  // slots per client, validated against the schema's "required_pipeline"
  // paths — the record shape bench_peak_pipeline's sweep points share.
  {
    causal::ClusterOptions popts = opts;
    popts.client_batch = 4;
    popts.client_inflight = 2;
    std::string pobs;
    const ThroughputResult pr =
        run_throughput(popts, /*clients=*/2, /*request_bytes=*/256,
                       /*warmup_ops=*/16, /*measure_ops=*/64,
                       60 * sim::kSecond, &pobs);
    char phead[320];
    std::snprintf(phead, sizeof(phead),
                  "{\"figure\":\"pipeline_smoke\",\"protocol\":\"CP0\","
                  "\"clients\":2,\"batch\":4,\"inflight\":2,"
                  "\"ops_per_sec\":%.3f,\"mean_latency_ms\":%.4f,"
                  "\"median_latency_ms\":%.4f,\"measured_ops\":%llu,",
                  pr.ops_per_sec, pr.mean_latency_ms, pr.median_latency_ms,
                  static_cast<unsigned long long>(pr.measured_ops));
    const std::string pline = std::string(phead) + pobs + "}";
    std::printf("%s\n", pline.c_str());
    if (pr.measured_ops == 0) fail("pipeline smoke measured no operations");
    if (pr.median_latency_ms <= 0) {
      fail("pipeline smoke has no median latency");
    }
    const auto pdoc = obs::json::parse(pline);
    if (!pdoc) {
      fail("pipeline record does not parse as JSON");
    } else if (const auto* req = schema->get("required_pipeline");
               req && req->is_array()) {
      for (const auto& p : req->as_array()) {
        if (!p.is_string()) continue;
        if (!obs::json::find_path(*pdoc, p.as_string())) {
          fail("pipeline record missing required path: " + p.as_string());
        }
      }
      // The batched run must actually batch: the envelope-size histogram
      // has samples and its maximum matches the configured aggregation.
      const auto* bmax =
          obs::json::find_path(*pdoc, "metrics/histograms/cp0.batch_size/max");
      if (bmax && bmax->as_number() < 4) {
        fail("pipeline smoke never produced a full 4-payload envelope");
      }
    } else {
      fail("schema has no \"required_pipeline\" array");
    }
  }

  // Chaos smoke: the first seed whose schedule includes a crash (so the
  // record exercises the crash/restart path), run on the simulator.  The
  // scan is deterministic, so CI always validates the same schedule.
  {
    chaos::ChaosOptions copt;
    copt.protocol = causal::Protocol::kCp2;
    uint64_t chaos_seed = 0;
    for (uint64_t s = 1; s <= 64 && chaos_seed == 0; ++s) {
      for (const auto& ev : chaos::generate_schedule(s, copt)) {
        if (ev.kind == chaos::FaultKind::kCrash) {
          chaos_seed = s;
          break;
        }
      }
    }
    if (chaos_seed == 0) {
      fail("no chaos seed in 1..64 produced a crash event");
    } else {
      const chaos::ChaosReport cr = chaos::run_chaos(chaos_seed, copt);
      char chead[256];
      std::snprintf(chead, sizeof(chead),
                    "{\"figure\":\"chaos_smoke\",\"protocol\":\"CP2\","
                    "\"seed\":%llu,\"faults_injected\":%llu,"
                    "\"completed_ops\":%llu,\"expected_ops\":%llu,"
                    "\"metrics\":",
                    static_cast<unsigned long long>(chaos_seed),
                    static_cast<unsigned long long>(cr.faults_injected),
                    static_cast<unsigned long long>(cr.completed_ops),
                    static_cast<unsigned long long>(cr.expected_ops));
      const std::string cline =
          std::string(chead) + cr.metrics_json + "}";
      std::printf("%s\n", cline.c_str());
      if (!cr.ok()) fail("chaos run violated an invariant: " + cr.violation);
      const auto cdoc = obs::json::parse(cline);
      if (!cdoc) {
        fail("chaos record does not parse as JSON");
      } else if (const auto* req = schema->get("required_chaos");
                 req && req->is_array()) {
        for (const auto& p : req->as_array()) {
          if (!p.is_string()) continue;
          if (!obs::json::find_path(*cdoc, p.as_string())) {
            fail("chaos record missing required path: " + p.as_string());
          }
        }
      } else {
        fail("schema has no \"required_chaos\" array");
      }
    }
  }

  if (argc >= 3) {
    std::ifstream crypto_file(argv[2]);
    if (!crypto_file) {
      fail(std::string("cannot open crypto bench output ") + argv[2]);
    } else {
      std::stringstream cs;
      cs << crypto_file.rdbuf();
      const auto cdoc = obs::json::parse(cs.str());
      if (!cdoc) {
        fail("crypto bench output does not parse as JSON");
      } else {
        for (const char* path :
             {"single_verify_share_ns", "batch/0/k", "batch/0/per_share_ns",
              "batch/1/speedup", "batch/2/total_ns",
              "byzantine_detection/detected", "byzantine_detection/attributed",
              "byzantine_detection/bisection_splits", "pass"}) {
          if (!obs::json::find_path(*cdoc, path)) {
            fail(std::string("crypto bench output missing path: ") + path);
          }
        }
      }
    }
  }

  if (failures == 0) std::fprintf(stderr, "bench_smoke: PASS\n");
  return failures == 0 ? 0 : 1;
}
