// Table II — latency in ms, LAN setting (100 MB/s, 0.1 ms), f = 1..3.
#include "bench/latency_common.h"

int main() {
  using namespace scab;
  bench::run_latency_table(
      "Table II — latency in ms (LAN)", sim::NetworkProfile::lan(),
      {causal::Protocol::kPbft, causal::Protocol::kCp0, causal::Protocol::kCp1,
       causal::Protocol::kCp2, causal::Protocol::kCp3},
      /*corrupt_f_replicas=*/false);
  return 0;
}
