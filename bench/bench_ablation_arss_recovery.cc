// Ablation — ARSS recovery cost under faulty shares: combination-search
// attempts and wall time for ARSS1 vs ARSS2 as the number of corrupted
// shares grows.  This is the mechanism behind Table IV's "the difference
// between CP2 and CP3 becomes even more visible [under failures]": ARSS2
// needs larger subsets, so its search space grows faster.
#include <chrono>

#include "bench/bench_util.h"
#include "secretshare/arss.h"

namespace {

using namespace scab;
using namespace scab::bench;
using namespace scab::secretshare;

struct Sample {
  std::size_t attempts = 0;
  double micros = 0;
  std::size_t shares_needed = 0;
};

Sample run_arss1(uint32_t f, uint32_t bad, const Bytes& secret) {
  crypto::Drbg rng(to_bytes("ab-arss1"));
  const crypto::Commitment cs(crypto::Commitment::cgen(rng));
  auto shares = arss1_share(secret, f + 1, 3 * f + 1, cs, rng);
  // Corrupted shares arrive first (worst case for the search).
  for (uint32_t i = 0; i < bad; ++i) {
    for (auto& v : shares[i].inner.values) v = v * Fe(5) + Fe(i + 1);
  }
  Arss1Reconstructor rec(cs, f, shares[0].commitment);
  Sample out;
  const auto start = std::chrono::steady_clock::now();
  std::optional<Bytes> got;
  for (const auto& s : shares) {
    got = rec.add(s);
    ++out.shares_needed;
    if (got) break;
  }
  out.micros = std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  out.attempts = rec.attempts();
  if (!got || *got != secret) out.attempts = 0;  // flag failure as 0
  return out;
}

Sample run_arss2(uint32_t f, uint32_t bad, const Bytes& secret,
                 Arss2Mode mode) {
  crypto::Drbg rng(to_bytes("ab-arss2"));
  auto shares = arss2_share(secret, f, 3 * f + 1, rng);
  Arss2Reconstructor rec(f, shares[0], mode);
  Sample out;
  out.shares_needed = 1;  // own share
  const auto start = std::chrono::steady_clock::now();
  std::optional<Bytes> got;
  for (uint32_t i = 1; i < shares.size(); ++i) {
    ShamirShare s = shares[i];
    if (i <= bad) {
      for (auto& v : s.values) v = v * Fe(7) + Fe(i);
    }
    got = rec.add(s);
    ++out.shares_needed;
    if (got) break;
  }
  out.micros = std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  out.attempts = rec.attempts();
  if (!got || *got != secret) out.attempts = 0;
  return out;
}

}  // namespace

int main() {
  crypto::Drbg rng(to_bytes("payload"));
  const Bytes secret = rng.generate(4096);

  print_header("Ablation — ARSS recovery search vs corrupted shares",
               "4 kB secret, corrupted shares arrive first; attempts = "
               "combination-search iterations, us = wall time of the full "
               "reconstruction");
  print_row({"f", "bad", "arss1-att", "arss1-us", "arss1-shr", "arss2-att",
             "arss2-us", "arss2-shr", "arss2R-att", "arss2R-us"});

  for (uint32_t f = 1; f <= 4; ++f) {
    for (uint32_t bad = 0; bad <= f; ++bad) {
      const Sample a1 = run_arss1(f, bad, secret);
      const Sample a2 = run_arss2(f, bad, secret, Arss2Mode::kFast);
      const Sample a2r = run_arss2(f, bad, secret, Arss2Mode::kRobust);
      print_row({std::to_string(f), std::to_string(bad),
                 std::to_string(a1.attempts), fmt_tput(a1.micros),
                 std::to_string(a1.shares_needed), std::to_string(a2.attempts),
                 fmt_tput(a2.micros), std::to_string(a2.shares_needed),
                 std::to_string(a2r.attempts), fmt_tput(a2r.micros)});
    }
  }
  return 0;
}
