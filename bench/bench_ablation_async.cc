// Ablation — the paper's §VI-A remark, reproduced: "While our protocols
// also apply to asynchronous consensus-based BFT protocols (e.g., the one
// in CKPS implemented in SINTRA), the performance difference is less
// visible compared to efficient BFT protocols such as PBFT.  The reason is
// that in addition to threshold encryption operations, there are other
// expensive operations for those asynchronous protocols."
//
// We run the same causal protocols on both engines (LAN, f=1).  The async
// engine's binary agreements burn threshold-coin exponentiations every
// round (512-bit group here), so its BASELINE is already expensive — and
// the relative penalty of the causal layers shrinks, exactly as claimed.
#include "bench/latency_common.h"

int main() {
  using namespace scab;
  using namespace scab::bench;
  using causal::Engine;
  using causal::Protocol;

  const sim::CostModel costs = calibrate_costs(crypto::ModGroup::modp_1024(), 1);

  print_header("Ablation — causal protocols on PBFT vs async BFT (LAN, f=1)",
               "latency ms and overhead relative to each engine's baseline; "
               "async coin over the 512-bit group");
  print_row({"protocol", "pbft-ms", "pbft-ovh", "async-ms", "async-ovh"});

  double base[2] = {0, 0};
  for (auto protocol :
       {Protocol::kPbft, Protocol::kCp0, Protocol::kCp1, Protocol::kCp2,
        Protocol::kCp3}) {
    double ms[2];
    for (int e = 0; e < 2; ++e) {
      auto opts = latency_options(protocol, 1, sim::NetworkProfile::lan(), costs);
      opts.engine = e == 0 ? Engine::kPbftEngine : Engine::kAsyncEngine;
      opts.coin_group = crypto::ModGroup::modp_512();
      const uint64_t requests = protocol == Protocol::kCp0 ? 6 : 15;
      ms[e] = run_latency_ms(opts, 4096, requests);
      if (protocol == Protocol::kPbft) base[e] = ms[e];
    }
    auto ovh = [&](int e) {
      if (base[e] <= 0 || ms[e] < 0) return std::string("-");
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%+.0f%%", (ms[e] / base[e] - 1) * 100);
      return std::string(buf);
    };
    print_row({causal::protocol_name(protocol), fmt_ms(ms[0]), ovh(0),
               fmt_ms(ms[1]), ovh(1)});
  }
  return 0;
}
