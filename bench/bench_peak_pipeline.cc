// Peak throughput of the batched causal layer (DESIGN.md §10): sweep the
// client-side aggregation factor (payloads per amortized TDH2 envelope)
// against the per-client pipelining window (in-flight envelope slots) for
// CP0 at f = 1 on the LAN profile, and report throughput plus the exact
// median latency at every grid point.
//
// Acceptance bound (checked here, exit status != 0 on violation): a
// batched configuration must deliver at least kMinSpeedup x the strict
// closed loop's (batch = inflight = 1) throughput at equal median latency.
// Closed-loop queueing makes the full-concurrency grid points carry more
// in-flight payloads than the baseline, so after the grid a latency-
// matching stage re-runs the best batch factor at decreasing client
// counts until its median drops to the baseline's — that matched point is
// the acceptance comparison (same frontier methodology as the paper's
// peak-throughput figures).  `--json` additionally writes the sweep and
// the summary verdict to BENCH_pipeline.json (validated by bench_smoke
// against metrics_schema.json's "required_pipeline" paths).
#include "bench/throughput_common.h"

namespace {

constexpr double kMinSpeedup = 5.0;
// "Equal median latency" with a little room for the deterministic
// simulator's bucketing of one envelope more or less in flight.
constexpr double kLatencySlack = 1.05;

struct GridPoint {
  uint32_t batch;
  uint32_t inflight;
  uint32_t clients;
  scab::bench::ThroughputResult r;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace scab;
  using namespace scab::bench;
  using causal::Protocol;

  const bool json = parse_json_flag(argc, argv);
  open_json_artifact(json, "pipeline");

  const uint32_t f = 1;
  const uint32_t clients = 8;
  const std::size_t request_bytes = 4096;
  const sim::CostModel costs = calibrate_costs(crypto::ModGroup::modp_1024(), f);

  if (!json) {
    print_header(
        "Peak pipeline — batched CP0 envelopes (LAN, f=1)",
        "client_batch payloads per TDH2 envelope x client_inflight slots; "
        "calibrated-cost threshold oracle");
    print_row({"batch", "inflight", "clients", "ops/s", "median ms",
               "mean ms"});
  }

  auto run_point = [&](uint32_t batch, uint32_t inflight,
                       uint32_t point_clients) {
    auto opts = throughput_options(Protocol::kCp0, f,
                                   sim::NetworkProfile::lan(), costs);
    opts.client_batch = batch;
    opts.client_inflight = inflight;
    // One "window" is clients x batch x inflight logical payloads in
    // flight at once; warm two windows, then measure a roughly constant
    // number of envelopes per point so every cell costs similar sim work.
    const uint64_t window = uint64_t{point_clients} * batch * inflight;
    const uint64_t warmup = 2 * window;
    const uint64_t measure = std::max<uint64_t>(400ull * batch, 4 * window);
    std::string obs;
    GridPoint pt{batch, inflight, point_clients,
                 run_throughput(opts, point_clients, request_bytes, warmup,
                                measure, 3600 * sim::kSecond, &obs)};
    if (json) {
      char head[320];
      std::snprintf(
          head, sizeof(head),
          "{\"figure\":\"peak_pipeline\",\"protocol\":\"CP0\",\"f\":%u,"
          "\"clients\":%u,\"batch\":%u,\"inflight\":%u,"
          "\"ops_per_sec\":%.3f,\"mean_latency_ms\":%.4f,"
          "\"median_latency_ms\":%.4f,\"measured_ops\":%llu,",
          f, point_clients, batch, inflight, pt.r.ops_per_sec,
          pt.r.mean_latency_ms, pt.r.median_latency_ms,
          static_cast<unsigned long long>(pt.r.measured_ops));
      emit_json_line(std::string(head) + obs + "}");
    } else {
      print_row({std::to_string(batch), std::to_string(inflight),
                 std::to_string(point_clients), fmt_tput(pt.r.ops_per_sec),
                 fmt_ms(pt.r.median_latency_ms),
                 fmt_ms(pt.r.mean_latency_ms)});
    }
    return pt;
  };

  std::vector<GridPoint> grid;
  for (uint32_t batch : {1u, 4u, 16u, 32u}) {
    for (uint32_t inflight : {1u, 4u, 8u}) {
      grid.push_back(run_point(batch, inflight, clients));
    }
  }

  // The strict closed loop is the first grid point.
  const GridPoint& base = grid.front();
  const double latency_bound = base.r.median_latency_ms * kLatencySlack;

  // Latency-matching stage: the biggest batch factor keeps per-payload
  // work lowest, so take the highest-throughput grid point's batch at
  // inflight = 1 and shed client concurrency until the median is back at
  // the baseline's.  Fewer large envelopes in flight means less queueing
  // per payload — throughput stays amortized while latency drops.
  const GridPoint* best_grid = &base;
  for (const GridPoint& pt : grid) {
    if (pt.r.ops_per_sec > best_grid->r.ops_per_sec) best_grid = &pt;
  }
  GridPoint matched = base;  // best point at (or under) the baseline median
  for (const GridPoint& pt : grid) {
    if (pt.r.median_latency_ms <= latency_bound &&
        pt.r.ops_per_sec > matched.r.ops_per_sec) {
      matched = pt;
    }
  }
  if (best_grid->batch > 1) {
    for (uint32_t point_clients : {4u, 2u, 1u}) {
      const GridPoint pt = run_point(best_grid->batch, 1, point_clients);
      if (pt.r.median_latency_ms <= latency_bound &&
          pt.r.ops_per_sec > matched.r.ops_per_sec) {
        matched = pt;
      }
      if (pt.r.median_latency_ms <= latency_bound) break;  // matched: done
    }
  }

  const double speedup =
      base.r.ops_per_sec > 0 ? matched.r.ops_per_sec / base.r.ops_per_sec : 0;
  const bool pass = speedup >= kMinSpeedup;

  char summary[640];
  std::snprintf(
      summary, sizeof(summary),
      "{\"figure\":\"peak_pipeline_summary\",\"protocol\":\"CP0\",\"f\":%u,"
      "\"baseline_clients\":%u,\"baseline_ops_per_sec\":%.3f,"
      "\"baseline_median_ms\":%.4f,\"peak_ops_per_sec\":%.3f,"
      "\"peak_median_ms\":%.4f,\"peak_batch\":%u,\"peak_inflight\":%u,"
      "\"peak_clients\":%u,\"speedup\":%.3f,\"min_speedup\":%.1f,"
      "\"latency_slack\":%.2f,\"pass\":%s}",
      f, clients, base.r.ops_per_sec, base.r.median_latency_ms,
      matched.r.ops_per_sec, matched.r.median_latency_ms, matched.batch,
      matched.inflight, matched.clients, speedup, kMinSpeedup, kLatencySlack,
      pass ? "true" : "false");
  if (json) {
    emit_json_line(summary);
  } else {
    std::printf("\nmatched peak %ux%u @ %u clients: %.0f ops/s vs baseline "
                "%.0f ops/s (%.2fx, median %.2f ms vs %.2f ms) — %s\n",
                matched.batch, matched.inflight, matched.clients,
                matched.r.ops_per_sec, base.r.ops_per_sec, speedup,
                matched.r.median_latency_ms, base.r.median_latency_ms,
                pass ? "PASS" : "FAIL");
  }
  return pass ? 0 : 1;
}
