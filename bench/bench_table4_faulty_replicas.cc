// Table IV — latency in ms with f Byzantine replicas contributing faulty
// decryption/secret shares (LAN), for the share-based protocols.
#include "bench/latency_common.h"

int main() {
  using namespace scab;
  bench::run_latency_table(
      "Table IV — latency with faulty replicas in ms (LAN)",
      sim::NetworkProfile::lan(),
      {causal::Protocol::kCp0, causal::Protocol::kCp2, causal::Protocol::kCp3},
      /*corrupt_f_replicas=*/true);
  return 0;
}
