// Table IV — latency in ms with f Byzantine replicas contributing faulty
// decryption/secret shares (LAN), for the share-based protocols — plus a
// crash/restart recovery drill per cell driven through host::FaultInjector.
//
// The two fault models are deliberately distinct:
//   * Faulty shares are a Byzantine *signer* fault (corrupt_replica_shares);
//     shares are authenticated, so no network-level injector can forge them.
//   * Crash + restart is a network/process fault and goes through the
//     runtime-agnostic injector (Cluster::crash_replica / restart_replica):
//     the reborn replica rejoins via the checkpoint catch-up fetch and the
//     drill reports bft.recovery.catchup_ms.
//
// `--json` emits one record per (protocol, f) cell with both the
// faulty-share latency and the recovery-latency columns.
#include <cstdio>

#include "bench/latency_common.h"
#include "bench/throughput_common.h"

namespace scab::bench {
namespace {

struct RecoveryCell {
  double catchup_ms = -1.0;  // mean of bft.recovery.catchup_ms on the victim
  uint64_t catchups = 0;     // completed catch-up rounds (expect >= 1)
};

// Crash a backup mid-run, keep the quorum serving, restart it, and measure
// how long the checkpoint catch-up takes once the next checkpoint
// certificate tells the reborn replica it is behind.
RecoveryCell run_recovery_drill(causal::Protocol protocol, uint32_t f,
                                sim::NetworkProfile profile,
                                const sim::CostModel& costs,
                                std::string* obs_fields = nullptr) {
  auto opts = latency_options(protocol, f, profile, costs);
  // Low watermark interval so the drill recovers within a handful of
  // requests instead of the production default of 64.
  opts.bft.checkpoint_interval = 4;
  opts.num_clients = 1;
  causal::Cluster cluster(opts);
  cluster.client(0).set_retry_timeout(60 * sim::kSecond);

  const uint32_t victim = cluster.n() - 1;  // a backup: quorum survives
  auto op = [](uint64_t i) { return Bytes(512, static_cast<uint8_t>(i)); };

  RecoveryCell cell;
  uint64_t seq = 0;
  for (int i = 0; i < 2; ++i) {
    if (!cluster.run_one(0, op(seq++), 600 * sim::kSecond)) return cell;
  }
  cluster.crash_replica(victim);
  // Cross at least one checkpoint boundary while the victim is down so its
  // snapshot is genuinely stale on rebirth.
  for (int i = 0; i < 6; ++i) {
    if (!cluster.run_one(0, op(seq++), 600 * sim::kSecond)) return cell;
  }
  cluster.restart_replica(victim);

  auto& catchup = cluster.replica_metrics(victim)
                      .histogram("bft.recovery.catchup_ms");
  // Post-restart traffic advances the cluster to the next checkpoint, whose
  // certificate triggers the victim's fetch; stop as soon as it lands.
  for (int i = 0; i < 12 && catchup.count() == 0; ++i) {
    if (!cluster.run_one(0, op(seq++), 600 * sim::kSecond)) return cell;
  }
  cluster.sim().run_while([&] {
    return catchup.count() >= 1 || cluster.sim().now() > 600 * sim::kSecond;
  });

  cell.catchups = catchup.count();
  if (cell.catchups > 0) cell.catchup_ms = catchup.mean();
  if (obs_fields) *obs_fields = obs_json_fields(cluster);
  cluster.shutdown();
  return cell;
}

void run_table4(bool json) {
  const std::vector<causal::Protocol> protocols = {
      causal::Protocol::kCp0, causal::Protocol::kCp2, causal::Protocol::kCp3};
  const sim::NetworkProfile profile = sim::NetworkProfile::lan();

  if (!json) {
    run_latency_table("Table IV — latency with faulty replicas in ms (LAN)",
                      profile, protocols, /*corrupt_f_replicas=*/true);
    print_header("Table IV addendum — crash/restart recovery in ms (LAN)",
                 "one backup killed mid-run and restarted through "
                 "host::FaultInjector; checkpoint catch-up latency "
                 "(bft.recovery.catchup_ms, checkpoint interval 4)");
    print_row({"protocol", "f=1", "f=2", "f=3"});
  }

  for (auto protocol : protocols) {
    std::vector<std::string> row{causal::protocol_name(protocol)};
    for (uint32_t f = 1; f <= 3; ++f) {
      const sim::CostModel costs =
          calibrate_costs(crypto::ModGroup::modp_1024(), f);
      if (json) {
        auto opts = latency_options(protocol, f, profile, costs);
        const uint64_t requests =
            protocol == causal::Protocol::kCp0 ? 8 : 30;
        const double faulty_ms = run_corrupt_latency_ms(opts, f, requests);
        std::string obs;
        const RecoveryCell rec =
            run_recovery_drill(protocol, f, profile, costs, &obs);
        std::printf(
            "{\"figure\":\"table4\",\"protocol\":\"%s\",\"f\":%u,"
            "\"faulty_latency_ms\":%.4f,\"recovery_catchup_ms\":%.4f,"
            "\"recovery_catchups\":%llu,%s}\n",
            causal::protocol_name(protocol), f, faulty_ms, rec.catchup_ms,
            static_cast<unsigned long long>(rec.catchups), obs.c_str());
        std::fflush(stdout);
      } else {
        const RecoveryCell rec =
            run_recovery_drill(protocol, f, profile, costs);
        row.push_back(fmt_ms(rec.catchup_ms));
      }
    }
    if (!json) print_row(row);
  }
}

}  // namespace
}  // namespace scab::bench

int main(int argc, char** argv) {
  const bool json = scab::bench::parse_json_flag(argc, argv);
  scab::bench::run_table4(json);
  return 0;
}
