// Fig. 4 — throughput vs number of clients, f = 1, LAN setting.
#include "bench/throughput_common.h"

int main(int argc, char** argv) {
  using namespace scab;
  const bool json = bench::parse_json_flag(argc, argv);
  bench::open_json_artifact(json, "fig4_throughput_lan");
  bench::run_throughput_figure("Fig 4 — throughput vs clients (LAN, f=1)",
                               "fig4_throughput_lan",
                               sim::NetworkProfile::lan(), 1,
                               {1, 5, 10, 20, 40, 60, 80, 100}, json);
  return 0;
}
