// Fig. 4 — throughput vs number of clients, f = 1, LAN setting.
#include "bench/throughput_common.h"

int main(int argc, char** argv) {
  using namespace scab;
  bench::run_throughput_figure("Fig 4 — throughput vs clients (LAN, f=1)",
                               "fig4_throughput_lan",
                               sim::NetworkProfile::lan(), 1,
                               {1, 5, 10, 20, 40, 60, 80, 100},
                               bench::parse_json_flag(argc, argv));
  return 0;
}
