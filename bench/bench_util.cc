#include "bench/bench_util.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "crypto/aead.h"
#include "crypto/commitment.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "secretshare/arss.h"
#include "threshenc/hybrid.h"

namespace scab::bench {

using causal::Cluster;
using causal::ClusterOptions;
using sim::CostModel;
using sim::Op;
using sim::SimTime;

namespace {

/// Wall-clock time of fn() in nanoseconds: the minimum over several
/// batches of `reps` runs each.  The minimum is robust against scheduler
/// and frequency noise, which matters because these prices feed straight
/// into the virtual clock.
template <typename Fn>
double measure_ns(int reps, Fn&& fn) {
  fn();  // untimed warmup
  double best = 1e18;
  for (int batch = 0; batch < 3; ++batch) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) fn();
    const auto end = std::chrono::steady_clock::now();
    best = std::min(
        best,
        std::chrono::duration<double, std::nano>(end - start).count() / reps);
  }
  return best;
}

struct SymmetricPrices {
  CostModel::Price hash, mac, seal, open, commit, commit_open, shamir_share,
      shamir_rec;
};

/// Derives a (fixed, per-KiB) price from measurements at two sizes.
CostModel::Price fit_price(double ns_small, double ns_big,
                           std::size_t small_bytes, std::size_t big_bytes) {
  CostModel::Price p;
  const double slope =
      (ns_big - ns_small) / (static_cast<double>(big_bytes - small_bytes));
  p.per_byte = static_cast<SimTime>(std::max(0.0, slope * 1024.0));
  const double fixed = ns_small - slope * static_cast<double>(small_bytes);
  p.fixed = static_cast<SimTime>(std::max(1.0, fixed));
  return p;
}

const SymmetricPrices& symmetric_prices() {
  static const SymmetricPrices prices = [] {
    SymmetricPrices out;
    crypto::Drbg rng(to_bytes("calibration"));
    const Bytes small = rng.generate(64);
    const Bytes big = rng.generate(4096);
    const Bytes key32 = rng.generate(32);
    const Bytes key64 = rng.generate(64);
    const int reps = 40;

    out.hash = fit_price(
        measure_ns(reps, [&] { crypto::sha256(small); }),
        measure_ns(reps, [&] { crypto::sha256(big); }), 64, 4096);
    out.mac = fit_price(
        measure_ns(reps, [&] { crypto::hmac_sha256(key32, small); }),
        measure_ns(reps, [&] { crypto::hmac_sha256(key32, big); }), 64, 4096);
    out.seal = fit_price(
        measure_ns(reps, [&] { crypto::aead_seal(key64, {}, small, rng); }),
        measure_ns(reps, [&] { crypto::aead_seal(key64, {}, big, rng); }), 64,
        4096);
    const Bytes box_small = crypto::aead_seal(key64, {}, small, rng);
    const Bytes box_big = crypto::aead_seal(key64, {}, big, rng);
    out.open = fit_price(
        measure_ns(reps, [&] { (void)crypto::aead_open(key64, {}, box_small); }),
        measure_ns(reps, [&] { (void)crypto::aead_open(key64, {}, box_big); }),
        64, 4096);

    crypto::Commitment cs(key32);
    out.commit = fit_price(
        measure_ns(reps, [&] { cs.commit(small, rng); }),
        measure_ns(reps, [&] { cs.commit(big, rng); }), 64, 4096);
    const auto c_small = cs.commit(small, rng);
    const auto c_big = cs.commit(big, rng);
    out.commit_open = fit_price(
        measure_ns(reps,
                   [&] {
                     (void)cs.open(c_small.commitment, small,
                                   c_small.decommitment);
                   }),
        measure_ns(reps,
                   [&] { (void)cs.open(c_big.commitment, big, c_big.decommitment); }),
        64, 4096);

    // Shamir at the reference deployment f=1, n=4 (dominated by per-chunk
    // work, so the per-byte term carries the f-dependence well enough).
    out.shamir_share = fit_price(
        measure_ns(10, [&] { secretshare::shamir_share(small, 2, 4, rng); }),
        measure_ns(10, [&] { secretshare::shamir_share(big, 2, 4, rng); }), 64,
        4096);
    const auto sh_small = secretshare::shamir_share(small, 2, 4, rng);
    const auto sh_big = secretshare::shamir_share(big, 2, 4, rng);
    const std::vector<secretshare::ShamirShare> two_small(sh_small.begin(),
                                                          sh_small.begin() + 2);
    const std::vector<secretshare::ShamirShare> two_big(sh_big.begin(),
                                                        sh_big.begin() + 2);
    out.shamir_rec = fit_price(
        measure_ns(10, [&] { (void)secretshare::shamir_reconstruct(two_small); }),
        measure_ns(10, [&] { (void)secretshare::shamir_reconstruct(two_big); }),
        64, 4096);
    return out;
  }();
  return prices;
}

}  // namespace

ThreshEncProfile profile_threshenc(const crypto::ModGroup& group, uint32_t f,
                                   int reps) {
  crypto::Drbg rng(to_bytes("tdh2-calibration"));
  const uint32_t n = 3 * f + 1;
  auto keys = threshenc::tdh2_keygen(group, f + 1, n, rng);
  const Bytes msg = rng.generate(threshenc::kTdh2MessageSize);
  const Bytes label = to_bytes("calib-label");

  ThreshEncProfile out;
  out.encrypt_ms =
      measure_ns(reps, [&] { threshenc::tdh2_encrypt(keys.pk, msg, label, rng); }) /
      1e6;
  const auto ct = threshenc::tdh2_encrypt(keys.pk, msg, label, rng);
  out.verify_ciphertext_ms =
      measure_ns(reps,
                 [&] { (void)threshenc::tdh2_verify_ciphertext(keys.pk, ct, label); }) /
      1e6;
  // Preverified entry points: what the CP0 reveal pipeline actually pays
  // (the proof check is priced separately under kTdh2VerifyCt).
  out.share_decrypt_ms =
      measure_ns(reps,
                 [&] {
                   (void)threshenc::tdh2_share_decrypt_preverified(
                       keys.pk, keys.shares[0], ct, rng);
                 }) /
      1e6;
  std::vector<threshenc::Tdh2DecryptionShare> shares;
  for (uint32_t i = 0; i <= f; ++i) {
    shares.push_back(
        *threshenc::tdh2_share_decrypt(keys.pk, keys.shares[i], ct, label, rng));
  }
  out.verify_share_ms =
      measure_ns(reps,
                 [&] {
                   (void)threshenc::tdh2_verify_share(keys.pk, ct, label,
                                                      shares[0]);
                 }) /
      1e6;
  // Batch verification at k=4 and k=16.  Duplicate shares are fine — each
  // share occupies its own slot of the merged equation with fresh random
  // coefficients, so repeating a share still exercises the full per-share
  // work (two ≤256-bit exponent pairs in the multi-exponentiation).
  auto batch_of = [&](std::size_t k) {
    std::vector<threshenc::Tdh2DecryptionShare> b;
    for (std::size_t i = 0; i < k; ++i) b.push_back(shares[i % shares.size()]);
    return b;
  };
  crypto::Drbg batch_rng(to_bytes("tdh2-batch-calibration"));
  const auto batch4 = batch_of(4);
  const auto batch16 = batch_of(16);
  out.batch_verify4_ms =
      measure_ns(reps,
                 [&] {
                   (void)threshenc::tdh2_batch_verify_shares(
                       keys.pk, ct, label, batch4, batch_rng);
                 }) /
      1e6;
  out.batch_verify16_ms =
      measure_ns(reps,
                 [&] {
                   (void)threshenc::tdh2_batch_verify_shares(
                       keys.pk, ct, label, batch16, batch_rng);
                 }) /
      1e6;
  out.combine_ms =
      measure_ns(reps,
                 [&] {
                   (void)threshenc::tdh2_combine_preverified(keys.pk, ct,
                                                             shares);
                 }) /
      1e6;
  return out;
}

CostModel calibrate_costs(const crypto::ModGroup& group, uint32_t f) {
  const SymmetricPrices& sym = symmetric_prices();
  CostModel m;
  m.set(Op::kHash, sym.hash);
  m.set(Op::kMac, sym.mac);
  m.set(Op::kAeadSeal, sym.seal);
  m.set(Op::kAeadOpen, sym.open);
  m.set(Op::kCommit, sym.commit);
  m.set(Op::kCommitOpen, sym.commit_open);
  m.set(Op::kShamirShare, sym.shamir_share);
  m.set(Op::kShamirRec, sym.shamir_rec);
  m.set(Op::kExecute, {1'000, 200});
  // Per-message network-stack CPU (syscall + copy): a modeled constant —
  // it cannot be measured in-process but dominates small-message handling
  // on real testbeds (DESIGN.md section 3).
  m.set(Op::kMsgOverhead, {12'000, 0});

  const ThreshEncProfile t = profile_threshenc(group, f, 5);
  auto ms_price = [&](double ms, SimTime per_byte = 0) {
    return CostModel::Price{static_cast<SimTime>(ms * 1e6), per_byte};
  };
  // Hybrid encryption adds an AEAD pass over the body.
  m.set(Op::kTdh2Encrypt, ms_price(t.encrypt_ms, sym.seal.per_byte));
  m.set(Op::kTdh2VerifyCt, ms_price(t.verify_ciphertext_ms));
  m.set(Op::kTdh2ShareDec, ms_price(t.share_decrypt_ms));
  m.set(Op::kTdh2VerifyShare, ms_price(t.verify_share_ms));
  // Fit the batch price from the k=4 and k=16 measurements.  CONVENTION
  // (sim/cost_model.h): charged with bytes = k·1024, so per_byte holds the
  // per-share amortized ns and fixed the batch-constant part.
  {
    const double per_share_ns =
        std::max(0.0, (t.batch_verify16_ms - t.batch_verify4_ms) * 1e6 / 12.0);
    const double fixed_ns =
        std::max(1.0, t.batch_verify4_ms * 1e6 - 4.0 * per_share_ns);
    m.set(Op::kTdh2BatchVerifyShare,
          {static_cast<SimTime>(fixed_ns), static_cast<SimTime>(per_share_ns)});
  }
  m.set(Op::kTdh2Combine, ms_price(t.combine_ms, sym.open.per_byte));
  return m;
}

std::string obs_json_fields(Cluster& cluster) {
  return "\"trace\":" + cluster.tracer().to_json() +
         ",\"metrics\":" + cluster.merged_metrics().to_json();
}

double run_latency_ms(ClusterOptions opts, std::size_t request_bytes,
                      uint64_t requests, SimTime deadline,
                      std::string* obs_fields) {
  opts.num_clients = 1;
  Cluster cluster(std::move(opts));
  auto& client = cluster.client(0);
  client.set_retry_timeout(60 * sim::kSecond);
  client.run_closed_loop(
      [request_bytes](uint64_t i) {
        Bytes op(request_bytes, static_cast<uint8_t>(i));
        return op;
      },
      requests);
  cluster.sim().run_while([&] {
    return client.completed_ops() >= requests || cluster.sim().now() > deadline;
  });
  if (obs_fields) *obs_fields = obs_json_fields(cluster);
  if (client.completed_ops() < requests) return -1.0;
  return static_cast<double>(client.total_latency()) / requests /
         sim::kMillisecond;
}

ThroughputResult run_throughput(ClusterOptions opts, uint32_t clients,
                                std::size_t request_bytes, uint64_t warmup_ops,
                                uint64_t measure_ops, SimTime deadline,
                                std::string* obs_fields) {
  opts.num_clients = clients;
  Cluster cluster(std::move(opts));

  auto total_completed = [&] {
    uint64_t sum = 0;
    for (uint32_t c = 0; c < clients; ++c) sum += cluster.client(c).completed_ops();
    return sum;
  };
  auto total_latency = [&] {
    SimTime sum = 0;
    for (uint32_t c = 0; c < clients; ++c) sum += cluster.client(c).total_latency();
    return sum;
  };

  // (completion time, latency) per logical operation across all clients;
  // the simulator is single-threaded so the shared vector needs no lock.
  std::vector<std::pair<sim::SimTime, sim::SimTime>> completions;
  for (uint32_t c = 0; c < clients; ++c) {
    cluster.client(c).set_retry_timeout(60 * sim::kSecond);
    cluster.client(c).run_closed_loop(
        [request_bytes](uint64_t i) {
          return Bytes(request_bytes, static_cast<uint8_t>(i));
        },
        0 /* unbounded */,
        [&completions](uint64_t, sim::SimTime start, sim::SimTime end) {
          completions.emplace_back(end, end - start);
        });
  }

  cluster.sim().run_while([&] {
    return total_completed() >= warmup_ops || cluster.sim().now() > deadline;
  });
  const uint64_t ops0 = total_completed();
  const SimTime t0 = cluster.sim().now();
  const SimTime lat0 = total_latency();

  cluster.sim().run_while([&] {
    return total_completed() >= ops0 + measure_ops ||
           cluster.sim().now() > deadline;
  });
  const uint64_t ops1 = total_completed();
  const SimTime t1 = cluster.sim().now();
  const SimTime lat1 = total_latency();

  if (obs_fields) *obs_fields = obs_json_fields(cluster);

  ThroughputResult out;
  out.measured_ops = ops1 - ops0;
  if (t1 > t0 && out.measured_ops > 0) {
    out.ops_per_sec = static_cast<double>(out.measured_ops) * sim::kSecond /
                      static_cast<double>(t1 - t0);
    out.mean_latency_ms = static_cast<double>(lat1 - lat0) /
                          static_cast<double>(out.measured_ops) /
                          sim::kMillisecond;
    std::vector<SimTime> window;
    window.reserve(out.measured_ops);
    for (const auto& [end, latency] : completions) {
      if (end > t0 && end <= t1) window.push_back(latency);
    }
    if (!window.empty()) {
      auto mid = window.begin() + static_cast<std::ptrdiff_t>(window.size() / 2);
      std::nth_element(window.begin(), mid, window.end());
      out.median_latency_ms = static_cast<double>(*mid) / sim::kMillisecond;
    }
  }
  return out;
}

namespace {
FILE* g_artifact = nullptr;
}  // namespace

void open_json_artifact(bool enabled, const std::string& name) {
  if (g_artifact) {
    std::fclose(g_artifact);
    g_artifact = nullptr;
  }
  if (!enabled) return;
  // Artifacts land in $SCAB_BENCH_DIR when set (CI points it at
  // build/bench/ so JSON dumps never litter the source tree), else cwd.
  std::string path = "BENCH_" + name + ".json";
  if (const char* dir = std::getenv("SCAB_BENCH_DIR"); dir != nullptr && *dir) {
    path = std::string(dir) + "/" + path;
  }
  g_artifact = std::fopen(path.c_str(), "w");
  if (!g_artifact) {
    std::fprintf(stderr, "warning: cannot open %s for writing\n", path.c_str());
  }
}

void emit_json_line(const std::string& line) {
  std::printf("%s\n", line.c_str());
  std::fflush(stdout);
  if (g_artifact) {
    std::fprintf(g_artifact, "%s\n", line.c_str());
    std::fflush(g_artifact);
  }
}

void print_header(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
}

void print_row(const std::vector<std::string>& cells, int width) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

std::string fmt_ms(double ms) {
  char buf[32];
  if (ms < 0) return "timeout";
  std::snprintf(buf, sizeof(buf), ms < 10 ? "%.2f" : "%.1f", ms);
  return buf;
}

std::string fmt_tput(double ops) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", ops);
  return buf;
}

}  // namespace scab::bench
