// Fig. 5 — throughput vs number of clients, f = 1, WAN setting.
#include "bench/throughput_common.h"

int main(int argc, char** argv) {
  using namespace scab;
  const bool json = bench::parse_json_flag(argc, argv);
  bench::open_json_artifact(json, "fig5_throughput_wan");
  bench::run_throughput_figure("Fig 5 — throughput vs clients (WAN, f=1)",
                               "fig5_throughput_wan",
                               sim::NetworkProfile::wan(), 1,
                               {1, 5, 10, 20, 40, 60, 80, 100}, json);
  return 0;
}
