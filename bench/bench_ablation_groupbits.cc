// Ablation — the "security parameter" knob the paper mentions for CP0: how
// the threshold-cryptosystem group size drives per-operation cost and CP0's
// end-to-end latency.  The paper deliberately ran CP0 with a conservative
// (<80-bit security) parameter and it STILL lost by orders of magnitude;
// this bench shows the gap only widens at honest parameters.
#include "bench/latency_common.h"

int main() {
  using namespace scab;
  using namespace scab::bench;

  struct GroupCase {
    const char* name;
    crypto::ModGroup group;
  };
  crypto::Drbg rng(to_bytes("ablation-256"));
  std::vector<GroupCase> cases;
  cases.push_back({"256-bit", crypto::ModGroup::generate(256, rng)});
  cases.push_back({"512-bit", crypto::ModGroup::modp_512()});
  cases.push_back({"1024-bit", crypto::ModGroup::modp_1024()});

  print_header("Ablation — TDH2 cost vs group modulus size (f=1)",
               "per-operation ms, plus CP0 end-to-end LAN latency");
  print_row({"group", "enc", "vrf-ct", "share-dec", "vrf-share", "combine",
             "CP0-lat"});

  for (auto& gc : cases) {
    const ThreshEncProfile p = profile_threshenc(gc.group, 1, 4);
    const sim::CostModel costs = calibrate_costs(gc.group, 1);
    auto opts = latency_options(causal::Protocol::kCp0, 1,
                                sim::NetworkProfile::lan(), costs);
    opts.group = gc.group;
    const double lat = run_latency_ms(opts, 4096, 6);
    print_row({gc.name, fmt_ms(p.encrypt_ms), fmt_ms(p.verify_ciphertext_ms),
               fmt_ms(p.share_decrypt_ms), fmt_ms(p.verify_share_ms),
               fmt_ms(p.combine_ms), fmt_ms(lat)});
  }
  return 0;
}
