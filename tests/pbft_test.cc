// Integration tests for the PBFT substrate: normal case, batching, total
// order, checkpoints, view changes, catch-up, and the fairness watchdog.
#include <gtest/gtest.h>

#include "apps/kvstore.h"
#include "bft/client.h"
#include "bft/replica.h"
#include "causal/harness.h"

namespace scab::causal {
namespace {

using bft::NodeId;
using sim::kMillisecond;
using sim::kSecond;

ClusterOptions base_options(uint32_t f = 1) {
  ClusterOptions o;
  o.protocol = Protocol::kPbft;
  o.bft = bft::BftConfig::for_f(f);
  o.bft.batch_delay = 100 * sim::kMicrosecond;
  o.profile = sim::NetworkProfile::ideal();
  o.seed = 7;
  return o;
}

TEST(Pbft, SingleRequestRoundTrip) {
  Cluster cluster(base_options());
  const auto result = cluster.run_one(0, to_bytes("hello"));
  ASSERT_TRUE(result.has_value());
  for (uint32_t i = 0; i < cluster.n(); ++i) {
    EXPECT_EQ(cluster.replica(i).executed_requests(), 1u) << "replica " << i;
  }
}

TEST(Pbft, SequentialRequestsAllComplete) {
  Cluster cluster(base_options());
  auto& client = cluster.client(0);
  client.run_closed_loop([](uint64_t i) { return to_bytes("op" + std::to_string(i)); },
                         25);
  cluster.sim().run_while([&] { return client.completed_ops() >= 25; });
  EXPECT_EQ(client.completed_ops(), 25u);
  for (uint32_t i = 0; i < cluster.n(); ++i) {
    EXPECT_EQ(cluster.replica(i).executed_requests(), 25u);
  }
}

TEST(Pbft, KvStateConsistentAcrossReplicas) {
  auto opts = base_options();
  opts.num_clients = 3;
  opts.service_factory = [] { return std::make_unique<apps::KvStore>(); };
  Cluster cluster(opts);

  for (uint32_t c = 0; c < 3; ++c) {
    cluster.client(c).run_closed_loop(
        [c](uint64_t i) {
          return apps::KvStore::put("key-" + std::to_string(c) + "-" + std::to_string(i),
                                    to_bytes("v" + std::to_string(i)));
        },
        10);
  }
  cluster.sim().run_while([&] {
    for (uint32_t c = 0; c < 3; ++c) {
      if (cluster.client(c).completed_ops() < 10) return false;
    }
    return true;
  });

  for (uint32_t i = 0; i < cluster.n(); ++i) {
    auto& kv = dynamic_cast<apps::KvStore&>(cluster.service(i));
    EXPECT_EQ(kv.size(), 30u) << "replica " << i;
  }
  // Reads return the written values.
  const auto v = cluster.run_one(0, apps::KvStore::get("key-1-5"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, to_bytes("v5"));
}

TEST(Pbft, ConcurrentClientsAreBatched) {
  auto opts = base_options();
  opts.num_clients = 8;
  Cluster cluster(opts);
  for (uint32_t c = 0; c < 8; ++c) {
    cluster.client(c).run_closed_loop([](uint64_t) { return Bytes(64, 1); }, 10);
  }
  cluster.sim().run_while([&] {
    for (uint32_t c = 0; c < 8; ++c) {
      if (cluster.client(c).completed_ops() < 10) return false;
    }
    return true;
  });
  // 80 requests executed in (far) fewer than 80 consensus slots.
  EXPECT_EQ(cluster.replica(1).executed_requests(), 80u);
  EXPECT_LT(cluster.replica(1).last_executed_seq(), 60u);
}

TEST(Pbft, CheckpointsAdvanceTheWatermark) {
  auto opts = base_options();
  opts.bft.checkpoint_interval = 8;
  opts.bft.max_batch = 1;  // one request per slot -> predictable seqnos
  Cluster cluster(opts);
  auto& client = cluster.client(0);
  client.run_closed_loop([](uint64_t) { return Bytes(8, 2); }, 20);
  cluster.sim().run_while([&] { return client.completed_ops() >= 20; });
  for (uint32_t i = 0; i < cluster.n(); ++i) {
    EXPECT_GE(cluster.replica(i).low_watermark(), 16u) << "replica " << i;
  }
}

TEST(Pbft, SurvivesBackupCrash) {
  Cluster cluster(base_options());
  cluster.net().faults().crash(2);  // one backup; f = 1 tolerated
  auto& client = cluster.client(0);
  client.run_closed_loop([](uint64_t) { return Bytes(16, 3); }, 15);
  cluster.sim().run_while([&] { return client.completed_ops() >= 15; });
  EXPECT_EQ(client.completed_ops(), 15u);
  EXPECT_EQ(cluster.replica(0).view_changes_completed(), 0u);
}

TEST(Pbft, PrimaryCrashTriggersViewChangeAndRecovers) {
  auto opts = base_options();
  opts.bft.request_timeout = 1 * kSecond;
  opts.bft.watchdog_period = 200 * kMillisecond;
  Cluster cluster(opts);

  cluster.net().faults().crash(0);  // the view-0 primary is dead
  const auto result = cluster.run_one(0, to_bytes("survive"), 60 * kSecond);
  ASSERT_TRUE(result.has_value());
  for (uint32_t i = 1; i < cluster.n(); ++i) {
    EXPECT_GE(cluster.replica(i).view(), 1u) << "replica " << i;
    EXPECT_EQ(cluster.replica(i).executed_requests(), 1u);
  }
}

TEST(Pbft, RepeatedPrimaryFailuresAdvanceViews) {
  auto opts = base_options();
  opts.bft.request_timeout = 1 * kSecond;
  opts.bft.watchdog_period = 200 * kMillisecond;
  Cluster cluster(opts);

  // Kill primaries of views 0 and 1: the cluster must reach view >= 2.
  cluster.net().faults().crash(0);
  cluster.net().faults().crash(1);
  // f = 1 but two crashed replicas: the remaining 2 < 2f+1 cannot commit.
  // So instead: recover 1 after the first view change.
  const auto unreachable = cluster.run_one(0, to_bytes("x"), 3 * kSecond);
  EXPECT_FALSE(unreachable.has_value());
  cluster.net().faults().recover(1);
  const auto result = cluster.run_one(0, to_bytes("y"), 60 * kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(cluster.replica(2).view(), 1u);
}

TEST(Pbft, LaggingReplicaCatchesUpViaFetch) {
  auto opts = base_options();
  opts.bft.checkpoint_interval = 8;
  Cluster cluster(opts);

  // Isolate replica 3's inbound links: it misses everything.
  for (NodeId r = 0; r < 3; ++r) cluster.net().faults().cut(r, 3);
  cluster.net().faults().cut(Cluster::client_id(0), 3);

  auto& client = cluster.client(0);
  client.run_closed_loop([](uint64_t) { return Bytes(8, 4); }, 30);
  cluster.sim().run_while([&] { return client.completed_ops() >= 30; });
  EXPECT_EQ(cluster.replica(3).executed_requests(), 0u);

  // Heal and push more traffic so new checkpoints reach replica 3.
  for (NodeId r = 0; r < 3; ++r) cluster.net().faults().heal(r, 3);
  cluster.net().faults().heal(Cluster::client_id(0), 3);
  client.run_closed_loop([](uint64_t) { return Bytes(8, 5); }, 30);
  const bool caught_up = cluster.sim().run_while([&] {
    return cluster.replica(3).executed_requests() >= 50 ||
           cluster.sim().now() > 300 * kSecond;
  });
  ASSERT_TRUE(caught_up);
  EXPECT_GE(cluster.replica(3).executed_requests(), 50u);
}

TEST(Pbft, FairnessWatchdogDemotesStarvingPrimary) {
  // The primary drops client 1's requests (selective starvation).  The
  // fairness monitor must eventually demote it even though other clients
  // are being served.
  auto opts = base_options();
  opts.num_clients = 2;
  opts.bft.request_timeout = 1 * kSecond;
  opts.bft.watchdog_period = 200 * kMillisecond;
  opts.profile = sim::NetworkProfile::lan();  // realistic pacing
  Cluster cluster(opts);

  cluster.net().faults().cut(Cluster::client_id(1), 0);  // primary never sees c1

  auto& happy = cluster.client(0);
  happy.run_closed_loop([](uint64_t) { return Bytes(8, 6); }, 0);

  auto& starved = cluster.client(1);
  // Do not let the client retransmit around the cut primary: it would mask
  // the fairness property we want to observe... except retransmission IS
  // the mechanism that informs backups. Keep the default.
  starved.submit(to_bytes("starved-op"));

  const bool served = cluster.sim().run_while([&] {
    return starved.completed_ops() >= 1 ||
           cluster.sim().now() > 120 * kSecond;
  });
  ASSERT_TRUE(served);
  EXPECT_EQ(starved.completed_ops(), 1u);
  EXPECT_GE(cluster.replica(2).view(), 1u);  // the old primary was demoted
}

TEST(Pbft, LanProfileLatencyIsSubMillisecond) {
  auto opts = base_options();
  opts.profile = sim::NetworkProfile::lan();
  Cluster cluster(opts);
  auto& client = cluster.client(0);
  client.run_closed_loop([](uint64_t) { return Bytes(4096, 7); }, 10);
  cluster.sim().run_while([&] { return client.completed_ops() >= 10; });
  const double mean_ms =
      static_cast<double>(client.total_latency()) / 10 / kMillisecond;
  // 5 message delays of ~0.05 ms plus batching delay: well under 2 ms.
  EXPECT_LT(mean_ms, 2.0);
  EXPECT_GT(mean_ms, 0.1);
}

TEST(Pbft, WanProfileLatencyIsHundredsOfMilliseconds) {
  auto opts = base_options();
  opts.profile = sim::NetworkProfile::wan();
  Cluster cluster(opts);
  auto& client = cluster.client(0);
  client.set_retry_timeout(5 * kSecond);
  client.run_closed_loop([](uint64_t) { return Bytes(4096, 8); }, 5);
  cluster.sim().run_while([&] { return client.completed_ops() >= 5; });
  const double mean_ms =
      static_cast<double>(client.total_latency()) / 5 / kMillisecond;
  // 5 hops x 60 ms one-way = ~300 ms, as in the paper's Table III.
  EXPECT_GT(mean_ms, 200.0);
  EXPECT_LT(mean_ms, 600.0);
}

}  // namespace
}  // namespace scab::causal
