// Daemon-layer unit tests: cluster.conf / cluster.keys parsing (including
// every diagnostic the CLIs lean on), atomic file writes, the dealer
// determinism bridge to the in-process harness, and the SIGUSR1 dump
// record's JSON validity against bench/metrics_schema.json's
// required_daemon section — with metric names chosen to stress the
// escaper (quotes, backslashes, control characters).
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "causal/stack.h"
#include "daemon/config.h"
#include "daemon/node.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace scab::daemon {
namespace {

constexpr const char* kGoodConfig = R"(# comment
protocol = cp0
f = 1
group = modp_512
checkpoint_interval = 8
max_batch = 16
max_inflight_batches = 4
client_inflight = 1
client_batch = 1
keys = cluster.keys
replica 0 = 127.0.0.1:21000
replica 1 = 127.0.0.1:21001
replica 2 = 127.0.0.1:21002
replica 3 = 127.0.0.1:21003
client 100 = 127.0.0.1:21100
)";

TEST(ClusterConfigParse, AcceptsWellFormedConfig) {
  std::string err;
  const auto cfg = parse_cluster_config(kGoodConfig, &err);
  ASSERT_TRUE(cfg) << err;
  EXPECT_EQ(cfg->protocol, causal::Protocol::kCp0);
  EXPECT_EQ(cfg->bft.n, 4u);
  EXPECT_EQ(cfg->bft.f, 1u);
  EXPECT_EQ(cfg->bft.checkpoint_interval, 8u);
  EXPECT_EQ(cfg->replicas.at(2).port, 21002);
  EXPECT_EQ(cfg->clients.at(100).ip, "127.0.0.1");
  EXPECT_EQ(cfg->keys_file, "cluster.keys");
}

TEST(ClusterConfigParse, RoundTripsThroughFormatter) {
  std::string err;
  const auto cfg = parse_cluster_config(kGoodConfig, &err);
  ASSERT_TRUE(cfg) << err;
  const auto again = parse_cluster_config(format_cluster_config(*cfg), &err);
  ASSERT_TRUE(again) << err;
  EXPECT_EQ(format_cluster_config(*cfg), format_cluster_config(*again));
}

// Each negative case replaces one aspect of the good config and must be
// rejected with a diagnostic naming the problem (the CLIs print it
// verbatim: "clean diagnostic, non-zero exit" is the contract).
struct Negative {
  const char* name;
  std::string body;
  const char* expect_in_error;
};

std::string replace(std::string body, const std::string& from,
                    const std::string& to) {
  const auto pos = body.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  return body.replace(pos, from.size(), to);
}

TEST(ClusterConfigParse, RejectsBrokenConfigs) {
  const std::string good = kGoodConfig;
  const Negative cases[] = {
      {"bad port (text)",
       replace(good, "replica 3 = 127.0.0.1:21003",
               "replica 3 = 127.0.0.1:port"),
       "invalid port"},
      {"bad port (zero)",
       replace(good, "replica 3 = 127.0.0.1:21003",
               "replica 3 = 127.0.0.1:0"),
       "invalid port"},
      {"bad port (too large)",
       replace(good, "replica 3 = 127.0.0.1:21003",
               "replica 3 = 127.0.0.1:70000"),
       "invalid port"},
      {"missing colon",
       replace(good, "replica 3 = 127.0.0.1:21003", "replica 3 = nowhere"),
       "ip:port"},
      {"duplicate replica id",
       replace(good, "replica 3 = 127.0.0.1:21003",
               "replica 2 = 127.0.0.1:21003"),
       "duplicate replica id 2"},
      {"duplicate client id", good + "client 100 = 127.0.0.1:21101\n",
       "duplicate client id 100"},
      {"gap in replica ids",
       replace(good, "replica 3 = 127.0.0.1:21003",
               "replica 9 = 127.0.0.1:21003"),
       "contiguous"},
      {"f too large for n", replace(good, "f = 1", "f = 2"), "out of range"},
      {"f zero", replace(good, "f = 1", "f = 0"), "out of range"},
      {"f missing", replace(good, "f = 1", "# f elided"), "missing 'f"},
      {"unknown protocol", replace(good, "protocol = cp0", "protocol = cp9"),
       "unknown protocol"},
      {"unknown group", replace(good, "group = modp_512", "group = rsa"),
       "unknown group"},
      {"bad generated group bits",
       replace(good, "group = modp_512", "group = generate:4"),
       "invalid group"},
      {"unknown key", good + "colour = blue\n", "unknown key 'colour'"},
      {"no equals sign", good + "just words\n", "key = value"},
      {"client id in replica space", good + "client 7 = 127.0.0.1:21107\n",
       "client id 7 below"},
      {"keys missing", replace(good, "keys = cluster.keys", "# no keys"),
       "missing 'keys"},
      {"pipelining outside cp0",
       replace(replace(good, "protocol = cp0", "protocol = cp2"),
               "client_inflight = 1", "client_inflight = 4"),
       "requires protocol cp0"},
      {"no replicas", "protocol = cp0\nf = 1\nkeys = k\n", "no 'replica"},
  };
  for (const auto& c : cases) {
    std::string err;
    EXPECT_FALSE(parse_cluster_config(c.body, &err)) << c.name;
    EXPECT_NE(err.find(c.expect_in_error), std::string::npos)
        << c.name << ": got diagnostic '" << err << "'";
  }
}

TEST(DealerSeedParse, RoundTripAndDiagnostics) {
  std::string err;
  const auto seed = parse_dealer_seed(format_dealer_seed(0xdeadbeef), &err);
  ASSERT_TRUE(seed) << err;
  EXPECT_EQ(*seed, 0xdeadbeefu);

  EXPECT_FALSE(parse_dealer_seed("", &err));
  EXPECT_NE(err.find("missing"), std::string::npos);
  EXPECT_FALSE(parse_dealer_seed("dealer_seed = banana\n", &err));
  EXPECT_FALSE(parse_dealer_seed("wrong_key = 1\n", &err));
  EXPECT_FALSE(
      parse_dealer_seed("dealer_seed = 1\ndealer_seed = 2\n", &err));
  EXPECT_NE(err.find("duplicate"), std::string::npos);
}

TEST(ConfigFiles, LoadResolvesKeysRelativeToConfig) {
  const std::string dir = ::testing::TempDir();
  const std::string conf = dir + "/scab_daemon_test.conf";
  const std::string keys = dir + "/scab_daemon_test.keys";
  std::string body = kGoodConfig;
  body = replace(body, "keys = cluster.keys", "keys = scab_daemon_test.keys");
  ASSERT_TRUE(write_file_atomic(conf, body));
  ASSERT_TRUE(write_file_atomic(keys, format_dealer_seed(77)));

  std::string err;
  const auto cfg = load_cluster_config(conf, &err);
  ASSERT_TRUE(cfg) << err;
  EXPECT_EQ(cfg->dealer_seed, 77u);

  // Missing keys file -> diagnostic names the path.
  std::remove(keys.c_str());
  EXPECT_FALSE(load_cluster_config(conf, &err));
  EXPECT_NE(err.find("scab_daemon_test.keys"), std::string::npos);

  std::remove(conf.c_str());
}

TEST(ConfigFiles, AtomicWriteLeavesNoTmpDebris) {
  const std::string path = ::testing::TempDir() + "/scab_atomic_test.txt";
  ASSERT_TRUE(write_file_atomic(path, "one"));
  ASSERT_TRUE(write_file_atomic(path, "two"));
  std::string err;
  const auto body = read_file(path, &err);
  ASSERT_TRUE(body) << err;
  EXPECT_EQ(*body, "two");
  EXPECT_FALSE(read_file(path + ".tmp", &err));
  std::remove(path.c_str());
}

// The determinism bridge: the daemon's StackBundle and the in-process
// harness derive from the same seed_label stream, so two bundles from the
// same config agree on keys and TDH2 material (what lets independently
// started processes talk to each other at all).
TEST(StackBundle, IdenticalAcrossIndependentDerivations) {
  std::string err;
  auto cfg = parse_cluster_config(kGoodConfig, &err);
  ASSERT_TRUE(cfg) << err;
  cfg->dealer_seed = 4242;

  StackBundle one(*cfg);
  StackBundle two(*cfg);
  const Bytes msg = to_bytes("cross-process message");
  const Bytes sig = one.keys().sign(2, msg);
  EXPECT_TRUE(two.keys().verify(2, msg, sig));
  EXPECT_EQ(one.keys().session_key(0, 100), two.keys().session_key(0, 100));
  ASSERT_TRUE(one.material().group.has_value());
  EXPECT_EQ(one.material().group->p(), two.material().group->p());
}

TEST(DumpRecord, ValidatesAgainstDaemonSchemaWithHostileMetricNames) {
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  // Everything required_daemon demands (what a real daemon binds eagerly)…
  for (const char* name :
       {"bft.requests_executed", "bft.batches_proposed",
        "bft.recovery.catchups_completed", "net.rt.send_errors",
        "net.rt.accept_errors", "net.drops.crash", "net.drops.cut",
        "net.drops.tamper"}) {
    metrics.counter(name).inc();
  }
  metrics.gauge("bft.pending_requests").set(3);
  metrics.histogram("bft.batch_size").record(5);
  metrics.histogram("bft.recovery.catchup_ms").record(12);
  // …plus names that must survive JSON escaping.
  metrics.counter("weird\"quoted\"name").inc();
  metrics.counter("back\\slash\\name").inc();
  metrics.counter("control\x01\x1f" "chars\nnewline").inc();
  metrics.gauge("gauge \"g\"").set(-7);

  const std::string record = format_dump_record(
      3, causal::Protocol::kCp0, 21003, 99, metrics, tracer);
  const auto doc = obs::json::parse(record);
  ASSERT_TRUE(doc) << "dump record is not valid JSON: " << record;

  const std::string schema_path =
      std::string(SCAB_SOURCE_DIR) + "/bench/metrics_schema.json";
  std::string err;
  const auto schema_body = read_file(schema_path, &err);
  ASSERT_TRUE(schema_body) << err;
  const auto schema = obs::json::parse(*schema_body);
  ASSERT_TRUE(schema);
  const auto* required = schema->get("required_daemon");
  ASSERT_TRUE(required != nullptr && required->is_array())
      << "bench/metrics_schema.json lost its required_daemon section";
  for (const auto& p : required->as_array()) {
    ASSERT_TRUE(p.is_string());
    EXPECT_NE(obs::json::find_path(*doc, p.as_string()), nullptr)
        << "dump record missing required path " << p.as_string();
  }
  // The hostile names round-tripped.
  const auto* counters = obs::json::find_path(*doc, "metrics/counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->get("weird\"quoted\"name"), nullptr);
  EXPECT_NE(counters->get("back\\slash\\name"), nullptr);
  EXPECT_NE(counters->get("control\x01\x1f" "chars\nnewline"), nullptr);
  EXPECT_EQ(obs::json::find_path(*doc, "node")->as_number(), 3);
  EXPECT_EQ(obs::json::find_path(*doc, "executed")->as_number(), 99);
  EXPECT_EQ(obs::json::find_path(*doc, "protocol")->as_string(), "CP0");
}

}  // namespace
}  // namespace scab::daemon
