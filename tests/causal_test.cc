// Integration tests for the four secure causal protocols (CP0–CP3) on top
// of the PBFT substrate, including Byzantine share corruption, CP1 cleanup
// and amplification, and the front-running attack that motivates the paper.
#include <gtest/gtest.h>

#include "apps/dns.h"
#include "apps/kvstore.h"
#include "apps/trading.h"
#include "bft/client.h"
#include "bft/replica.h"
#include "causal/cp0.h"
#include "causal/cp1.h"
#include "causal/harness.h"

namespace scab::causal {
namespace {

using bft::NodeId;
using sim::kMillisecond;
using sim::kSecond;

struct CaseParam {
  Protocol protocol;
  uint32_t f;
};

std::string case_name(const ::testing::TestParamInfo<CaseParam>& info) {
  return std::string(protocol_name(info.param.protocol)) + "_f" +
         std::to_string(info.param.f);
}

ClusterOptions options_for(Protocol p, uint32_t f) {
  ClusterOptions o;
  o.protocol = p;
  o.bft = bft::BftConfig::for_f(f);
  o.bft.batch_delay = 100 * sim::kMicrosecond;
  o.profile = sim::NetworkProfile::ideal();
  o.seed = 11;
  return o;
}

class CausalProtocolTest : public ::testing::TestWithParam<CaseParam> {};

TEST_P(CausalProtocolTest, RoundTrip) {
  const auto [p, f] = GetParam();
  auto opts = options_for(p, f);
  opts.service_factory = [] { return std::make_unique<apps::KvStore>(); };
  Cluster cluster(opts);

  auto put = cluster.run_one(0, apps::KvStore::put("k", to_bytes("v")));
  ASSERT_TRUE(put.has_value());
  EXPECT_EQ(*put, to_bytes("ok"));
  auto get = cluster.run_one(0, apps::KvStore::get("k"));
  ASSERT_TRUE(get.has_value());
  EXPECT_EQ(*get, to_bytes("v"));
}

TEST_P(CausalProtocolTest, ManyRequestsStateConsistent) {
  const auto [p, f] = GetParam();
  auto opts = options_for(p, f);
  opts.num_clients = 2;
  opts.service_factory = [] { return std::make_unique<apps::KvStore>(); };
  Cluster cluster(opts);

  const uint64_t kOps = 12;
  for (uint32_t c = 0; c < 2; ++c) {
    cluster.client(c).run_closed_loop(
        [c](uint64_t i) {
          return apps::KvStore::put(std::to_string(c) + ":" + std::to_string(i),
                                    to_bytes("x"));
        },
        kOps);
  }
  const bool done = cluster.sim().run_while([&] {
    return cluster.client(0).completed_ops() >= kOps &&
           cluster.client(1).completed_ops() >= kOps;
  });
  ASSERT_TRUE(done);
  for (uint32_t i = 0; i < cluster.n(); ++i) {
    EXPECT_EQ(dynamic_cast<apps::KvStore&>(cluster.service(i)).size(), 2 * kOps)
        << "replica " << i;
  }
}

TEST_P(CausalProtocolTest, ByzantineSharesDoNotBlockRecovery) {
  const auto [p, f] = GetParam();
  if (p == Protocol::kPbft || p == Protocol::kCp1) {
    GTEST_SKIP() << "no share-based reveal phase";
  }
  auto opts = options_for(p, f);
  Cluster cluster(opts);
  // Table IV fault model: f replicas contribute corrupted shares.
  for (uint32_t i = 1; i <= f; ++i) cluster.corrupt_replica_shares(i);

  auto& client = cluster.client(0);
  client.run_closed_loop([](uint64_t i) { return to_bytes("m" + std::to_string(i)); },
                         8);
  const bool done =
      cluster.sim().run_while([&] { return client.completed_ops() >= 8; });
  ASSERT_TRUE(done);
  // All HONEST replicas executed everything.
  EXPECT_EQ(cluster.replica(0).executed_requests(), 8u);
  EXPECT_EQ(cluster.replica(f + 1).executed_requests(), 8u);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CausalProtocolTest,
    ::testing::Values(CaseParam{Protocol::kPbft, 1}, CaseParam{Protocol::kCp0, 1},
                      CaseParam{Protocol::kCp1, 1}, CaseParam{Protocol::kCp2, 1},
                      CaseParam{Protocol::kCp3, 1}, CaseParam{Protocol::kCp0, 2},
                      CaseParam{Protocol::kCp1, 2}, CaseParam{Protocol::kCp2, 2},
                      CaseParam{Protocol::kCp3, 2}),
    case_name);

// ---------------------------------------------------------------------------
// CP0 specifics

TEST(Cp0, ModeledBackendMatchesRealBehaviour) {
  for (bool modeled : {false, true}) {
    auto opts = options_for(Protocol::kCp0, 1);
    opts.cp0_modeled = modeled;
    opts.service_factory = [] { return std::make_unique<apps::KvStore>(); };
    Cluster cluster(opts);
    auto r = cluster.run_one(0, apps::KvStore::put("a", to_bytes("b")));
    ASSERT_TRUE(r.has_value()) << "modeled=" << modeled;
    EXPECT_EQ(*r, to_bytes("ok"));
  }
}

TEST(Cp0, ModeledBackendRejectsOutOfRangeShareIndices) {
  // Regression: the modeled oracle accepted any index with a valid tag, so
  // one sender could fabricate shares at indices n+1, n+2, ... and reach
  // the combine threshold alone.  Valid indices are 1..n.
  crypto::Drbg rng(to_bytes("modeled-idx"));
  ModeledThresholdBackend backend(/*threshold=*/2, /*servers=*/4);
  const Bytes label = to_bytes("L");
  const Bytes ct = backend.encrypt(to_bytes("msg"), label, rng);

  for (uint32_t index : {1u, 2u, 3u, 4u}) {
    const auto share = backend.decryption_share(index, ct, label, rng);
    ASSERT_TRUE(share.has_value());
    EXPECT_TRUE(backend.verify_share(ct, label, *share)) << index;
  }
  for (uint32_t index : {0u, 5u, 6u, 1000u}) {
    const auto share = backend.decryption_share(index, ct, label, rng);
    ASSERT_TRUE(share.has_value());
    EXPECT_FALSE(backend.verify_share(ct, label, *share)) << index;
  }

  // Above-n shares do not count toward the threshold.
  std::vector<Bytes> forged;
  for (uint32_t index : {5u, 6u, 7u}) {
    forged.push_back(*backend.decryption_share(index, ct, label, rng));
  }
  EXPECT_FALSE(backend.combine(ct, label, forged).has_value());
  forged.push_back(*backend.decryption_share(1, ct, label, rng));
  forged.push_back(*backend.decryption_share(2, ct, label, rng));
  EXPECT_TRUE(backend.combine(ct, label, forged).has_value());
}

TEST(Cp0, RequestContentHiddenUntilScheduled) {
  // The BFT payload is a ciphertext: no replica (or observer) sees the
  // plaintext before the reveal phase.  We check the wire: the secret never
  // appears in any client->replica request datagram.
  auto opts = options_for(Protocol::kCp0, 1);
  Cluster cluster(opts);
  const Bytes secret = to_bytes("super-secret-trade-0xdeadbeef");
  bool secret_leaked = false;
  cluster.net().faults().set_tamper(
      [&](NodeId from, NodeId /*to*/, BytesView msg) -> std::optional<Bytes> {
        if (from >= kClientBase) {
          const std::string hay(msg.begin(), msg.end());
          const std::string needle(secret.begin(), secret.end());
          if (hay.find(needle) != std::string::npos) secret_leaked = true;
        }
        return Bytes(msg.begin(), msg.end());
      });
  auto r = cluster.run_one(0, secret);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(secret_leaked);
}

// ---------------------------------------------------------------------------
// CP1 specifics

TEST(Cp1, CrashedClientTentativeRequestIsCleaned) {
  auto opts = options_for(Protocol::kCp1, 1);
  opts.num_clients = 2;
  opts.cp1.cleanup_cycle = 20;
  Cluster cluster(opts);

  auto& crasher =
      dynamic_cast<Cp1ClientProtocol&>(cluster.client_protocol(0));
  crasher.set_crash_before_reveal(true);
  cluster.client(0).submit(to_bytes("never-revealed"));

  // Background traffic advances the delivered-request counter past the
  // cleanup cycle.
  cluster.client(1).run_closed_loop([](uint64_t) { return Bytes(16, 9); }, 40);
  const bool done = cluster.sim().run_while([&] {
    auto& app = dynamic_cast<Cp1ReplicaApp&>(cluster.replica_app(0));
    return app.cleaned_count() >= 1 && app.tentative_count() == 0;
  });
  ASSERT_TRUE(done);
  // Let the cleanup batch reach the backups too.
  cluster.sim().run_until(cluster.sim().now() + 50 * kMillisecond);
  for (uint32_t i = 0; i < cluster.n(); ++i) {
    auto& app = dynamic_cast<Cp1ReplicaApp&>(cluster.replica_app(i));
    EXPECT_EQ(app.cleaned_count(), 1u) << "replica " << i;
    EXPECT_EQ(app.tentative_count(), 0u) << "replica " << i;
  }
  // No view change: the cleanup respected the cycle rule.
  EXPECT_EQ(cluster.replica(1).view_changes_completed(), 0u);
}

TEST(Cp1, PartialRevealIsAmplified) {
  auto opts = options_for(Protocol::kCp1, 1);
  opts.cp1.amplify_delay = 20 * kMillisecond;
  Cluster cluster(opts);

  auto& proto = dynamic_cast<Cp1ClientProtocol&>(cluster.client_protocol(0));
  proto.set_reveal_fanout(1);  // witness reaches a single backup only
  // Disable client retransmission so only amplification can save the day.
  cluster.client(0).set_retry_timeout(600 * kSecond);

  const auto result = cluster.run_one(0, to_bytes("amplified"), 30 * kSecond);
  ASSERT_TRUE(result.has_value());
  // The reveal detour (schedule + amplify delay + reorder) took at least
  // the amplification delay.
  EXPECT_GE(cluster.sim().now(), opts.cp1.amplify_delay);
  EXPECT_EQ(cluster.replica(0).view_changes_completed(), 0u);
}

TEST(Cp1, TentativeRequestsSurviveUntilCycle) {
  // Cleanup must NOT fire before the cycle elapses (correct clients with
  // slow reveals are safe).
  auto opts = options_for(Protocol::kCp1, 1);
  opts.num_clients = 2;
  opts.cp1.cleanup_cycle = 1000;
  Cluster cluster(opts);

  auto& crasher = dynamic_cast<Cp1ClientProtocol&>(cluster.client_protocol(0));
  crasher.set_crash_before_reveal(true);
  cluster.client(0).submit(to_bytes("pending"));

  cluster.client(1).run_closed_loop([](uint64_t) { return Bytes(16, 1); }, 50);
  cluster.sim().run_while(
      [&] { return cluster.client(1).completed_ops() >= 50; });

  auto& app = dynamic_cast<Cp1ReplicaApp&>(cluster.replica_app(0));
  EXPECT_EQ(app.cleaned_count(), 0u);
  EXPECT_EQ(app.tentative_count(), 1u);
}

// ---------------------------------------------------------------------------
// The front-running attack (paper §I): a Byzantine replica reads a pending
// request and a colluding client gets a derived request ordered first.

// Plain PBFT: the adversary wins — the honest client's name is stolen.
TEST(FrontRunning, SucceedsAgainstPlainPbft) {
  auto opts = options_for(Protocol::kPbft, 1);
  opts.num_clients = 2;
  opts.service_factory = [] { return std::make_unique<apps::DnsRegistry>(); };
  Cluster cluster(opts);

  const NodeId honest = Cluster::client_id(0);
  const NodeId corrupt = Cluster::client_id(1);

  // The honest client's link to the primary is slow (modeled as a cut that
  // heals); the Byzantine backup that DID receive the cleartext request
  // tells its colluding client, which immediately registers the same name.
  cluster.net().faults().cut(honest, 0);
  cluster.client(0).submit(apps::DnsRegistry::register_name("gold.example"));
  cluster.sim().run_until(cluster.sim().now() + 5 * kMillisecond);

  // The colluding client read the name from the backup's copy (plain PBFT
  // payloads are cleartext) and front-runs.
  std::optional<Bytes> stolen =
      cluster.run_one(1, apps::DnsRegistry::register_name("gold.example"));
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(*stolen, to_bytes("registered"));

  cluster.net().faults().heal(honest, 0);
  const bool honest_done = cluster.sim().run_while(
      [&] { return cluster.client(0).completed_ops() >= 1; });
  ASSERT_TRUE(honest_done);
  // The honest client lost the race: the registry records the thief.
  auto& dns = dynamic_cast<apps::DnsRegistry&>(cluster.service(0));
  EXPECT_EQ(dns.owner("gold.example"), corrupt);
  EXPECT_EQ(cluster.client(0).last_result(),
            to_bytes("taken:" + std::to_string(corrupt)));
}

// CP1: the adversary sees only a commitment.  Even replaying the honest
// commitment under its own identity is useless — it cannot open it, the
// copied request is eventually cleaned, and the honest client gets the
// name.
TEST(FrontRunning, FailsAgainstCp1) {
  auto opts = options_for(Protocol::kCp1, 1);
  opts.num_clients = 2;
  opts.cp1.cleanup_cycle = 10;
  opts.service_factory = [] { return std::make_unique<apps::DnsRegistry>(); };
  Cluster cluster(opts);

  const NodeId honest = Cluster::client_id(0);
  const NodeId corrupt = Cluster::client_id(1);

  // Capture the honest client's schedule payload off the wire (this is all
  // a Byzantine replica can see: the commitment).
  Bytes observed_schedule;
  cluster.net().faults().set_tamper(
      [&](NodeId from, NodeId /*to*/, BytesView msg) -> std::optional<Bytes> {
        if (from == honest && observed_schedule.empty()) {
          observed_schedule.assign(msg.begin(), msg.end());
        }
        return Bytes(msg.begin(), msg.end());
      });

  // Slow the honest client's reveal path to give the adversary every
  // advantage: cut the link to the primary during the schedule phase.
  cluster.net().faults().cut(honest, 0);
  cluster.client(0).submit(apps::DnsRegistry::register_name("gold.example"));
  cluster.sim().run_until(cluster.sim().now() + 5 * kMillisecond);
  ASSERT_FALSE(observed_schedule.empty());

  // The adversary replays the observed commitment as its own request.  The
  // envelope was MAC'd for a specific replica by the honest client, so the
  // colluding client must re-wrap the COMMITMENT under its own identity —
  // the strongest thing it can do.
  {
    auto env = bft::open_envelope(cluster.keys(), 1, observed_schedule);
    // The observation was of the copy sent to replica 1.
    ASSERT_TRUE(env.has_value());
    auto req = bft::ClientRequestMsg::parse(env->body);
    ASSERT_TRUE(req.has_value());
    // Re-send the same commitment payload under the corrupt identity.
    bft::ClientRequestMsg evil;
    evil.client_seq = 1;
    evil.payload = req->payload;
    const Bytes body = evil.serialize();
    for (NodeId r = 0; r < cluster.n(); ++r) {
      cluster.net().send(corrupt, r,
                         bft::seal_envelope(cluster.keys(),
                                            bft::Channel::kClientRequest,
                                            corrupt, r, body));
    }
  }
  cluster.sim().run_until(cluster.sim().now() + 20 * kMillisecond);

  // Heal; the honest client retransmits, schedules, reveals, executes.
  cluster.net().faults().heal(honest, 0);
  const bool honest_done = cluster.sim().run_while(
      [&] { return cluster.client(0).completed_ops() >= 1; });
  ASSERT_TRUE(honest_done);

  auto& dns = dynamic_cast<apps::DnsRegistry&>(cluster.service(0));
  EXPECT_EQ(dns.owner("gold.example"), honest);
  EXPECT_EQ(cluster.client(0).last_result(), to_bytes("registered"));
}

// CP2: shares travel over private channels; the commitment ordered by the
// BFT reveals nothing.  The honest client's trade executes at the
// unmanipulated price.
TEST(FrontRunning, FailsAgainstCp2) {
  auto opts = options_for(Protocol::kCp2, 1);
  opts.num_clients = 2;
  opts.service_factory = [] { return std::make_unique<apps::TradingService>(); };
  Cluster cluster(opts);

  const Bytes secret_op = apps::TradingService::buy("ACME", 100);
  bool leaked = false;
  cluster.net().faults().set_tamper(
      [&](NodeId from, NodeId /*to*/, BytesView msg) -> std::optional<Bytes> {
        if (from == Cluster::client_id(0)) {
          // AEAD protects the shares: the op must not appear on the wire.
          const std::string hay(msg.begin(), msg.end());
          const std::string needle(reinterpret_cast<const char*>(secret_op.data() + 1),
                                   4);  // "ACME"
          if (hay.find(needle) != std::string::npos) leaked = true;
        }
        return Bytes(msg.begin(), msg.end());
      });

  auto fill = cluster.run_one(0, secret_op);
  ASSERT_TRUE(fill.has_value());
  EXPECT_FALSE(leaked);
  // Executed at the initial, unmanipulated price.
  EXPECT_EQ(*fill, to_bytes("filled:100@" +
                            std::to_string(apps::TradingService::kInitialPriceCents)));
}

}  // namespace
}  // namespace scab::causal
