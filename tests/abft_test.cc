// Tests for the asynchronous consensus-based engine: the threshold common
// coin, the RBC/ABA/ACS pipeline, and — the paper's generality claim made
// executable — every causal protocol (CP0–CP3) running UNCHANGED on top of
// it.
#include <gtest/gtest.h>

#include "abft/coin.h"
#include "apps/kvstore.h"
#include "abft/replica.h"
#include "bft/client.h"
#include "causal/harness.h"

namespace scab {
namespace {

using namespace scab::abft;
using causal::Cluster;
using causal::ClusterOptions;
using causal::Engine;
using causal::Protocol;
using sim::kSecond;

// ---------------------------------------------------------------------------
// Threshold common coin

class CoinTest : public ::testing::Test {
 protected:
  CoinTest() : rng_(to_bytes("coin-test")) {
    crypto::Drbg grng(to_bytes("coin-grp"));
    group_ = crypto::ModGroup::generate(64, grng);
    keys_ = coin_keygen(group_, 2, 4, rng_);
  }
  crypto::Drbg rng_;
  crypto::ModGroup group_;
  CoinKeyMaterial keys_;
};

TEST_F(CoinTest, SharesVerifyAndCombineConsistently) {
  const Bytes name = to_bytes("epoch:3/proposer:1/round:0");
  std::vector<CoinShare> shares;
  for (const auto& key : keys_.shares) {
    CoinShare s = coin_share(keys_.pk, key, name, rng_);
    EXPECT_TRUE(coin_verify_share(keys_.pk, name, s));
    shares.push_back(std::move(s));
  }
  // Any threshold subset yields the SAME bit (that is what makes it common).
  const auto c01 = coin_combine(keys_.pk, name,
                                std::vector<CoinShare>{shares[0], shares[1]});
  const auto c23 = coin_combine(keys_.pk, name,
                                std::vector<CoinShare>{shares[2], shares[3]});
  const auto c13 = coin_combine(keys_.pk, name,
                                std::vector<CoinShare>{shares[1], shares[3]});
  ASSERT_TRUE(c01 && c23 && c13);
  EXPECT_EQ(*c01, *c23);
  EXPECT_EQ(*c01, *c13);
}

TEST_F(CoinTest, DistinctNamesGiveIndependentBits) {
  // At least one of 32 coin names must differ from the first (probability
  // of failure 2^-31 — and deterministic given the fixed seed).
  const auto first = [&] {
    std::vector<CoinShare> s{coin_share(keys_.pk, keys_.shares[0],
                                        to_bytes("name-0"), rng_),
                             coin_share(keys_.pk, keys_.shares[1],
                                        to_bytes("name-0"), rng_)};
    return *coin_combine(keys_.pk, to_bytes("name-0"), s);
  }();
  bool saw_other = false;
  for (int i = 1; i < 32 && !saw_other; ++i) {
    const Bytes name = to_bytes("name-" + std::to_string(i));
    std::vector<CoinShare> s{coin_share(keys_.pk, keys_.shares[0], name, rng_),
                             coin_share(keys_.pk, keys_.shares[1], name, rng_)};
    saw_other = *coin_combine(keys_.pk, name, s) != first;
  }
  EXPECT_TRUE(saw_other);
}

TEST_F(CoinTest, ForgedSharesRejected) {
  const Bytes name = to_bytes("N");
  CoinShare s = coin_share(keys_.pk, keys_.shares[0], name, rng_);
  {
    CoinShare bad = s;
    bad.sigma = group_.mul(bad.sigma, group_.g());
    EXPECT_FALSE(coin_verify_share(keys_.pk, name, bad));
  }
  {
    CoinShare bad = s;
    bad.index = 2;  // claims another server's key
    EXPECT_FALSE(coin_verify_share(keys_.pk, name, bad));
  }
  // A share for one name does not verify for another (no pre-computation).
  EXPECT_FALSE(coin_verify_share(keys_.pk, to_bytes("other"), s));
  // Too few shares cannot combine.
  EXPECT_FALSE(coin_combine(keys_.pk, name, std::vector<CoinShare>{s}).has_value());
  EXPECT_FALSE(coin_combine(keys_.pk, name, std::vector<CoinShare>{s, s}).has_value());
}

TEST_F(CoinTest, SerializeRoundTrip) {
  const Bytes name = to_bytes("wire");
  const CoinShare s = coin_share(keys_.pk, keys_.shares[2], name, rng_);
  const auto parsed = CoinShare::parse(group_, s.serialize(group_));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(coin_verify_share(keys_.pk, name, *parsed));
  EXPECT_FALSE(CoinShare::parse(group_, Bytes{1, 2, 3}).has_value());
}

// ---------------------------------------------------------------------------
// Async atomic broadcast + causal protocols

ClusterOptions async_options(Protocol p, uint32_t f = 1) {
  ClusterOptions o;
  o.protocol = p;
  o.engine = Engine::kAsyncEngine;
  o.bft = bft::BftConfig::for_f(f);
  o.profile = sim::NetworkProfile::ideal();
  o.seed = 31;
  o.service_factory = [] { return std::make_unique<apps::KvStore>(); };
  return o;
}

class AsyncEngineTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(AsyncEngineTest, RoundTripOnAsyncEngine) {
  Cluster cluster(async_options(GetParam()));
  auto put = cluster.run_one(0, apps::KvStore::put("k", to_bytes("v")));
  ASSERT_TRUE(put.has_value());
  EXPECT_EQ(*put, to_bytes("ok"));
  auto get = cluster.run_one(0, apps::KvStore::get("k"));
  ASSERT_TRUE(get.has_value());
  EXPECT_EQ(*get, to_bytes("v"));
}

TEST_P(AsyncEngineTest, TotalOrderAcrossReplicas) {
  auto opts = async_options(GetParam());
  opts.num_clients = 2;
  Cluster cluster(opts);
  const uint64_t kOps = 8;
  for (uint32_t c = 0; c < 2; ++c) {
    cluster.client(c).run_closed_loop(
        [c](uint64_t i) {
          return apps::KvStore::put(std::to_string(c) + ":" + std::to_string(i),
                                    to_bytes("x"));
        },
        kOps);
  }
  const bool done = cluster.sim().run_while([&] {
    return (cluster.client(0).completed_ops() >= kOps &&
            cluster.client(1).completed_ops() >= kOps) ||
           cluster.sim().now() > 600 * kSecond;
  });
  ASSERT_TRUE(done);
  // Drain stragglers, then every replica holds identical state.
  cluster.sim().run_until(cluster.sim().now() + sim::kSecond);
  for (uint32_t i = 0; i < cluster.n(); ++i) {
    EXPECT_EQ(dynamic_cast<apps::KvStore&>(cluster.service(i)).size(), 2 * kOps)
        << "replica " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, AsyncEngineTest,
                         ::testing::Values(Protocol::kPbft, Protocol::kCp0,
                                           Protocol::kCp1, Protocol::kCp2,
                                           Protocol::kCp3),
                         [](const auto& info) {
                           return std::string(causal::protocol_name(info.param));
                         });

TEST(AsyncEngine, SurvivesCrashedReplica) {
  auto opts = async_options(Protocol::kPbft);
  Cluster cluster(opts);
  cluster.net().faults().crash(3);  // f = 1 tolerated, no view change needed
  auto r = cluster.run_one(0, apps::KvStore::put("a", to_bytes("b")), 120 * kSecond);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, to_bytes("ok"));
}

TEST(AsyncEngine, F2Deployment) {
  Cluster cluster(async_options(Protocol::kCp2, 2));
  auto r = cluster.run_one(0, apps::KvStore::put("x", to_bytes("y")), 120 * kSecond);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, to_bytes("ok"));
}

TEST(AsyncEngine, EpochsAdvance) {
  Cluster cluster(async_options(Protocol::kPbft));
  auto& client = cluster.client(0);
  client.run_closed_loop([](uint64_t i) { return Bytes(16, static_cast<uint8_t>(i)); },
                         5);
  cluster.sim().run_while([&] {
    return client.completed_ops() >= 5 || cluster.sim().now() > 600 * kSecond;
  });
  EXPECT_EQ(client.completed_ops(), 5u);
  EXPECT_GE(cluster.async_replica(0).epochs_completed(), 5u);
  EXPECT_GE(cluster.async_replica(0).aba_rounds_run(), 5u);
}

}  // namespace
}  // namespace scab
