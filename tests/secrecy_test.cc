// Message-secrecy tests (the paper's §V definitions, checked on the wire):
// for every secure causal protocol, the request plaintext must not appear
// in ANY datagram before the replicas schedule it — not in client
// requests, not in BFT traffic, not in causal-channel share exchanges
// before the schedule commits.
//
// The observer is the network tamper hook, i.e. exactly what a Byzantine
// replica (or the adversary routing the network) can see.
#include <gtest/gtest.h>

#include "bft/client.h"
#include "bft/replica.h"
#include "causal/cp0.h"
#include "causal/cp1.h"
#include "causal/harness.h"
#include "threshenc/tdh2.h"

namespace scab::causal {
namespace {

using bft::NodeId;
using sim::kMillisecond;

struct SecrecyCase {
  Protocol protocol;
  bool expect_hidden;
};

std::string secrecy_case_name(const ::testing::TestParamInfo<SecrecyCase>& i) {
  return protocol_name(i.param.protocol);
}

class WireSecrecyTest : public ::testing::TestWithParam<SecrecyCase> {};

// Scans every datagram for the secret until the request completes.
TEST_P(WireSecrecyTest, PlaintextNeverOnTheWireBeforeReveal) {
  const auto [protocol, expect_hidden] = GetParam();
  ClusterOptions opts;
  opts.protocol = protocol;
  opts.bft = bft::BftConfig::for_f(1);
  opts.profile = sim::NetworkProfile::ideal();
  opts.seed = 5;
  Cluster cluster(opts);

  // A high-entropy marker that cannot appear by chance.
  const Bytes secret = crypto::Drbg(to_bytes("marker")).generate(24);
  const std::string needle(secret.begin(), secret.end());

  // Track the first time any replica could have delivered the schedule
  // step; before that, the secret must be invisible (for the causal
  // protocols).  For CP1/CP2/CP3 the reveal itself eventually exposes the
  // plaintext to REPLICAS (that is the point), so we only scan traffic
  // originating at the client.
  bool leaked_from_client = false;
  cluster.net().faults().set_tamper(
      [&](NodeId from, NodeId /*to*/, BytesView msg) -> std::optional<Bytes> {
        if (from >= kClientBase) {
          const std::string hay(msg.begin(), msg.end());
          if (hay.find(needle) != std::string::npos) {
            // CP1's reveal legitimately contains the plaintext — but only
            // AFTER the schedule step was committed; by then the request's
            // position in the total order is fixed.  The schedule phase
            // itself must be clean, which we approximate by requiring that
            // at least one replica has the commitment as tentative.
            if (protocol == Protocol::kCp1) {
              auto& app =
                  dynamic_cast<Cp1ReplicaApp&>(cluster.replica_app(1));
              if (app.tentative_count() > 0) {
                return Bytes(msg.begin(), msg.end());  // post-schedule: fine
              }
            }
            leaked_from_client = true;
          }
        }
        return Bytes(msg.begin(), msg.end());
      });

  const auto result = cluster.run_one(0, secret);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(leaked_from_client, !expect_hidden);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, WireSecrecyTest,
    ::testing::Values(SecrecyCase{Protocol::kPbft, false},  // cleartext: leaks
                      SecrecyCase{Protocol::kCp0, true},
                      SecrecyCase{Protocol::kCp1, true},
                      SecrecyCase{Protocol::kCp2, true},
                      SecrecyCase{Protocol::kCp3, true}),
    secrecy_case_name);

// The replica-to-replica share exchange of CP2/CP3 is ALSO private
// (authenticated and private channels, §V-D): a wire observer cannot
// reassemble the secret from reveal traffic either.
TEST(WireSecrecy, ShareExchangeIsEncrypted) {
  for (Protocol p : {Protocol::kCp2, Protocol::kCp3}) {
    ClusterOptions opts;
    opts.protocol = p;
    opts.bft = bft::BftConfig::for_f(1);
    opts.profile = sim::NetworkProfile::ideal();
    Cluster cluster(opts);

    const Bytes secret = crypto::Drbg(to_bytes("m2")).generate(24);
    const std::string needle(secret.begin(), secret.end());
    bool leaked_anywhere = false;
    cluster.net().faults().set_tamper(
        [&](NodeId, NodeId, BytesView msg) -> std::optional<Bytes> {
          const std::string hay(msg.begin(), msg.end());
          if (hay.find(needle) != std::string::npos) leaked_anywhere = true;
          return Bytes(msg.begin(), msg.end());
        });
    const auto result = cluster.run_one(0, secret);
    ASSERT_TRUE(result.has_value()) << protocol_name(p);
    // Shares travel AEAD-sealed and the secret is never reassembled on the
    // wire (only inside replicas).  Even the *shares* of the secret are
    // high-entropy field elements, but the strongest observable claim is
    // simply: the plaintext never appears in any datagram.
    EXPECT_FALSE(leaked_anywhere) << protocol_name(p);
  }
}

// The CKPS alternation: a replica must never execute (reveal) a request
// whose schedule step has not committed.  We check the observable
// consequence: with the client's reveal suppressed entirely, no execution
// happens even though every replica holds the plaintext-bearing share
// messages (CP2's shares arrive before the schedule commits).
TEST(ScheduleRevealAlternation, SharesAloneDoNotExecute) {
  ClusterOptions opts;
  opts.protocol = Protocol::kCp2;
  opts.bft = bft::BftConfig::for_f(1);
  opts.profile = sim::NetworkProfile::ideal();
  Cluster cluster(opts);

  // Drop the client's REQUEST channel messages (the schedule step) but let
  // the causal-channel share distribution through.
  cluster.net().faults().set_tamper(
      [&](NodeId from, NodeId to, BytesView msg) -> std::optional<Bytes> {
        if (from != Cluster::client_id(0)) return Bytes(msg.begin(), msg.end());
        auto env = bft::open_envelope(cluster.keys(), to, msg);
        if (env && env->channel == bft::Channel::kClientRequest) {
          return std::nullopt;  // schedule never happens
        }
        return Bytes(msg.begin(), msg.end());
      });

  cluster.client(0).submit(to_bytes("sharded but never scheduled"));
  cluster.client(0).set_retry_timeout(600 * sim::kSecond);
  cluster.sim().run_until(cluster.sim().now() + 200 * kMillisecond);

  for (uint32_t i = 0; i < cluster.n(); ++i) {
    auto& echo = dynamic_cast<EchoService&>(cluster.service(i));
    EXPECT_EQ(echo.executed(), 0u) << "replica " << i;
  }
}

}  // namespace
}  // namespace scab::causal
