// Property-style sweeps over the TDH2 threshold cryptosystem: random
// messages, random labels, varying group sizes and thresholds — the
// invariants (round-trip, label binding, subset-independence, consistency
// of decryptions) must hold everywhere, not just on the happy path of
// tdh2_test.cc.
#include <gtest/gtest.h>

#include "threshenc/tdh2.h"

namespace scab::threshenc {
namespace {

using crypto::Drbg;
using crypto::ModGroup;

struct SweepParam {
  std::size_t group_bits;
  uint32_t t;
  uint32_t n;
};

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return "g" + std::to_string(info.param.group_bits) + "t" +
         std::to_string(info.param.t) + "n" + std::to_string(info.param.n);
}

class Tdh2PropertyTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  Tdh2PropertyTest() : rng_(to_bytes("tdh2-prop")) {
    const auto [bits, t, n] = GetParam();
    Drbg grng(to_bytes("tdh2-prop-group-" + std::to_string(bits)));
    group_ = ModGroup::generate(bits, grng);
    keys_ = tdh2_keygen(group_, t, n, rng_);
  }

  Drbg rng_;
  ModGroup group_;
  Tdh2KeyMaterial keys_;
};

TEST_P(Tdh2PropertyTest, RoundTripWithRandomMessagesAndLabels) {
  const auto [bits, t, n] = GetParam();
  for (int trial = 0; trial < 4; ++trial) {
    const Bytes msg = rng_.generate(kTdh2MessageSize);
    const Bytes label = rng_.generate(1 + rng_.uniform(40));
    const auto ct = tdh2_encrypt(keys_.pk, msg, label, rng_);
    ASSERT_TRUE(tdh2_verify_ciphertext(keys_.pk, ct, label));

    // A random t-subset of servers decrypts.
    std::vector<uint32_t> order(n);
    for (uint32_t i = 0; i < n; ++i) order[i] = i;
    for (uint32_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng_.uniform(i)]);
    }
    std::vector<Tdh2DecryptionShare> shares;
    for (uint32_t i = 0; i < t; ++i) {
      auto s = tdh2_share_decrypt(keys_.pk, keys_.shares[order[i]], ct, label,
                                  rng_);
      ASSERT_TRUE(s.has_value());
      ASSERT_TRUE(tdh2_verify_share(keys_.pk, ct, label, *s));
      shares.push_back(std::move(*s));
    }
    EXPECT_EQ(tdh2_combine(keys_.pk, ct, label, shares), msg) << "trial " << trial;
  }
}

TEST_P(Tdh2PropertyTest, CiphertextsAreNonDeterministic) {
  const Bytes msg = rng_.generate(kTdh2MessageSize);
  const Bytes label = to_bytes("L");
  const auto c1 = tdh2_encrypt(keys_.pk, msg, label, rng_);
  const auto c2 = tdh2_encrypt(keys_.pk, msg, label, rng_);
  EXPECT_NE(c1.serialize(group_), c2.serialize(group_));
}

TEST_P(Tdh2PropertyTest, LabelMutationAlwaysInvalidates) {
  const Bytes msg = rng_.generate(kTdh2MessageSize);
  const Bytes label = rng_.generate(12);
  const auto ct = tdh2_encrypt(keys_.pk, msg, label, rng_);
  for (std::size_t i = 0; i < label.size(); ++i) {
    Bytes mutated = label;
    mutated[i] ^= static_cast<uint8_t>(1 + rng_.uniform(255));
    EXPECT_FALSE(tdh2_verify_ciphertext(keys_.pk, ct, mutated)) << "byte " << i;
  }
  // Extension/truncation fail too.
  Bytes longer = label;
  longer.push_back(0);
  EXPECT_FALSE(tdh2_verify_ciphertext(keys_.pk, ct, longer));
  EXPECT_FALSE(tdh2_verify_ciphertext(
      keys_.pk, ct, BytesView(label.data(), label.size() - 1)));
}

TEST_P(Tdh2PropertyTest, ConsistencyOfDecryptionsAcrossRandomSubsets) {
  // "Consistency of decryptions" (§IV-A): any two valid t-subsets agree.
  const auto [bits, t, n] = GetParam();
  if (t >= n) GTEST_SKIP() << "needs two distinct subsets";
  const Bytes msg = rng_.generate(kTdh2MessageSize);
  const Bytes label = to_bytes("consistency");
  const auto ct = tdh2_encrypt(keys_.pk, msg, label, rng_);

  std::vector<Tdh2DecryptionShare> all;
  for (uint32_t i = 0; i < n; ++i) {
    all.push_back(
        *tdh2_share_decrypt(keys_.pk, keys_.shares[i], ct, label, rng_));
  }
  const std::vector<Tdh2DecryptionShare> head(all.begin(), all.begin() + t);
  const std::vector<Tdh2DecryptionShare> tail(all.end() - t, all.end());
  const auto m1 = tdh2_combine(keys_.pk, ct, label, head);
  const auto m2 = tdh2_combine(keys_.pk, ct, label, tail);
  ASSERT_TRUE(m1 && m2);
  EXPECT_EQ(*m1, *m2);
  EXPECT_EQ(*m1, msg);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Tdh2PropertyTest,
                         ::testing::Values(SweepParam{48, 1, 4},
                                           SweepParam{64, 2, 4},
                                           SweepParam{64, 3, 7},
                                           SweepParam{96, 4, 10},
                                           SweepParam{64, 4, 4}),
                         sweep_name);

}  // namespace
}  // namespace scab::threshenc
