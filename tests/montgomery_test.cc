// Cross-checks the Montgomery layer against the schoolbook Bignum path:
// the two implementations must agree bit-for-bit on random inputs at both
// benchmark modulus sizes (512 and 1024 bits), plus known-answer and
// edge-case coverage for the form conversions and the joint-window
// exponentiations that TDH2 verification leans on.
#include "crypto/montgomery.h"

#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "crypto/modgroup.h"

namespace scab::crypto {
namespace {

TEST(Montgomery, RejectsEvenOrTrivialModulus) {
  EXPECT_THROW(Montgomery(Bignum(0)), std::invalid_argument);
  EXPECT_THROW(Montgomery(Bignum(1)), std::invalid_argument);
  EXPECT_THROW(Montgomery(Bignum(10)), std::invalid_argument);
}

TEST(Montgomery, ToFromMontRoundTrip) {
  const Montgomery m(Bignum::from_hex("ffffffffffffffc5"));  // prime < 2^64
  EXPECT_EQ(m.from_mont(m.one()), Bignum(1));
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{2}, ~uint64_t{0}}) {
    EXPECT_EQ(m.from_mont(m.to_mont(Bignum(v))), Bignum(v) % m.modulus());
  }
  // to_mont reduces unnormalized inputs.
  const Bignum big = Bignum::from_hex("123456789abcdef0123456789abcdef0");
  EXPECT_EQ(m.from_mont(m.to_mont(big)), big % m.modulus());
}

TEST(Montgomery, KnownAnswerSmallModulus) {
  // 3^5 = 243 = 2*97 + 49 mod 97.
  const Montgomery m(Bignum(97));
  EXPECT_EQ(m.from_mont(m.exp(m.to_mont(Bignum(3)), Bignum(5))), Bignum(49));
  // Fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(m.from_mont(m.exp(m.to_mont(Bignum(5)), Bignum(96))), Bignum(1));
  // e = 0 gives the identity, even for base 0.
  EXPECT_EQ(m.from_mont(m.exp(m.to_mont(Bignum(0)), Bignum(0))), Bignum(1));
}

TEST(Montgomery, FermatInFixedGroups) {
  // Subgroup-order known answers in the shipped groups: g^q = 1 mod p and
  // g^(p-1) = 1 mod p (g = 2 in both MODP groups).
  for (const ModGroup& grp :
       {ModGroup::modp_512(), ModGroup::modp_1024()}) {
    const Montgomery& m = grp.mont();
    const Montgomery::Limbs g = m.to_mont(grp.g());
    EXPECT_EQ(m.from_mont(m.exp(g, grp.q())), Bignum(1));
    EXPECT_EQ(m.from_mont(m.exp(g, grp.p() - Bignum(1))), Bignum(1));
    EXPECT_EQ(grp.exp(grp.g(), grp.q()), Bignum(1));
  }
}

// Property sweep over several deterministic seeds, at both benchmark
// modulus widths.  ISSUE acceptance: old (schoolbook mod_exp/mod_mul) and
// new (Montgomery) paths must agree on random inputs at 512 and 1024 bits.
class MontgomeryCrossCheckTest : public ::testing::TestWithParam<int> {
 protected:
  Drbg rng_{to_bytes("mont-xcheck-" + std::to_string(GetParam()))};
};

TEST_P(MontgomeryCrossCheckTest, AgreesWithSchoolbookAtBenchmarkSizes) {
  for (const ModGroup& grp :
       {ModGroup::modp_512(), ModGroup::modp_1024()}) {
    const Montgomery& m = grp.mont();
    for (int i = 0; i < 4; ++i) {
      const Bignum a = random_nonzero_below(grp.p(), rng_);
      const Bignum b = random_nonzero_below(grp.p(), rng_);
      const Bignum x = grp.random_exponent(rng_);
      const Bignum y = grp.random_exponent(rng_);
      // Multiplication and exponentiation against the old path.
      EXPECT_EQ(m.from_mont(m.mul(m.to_mont(a), m.to_mont(b))),
                mod_mul(a, b, grp.p()));
      EXPECT_EQ(m.from_mont(m.exp(m.to_mont(a), x)), mod_exp(a, x, grp.p()));
      EXPECT_EQ(grp.exp(a, x), mod_exp(a, x, grp.p()));
      // Fixed-base table exp matches the generic path.
      const Montgomery::Table table = m.make_table(m.to_mont(a));
      EXPECT_EQ(m.from_mont(m.exp(table, x)), mod_exp(a, x, grp.p()));
      // Shamir's trick matches two separate exponentiations.
      EXPECT_EQ(grp.multi_exp(a, x, b, y),
                mod_mul(mod_exp(a, x, grp.p()), mod_exp(b, y, grp.p()),
                        grp.p()));
    }
  }
}

TEST_P(MontgomeryCrossCheckTest, AgreesWithSchoolbookAtRandomOddModuli) {
  // Odd (not necessarily prime) moduli of awkward widths, including exact
  // limb boundaries, to exercise the generic CIOS path.
  for (std::size_t bits : {63u, 64u, 65u, 127u, 193u, 512u, 1024u}) {
    Bignum n = random_below(Bignum(1) << bits, rng_);
    if (!n.is_odd()) n = n + Bignum(1);
    if (n <= Bignum(1)) n = Bignum(3);
    const Montgomery m(n);
    for (int i = 0; i < 3; ++i) {
      const Bignum a = random_below(n, rng_);
      const Bignum b = random_below(n, rng_);
      const Bignum e = random_below(n, rng_);
      EXPECT_EQ(m.from_mont(m.mul(m.to_mont(a), m.to_mont(b))),
                mod_mul(a, b, n));
      EXPECT_EQ(m.from_mont(m.exp(m.to_mont(a), e)), mod_exp(a, e, n));
    }
  }
}

TEST_P(MontgomeryCrossCheckTest, GroupOpsMatchSchoolbookInSmallGroup) {
  Drbg grng(to_bytes("mont-group-" + std::to_string(GetParam())));
  const ModGroup grp = ModGroup::generate(48, grng);
  for (int i = 0; i < 8; ++i) {
    const Bignum a = grp.exp(grp.g(), grp.random_exponent(rng_));
    const Bignum b = grp.exp(grp.gbar(), grp.random_exponent(rng_));
    const Bignum x = grp.random_exponent(rng_);
    const Bignum y = grp.random_exponent(rng_);
    EXPECT_EQ(grp.mul(a, b), mod_mul(a, b, grp.p()));
    EXPECT_EQ(grp.exp(a, x), mod_exp(a, x, grp.p()));
    // inv is the true inverse.
    EXPECT_EQ(grp.mul(a, grp.inv(a)), Bignum(1));
    // exp_ratio(a, x, b, y) = a^x * (b^y)^{-1} for order-q b.
    EXPECT_EQ(grp.exp_ratio(a, x, b, y),
              grp.mul(grp.exp(a, x), grp.inv(grp.exp(b, y))));
    // Subgroup membership agrees with a schoolbook q-th power check.
    EXPECT_TRUE(grp.is_element(a));
    EXPECT_EQ(grp.is_element(a + Bignum(1)),
              mod_exp(a + Bignum(1), grp.q(), grp.p()) == Bignum(1));
    // inv_mod_q over the exponent field.
    if (!x.is_zero()) {
      EXPECT_EQ(mod_mul(x, grp.inv_mod_q(x), grp.q()), Bignum(1));
    }
  }
}

TEST_P(MontgomeryCrossCheckTest, CachedFixedBaseMatchesUncached) {
  Drbg grng(to_bytes("mont-cache-" + std::to_string(GetParam())));
  ModGroup grp = ModGroup::generate(48, grng);
  const Bignum h = grp.exp(grp.g(), grp.random_exponent(rng_));
  const Bignum x = grp.random_exponent(rng_);
  const Bignum before = grp.exp(h, x);
  grp.cache_fixed_base(h);
  EXPECT_EQ(grp.exp(h, x), before);
  // Copies share the cache (the group travels by value in Tdh2PublicKey).
  const ModGroup copy = grp;
  EXPECT_EQ(copy.exp(h, x), before);
}

TEST_P(MontgomeryCrossCheckTest, ManyTermMultiExpMatchesProductOfExps) {
  // The many-term multi_exp picks Straus for small n and Pippenger buckets
  // for large n; both regimes must agree with the product of individual
  // exponentiations, across full-width and short (batch-style) exponents.
  const ModGroup grp = ModGroup::modp_512();
  for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                              std::size_t{40}}) {
    for (const std::size_t exp_bytes : {std::size_t{16}, std::size_t{64}}) {
      std::vector<Bignum> bases, exps;
      Bignum expect(1);
      for (std::size_t i = 0; i < n; ++i) {
        bases.push_back(random_nonzero_below(grp.p(), rng_));
        exps.push_back(Bignum::from_bytes_be(rng_.generate(exp_bytes)));
        expect = mod_mul(expect, mod_exp(bases[i], exps[i], grp.p()), grp.p());
      }
      EXPECT_EQ(grp.multi_exp(bases, exps), expect)
          << "n=" << n << " exp_bytes=" << exp_bytes;
    }
  }
  // Degenerate cases: empty product, and an all-zero exponent vector.
  EXPECT_EQ(grp.multi_exp(std::vector<Bignum>{}, std::vector<Bignum>{}),
            Bignum(1));
  const std::vector<Bignum> b1{random_nonzero_below(grp.p(), rng_)};
  EXPECT_EQ(grp.multi_exp(b1, std::vector<Bignum>{Bignum(0)}), Bignum(1));
}

TEST_P(MontgomeryCrossCheckTest, ZeroAndBoundaryExponents) {
  const ModGroup grp = ModGroup::modp_512();
  const Montgomery& m = grp.mont();
  const Bignum a = random_nonzero_below(grp.p(), rng_);
  EXPECT_EQ(grp.exp(a, Bignum(0)), Bignum(1));
  EXPECT_EQ(grp.exp(a, Bignum(1)), a);
  EXPECT_EQ(grp.multi_exp(a, Bignum(0), a, Bignum(0)), Bignum(1));
  EXPECT_EQ(grp.multi_exp(a, Bignum(1), a, Bignum(1)), mod_mul(a, a, grp.p()));
  // Exponent one limb larger than the modulus still reduces correctly.
  const Bignum e = grp.p() * Bignum(3) + Bignum(7);
  EXPECT_EQ(m.from_mont(m.exp(m.to_mont(a), e)), mod_exp(a, e, grp.p()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MontgomeryCrossCheckTest,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace scab::crypto
