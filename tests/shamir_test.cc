#include "secretshare/shamir.h"

#include <gtest/gtest.h>

#include "common/serialize.h"

namespace scab::secretshare {
namespace {

struct ShamirParams {
  uint32_t t;
  uint32_t n;
};

class ShamirTest : public ::testing::TestWithParam<ShamirParams> {
 protected:
  crypto::Drbg rng_{to_bytes("shamir-test")};
};

TEST_P(ShamirTest, AnyTSharesReconstruct) {
  const auto [t, n] = GetParam();
  const Bytes secret = to_bytes("attack at dawn, via the north bridge");
  const auto shares = shamir_share(secret, t, n, rng_);
  ASSERT_EQ(shares.size(), n);

  // Every contiguous window of t shares reconstructs.
  for (uint32_t start = 0; start + t <= n; ++start) {
    std::vector<ShamirShare> subset(shares.begin() + start,
                                    shares.begin() + start + t);
    const auto rec = shamir_reconstruct(subset);
    ASSERT_TRUE(rec.has_value()) << "start=" << start;
    EXPECT_EQ(*rec, secret);
  }
  // A scattered subset too.
  if (n >= t + 2) {
    std::vector<ShamirShare> subset;
    for (uint32_t i = 0; i < t; ++i) subset.push_back(shares[(i * 2) % n]);
    // Indices may collide under the stride; rebuild distinct.
    subset.clear();
    for (uint32_t i = n - t; i < n; ++i) subset.push_back(shares[i]);
    EXPECT_EQ(shamir_reconstruct(subset), secret);
  }
}

TEST_P(ShamirTest, MoreThanTSharesAlsoReconstruct) {
  const auto [t, n] = GetParam();
  const Bytes secret = to_bytes("s");
  const auto shares = shamir_share(secret, t, n, rng_);
  EXPECT_EQ(shamir_reconstruct(shares), secret);
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, ShamirTest,
    ::testing::Values(ShamirParams{1, 1}, ShamirParams{1, 4}, ShamirParams{2, 4},
                      ShamirParams{2, 7}, ShamirParams{3, 7}, ShamirParams{4, 10},
                      ShamirParams{7, 10}, ShamirParams{10, 10}),
    [](const auto& info) {
      return "t" + std::to_string(info.param.t) + "n" +
             std::to_string(info.param.n);
    });

TEST(Shamir, FewerThanTSharesRevealNothing) {
  // With t-1 shares, every candidate secret of the same length remains
  // possible: for each candidate there is a consistent polynomial.  We spot
  // check the weaker observable property that reconstruction from t-1
  // shares yields a wrong secret (interpolation through too few points).
  crypto::Drbg rng(to_bytes("privacy"));
  const Bytes secret = to_bytes("confidential");
  const auto shares = shamir_share(secret, 3, 5, rng);
  const std::vector<ShamirShare> two(shares.begin(), shares.begin() + 2);
  const auto rec = shamir_reconstruct(two);
  ASSERT_TRUE(rec.has_value());
  EXPECT_NE(*rec, secret);
}

TEST(Shamir, SharesAreDistinctFromSecret) {
  crypto::Drbg rng(to_bytes("distinct"));
  const Bytes secret(21, 0x42);
  const auto shares = shamir_share(secret, 2, 4, rng);
  for (const auto& s : shares) {
    EXPECT_NE(field_to_bytes(s.values, s.secret_len), secret);
  }
}

TEST(Shamir, EmptySecret) {
  crypto::Drbg rng(to_bytes("empty"));
  const auto shares = shamir_share(Bytes{}, 2, 4, rng);
  const std::vector<ShamirShare> subset(shares.begin(), shares.begin() + 2);
  const auto rec = shamir_reconstruct(subset);
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->empty());
}

TEST(Shamir, InvalidParametersThrow) {
  crypto::Drbg rng(to_bytes("bad"));
  EXPECT_THROW(shamir_share(Bytes{1}, 0, 4, rng), std::invalid_argument);
  EXPECT_THROW(shamir_share(Bytes{1}, 5, 4, rng), std::invalid_argument);
}

TEST(Shamir, ReconstructRejectsDuplicateIndices) {
  crypto::Drbg rng(to_bytes("dup"));
  const auto shares = shamir_share(Bytes{1, 2, 3}, 2, 4, rng);
  const std::vector<ShamirShare> dup = {shares[0], shares[0]};
  EXPECT_FALSE(shamir_reconstruct(dup).has_value());
}

TEST(Shamir, ReconstructRejectsMismatchedShapes) {
  crypto::Drbg rng(to_bytes("shape"));
  const auto a = shamir_share(Bytes(10, 1), 2, 4, rng);
  const auto b = shamir_share(Bytes(20, 2), 2, 4, rng);
  const std::vector<ShamirShare> mixed = {a[0], b[1]};
  EXPECT_FALSE(shamir_reconstruct(mixed).has_value());
  EXPECT_FALSE(shamir_reconstruct({}).has_value());
}

TEST(Shamir, SerializeRoundTrip) {
  crypto::Drbg rng(to_bytes("wire"));
  const auto shares = shamir_share(to_bytes("serialize me please"), 3, 7, rng);
  for (const auto& s : shares) {
    const auto parsed = ShamirShare::parse(s.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
}

TEST(Shamir, ParseRejectsMalformedWire) {
  crypto::Drbg rng(to_bytes("malformed"));
  const auto shares = shamir_share(to_bytes("x"), 2, 3, rng);
  Bytes wire = shares[0].serialize();
  EXPECT_FALSE(ShamirShare::parse(BytesView(wire.data(), wire.size() - 1)).has_value());
  EXPECT_FALSE(ShamirShare::parse(Bytes{}).has_value());
  // Index 0 is reserved/invalid.
  ShamirShare zero = shares[0];
  zero.index = 0;
  EXPECT_FALSE(ShamirShare::parse(zero.serialize()).has_value());
  // Out-of-field value.
  Writer w;
  w.u32(1);
  w.u64(7);
  w.u32(1);
  w.u64(kFieldPrime);  // not a valid residue
  EXPECT_FALSE(ShamirShare::parse(w.data()).has_value());
}

TEST(Shamir, ConsistencyDetectsTamperedShare) {
  crypto::Drbg rng(to_bytes("consist"));
  const uint32_t f = 2;
  auto shares = shamir_share(to_bytes("watch me"), f + 1, 3 * f + 1, rng);

  std::vector<const ShamirShare*> honest;
  for (uint32_t i = 0; i < f + 2; ++i) honest.push_back(&shares[i]);
  EXPECT_TRUE(shamir_consistent(honest, f));

  shares[1].values[0] = shares[1].values[0] + Fe(1);
  EXPECT_FALSE(shamir_consistent(honest, f));
}

TEST(Shamir, ConsistencyChecksEveryChunk) {
  crypto::Drbg rng(to_bytes("chunk"));
  const uint32_t f = 1;
  auto shares = shamir_share(Bytes(21, 0xaa), f + 1, 4, rng);  // 3 chunks
  std::vector<const ShamirShare*> subset = {&shares[0], &shares[1], &shares[2]};
  EXPECT_TRUE(shamir_consistent(subset, f));
  // Corrupt only the LAST chunk of one share.
  shares[2].values[2] = shares[2].values[2] + Fe(3);
  EXPECT_FALSE(shamir_consistent(subset, f));
}

TEST(Shamir, ConsistencyVacuousWithFewPoints) {
  crypto::Drbg rng(to_bytes("vac"));
  auto shares = shamir_share(Bytes{9}, 3, 5, rng);
  // deg = 2 needs 3 base points; with exactly 3 there is nothing to check.
  std::vector<const ShamirShare*> three = {&shares[0], &shares[1], &shares[2]};
  EXPECT_TRUE(shamir_consistent(three, 2));
}

}  // namespace
}  // namespace scab::secretshare
